# Empty compiler generated dependencies file for bench_table4_orders_reduction.
# This may be replaced when dependencies are built.
