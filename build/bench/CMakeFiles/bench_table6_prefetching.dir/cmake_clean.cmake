file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_prefetching.dir/bench_table6_prefetching.cc.o"
  "CMakeFiles/bench_table6_prefetching.dir/bench_table6_prefetching.cc.o.d"
  "bench_table6_prefetching"
  "bench_table6_prefetching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_prefetching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
