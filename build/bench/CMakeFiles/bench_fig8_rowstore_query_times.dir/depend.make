# Empty dependencies file for bench_fig8_rowstore_query_times.
# This may be replaced when dependencies are built.
