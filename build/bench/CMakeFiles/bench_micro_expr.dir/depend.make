# Empty dependencies file for bench_micro_expr.
# This may be replaced when dependencies are built.
