file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_expr.dir/bench_micro_expr.cc.o"
  "CMakeFiles/bench_micro_expr.dir/bench_micro_expr.cc.o.d"
  "bench_micro_expr"
  "bench_micro_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
