# Empty compiler generated dependencies file for bench_micro_join.
# This may be replaced when dependencies are built.
