file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scalability_interaction.dir/bench_fig10_scalability_interaction.cc.o"
  "CMakeFiles/bench_fig10_scalability_interaction.dir/bench_fig10_scalability_interaction.cc.o.d"
  "bench_fig10_scalability_interaction"
  "bench_fig10_scalability_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scalability_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
