# Empty compiler generated dependencies file for bench_fig10_scalability_interaction.
# This may be replaced when dependencies are built.
