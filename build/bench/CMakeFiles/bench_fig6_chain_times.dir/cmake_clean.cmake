file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_chain_times.dir/bench_fig6_chain_times.cc.o"
  "CMakeFiles/bench_fig6_chain_times.dir/bench_fig6_chain_times.cc.o.d"
  "bench_fig6_chain_times"
  "bench_fig6_chain_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_chain_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
