file(REMOVE_RECURSE
  "CMakeFiles/bench_nlj_uot.dir/bench_nlj_uot.cc.o"
  "CMakeFiles/bench_nlj_uot.dir/bench_nlj_uot.cc.o.d"
  "bench_nlj_uot"
  "bench_nlj_uot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nlj_uot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
