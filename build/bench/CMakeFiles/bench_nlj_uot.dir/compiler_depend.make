# Empty compiler generated dependencies file for bench_nlj_uot.
# This may be replaced when dependencies are built.
