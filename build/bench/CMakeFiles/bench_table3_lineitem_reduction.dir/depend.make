# Empty dependencies file for bench_table3_lineitem_reduction.
# This may be replaced when dependencies are built.
