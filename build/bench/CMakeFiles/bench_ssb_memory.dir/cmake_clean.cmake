file(REMOVE_RECURSE
  "CMakeFiles/bench_ssb_memory.dir/bench_ssb_memory.cc.o"
  "CMakeFiles/bench_ssb_memory.dir/bench_ssb_memory.cc.o.d"
  "bench_ssb_memory"
  "bench_ssb_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssb_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
