# Empty compiler generated dependencies file for bench_ssb_memory.
# This may be replaced when dependencies are built.
