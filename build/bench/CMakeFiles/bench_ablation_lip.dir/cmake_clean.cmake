file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lip.dir/bench_ablation_lip.cc.o"
  "CMakeFiles/bench_ablation_lip.dir/bench_ablation_lip.cc.o.d"
  "bench_ablation_lip"
  "bench_ablation_lip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
