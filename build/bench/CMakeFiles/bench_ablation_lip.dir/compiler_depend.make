# Empty compiler generated dependencies file for bench_ablation_lip.
# This may be replaced when dependencies are built.
