file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_probe_task_times.dir/bench_fig5_probe_task_times.cc.o"
  "CMakeFiles/bench_fig5_probe_task_times.dir/bench_fig5_probe_task_times.cc.o.d"
  "bench_fig5_probe_task_times"
  "bench_fig5_probe_task_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_probe_task_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
