# Empty dependencies file for bench_fig5_probe_task_times.
# This may be replaced when dependencies are built.
