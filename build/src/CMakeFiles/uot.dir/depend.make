# Empty dependencies file for uot.
# This may be replaced when dependencies are built.
