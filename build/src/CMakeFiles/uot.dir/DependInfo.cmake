
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/materializing_engine.cc" "src/CMakeFiles/uot.dir/baseline/materializing_engine.cc.o" "gcc" "src/CMakeFiles/uot.dir/baseline/materializing_engine.cc.o.d"
  "/root/repo/src/exec/query_executor.cc" "src/CMakeFiles/uot.dir/exec/query_executor.cc.o" "gcc" "src/CMakeFiles/uot.dir/exec/query_executor.cc.o.d"
  "/root/repo/src/expr/expression.cc" "src/CMakeFiles/uot.dir/expr/expression.cc.o" "gcc" "src/CMakeFiles/uot.dir/expr/expression.cc.o.d"
  "/root/repo/src/expr/predicate.cc" "src/CMakeFiles/uot.dir/expr/predicate.cc.o" "gcc" "src/CMakeFiles/uot.dir/expr/predicate.cc.o.d"
  "/root/repo/src/expr/projection.cc" "src/CMakeFiles/uot.dir/expr/projection.cc.o" "gcc" "src/CMakeFiles/uot.dir/expr/projection.cc.o.d"
  "/root/repo/src/join/hash_table.cc" "src/CMakeFiles/uot.dir/join/hash_table.cc.o" "gcc" "src/CMakeFiles/uot.dir/join/hash_table.cc.o.d"
  "/root/repo/src/join/lip_filter.cc" "src/CMakeFiles/uot.dir/join/lip_filter.cc.o" "gcc" "src/CMakeFiles/uot.dir/join/lip_filter.cc.o.d"
  "/root/repo/src/model/cost_model.cc" "src/CMakeFiles/uot.dir/model/cost_model.cc.o" "gcc" "src/CMakeFiles/uot.dir/model/cost_model.cc.o.d"
  "/root/repo/src/model/memory_model.cc" "src/CMakeFiles/uot.dir/model/memory_model.cc.o" "gcc" "src/CMakeFiles/uot.dir/model/memory_model.cc.o.d"
  "/root/repo/src/operators/aggregate_operator.cc" "src/CMakeFiles/uot.dir/operators/aggregate_operator.cc.o" "gcc" "src/CMakeFiles/uot.dir/operators/aggregate_operator.cc.o.d"
  "/root/repo/src/operators/build_hash_operator.cc" "src/CMakeFiles/uot.dir/operators/build_hash_operator.cc.o" "gcc" "src/CMakeFiles/uot.dir/operators/build_hash_operator.cc.o.d"
  "/root/repo/src/operators/nested_loops_join_operator.cc" "src/CMakeFiles/uot.dir/operators/nested_loops_join_operator.cc.o" "gcc" "src/CMakeFiles/uot.dir/operators/nested_loops_join_operator.cc.o.d"
  "/root/repo/src/operators/operator.cc" "src/CMakeFiles/uot.dir/operators/operator.cc.o" "gcc" "src/CMakeFiles/uot.dir/operators/operator.cc.o.d"
  "/root/repo/src/operators/probe_hash_operator.cc" "src/CMakeFiles/uot.dir/operators/probe_hash_operator.cc.o" "gcc" "src/CMakeFiles/uot.dir/operators/probe_hash_operator.cc.o.d"
  "/root/repo/src/operators/select_operator.cc" "src/CMakeFiles/uot.dir/operators/select_operator.cc.o" "gcc" "src/CMakeFiles/uot.dir/operators/select_operator.cc.o.d"
  "/root/repo/src/operators/sort_merge_join_operator.cc" "src/CMakeFiles/uot.dir/operators/sort_merge_join_operator.cc.o" "gcc" "src/CMakeFiles/uot.dir/operators/sort_merge_join_operator.cc.o.d"
  "/root/repo/src/operators/sort_operator.cc" "src/CMakeFiles/uot.dir/operators/sort_operator.cc.o" "gcc" "src/CMakeFiles/uot.dir/operators/sort_operator.cc.o.d"
  "/root/repo/src/plan/query_plan.cc" "src/CMakeFiles/uot.dir/plan/query_plan.cc.o" "gcc" "src/CMakeFiles/uot.dir/plan/query_plan.cc.o.d"
  "/root/repo/src/scheduler/execution_stats.cc" "src/CMakeFiles/uot.dir/scheduler/execution_stats.cc.o" "gcc" "src/CMakeFiles/uot.dir/scheduler/execution_stats.cc.o.d"
  "/root/repo/src/scheduler/scheduler.cc" "src/CMakeFiles/uot.dir/scheduler/scheduler.cc.o" "gcc" "src/CMakeFiles/uot.dir/scheduler/scheduler.cc.o.d"
  "/root/repo/src/scheduler/uot_policy.cc" "src/CMakeFiles/uot.dir/scheduler/uot_policy.cc.o" "gcc" "src/CMakeFiles/uot.dir/scheduler/uot_policy.cc.o.d"
  "/root/repo/src/simcache/access_streams.cc" "src/CMakeFiles/uot.dir/simcache/access_streams.cc.o" "gcc" "src/CMakeFiles/uot.dir/simcache/access_streams.cc.o.d"
  "/root/repo/src/simcache/cache_simulator.cc" "src/CMakeFiles/uot.dir/simcache/cache_simulator.cc.o" "gcc" "src/CMakeFiles/uot.dir/simcache/cache_simulator.cc.o.d"
  "/root/repo/src/simsched/des_scheduler.cc" "src/CMakeFiles/uot.dir/simsched/des_scheduler.cc.o" "gcc" "src/CMakeFiles/uot.dir/simsched/des_scheduler.cc.o.d"
  "/root/repo/src/ssb/ssb_generator.cc" "src/CMakeFiles/uot.dir/ssb/ssb_generator.cc.o" "gcc" "src/CMakeFiles/uot.dir/ssb/ssb_generator.cc.o.d"
  "/root/repo/src/ssb/ssb_queries.cc" "src/CMakeFiles/uot.dir/ssb/ssb_queries.cc.o" "gcc" "src/CMakeFiles/uot.dir/ssb/ssb_queries.cc.o.d"
  "/root/repo/src/ssb/ssb_schema.cc" "src/CMakeFiles/uot.dir/ssb/ssb_schema.cc.o" "gcc" "src/CMakeFiles/uot.dir/ssb/ssb_schema.cc.o.d"
  "/root/repo/src/storage/block.cc" "src/CMakeFiles/uot.dir/storage/block.cc.o" "gcc" "src/CMakeFiles/uot.dir/storage/block.cc.o.d"
  "/root/repo/src/storage/block_pool.cc" "src/CMakeFiles/uot.dir/storage/block_pool.cc.o" "gcc" "src/CMakeFiles/uot.dir/storage/block_pool.cc.o.d"
  "/root/repo/src/storage/insert_destination.cc" "src/CMakeFiles/uot.dir/storage/insert_destination.cc.o" "gcc" "src/CMakeFiles/uot.dir/storage/insert_destination.cc.o.d"
  "/root/repo/src/storage/storage_manager.cc" "src/CMakeFiles/uot.dir/storage/storage_manager.cc.o" "gcc" "src/CMakeFiles/uot.dir/storage/storage_manager.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/uot.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/uot.dir/storage/table.cc.o.d"
  "/root/repo/src/tpch/tpch_analysis.cc" "src/CMakeFiles/uot.dir/tpch/tpch_analysis.cc.o" "gcc" "src/CMakeFiles/uot.dir/tpch/tpch_analysis.cc.o.d"
  "/root/repo/src/tpch/tpch_generator.cc" "src/CMakeFiles/uot.dir/tpch/tpch_generator.cc.o" "gcc" "src/CMakeFiles/uot.dir/tpch/tpch_generator.cc.o.d"
  "/root/repo/src/tpch/tpch_queries.cc" "src/CMakeFiles/uot.dir/tpch/tpch_queries.cc.o" "gcc" "src/CMakeFiles/uot.dir/tpch/tpch_queries.cc.o.d"
  "/root/repo/src/tpch/tpch_schema.cc" "src/CMakeFiles/uot.dir/tpch/tpch_schema.cc.o" "gcc" "src/CMakeFiles/uot.dir/tpch/tpch_schema.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/uot.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/uot.dir/types/schema.cc.o.d"
  "/root/repo/src/types/type.cc" "src/CMakeFiles/uot.dir/types/type.cc.o" "gcc" "src/CMakeFiles/uot.dir/types/type.cc.o.d"
  "/root/repo/src/types/typed_value.cc" "src/CMakeFiles/uot.dir/types/typed_value.cc.o" "gcc" "src/CMakeFiles/uot.dir/types/typed_value.cc.o.d"
  "/root/repo/src/util/memory_tracker.cc" "src/CMakeFiles/uot.dir/util/memory_tracker.cc.o" "gcc" "src/CMakeFiles/uot.dir/util/memory_tracker.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/uot.dir/util/random.cc.o" "gcc" "src/CMakeFiles/uot.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/uot.dir/util/status.cc.o" "gcc" "src/CMakeFiles/uot.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
