file(REMOVE_RECURSE
  "libuot.a"
)
