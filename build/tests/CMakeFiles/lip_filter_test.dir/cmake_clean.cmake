file(REMOVE_RECURSE
  "CMakeFiles/lip_filter_test.dir/lip_filter_test.cc.o"
  "CMakeFiles/lip_filter_test.dir/lip_filter_test.cc.o.d"
  "lip_filter_test"
  "lip_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lip_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
