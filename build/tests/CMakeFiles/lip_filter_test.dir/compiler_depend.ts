# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lip_filter_test.
