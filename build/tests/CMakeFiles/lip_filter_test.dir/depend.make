# Empty dependencies file for lip_filter_test.
# This may be replaced when dependencies are built.
