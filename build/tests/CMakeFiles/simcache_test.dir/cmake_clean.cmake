file(REMOVE_RECURSE
  "CMakeFiles/simcache_test.dir/simcache_test.cc.o"
  "CMakeFiles/simcache_test.dir/simcache_test.cc.o.d"
  "simcache_test"
  "simcache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
