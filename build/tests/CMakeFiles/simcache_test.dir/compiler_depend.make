# Empty compiler generated dependencies file for simcache_test.
# This may be replaced when dependencies are built.
