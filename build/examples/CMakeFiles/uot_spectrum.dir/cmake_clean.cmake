file(REMOVE_RECURSE
  "CMakeFiles/uot_spectrum.dir/uot_spectrum.cpp.o"
  "CMakeFiles/uot_spectrum.dir/uot_spectrum.cpp.o.d"
  "uot_spectrum"
  "uot_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uot_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
