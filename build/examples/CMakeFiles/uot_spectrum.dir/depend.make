# Empty dependencies file for uot_spectrum.
# This may be replaced when dependencies are built.
