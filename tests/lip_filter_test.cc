#include <gtest/gtest.h>

#include <thread>

#include "exec/query_executor.h"
#include "test_util.h"
#include "join/lip_filter.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"
#include "util/random.h"

namespace uot {
namespace {

TEST(LipFilterTest, NoFalseNegatives) {
  LipFilter filter(10000);
  for (uint64_t k = 0; k < 10000; ++k) filter.Insert(k * 2654435761ULL);
  for (uint64_t k = 0; k < 10000; ++k) {
    EXPECT_TRUE(filter.MightContain(k * 2654435761ULL)) << k;
  }
}

TEST(LipFilterTest, FalsePositiveRateBounded) {
  LipFilter filter(10000, 8);
  Random rng(1);
  for (int i = 0; i < 10000; ++i) filter.Insert(rng.Next());
  Random other(2);
  int false_positives = 0;
  constexpr int kProbes = 50000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.MightContain(other.Next())) ++false_positives;
  }
  // 8 bits/entry with 2 probes: expect a few percent.
  EXPECT_LT(static_cast<double>(false_positives) / kProbes, 0.10);
  EXPECT_GT(false_positives, 0);  // it is a Bloom filter, not a set
}

TEST(LipFilterTest, EmptyFilterRejectsEverything) {
  LipFilter filter(1000);
  Random rng(3);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (filter.MightContain(rng.Next())) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(LipFilterTest, SizeScalesWithEntries) {
  LipFilter small(1000, 8);
  LipFilter large(100000, 8);
  EXPECT_GT(large.allocated_bytes(), 50 * small.allocated_bytes());
  EXPECT_EQ(small.num_bits(), 8000u);
}

TEST(LipFilterTest, ConcurrentInsertsKeepAllKeys) {
  LipFilter filter(40000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&filter, t] {
      for (uint64_t i = 0; i < 10000; ++i) {
        filter.Insert((t * 10000ULL + i) * 0x9E3779B97F4A7C15ULL);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (uint64_t k = 0; k < 40000; ++k) {
    ASSERT_TRUE(filter.MightContain(k * 0x9E3779B97F4A7C15ULL));
  }
}

class LipTpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    storage_ = new StorageManager();
    db_ = new TpchDatabase(storage_);
    TpchConfig config;
    config.scale_factor = 0.004;
    config.block_bytes = 32 * 1024;
    db_->Generate(config);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete storage_;
  }
  static StorageManager* storage_;
  static TpchDatabase* db_;
};

StorageManager* LipTpchTest::storage_ = nullptr;
TpchDatabase* LipTpchTest::db_ = nullptr;

TEST_F(LipTpchTest, LipPlansProduceIdenticalResults) {
  // LIP is a pure pruning optimization: Bloom-filter false positives are
  // re-checked by the probe, so results never change.
  for (int query : {3, 5, 7, 8, 10, 19}) {
    TpchPlanConfig base_config;
    base_config.block_bytes = 16 * 1024;
    TpchPlanConfig lip_config = base_config;
    lip_config.use_lip = true;

    ExecConfig exec;
    exec.num_workers = 2;
    exec.uot = UotPolicy::LowUot(1);

    auto base_plan = BuildTpchPlan(query, *db_, base_config);
    auto lip_plan = BuildTpchPlan(query, *db_, lip_config);
    QueryExecutor::Execute(base_plan.get(), exec);
    QueryExecutor::Execute(lip_plan.get(), exec);
    EXPECT_TRUE(testing::CanonicalRowsNear(
        CanonicalRows(*lip_plan->result_table()),
        CanonicalRows(*base_plan->result_table())))
        << "Q" << query;
  }
}

TEST_F(LipTpchTest, LipShrinksMaterializedIntermediates) {
  // The Section VI-C claim: LIP pruning cuts the high-UoT strategy's
  // materialized intermediate substantially (Q7: supplier filter keeps
  // 2 of 25 nations).
  int64_t peak[2];
  int idx = 0;
  for (const bool use_lip : {false, true}) {
    TpchPlanConfig config;
    config.block_bytes = 4 * 1024;  // fine blocks so sizes track rows
    config.use_lip = use_lip;
    auto plan = BuildTpchPlan(7, *db_, config);
    ExecConfig exec;
    exec.num_workers = 1;
    exec.uot = UotPolicy::HighUot();
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    peak[idx++] = stats.PeakTemporaryBytes();
  }
  EXPECT_LT(peak[1], peak[0] / 2);
}

TEST_F(LipTpchTest, LipReducesConsumerWorkOrders) {
  for (const bool use_lip : {false, true}) {
    SCOPED_TRACE(use_lip);
  }
  uint64_t probe_tasks[2];
  int idx = 0;
  for (const bool use_lip : {false, true}) {
    TpchPlanConfig config;
    config.block_bytes = 4 * 1024;
    config.use_lip = use_lip;
    auto plan = BuildTpchPlan(7, *db_, config);
    int first_probe = -1;
    for (int i = 0; i < plan->num_operators(); ++i) {
      if (plan->op(i)->name() == "probe(supplier)") first_probe = i;
    }
    ASSERT_GE(first_probe, 0);
    ExecConfig exec;
    exec.num_workers = 2;
    exec.uot = UotPolicy::LowUot(1);
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    probe_tasks[idx++] =
        stats.operators[static_cast<size_t>(first_probe)].num_work_orders;
  }
  // Far fewer select-output blocks reach the probe when LIP prunes.
  EXPECT_LT(probe_tasks[1], probe_tasks[0] / 2);
}

}  // namespace
}  // namespace uot
