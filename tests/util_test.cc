#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include "util/memory_tracker.h"
#include "util/random.h"
#include "util/scratch_arena.h"
#include "util/status.h"
#include "util/thread_safe_queue.h"
#include "util/timer.h"

namespace uot {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad block size");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad block size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad block size");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = [](bool fail) {
    return fail ? Status::Internal("boom") : Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    UOT_RETURN_IF_ERROR(inner(fail));
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, AlphaStringFormat) {
  Random rng(3);
  const std::string s = rng.AlphaString(12);
  EXPECT_EQ(s.size(), 12u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RandomTest, ZipfBoundsAndSkew) {
  Random rng(29);
  int64_t low_bucket = 0;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Zipf(1000, 0.9);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 1000);
    if (v <= 10) ++low_bucket;
  }
  // With theta=0.9 the head is much heavier than uniform (1%).
  EXPECT_GT(low_bucket, 1000);
}

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker t;
  t.Allocate(MemoryCategory::kHashTable, 100);
  t.Allocate(MemoryCategory::kHashTable, 50);
  EXPECT_EQ(t.Current(MemoryCategory::kHashTable), 150);
  t.Release(MemoryCategory::kHashTable, 120);
  EXPECT_EQ(t.Current(MemoryCategory::kHashTable), 30);
  EXPECT_EQ(t.Peak(MemoryCategory::kHashTable), 150);
  EXPECT_EQ(t.Current(MemoryCategory::kBaseTable), 0);
}

TEST(MemoryTrackerTest, CategoriesAreIndependent) {
  MemoryTracker t;
  t.Allocate(MemoryCategory::kBaseTable, 10);
  t.Allocate(MemoryCategory::kTemporaryTable, 20);
  t.Allocate(MemoryCategory::kHashTable, 30);
  t.Allocate(MemoryCategory::kOther, 40);
  EXPECT_EQ(t.TotalCurrent(), 100);
  EXPECT_EQ(t.Peak(MemoryCategory::kTemporaryTable), 20);
}

TEST(MemoryTrackerTest, ResetPeaksRebasesToCurrent) {
  MemoryTracker t;
  t.Allocate(MemoryCategory::kHashTable, 1000);
  t.Release(MemoryCategory::kHashTable, 900);
  t.ResetPeaks();
  EXPECT_EQ(t.Peak(MemoryCategory::kHashTable), 100);
  t.Allocate(MemoryCategory::kHashTable, 50);
  EXPECT_EQ(t.Peak(MemoryCategory::kHashTable), 150);
}

TEST(MemoryTrackerTest, ConcurrentUpdatesBalance) {
  MemoryTracker t;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < kIters; ++j) {
        t.Allocate(MemoryCategory::kOther, 8);
        t.Release(MemoryCategory::kOther, 8);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.Current(MemoryCategory::kOther), 0);
  EXPECT_GE(t.Peak(MemoryCategory::kOther), 8);
}

TEST(ThreadSafeQueueTest, FifoOrder) {
  ThreadSafeQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(ThreadSafeQueueTest, TryPopEmptyReturnsNullopt) {
  ThreadSafeQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(9);
  EXPECT_EQ(q.TryPop().value(), 9);
}

TEST(ThreadSafeQueueTest, CloseWakesConsumers) {
  ThreadSafeQueue<int> q;
  std::atomic<int> drained{0};
  std::thread consumer([&] {
    while (q.Pop().has_value()) drained.fetch_add(1);
  });
  q.Push(1);
  q.Push(2);
  q.Close();
  consumer.join();
  EXPECT_EQ(drained.load(), 2);
}

TEST(ThreadSafeQueueTest, ManyProducersManyConsumers) {
  ThreadSafeQueue<int> q;
  constexpr int kProducers = 4, kPerProducer = 1000;
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) sum.fetch_add(*v);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(),
            int64_t{kProducers} * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(ThreadSafeQueueTest, PushAfterCloseIsRejected) {
  ThreadSafeQueue<int> q;
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_TRUE(q.closed());
  // Post-close contract: both enqueue paths reject and report it; the
  // item is dropped, never half-enqueued.
  EXPECT_FALSE(q.Push(2));
  EXPECT_FALSE(q.PushFront(3));
  EXPECT_EQ(q.Size(), 1u);
  // Items accepted before the close still drain in order...
  EXPECT_EQ(q.Pop().value(), 1);
  // ...and then the queue reports end-of-stream, not the rejected items.
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(ThreadSafeQueueTest, PushFrontOvertakesPush) {
  ThreadSafeQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.PushFront(99));
  EXPECT_EQ(q.Pop().value(), 99);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(ThreadSafeQueueTest, RacingPushersAgainstCloseNeverLoseAcceptedItems) {
  // Every Push that returned true must be Pop-able; every Push after the
  // close must have returned false. The sum of drained items therefore
  // equals the number of accepted pushes, whatever the interleaving.
  ThreadSafeQueue<int> q;
  std::atomic<int> accepted{0};
  constexpr int kPushers = 4, kPerPusher = 2000;
  std::vector<std::thread> pushers;
  for (int p = 0; p < kPushers; ++p) {
    pushers.emplace_back([&q, &accepted] {
      for (int i = 0; i < kPerPusher; ++i) {
        if (q.Push(1)) accepted.fetch_add(1);
      }
    });
  }
  std::thread closer([&q] { q.Close(); });
  int drained = 0;
  while (q.Pop().has_value()) ++drained;
  for (auto& t : pushers) t.join();
  closer.join();
  // The single consumer saw end-of-stream only after close; late-accepted
  // items may still sit in the queue, so drain the remainder.
  while (q.TryPop().has_value()) ++drained;
  EXPECT_EQ(drained, accepted.load());
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  const int64_t t0 = timer.ElapsedNanos();
  EXPECT_GE(t0, 0);
  // Busy-wait a little; elapsed must be monotonic non-decreasing.
  volatile int64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(timer.ElapsedNanos(), t0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

TEST(ScratchArenaTest, ScopesRewindAndReuseStorage) {
  ScratchArena arena;
  std::byte* first = nullptr;
  {
    ScratchArena::Scope scope(&arena);
    first = arena.Alloc(100);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(first) % 16, 0u);
  }
  const size_t retained = arena.retained_bytes();
  {
    // After the rewind the same storage is handed out again, and the
    // steady state retains no extra memory.
    ScratchArena::Scope scope(&arena);
    EXPECT_EQ(arena.Alloc(100), first);
  }
  EXPECT_EQ(arena.retained_bytes(), retained);
}

TEST(ScratchArenaTest, NestedScopesDoNotClobberOuterAllocations) {
  ScratchArena arena;
  ScratchArena::Scope outer(&arena);
  int64_t* a = arena.AllocArray<int64_t>(64);
  for (int i = 0; i < 64; ++i) a[i] = i;
  {
    ScratchArena::Scope inner(&arena);
    int64_t* b = arena.AllocArray<int64_t>(64);
    EXPECT_NE(a, b);
    for (int i = 0; i < 64; ++i) b[i] = -1;
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a[i], i);  // outer survived
}

TEST(ScratchArenaTest, OversizedAllocationGetsOwnChunkWithoutRelocation) {
  ScratchArena arena;
  ScratchArena::Scope scope(&arena);
  std::byte* small = arena.Alloc(64);
  std::memset(small, 0xAB, 64);
  // Larger than the default chunk: must come from a fresh chunk while the
  // first allocation stays valid and intact.
  std::byte* big = arena.Alloc(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xCD, 1 << 20);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(small[i], std::byte{0xAB});
  }
}

TEST(ScratchSelVectorTest, NestedLeasesAreDistinct) {
  ScratchSelVector a;
  a->assign({1, 2, 3});
  {
    ScratchSelVector b;  // nested: must not alias `a`
    EXPECT_TRUE(b->empty());
    b->assign({9, 9});
    EXPECT_EQ(a->size(), 3u);
  }
  EXPECT_EQ((*a)[0], 1u);
  // Released vectors are recycled with cleared contents.
  ScratchSelVector c;
  EXPECT_TRUE(c->empty());
}

}  // namespace
}  // namespace uot
