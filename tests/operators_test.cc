#include <gtest/gtest.h>

#include "baseline/materializing_engine.h"
#include "exec/query_executor.h"
#include "operators/nested_loops_join_operator.h"
#include "operators/select_operator.h"
#include "operators/sort_merge_join_operator.h"
#include "storage/storage_manager.h"
#include "test_util.h"
#include "types/row_builder.h"

namespace uot {
namespace {

using testing::MakeKvTable;

class OperatorsTest : public ::testing::Test {
 protected:
  StorageManager storage_;
  MaterializingEngine engine_{&storage_};
};

TEST_F(OperatorsTest, SelectFiltersAndProjects) {
  auto input = MakeKvTable(&storage_, "in", 100, 10);
  const Schema& s = input->schema();
  auto pred = Cmp(CompareOp::kEq, Col(0, s.column(0).type),
                  Lit(TypedValue::Int32(3), Type::Int32()));
  std::vector<std::unique_ptr<Scalar>> exprs;
  exprs.push_back(Col(1, Type::Double()));
  Projection proj(std::move(exprs), {"v"});
  auto out = engine_.Select(*input, *pred, proj);
  ASSERT_EQ(out->NumRows(), 10u);  // k == 3 for i in {3, 13, ..., 93}
  // Values preserved: v in {3, 13, ..., 93}.
  double sum = 0;
  for (uint64_t r = 0; r < out->NumRows(); ++r) {
    sum += out->GetValue(r, 0).AsDouble();
  }
  EXPECT_DOUBLE_EQ(sum, 480.0);
}

TEST_F(OperatorsTest, SelectEmptyResult) {
  auto input = MakeKvTable(&storage_, "in", 50, 5);
  auto pred = Cmp(CompareOp::kGt, Col(1, Type::Double()), LitDouble(1e9));
  auto proj = Projection::Identity(input->schema(), {0, 1});
  auto out = engine_.Select(*input, *pred, *proj);
  EXPECT_EQ(out->NumRows(), 0u);
}

TEST_F(OperatorsTest, InnerHashJoinMatchesExpectedCardinality) {
  // probe: 100 rows with k = i%10; build: 10 rows with k = i%10 (one per k).
  auto probe = MakeKvTable(&storage_, "probe", 100, 10);
  auto build = MakeKvTable(&storage_, "build", 10, 10);
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0, 1};
  auto out = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(out->NumRows(), 100u);
  EXPECT_EQ(out->schema().num_columns(), 3);
}

TEST_F(OperatorsTest, InnerHashJoinDuplicateBuildKeys) {
  auto probe = MakeKvTable(&storage_, "probe", 10, 10);   // keys 0..9 once
  auto build = MakeKvTable(&storage_, "build", 30, 10);   // each key 3x
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0};
  auto out = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(out->NumRows(), 30u);
}

TEST_F(OperatorsTest, SemiJoinEmitsProbeRowOnce) {
  auto probe = MakeKvTable(&storage_, "probe", 20, 20);  // keys 0..19
  auto build = MakeKvTable(&storage_, "build", 30, 5);   // keys 0..4, 6 each
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {};
  spec.probe_keys = {0};
  spec.probe_out = {0, 1};
  spec.kind = JoinKind::kLeftSemi;
  auto out = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(out->NumRows(), 5u);  // despite 6 matches each
  EXPECT_EQ(out->schema().num_columns(), 2);  // no payload columns
}

TEST_F(OperatorsTest, AntiJoinEmitsNonMatching) {
  auto probe = MakeKvTable(&storage_, "probe", 20, 20);
  auto build = MakeKvTable(&storage_, "build", 30, 5);
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {};
  spec.probe_keys = {0};
  spec.probe_out = {0};
  spec.kind = JoinKind::kLeftAnti;
  auto out = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(out->NumRows(), 15u);  // keys 5..19
}

TEST_F(OperatorsTest, ResidualConditionFiltersMatches) {
  // Join k==k but require payload v != probe v. Build has v == k for
  // keys 0..9; probe rows 0..9 have v == i == k, rows 10..19 have v != k.
  auto probe = MakeKvTable(&storage_, "probe", 20, 10);
  Schema bs({{"k", Type::Int32()}, {"v", Type::Int32()}});
  auto build = std::make_unique<Table>("build", bs, Layout::kRowStore, 4096,
                                       &storage_, MemoryCategory::kBaseTable);
  RowBuilder row(&bs);
  for (int i = 0; i < 10; ++i) {
    row.SetInt32(0, i);
    row.SetInt32(1, i);
    build->AppendRow(row.data());
  }
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0};
  // probe col 1 is DOUBLE; residuals compare integral columns, so compare
  // against probe col 0 (k) instead: payload v != probe k never holds for
  // build rows (v == k), so inner join with this residual yields nothing.
  spec.residuals = {ResidualCondition{0, 0, CompareOp::kNe}};
  auto out = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(out->NumRows(), 0u);

  spec.residuals = {ResidualCondition{0, 0, CompareOp::kEq}};
  auto out2 = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(out2->NumRows(), 20u);
}

TEST_F(OperatorsTest, ScaledResidualComparesDoubles) {
  // probe (k, v=i) vs build (k, limit=10.0): keep rows with v < 0.5*limit.
  auto probe = MakeKvTable(&storage_, "probe", 20, 20);  // v = 0..19
  Schema bs({{"k", Type::Int32()}, {"limit", Type::Double()}});
  auto build = std::make_unique<Table>("build", bs, Layout::kRowStore, 4096,
                                       &storage_, MemoryCategory::kBaseTable);
  RowBuilder row(&bs);
  for (int i = 0; i < 20; ++i) {
    row.SetInt32(0, i);
    row.SetDouble(1, 10.0);
    build->AppendRow(row.data());
  }
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0, 1};
  spec.kind = JoinKind::kLeftSemi;
  spec.residuals = {ResidualCondition{1, 0, CompareOp::kLt, 0.5}};
  auto out = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(out->NumRows(), 5u);  // v in {0..4} < 5.0
  // Flipping the comparison keeps the complement.
  spec.residuals = {ResidualCondition{1, 0, CompareOp::kGe, 0.5}};
  auto complement = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(complement->NumRows(), 15u);
}

TEST_F(OperatorsTest, CompositeKeyJoin) {
  // Join on (a, b) pairs: build holds (i%4, i%3) for i in 0..11 (each pair
  // once); probe replays the same pairs twice.
  Schema s({{"a", Type::Int32()}, {"b", Type::Int32()}});
  auto make = [&](const char* name, int copies) {
    auto t = std::make_unique<Table>(name, s, Layout::kRowStore, 4096,
                                     &storage_, MemoryCategory::kBaseTable);
    RowBuilder row(&s);
    for (int c = 0; c < copies; ++c) {
      for (int i = 0; i < 12; ++i) {
        row.SetInt32(0, i % 4);
        row.SetInt32(1, i % 3);
        t->AppendRow(row.data());
      }
    }
    return t;
  };
  auto build = make("build", 1);
  auto probe = make("probe", 2);
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0, 1};
  spec.build_payload = {};
  spec.probe_keys = {0, 1};
  spec.probe_out = {0, 1};
  auto out = engine_.HashJoin(*probe, *build, spec);
  EXPECT_EQ(out->NumRows(), 24u);  // each probe row matches exactly once
}

TEST_F(OperatorsTest, ScalarAggregateComputesAllFunctions) {
  auto input = MakeKvTable(&storage_, "in", 100, 10);  // v = 0..99
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kCount, nullptr, "cnt"});
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum"});
  aggs.push_back({AggFn::kMin, Col(1, Type::Double()), "min"});
  aggs.push_back({AggFn::kMax, Col(1, Type::Double()), "max"});
  aggs.push_back({AggFn::kAvg, Col(1, Type::Double()), "avg"});
  auto out = engine_.GroupAggregate(*input, {}, std::move(aggs), nullptr);
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->GetValue(0, 0).AsInt64(), 100);
  EXPECT_DOUBLE_EQ(out->GetValue(0, 1).AsDouble(), 4950.0);
  EXPECT_DOUBLE_EQ(out->GetValue(0, 2).AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(out->GetValue(0, 3).AsDouble(), 99.0);
  EXPECT_DOUBLE_EQ(out->GetValue(0, 4).AsDouble(), 49.5);
}

TEST_F(OperatorsTest, GroupedAggregate) {
  auto input = MakeKvTable(&storage_, "in", 100, 4);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kCount, nullptr, "cnt"});
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum"});
  auto out = engine_.GroupAggregate(*input, {0}, std::move(aggs), nullptr);
  ASSERT_EQ(out->NumRows(), 4u);
  int64_t total = 0;
  double sum = 0;
  for (uint64_t r = 0; r < 4; ++r) {
    total += out->GetValue(r, 1).AsInt64();
    sum += out->GetValue(r, 2).AsDouble();
  }
  EXPECT_EQ(total, 100);
  EXPECT_DOUBLE_EQ(sum, 4950.0);
}

TEST_F(OperatorsTest, AggregateWithFusedPredicate) {
  auto input = MakeKvTable(&storage_, "in", 100, 10);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kCount, nullptr, "cnt"});
  auto pred = Cmp(CompareOp::kLt, Col(1, Type::Double()), LitDouble(50.0));
  auto out =
      engine_.GroupAggregate(*input, {}, std::move(aggs), std::move(pred));
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->GetValue(0, 0).AsInt64(), 50);
}

TEST_F(OperatorsTest, ScalarAggregateOnEmptyInputYieldsZeroRow) {
  auto input = MakeKvTable(&storage_, "in", 0, 10);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kCount, nullptr, "cnt"});
  auto out = engine_.GroupAggregate(*input, {}, std::move(aggs), nullptr);
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->GetValue(0, 0).AsInt64(), 0);
}

TEST_F(OperatorsTest, GroupedAggregateOnEmptyInputYieldsNoRows) {
  auto input = MakeKvTable(&storage_, "in", 0, 10);
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kCount, nullptr, "cnt"});
  auto out = engine_.GroupAggregate(*input, {0}, std::move(aggs), nullptr);
  EXPECT_EQ(out->NumRows(), 0u);
}

TEST_F(OperatorsTest, TwoColumnGroupKeys) {
  Schema s({{"a", Type::Int32()}, {"b", Type::Char(2)}});
  auto input = std::make_unique<Table>("in", s, Layout::kRowStore, 4096,
                                       &storage_, MemoryCategory::kBaseTable);
  RowBuilder row(&s);
  const char* tags[] = {"x", "y"};
  for (int i = 0; i < 40; ++i) {
    row.SetInt32(0, i % 2);
    row.SetChar(1, tags[(i / 2) % 2]);
    input->AppendRow(row.data());
  }
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kCount, nullptr, "cnt"});
  auto out = engine_.GroupAggregate(*input, {0, 1}, std::move(aggs), nullptr);
  ASSERT_EQ(out->NumRows(), 4u);
  for (uint64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(out->GetValue(r, 2).AsInt64(), 10);
  }
}

TEST_F(OperatorsTest, SortOrdersAndLimits) {
  auto input = MakeKvTable(&storage_, "in", 50, 7);
  auto desc = engine_.Sort(*input, {{1, false}}, 0);
  ASSERT_EQ(desc->NumRows(), 50u);
  EXPECT_DOUBLE_EQ(desc->GetValue(0, 1).AsDouble(), 49.0);
  EXPECT_DOUBLE_EQ(desc->GetValue(49, 1).AsDouble(), 0.0);

  auto top3 = engine_.Sort(*input, {{1, false}}, 3);
  ASSERT_EQ(top3->NumRows(), 3u);
  EXPECT_DOUBLE_EQ(top3->GetValue(2, 1).AsDouble(), 47.0);
}

TEST_F(OperatorsTest, SortMultiKey) {
  auto input = MakeKvTable(&storage_, "in", 20, 4);
  auto out = engine_.Sort(*input, {{0, true}, {1, false}}, 0);
  // Within each key group, v descending; groups ascending by k.
  EXPECT_EQ(out->GetValue(0, 0).AsInt32(), 0);
  EXPECT_DOUBLE_EQ(out->GetValue(0, 1).AsDouble(), 16.0);
  EXPECT_EQ(out->GetValue(19, 0).AsInt32(), 3);
  EXPECT_DOUBLE_EQ(out->GetValue(19, 1).AsDouble(), 3.0);
}

TEST_F(OperatorsTest, SortCharKeys) {
  Schema s({{"name", Type::Char(4)}});
  auto input = std::make_unique<Table>("in", s, Layout::kRowStore, 4096,
                                       &storage_, MemoryCategory::kBaseTable);
  for (const char* n : {"dd", "aa", "cc", "bb"}) {
    input->AppendValues({TypedValue::Char(n)});
  }
  auto out = engine_.Sort(*input, {{0, true}}, 0);
  EXPECT_EQ(out->GetValue(0, 0).AsChar(), "aa");
  EXPECT_EQ(out->GetValue(3, 0).AsChar(), "dd");
}

TEST_F(OperatorsTest, NestedLoopsJoinMatchesHashJoin) {
  auto probe = MakeKvTable(&storage_, "probe", 60, 12);
  auto build = MakeKvTable(&storage_, "build", 24, 8);

  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0, 1};
  auto hash_out = engine_.HashJoin(*probe, *build, spec);

  // Nested-loops reference (driven directly).
  Schema out_schema = NestedLoopsJoinOperator::OutputSchema(
      probe->schema(), {0, 1}, build->schema(), {1});
  Table nlj_out("nlj", out_schema, Layout::kRowStore, 1 << 16, &storage_,
                MemoryCategory::kTemporaryTable);
  InsertDestination dest(&storage_, &nlj_out, nullptr);
  NestedLoopsJoinOperator nlj("nlj", build.get(), {0}, {0}, {0, 1}, {1},
                              &dest);
  nlj.AttachBaseTable(probe.get());
  std::vector<std::unique_ptr<WorkOrder>> wos;
  while (!nlj.GenerateWorkOrders(&wos)) {
  }
  for (auto& wo : wos) wo->Execute();
  nlj.Finish();

  EXPECT_EQ(CanonicalRows(*hash_out), CanonicalRows(nlj_out));
  EXPECT_GT(nlj_out.NumRows(), 0u);
}

TEST_F(OperatorsTest, SortMergeJoinMatchesHashJoin) {
  auto left = MakeKvTable(&storage_, "left", 80, 16);
  auto right = MakeKvTable(&storage_, "right", 48, 12);

  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0, 1};
  auto hash_out = engine_.HashJoin(*left, *right, spec);

  Schema out_schema = SortMergeJoinOperator::OutputSchema(
      left->schema(), {0, 1}, right->schema(), {1});
  Table smj_out("smj", out_schema, Layout::kRowStore, 1 << 16, &storage_,
                MemoryCategory::kTemporaryTable);
  InsertDestination dest(&storage_, &smj_out, nullptr);
  SortMergeJoinOperator smj("smj", left->schema(), right->schema(), {0},
                            {0}, {0, 1}, {1}, &dest);
  smj.AttachLeftTable(left.get());
  smj.AttachRightTable(right.get());
  std::vector<std::unique_ptr<WorkOrder>> wos;
  while (!smj.GenerateWorkOrders(&wos)) {
  }
  for (auto& wo : wos) wo->Execute();
  smj.Finish();

  EXPECT_EQ(CanonicalRows(smj_out), CanonicalRows(*hash_out));
  EXPECT_GT(smj_out.NumRows(), 0u);
}

TEST_F(OperatorsTest, SortMergeJoinDuplicateRunsCrossProduct) {
  // left: keys {0,1} x3 each; right: keys {1,2} x2 each -> key 1 yields
  // 3*2 = 6 rows, keys 0/2 yield none.
  Schema s({{"k", Type::Int32()}, {"v", Type::Double()}});
  auto make = [&](const char* name, std::vector<int> keys, int copies) {
    auto t = std::make_unique<Table>(name, s, Layout::kRowStore, 4096,
                                     &storage_, MemoryCategory::kBaseTable);
    RowBuilder row(&s);
    for (int c = 0; c < copies; ++c) {
      for (int k : keys) {
        row.SetInt32(0, k);
        row.SetDouble(1, k * 10.0 + c);
        t->AppendRow(row.data());
      }
    }
    return t;
  };
  auto left = make("l", {0, 1}, 3);
  auto right = make("r", {1, 2}, 2);

  Schema out_schema = SortMergeJoinOperator::OutputSchema(
      left->schema(), {0}, right->schema(), {1});
  Table out("out", out_schema, Layout::kRowStore, 4096, &storage_,
            MemoryCategory::kTemporaryTable);
  InsertDestination dest(&storage_, &out, nullptr);
  SortMergeJoinOperator smj("smj", left->schema(), right->schema(), {0},
                            {0}, {0}, {1}, &dest);
  smj.AttachLeftTable(left.get());
  smj.AttachRightTable(right.get());
  std::vector<std::unique_ptr<WorkOrder>> wos;
  while (!smj.GenerateWorkOrders(&wos)) {
  }
  for (auto& wo : wos) wo->Execute();
  smj.Finish();
  EXPECT_EQ(out.NumRows(), 6u);
}

TEST_F(OperatorsTest, SortMergeJoinEmptySide) {
  auto left = MakeKvTable(&storage_, "left", 20, 5);
  auto right = MakeKvTable(&storage_, "right", 0, 5);
  Schema out_schema = SortMergeJoinOperator::OutputSchema(
      left->schema(), {0}, right->schema(), {1});
  Table out("out", out_schema, Layout::kRowStore, 4096, &storage_,
            MemoryCategory::kTemporaryTable);
  InsertDestination dest(&storage_, &out, nullptr);
  SortMergeJoinOperator smj("smj", left->schema(), right->schema(), {0},
                            {0}, {0}, {1}, &dest);
  smj.AttachLeftTable(left.get());
  smj.AttachRightTable(right.get());
  std::vector<std::unique_ptr<WorkOrder>> wos;
  while (!smj.GenerateWorkOrders(&wos)) {
  }
  for (auto& wo : wos) wo->Execute();
  smj.Finish();
  EXPECT_EQ(out.NumRows(), 0u);
}

TEST_F(OperatorsTest, ThreeColumnGroupKeys) {
  Schema s({{"a", Type::Int32()},
            {"b", Type::Char(2)},
            {"c", Type::Int32()},
            {"v", Type::Double()}});
  auto input = std::make_unique<Table>("in", s, Layout::kRowStore, 4096,
                                       &storage_, MemoryCategory::kBaseTable);
  RowBuilder row(&s);
  const char* tags[] = {"x", "y", "z"};
  for (int i = 0; i < 54; ++i) {
    row.SetInt32(0, i % 2);
    row.SetChar(1, tags[i % 3]);
    row.SetInt32(2, i % 3 == 0 ? 7 : 8);
    row.SetDouble(3, 1.0);
    input->AppendRow(row.data());
  }
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(3, Type::Double()), "sum"});
  auto out = engine_.GroupAggregate(*input, {0, 1, 2}, std::move(aggs),
                                    nullptr);
  // Groups: (i%2, i%3) pairs, with c derived from i%3: 2*3 = 6 groups.
  EXPECT_EQ(out->NumRows(), 6u);
  double total = 0;
  for (uint64_t r = 0; r < out->NumRows(); ++r) {
    total += out->GetValue(r, 3).AsDouble();
  }
  EXPECT_DOUBLE_EQ(total, 54.0);
}

/// Serializes every row of `t` in block/row order as raw packed bytes —
/// the strict comparator for scalar-vs-batched kernel parity: identical
/// strings mean byte-identical output in identical order.
std::string TableBytes(const Table& t) {
  std::string out;
  std::vector<std::byte> row(t.schema().row_width());
  for (const Block* b : t.blocks()) {
    for (uint32_t r = 0; r < b->num_rows(); ++r) {
      b->GetRow(r, row.data());
      out.append(reinterpret_cast<const char*>(row.data()), row.size());
    }
  }
  return out;
}

/// Runs `spec` under both kernels (everything else identical) and asserts
/// byte-identical output. MaterializingEngine drives single-threaded, so
/// build insert order — and therefore probe chain order — is deterministic.
void ExpectKernelParity(StorageManager* storage, const Table& probe,
                        const Table& build,
                        MaterializingEngine::JoinSpec spec,
                        const char* label) {
  MaterializingEngine engine(storage);
  spec.join.kernel = JoinKernel::kScalar;
  auto scalar_out = engine.HashJoin(probe, build, spec);
  spec.join.kernel = JoinKernel::kBatched;
  auto batched_out = engine.HashJoin(probe, build, spec);
  ASSERT_EQ(batched_out->NumRows(), scalar_out->NumRows()) << label;
  EXPECT_EQ(TableBytes(*batched_out), TableBytes(*scalar_out)) << label;
}

TEST_F(OperatorsTest, BatchedKernelParityInnerSemiAnti) {
  // Duplicate-heavy single-word keys across several probe blocks.
  auto probe = MakeKvTable(&storage_, "probe", 500, 40, Layout::kRowStore,
                           /*block_bytes=*/512);
  auto build = MakeKvTable(&storage_, "build", 120, 40);
  for (const JoinKind kind :
       {JoinKind::kInner, JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    MaterializingEngine::JoinSpec spec;
    spec.build_keys = {0};
    spec.build_payload = kind == JoinKind::kInner ? std::vector<int>{1}
                                                  : std::vector<int>{};
    spec.probe_keys = {0};
    spec.probe_out = {0, 1};
    spec.kind = kind;
    ExpectKernelParity(&storage_, *probe, *build, spec, "kind");
  }
}

TEST_F(OperatorsTest, BatchedKernelParityBatchBoundaries) {
  // Probe row counts straddling the batch size, including a final partial
  // batch and tiny blocks (few rows per block), for several batch sizes
  // and prefetch distances (0 disables prefetch, below-threshold batches
  // take the scalar-resolve path internally).
  auto build = MakeKvTable(&storage_, "build", 60, 30);
  for (const int batch : {1, 8, 256}) {
    for (const uint64_t rows :
         {static_cast<uint64_t>(batch) - 1, static_cast<uint64_t>(batch),
          static_cast<uint64_t>(batch) + 1, static_cast<uint64_t>(3)}) {
      auto probe = MakeKvTable(&storage_, "probe", rows, 30,
                               Layout::kRowStore, /*block_bytes=*/256);
      for (const int dist : {0, 16}) {
        MaterializingEngine::JoinSpec spec;
        spec.build_keys = {0};
        spec.build_payload = {1};
        spec.probe_keys = {0};
        spec.probe_out = {0, 1};
        spec.join.batch_size = batch;
        spec.join.prefetch_distance = dist;
        ExpectKernelParity(&storage_, *probe, *build, spec, "boundary");
      }
    }
  }
}

TEST_F(OperatorsTest, BatchedKernelParityCompositeKeysAndResiduals) {
  // Two-word composite keys with duplicates plus a scaled double residual.
  Schema ps({{"a", Type::Int32()}, {"b", Type::Int32()},
             {"v", Type::Double()}});
  auto make = [&](const char* name, int rows) {
    auto t = std::make_unique<Table>(name, ps, Layout::kRowStore, 512,
                                     &storage_, MemoryCategory::kBaseTable);
    RowBuilder row(&ps);
    for (int i = 0; i < rows; ++i) {
      row.SetInt32(0, i % 7);
      row.SetInt32(1, i % 5);
      row.SetDouble(2, static_cast<double>(i % 13));
      t->AppendRow(row.data());
    }
    return t;
  };
  auto probe = make("probe", 400);
  auto build = make("build", 150);
  for (const JoinKind kind : {JoinKind::kInner, JoinKind::kLeftSemi}) {
    MaterializingEngine::JoinSpec spec;
    spec.build_keys = {0, 1};
    spec.build_payload = {2};
    spec.probe_keys = {0, 1};
    spec.probe_out = {0, 1, 2};
    spec.kind = kind;
    // Keep matches where probe v < 0.8 * build v (drops most candidates).
    spec.residuals = {ResidualCondition{2, 0, CompareOp::kLt, 0.8}};
    ExpectKernelParity(&storage_, *probe, *build, spec, "composite");
  }
}

TEST_F(OperatorsTest, BatchedKernelParityEmptyInputs) {
  auto empty = MakeKvTable(&storage_, "empty", 0, 10);
  auto nonempty = MakeKvTable(&storage_, "nonempty", 50, 10);
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0, 1};
  ExpectKernelParity(&storage_, *empty, *nonempty, spec, "empty probe");
  ExpectKernelParity(&storage_, *nonempty, *empty, spec, "empty build");
}

TEST_F(OperatorsTest, ProbeOutputSchemaComposition) {
  Schema probe({{"a", Type::Int32()}, {"b", Type::Double()}});
  Schema build({{"k", Type::Int32()}, {"p", Type::Char(3)}});
  Schema inner = ProbeHashOperator::OutputSchema(probe, {1}, build, {1},
                                                 JoinKind::kInner);
  EXPECT_EQ(inner.ToString(), "(b DOUBLE, p CHAR(3))");
  Schema semi = ProbeHashOperator::OutputSchema(probe, {0, 1}, build, {1},
                                                JoinKind::kLeftSemi);
  EXPECT_EQ(semi.ToString(), "(a INT32, b DOUBLE)");
}

}  // namespace
}  // namespace uot
