#include <gtest/gtest.h>

#include "types/date.h"
#include "types/row_builder.h"
#include "types/schema.h"
#include "types/type.h"
#include "types/typed_value.h"

namespace uot {
namespace {

TEST(TypeTest, WidthsAndIds) {
  EXPECT_EQ(Type::Int32().width(), 4);
  EXPECT_EQ(Type::Int64().width(), 8);
  EXPECT_EQ(Type::Double().width(), 8);
  EXPECT_EQ(Type::Date().width(), 4);
  EXPECT_EQ(Type::Char(17).width(), 17);
  EXPECT_EQ(Type::Char(17).id(), TypeId::kChar);
}

TEST(TypeTest, Predicates) {
  EXPECT_TRUE(Type::Int32().IsNumeric());
  EXPECT_TRUE(Type::Date().IsNumeric());
  EXPECT_TRUE(Type::Double().IsNumeric());
  EXPECT_FALSE(Type::Char(4).IsNumeric());
  EXPECT_TRUE(Type::Int64().IsIntegral());
  EXPECT_FALSE(Type::Double().IsIntegral());
}

TEST(TypeTest, EqualityAndToString) {
  EXPECT_EQ(Type::Char(8), Type::Char(8));
  EXPECT_NE(Type::Char(8), Type::Char(9));
  EXPECT_NE(Type::Int32(), Type::Date());
  EXPECT_EQ(Type::Char(10).ToString(), "CHAR(10)");
  EXPECT_EQ(Type::Double().ToString(), "DOUBLE");
}

TEST(DateTest, RoundTrip) {
  for (int y : {1970, 1992, 1995, 1998, 2000, 2024}) {
    for (int m : {1, 2, 6, 12}) {
      for (int d : {1, 15, 28}) {
        const int32_t days = MakeDate(y, m, d);
        int yy, mm, dd;
        CivilFromDays(days, &yy, &mm, &dd);
        EXPECT_EQ(yy, y);
        EXPECT_EQ(mm, m);
        EXPECT_EQ(dd, d);
      }
    }
  }
}

TEST(DateTest, EpochAndOrdering) {
  EXPECT_EQ(MakeDate(1970, 1, 1), 0);
  EXPECT_EQ(MakeDate(1970, 1, 2), 1);
  EXPECT_LT(MakeDate(1994, 12, 31), MakeDate(1995, 1, 1));
  EXPECT_EQ(MakeDate(1995, 3, 15) - MakeDate(1995, 3, 14), 1);
}

TEST(DateTest, AddMonthsClampsDay) {
  EXPECT_EQ(AddMonths(MakeDate(1995, 1, 31), 1), MakeDate(1995, 2, 28));
  EXPECT_EQ(AddMonths(MakeDate(1996, 1, 31), 1), MakeDate(1996, 2, 29));
  EXPECT_EQ(AddMonths(MakeDate(1993, 7, 1), 3), MakeDate(1993, 10, 1));
  EXPECT_EQ(AddYears(MakeDate(1994, 1, 1), 1), MakeDate(1995, 1, 1));
}

TEST(DateTest, ToStringFormat) {
  EXPECT_EQ(DateToString(MakeDate(1998, 12, 1)), "1998-12-01");
  EXPECT_EQ(DateToString(MakeDate(1992, 1, 5)), "1992-01-05");
}

TEST(TypedValueTest, AccessorsAndToString) {
  EXPECT_EQ(TypedValue::Int32(42).AsInt32(), 42);
  EXPECT_EQ(TypedValue::Int64(1LL << 40).AsInt64(), 1LL << 40);
  EXPECT_DOUBLE_EQ(TypedValue::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(TypedValue::Char("abc").AsChar(), "abc");
  EXPECT_EQ(TypedValue::Int32(-7).ToString(), "-7");
  EXPECT_EQ(TypedValue::Date(MakeDate(1995, 6, 17)).ToString(), "1995-06-17");
}

TEST(TypedValueTest, WideningConversions) {
  EXPECT_DOUBLE_EQ(TypedValue::Int32(3).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(TypedValue::Int64(-9).ToDouble(), -9.0);
  EXPECT_EQ(TypedValue::Int32(5).ToInt64(), 5);
  EXPECT_EQ(TypedValue::Date(100).ToInt64(), 100);
}

TEST(TypedValueTest, PackedRoundTripNumeric) {
  std::byte buf[8];
  TypedValue::Int32(-12345).CopyTo(Type::Int32(), buf);
  EXPECT_EQ(TypedValue::Load(Type::Int32(), buf).AsInt32(), -12345);
  TypedValue::Int64(1LL << 50).CopyTo(Type::Int64(), buf);
  EXPECT_EQ(TypedValue::Load(Type::Int64(), buf).AsInt64(), 1LL << 50);
  TypedValue::Double(3.25).CopyTo(Type::Double(), buf);
  EXPECT_DOUBLE_EQ(TypedValue::Load(Type::Double(), buf).AsDouble(), 3.25);
}

TEST(TypedValueTest, PackedCharPadsAndStrips) {
  std::byte buf[10];
  TypedValue::Char("abc").CopyTo(Type::Char(10), buf);
  // Padded with spaces.
  EXPECT_EQ(static_cast<char>(buf[3]), ' ');
  EXPECT_EQ(static_cast<char>(buf[9]), ' ');
  const TypedValue loaded = TypedValue::Load(Type::Char(10), buf);
  EXPECT_EQ(loaded.AsChar(), "abc");  // padding stripped
}

TEST(TypedValueTest, PackedCharTruncates) {
  std::byte buf[4];
  TypedValue::Char("abcdefgh").CopyTo(Type::Char(4), buf);
  EXPECT_EQ(TypedValue::Load(Type::Char(4), buf).AsChar(), "abcd");
}

TEST(TypedValueTest, ComparisonOperators) {
  EXPECT_EQ(TypedValue::Int32(4), TypedValue::Int32(4));
  EXPECT_NE(TypedValue::Int32(4), TypedValue::Int32(5));
  EXPECT_NE(TypedValue::Int32(4), TypedValue::Int64(4));  // different types
  EXPECT_LT(TypedValue::Double(1.0), TypedValue::Double(2.0));
  EXPECT_LT(TypedValue::Char("abc"), TypedValue::Char("abd"));
}

TEST(SchemaTest, OffsetsArePacked) {
  Schema s({{"a", Type::Int64()},
            {"b", Type::Int32()},
            {"c", Type::Char(5)},
            {"d", Type::Double()}});
  EXPECT_EQ(s.num_columns(), 4);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 12u);
  EXPECT_EQ(s.offset(3), 17u);
  EXPECT_EQ(s.row_width(), 25u);
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s({{"x", Type::Int32()}, {"y", Type::Double()}});
  EXPECT_EQ(s.ColumnIndex("x"), 0);
  EXPECT_EQ(s.ColumnIndex("y"), 1);
  EXPECT_EQ(s.ColumnIndex("z"), -1);
}

TEST(SchemaTest, EqualityIncludesNamesAndTypes) {
  Schema a({{"x", Type::Int32()}});
  Schema b({{"x", Type::Int32()}});
  Schema c({{"y", Type::Int32()}});
  Schema d({{"x", Type::Int64()}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(SchemaTest, ToStringRendersColumns) {
  Schema s({{"k", Type::Int32()}, {"name", Type::Char(3)}});
  EXPECT_EQ(s.ToString(), "(k INT32, name CHAR(3))");
}

TEST(RowBuilderTest, BuildsPackedRows) {
  Schema s({{"a", Type::Int32()},
            {"b", Type::Double()},
            {"c", Type::Char(6)},
            {"d", Type::Date()}});
  RowBuilder row(&s);
  row.SetInt32(0, 77);
  row.SetDouble(1, -1.5);
  row.SetChar(2, "hi");
  row.SetDate(3, MakeDate(1994, 1, 1));
  EXPECT_EQ(TypedValue::Load(s.column(0).type, row.data() + s.offset(0))
                .AsInt32(),
            77);
  EXPECT_DOUBLE_EQ(
      TypedValue::Load(s.column(1).type, row.data() + s.offset(1)).AsDouble(),
      -1.5);
  EXPECT_EQ(TypedValue::Load(s.column(2).type, row.data() + s.offset(2))
                .AsChar(),
            "hi");
  EXPECT_EQ(TypedValue::Load(s.column(3).type, row.data() + s.offset(3))
                .AsInt32(),
            MakeDate(1994, 1, 1));
}

}  // namespace
}  // namespace uot
