// The query front end (src/server): parser, plan compiler, plan+annotation
// cache, tenant admission classes, and the text protocol. The load-bearing
// assertions are the cache-correctness ones from the paper's serving story:
// repeat queries must return byte-identical rows while provably skipping
// cost-model evaluation, and cached annotations must be re-chosen whenever
// the world they were chosen in (cardinalities, exec knobs) drifts.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/query_executor.h"
#include "plan/plan_builder.h"
#include "server/frontend.h"
#include "server/plan_cache.h"
#include "server/sql_parser.h"
#include "server/text_server.h"
#include "test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace uot {
namespace server {
namespace {

using uot::testing::CanonicalRowsNear;
using uot::testing::MakeKvTable;

// ---------------------------------------------------------------------------
// SQL parser

TEST(SqlParserTest, ParsesSelectJoinWhereGroupBy) {
  SelectStatement stmt;
  ASSERT_TRUE(ParseSelect("SELECT fact.k, SUM(fact.v) FROM fact "
                          "JOIN dim ON fact.k = dim.k "
                          "WHERE dim.v < 3 AND fact.v >= 10.5 "
                          "GROUP BY fact.k",
                          &stmt)
                  .ok());
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_FALSE(stmt.items[0].is_aggregate);
  EXPECT_EQ(stmt.items[0].column, "fact.k");
  EXPECT_TRUE(stmt.items[1].is_aggregate);
  EXPECT_EQ(stmt.items[1].fn, AggFn::kSum);
  EXPECT_EQ(stmt.table, "fact");
  ASSERT_TRUE(stmt.has_join);
  EXPECT_EQ(stmt.join.table, "dim");
  EXPECT_EQ(stmt.join.left_column, "fact.k");
  EXPECT_EQ(stmt.join.right_column, "dim.k");
  ASSERT_EQ(stmt.where.size(), 2u);
  EXPECT_EQ(stmt.where[0].op, CompareOp::kLt);
  EXPECT_EQ(stmt.where[0].value.kind, SqlValue::Kind::kInt);
  EXPECT_EQ(stmt.where[1].op, CompareOp::kGe);
  EXPECT_EQ(stmt.where[1].value.kind, SqlValue::Kind::kDouble);
  ASSERT_EQ(stmt.group_by.size(), 1u);
  EXPECT_EQ(stmt.group_by[0], "fact.k");
  EXPECT_EQ(stmt.Tables(), (std::vector<std::string>{"fact", "dim"}));
}

TEST(SqlParserTest, TemplateKeyCanonicalizesLiteralsAndCase) {
  SelectStatement a, b, c;
  ASSERT_TRUE(
      ParseSelect("select k from kv where v < 10 and k = 3", &a).ok());
  ASSERT_TRUE(
      ParseSelect("SELECT  K   FROM kv  WHERE v < 99.5 AND k = 7", &b).ok());
  ASSERT_TRUE(ParseSelect("select k from kv where v < ? and k = ?", &c).ok());
  // Literal values, whitespace, and case never reach the key; placeholders
  // canonicalize to the same `?` a literal does.
  EXPECT_EQ(a.TemplateKey(), b.TemplateKey());
  EXPECT_EQ(a.TemplateKey(), c.TemplateKey());
  EXPECT_EQ(c.num_params, 2);
  EXPECT_EQ(c.where[0].value.param_index, 0);
  EXPECT_EQ(c.where[1].value.param_index, 1);

  SelectStatement d;
  ASSERT_TRUE(ParseSelect("select k from kv where v > 10", &d).ok());
  EXPECT_NE(a.TemplateKey(), d.TemplateKey());  // operator is structural
}

TEST(SqlParserTest, RejectsMalformedStatements) {
  SelectStatement stmt;
  EXPECT_FALSE(ParseSelect("select from kv", &stmt).ok());
  EXPECT_FALSE(ParseSelect("select k kv", &stmt).ok());
  EXPECT_FALSE(ParseSelect("select k from kv where", &stmt).ok());
  EXPECT_FALSE(ParseSelect("select k from kv where v <", &stmt).ok());
  EXPECT_FALSE(ParseSelect("select frob(k) from kv", &stmt).ok());
  EXPECT_FALSE(ParseSelect("select k from kv group by", &stmt).ok());
  EXPECT_FALSE(ParseSelect("select k from kv trailing junk", &stmt).ok());
}

TEST(SqlParserTest, RejectsOutOfRangeNumericLiterals) {
  // stoll/stod overflow must surface as a parse error, not an exception
  // that escapes into the serving thread and kills the process.
  SelectStatement stmt;
  EXPECT_FALSE(
      ParseSelect("select k from kv where k = 99999999999999999999", &stmt)
          .ok());
  const std::string huge(400, '9');
  EXPECT_FALSE(
      ParseSelect("select k from kv where v = " + huge + ".5", &stmt).ok());
  std::vector<SqlValue> values;
  EXPECT_FALSE(ParseValueList("99999999999999999999", &values).ok());
}

TEST(SqlParserTest, ParsesValueLists) {
  std::vector<SqlValue> values;
  ASSERT_TRUE(ParseValueList("1, -2.5, 'x y'", &values).ok());
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].kind, SqlValue::Kind::kInt);
  EXPECT_EQ(values[0].int_value, 1);
  EXPECT_EQ(values[1].kind, SqlValue::Kind::kDouble);
  EXPECT_DOUBLE_EQ(values[1].double_value, -2.5);
  EXPECT_EQ(values[2].kind, SqlValue::Kind::kString);
  EXPECT_EQ(values[2].string_value, "x y");

  values.clear();
  ASSERT_TRUE(ParseValueList("", &values).ok());
  EXPECT_TRUE(values.empty());
  EXPECT_FALSE(ParseValueList("1, ?", &values).ok());
}

// ---------------------------------------------------------------------------
// Plan cache (unit)

PlanCacheEntry MakeEntry(const std::string& fingerprint, int radix) {
  PlanCacheEntry entry;
  entry.fingerprint = fingerprint;
  entry.radix_bits = radix;
  entry.choices.push_back(UotChoice{});
  return entry;
}

TEST(PlanCacheTest, HitMissAndFingerprintInvalidation) {
  PlanCache cache(4);
  PlanCacheEntry out;
  EXPECT_EQ(cache.Lookup("q1", "fp-a", &out), PlanCache::Outcome::kMiss);

  cache.Insert("q1", MakeEntry("fp-a", 3));
  EXPECT_EQ(cache.Lookup("q1", "fp-a", &out), PlanCache::Outcome::kHit);
  EXPECT_EQ(out.radix_bits, 3);

  // A fingerprint mismatch (cardinality or knob drift) erases the entry:
  // the stale annotations must never be re-applied.
  EXPECT_EQ(cache.Lookup("q1", "fp-b", &out),
            PlanCache::Outcome::kInvalidated);
  EXPECT_EQ(cache.Lookup("q1", "fp-b", &out), PlanCache::Outcome::kMiss);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  PlanCacheEntry out;
  cache.Insert("a", MakeEntry("fp", 0));
  cache.Insert("b", MakeEntry("fp", 0));
  EXPECT_EQ(cache.Lookup("a", "fp", &out), PlanCache::Outcome::kHit);
  cache.Insert("c", MakeEntry("fp", 0));  // evicts b (LRU), not a
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup("b", "fp", &out), PlanCache::Outcome::kMiss);
  EXPECT_EQ(cache.Lookup("a", "fp", &out), PlanCache::Outcome::kHit);
  EXPECT_EQ(cache.Lookup("c", "fp", &out), PlanCache::Outcome::kHit);
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  PlanCache cache(0);
  PlanCacheEntry out;
  cache.Insert("a", MakeEntry("fp", 0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("a", "fp", &out), PlanCache::Outcome::kMiss);
}

// ---------------------------------------------------------------------------
// Front end over a small synthetic catalog

class FrontEndTest : public ::testing::Test {
 protected:
  FrontEndTest() : catalog_(&storage_) {
    // fact: 200 rows, k = i % 10, v = i. dim: 5 rows, unique k = 0..4.
    fact_ = MakeKvTable(&storage_, "fact", 200, 10);
    dim_ = MakeKvTable(&storage_, "dim", 5, 5);
    catalog_.RegisterTable("fact", fact_.get());
    catalog_.RegisterTable("dim", dim_.get());
  }

  static FrontEndConfig SmallConfig() {
    FrontEndConfig config;
    config.engine.num_workers = 2;
    config.chooser.threads = 2;
    return config;
  }

  StorageManager storage_;
  Catalog catalog_;
  std::unique_ptr<Table> fact_;
  std::unique_ptr<Table> dim_;
};

TEST_F(FrontEndTest, AggregateSelectMatchesHandBuiltPlan) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  const Response resp = frontend.Handle(
      {"select k, sum(v) from fact where v >= 100 group by k", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.row_count, 10u);
  EXPECT_EQ(resp.cache, Response::Cache::kMiss);

  // The reference: the same query hand-assembled with PlanBuilder and run
  // through the bare executor.
  PlanBuilder builder(&storage_, PlanBuilderConfig{});
  auto src = builder.Select(
      "sel", PlanBuilder::Base(*fact_),
      Cmp(CompareOp::kGe, Col(1, Type::Double()), LitDouble(100.0)),
      Projection::Identity(fact_->schema(), {0, 1}));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum_v"});
  src = builder.Aggregate("agg", src, {0}, std::move(aggs));
  auto plan = builder.Finish(src);
  QueryExecutor::Execute(plan.get(), ExecConfig{});
  EXPECT_TRUE(CanonicalRowsNear(resp.rows_csv,
                                CanonicalRows(*plan->result_table())));
}

TEST_F(FrontEndTest, BareSelectColumnsMustBeGroupKeys) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  // v is neither a group key nor inside an aggregate: returning some other
  // column's values in its position would be silently wrong.
  const Response resp = frontend.Handle(
      {"select v, sum(v) from fact group by k", "default"});
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("GROUP BY"), std::string::npos) << resp.error;
}

TEST_F(FrontEndTest, AggregateOutputFollowsSelectListOrder) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  // Aggregate before group key: the result must be reordered to match the
  // select list, not left in the operator's native [keys, aggs] order.
  const Response resp = frontend.Handle(
      {"select sum(v), k from fact group by k", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.row_count, 10u);

  PlanBuilder builder(&storage_, PlanBuilderConfig{});
  auto src = builder.Select(
      "sel", PlanBuilder::Base(*fact_), std::make_unique<TruePredicate>(),
      Projection::Identity(fact_->schema(), {0, 1}));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum_v"});
  src = builder.Aggregate("agg", src, {0}, std::move(aggs));
  src = builder.Select("swap", src, std::make_unique<TruePredicate>(),
                       Projection::Identity(builder.SchemaOf(src), {1, 0}));
  auto plan = builder.Finish(src);
  QueryExecutor::Execute(plan.get(), ExecConfig{});
  EXPECT_TRUE(CanonicalRowsNear(resp.rows_csv,
                                CanonicalRows(*plan->result_table())));
}

TEST_F(FrontEndTest, UnselectedGroupKeysAreProjectedAway) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  const Response resp =
      frontend.Handle({"select sum(v) from fact group by k", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.row_count, 10u);
  // One column per row: the group key k is grouped on but not returned.
  for (size_t pos = 0; pos < resp.rows_csv.size();) {
    const size_t end = resp.rows_csv.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    const std::string line = resp.rows_csv.substr(pos, end - pos);
    EXPECT_EQ(line.find(','), std::string::npos) << line;
    pos = end + 1;
  }
}

TEST_F(FrontEndTest, JoinMatchesHandBuiltPlan) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  const Response resp = frontend.Handle(
      {"select fact.v, dim.v from fact join dim on fact.k = dim.k "
       "where dim.v < 3",
       "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  // k in {0,1,2} -> 20 fact rows each, one dim match each.
  EXPECT_EQ(resp.row_count, 60u);

  PlanBuilder builder(&storage_, PlanBuilderConfig{});
  auto dim_src = builder.Select(
      "dimsel", PlanBuilder::Base(*dim_),
      Cmp(CompareOp::kLt, Col(1, Type::Double()), LitDouble(3.0)),
      Projection::Identity(dim_->schema(), {0, 1}));
  BuildHashOperator* build = builder.Build("build", dim_src, {0}, {0, 1});
  auto probed = builder.Probe("probe", PlanBuilder::Base(*fact_), build, {0},
                              {1});
  // Probe output: fact.v then build payload (dim.k, dim.v); project the
  // two SELECT items.
  auto final_src = builder.Select(
      "proj", probed, std::make_unique<TruePredicate>(),
      Projection::Identity(builder.SchemaOf(probed), {0, 2}));
  auto plan = builder.Finish(final_src);
  QueryExecutor::Execute(plan.get(), ExecConfig{});
  EXPECT_TRUE(CanonicalRowsNear(resp.rows_csv,
                                CanonicalRows(*plan->result_table())));

  // Re-running the join template is a hit with identical bytes.
  const Response again = frontend.Handle(
      {"select fact.v, dim.v from fact join dim on fact.k = dim.k "
       "where dim.v < 3",
       "default"});
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.cache, Response::Cache::kHit);
  EXPECT_EQ(again.rows_csv, resp.rows_csv);
}

TEST_F(FrontEndTest, RepeatQueryHitsCacheAndSkipsModel) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  const std::string sql = "select k, sum(v) from fact group by k";

  const Response first = frontend.Handle({sql, "default"});
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.cache, Response::Cache::kMiss);
  const uint64_t evals_after_miss = frontend.model_evaluations();
  EXPECT_GT(evals_after_miss, 0u);  // the miss paid for ChoosePlan

  for (int i = 0; i < 5; ++i) {
    const Response rep = frontend.Handle({sql, "default"});
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.cache, Response::Cache::kHit);
    EXPECT_EQ(rep.rows_csv, first.rows_csv);  // byte parity, not just near
  }
  // The point of the cache: repeats never touch the cost model.
  EXPECT_EQ(frontend.model_evaluations(), evals_after_miss);
  EXPECT_EQ(frontend.plan_cache()->hits(), 5u);
  EXPECT_EQ(frontend.plan_cache()->misses(), 1u);
}

TEST_F(FrontEndTest, CardinalityChangeInvalidatesCachedAnnotations) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  const std::string sql = "select count(*) from fact";

  Response resp = frontend.Handle({sql, "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.cache, Response::Cache::kMiss);
  EXPECT_EQ(resp.rows_csv, "200\n");

  resp = frontend.Handle({sql, "default"});
  EXPECT_EQ(resp.cache, Response::Cache::kHit);

  // Grow the table: the cardinality component of the fingerprint changes,
  // so the cached UoT choices are stale and must be re-chosen.
  RowBuilder row(&fact_->schema());
  for (int i = 0; i < 40; ++i) {
    row.SetInt32(0, i % 10);
    row.SetDouble(1, 1000.0 + i);
    fact_->AppendRow(row.data());
  }
  const uint64_t evals_before = frontend.model_evaluations();
  resp = frontend.Handle({sql, "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.cache, Response::Cache::kMiss);  // re-chosen, not reused
  EXPECT_EQ(resp.rows_csv, "240\n");
  EXPECT_EQ(frontend.plan_cache()->invalidations(), 1u);
  EXPECT_GT(frontend.model_evaluations(), evals_before);

  resp = frontend.Handle({sql, "default"});
  EXPECT_EQ(resp.cache, Response::Cache::kHit);
  EXPECT_EQ(resp.rows_csv, "240\n");
}

TEST_F(FrontEndTest, KnobChangesProduceDistinctFingerprints) {
  FrontEnd base(SmallConfig(), &catalog_);
  FrontEnd same(SmallConfig(), &catalog_);
  EXPECT_EQ(base.KnobFingerprint(), same.KnobFingerprint());

  FrontEndConfig kernel_config = SmallConfig();
  kernel_config.join.kernel = JoinKernel::kScalar;
  FrontEnd kernel_changed(kernel_config, &catalog_);
  EXPECT_NE(base.KnobFingerprint(), kernel_changed.KnobFingerprint());

  FrontEndConfig radix_config = SmallConfig();
  radix_config.plan.join_radix_bits = 4;
  FrontEnd radix_changed(radix_config, &catalog_);
  EXPECT_NE(base.KnobFingerprint(), radix_changed.KnobFingerprint());

  FrontEndConfig budget_config = SmallConfig();
  budget_config.engine.memory_budget_bytes = 64u << 20;
  FrontEnd budget_changed(budget_config, &catalog_);
  EXPECT_NE(base.KnobFingerprint(), budget_changed.KnobFingerprint());
}

TEST_F(FrontEndTest, SetPipelineModeSwitchesConnectionState) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  Response resp = frontend.Handle({"set pipeline_mode fused", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.set_pipeline_mode, "fused");

  resp = frontend.Handle({"set pipeline_mode = vectorized", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.set_pipeline_mode, "vectorized");

  EXPECT_FALSE(frontend.Handle({"set pipeline_mode turbo", "default"}).ok);
  EXPECT_FALSE(frontend.Handle({"set pipeline_mode", "default"}).ok);
}

TEST_F(FrontEndTest, FusedModeMatchesVectorizedAndRefingerprints) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  // The mode is a plan-shaping knob, so it must live in the fingerprint:
  // a fused connection must never be served a plan annotated for the
  // vectorized mode (or vice versa).
  EXPECT_NE(frontend.KnobFingerprint(PipelineMode::kVectorized),
            frontend.KnobFingerprint(PipelineMode::kFused));

  const std::string sql =
      "select k, sum(v) from fact where v >= 20 group by k";
  const Response vectorized =
      frontend.Handle({sql, "default", PipelineMode::kVectorized});
  ASSERT_TRUE(vectorized.ok) << vectorized.error;
  EXPECT_EQ(vectorized.cache, Response::Cache::kMiss);

  const Response fused =
      frontend.Handle({sql, "default", PipelineMode::kFused});
  ASSERT_TRUE(fused.ok) << fused.error;
  // Same template, different knob fingerprint: the cached vectorized entry
  // is stale for this connection, not a hit.
  EXPECT_EQ(fused.cache, Response::Cache::kMiss);
  EXPECT_EQ(fused.rows_csv, vectorized.rows_csv);

  const Response fused_again =
      frontend.Handle({sql, "default", PipelineMode::kFused});
  ASSERT_TRUE(fused_again.ok) << fused_again.error;
  EXPECT_EQ(fused_again.cache, Response::Cache::kHit);
  EXPECT_EQ(fused_again.rows_csv, vectorized.rows_csv);
}

TEST_F(FrontEndTest, PreparedStatementsShareOneTemplate) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  Response resp = frontend.Handle(
      {"prepare below as select count(*) from fact where v < ?", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;

  resp = frontend.Handle({"execute below (50)", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.cache, Response::Cache::kMiss);
  EXPECT_EQ(resp.rows_csv, "50\n");

  // A different parameter value reuses the same template's annotations.
  resp = frontend.Handle({"execute below (120)", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.cache, Response::Cache::kHit);
  EXPECT_EQ(resp.rows_csv, "120\n");

  // So does the literal form of the same template.
  resp = frontend.Handle(
      {"select count(*) from fact where v < 10", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.cache, Response::Cache::kHit);
  EXPECT_EQ(resp.rows_csv, "10\n");

  EXPECT_FALSE(frontend.Handle({"execute below (1, 2)", "default"}).ok);
  EXPECT_FALSE(frontend.Handle({"execute below", "default"}).ok);
  EXPECT_FALSE(frontend.Handle({"execute nosuch (1)", "default"}).ok);
}

TEST_F(FrontEndTest, TenantClassesGateAndErrorProperly) {
  FrontEndConfig config = SmallConfig();
  config.engine.memory_budget_bytes = 256u << 20;
  config.tenants.push_back(TenantClass{"gold", 4, 1.0});
  config.tenants.push_back(TenantClass{"bronze", 1, 0.25});
  FrontEnd frontend(config, &catalog_);

  Response resp = frontend.Handle({"set tenant bronze", "default"});
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.set_tenant, "bronze");
  EXPECT_FALSE(frontend.Handle({"set tenant nosuch", "default"}).ok);
  EXPECT_FALSE(
      frontend.Handle({"select count(*) from fact", "nosuch"}).ok);

  // Expected rows, computed serially.
  const Response expected =
      frontend.Handle({"select k, sum(v) from fact group by k", "gold"});
  ASSERT_TRUE(expected.ok) << expected.error;

  // 8 concurrent clients hammering both classes: everything admits
  // (bronze serializes through its single slot but must not starve or
  // deadlock) and every result matches the serial run.
  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = (t % 2 == 0) ? "gold" : "bronze";
      for (int i = 0; i < 5; ++i) {
        const Response r = frontend.Handle(
            {"select k, sum(v) from fact group by k", tenant});
        if (!r.ok || r.rows_csv != expected.rows_csv) {
          ++failures[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int f : failures) EXPECT_EQ(f, 0);
}

TEST_F(FrontEndTest, ShutdownRejectsFurtherRequests) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  ASSERT_TRUE(frontend.Handle({"select count(*) from fact", "default"}).ok);
  frontend.Shutdown();
  const Response resp =
      frontend.Handle({"select count(*) from fact", "default"});
  EXPECT_FALSE(resp.ok);
  frontend.Shutdown();  // idempotent
}

TEST_F(FrontEndTest, StatsAndUnknownStatements) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  ASSERT_TRUE(frontend.Handle({"select count(*) from fact", "default"}).ok);
  const Response stats = frontend.Handle({"stats", "default"});
  ASSERT_TRUE(stats.ok);
  EXPECT_NE(stats.message.find("requests="), std::string::npos);
  EXPECT_NE(stats.message.find("cache_misses=1"), std::string::npos);
  EXPECT_FALSE(frontend.Handle({"frobnicate now", "default"}).ok);
  EXPECT_FALSE(frontend.Handle({"select k from nosuch", "default"}).ok);
  EXPECT_FALSE(frontend.Handle({"tpch 1", "default"}).ok);  // no TPC-H data
}

// ---------------------------------------------------------------------------
// TPC-H: cached vs fresh byte parity across the whole supported suite

class TpchServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    storage_ = new StorageManager();
    db_ = new TpchDatabase(storage_);
    TpchConfig config;
    config.scale_factor = 0.004;
    db_->Generate(config);
  }

  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
    delete storage_;
    storage_ = nullptr;
  }

  static StorageManager* storage_;
  static TpchDatabase* db_;
};

StorageManager* TpchServerTest::storage_ = nullptr;
TpchDatabase* TpchServerTest::db_ = nullptr;

TEST_F(TpchServerTest, CachedPlansMatchFreshPlansByteForByte) {
  Catalog catalog(storage_);
  catalog.RegisterTpch(db_);
  FrontEndConfig config;
  config.engine.num_workers = 2;
  config.chooser.threads = 2;

  // `fresh` never repeats a template, so every run evaluates the model;
  // `cached` runs each template twice and must serve the repeat from the
  // cache with byte-identical rows.
  FrontEnd cached(config, &catalog);
  FrontEnd fresh(config, &catalog);

  for (int query : SupportedTpchQueries()) {
    const std::string stmt = "tpch " + std::to_string(query);
    const Response miss = cached.Handle({stmt, "default"});
    ASSERT_TRUE(miss.ok) << "q" << query << ": " << miss.error;
    EXPECT_EQ(miss.cache, Response::Cache::kMiss);

    const Response hit = cached.Handle({stmt, "default"});
    ASSERT_TRUE(hit.ok) << "q" << query << ": " << hit.error;
    EXPECT_EQ(hit.cache, Response::Cache::kHit);
    EXPECT_EQ(hit.rows_csv, miss.rows_csv) << "q" << query;

    const Response reference = fresh.Handle({stmt, "default"});
    ASSERT_TRUE(reference.ok) << "q" << query << ": " << reference.error;
    EXPECT_EQ(reference.rows_csv, miss.rows_csv) << "q" << query;
  }

  // One miss per template; every repeat skipped the model entirely.
  const size_t n = SupportedTpchQueries().size();
  EXPECT_EQ(cached.plan_cache()->hits(), n);
  EXPECT_EQ(cached.plan_cache()->misses(), n);
  EXPECT_EQ(cached.model_evaluations(), fresh.model_evaluations());

  const uint64_t evals = cached.model_evaluations();
  for (int query : SupportedTpchQueries()) {
    const Response rep =
        cached.Handle({"tpch " + std::to_string(query), "default"});
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(rep.cache, Response::Cache::kHit);
  }
  EXPECT_EQ(cached.model_evaluations(), evals);
}

// ---------------------------------------------------------------------------
// Text protocol over TCP

class TcpClient {
 public:
  explicit TcpClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& text) {
    ASSERT_EQ(::send(fd_, text.data(), text.size(), 0),
              static_cast<ssize_t>(text.size()));
  }

  /// Reads one reply: a single ERR line, or an OK header + rows + END.
  std::string ReadReply() {
    while (true) {
      const std::string line = ReadLine();
      if (line.empty() && eof_) return reply_;
      reply_ += line + "\n";
      if (line.rfind("ERR ", 0) == 0 || line == "END") {
        std::string out;
        out.swap(reply_);
        return out;
      }
    }
  }

 private:
  std::string ReadLine() {
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        eof_ = true;
        return "";
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

  int fd_ = -1;
  bool connected_ = false;
  bool eof_ = false;
  std::string buffer_;
  std::string reply_;
};

TEST_F(FrontEndTest, TcpServerRoundTrip) {
  FrontEndConfig config = SmallConfig();
  config.tenants.push_back(TenantClass{"gold", 2, 1.0});
  FrontEnd frontend(config, &catalog_);
  TextServer tcp(&frontend);
  ASSERT_TRUE(tcp.Start(0).ok());  // ephemeral port
  ASSERT_GT(tcp.port(), 0);

  {
    TcpClient client(tcp.port());
    ASSERT_TRUE(client.connected());
    client.Send("select count(*) from fact\n");
    std::string reply = client.ReadReply();
    EXPECT_EQ(reply.rfind("OK rows=1 cache=miss", 0), 0u) << reply;
    EXPECT_NE(reply.find("\n200\n"), std::string::npos) << reply;

    // The tenant switch is per-connection state held by the server.
    client.Send("set tenant gold\nselect count(*) from fact\n");
    reply = client.ReadReply();
    EXPECT_EQ(reply.rfind("OK rows=0", 0), 0u) << reply;
    reply = client.ReadReply();
    EXPECT_EQ(reply.rfind("OK rows=1 cache=hit", 0), 0u) << reply;

    client.Send("select nope\n");
    reply = client.ReadReply();
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
    client.Send("quit\n");
  }

  // A second connection is served after the first closed.
  {
    TcpClient client(tcp.port());
    ASSERT_TRUE(client.connected());
    client.Send("select count(*) from fact\n");
    const std::string reply = client.ReadReply();
    EXPECT_EQ(reply.rfind("OK rows=1 cache=hit", 0), 0u) << reply;
  }

  tcp.Stop();
  EXPECT_EQ(tcp.connections_accepted(), 2u);
  tcp.Stop();  // idempotent
}

TEST_F(FrontEndTest, ClosedConnectionsAreReaped) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  TextServer tcp(&frontend);
  ASSERT_TRUE(tcp.Start(0).ok());

  // Each connection's fd and serving thread must be released when the
  // client goes away, not accumulated until Stop() — a long-running
  // server would otherwise leak one CLOSE_WAIT fd per connection.
  for (int i = 0; i < 8; ++i) {
    TcpClient client(tcp.port());
    ASSERT_TRUE(client.connected());
    client.Send("select count(*) from fact\n");
    const std::string reply = client.ReadReply();
    EXPECT_EQ(reply.rfind("OK rows=1", 0), 0u) << reply;
    client.Send("quit\n");
  }
  // The server notices EOF/QUIT asynchronously; poll briefly.
  for (int i = 0; i < 200 && tcp.active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(tcp.active_connections(), 0u);
  EXPECT_EQ(tcp.connections_accepted(), 8u);
  tcp.Stop();
}

TEST_F(FrontEndTest, ConcurrentStopIsSafe) {
  FrontEnd frontend(SmallConfig(), &catalog_);
  TextServer tcp(&frontend);
  ASSERT_TRUE(tcp.Start(0).ok());
  TcpClient client(tcp.port());
  ASSERT_TRUE(client.connected());

  // Every caller must return only after the teardown is complete, and no
  // two callers may touch accept_thread_ at once (double join is UB).
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&tcp] { tcp.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_EQ(tcp.active_connections(), 0u);
}

TEST(FormatResponseTest, RendersOkAndError) {
  Response ok;
  ok.ok = true;
  ok.row_count = 2;
  ok.cache = Response::Cache::kHit;
  ok.exec_ms = 1.25;
  ok.rows_csv = "a,1\nb,2\n";
  EXPECT_EQ(FormatResponse(ok),
            "OK rows=2 cache=hit ms=1.250\na,1\nb,2\nEND\n");

  Response err;
  err.ok = false;
  err.error = "boom";
  EXPECT_EQ(FormatResponse(err), "ERR boom\n");
}

}  // namespace
}  // namespace server
}  // namespace uot
