#include <gtest/gtest.h>

#include <algorithm>

#include "exec/adaptive_uot_policy.h"
#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "obs/trace_session.h"
#include "operators/aggregate_operator.h"
#include "operators/build_hash_operator.h"
#include "operators/probe_hash_operator.h"
#include "operators/select_operator.h"
#include "operators/sort_merge_join_operator.h"
#include "test_util.h"

namespace uot {
namespace {

using testing::MakeKvTable;

/// Builds the paper's canonical select -> probe plan over synthetic data:
///   sel(probe_table: v >= threshold) -> probe(build(build_table))
/// Result: (k, v, payload_v).
struct SelectProbePlan {
  std::unique_ptr<QueryPlan> plan;
  int select_op = -1;
  int build_op = -1;
  int probe_op = -1;
};

SelectProbePlan MakeSelectProbePlan(StorageManager* storage,
                                    const Table& probe_table,
                                    const Table& build_table,
                                    double threshold,
                                    size_t temp_block_bytes) {
  SelectProbePlan out;
  out.plan = std::make_unique<QueryPlan>(storage);
  QueryPlan* plan = out.plan.get();

  auto build = std::make_unique<BuildHashOperator>(
      "build", std::vector<int>{0}, std::vector<int>{1}, 0.75,
      &storage->tracker());
  BuildHashOperator* build_raw = build.get();
  build_raw->InitHashTable(build_table.schema());
  build_raw->AttachBaseTable(&build_table);
  out.build_op = plan->AddOperator(std::move(build));

  auto proj = Projection::Identity(probe_table.schema(), {0, 1});
  Schema sel_schema = proj->output_schema();
  Table* sel_out = plan->CreateTempTable("sel.out", sel_schema,
                                         Layout::kRowStore,
                                         temp_block_bytes);
  InsertDestination* sel_dest = plan->CreateDestination(sel_out);
  auto select = std::make_unique<SelectOperator>(
      "select",
      Cmp(CompareOp::kGe, Col(1, Type::Double()), LitDouble(threshold)),
      std::move(proj), sel_dest);
  select->AttachBaseTable(&probe_table);
  out.select_op = plan->AddOperator(std::move(select));
  plan->RegisterOutput(out.select_op, sel_dest);

  Schema probe_schema = ProbeHashOperator::OutputSchema(
      sel_schema, {0, 1}, build_table.schema(), {1}, JoinKind::kInner);
  Table* probe_out = plan->CreateTempTable("probe.out", probe_schema,
                                           Layout::kRowStore,
                                           temp_block_bytes);
  InsertDestination* probe_dest = plan->CreateDestination(probe_out);
  auto probe = std::make_unique<ProbeHashOperator>(
      "probe", build_raw, std::vector<int>{0}, std::vector<int>{0, 1},
      JoinKind::kInner, std::vector<ResidualCondition>{}, probe_dest);
  out.probe_op = plan->AddOperator(std::move(probe));
  plan->RegisterOutput(out.probe_op, probe_dest);

  plan->AddStreamingEdge(out.select_op, out.probe_op);
  plan->AddBlockingEdge(out.build_op, out.probe_op);
  plan->SetResultTable(probe_out);
  return out;
}

struct SchedulerParam {
  uint64_t uot_blocks;  // 0 = whole table
  int workers;
  size_t block_bytes;
};

class SchedulerParamTest : public ::testing::TestWithParam<SchedulerParam> {};

TEST_P(SchedulerParamTest, SelectProbeResultInvariantAcrossConfigs) {
  const SchedulerParam p = GetParam();
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 5000, 50,
                                 Layout::kColumnStore, 4096);
  auto build_table = MakeKvTable(&storage, "build", 50, 50,
                                 Layout::kColumnStore, 4096);

  auto reference = MakeSelectProbePlan(&storage, *probe_table, *build_table,
                                       1000.0, 1 << 20);
  ExecConfig ref_config;
  ref_config.num_workers = 1;
  ref_config.uot = UotPolicy::HighUot();
  QueryExecutor::Execute(reference.plan.get(), ref_config);
  const std::string expected =
      CanonicalRows(*reference.plan->result_table());
  EXPECT_FALSE(expected.empty());

  auto tested = MakeSelectProbePlan(&storage, *probe_table, *build_table,
                                    1000.0, p.block_bytes);
  ExecConfig config;
  config.num_workers = p.workers;
  config.uot = p.uot_blocks == 0 ? UotPolicy::HighUot()
                                 : UotPolicy::LowUot(p.uot_blocks);
  ExecutionStats stats = QueryExecutor::Execute(tested.plan.get(), config);
  EXPECT_EQ(CanonicalRows(*tested.plan->result_table()), expected);
  EXPECT_GT(stats.records.size(), 0u);
  EXPECT_GT(stats.QueryMillis(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SchedulerParamTest,
    ::testing::Values(SchedulerParam{1, 1, 512},
                      SchedulerParam{1, 4, 512},
                      SchedulerParam{2, 2, 1024},
                      SchedulerParam{4, 4, 4096},
                      SchedulerParam{0, 1, 512},
                      SchedulerParam{0, 4, 4096},
                      SchedulerParam{1, 8, 16384},
                      SchedulerParam{0, 8, 16384}),
    [](const auto& info) {
      return "uot" + std::to_string(info.param.uot_blocks) + "_w" +
             std::to_string(info.param.workers) + "_b" +
             std::to_string(info.param.block_bytes);
    });

TEST(SchedulerTest, ProbeNeverStartsBeforeBuildFinishes) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 2000, 20,
                                 Layout::kRowStore, 2048);
  auto build_table = MakeKvTable(&storage, "build", 500, 20,
                                 Layout::kRowStore, 2048);
  auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                1024);
  ExecConfig config;
  config.num_workers = 4;
  config.uot = UotPolicy::LowUot(1);
  ExecutionStats stats = QueryExecutor::Execute(sp.plan.get(), config);

  int64_t build_last_end = 0;
  int64_t probe_first_start = INT64_MAX;
  for (const WorkOrderRecord& r : stats.records) {
    if (r.op == sp.build_op) build_last_end = std::max(build_last_end, r.end_ns);
    if (r.op == sp.probe_op) {
      probe_first_start = std::min(probe_first_start, r.start_ns);
    }
  }
  ASSERT_GT(build_last_end, 0);
  ASSERT_LT(probe_first_start, INT64_MAX);
  EXPECT_GE(probe_first_start, build_last_end);
}

TEST(SchedulerTest, LowUotTransfersPerBlockHighUotOnce) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 4000, 10,
                                 Layout::kRowStore, 2048);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 2048);

  auto low = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                 1024);
  ExecConfig low_config;
  low_config.num_workers = 2;
  low_config.uot = UotPolicy::LowUot(1);
  ExecutionStats low_stats = QueryExecutor::Execute(low.plan.get(),
                                                    low_config);

  auto high = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                  1024);
  ExecConfig high_config;
  high_config.num_workers = 2;
  high_config.uot = UotPolicy::HighUot();
  ExecutionStats high_stats = QueryExecutor::Execute(high.plan.get(),
                                                     high_config);

  ASSERT_EQ(low_stats.edge_transfers.size(), 1u);
  ASSERT_EQ(high_stats.edge_transfers.size(), 1u);
  // With the whole-table UoT there is exactly one transfer; with a
  // one-block UoT there are roughly as many transfers as select outputs.
  EXPECT_EQ(high_stats.edge_transfers[0], 1u);
  EXPECT_GT(low_stats.edge_transfers[0], 10u);
  // Both produce the same number of probe work orders in total.
  EXPECT_EQ(low_stats.operators[static_cast<size_t>(low.probe_op)]
                .num_work_orders,
            high_stats.operators[static_cast<size_t>(high.probe_op)]
                .num_work_orders);
}

TEST(SchedulerTest, UotGroupsBlocksPerTransfer) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 4000, 10,
                                 Layout::kRowStore, 2048);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 2048);
  auto one = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                 1024);
  ExecConfig config;
  config.num_workers = 1;
  config.uot = UotPolicy::LowUot(1);
  const uint64_t transfers_k1 =
      QueryExecutor::Execute(one.plan.get(), config).edge_transfers[0];

  auto four = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                  1024);
  config.uot = UotPolicy::LowUot(4);
  const uint64_t transfers_k4 =
      QueryExecutor::Execute(four.plan.get(), config).edge_transfers[0];
  EXPECT_LT(transfers_k4, transfers_k1);
  EXPECT_GE(transfers_k4, transfers_k1 / 4);
}

TEST(SchedulerTest, ConcurrencyCapRespected) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 8000, 10,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 1024);
  auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                1024);
  ExecConfig config;
  config.num_workers = 8;
  config.uot = UotPolicy::LowUot(1);
  config.max_concurrent_per_op = 2;
  ExecutionStats stats = QueryExecutor::Execute(sp.plan.get(), config);

  // Sweep each operator's records for maximum overlap.
  for (int op = 0; op < 3; ++op) {
    std::vector<std::pair<int64_t, int>> events;
    for (const WorkOrderRecord& r : stats.records) {
      if (r.op != op) continue;
      events.emplace_back(r.start_ns, +1);
      events.emplace_back(r.end_ns, -1);
    }
    std::sort(events.begin(), events.end());
    int running = 0, peak = 0;
    for (const auto& [ts, delta] : events) {
      running += delta;
      peak = std::max(peak, running);
    }
    EXPECT_LE(peak, 2) << "operator " << op;
  }
}

TEST(SchedulerTest, MemoryBudgetStillCompletesAndBoundsPeak) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 20000, 10,
                                 Layout::kRowStore, 2048);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 2048);

  ExecConfig config;
  config.num_workers = 4;
  config.uot = UotPolicy::LowUot(1);

  std::string expected;
  int64_t free_peak = 0;
  size_t free_records = 0;
  {
    auto unbounded = MakeSelectProbePlan(&storage, *probe_table,
                                         *build_table, 0.0, 2048);
    ExecutionStats free_stats =
        QueryExecutor::Execute(unbounded.plan.get(), config);
    expected = CanonicalRows(*unbounded.plan->result_table());
    free_peak = free_stats.PeakTemporaryBytes();
    free_records = free_stats.records.size();
  }  // plan destruction drops its temp tables before the bounded run

  auto bounded = MakeSelectProbePlan(&storage, *probe_table, *build_table,
                                     0.0, 2048);
  // Budget barely above the base tables: producer admission throttles.
  config.memory_budget_bytes = storage.tracker().TotalCurrent() + 16 * 1024;
  ExecutionStats bounded_stats =
      QueryExecutor::Execute(bounded.plan.get(), config);

  EXPECT_EQ(CanonicalRows(*bounded.plan->result_table()), expected);
  EXPECT_LE(bounded_stats.PeakTemporaryBytes(), free_peak + 64 * 1024);
  EXPECT_EQ(bounded_stats.records.size(), free_records);
}

TEST(SchedulerTest, StatsAggregatesAreConsistent) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 3000, 10,
                                 Layout::kRowStore, 2048);
  auto build_table = MakeKvTable(&storage, "build", 100, 10,
                                 Layout::kRowStore, 2048);
  auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                2048);
  ExecConfig config;
  config.num_workers = 4;
  ExecutionStats stats = QueryExecutor::Execute(sp.plan.get(), config);

  uint64_t total_records = 0;
  for (const OperatorStats& os : stats.operators) {
    total_records += os.num_work_orders;
    if (os.num_work_orders > 0) {
      EXPECT_GE(os.total_task_ns, 0);
      EXPECT_GE(os.last_end_ns, os.first_start_ns);
      EXPECT_GT(os.avg_task_ms(), 0.0);
    }
  }
  EXPECT_EQ(total_records, stats.records.size());
  for (int op = 0; op < 3; ++op) {
    const double dop = stats.AverageDop(op);
    EXPECT_GE(dop, 0.0);
    EXPECT_LE(dop, 4.5);
  }
  EXPECT_GT(stats.PeakTemporaryBytes(), 0);
  EXPECT_GT(stats.PeakHashTableBytes(), 0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(AverageDopTest, ZeroWorkOrdersIsZero) {
  ExecutionStats stats;
  // No records at all: DOP of any operator is 0, not NaN.
  EXPECT_EQ(stats.AverageDop(0), 0.0);
  // Records exist, but none for operator 5.
  stats.records.push_back(WorkOrderRecord{0, 0, 100, 200});
  EXPECT_EQ(stats.AverageDop(5), 0.0);
}

TEST(AverageDopTest, ZeroSpanIsZero) {
  ExecutionStats stats;
  // All records collapse to a single instant (possible on coarse clocks):
  // there is no interval to integrate over, so the DOP is defined as 0
  // rather than garbage derived from the record count.
  stats.records.push_back(WorkOrderRecord{0, 0, 100, 100});
  stats.records.push_back(WorkOrderRecord{0, 1, 100, 100});
  EXPECT_EQ(stats.AverageDop(0), 0.0);
}

TEST(AverageDopTest, SingleWorkerSequentialRunsAverageToOne) {
  ExecutionStats stats;
  // Back-to-back, non-overlapping records: exactly one running at every
  // point of the span, so the average DOP is 1.
  stats.records.push_back(WorkOrderRecord{0, 0, 0, 100});
  stats.records.push_back(WorkOrderRecord{0, 0, 100, 200});
  stats.records.push_back(WorkOrderRecord{0, 0, 200, 300});
  EXPECT_DOUBLE_EQ(stats.AverageDop(0), 1.0);
}

TEST(AverageDopTest, FullyOverlappingRecordsAverageToCount) {
  ExecutionStats stats;
  // Two records over the identical interval: DOP 2 throughout.
  stats.records.push_back(WorkOrderRecord{0, 0, 0, 100});
  stats.records.push_back(WorkOrderRecord{0, 1, 0, 100});
  EXPECT_DOUBLE_EQ(stats.AverageDop(0), 2.0);
  // A half-overlapping third record: [0,50) has DOP 2, [50,100) DOP 3,
  // [100,150) DOP 1 -> (2*50 + 3*50 + 1*50) / 150.
  stats.records.push_back(WorkOrderRecord{0, 2, 50, 150});
  EXPECT_DOUBLE_EQ(stats.AverageDop(0),
                   (2.0 * 50.0 + 3.0 * 50.0 + 1.0 * 50.0) / 150.0);
}

TEST(SchedulerTest, ToStringIncludesMemoryAndEdgeSummaries) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 2000, 10,
                                 Layout::kRowStore, 2048);
  auto build_table = MakeKvTable(&storage, "build", 50, 10,
                                 Layout::kRowStore, 2048);
  auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                2048);
  ExecConfig config;
  config.num_workers = 2;
  ExecutionStats stats = QueryExecutor::Execute(sp.plan.get(), config);
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("memory peaks:"), std::string::npos);
  EXPECT_NE(rendered.find("MiB"), std::string::npos);
  EXPECT_NE(rendered.find("hash_table="), std::string::npos);
  EXPECT_NE(rendered.find("edge transfers:"), std::string::npos);
}

TEST(SchedulerTest, EmptyProducerStillCompletesConsumers) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 100, 10,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 1024);
  // Threshold filters out every probe row.
  auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 1e12,
                                1024);
  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(1);
  ExecutionStats stats = QueryExecutor::Execute(sp.plan.get(), config);
  EXPECT_EQ(sp.plan->result_table()->NumRows(), 0u);
  EXPECT_EQ(stats.operators[static_cast<size_t>(sp.probe_op)].num_work_orders,
            0u);
}

TEST(SchedulerTest, DiamondPlanFeedsTwoConsumers) {
  // One select output streams to two aggregate consumers (TPC-H Q14 shape).
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 2000, 10, Layout::kRowStore, 2048);
  QueryPlan plan(&storage);

  auto proj = Projection::Identity(input->schema(), {0, 1});
  Schema sel_schema = proj->output_schema();
  Table* sel_out =
      plan.CreateTempTable("sel.out", sel_schema, Layout::kRowStore, 1024);
  InsertDestination* sel_dest = plan.CreateDestination(sel_out);
  auto select = std::make_unique<SelectOperator>(
      "select", std::make_unique<TruePredicate>(), std::move(proj), sel_dest);
  select->AttachBaseTable(input.get());
  const int select_op = plan.AddOperator(std::move(select));
  plan.RegisterOutput(select_op, sel_dest);

  std::vector<Table*> agg_outs;
  for (int i = 0; i < 2; ++i) {
    std::vector<AggSpec> aggs;
    aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum"});
    Schema agg_schema =
        AggregateOperator::OutputSchema(sel_schema, {}, aggs);
    Table* agg_out = plan.CreateTempTable("agg" + std::to_string(i),
                                          agg_schema, Layout::kRowStore,
                                          1024);
    InsertDestination* agg_dest = plan.CreateDestination(agg_out);
    auto agg = std::make_unique<AggregateOperator>(
        "agg" + std::to_string(i), sel_schema, std::vector<int>{},
        std::move(aggs), nullptr, agg_dest);
    const int agg_op = plan.AddOperator(std::move(agg));
    plan.RegisterOutput(agg_op, agg_dest);
    plan.AddStreamingEdge(select_op, agg_op);
    agg_outs.push_back(agg_out);
  }
  plan.SetResultTable(agg_outs[0]);

  ExecConfig config;
  config.num_workers = 3;
  config.uot = UotPolicy::LowUot(1);
  QueryExecutor::Execute(&plan, config);
  ASSERT_EQ(agg_outs[0]->NumRows(), 1u);
  ASSERT_EQ(agg_outs[1]->NumRows(), 1u);
  const double expected = 2000.0 * 1999.0 / 2.0;
  EXPECT_DOUBLE_EQ(agg_outs[0]->GetValue(0, 0).AsDouble(), expected);
  EXPECT_DOUBLE_EQ(agg_outs[1]->GetValue(0, 0).AsDouble(), expected);
}

TEST(SchedulerTest, DropConsumedBlocksCoversEveryStreamingInput) {
  // Regression: droppable producer tables were tracked one-per-consumer, so
  // a consumer with two streaming inputs (sort-merge join) dropped only the
  // blocks of whichever edge was registered last — the other intermediate
  // leaked for the rest of the query.
  StorageManager storage;
  auto left_in = MakeKvTable(&storage, "left", 300, 10,
                             Layout::kRowStore, 1024);
  auto right_in = MakeKvTable(&storage, "right", 300, 10,
                              Layout::kRowStore, 1024);
  QueryPlan plan(&storage);

  std::vector<Table*> sel_outs;
  std::vector<int> sel_ops;
  const Table* inputs[2] = {left_in.get(), right_in.get()};
  for (int side = 0; side < 2; ++side) {
    auto proj = Projection::Identity(inputs[side]->schema(), {0, 1});
    Schema sel_schema = proj->output_schema();
    Table* sel_out = plan.CreateTempTable("sel" + std::to_string(side),
                                          sel_schema, Layout::kRowStore,
                                          1024);
    InsertDestination* sel_dest = plan.CreateDestination(sel_out);
    auto select = std::make_unique<SelectOperator>(
        "select" + std::to_string(side), std::make_unique<TruePredicate>(),
        std::move(proj), sel_dest);
    select->AttachBaseTable(inputs[side]);
    const int op = plan.AddOperator(std::move(select));
    plan.RegisterOutput(op, sel_dest);
    sel_outs.push_back(sel_out);
    sel_ops.push_back(op);
  }

  const Schema& left_schema = sel_outs[0]->schema();
  const Schema& right_schema = sel_outs[1]->schema();
  Schema join_schema = SortMergeJoinOperator::OutputSchema(
      left_schema, {0, 1}, right_schema, {1});
  Table* join_out = plan.CreateTempTable("join.out", join_schema,
                                         Layout::kRowStore, 4096);
  InsertDestination* join_dest = plan.CreateDestination(join_out);
  auto join = std::make_unique<SortMergeJoinOperator>(
      "smj", left_schema, right_schema, std::vector<int>{0},
      std::vector<int>{0}, std::vector<int>{0, 1}, std::vector<int>{1},
      join_dest);
  const int join_op = plan.AddOperator(std::move(join));
  plan.RegisterOutput(join_op, join_dest);
  plan.AddStreamingEdge(sel_ops[0], join_op, /*consumer_input=*/0);
  plan.AddStreamingEdge(sel_ops[1], join_op, /*consumer_input=*/1);
  plan.SetResultTable(join_out);

  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(1);
  ASSERT_TRUE(config.drop_consumed_blocks);
  QueryExecutor::Execute(&plan, config);

  // 30 matches per key and 10 keys per side.
  EXPECT_EQ(join_out->NumRows(), 10u * 30u * 30u);
  // Both select intermediates must have been dropped, not just the one on
  // the last-registered edge.
  EXPECT_TRUE(sel_outs[0]->blocks().empty())
      << "left select intermediate leaked";
  EXPECT_TRUE(sel_outs[1]->blocks().empty())
      << "right select intermediate leaked";
}

TEST(SchedulerTest, BudgetDeferralsCountOnlyBudgetForcedDeferrals) {
  // Regression: with any memory budget set, every producer work order used
  // to bump scheduler.budget.deferrals (and emit kBudgetDefer) even when
  // the budget never constrained anything.
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 8000, 10,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 1024);

  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(1);

  std::string expected;
  {
    auto free_run = MakeSelectProbePlan(&storage, *probe_table, *build_table,
                                        0.0, 1024);
    QueryExecutor::Execute(free_run.plan.get(), config);
    expected = CanonicalRows(*free_run.plan->result_table());
  }

  {
    // A budget far above anything the query allocates: zero deferrals.
    obs::MetricsRegistry metrics;
    auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                  1024);
    config.memory_budget_bytes = int64_t{1} << 40;
    config.metrics = &metrics;
    QueryExecutor::Execute(sp.plan.get(), config);
    const obs::Counter* deferrals =
        metrics.FindCounter("scheduler.budget.deferrals");
    ASSERT_NE(deferrals, nullptr);
    EXPECT_EQ(deferrals->Value(), 0u);
    EXPECT_EQ(CanonicalRows(*sp.plan->result_table()), expected);
  }

  {
    // A budget below even the base tables: every producer admission is a
    // genuine budget deferral, and each one is traced exactly once.
    obs::MetricsRegistry metrics;
    obs::TraceSession trace;
    auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                  1024);
    config.memory_budget_bytes = 1;
    config.metrics = &metrics;
    config.trace = &trace;
    QueryExecutor::Execute(sp.plan.get(), config);
    const obs::Counter* deferrals =
        metrics.FindCounter("scheduler.budget.deferrals");
    ASSERT_NE(deferrals, nullptr);
    EXPECT_GT(deferrals->Value(), 0u);
    uint64_t defer_events = 0, release_events = 0;
    for (const obs::TraceEvent& e : trace.SortedEvents()) {
      if (e.type == obs::TraceEventType::kBudgetDefer) ++defer_events;
      if (e.type == obs::TraceEventType::kBudgetRelease) ++release_events;
    }
    EXPECT_EQ(defer_events, deferrals->Value());
    EXPECT_EQ(release_events, deferrals->Value());
    EXPECT_EQ(CanonicalRows(*sp.plan->result_table()), expected);
  }
}

/// MakeSelectProbePlan plus a group-by aggregation consuming the probe
/// output: select -> probe -> agg, two streaming edges
/// (0: select->probe, 1: probe->agg).
struct ChainPlan {
  std::unique_ptr<QueryPlan> plan;
  int select_op = -1;
  int probe_op = -1;
  int agg_op = -1;
};

ChainPlan MakeSelectProbeAggPlan(StorageManager* storage,
                                 const Table& probe_table,
                                 const Table& build_table, double threshold,
                                 size_t temp_block_bytes) {
  SelectProbePlan sp = MakeSelectProbePlan(storage, probe_table, build_table,
                                           threshold, temp_block_bytes);
  ChainPlan out;
  out.plan = std::move(sp.plan);
  out.select_op = sp.select_op;
  out.probe_op = sp.probe_op;
  QueryPlan* plan = out.plan.get();

  const Schema& probe_schema = plan->result_table()->schema();
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum_v"});
  Schema agg_schema =
      AggregateOperator::OutputSchema(probe_schema, {0}, aggs);
  Table* agg_out = plan->CreateTempTable("agg.out", agg_schema,
                                         Layout::kRowStore,
                                         temp_block_bytes);
  InsertDestination* agg_dest = plan->CreateDestination(agg_out);
  auto agg = std::make_unique<AggregateOperator>(
      "agg", probe_schema, std::vector<int>{0}, std::move(aggs), nullptr,
      agg_dest);
  out.agg_op = plan->AddOperator(std::move(agg));
  plan->RegisterOutput(out.agg_op, agg_dest);
  plan->AddStreamingEdge(out.probe_op, out.agg_op);
  plan->SetResultTable(agg_out);
  return out;
}

TEST(PerEdgeUotTest, AnnotationOverridesSessionDefault) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 4000, 40,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 40, 40,
                                 Layout::kRowStore, 1024);

  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(1);

  auto reference = MakeSelectProbePlan(&storage, *probe_table, *build_table,
                                       0.0, 1024);
  ExecutionStats ref_stats =
      QueryExecutor::Execute(reference.plan.get(), config);
  const std::string expected =
      CanonicalRows(*reference.plan->result_table());
  ASSERT_FALSE(expected.empty());
  ASSERT_GT(ref_stats.edge_transfers[0], 1u);  // many 1-block transfers

  auto pinned = MakeSelectProbePlan(&storage, *probe_table, *build_table,
                                    0.0, 1024);
  pinned.plan->AnnotateEdgeUot(0, UotPolicy::HighUot());
  ASSERT_TRUE(pinned.plan->edge_uot(0).has_value());
  EXPECT_TRUE(pinned.plan->edge_uot(0)->IsWholeTable());
  EXPECT_NE(pinned.plan->ToString().find("UoT=whole-table"),
            std::string::npos);
  ExecutionStats stats = QueryExecutor::Execute(pinned.plan.get(), config);
  // The pinned edge materialized (one transfer at producer finish) even
  // though the session default is 1-block pipelining.
  EXPECT_EQ(stats.edge_transfers[0], 1u);
  EXPECT_EQ(CanonicalRows(*pinned.plan->result_table()), expected);
}

TEST(PerEdgeUotTest, MixedPoliciesAreByteIdenticalAcrossChain) {
  // Whole-table producer feeding a 1-block consumer, and vice versa: every
  // mix over the select -> probe -> agg chain must give identical results.
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 5000, 50,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 50, 50,
                                 Layout::kRowStore, 1024);

  ExecConfig config;
  config.num_workers = 4;
  config.uot = UotPolicy::LowUot(1);

  std::string expected;
  {
    auto reference = MakeSelectProbeAggPlan(&storage, *probe_table,
                                            *build_table, 0.0, 1024);
    QueryExecutor::Execute(reference.plan.get(), config);
    expected = CanonicalRows(*reference.plan->result_table());
    ASSERT_FALSE(expected.empty());
  }

  const uint64_t kWhole = UotPolicy::kWholeTable;
  const struct {
    uint64_t edge0;  // select -> probe
    uint64_t edge1;  // probe -> agg
  } mixes[] = {{kWhole, 1}, {1, kWhole}, {4, kWhole}, {kWhole, kWhole},
               {2, 8}};
  for (const auto& mix : mixes) {
    auto chain = MakeSelectProbeAggPlan(&storage, *probe_table, *build_table,
                                        0.0, 1024);
    chain.plan->AnnotateEdgeUot(0, UotPolicy(mix.edge0));
    chain.plan->AnnotateEdgeUot(1, UotPolicy(mix.edge1));
    ExecutionStats stats = QueryExecutor::Execute(chain.plan.get(), config);
    EXPECT_EQ(CanonicalRows(*chain.plan->result_table()), expected)
        << "mix " << UotPolicy(mix.edge0).ToString() << " / "
        << UotPolicy(mix.edge1).ToString() << "\n"
        << stats.ToString();
    if (mix.edge0 == kWhole) EXPECT_EQ(stats.edge_transfers[0], 1u);
    if (mix.edge1 == kWhole) EXPECT_EQ(stats.edge_transfers[1], 1u);
  }
}

TEST(PerEdgeUotTest, ZeroOutputProducerCompletesUnderEveryMix) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 1000, 10,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 1024);

  ExecConfig config;
  config.num_workers = 2;
  const uint64_t kWhole = UotPolicy::kWholeTable;
  const struct {
    uint64_t edge0;
    uint64_t edge1;
  } mixes[] = {{kWhole, 1}, {1, kWhole}, {kWhole, kWhole}};
  for (const auto& mix : mixes) {
    // Threshold no value reaches: the select produces zero blocks.
    auto chain = MakeSelectProbeAggPlan(&storage, *probe_table, *build_table,
                                        1e12, 1024);
    chain.plan->AnnotateEdgeUot(0, UotPolicy(mix.edge0));
    chain.plan->AnnotateEdgeUot(1, UotPolicy(mix.edge1));
    ExecutionStats stats = QueryExecutor::Execute(chain.plan.get(), config);
    EXPECT_EQ(chain.plan->result_table()->NumRows(), 0u);
    // An empty stream delivers no transfers, only the final flush.
    EXPECT_EQ(stats.edge_transfers[0], 0u);
    EXPECT_EQ(stats.edge_transfers[1], 0u);
  }
}

TEST(PerEdgeUotTest, MultiInputConsumerWithMixedEdgeUot) {
  // A sort-merge join with one materializing input edge and one pipelining
  // input edge: results match the all-pipelining run and both consumed
  // intermediates are still dropped.
  StorageManager storage;
  auto left_in = MakeKvTable(&storage, "left", 300, 10,
                             Layout::kRowStore, 1024);
  auto right_in = MakeKvTable(&storage, "right", 300, 10,
                              Layout::kRowStore, 1024);

  auto make_plan = [&](uint64_t left_uot, uint64_t right_uot) {
    auto plan = std::make_unique<QueryPlan>(&storage);
    std::vector<Table*> sel_outs;
    std::vector<int> sel_ops;
    const Table* inputs[2] = {left_in.get(), right_in.get()};
    for (int side = 0; side < 2; ++side) {
      auto proj = Projection::Identity(inputs[side]->schema(), {0, 1});
      Schema sel_schema = proj->output_schema();
      Table* sel_out = plan->CreateTempTable("sel" + std::to_string(side),
                                             sel_schema, Layout::kRowStore,
                                             1024);
      InsertDestination* sel_dest = plan->CreateDestination(sel_out);
      auto select = std::make_unique<SelectOperator>(
          "select" + std::to_string(side), std::make_unique<TruePredicate>(),
          std::move(proj), sel_dest);
      select->AttachBaseTable(inputs[side]);
      const int op = plan->AddOperator(std::move(select));
      plan->RegisterOutput(op, sel_dest);
      sel_outs.push_back(sel_out);
      sel_ops.push_back(op);
    }
    Schema join_schema = SortMergeJoinOperator::OutputSchema(
        sel_outs[0]->schema(), {0, 1}, sel_outs[1]->schema(), {1});
    Table* join_out = plan->CreateTempTable("join.out", join_schema,
                                            Layout::kRowStore, 4096);
    InsertDestination* join_dest = plan->CreateDestination(join_out);
    auto join = std::make_unique<SortMergeJoinOperator>(
        "smj", sel_outs[0]->schema(), sel_outs[1]->schema(),
        std::vector<int>{0}, std::vector<int>{0}, std::vector<int>{0, 1},
        std::vector<int>{1}, join_dest);
    const int join_op = plan->AddOperator(std::move(join));
    plan->RegisterOutput(join_op, join_dest);
    plan->AddStreamingEdge(sel_ops[0], join_op, /*consumer_input=*/0);
    plan->AddStreamingEdge(sel_ops[1], join_op, /*consumer_input=*/1);
    plan->SetResultTable(join_out);
    if (left_uot != 0) plan->AnnotateEdgeUot(0, UotPolicy(left_uot));
    if (right_uot != 0) plan->AnnotateEdgeUot(1, UotPolicy(right_uot));
    struct Out {
      std::unique_ptr<QueryPlan> plan;
      Table* left_intermediate;
      Table* right_intermediate;
    };
    return Out{std::move(plan), sel_outs[0], sel_outs[1]};
  };

  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(1);

  auto reference = make_plan(0, 0);
  QueryExecutor::Execute(reference.plan.get(), config);
  const std::string expected = CanonicalRows(*reference.plan->result_table());
  ASSERT_FALSE(expected.empty());

  const uint64_t kWhole = UotPolicy::kWholeTable;
  const struct {
    uint64_t left;
    uint64_t right;
  } mixes[] = {{kWhole, 1}, {1, kWhole}, {kWhole, kWhole}};
  for (const auto& mix : mixes) {
    auto mixed = make_plan(mix.left, mix.right);
    ExecutionStats stats = QueryExecutor::Execute(mixed.plan.get(), config);
    EXPECT_EQ(CanonicalRows(*mixed.plan->result_table()), expected);
    if (mix.left == kWhole) EXPECT_EQ(stats.edge_transfers[0], 1u);
    if (mix.right == kWhole) EXPECT_EQ(stats.edge_transfers[1], 1u);
    EXPECT_TRUE(mixed.left_intermediate->blocks().empty());
    EXPECT_TRUE(mixed.right_intermediate->blocks().empty());
  }
}

/// A per-edge policy expressed through the interface instead of plan
/// annotations: edge 0 materializes, every other edge pipelines.
class FirstEdgeMaterializesPolicy final : public EdgeUotPolicy {
 public:
  using EdgeUotPolicy::BlocksPerTransfer;
  uint64_t BlocksPerTransfer(const EdgeRuntimeState& edge) override {
    return edge.edge_index == 0 ? UotPolicy::kWholeTable : 1;
  }
  std::string ToString() const override { return "first-edge-whole"; }
};

TEST(PerEdgeUotTest, InterfacePolicyMatchesEquivalentAnnotations) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 4000, 40,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 40, 40,
                                 Layout::kRowStore, 1024);

  auto annotated = MakeSelectProbeAggPlan(&storage, *probe_table,
                                          *build_table, 0.0, 1024);
  annotated.plan->AnnotateEdgeUot(0, UotPolicy::HighUot());
  annotated.plan->AnnotateEdgeUot(1, UotPolicy::LowUot(1));
  ExecConfig config;
  config.num_workers = 2;
  ExecutionStats annotated_stats =
      QueryExecutor::Execute(annotated.plan.get(), config);

  auto via_policy = MakeSelectProbeAggPlan(&storage, *probe_table,
                                           *build_table, 0.0, 1024);
  ExecConfig policy_config;
  policy_config.num_workers = 2;
  policy_config.uot_policy =
      std::make_shared<FirstEdgeMaterializesPolicy>();
  ExecutionStats policy_stats =
      QueryExecutor::Execute(via_policy.plan.get(), policy_config);

  EXPECT_EQ(CanonicalRows(*via_policy.plan->result_table()),
            CanonicalRows(*annotated.plan->result_table()));
  EXPECT_EQ(policy_stats.edge_transfers, annotated_stats.edge_transfers);
  EXPECT_NE(policy_stats.config_summary.find("first-edge-whole"),
            std::string::npos);
}

/// A broken policy: returns 0 blocks per transfer.
class ZeroUotPolicy final : public EdgeUotPolicy {
 public:
  using EdgeUotPolicy::BlocksPerTransfer;
  uint64_t BlocksPerTransfer(const EdgeRuntimeState&) override { return 0; }
  std::string ToString() const override { return "zero"; }
};

TEST(PerEdgeUotDeathTest, PolicyReturningZeroAbortsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 200, 10,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 1024);
  auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                1024);
  ExecConfig config;
  config.num_workers = 1;
  config.uot_policy = std::make_shared<ZeroUotPolicy>();
  EXPECT_DEATH(QueryExecutor::Execute(sp.plan.get(), config),
               "blocks != 0");
}

TEST(PerEdgeUotTest, AdaptivePolicyNarrowsUnderBudgetPressure) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 8000, 10,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 1024);

  ExecConfig config;
  config.num_workers = 2;
  std::string expected;
  {
    auto free_run = MakeSelectProbePlan(&storage, *probe_table, *build_table,
                                        0.0, 1024);
    QueryExecutor::Execute(free_run.plan.get(), config);
    expected = CanonicalRows(*free_run.plan->result_table());
  }

  obs::MetricsRegistry metrics;
  auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                1024);
  auto adaptive = std::make_shared<AdaptiveUotPolicy>();
  config.uot_policy = adaptive;
  config.memory_budget_bytes = 1;  // every consultation sees pressure
  config.metrics = &metrics;
  ExecutionStats stats = QueryExecutor::Execute(sp.plan.get(), config);

  EXPECT_EQ(CanonicalRows(*sp.plan->result_table()), expected);
  // Seeded at 4 blocks, pressure narrows toward 1: at least one adaptation,
  // mirrored in the policy, the stats and the metrics registry.
  EXPECT_GE(adaptive->adaptations(), 1u);
  EXPECT_GE(stats.uot_adaptations, 1u);
  const obs::Counter* adaptations = metrics.FindCounter("uot.adaptations");
  ASSERT_NE(adaptations, nullptr);
  EXPECT_EQ(adaptations->Value(), stats.uot_adaptations);
  const obs::Gauge* gauge =
      metrics.FindGauge("uot.edge.0.effective_blocks");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->Value(), 1);  // narrowed all the way down
  EXPECT_NE(stats.config_summary.find("adaptive("), std::string::npos);
}

TEST(PerEdgeUotTest, BudgetStallsCountDeniedReleases) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 8000, 10,
                                 Layout::kRowStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 10, 10,
                                 Layout::kRowStore, 1024);

  obs::MetricsRegistry metrics;
  auto sp = MakeSelectProbePlan(&storage, *probe_table, *build_table, 0.0,
                                1024);
  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(1);
  config.memory_budget_bytes = 1;  // permanently over budget
  config.metrics = &metrics;
  ExecutionStats stats = QueryExecutor::Execute(sp.plan.get(), config);

  const obs::Counter* stalls =
      metrics.FindCounter("scheduler.budget.stalls");
  ASSERT_NE(stalls, nullptr);
  EXPECT_GT(stalls->Value(), 0u);
  EXPECT_EQ(stalls->Value(), stats.budget_stalls);
  const obs::Counter* deferrals =
      metrics.FindCounter("scheduler.budget.deferrals");
  ASSERT_NE(deferrals, nullptr);
  EXPECT_EQ(deferrals->Value(), stats.budget_deferrals);
}

}  // namespace
}  // namespace uot
