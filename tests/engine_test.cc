#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/adaptive_uot_policy.h"
#include "exec/engine.h"
#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "obs/trace_session.h"
#include "operators/aggregate_operator.h"
#include "operators/select_operator.h"
#include "test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace uot {
namespace {

using testing::MakeKvTable;

/// A simple latch so concurrently submitted queries really race: every
/// thread blocks here until all have been spawned.
class StartGate {
 public:
  explicit StartGate(int expected) : expected_(expected) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (++arrived_ >= expected_) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return arrived_ >= expected_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  const int expected_;
  int arrived_ = 0;
};

/// A manually opened gate: work orders built on it block a worker until
/// the test releases them, making admission races deterministic.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// An operator whose single work order blocks on a Gate: a query of
/// test-controlled duration.
class GateOperator final : public Operator {
 public:
  GateOperator(std::string name, Gate* gate)
      : Operator(std::move(name)), gate_(gate) {}

  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override {
    if (!emitted_) {
      emitted_ = true;
      out->push_back(std::make_unique<GateWorkOrder>(gate_));
    }
    return true;
  }

 private:
  struct GateWorkOrder final : WorkOrder {
    explicit GateWorkOrder(Gate* g) : gate(g) {}
    void Execute() override { gate->Wait(); }
    Gate* gate;
  };

  Gate* gate_;
  bool emitted_ = false;
};

std::unique_ptr<QueryPlan> MakeGatedPlan(StorageManager* storage, Gate* gate) {
  auto plan = std::make_unique<QueryPlan>(storage);
  plan->AddOperator(std::make_unique<GateOperator>("gate", gate));
  return plan;
}

/// select(in: v >= threshold) -> agg(sum(v)) over a plan-owned pipeline:
/// a small two-operator plan for engine-level tests.
std::unique_ptr<QueryPlan> MakeSelectAggPlan(StorageManager* storage,
                                             const Table& input,
                                             double threshold) {
  auto plan = std::make_unique<QueryPlan>(storage);
  auto proj = Projection::Identity(input.schema(), {0, 1});
  Schema sel_schema = proj->output_schema();
  Table* sel_out = plan->CreateTempTable("sel.out", sel_schema,
                                         Layout::kRowStore, 1024);
  InsertDestination* sel_dest = plan->CreateDestination(sel_out);
  auto select = std::make_unique<SelectOperator>(
      "select",
      Cmp(CompareOp::kGe, Col(1, Type::Double()), LitDouble(threshold)),
      std::move(proj), sel_dest);
  select->AttachBaseTable(&input);
  const int select_op = plan->AddOperator(std::move(select));
  plan->RegisterOutput(select_op, sel_dest);

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum"});
  Schema agg_schema = AggregateOperator::OutputSchema(sel_schema, {}, aggs);
  Table* agg_out = plan->CreateTempTable("agg.out", agg_schema,
                                         Layout::kRowStore, 1024);
  InsertDestination* agg_dest = plan->CreateDestination(agg_out);
  auto agg = std::make_unique<AggregateOperator>(
      "agg", sel_schema, std::vector<int>{}, std::move(aggs), nullptr,
      agg_dest);
  const int agg_op = plan->AddOperator(std::move(agg));
  plan->RegisterOutput(agg_op, agg_dest);
  plan->AddStreamingEdge(select_op, agg_op);
  plan->SetResultTable(agg_out);
  return plan;
}

TEST(EngineTest, RunsManyQueriesSequentiallyOnOnePool) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 4000, 10, Layout::kRowStore, 2048);

  EngineConfig engine_config;
  engine_config.num_workers = 4;
  Engine engine(engine_config);

  ExecConfig config;
  config.uot = UotPolicy::LowUot(1);
  std::string expected;
  for (int i = 0; i < 3; ++i) {
    auto plan = MakeSelectAggPlan(&storage, *input, 0.0);
    ExecutionStats stats = engine.Execute(plan.get(), config);
    EXPECT_GT(stats.records.size(), 0u);
    EXPECT_GT(stats.query_id, 0u);
    const std::string rows = CanonicalRows(*plan->result_table());
    if (i == 0) {
      expected = rows;
    } else {
      EXPECT_EQ(rows, expected);
    }
  }
  EXPECT_EQ(engine.queries_executed(), 3u);
  EXPECT_EQ(engine.active_queries(), 0);
}

TEST(EngineTest, ConcurrentSyntheticQueriesMatchSerial) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 8000, 16, Layout::kRowStore, 2048);

  ExecConfig config;
  config.uot = UotPolicy::LowUot(1);

  std::string expected;
  {
    auto plan = MakeSelectAggPlan(&storage, *input, 100.0);
    QueryExecutor::Execute(plan.get(), config);
    expected = CanonicalRows(*plan->result_table());
  }
  ASSERT_FALSE(expected.empty());

  EngineConfig engine_config;
  engine_config.num_workers = 4;
  Engine engine(engine_config);

  constexpr int kQueries = 6;
  std::vector<std::unique_ptr<QueryPlan>> plans;
  for (int i = 0; i < kQueries; ++i) {
    plans.push_back(MakeSelectAggPlan(&storage, *input, 100.0));
  }
  StartGate gate(kQueries);
  std::vector<std::thread> threads;
  std::vector<uint64_t> ids(kQueries, 0);
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      gate.ArriveAndWait();
      ids[static_cast<size_t>(i)] =
          engine.Execute(plans[static_cast<size_t>(i)].get(), config)
              .query_id;
    });
  }
  for (auto& t : threads) t.join();

  std::set<uint64_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kQueries));
  for (const auto& plan : plans) {
    EXPECT_EQ(CanonicalRows(*plan->result_table()), expected);
  }
  EXPECT_EQ(engine.queries_executed(), static_cast<uint64_t>(kQueries));
}

/// The headline stress test: several full TPC-H queries executing
/// simultaneously on one shared engine return exactly the rows of their
/// serial runs. Run under -fsanitize=thread in CI (see UOT_TSAN).
TEST(EngineStressTest, ConcurrentTpchQueriesMatchSerial) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig tpch_config;
  tpch_config.scale_factor = 0.004;
  db.Generate(tpch_config);

  const std::vector<int> queries = {1, 3, 6, 10, 12, 14};
  TpchPlanConfig plan_config;

  EngineConfig engine_config;
  engine_config.num_workers = 8;
  Engine engine(engine_config);

  ExecConfig config;
  config.uot = UotPolicy::LowUot(1);

  // Serial reference runs on the same engine.
  std::map<int, std::string> expected;
  for (int query : queries) {
    auto plan = BuildTpchPlan(query, db, plan_config);
    engine.Execute(plan.get(), config);
    expected[query] = CanonicalRows(*plan->result_table());
  }

  // All queries at once, each driven by its own thread.
  std::vector<std::unique_ptr<QueryPlan>> plans;
  for (int query : queries) plans.push_back(BuildTpchPlan(query, db, plan_config));
  StartGate gate(static_cast<int>(queries.size()));
  std::vector<std::thread> threads;
  for (size_t i = 0; i < queries.size(); ++i) {
    threads.emplace_back([&, i] {
      gate.ArriveAndWait();
      engine.Execute(plans[i].get(), config);
    });
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(CanonicalRows(*plans[i]->result_table()),
              expected[queries[i]])
        << "Q" << queries[i] << " diverged under concurrency";
  }
}

TEST(EngineTest, MaxInflightAdmissionSerializesQueries) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 20000, 16, Layout::kRowStore, 1024);

  EngineConfig engine_config;
  engine_config.num_workers = 2;
  engine_config.max_inflight_queries = 1;
  Engine engine(engine_config);

  ExecConfig config;
  config.uot = UotPolicy::LowUot(1);

  auto plan_a = MakeSelectAggPlan(&storage, *input, 0.0);
  auto plan_b = MakeSelectAggPlan(&storage, *input, 0.0);
  ExecutionStats stats_a, stats_b;
  StartGate gate(2);
  std::thread ta([&] {
    gate.ArriveAndWait();
    stats_a = engine.Execute(plan_a.get(), config);
  });
  std::thread tb([&] {
    gate.ArriveAndWait();
    stats_b = engine.Execute(plan_b.get(), config);
  });
  ta.join();
  tb.join();

  // With one admission slot the two executions must not overlap.
  const bool a_first = stats_a.query_start_ns <= stats_b.query_start_ns;
  const ExecutionStats& first = a_first ? stats_a : stats_b;
  const ExecutionStats& second = a_first ? stats_b : stats_a;
  EXPECT_GE(second.query_start_ns, first.query_end_ns);
  EXPECT_GE(second.admission_wait_ns, 0);
}

TEST(EngineTest, SharedMemoryBudgetHoldsSecondQueryAtAdmission) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 20000, 16, Layout::kRowStore, 1024);

  EngineConfig engine_config;
  engine_config.num_workers = 2;
  // The base table alone exceeds the engine budget, so only the progress
  // guarantee admits queries: one at a time.
  engine_config.memory_budget_bytes = 1;
  Engine engine(engine_config);
  ASSERT_GT(storage.tracker().TotalCurrent(), 1);

  ExecConfig config;
  config.uot = UotPolicy::LowUot(1);

  auto plan_a = MakeSelectAggPlan(&storage, *input, 0.0);
  auto plan_b = MakeSelectAggPlan(&storage, *input, 0.0);
  ExecutionStats stats_a, stats_b;
  StartGate gate(2);
  std::thread ta([&] {
    gate.ArriveAndWait();
    stats_a = engine.Execute(plan_a.get(), config);
  });
  std::thread tb([&] {
    gate.ArriveAndWait();
    stats_b = engine.Execute(plan_b.get(), config);
  });
  ta.join();
  tb.join();

  const bool a_first = stats_a.query_start_ns <= stats_b.query_start_ns;
  const ExecutionStats& first = a_first ? stats_a : stats_b;
  const ExecutionStats& second = a_first ? stats_b : stats_a;
  EXPECT_GE(second.query_start_ns, first.query_end_ns);
}

TEST(EngineTest, MetricsPrefixKeepsSharedRegistryPerQuery) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 2000, 8, Layout::kRowStore, 1024);

  EngineConfig engine_config;
  engine_config.num_workers = 2;
  Engine engine(engine_config);

  obs::MetricsRegistry registry;
  for (const char* prefix : {"q1.", "q2."}) {
    auto plan = MakeSelectAggPlan(&storage, *input, 0.0);
    ExecConfig config;
    config.uot = UotPolicy::LowUot(1);
    config.metrics = &registry;
    config.metrics_prefix = prefix;
    engine.Execute(plan.get(), config);
  }

  const obs::Counter* q1 = registry.FindCounter("q1.scheduler.work_orders");
  const obs::Counter* q2 = registry.FindCounter("q2.scheduler.work_orders");
  ASSERT_NE(q1, nullptr);
  ASSERT_NE(q2, nullptr);
  EXPECT_GT(q1->Value(), 0u);
  EXPECT_GT(q2->Value(), 0u);
  // No untagged metrics leak out of prefixed sessions.
  EXPECT_EQ(registry.FindCounter("scheduler.work_orders"), nullptr);
}

TEST(EngineTest, TraceStaysPerQueryUnderConcurrency) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 8000, 16, Layout::kRowStore, 1024);

  EngineConfig engine_config;
  engine_config.num_workers = 4;
  Engine engine(engine_config);

  constexpr int kQueries = 3;
  std::vector<std::unique_ptr<QueryPlan>> plans;
  std::vector<std::unique_ptr<obs::TraceSession>> traces;
  std::vector<ExecutionStats> stats(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    plans.push_back(MakeSelectAggPlan(&storage, *input, 0.0));
    traces.push_back(std::make_unique<obs::TraceSession>());
  }
  StartGate gate(kQueries);
  std::vector<std::thread> threads;
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      ExecConfig config;
      config.uot = UotPolicy::LowUot(1);
      config.trace = traces[static_cast<size_t>(i)].get();
      gate.ArriveAndWait();
      stats[static_cast<size_t>(i)] =
          engine.Execute(plans[static_cast<size_t>(i)].get(), config);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kQueries; ++i) {
    size_t query_spans = 0, work_order_spans = 0;
    for (const obs::TraceEvent& e :
         traces[static_cast<size_t>(i)]->SortedEvents()) {
      if (e.type == obs::TraceEventType::kQuery) {
        ++query_spans;
        EXPECT_EQ(static_cast<uint64_t>(e.arg0),
                  stats[static_cast<size_t>(i)].query_id);
      }
      if (e.type == obs::TraceEventType::kWorkOrder) ++work_order_spans;
    }
    // Every session's trace holds exactly its own query span and exactly
    // its own work orders, no matter which pool worker executed them.
    EXPECT_EQ(query_spans, 1u);
    EXPECT_EQ(work_order_spans,
              stats[static_cast<size_t>(i)].records.size());
  }
}

TEST(EngineTest, ShutdownDrainsAndSurvivesDoubleCall) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 1000, 8, Layout::kRowStore, 1024);
  EngineConfig engine_config;
  engine_config.num_workers = 2;
  Engine engine(engine_config);
  auto plan = MakeSelectAggPlan(&storage, *input, 0.0);
  ExecConfig config;
  engine.Execute(plan.get(), config);
  engine.Shutdown();
  engine.Shutdown();  // idempotent
  EXPECT_EQ(engine.queries_executed(), 1u);
}

/// Regression: a query blocked in the admission wait when Shutdown() ran
/// used to be admitted into the already-closing worker pool (the wait
/// predicate ignored shutdown_). It must be rejected instead, and
/// Shutdown() must not close the queue while waiters are still parked.
/// Runs under -fsanitize=thread in CI.
TEST(EngineTest, ShutdownRejectsAdmissionWaiters) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 1000, 8, Layout::kRowStore, 1024);

  EngineConfig engine_config;
  engine_config.num_workers = 1;
  engine_config.max_inflight_queries = 1;
  Engine engine(engine_config);

  ExecConfig config;
  Gate gate;
  auto gated_plan = MakeGatedPlan(&storage, &gate);
  auto waiter_plan = MakeSelectAggPlan(&storage, *input, 0.0);

  // A occupies the single admission slot, blocked on the gate.
  Status status_a, status_b;
  ExecutionStats stats_a, stats_b;
  std::thread ta([&] {
    status_a = engine.ExecuteOrReject(gated_plan.get(), config, &stats_a);
  });
  while (engine.active_queries() != 1) std::this_thread::yield();

  // B parks in the admission wait behind A.
  std::thread tb([&] {
    status_b = engine.ExecuteOrReject(waiter_plan.get(), config, &stats_b);
  });
  while (engine.admission_waiters() != 1) std::this_thread::yield();

  // Shutdown while B waits. B can only return by rejection: admission
  // requires A to finish, and A is held on the still-closed gate.
  std::thread ts([&] { engine.Shutdown(); });
  tb.join();
  EXPECT_FALSE(status_b.ok());
  EXPECT_EQ(status_b.code(), StatusCode::kFailedPrecondition);

  gate.Open();
  ta.join();
  ts.join();
  EXPECT_TRUE(status_a.ok());
  EXPECT_EQ(engine.queries_executed(), 1u);
  EXPECT_EQ(engine.admission_waiters(), 0);
  EXPECT_EQ(engine.metrics()->GetCounter("engine.admission_rejections")
                ->Value(),
            1u);

  // After Shutdown, ExecuteOrReject rejects immediately instead of
  // CHECK-failing like Execute().
  ExecutionStats stats_c;
  auto late_plan = MakeSelectAggPlan(&storage, *input, 0.0);
  EXPECT_FALSE(engine.ExecuteOrReject(late_plan.get(), config, &stats_c).ok());
}

/// Regression: admission used notify_all + a bare headroom predicate, so
/// whichever waiter won the wake-up race got the slot — later arrivals
/// could starve an earlier query indefinitely. Tickets make admission
/// strictly FIFO: with one slot, queries must start in arrival order.
/// Runs under -fsanitize=thread in CI.
TEST(EngineTest, AdmissionIsFifoInArrivalOrder) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 1000, 8, Layout::kRowStore, 1024);

  EngineConfig engine_config;
  engine_config.num_workers = 1;
  engine_config.max_inflight_queries = 1;
  Engine engine(engine_config);

  ExecConfig config;
  Gate gate;
  auto gated_plan = MakeGatedPlan(&storage, &gate);
  std::thread ta([&] { engine.Execute(gated_plan.get(), config); });
  while (engine.active_queries() != 1) std::this_thread::yield();

  // Park B, C, D in the admission wait in a known arrival order: each is
  // observed as a waiter before the next arrives.
  constexpr int kWaiters = 3;
  std::vector<std::unique_ptr<QueryPlan>> plans;
  std::vector<ExecutionStats> stats(kWaiters);
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    plans.push_back(MakeSelectAggPlan(&storage, *input, 0.0));
    threads.emplace_back([&, i] {
      stats[static_cast<size_t>(i)] =
          engine.Execute(plans[static_cast<size_t>(i)].get(), config);
    });
    while (engine.admission_waiters() != i + 1) std::this_thread::yield();
  }

  gate.Open();
  ta.join();
  for (auto& t : threads) t.join();

  // Query ids are handed out at admission; with one slot they record the
  // admission sequence, which FIFO ordering pins to the arrival order.
  for (int i = 0; i + 1 < kWaiters; ++i) {
    EXPECT_LT(stats[static_cast<size_t>(i)].query_id,
              stats[static_cast<size_t>(i) + 1].query_id)
        << "waiter " << i + 1 << " overtook waiter " << i << " in admission";
  }
  EXPECT_EQ(engine.queries_executed(), static_cast<uint64_t>(kWaiters) + 1);
}

TEST(EngineTest, ConcurrentQueriesShareOneAdaptivePolicy) {
  // One AdaptiveUotPolicy instance serving every concurrent session of the
  // engine: per-(query, edge) state must not bleed between queries, and
  // results must match the serial run. Runs under -fsanitize=thread in CI.
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 8000, 16, Layout::kRowStore, 2048);

  std::string expected;
  {
    ExecConfig serial;
    serial.uot = UotPolicy::LowUot(1);
    auto plan = MakeSelectAggPlan(&storage, *input, 100.0);
    QueryExecutor::Execute(plan.get(), serial);
    expected = CanonicalRows(*plan->result_table());
  }
  ASSERT_FALSE(expected.empty());

  EngineConfig engine_config;
  engine_config.num_workers = 4;
  Engine engine(engine_config);

  auto adaptive = std::make_shared<AdaptiveUotPolicy>();
  obs::MetricsRegistry metrics;
  ExecConfig config;
  config.uot_policy = adaptive;
  config.memory_budget_bytes = 1;  // constant pressure: adaptation traffic
  config.metrics = &metrics;

  constexpr int kQueries = 6;
  std::vector<std::unique_ptr<QueryPlan>> plans;
  for (int i = 0; i < kQueries; ++i) {
    plans.push_back(MakeSelectAggPlan(&storage, *input, 100.0));
  }
  StartGate gate(kQueries);
  std::vector<std::thread> threads;
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      gate.ArriveAndWait();
      engine.Execute(plans[static_cast<size_t>(i)].get(), config);
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& plan : plans) {
    EXPECT_EQ(CanonicalRows(*plan->result_table()), expected);
  }
  // Every query narrowed its edge independently under the shared policy.
  EXPECT_GE(adaptive->adaptations(), static_cast<uint64_t>(kQueries));
  EXPECT_EQ(engine.queries_executed(), static_cast<uint64_t>(kQueries));
}

}  // namespace
}  // namespace uot
