#include <gtest/gtest.h>

#include "simsched/des_scheduler.h"

namespace uot {
namespace {

SimOperator LeafOp(const std::string& name, uint64_t wos, double work_ns,
                   double alpha = 0.0) {
  SimOperator op;
  op.name = name;
  op.num_work_orders = wos;
  op.work_ns = work_ns;
  op.contention_alpha = alpha;
  return op;
}

TEST(DesSchedulerTest, SingleOperatorSingleWorkerIsSequential) {
  SimConfig config;
  config.num_workers = 1;
  const SimResult r = DesScheduler::Run({LeafOp("op", 10, 1e6)}, config);
  EXPECT_DOUBLE_EQ(r.makespan_ns, 10e6);
  EXPECT_EQ(r.operators[0].work_orders, 10u);
  EXPECT_DOUBLE_EQ(r.operators[0].avg_task_ns, 1e6);
  EXPECT_NEAR(r.operators[0].avg_dop, 1.0, 1e-9);
}

TEST(DesSchedulerTest, PerfectScalabilityGivesLinearSpeedup) {
  SimConfig config;
  config.num_workers = 1;
  const double t1 =
      DesScheduler::Run({LeafOp("op", 40, 1e6)}, config).makespan_ns;
  config.num_workers = 4;
  const double t4 =
      DesScheduler::Run({LeafOp("op", 40, 1e6)}, config).makespan_ns;
  EXPECT_NEAR(t1 / t4, 4.0, 1e-6);
}

TEST(DesSchedulerTest, ContentionSaturatesSpeedup) {
  // The Fig. 9 shape: an operator probing a large hash table scales poorly.
  SimConfig config;
  auto run = [&](int workers, double alpha) {
    config.num_workers = workers;
    return DesScheduler::Run({LeafOp("probe", 200, 1e6, alpha)}, config)
        .makespan_ns;
  };
  const double good_speedup = run(1, 0.01) / run(16, 0.01);
  const double poor_speedup = run(1, 0.25) / run(16, 0.25);
  EXPECT_GT(good_speedup, 10.0);
  EXPECT_LT(poor_speedup, 5.0);
  EXPECT_LT(poor_speedup, good_speedup);
}

TEST(DesSchedulerTest, WorkConservation) {
  // Total busy time can never exceed workers * makespan.
  SimConfig config;
  config.num_workers = 3;
  const SimResult r = DesScheduler::Run(
      {LeafOp("a", 17, 1.3e6), LeafOp("b", 9, 0.7e6)}, config);
  double busy = 0;
  for (const auto& op : r.operators) busy += op.total_task_ns;
  EXPECT_LE(busy, 3.0 * r.makespan_ns + 1e-6);
  EXPECT_GE(busy, r.makespan_ns - 1e-6);
}

TEST(DesSchedulerTest, BlockingDependencySerializesOperators) {
  SimOperator build = LeafOp("build", 10, 1e6);
  SimOperator probe = LeafOp("probe", 10, 1e6);
  probe.blocking_deps = {0};
  SimConfig config;
  config.num_workers = 4;
  const SimResult r = DesScheduler::Run({build, probe}, config);
  EXPECT_GE(r.operators[1].first_start_ns,
            r.operators[0].last_end_ns - 1e-6);
}

TEST(DesSchedulerTest, StreamingConsumerFollowsProducer) {
  SimOperator producer = LeafOp("select", 20, 1e6);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 0.5e6;
  consumer.streaming_producer = 0;
  consumer.consumer_wo_per_block = 1.0;
  SimConfig config;
  config.num_workers = 4;
  config.uot = UotPolicy::LowUot(1);
  const SimResult r = DesScheduler::Run({producer, consumer}, config);
  EXPECT_EQ(r.operators[1].work_orders, 20u);
  // With a low UoT the consumer starts while the producer still runs.
  EXPECT_LT(r.operators[1].first_start_ns, r.operators[0].last_end_ns);
}

TEST(DesSchedulerTest, WholeTableUotDefersConsumer) {
  SimOperator producer = LeafOp("select", 20, 1e6);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 0.5e6;
  consumer.streaming_producer = 0;
  SimConfig config;
  config.num_workers = 4;
  config.uot = UotPolicy::HighUot();
  const SimResult r = DesScheduler::Run({producer, consumer}, config);
  EXPECT_EQ(r.operators[1].work_orders, 20u);
  EXPECT_GE(r.operators[1].first_start_ns,
            r.operators[0].last_end_ns - 1e-6);
}

TEST(DesSchedulerTest, LowUotReducesConsumerDop) {
  // The paper's Section IV-C3 interplay: small UoT -> CPU shared between
  // producer and consumer -> lower consumer DOP than the whole-table case.
  SimOperator producer = LeafOp("select", 40, 1e6);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 1e6;
  consumer.streaming_producer = 0;
  SimConfig config;
  config.num_workers = 8;

  config.uot = UotPolicy::LowUot(1);
  const double dop_low =
      DesScheduler::Run({producer, consumer}, config).operators[1].avg_dop;
  config.uot = UotPolicy::HighUot();
  const double dop_high =
      DesScheduler::Run({producer, consumer}, config).operators[1].avg_dop;
  EXPECT_LT(dop_low, dop_high);
  EXPECT_NEAR(dop_high, 8.0, 0.5);
}

TEST(DesSchedulerTest, LowUotMoreResilientToPoorScalability) {
  // Fig. 10(b): with a poorly scaling consumer, the low-UoT schedule keeps
  // per-task times lower because its DOP stays lower.
  SimOperator producer = LeafOp("select", 64, 1e6);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 1e6;
  consumer.contention_alpha = 0.3;  // poor scalability
  consumer.streaming_producer = 0;
  SimConfig config;
  config.num_workers = 16;

  config.uot = UotPolicy::LowUot(1);
  const double task_low = DesScheduler::Run({producer, consumer}, config)
                              .operators[1]
                              .avg_task_ns;
  config.uot = UotPolicy::HighUot();
  const double task_high = DesScheduler::Run({producer, consumer}, config)
                               .operators[1]
                               .avg_task_ns;
  EXPECT_LT(task_low, task_high);
}

TEST(DesSchedulerTest, SelectivityScalesConsumerWorkOrders) {
  SimOperator producer = LeafOp("select", 30, 1e6);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 1e6;
  consumer.streaming_producer = 0;
  consumer.consumer_wo_per_block = 0.25;  // selective producer
  SimConfig config;
  config.num_workers = 2;
  const SimResult r = DesScheduler::Run({producer, consumer}, config);
  // ceil-ish accounting: 30 * 0.25 = 7.5 -> 7 + 1 final partial.
  EXPECT_GE(r.operators[1].work_orders, 7u);
  EXPECT_LE(r.operators[1].work_orders, 8u);
}

TEST(DesSchedulerTest, EmptyProducerCompletesPlan) {
  SimOperator producer = LeafOp("select", 0, 1e6);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 1e6;
  consumer.streaming_producer = 0;
  SimConfig config;
  config.num_workers = 2;
  const SimResult r = DesScheduler::Run({producer, consumer}, config);
  EXPECT_EQ(r.operators[1].work_orders, 0u);
  EXPECT_DOUBLE_EQ(r.makespan_ns, 0.0);
}

TEST(DesSchedulerTest, OverheadTermAddsFixedCost) {
  SimOperator op = LeafOp("op", 10, 1e6);
  op.overhead_ns = 0.5e6;
  SimConfig config;
  config.num_workers = 1;
  const SimResult r = DesScheduler::Run({op}, config);
  EXPECT_DOUBLE_EQ(r.makespan_ns, 10 * 1.5e6);
}

TEST(DesSchedulerTest, DeterministicAcrossRuns) {
  SimOperator producer = LeafOp("select", 25, 1.1e6, 0.05);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 0.9e6;
  consumer.contention_alpha = 0.1;
  consumer.streaming_producer = 0;
  SimConfig config;
  config.num_workers = 5;
  const SimResult a = DesScheduler::Run({producer, consumer}, config);
  const SimResult b = DesScheduler::Run({producer, consumer}, config);
  EXPECT_DOUBLE_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_DOUBLE_EQ(a.operators[1].avg_dop, b.operators[1].avg_dop);
}

TEST(DesSchedulerTest, FixedPolicyMatchesScalarUot) {
  // The simulator consults the same EdgeUotPolicy interface as the real
  // scheduler: a FixedUotPolicy must reproduce the scalar SimConfig::uot
  // schedule exactly, across the whole spectrum.
  SimOperator producer = LeafOp("select", 40, 1e6);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 0.5e6;
  consumer.streaming_producer = 0;
  consumer.consumer_wo_per_block = 1.0;

  for (uint64_t blocks : {uint64_t{1}, uint64_t{4},
                          UotPolicy::kWholeTable}) {
    const UotPolicy uot(blocks);
    SimConfig scalar;
    scalar.num_workers = 4;
    scalar.uot = uot;
    const SimResult a = DesScheduler::Run({producer, consumer}, scalar);

    FixedUotPolicy policy(uot);
    SimConfig via_policy;
    via_policy.num_workers = 4;
    via_policy.uot_policy = &policy;
    const SimResult b = DesScheduler::Run({producer, consumer}, via_policy);

    EXPECT_DOUBLE_EQ(a.makespan_ns, b.makespan_ns) << uot.ToString();
    EXPECT_EQ(a.operators[1].work_orders, b.operators[1].work_orders);
    EXPECT_DOUBLE_EQ(a.operators[1].first_start_ns,
                     b.operators[1].first_start_ns);
    EXPECT_DOUBLE_EQ(a.operators[1].avg_dop, b.operators[1].avg_dop);
  }
}

/// The interface lets the simulator explore schedules the scalar knob
/// cannot express: a policy that narrows once the edge has buffered a few
/// blocks still completes with the full work-order count.
class NarrowAfterBufferPolicy final : public EdgeUotPolicy {
 public:
  using EdgeUotPolicy::BlocksPerTransfer;
  uint64_t BlocksPerTransfer(const EdgeRuntimeState& edge) override {
    return edge.buffered_blocks >= 8 ? 1 : 4;
  }
  std::string ToString() const override { return "narrow-after-buffer"; }
};

TEST(DesSchedulerTest, DynamicPolicyStillConservesWork) {
  SimOperator producer = LeafOp("select", 40, 1e6);
  SimOperator consumer;
  consumer.name = "probe";
  consumer.work_ns = 0.5e6;
  consumer.streaming_producer = 0;
  consumer.consumer_wo_per_block = 1.0;
  NarrowAfterBufferPolicy policy;
  SimConfig config;
  config.num_workers = 4;
  config.uot_policy = &policy;
  const SimResult r = DesScheduler::Run({producer, consumer}, config);
  EXPECT_EQ(r.operators[1].work_orders, 40u);
  EXPECT_GT(r.makespan_ns, 0.0);
}

}  // namespace
}  // namespace uot
