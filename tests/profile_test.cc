#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/adaptive_uot_policy.h"
#include "exec/engine.h"
#include "exec/query_executor.h"
#include "model/uot_chooser.h"
#include "obs/json_lite.h"
#include "obs/metrics.h"
#include "obs/metrics_sampler.h"
#include "obs/query_profile.h"
#include "operators/aggregate_operator.h"
#include "operators/select_operator.h"
#include "plan/plan_builder.h"
#include "test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace uot {
namespace {

using testing::MakeKvTable;

/// select(TRUE) -> agg(sum(v) group by k) over a plan-owned pipeline: one
/// streaming edge with a deterministic payload, so oracle estimates can be
/// measured from a profile run and predictions compared exactly.
std::unique_ptr<QueryPlan> MakeSelectAggPlan(StorageManager* storage,
                                             const Table& input) {
  auto plan = std::make_unique<QueryPlan>(storage);
  auto proj = Projection::Identity(input.schema(), {0, 1});
  Schema sel_schema = proj->output_schema();
  Table* sel_out = plan->CreateTempTable("sel.out", sel_schema,
                                         Layout::kRowStore, 1024);
  InsertDestination* sel_dest = plan->CreateDestination(sel_out);
  auto select = std::make_unique<SelectOperator>(
      "select", std::make_unique<TruePredicate>(), std::move(proj),
      sel_dest);
  select->AttachBaseTable(&input);
  const int select_op = plan->AddOperator(std::move(select));
  plan->RegisterOutput(select_op, sel_dest);

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum"});
  Schema agg_schema = AggregateOperator::OutputSchema(sel_schema, {0}, aggs);
  Table* agg_out = plan->CreateTempTable("agg.out", agg_schema,
                                         Layout::kRowStore, 1024);
  InsertDestination* agg_dest = plan->CreateDestination(agg_out);
  auto agg = std::make_unique<AggregateOperator>(
      "agg", sel_schema, std::vector<int>{0}, std::move(aggs), nullptr,
      agg_dest);
  const int agg_op = plan->AddOperator(std::move(agg));
  plan->RegisterOutput(agg_op, agg_dest);
  plan->AddStreamingEdge(select_op, agg_op);
  plan->SetResultTable(agg_out);
  return plan;
}

TEST(ProfileTest, FromRunJoinsMeasuredEdgesWithOperators) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 3000, 16, Layout::kRowStore, 1024);
  auto plan = MakeSelectAggPlan(&storage, *input);
  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(1);
  config.profile = true;
  ExecutionStats stats = QueryExecutor::Execute(plan.get(), config);

  const obs::QueryProfile profile =
      obs::QueryProfile::FromRun(plan.get(), stats, {"select-agg"});
  EXPECT_EQ(profile.query_name(), "select-agg");
  ASSERT_EQ(profile.operators().size(), 2u);
  EXPECT_EQ(profile.operators()[0].name, "select");
  EXPECT_GT(profile.operators()[0].num_work_orders, 0u);
  EXPECT_GT(profile.operators()[0].latency.count, 0u);
  EXPECT_GE(profile.operators()[0].latency.p99,
            profile.operators()[0].latency.p50);

  ASSERT_EQ(profile.edges().size(), 1u);
  const obs::QueryProfile::Edge& edge = profile.edges()[0];
  EXPECT_EQ(edge.producer, 0);
  EXPECT_EQ(edge.consumer, 1);
  EXPECT_EQ(edge.producer_name, "select");
  EXPECT_EQ(edge.consumer_name, "agg");
  EXPECT_EQ(edge.transfers, stats.edge_transfers[0]);
  // Payload volume is rows x row width, independent of scheduling.
  const uint64_t row_width = input->schema().row_width();
  EXPECT_EQ(edge.bytes_delivered, 3000u * row_width);
  EXPECT_EQ(edge.blocks_delivered, edge.blocks_produced);
  EXPECT_GT(edge.max_buffered_bytes, 0u);
  EXPECT_FALSE(edge.has_prediction);  // nothing annotated

  const std::string text = profile.ToString();
  EXPECT_NE(text.find("op[0] select"), std::string::npos);
  EXPECT_NE(text.find("edge[0] op0 -> op1"), std::string::npos);
  EXPECT_NE(text.find("memory peaks:"), std::string::npos);
}

TEST(ProfileTest, OracleEstimatesGiveZeroByteResiduals) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 4000, 20, Layout::kRowStore, 1024);

  // Profile run: measure the edge's actual output cardinality.
  auto profiled = MakeSelectAggPlan(&storage, *input);
  ExecConfig profile_config;
  profile_config.num_workers = 2;
  profile_config.drop_consumed_blocks = false;
  QueryExecutor::Execute(profiled.get(), profile_config);
  const std::vector<EdgeEstimate> oracle =
      CostModelUotChooser::EstimatesFromExecutedPlan(*profiled);
  ASSERT_EQ(oracle.size(), 1u);
  ASSERT_EQ(oracle[0].rows, 4000u);

  // Fresh plan annotated with the chooser's predictions from the oracle
  // estimates, then executed with profiling on.
  CostModelUotChooser chooser;
  auto fresh = MakeSelectAggPlan(&storage, *input);
  const std::vector<UotChoice> choices = chooser.ChoosePlan(*fresh, oracle);
  ASSERT_EQ(choices.size(), 1u);
  CostModelUotChooser::AnnotatePlan(fresh.get(), choices);
  ASSERT_TRUE(fresh->edge_prediction(0).has_value());

  ExecConfig config;
  config.num_workers = 2;
  config.profile = true;
  ExecutionStats stats = QueryExecutor::Execute(fresh.get(), config);

  const obs::QueryProfile profile =
      obs::QueryProfile::FromRun(fresh.get(), stats, {"oracle"});
  ASSERT_EQ(profile.edges().size(), 1u);
  const obs::QueryProfile::Edge& edge = profile.edges()[0];
  ASSERT_TRUE(edge.has_prediction);
  EXPECT_EQ(edge.est_rows, 4000u);
  // With oracle cardinalities the byte residual is exactly zero: both
  // sides are rows x row width.
  EXPECT_EQ(edge.residual_bytes, 0);
  // Transfers depend on how full the produced blocks are, which the model
  // idealizes; the residual must still be small relative to the total.
  EXPECT_LE(static_cast<double>(std::abs(edge.residual_transfers)),
            0.5 * static_cast<double>(
                      std::max<uint64_t>(1, edge.predicted_transfers)) +
                2.0);
  EXPECT_LT(edge.WorstRelativeError(), 1.0);

  const std::string report = profile.CalibrationReport();
  EXPECT_NE(report.find("rel_err"), std::string::npos);

  // Residual gauges land in the registry under the documented names.
  obs::MetricsRegistry registry;
  profile.ExportResidualMetrics(&registry);
  const obs::Gauge* bytes_gauge =
      registry.FindGauge("model.residual.edge.0.bytes");
  ASSERT_NE(bytes_gauge, nullptr);
  EXPECT_EQ(bytes_gauge->Value(), 0);
  ASSERT_NE(registry.FindGauge("model.residual.edge.0.transfers"), nullptr);
  ASSERT_NE(registry.FindGauge("model.residual.edge.0.footprint_bytes"),
            nullptr);
}

TEST(ProfileTest, AdaptiveRunRecordsDecisionLogWithCauses) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 8000, 16, Layout::kRowStore, 2048);
  auto plan = MakeSelectAggPlan(&storage, *input);

  ExecConfig config;
  config.num_workers = 2;
  config.uot_policy = std::make_shared<AdaptiveUotPolicy>();
  config.memory_budget_bytes = 1;  // constant pressure: must narrow
  config.profile = true;
  ExecutionStats stats = QueryExecutor::Execute(plan.get(), config);

  EXPECT_TRUE(stats.profiled);
  ASSERT_FALSE(stats.uot_decisions.empty());
  // The first record is the edge's initial resolution: from_blocks 0 with
  // either the seed cause or, under immediate pressure, the policy's own
  // narrow cause.
  EXPECT_EQ(stats.uot_decisions.front().from_blocks, 0u);
  bool saw_narrow = false;
  int64_t last_t = 0;
  for (const UotDecisionRecord& d : stats.uot_decisions) {
    EXPECT_GE(d.t_ns, last_t);
    last_t = d.t_ns;
    if (d.from_blocks != 0 &&
        (d.cause == UotAdaptCause::kDeferralDepth ||
         d.cause == UotAdaptCause::kHeadroomWatermark)) {
      saw_narrow = true;
      EXPECT_LT(d.to_blocks, d.from_blocks);
    }
  }
  EXPECT_EQ(saw_narrow, stats.uot_adaptations > 0);
  // Budget pressure at budget=1 defers work orders and logs the events.
  EXPECT_GT(stats.budget_deferrals, 0u);
  EXPECT_FALSE(stats.budget_events.empty());

  // The same run with profiling off keeps identical transfer behavior and
  // collects no logs.
  auto unprofiled_plan = MakeSelectAggPlan(&storage, *input);
  ExecConfig off = config;
  off.uot_policy = std::make_shared<AdaptiveUotPolicy>();
  off.profile = false;
  ExecutionStats off_stats =
      QueryExecutor::Execute(unprofiled_plan.get(), off);
  EXPECT_FALSE(off_stats.profiled);
  EXPECT_TRUE(off_stats.uot_decisions.empty());
  EXPECT_TRUE(off_stats.budget_events.empty());
  ASSERT_EQ(off_stats.edges.size(), stats.edges.size());
  EXPECT_EQ(off_stats.edges[0].bytes_delivered,
            stats.edges[0].bytes_delivered);
}

TEST(ProfileTest, JsonRoundTripsThroughValidator) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 4000, 20, Layout::kRowStore, 1024);

  auto profiled = MakeSelectAggPlan(&storage, *input);
  ExecConfig profile_config;
  profile_config.num_workers = 2;
  profile_config.drop_consumed_blocks = false;
  QueryExecutor::Execute(profiled.get(), profile_config);
  const std::vector<EdgeEstimate> oracle =
      CostModelUotChooser::EstimatesFromExecutedPlan(*profiled);

  CostModelUotChooser chooser;
  auto fresh = MakeSelectAggPlan(&storage, *input);
  CostModelUotChooser::AnnotatePlan(fresh.get(),
                                    chooser.ChoosePlan(*fresh, oracle));
  ExecConfig config;
  config.num_workers = 2;
  config.uot_policy = std::make_shared<AdaptiveUotPolicy>();
  config.memory_budget_bytes = 1;
  config.profile = true;
  ExecutionStats stats = QueryExecutor::Execute(fresh.get(), config);

  const obs::QueryProfile profile =
      obs::QueryProfile::FromRun(fresh.get(), stats, {"roundtrip"});
  const std::string json = profile.ToJson();

  obs::QueryProfileSummary summary;
  const Status status = obs::ParseQueryProfileJson(json, &summary);
  ASSERT_TRUE(status.ok()) << status.ToString() << "\n" << json;
  EXPECT_EQ(summary.query_name, "roundtrip");
  EXPECT_EQ(summary.query_id, stats.query_id);
  EXPECT_TRUE(summary.profiled);
  EXPECT_EQ(summary.num_operators, 2u);
  EXPECT_EQ(summary.num_edges, 1u);
  EXPECT_EQ(summary.num_predicted_edges, 1u);
  EXPECT_EQ(summary.num_uot_decisions, stats.uot_decisions.size());
  EXPECT_EQ(summary.num_budget_events, stats.budget_events.size());

  // The validator rejects structurally broken documents.
  obs::QueryProfileSummary ignored;
  EXPECT_FALSE(obs::ParseQueryProfileJson("{\"query\": {}}", &ignored).ok());
  EXPECT_FALSE(obs::ParseQueryProfileJson(json + "x", &ignored).ok());
  std::string no_edges = json;
  const size_t pos = no_edges.find("\"edges\"");
  ASSERT_NE(pos, std::string::npos);
  no_edges.replace(pos, 7, "\"wrong\"");
  EXPECT_FALSE(obs::ParseQueryProfileJson(no_edges, &ignored).ok());
}

/// select -> aggregate via PlanBuilder, optionally annotated as one fused
/// pipeline, so the profile of the same plan shape can be compared across
/// the two execution modes.
std::unique_ptr<QueryPlan> MakeFusablePlan(StorageManager* storage,
                                           const Table& input, bool fuse) {
  PlanBuilder builder(storage, PlanBuilderConfig{});
  PlanBuilder::Src sel = builder.Select(
      "sel", PlanBuilder::Base(input),
      Cmp(CompareOp::kLe, Col(1, Type::Double()), LitDouble(2500.0)),
      Projection::Identity(input.schema(), {0, 1}));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum_v"});
  PlanBuilder::Src agg = builder.Aggregate("agg", sel, {0}, std::move(aggs));
  if (fuse) builder.AnnotateFusedPipeline({sel, agg});
  return builder.Finish(agg);
}

TEST(ProfileTest, FusedRunRendersChainsAndVectorizedDocumentsAreUnchanged) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 4000, 20, Layout::kRowStore, 1024);

  // Vectorized baseline: the document must not mention fusion anywhere —
  // pre-fusion consumers see byte-identical output for unchanged runs.
  auto vec_plan = MakeFusablePlan(&storage, *input, /*fuse=*/false);
  ExecConfig vec_config;
  vec_config.num_workers = 2;
  vec_config.profile = true;
  ExecutionStats vec_stats = QueryExecutor::Execute(vec_plan.get(), vec_config);
  const obs::QueryProfile vec_profile =
      obs::QueryProfile::FromRun(vec_plan.get(), vec_stats, {"vec"});
  const std::string vec_json = vec_profile.ToJson();
  EXPECT_EQ(vec_json.find("fused"), std::string::npos);
  obs::QueryProfileSummary vec_summary;
  ASSERT_TRUE(obs::ParseQueryProfileJson(vec_json, &vec_summary).ok());
  EXPECT_EQ(vec_summary.num_fused_chains, 0u);
  EXPECT_EQ(vec_summary.num_fused_edges, 0u);

  // Fused run of the same plan shape.
  auto fused_plan = MakeFusablePlan(&storage, *input, /*fuse=*/true);
  ExecConfig fused_config = vec_config;
  fused_config.pipeline_mode = PipelineMode::kFused;
  ExecutionStats fused_stats =
      QueryExecutor::Execute(fused_plan.get(), fused_config);
  ASSERT_EQ(fused_stats.fused_chains.size(), 1u);

  const obs::QueryProfile profile =
      obs::QueryProfile::FromRun(fused_plan.get(), fused_stats, {"fused"});
  ASSERT_EQ(profile.edges().size(), 1u);
  EXPECT_TRUE(profile.edges()[0].fused);
  EXPECT_EQ(profile.edges()[0].transfers, 0u);
  EXPECT_EQ(profile.edges()[0].bytes_delivered, 0u);

  const std::string text = profile.ToString();
  EXPECT_NE(text.find("fused[0] op0 -> op1"), std::string::npos) << text;
  EXPECT_NE(text.find("fused pipeline op0->op1"), std::string::npos) << text;
  EXPECT_NE(text.find("(select): 4000 rows in, 2501 rows out"),
            std::string::npos)
      << text;

  const std::string json = profile.ToJson();
  obs::QueryProfileSummary summary;
  const Status status = obs::ParseQueryProfileJson(json, &summary);
  ASSERT_TRUE(status.ok()) << status.ToString() << "\n" << json;
  EXPECT_EQ(summary.num_fused_chains, 1u);
  EXPECT_EQ(summary.num_fused_edges, 1u);

  // The validator rejects structurally broken fused sections.
  obs::QueryProfileSummary ignored;
  std::string broken = json;
  const size_t pos = broken.find("\"stages\"");
  ASSERT_NE(pos, std::string::npos);
  broken.replace(pos, 8, "\"wrongs\"");
  EXPECT_FALSE(obs::ParseQueryProfileJson(broken, &ignored).ok());
}

TEST(ProfileTest, JsonParserDecodesUnicodeEscapes) {
  // Regression: \uXXXX used to be replaced by '?' for any non-ASCII code
  // unit, corrupting wire-protocol strings and profile round-trips. BMP
  // escapes must transcode to UTF-8 and surrogate pairs must combine.
  obs::JsonValue root;
  ASSERT_TRUE(obs::JsonValue::Parse(
                  "{\"s\": \"caf\\u00e9 \\u20AC \\uD83D\\uDE00 \\u0041\"}",
                  &root)
                  .ok());
  const obs::JsonValue* s = root.Find("s");
  ASSERT_NE(s, nullptr);
  // U+00E9 é, U+20AC €, U+1F600 (surrogate pair), ASCII A.
  EXPECT_EQ(s->AsString(),
            "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80 A");

  // A decoded multi-byte string survives a write-and-reparse round trip:
  // the writer passes UTF-8 bytes through unescaped.
  obs::JsonValue reparsed;
  ASSERT_TRUE(obs::JsonValue::Parse("\"\\u4f60\\u597d\"", &reparsed).ok());
  EXPECT_EQ(reparsed.AsString(), "\xE4\xBD\xA0\xE5\xA5\xBD");  // 你好

  // Strictness: lone or malformed surrogates are parse errors, not '?'.
  EXPECT_FALSE(obs::JsonValue::Parse("\"\\uD83D\"", &root).ok());
  EXPECT_FALSE(obs::JsonValue::Parse("\"\\uD83D\\u0041\"", &root).ok());
  EXPECT_FALSE(obs::JsonValue::Parse("\"\\uDE00\"", &root).ok());
  EXPECT_FALSE(obs::JsonValue::Parse("\"\\u12G4\"", &root).ok());
  EXPECT_FALSE(obs::JsonValue::Parse("\"\\u12\"", &root).ok());
}

TEST(ProfileTest, SamplerRingBufferWrapsAround) {
  obs::MetricsRegistry registry;
  obs::Counter* ticks = registry.GetCounter("test.ticks");
  registry.GetGauge("test.level")->Set(7);

  obs::MetricsSampler::Options options;
  options.interval_ms = 3600 * 1000;  // background thread effectively idle
  options.capacity = 4;
  int pre_sample_calls = 0;
  options.pre_sample = [&] { ++pre_sample_calls; };
  obs::MetricsSampler sampler(&registry, options);

  for (int i = 0; i < 10; ++i) {
    ticks->Increment();
    sampler.SampleOnce();
  }
  EXPECT_EQ(sampler.total_samples(), 10u);
  EXPECT_EQ(pre_sample_calls, 10);

  const std::vector<obs::MetricsSample> samples = sampler.Snapshot();
  ASSERT_EQ(samples.size(), 4u);  // capacity, oldest overwritten
  int64_t last_t = 0;
  int64_t last_ticks = 0;
  for (const obs::MetricsSample& s : samples) {
    EXPECT_GE(s.t_ns, last_t);
    last_t = s.t_ns;
    bool found = false;
    for (const auto& [name, value] : s.values) {
      if (name == "counter.test.ticks") {
        EXPECT_GT(value, last_ticks);
        last_ticks = value;
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  // The newest retained sample saw all ten increments.
  EXPECT_EQ(last_ticks, 10);

  // Exports parse and carry every retained sample.
  obs::JsonValue root;
  ASSERT_TRUE(obs::JsonValue::Parse(sampler.ToJson(), &root).ok());
  EXPECT_EQ(root.Find("samples")->AsArray().size(), 4u);
  EXPECT_EQ(static_cast<uint64_t>(root.NumberOr("total_samples", 0)), 10u);
  const std::string csv = sampler.ToCsv();
  EXPECT_NE(csv.find("t_ns,metric,value"), std::string::npos);
  EXPECT_NE(csv.find("counter.test.ticks"), std::string::npos);
}

TEST(ProfileTest, EngineTelemetryRecordsLatencyAndGauges) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 2000, 8, Layout::kRowStore, 1024);

  EngineConfig engine_config;
  engine_config.num_workers = 2;
  engine_config.sampler_interval_ms = 1;
  engine_config.sampler_capacity = 128;
  Engine engine(engine_config);
  ASSERT_NE(engine.metrics(), nullptr);
  ASSERT_NE(engine.sampler(), nullptr);
  EXPECT_TRUE(engine.sampler()->running());

  ExecConfig config;
  config.uot = UotPolicy::LowUot(1);
  constexpr int kQueries = 3;
  for (int i = 0; i < kQueries; ++i) {
    auto plan = MakeSelectAggPlan(&storage, *input);
    engine.Execute(plan.get(), config);
  }
  engine.Shutdown();
  EXPECT_FALSE(engine.sampler()->running());

  const obs::Histogram* latency =
      engine.metrics()->FindHistogram("engine.query_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->TotalCount(), static_cast<uint64_t>(kQueries));
  EXPECT_GT(latency->TakeSnapshot().p50, 0);
  const obs::Histogram* wait =
      engine.metrics()->FindHistogram("engine.admission_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->TotalCount(), static_cast<uint64_t>(kQueries));
  const obs::Counter* executed =
      engine.metrics()->FindCounter("engine.queries_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->Value(), static_cast<uint64_t>(kQueries));

  // Shutdown's final sample means the series is never empty, ends in the
  // idle state, and parses as JSON.
  ASSERT_GE(engine.sampler()->total_samples(), 1u);
  const std::vector<obs::MetricsSample> series = engine.sampler()->Snapshot();
  ASSERT_FALSE(series.empty());
  const obs::MetricsSample& last = series.back();
  std::map<std::string, int64_t> values(last.values.begin(),
                                        last.values.end());
  EXPECT_EQ(values.at("counter.engine.queries_executed"), kQueries);
  EXPECT_EQ(values.at("gauge.engine.inflight_queries"), 0);
  EXPECT_EQ(values.at("gauge.engine.work_queue_depth"), 0);
  obs::JsonValue root;
  ASSERT_TRUE(obs::JsonValue::Parse(engine.sampler()->ToJson(), &root).ok());
}

TEST(ProfileTest, ConcurrentTpchProfilesStayIsolated) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig tpch_config;
  tpch_config.scale_factor = 0.002;
  db.Generate(tpch_config);
  TpchPlanConfig plan_config;

  ExecConfig config;
  config.uot = UotPolicy::LowUot(1);
  config.profile = true;

  // Solo reference profile.
  auto solo_plan = BuildTpchPlan(3, db, plan_config);
  ExecutionStats solo_stats;
  {
    EngineConfig engine_config;
    engine_config.num_workers = 4;
    Engine engine(engine_config);
    solo_stats = engine.Execute(solo_plan.get(), config);
  }
  const obs::QueryProfile solo =
      obs::QueryProfile::FromRun(solo_plan.get(), solo_stats, {"q3"});

  // Four concurrent instances of the same query on one shared engine.
  constexpr int kQueries = 4;
  EngineConfig engine_config;
  engine_config.num_workers = 4;
  Engine engine(engine_config);
  std::vector<std::unique_ptr<QueryPlan>> plans;
  std::vector<ExecutionStats> stats(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    plans.push_back(BuildTpchPlan(3, db, plan_config));
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      stats[static_cast<size_t>(i)] =
          engine.Execute(plans[static_cast<size_t>(i)].get(), config);
    });
  }
  for (auto& t : threads) t.join();

  std::set<uint64_t> ids;
  for (int i = 0; i < kQueries; ++i) {
    const obs::QueryProfile profile = obs::QueryProfile::FromRun(
        plans[static_cast<size_t>(i)].get(), stats[static_cast<size_t>(i)],
        {"q3"});
    ids.insert(stats[static_cast<size_t>(i)].query_id);

    // Structure matches the solo run: same operators, same edges, and the
    // same deterministic payload volume over every edge — no bleed from
    // the other three queries sharing the pool.
    ASSERT_EQ(profile.operators().size(), solo.operators().size());
    for (size_t op = 0; op < solo.operators().size(); ++op) {
      EXPECT_EQ(profile.operators()[op].name, solo.operators()[op].name);
      EXPECT_GT(profile.operators()[op].num_work_orders, 0u);
    }
    ASSERT_EQ(profile.edges().size(), solo.edges().size());
    for (size_t e = 0; e < solo.edges().size(); ++e) {
      EXPECT_EQ(profile.edges()[e].producer, solo.edges()[e].producer);
      EXPECT_EQ(profile.edges()[e].consumer, solo.edges()[e].consumer);
      EXPECT_EQ(profile.edges()[e].bytes_delivered,
                solo.edges()[e].bytes_delivered)
          << "edge " << e << " of query " << i;
    }

    obs::QueryProfileSummary summary;
    ASSERT_TRUE(obs::ParseQueryProfileJson(profile.ToJson(), &summary).ok());
    EXPECT_EQ(summary.num_edges, solo.edges().size());
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kQueries));
}

}  // namespace
}  // namespace uot
