#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "exec/query_executor.h"
#include "tpch/tpch_analysis.h"
#include "test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"
#include "types/date.h"

namespace uot {
namespace {

/// Shared tiny database (generation is the expensive part).
class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    storage_ = new StorageManager();
    db_ = new TpchDatabase(storage_);
    TpchConfig config;
    config.scale_factor = 0.004;
    config.block_bytes = 64 * 1024;
    config.layout = Layout::kColumnStore;
    db_->Generate(config);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete storage_;
    db_ = nullptr;
    storage_ = nullptr;
  }

  static StorageManager* storage_;
  static TpchDatabase* db_;
};

StorageManager* TpchTest::storage_ = nullptr;
TpchDatabase* TpchTest::db_ = nullptr;

TEST_F(TpchTest, CardinalitiesScale) {
  EXPECT_EQ(db_->nation().NumRows(), 25u);
  EXPECT_EQ(db_->region().NumRows(), 5u);
  EXPECT_EQ(db_->orders().NumRows(), 6000u);     // 1.5M * 0.004
  EXPECT_EQ(db_->customer().NumRows(), 600u);
  EXPECT_EQ(db_->part().NumRows(), 800u);
  EXPECT_EQ(db_->partsupp().NumRows(), 4 * 800u);
  // ~4 lineitems per order.
  EXPECT_GT(db_->lineitem().NumRows(), 3 * db_->orders().NumRows());
  EXPECT_LT(db_->lineitem().NumRows(), 5 * db_->orders().NumRows());
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  StorageManager storage2;
  TpchDatabase db2(&storage2);
  db2.Generate(db_->config());
  EXPECT_EQ(db2.lineitem().NumRows(), db_->lineitem().NumRows());
  EXPECT_EQ(CanonicalRows(db2.nation()), CanonicalRows(db_->nation()));
  EXPECT_EQ(db2.orders().GetValue(100, tpch::kOTotalprice).AsDouble(),
            db_->orders().GetValue(100, tpch::kOTotalprice).AsDouble());
}

TEST_F(TpchTest, LineitemDateInvariants) {
  const Table& l = db_->lineitem();
  const uint64_t rows = l.NumRows();
  for (uint64_t r = 0; r < rows; r += 97) {
    const int32_t ship = l.GetValue(r, tpch::kLShipdate).AsInt32();
    const int32_t receipt = l.GetValue(r, tpch::kLReceiptdate).AsInt32();
    ASSERT_LT(ship, receipt);
    ASSERT_GE(ship, MakeDate(1992, 1, 2));
    ASSERT_LE(receipt, MakeDate(1999, 1, 1));
  }
}

TEST_F(TpchTest, ForeignKeysResolve) {
  const Table& o = db_->orders();
  const int64_t num_cust = static_cast<int64_t>(db_->customer().NumRows());
  for (uint64_t r = 0; r < o.NumRows(); r += 131) {
    const int32_t custkey = o.GetValue(r, tpch::kOCustkey).AsInt32();
    ASSERT_GE(custkey, 1);
    ASSERT_LE(custkey, num_cust);
  }
  const Table& l = db_->lineitem();
  const int64_t num_part = static_cast<int64_t>(db_->part().NumRows());
  const int64_t num_supp = static_cast<int64_t>(db_->supplier().NumRows());
  for (uint64_t r = 0; r < l.NumRows(); r += 203) {
    ASSERT_LE(l.GetValue(r, tpch::kLPartkey).AsInt32(), num_part);
    ASSERT_LE(l.GetValue(r, tpch::kLSuppkey).AsInt32(), num_supp);
  }
}

TEST_F(TpchTest, NationRegionMapping) {
  EXPECT_EQ(db_->nation().GetValue(tpch::kNationFrance, tpch::kNName)
                .AsChar(),
            "FRANCE");
  EXPECT_EQ(db_->nation().GetValue(tpch::kNationSaudiArabia, tpch::kNName)
                .AsChar(),
            "SAUDI ARABIA");
  EXPECT_EQ(db_->region().GetValue(tpch::kRegionAsia, tpch::kRName).AsChar(),
            "ASIA");
  // France is in EUROPE (region 3).
  EXPECT_EQ(db_->nation()
                .GetValue(tpch::kNationFrance, tpch::kNRegionkey)
                .AsInt32(),
            3);
}

TEST_F(TpchTest, TableLookupByName) {
  EXPECT_EQ(db_->table("lineitem"), &db_->lineitem());
  EXPECT_EQ(db_->table("region"), &db_->region());
  EXPECT_EQ(db_->table("bogus"), nullptr);
}

TEST_F(TpchTest, SupportedQueriesListMatchesPaper) {
  const std::set<int> queries(SupportedTpchQueries().begin(),
                              SupportedTpchQueries().end());
  // All 22 TPC-H queries except Q16 (3-column grouping + DISTINCT agg,
  // see DESIGN.md), covering every query the paper's figures show.
  for (int q = 1; q <= 22; ++q) {
    if (q == 16) {
      EXPECT_FALSE(IsTpchQuerySupported(q));
    } else {
      EXPECT_TRUE(queries.count(q)) << "Q" << q;
      EXPECT_TRUE(IsTpchQuerySupported(q));
    }
  }
  EXPECT_FALSE(IsTpchQuerySupported(0));
  EXPECT_FALSE(IsTpchQuerySupported(23));
}

TEST_F(TpchTest, AllQueriesExecuteAndProduceStableResults) {
  TpchPlanConfig plan_config;
  plan_config.block_bytes = 32 * 1024;
  for (int query : SupportedTpchQueries()) {
    auto plan = BuildTpchPlan(query, *db_, plan_config);
    ExecConfig exec;
    exec.num_workers = 2;
    exec.uot = UotPolicy::LowUot(1);
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    EXPECT_GT(stats.records.size(), 0u) << "Q" << query;
    ASSERT_NE(plan->result_table(), nullptr) << "Q" << query;
    // Deterministic reruns.
    auto plan2 = BuildTpchPlan(query, *db_, plan_config);
    QueryExecutor::Execute(plan2.get(), exec);
    EXPECT_TRUE(testing::CanonicalRowsNear(
        CanonicalRows(*plan->result_table()),
        CanonicalRows(*plan2->result_table())))
        << "Q" << query;
  }
}

struct TpchConfigParam {
  uint64_t uot_blocks;  // 0 = whole table
  int workers;
};

class TpchUotInvarianceTest
    : public ::testing::TestWithParam<TpchConfigParam> {};

TEST_P(TpchUotInvarianceTest, ResultsIdenticalAcrossUotAndThreads) {
  // The core correctness property behind the whole paper: the UoT value is
  // a scheduling knob and must never change query results.
  static StorageManager storage;
  static TpchDatabase* db = [] {
    auto* d = new TpchDatabase(&storage);
    TpchConfig config;
    config.scale_factor = 0.002;
    config.block_bytes = 32 * 1024;
    d->Generate(config);
    return d;
  }();
  static std::map<int, std::string>* expected = [] {
    auto* m = new std::map<int, std::string>();
    TpchPlanConfig plan_config;
    plan_config.block_bytes = 16 * 1024;
    for (int query : SupportedTpchQueries()) {
      auto plan = BuildTpchPlan(query, *db, plan_config);
      ExecConfig exec;
      exec.num_workers = 1;
      exec.uot = UotPolicy::HighUot();
      QueryExecutor::Execute(plan.get(), exec);
      (*m)[query] = CanonicalRows(*plan->result_table());
    }
    return m;
  }();

  const TpchConfigParam p = GetParam();
  TpchPlanConfig plan_config;
  plan_config.block_bytes = 16 * 1024;
  for (int query : SupportedTpchQueries()) {
    auto plan = BuildTpchPlan(query, *db, plan_config);
    ExecConfig exec;
    exec.num_workers = p.workers;
    exec.uot = p.uot_blocks == 0 ? UotPolicy::HighUot()
                                 : UotPolicy::LowUot(p.uot_blocks);
    QueryExecutor::Execute(plan.get(), exec);
    EXPECT_TRUE(testing::CanonicalRowsNear(
        CanonicalRows(*plan->result_table()), expected->at(query)))
        << "Q" << query << " uot=" << p.uot_blocks << " w=" << p.workers;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TpchUotInvarianceTest,
    ::testing::Values(TpchConfigParam{1, 1}, TpchConfigParam{1, 4},
                      TpchConfigParam{2, 3}, TpchConfigParam{8, 2},
                      TpchConfigParam{0, 4}),
    [](const auto& info) {
      return "uot" + std::to_string(info.param.uot_blocks) + "_w" +
             std::to_string(info.param.workers);
    });

TEST_F(TpchTest, FixedPolicyMatchesScalarUotAcrossSuite) {
  // Tentpole backward-compatibility gate: routing the scalar ExecConfig::uot
  // through the EdgeUotPolicy interface (the default FixedUotPolicy) must
  // leave every query byte-identical with identical per-edge transfer
  // counts, across the whole UoT spectrum.
  TpchPlanConfig plan_config;
  plan_config.block_bytes = 16 * 1024;
  for (uint64_t blocks : {uint64_t{1}, uint64_t{4},
                          UotPolicy::kWholeTable}) {
    const UotPolicy uot(blocks);
    for (int query : SupportedTpchQueries()) {
      auto scalar_plan = BuildTpchPlan(query, *db_, plan_config);
      ExecConfig scalar;
      scalar.num_workers = 2;
      scalar.uot = uot;
      const ExecutionStats scalar_stats =
          QueryExecutor::Execute(scalar_plan.get(), scalar);

      auto policy_plan = BuildTpchPlan(query, *db_, plan_config);
      ExecConfig via_policy;
      via_policy.num_workers = 2;
      via_policy.uot_policy = std::make_shared<FixedUotPolicy>(uot);
      const ExecutionStats policy_stats =
          QueryExecutor::Execute(policy_plan.get(), via_policy);

      EXPECT_TRUE(testing::CanonicalRowsNear(
          CanonicalRows(*policy_plan->result_table()),
          CanonicalRows(*scalar_plan->result_table())))
          << "Q" << query << " " << uot.ToString();
      EXPECT_EQ(policy_stats.edge_transfers, scalar_stats.edge_transfers)
          << "Q" << query << " " << uot.ToString();
    }
  }
}

TEST_F(TpchTest, RowStoreAndColumnStoreAgree) {
  StorageManager storage_row;
  TpchDatabase db_row(&storage_row);
  TpchConfig config = db_->config();
  config.scale_factor = 0.002;
  config.layout = Layout::kRowStore;
  db_row.Generate(config);

  StorageManager storage_col;
  TpchDatabase db_col(&storage_col);
  config.layout = Layout::kColumnStore;
  db_col.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 32 * 1024;
  ExecConfig exec;
  exec.num_workers = 2;
  for (int query : {1, 6, 13, 14, 19}) {
    auto plan_row = BuildTpchPlan(query, db_row, plan_config);
    auto plan_col = BuildTpchPlan(query, db_col, plan_config);
    QueryExecutor::Execute(plan_row.get(), exec);
    QueryExecutor::Execute(plan_col.get(), exec);
    EXPECT_TRUE(testing::CanonicalRowsNear(
        CanonicalRows(*plan_row->result_table()),
        CanonicalRows(*plan_col->result_table())))
        << "Q" << query;
  }
}

TEST_F(TpchTest, Q6MatchesDirectComputation) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(6, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  ASSERT_EQ(plan->result_table()->NumRows(), 1u);
  const double engine_value = plan->result_table()->GetValue(0, 0).AsDouble();

  // Independent scalar recomputation via the boxed-value API.
  const Table& l = db_->lineitem();
  double expected = 0;
  for (uint64_t r = 0; r < l.NumRows(); ++r) {
    const int32_t ship = l.GetValue(r, tpch::kLShipdate).AsInt32();
    const double disc = l.GetValue(r, tpch::kLDiscount).AsDouble();
    const double qty = l.GetValue(r, tpch::kLQuantity).AsDouble();
    if (ship >= MakeDate(1994, 1, 1) && ship < MakeDate(1995, 1, 1) &&
        disc >= 0.05 && disc <= 0.07 && qty < 24.0) {
      expected += l.GetValue(r, tpch::kLExtendedprice).AsDouble() * disc;
    }
  }
  EXPECT_NEAR(engine_value, expected, 1e-6 * std::max(1.0, expected));
}

TEST_F(TpchTest, Q1AggregatesMatchDirectComputation) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(1, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  const Table& result = *plan->result_table();
  ASSERT_LE(result.NumRows(), 6u);  // <= #(flag,status) combinations
  ASSERT_GE(result.NumRows(), 3u);

  // Row counts across groups must equal the filtered input count.
  const Table& l = db_->lineitem();
  const int32_t cutoff = MakeDate(1998, 12, 1) - 90;
  uint64_t expected_rows = 0;
  for (uint64_t r = 0; r < l.NumRows(); ++r) {
    if (l.GetValue(r, tpch::kLShipdate).AsInt32() <= cutoff) ++expected_rows;
  }
  int64_t got_rows = 0;
  const int count_col = result.schema().ColumnIndex("count_order");
  ASSERT_GE(count_col, 0);
  for (uint64_t r = 0; r < result.NumRows(); ++r) {
    got_rows += result.GetValue(r, count_col).AsInt64();
  }
  EXPECT_EQ(static_cast<uint64_t>(got_rows), expected_rows);
}

TEST_F(TpchTest, ReductionAnalysisMatchesPaperBallpark) {
  // Shapes from Tables III/IV (generated data, so generous tolerances).
  const auto lineitem = AnalyzeLineitemReductions(*db_);
  ASSERT_EQ(lineitem.size(), 4u);
  for (const ReductionRow& r : lineitem) {
    EXPECT_GT(r.input_rows, 0u);
    EXPECT_GE(r.selectivity, 0.0);
    EXPECT_LE(r.selectivity, 1.0);
    EXPECT_GT(r.projectivity, 0.05);
    EXPECT_LT(r.projectivity, 0.25);
    EXPECT_NEAR(r.total, r.selectivity * r.projectivity, 1e-12);
  }
  // Q3: ~half the lineitems ship after 1995-03-15.
  EXPECT_NEAR(lineitem[0].selectivity, 0.5, 0.15);
  // Q19 is highly selective (a few percent).
  EXPECT_LT(lineitem[3].selectivity, 0.10);

  const auto orders = AnalyzeOrdersReductions(*db_);
  ASSERT_EQ(orders.size(), 6u);
  // Q4: one quarter of ~6.5 years.
  EXPECT_NEAR(orders[1].selectivity, 0.038, 0.02);
  // Q21: about half the orders have status F.
  EXPECT_NEAR(orders[5].selectivity, 0.49, 0.15);
  // The paper's takeaway: the average total reduction is small (<10%).
  double avg_total = 0;
  for (const ReductionRow& r : orders) avg_total += r.total;
  EXPECT_LT(avg_total / orders.size(), 0.10);

  EXPECT_FALSE(RenderReductionTable(orders, "orders").empty());
}

TEST_F(TpchTest, Q2WinnersHaveMinimumCost) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(2, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  const Table& result = *plan->result_table();
  // result: [ps_partkey, ps_suppkey, ps_supplycost]
  // Every winner's cost must be the minimum among result rows of the same
  // part (equal-cost ties may produce several rows per part).
  std::map<int32_t, double> min_cost;
  for (uint64_t r = 0; r < result.NumRows(); ++r) {
    const int32_t part = result.GetValue(r, 0).AsInt32();
    const double cost = result.GetValue(r, 2).AsDouble();
    auto [it, inserted] = min_cost.try_emplace(part, cost);
    if (!inserted) EXPECT_DOUBLE_EQ(it->second, cost) << "part " << part;
  }
}

TEST_F(TpchTest, Q12CountsMatchDirectComputation) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(12, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  const Table& result = *plan->result_table();
  // result: [l_shipmode, high_line_count, low_line_count]
  int64_t total = 0;
  for (uint64_t r = 0; r < result.NumRows(); ++r) {
    total += static_cast<int64_t>(result.GetValue(r, 1).AsDouble() +
                                  result.GetValue(r, 2).AsDouble() + 0.5);
  }
  // Direct recount of qualifying lineitems.
  const Table& l = db_->lineitem();
  int64_t expected = 0;
  for (uint64_t r = 0; r < l.NumRows(); ++r) {
    const std::string mode = l.GetValue(r, tpch::kLShipmode).AsChar();
    if (mode != "MAIL" && mode != "SHIP") continue;
    const int32_t commit = l.GetValue(r, tpch::kLCommitdate).AsInt32();
    const int32_t receipt = l.GetValue(r, tpch::kLReceiptdate).AsInt32();
    const int32_t ship = l.GetValue(r, tpch::kLShipdate).AsInt32();
    if (commit < receipt && ship < commit &&
        receipt >= MakeDate(1994, 1, 1) && receipt < MakeDate(1995, 1, 1)) {
      ++expected;
    }
  }
  EXPECT_EQ(total, expected);
}

TEST_F(TpchTest, Q18RowsExceedQuantityThreshold) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(18, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  const Table& result = *plan->result_table();
  // result: [o_orderkey, o_custkey, o_totalprice, o_orderdate, sum_qty]
  for (uint64_t r = 0; r < result.NumRows(); ++r) {
    EXPECT_GT(result.GetValue(r, 4).AsDouble(), 300.0);
  }
}

TEST_F(TpchTest, Q17MatchesDirectComputation) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(17, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  ASSERT_EQ(plan->result_table()->NumRows(), 1u);
  const double engine = plan->result_table()->GetValue(0, 0).AsDouble();

  // Brute-force recomputation.
  const Table& l = db_->lineitem();
  const Table& p = db_->part();
  std::set<int32_t> parts;
  for (uint64_t r = 0; r < p.NumRows(); ++r) {
    if (p.GetValue(r, tpch::kPBrand).AsChar() == "Brand#23" &&
        p.GetValue(r, tpch::kPContainer).AsChar() == "MED BOX") {
      parts.insert(p.GetValue(r, tpch::kPPartkey).AsInt32());
    }
  }
  std::map<int32_t, std::pair<double, int64_t>> qty;  // part -> (sum, n)
  for (uint64_t r = 0; r < l.NumRows(); ++r) {
    auto& [sum, n] = qty[l.GetValue(r, tpch::kLPartkey).AsInt32()];
    sum += l.GetValue(r, tpch::kLQuantity).AsDouble();
    ++n;
  }
  double expected = 0;
  for (uint64_t r = 0; r < l.NumRows(); ++r) {
    const int32_t part = l.GetValue(r, tpch::kLPartkey).AsInt32();
    if (parts.count(part) == 0) continue;
    const auto& [sum, n] = qty[part];
    if (l.GetValue(r, tpch::kLQuantity).AsDouble() <
        0.2 * sum / static_cast<double>(n)) {
      expected += l.GetValue(r, tpch::kLExtendedprice).AsDouble();
    }
  }
  expected /= 7.0;
  EXPECT_NEAR(engine, expected, 1e-6 * std::max(1.0, expected));
}

TEST_F(TpchTest, Q20SuppliersAreCanadian) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(20, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  const Table& result = *plan->result_table();
  const Table& s = db_->supplier();
  for (uint64_t r = 0; r < result.NumRows(); ++r) {
    const int32_t suppkey = result.GetValue(r, 0).AsInt32();
    EXPECT_EQ(s.GetValue(static_cast<uint64_t>(suppkey - 1),
                         tpch::kSNationkey)
                  .AsInt32(),
              tpch::kNationCanada);
  }
}

TEST_F(TpchTest, Q22TargetsCustomersWithoutOrders) {
  // A third of the customers have no orders (spec custkey rule), so Q22
  // now returns a non-trivial population.
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(22, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  const Table& result = *plan->result_table();
  int64_t total = 0;
  for (uint64_t r = 0; r < result.NumRows(); ++r) {
    total += result.GetValue(r, 1).AsInt64();
  }
  EXPECT_GT(total, 0);
}

TEST_F(TpchTest, Q14PromoShareIsPlausible) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(14, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  ASSERT_EQ(plan->result_table()->NumRows(), 1u);
  const double promo = plan->result_table()->GetValue(0, 0).AsDouble();
  EXPECT_GE(promo, 0.0);
}

TEST_F(TpchTest, Q22CountsCustomersWithoutOrders) {
  TpchPlanConfig plan_config;
  auto plan = BuildTpchPlan(22, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  const Table& result = *plan->result_table();
  int64_t total = 0;
  for (uint64_t r = 0; r < result.NumRows(); ++r) {
    total += result.GetValue(r, 1).AsInt64();
  }
  EXPECT_LT(total, static_cast<int64_t>(db_->customer().NumRows()));
}

}  // namespace
}  // namespace uot
