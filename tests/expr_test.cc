#include <gtest/gtest.h>

#include <cstring>

#include "expr/expression.h"
#include "expr/predicate.h"
#include "expr/projection.h"
#include "storage/insert_destination.h"
#include "storage/storage_manager.h"
#include "types/date.h"
#include "types/row_builder.h"

namespace uot {
namespace {

// A block of (id INT32, price DOUBLE, day DATE, name CHAR(8)).
class ExprTest : public ::testing::TestWithParam<Layout> {
 protected:
  ExprTest()
      : schema_({{"id", Type::Int32()},
                 {"price", Type::Double()},
                 {"day", Type::Date()},
                 {"name", Type::Char(8)}}),
        block_(1, &schema_, GetParam(), 4096) {
    RowBuilder row(&schema_);
    const char* names[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
    for (int i = 0; i < 20; ++i) {
      row.SetInt32(0, i);
      row.SetDouble(1, 10.0 * i);
      row.SetDate(2, MakeDate(1995, 1, 1) + i);
      row.SetChar(3, names[i % 5]);
      block_.AppendRow(row.data());
    }
  }

  std::vector<double> EvalDoubles(const Scalar& s) {
    std::vector<uint32_t> rows(block_.num_rows());
    for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
    std::vector<double> out(rows.size());
    EvalAsDouble(s, block_, rows.data(), static_cast<uint32_t>(rows.size()),
                 out.data());
    return out;
  }

  Schema schema_;
  Block block_;
};

TEST_P(ExprTest, ColumnRefGathersValues) {
  auto col = Col(0, Type::Int32());
  const auto vals = EvalDoubles(*col);
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(i));
  }
}

TEST_P(ExprTest, ColumnRefSubsetOfRows) {
  auto col = Col(1, Type::Double());
  uint32_t rows[] = {3, 7, 19};
  double out[3];
  col->Eval(block_, rows, 3, reinterpret_cast<std::byte*>(out));
  EXPECT_DOUBLE_EQ(out[0], 30.0);
  EXPECT_DOUBLE_EQ(out[1], 70.0);
  EXPECT_DOUBLE_EQ(out[2], 190.0);
}

TEST_P(ExprTest, LiteralBroadcasts) {
  auto lit = LitDouble(4.5);
  const auto vals = EvalDoubles(*lit);
  for (double v : vals) EXPECT_DOUBLE_EQ(v, 4.5);
}

TEST_P(ExprTest, ArithmeticRevenueExpression) {
  // price * (1 - 0.1)
  auto expr = Mul(Col(1, Type::Double()),
                  Sub(LitDouble(1.0), LitDouble(0.1)));
  const auto vals = EvalDoubles(*expr);
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_NEAR(vals[i], 10.0 * i * 0.9, 1e-9);
  }
}

TEST_P(ExprTest, ArithmeticAllOps) {
  auto add = EvalDoubles(*Add(Col(0, Type::Int32()), LitDouble(1.0)));
  auto div = EvalDoubles(*Div(Col(1, Type::Double()), LitDouble(2.0)));
  EXPECT_DOUBLE_EQ(add[4], 5.0);
  EXPECT_DOUBLE_EQ(div[4], 20.0);
}

TEST_P(ExprTest, ExtractYearFromDate) {
  auto year = std::make_unique<ExtractYear>(Col(2, Type::Date()));
  EXPECT_EQ(year->result_type(), Type::Int32());
  const auto vals = EvalDoubles(*year);
  EXPECT_DOUBLE_EQ(vals[0], 1995.0);
  EXPECT_DOUBLE_EQ(vals[19], 1995.0);
}

TEST_P(ExprTest, SubstringSlicesChars) {
  auto sub = std::make_unique<Substring>(Col(3, Type::Char(8)), 0, 2);
  EXPECT_EQ(sub->result_type(), Type::Char(2));
  uint32_t rows[] = {0, 1};
  std::byte out[4];
  sub->Eval(block_, rows, 2, out);
  EXPECT_EQ(std::memcmp(out, "al", 2), 0);
  EXPECT_EQ(std::memcmp(out + 2, "be", 2), 0);
}

TEST_P(ExprTest, FilterShrinksExistingSelection) {
  auto pred = Cmp(CompareOp::kLt, Col(0, Type::Int32()),
                  Lit(TypedValue::Int32(10), Type::Int32()));
  std::vector<uint32_t> sel = {2, 8, 9, 15, 19};
  pred->Filter(block_, &sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{2, 8, 9}));
}

TEST_P(ExprTest, ComparisonOperatorsNumeric) {
  struct Case {
    CompareOp op;
    size_t expected;
  };
  for (const Case& c : {Case{CompareOp::kLt, 5}, Case{CompareOp::kLe, 6},
                        Case{CompareOp::kGt, 14}, Case{CompareOp::kGe, 15},
                        Case{CompareOp::kEq, 1}, Case{CompareOp::kNe, 19}}) {
    auto pred = Cmp(c.op, Col(0, Type::Int32()),
                    Lit(TypedValue::Int32(5), Type::Int32()));
    EXPECT_EQ(pred->FilterAll(block_).size(), c.expected)
        << "op " << static_cast<int>(c.op);
  }
}

TEST_P(ExprTest, ComparisonOnDates) {
  auto pred = Cmp(CompareOp::kGe, Col(2, Type::Date()),
                  Lit(TypedValue::Date(MakeDate(1995, 1, 11)), Type::Date()));
  EXPECT_EQ(pred->FilterAll(block_).size(), 10u);
}

TEST_P(ExprTest, ComparisonOnChars) {
  auto pred = Cmp(CompareOp::kEq, Col(3, Type::Char(8)),
                  Lit(TypedValue::Char("beta"), Type::Char(8)));
  const auto sel = pred->FilterAll(block_);
  ASSERT_EQ(sel.size(), 4u);
  EXPECT_EQ(sel[0], 1u);
  EXPECT_EQ(sel[1], 6u);
}

TEST_P(ExprTest, ColumnVsColumnComparison) {
  // id*10 == price is true everywhere; id > price/10 nowhere.
  auto eq = Cmp(CompareOp::kEq,
                Mul(Col(0, Type::Int32()), LitDouble(10.0)),
                Col(1, Type::Double()));
  EXPECT_EQ(eq->FilterAll(block_).size(), 20u);
}

TEST_P(ExprTest, ConjunctionShortCircuitsToIntersection) {
  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(Cmp(CompareOp::kGe, Col(0, Type::Int32()),
                      Lit(TypedValue::Int32(5), Type::Int32())));
  parts.push_back(Cmp(CompareOp::kLt, Col(0, Type::Int32()),
                      Lit(TypedValue::Int32(15), Type::Int32())));
  auto pred = And(std::move(parts));
  const auto sel = pred->FilterAll(block_);
  ASSERT_EQ(sel.size(), 10u);
  EXPECT_EQ(sel.front(), 5u);
  EXPECT_EQ(sel.back(), 14u);
}

TEST_P(ExprTest, DisjunctionUnionsSorted) {
  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(Cmp(CompareOp::kLt, Col(0, Type::Int32()),
                      Lit(TypedValue::Int32(3), Type::Int32())));
  parts.push_back(Cmp(CompareOp::kGe, Col(0, Type::Int32()),
                      Lit(TypedValue::Int32(18), Type::Int32())));
  // Overlapping clause to test dedup.
  parts.push_back(Cmp(CompareOp::kLt, Col(0, Type::Int32()),
                      Lit(TypedValue::Int32(2), Type::Int32())));
  auto pred = Or(std::move(parts));
  const auto sel = pred->FilterAll(block_);
  ASSERT_EQ(sel.size(), 5u);
  EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[4], 19u);
}

TEST_P(ExprTest, NegationComplements) {
  auto pred = Not(Cmp(CompareOp::kLt, Col(0, Type::Int32()),
                      Lit(TypedValue::Int32(5), Type::Int32())));
  const auto sel = pred->FilterAll(block_);
  ASSERT_EQ(sel.size(), 15u);
  EXPECT_EQ(sel.front(), 5u);
}

TEST_P(ExprTest, InListOnChars) {
  auto pred = std::make_unique<InList>(
      Col(3, Type::Char(8)),
      std::vector<TypedValue>{TypedValue::Char("alpha"),
                              TypedValue::Char("gamma")});
  EXPECT_EQ(pred->FilterAll(block_).size(), 8u);
}

TEST_P(ExprTest, InListOnInts) {
  auto pred = std::make_unique<InList>(
      Col(0, Type::Int32()),
      std::vector<TypedValue>{TypedValue::Int32(2), TypedValue::Int32(4),
                              TypedValue::Int32(100)});
  EXPECT_EQ(pred->FilterAll(block_).size(), 2u);
}

TEST_P(ExprTest, BetweenColHelper) {
  auto pred = BetweenCol(0, Type::Int32(), TypedValue::Int32(3),
                         TypedValue::Int32(6));
  EXPECT_EQ(pred->FilterAll(block_).size(), 4u);
}

TEST_P(ExprTest, TruePredicateKeepsAll) {
  TruePredicate pred;
  EXPECT_EQ(pred.FilterAll(block_).size(), block_.num_rows());
}

TEST_P(ExprTest, LikePrefix) {
  auto pred = std::make_unique<Like>(Col(3, Type::Char(8)), "ga%", false);
  EXPECT_EQ(pred->FilterAll(block_).size(), 4u);  // gamma at 2,7,12,17
}

TEST_P(ExprTest, NotLikeInverts) {
  auto pred = std::make_unique<Like>(Col(3, Type::Char(8)), "ga%", true);
  EXPECT_EQ(pred->FilterAll(block_).size(), 16u);
}

TEST(LikeMatcherTest, PatternSemantics) {
  auto like = [](const std::string& pattern, const std::string& text) {
    Like l(Col(0, Type::Char(32)), pattern, false);
    return l.Matches(text.c_str(), text.size());
  };
  EXPECT_TRUE(like("PROMO%", "PROMO BRUSHED TIN"));
  EXPECT_FALSE(like("PROMO%", "STANDARD PROMO TIN"));
  EXPECT_TRUE(like("%special%requests%", "special handling requests"));
  EXPECT_TRUE(like("%special%requests%", "xx special yy requests zz"));
  EXPECT_FALSE(like("%special%requests%", "requests then special"));
  EXPECT_TRUE(like("%TIN", "BRUSHED TIN"));
  EXPECT_FALSE(like("%TIN", "TIN PLATED"));
  EXPECT_TRUE(like("%%", "anything"));
  EXPECT_TRUE(like("abc", "abc"));
  EXPECT_FALSE(like("abc", "abcd"));
  // Trailing-space padding is ignored.
  EXPECT_TRUE(like("%TIN", "BRUSHED TIN      "));
}

TEST_P(ExprTest, ProjectionMaterializesExpressions) {
  StorageManager storage;
  std::vector<std::unique_ptr<Scalar>> exprs;
  exprs.push_back(Col(0, Type::Int32()));
  exprs.push_back(Mul(Col(1, Type::Double()), LitDouble(2.0)));
  Projection proj(std::move(exprs), {"id", "double_price"});
  EXPECT_EQ(proj.output_schema().ToString(),
            "(id INT32, double_price DOUBLE)");

  Table out("out", proj.output_schema(), Layout::kRowStore, 4096, &storage,
            MemoryCategory::kTemporaryTable);
  InsertDestination dest(&storage, &out, nullptr);
  {
    InsertDestination::Writer writer(&dest);
    std::vector<uint32_t> rows = {1, 3, 5};
    proj.MaterializeInto(block_, rows, &writer);
  }
  dest.Flush();
  ASSERT_EQ(out.NumRows(), 3u);
  EXPECT_EQ(out.GetValue(0, 0).AsInt32(), 1);
  EXPECT_DOUBLE_EQ(out.GetValue(1, 1).AsDouble(), 60.0);
  EXPECT_DOUBLE_EQ(out.GetValue(2, 1).AsDouble(), 100.0);
}

TEST_P(ExprTest, IdentityProjectionPreservesNames) {
  auto proj = Projection::Identity(schema_, {3, 0});
  EXPECT_EQ(proj->output_schema().column(0).name, "name");
  EXPECT_EQ(proj->output_schema().column(1).name, "id");
  EXPECT_EQ(proj->output_schema().row_width(), 12u);
}

TEST_P(ExprTest, CaseWhenBlendsBranches) {
  // CASE WHEN id < 10 THEN price ELSE -1 END
  auto expr = std::make_unique<CaseWhen>(
      Cmp(CompareOp::kLt, Col(0, Type::Int32()),
          Lit(TypedValue::Int32(10), Type::Int32())),
      Col(1, Type::Double()), LitDouble(-1.0));
  const auto vals = EvalDoubles(*expr);
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i < 10) {
      EXPECT_DOUBLE_EQ(vals[i], 10.0 * i);
    } else {
      EXPECT_DOUBLE_EQ(vals[i], -1.0);
    }
  }
}

TEST_P(ExprTest, CaseWhenAllOrNothing) {
  auto all = std::make_unique<CaseWhen>(std::make_unique<TruePredicate>(),
                                        LitDouble(1.0), LitDouble(0.0));
  for (double v : EvalDoubles(*all)) EXPECT_DOUBLE_EQ(v, 1.0);
  auto none = std::make_unique<CaseWhen>(
      Cmp(CompareOp::kGt, Col(0, Type::Int32()),
          Lit(TypedValue::Int32(1000), Type::Int32())),
      LitDouble(1.0), LitDouble(0.0));
  for (double v : EvalDoubles(*none)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_P(ExprTest, CaseWhenOnRowSubset) {
  auto expr = std::make_unique<CaseWhen>(
      Cmp(CompareOp::kEq, Col(3, Type::Char(8)),
          Lit(TypedValue::Char("beta"), Type::Char(8))),
      LitDouble(100.0), Col(0, Type::Int32()));
  uint32_t rows[] = {1, 2, 6, 7};  // beta at 1 and 6
  double out[4];
  expr->Eval(block_, rows, 4, reinterpret_cast<std::byte*>(out));
  EXPECT_DOUBLE_EQ(out[0], 100.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 100.0);
  EXPECT_DOUBLE_EQ(out[3], 7.0);
}

/// Nested CASE WHEN inside a predicate inside another CASE WHEN: the
/// deepest recursion the expression scratch (thread-local arena scopes and
/// pooled selection vectors) must survive without the levels clobbering
/// each other's buffers.
TEST_P(ExprTest, NestedCaseWhenRecursionKeepsScratchIntact) {
  // inner = CASE WHEN id < 10 THEN 1 ELSE 0 END
  auto inner = std::make_unique<CaseWhen>(
      Cmp(CompareOp::kLt, Col(0, Type::Int32()),
          Lit(TypedValue::Int32(10), Type::Int32())),
      LitDouble(1.0), LitDouble(0.0));
  // outer = CASE WHEN inner > 0.5 THEN price + 1 ELSE -price END
  auto expr = std::make_unique<CaseWhen>(
      Cmp(CompareOp::kGt, std::move(inner), LitDouble(0.5)),
      Add(Col(1, Type::Double()), LitDouble(1.0)),
      Sub(LitDouble(0.0), Col(1, Type::Double())));
  const auto vals = EvalDoubles(*expr);
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i < 10) {
      EXPECT_DOUBLE_EQ(vals[i], 10.0 * i + 1.0);
    } else {
      EXPECT_DOUBLE_EQ(vals[i], -10.0 * static_cast<double>(i));
    }
  }
}

TEST_P(ExprTest, AsColumnRefIdentifiesBareColumns) {
  auto col = Col(2, Type::Date());
  ASSERT_NE(col->as_column_ref(), nullptr);
  EXPECT_EQ(col->as_column_ref()->col(), 2);
  auto lit = LitDouble(1.0);
  EXPECT_EQ(lit->as_column_ref(), nullptr);
  auto arith = Add(Col(0, Type::Int32()), LitDouble(1.0));
  EXPECT_EQ(arith->as_column_ref(), nullptr);
}

TEST_P(ExprTest, CompareKernelsAreAPureABSwitch) {
  // The branch-free (auto-vectorizable) kernel and the historical branchy
  // kernel must keep exactly the same rows in the same order, for every
  // operator, against both a literal (hoisted-constant path) and a column
  // (vector path) right operand, on full and pre-shrunk selections.
  const CompareKernel saved = GetCompareKernel();
  const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                            CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  for (const CompareOp op : kOps) {
    for (const bool literal_rhs : {true, false}) {
      auto make_pred = [&] {
        return literal_rhs
                   ? Cmp(op, Col(1, Type::Double()), LitDouble(95.0))
                   : Cmp(op, Col(1, Type::Double()),
                         Mul(Col(0, Type::Int32()), LitDouble(11.0)));
      };
      SetCompareKernel(CompareKernel::kScalar);
      const std::vector<uint32_t> scalar_full =
          make_pred()->FilterAll(block_);
      SetCompareKernel(CompareKernel::kBranchFree);
      const std::vector<uint32_t> branch_free_full =
          make_pred()->FilterAll(block_);
      EXPECT_EQ(branch_free_full, scalar_full)
          << "op=" << static_cast<int>(op) << " literal=" << literal_rhs;

      std::vector<uint32_t> subset = {1, 3, 4, 9, 12, 17, 19};
      std::vector<uint32_t> scalar_subset = subset;
      SetCompareKernel(CompareKernel::kScalar);
      make_pred()->Filter(block_, &scalar_subset);
      SetCompareKernel(CompareKernel::kBranchFree);
      make_pred()->Filter(block_, &subset);
      EXPECT_EQ(subset, scalar_subset)
          << "op=" << static_cast<int>(op) << " literal=" << literal_rhs;
    }
  }
  SetCompareKernel(saved);
}

TEST_P(ExprTest, ToStringRendersTree) {
  auto pred = Cmp(CompareOp::kGe, Col(1, Type::Double()), LitDouble(3.5));
  EXPECT_EQ(pred->ToString(), "($1 >= 3.5000)");
  auto like = std::make_unique<Like>(Col(3, Type::Char(8)), "a%b", false);
  EXPECT_EQ(like->ToString(), "$3 LIKE 'a%b'");
}

INSTANTIATE_TEST_SUITE_P(Layouts, ExprTest,
                         ::testing::Values(Layout::kRowStore,
                                           Layout::kColumnStore),
                         [](const auto& info) {
                           return info.param == Layout::kRowStore
                                      ? "RowStore"
                                      : "ColumnStore";
                         });

}  // namespace
}  // namespace uot
