#include <gtest/gtest.h>

#include "simcache/access_streams.h"
#include "simcache/cache_simulator.h"
#include "util/random.h"

namespace uot {
namespace {

CacheSimConfig SmallConfig(bool prefetch) {
  CacheSimConfig config;
  config.l1 = {4 * 1024, 4, 1.0};
  config.l2 = {32 * 1024, 8, 4.0};
  config.l3 = {256 * 1024, 8, 12.0};
  config.prefetch_enabled = prefetch;
  return config;
}

TEST(CacheSimulatorTest, ColdMissThenHit) {
  CacheSimulator sim(SmallConfig(false));
  const double first = sim.Access(0x1000, 0);
  EXPECT_DOUBLE_EQ(first, sim.config().memory_latency_ns);
  const double second = sim.Access(0x1000, 0);
  EXPECT_DOUBLE_EQ(second, sim.config().l1.hit_latency_ns);
  EXPECT_EQ(sim.stats().accesses, 2u);
  EXPECT_EQ(sim.stats().memory_accesses, 1u);
  EXPECT_EQ(sim.stats().l1_hits, 1u);
}

TEST(CacheSimulatorTest, SameLineDifferentOffsetHits) {
  CacheSimulator sim(SmallConfig(false));
  sim.Access(0x1000, 0);
  EXPECT_DOUBLE_EQ(sim.Access(0x1030, 0), sim.config().l1.hit_latency_ns);
}

TEST(CacheSimulatorTest, LruEvictionWithinSet) {
  CacheSimConfig config = SmallConfig(false);
  config.l1 = {256, 2, 1.0};  // 4 lines: 2 sets x 2 ways; set = line % 2
  CacheSimulator sim(config);
  auto l1_hits = [&sim] { return sim.stats().l1_hits; };
  sim.Access(0 * 64, 0);  // line 0 -> set 0
  sim.Access(2 * 64, 0);  // line 2 -> set 0 (set now {0, 2})
  sim.Access(0 * 64, 0);  // hit; line 0 becomes MRU
  EXPECT_EQ(l1_hits(), 1u);
  sim.Access(4 * 64, 0);  // line 4 -> set 0 evicts LRU line 2
  sim.Access(0 * 64, 0);  // line 0 still resident -> L1 hit
  EXPECT_EQ(l1_hits(), 2u);
  const auto hits_before = l1_hits();
  sim.Access(2 * 64, 0);  // line 2 was evicted -> not an L1 hit
  EXPECT_EQ(l1_hits(), hits_before);
}

TEST(CacheSimulatorTest, WorkingSetLargerThanL3GoesToMemory) {
  CacheSimulator sim(SmallConfig(false));
  const uint64_t lines = 3 * 256 * 1024 / 64;  // 3x the L3
  // Two passes; the second pass still misses everywhere (LRU streaming).
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t l = 0; l < lines; ++l) sim.Access(l * 64, 0);
  }
  EXPECT_GT(sim.stats().MissRatioL3(), 0.9);
}

TEST(CacheSimulatorTest, PrefetcherTurnsSequentialMissesIntoHits) {
  const uint64_t bytes = 512 * 1024;
  CacheSimulator off(SmallConfig(false));
  CacheSimulator on(SmallConfig(true));
  for (uint64_t addr = 0; addr < bytes; addr += 64) {
    off.Access(addr, 0);
    on.Access(addr, 0);
  }
  EXPECT_GT(on.stats().prefetches_issued, 0u);
  EXPECT_GT(on.stats().prefetch_hits, on.stats().accesses / 2);
  EXPECT_LT(on.stats().total_ns, 0.5 * off.stats().total_ns);
}

TEST(CacheSimulatorTest, PrefetcherDetectsLargeStrides) {
  // Row-store single-attribute scan: stride = tuple width (e.g. 100B+),
  // the case the paper highlights for row stores.
  CacheSimulator off(SmallConfig(false));
  CacheSimulator on(SmallConfig(true));
  for (uint64_t i = 0; i < 4000; ++i) {
    off.Access(i * 144, 0);
    on.Access(i * 144, 0);
  }
  EXPECT_LT(on.stats().total_ns, off.stats().total_ns);
}

TEST(CacheSimulatorTest, PrefetcherDoesNotHelpRandomAccess) {
  Random rng(3);
  CacheSimConfig config = SmallConfig(true);
  CacheSimulator on(config);
  config.prefetch_enabled = false;
  CacheSimulator off(config);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t addr =
        static_cast<uint64_t>(rng.Uniform(0, (1 << 24) - 1)) & ~63ULL;
    on.Access(addr, 0);
  }
  Random rng2(3);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t addr =
        static_cast<uint64_t>(rng2.Uniform(0, (1 << 24) - 1)) & ~63ULL;
    off.Access(addr, 0);
  }
  // No stable stride: prefetching gains nothing (and may pollute).
  EXPECT_GE(on.stats().total_ns, 0.95 * off.stats().total_ns);
}

TEST(CacheSimulatorTest, StreamsTrackedIndependently) {
  // Two interleaved sequential streams would confuse a single-stream
  // detector; per-stream tracking keeps both prefetchable.
  CacheSimulator sim(SmallConfig(true));
  for (uint64_t i = 0; i < 2000; ++i) {
    sim.Access(i * 64, 0);
    sim.Access((1 << 26) + i * 64, 1);
  }
  EXPECT_GT(sim.stats().prefetch_hits, sim.stats().accesses / 3);
}

TEST(CacheSimulatorTest, ResetStatsClearsCounters) {
  CacheSimulator sim(SmallConfig(true));
  sim.Access(0, 0);
  sim.ResetStats();
  EXPECT_EQ(sim.stats().accesses, 0u);
  EXPECT_DOUBLE_EQ(sim.stats().total_ns, 0.0);
}

// ---- operator access-stream traces (the Table VI substitute) ----

TaskTraceConfig TraceConfig(uint64_t block_bytes) {
  TaskTraceConfig config;
  config.block_bytes = block_bytes;
  config.tuple_bytes = 100;
  config.attr_bytes = 8;
  config.hash_table_bytes = 8 * 1024 * 1024;
  return config;
}

TEST(AccessStreamsTest, SelectBenefitsFromPrefetching) {
  Random rng1(7), rng2(7);
  CacheSimConfig config;  // full-size Haswell caches
  config.prefetch_enabled = true;
  CacheSimulator on(config);
  config.prefetch_enabled = false;
  CacheSimulator off(config);
  const double t_on = SimulateSelectTask(&on, TraceConfig(128 * 1024), &rng1,
                                         0.3);
  const double t_off = SimulateSelectTask(&off, TraceConfig(128 * 1024),
                                          &rng2, 0.3);
  EXPECT_LT(t_on, t_off);
}

TEST(AccessStreamsTest, TaskTimeGrowsWithBlockSize) {
  Random rng(7);
  CacheSimulator sim{CacheSimConfig{}};
  const double t_small =
      SimulateSelectTask(&sim, TraceConfig(128 * 1024), &rng, 0.3);
  const double t_large =
      SimulateSelectTask(&sim, TraceConfig(2 * 1024 * 1024), &rng, 0.3);
  EXPECT_GT(t_large, 5.0 * t_small);
}

TEST(AccessStreamsTest, ProbeTouchesHashTableRandomly) {
  Random rng(9);
  CacheSimConfig config;
  config.prefetch_enabled = false;
  CacheSimulator sim(config);
  TaskTraceConfig trace = TraceConfig(128 * 1024);
  trace.hash_table_bytes = 256 * 1024 * 1024;  // far beyond L3
  const double t = SimulateProbeTask(&sim, trace, &rng, 0.5);
  EXPECT_GT(t, 0.0);
  // Most hash accesses must go to memory.
  EXPECT_GT(sim.stats().memory_accesses, sim.stats().accesses / 4);
}

TEST(AccessStreamsTest, TableSixShape) {
  // The Table VI signal: prefetching speeds up the sequential select but
  // slows down build and probe (adjacent-line fetches on random hash
  // traffic are pure overhead).
  auto run = [](const char* op, bool prefetch) {
    CacheSimConfig config;  // full Haswell geometry
    config.prefetch_enabled = prefetch;
    CacheSimulator sim(config);
    Random rng(42);
    TaskTraceConfig trace;
    trace.block_bytes = 512 * 1024;
    trace.tuple_bytes = 145;
    trace.attr_bytes = 8;
    trace.hash_table_bytes = 64ULL * 1024 * 1024;
    if (op[0] == 's') return SimulateSelectTask(&sim, trace, &rng, 0.3);
    if (op[0] == 'b') return SimulateBuildTask(&sim, trace, &rng);
    return SimulateProbeTask(&sim, trace, &rng, 0.5);
  };
  EXPECT_LT(run("select", true), 0.8 * run("select", false));
  EXPECT_GT(run("build", true), run("build", false));
  EXPECT_GT(run("probe", true), run("probe", false));
}

TEST(AccessStreamsTest, BuildAndProbeProduceWork) {
  Random rng(11);
  CacheSimulator sim{CacheSimConfig{}};
  EXPECT_GT(SimulateBuildTask(&sim, TraceConfig(128 * 1024), &rng), 0.0);
  EXPECT_GT(SimulateProbeTask(&sim, TraceConfig(128 * 1024), &rng, 1.0),
            0.0);
}

}  // namespace
}  // namespace uot
