#include <gtest/gtest.h>

#include "baseline/materializing_engine.h"
#include "exec/query_executor.h"
#include "test_util.h"
#include "tpch/tpch_queries.h"

namespace uot {
namespace {

using testing::MakeKvTable;

TEST(MaterializingEngineTest, OutputsAreFullyMaterializedInFewBlocks) {
  StorageManager storage;
  MaterializingEngine engine(&storage);
  auto input = MakeKvTable(&storage, "in", 5000, 10, Layout::kRowStore, 512);
  EXPECT_GT(input->blocks().size(), 50u);  // small blocks on the base table
  auto proj = Projection::Identity(input->schema(), {0, 1});
  TruePredicate pred;
  auto out = engine.Select(*input, pred, *proj);
  EXPECT_EQ(out->NumRows(), 5000u);
  // Whole-table materialization: the output is one giant block.
  EXPECT_EQ(out->blocks().size(), 1u);
}

TEST(MaterializingEngineTest, PlanExecutionMatchesParallelEngine) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = 0.002;
  config.block_bytes = 64 * 1024;
  db.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 64 * 1024;

  for (int query : {1, 3, 6, 10}) {
    auto parallel_plan = BuildTpchPlan(query, db, plan_config);
    ExecConfig exec;
    exec.num_workers = 4;
    exec.uot = UotPolicy::LowUot(1);
    QueryExecutor::Execute(parallel_plan.get(), exec);

    auto baseline_plan = BuildTpchPlan(query, db, plan_config);
    MaterializingEngine::ExecutePlan(baseline_plan.get());

    EXPECT_TRUE(testing::CanonicalRowsNear(
        CanonicalRows(*baseline_plan->result_table()),
        CanonicalRows(*parallel_plan->result_table())))
        << "query " << query;
  }
}

TEST(MaterializingEngineTest, JoinAggregateSortPipeline) {
  StorageManager storage;
  MaterializingEngine engine(&storage);
  auto fact = MakeKvTable(&storage, "fact", 1000, 20);
  auto dim = MakeKvTable(&storage, "dim", 20, 20);

  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0, 1};
  auto joined = engine.HashJoin(*fact, *dim, spec);
  EXPECT_EQ(joined->NumRows(), 1000u);

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum_v"});
  auto agg = engine.GroupAggregate(*joined, {0}, std::move(aggs), nullptr);
  EXPECT_EQ(agg->NumRows(), 20u);

  auto sorted = engine.Sort(*agg, {{1, false}}, 5);
  ASSERT_EQ(sorted->NumRows(), 5u);
  // Top group by sum(v): key 19 holds 19+39+...+999.
  double prev = 1e300;
  for (uint64_t r = 0; r < 5; ++r) {
    const double v = sorted->GetValue(r, 1).AsDouble();
    EXPECT_LE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace uot
