#include <gtest/gtest.h>

#include "baseline/materializing_engine.h"
#include "exec/query_executor.h"
#include "model/memory_model.h"
#include "operators/select_operator.h"
#include "test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace uot {
namespace {

using testing::MakeKvTable;

/// End-to-end: the measured hash-table footprint of a real build matches
/// the Section VI-B model formula.
TEST(IntegrationTest, HashTableFootprintMatchesModel) {
  StorageManager storage;
  auto build_table = MakeKvTable(&storage, "build", 10000, 10000,
                                 Layout::kRowStore, 64 * 1024);
  MaterializingEngine engine(&storage);
  MaterializingEngine::JoinSpec spec;
  spec.build_keys = {0};
  spec.build_payload = {1};
  spec.probe_keys = {0};
  spec.probe_out = {0};
  spec.load_factor = 0.75;
  auto probe_table = MakeKvTable(&storage, "probe", 10, 10);
  storage.tracker().ResetPeaks();
  auto out = engine.HashJoin(*probe_table, *build_table, spec);

  const int64_t measured = storage.tracker().Peak(MemoryCategory::kHashTable);
  // Model: (M/w)*(c/f) with w = 12-byte tuples, c = 16-byte slots
  // (8B key + 8B payload after alignment) + 1B tag.
  const double model = MemoryModel::HashTableBytes(
      10000.0 * 12, 12.0, 17.0, 0.75);
  EXPECT_GT(measured, model * 0.5);
  EXPECT_LT(measured, model * 2.5);  // power-of-two slot rounding
  (void)out;
}

/// Table II end-to-end: the low-UoT strategy's overhead is the co-resident
/// hash tables; the high-UoT strategy's is the materialized select output.
TEST(IntegrationTest, MemoryFootprintTradeoffIsObservable) {
  StorageManager storage;
  // Large selective select output vs small hash table: high UoT pays for
  // the intermediate table.
  auto probe_table = MakeKvTable(&storage, "probe", 50000, 100,
                                 Layout::kRowStore, 16 * 1024);
  auto build_table = MakeKvTable(&storage, "build", 100, 100,
                                 Layout::kRowStore, 16 * 1024);

  QueryPlan plan(&storage);
  auto build = std::make_unique<BuildHashOperator>(
      "build", std::vector<int>{0}, std::vector<int>{1}, 0.75,
      &storage.tracker());
  build->InitHashTable(build_table.get()->schema());
  build->AttachBaseTable(build_table.get());
  BuildHashOperator* build_raw = build.get();
  const int build_op = plan.AddOperator(std::move(build));

  auto proj = Projection::Identity(probe_table->schema(), {0, 1});
  Schema sel_schema = proj->output_schema();
  Table* sel_out = plan.CreateTempTable("sel.out", sel_schema,
                                        Layout::kRowStore, 16 * 1024);
  InsertDestination* sel_dest = plan.CreateDestination(sel_out);
  auto select = std::make_unique<SelectOperator>(
      "select", std::make_unique<TruePredicate>(), std::move(proj), sel_dest);
  select->AttachBaseTable(probe_table.get());
  const int select_op = plan.AddOperator(std::move(select));
  plan.RegisterOutput(select_op, sel_dest);

  Schema probe_schema = ProbeHashOperator::OutputSchema(
      sel_schema, {0}, build_table->schema(), {1}, JoinKind::kInner);
  Table* probe_out = plan.CreateTempTable("probe.out", probe_schema,
                                          Layout::kRowStore, 16 * 1024);
  InsertDestination* probe_dest = plan.CreateDestination(probe_out);
  auto probe = std::make_unique<ProbeHashOperator>(
      "probe", build_raw, std::vector<int>{0}, std::vector<int>{0},
      JoinKind::kInner, std::vector<ResidualCondition>{}, probe_dest);
  const int probe_op = plan.AddOperator(std::move(probe));
  plan.RegisterOutput(probe_op, probe_dest);
  plan.AddStreamingEdge(select_op, probe_op);
  plan.AddBlockingEdge(build_op, probe_op);
  plan.SetResultTable(probe_out);

  ExecConfig exec;
  exec.num_workers = 2;
  exec.uot = UotPolicy::HighUot();
  const ExecutionStats stats = QueryExecutor::Execute(&plan, exec);

  // The materialized intermediate dominates the hash table by far
  // (Table II's high-UoT column: overhead = |sigma(R)|).
  EXPECT_GT(stats.PeakTemporaryBytes(), 4 * stats.PeakHashTableBytes());
  // ~50000 rows * 12 bytes of select output had to coexist.
  EXPECT_GT(stats.PeakTemporaryBytes(), 50000 * 12 / 2);
}

/// Table II's other column: with a low UoT, consumed intermediate blocks
/// are transient, so the peak intermediate footprint is far below the
/// whole-table materialization of the high-UoT strategy.
TEST(IntegrationTest, LowUotIntermediateFootprintIsTransient) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 50000, 100,
                                 Layout::kRowStore, 16 * 1024);
  auto build_table = MakeKvTable(&storage, "build", 100, 100,
                                 Layout::kRowStore, 16 * 1024);
  int64_t peak_temp[2];
  int idx = 0;
  for (const bool whole_table : {false, true}) {
    QueryPlan plan(&storage);
    auto build = std::make_unique<BuildHashOperator>(
        "build", std::vector<int>{0}, std::vector<int>{1}, 0.75,
        &storage.tracker());
    build->InitHashTable(build_table->schema());
    build->AttachBaseTable(build_table.get());
    BuildHashOperator* build_raw = build.get();
    const int build_op = plan.AddOperator(std::move(build));

    auto proj = Projection::Identity(probe_table->schema(), {0, 1});
    Schema sel_schema = proj->output_schema();
    Table* sel_out = plan.CreateTempTable("sel.out", sel_schema,
                                          Layout::kRowStore, 16 * 1024);
    InsertDestination* sel_dest = plan.CreateDestination(sel_out);
    auto select = std::make_unique<SelectOperator>(
        "select", std::make_unique<TruePredicate>(), std::move(proj),
        sel_dest);
    select->AttachBaseTable(probe_table.get());
    const int select_op = plan.AddOperator(std::move(select));
    plan.RegisterOutput(select_op, sel_dest);

    std::vector<AggSpec> aggs;
    aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum"});
    Schema agg_schema = AggregateOperator::OutputSchema(sel_schema, {}, aggs);
    Table* agg_out =
        plan.CreateTempTable("agg.out", agg_schema, Layout::kRowStore, 4096);
    InsertDestination* agg_dest = plan.CreateDestination(agg_out);
    auto agg = std::make_unique<AggregateOperator>(
        "agg", sel_schema, std::vector<int>{}, std::move(aggs), nullptr,
        agg_dest);
    const int agg_op = plan.AddOperator(std::move(agg));
    plan.RegisterOutput(agg_op, agg_dest);
    plan.AddStreamingEdge(select_op, agg_op);
    (void)build_op;
    (void)build_raw;
    plan.SetResultTable(agg_out);

    ExecConfig exec;
    exec.num_workers = 1;
    exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
    const ExecutionStats stats = QueryExecutor::Execute(&plan, exec);
    peak_temp[idx++] = stats.PeakTemporaryBytes();
    // Results identical either way.
    EXPECT_DOUBLE_EQ(agg_out->GetValue(0, 0).AsDouble(),
                     50000.0 * 49999.0 / 2.0);
  }
  // Low-UoT peak is a small multiple of one block; high-UoT peak is the
  // whole materialized intermediate (~600KB here).
  EXPECT_LT(peak_temp[0], peak_temp[1] / 3);
}

/// The memory model's selectivity * projectivity prediction matches the
/// measured intermediate-table bytes for a real TPC-H selection.
TEST(IntegrationTest, SelectionReductionPredictsIntermediateSize) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = 0.004;
  config.block_bytes = 32 * 1024;
  db.Generate(config);

  SelectionSpec spec = TpchSelectionSpec(7, "lineitem");
  MaterializingEngine engine(&storage);
  const Schema& l = db.lineitem().schema();
  std::vector<std::unique_ptr<Scalar>> exprs;
  exprs.push_back(Col(tpch::kLOrderkey, Type::Int64()));
  exprs.push_back(Col(tpch::kLSuppkey, Type::Int32()));
  exprs.push_back(Mul(Col(tpch::kLExtendedprice, Type::Double()),
                      Sub(LitDouble(1.0),
                          Col(tpch::kLDiscount, Type::Double()))));
  exprs.push_back(Col(tpch::kLShipdate, Type::Date()));
  Projection proj(std::move(exprs),
                  {"l_orderkey", "l_suppkey", "volume", "l_shipdate"});
  auto out = engine.Select(db.lineitem(), *spec.predicate, proj);

  const double actual_bytes =
      static_cast<double>(out->NumRows()) * proj.output_schema().row_width();
  const double predicted =
      static_cast<double>(db.lineitem().NumRows()) * l.row_width() *
      MemoryModel::Selectivity(out->NumRows(), db.lineitem().NumRows()) *
      MemoryModel::Projectivity(proj.output_schema().row_width(),
                                l.row_width());
  EXPECT_NEAR(actual_bytes, predicted, predicted * 0.01);
}

/// Execution stats expose the Fig. 3 signal: dominant-operator share.
TEST(IntegrationTest, DominantOperatorShareComputable) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = 0.004;
  db.Generate(config);

  auto plan = BuildTpchPlan(6, db, TpchPlanConfig{});
  ExecConfig exec;
  exec.num_workers = 2;
  exec.uot = UotPolicy::HighUot();
  const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
  double total = 0, top = 0;
  for (const OperatorStats& os : stats.operators) {
    total += os.total_task_ms();
    top = std::max(top, os.total_task_ms());
  }
  ASSERT_GT(total, 0.0);
  // Q6 is a single leaf aggregation: dominant share ~ 100%.
  EXPECT_GT(top / total, 0.9);
}

/// A query executed under every UoT policy produces one canonical result
/// even when partial blocks, concurrency caps and tiny blocks interact.
TEST(IntegrationTest, StressManyBlocksManyConfigs) {
  StorageManager storage;
  auto probe_table = MakeKvTable(&storage, "probe", 20000, 64,
                                 Layout::kColumnStore, 1024);
  auto build_table = MakeKvTable(&storage, "build", 640, 64,
                                 Layout::kColumnStore, 1024);
  std::string expected;
  for (uint64_t uot : {UINT64_C(1), UINT64_C(3), UINT64_C(16),
                       UotPolicy::kWholeTable}) {
    for (int workers : {1, 3}) {
      MaterializingEngine engine(&storage);
      QueryPlan plan(&storage);
      auto build = std::make_unique<BuildHashOperator>(
          "build", std::vector<int>{0}, std::vector<int>{1}, 0.6,
          &storage.tracker());
      build->InitHashTable(build_table->schema());
      build->AttachBaseTable(build_table.get());
      BuildHashOperator* build_raw = build.get();
      const int build_op = plan.AddOperator(std::move(build));

      auto proj = Projection::Identity(probe_table->schema(), {0, 1});
      Schema sel_schema = proj->output_schema();
      Table* sel_out = plan.CreateTempTable("sel.out", sel_schema,
                                            Layout::kRowStore, 512);
      InsertDestination* sel_dest = plan.CreateDestination(sel_out);
      auto select = std::make_unique<SelectOperator>(
          "select",
          Cmp(CompareOp::kLt, Col(1, Type::Double()), LitDouble(17777.0)),
          std::move(proj), sel_dest);
      select->AttachBaseTable(probe_table.get());
      const int select_op = plan.AddOperator(std::move(select));
      plan.RegisterOutput(select_op, sel_dest);

      Schema probe_schema = ProbeHashOperator::OutputSchema(
          sel_schema, {0, 1}, build_table->schema(), {1}, JoinKind::kInner);
      Table* probe_out = plan.CreateTempTable("probe.out", probe_schema,
                                              Layout::kRowStore, 512);
      InsertDestination* probe_dest = plan.CreateDestination(probe_out);
      auto probe = std::make_unique<ProbeHashOperator>(
          "probe", build_raw, std::vector<int>{0}, std::vector<int>{0, 1},
          JoinKind::kInner, std::vector<ResidualCondition>{}, probe_dest);
      const int probe_op = plan.AddOperator(std::move(probe));
      plan.RegisterOutput(probe_op, probe_dest);
      plan.AddStreamingEdge(select_op, probe_op);
      plan.AddBlockingEdge(build_op, probe_op);
      plan.SetResultTable(probe_out);

      ExecConfig exec;
      exec.num_workers = workers;
      exec.uot = uot == UotPolicy::kWholeTable ? UotPolicy::HighUot()
                                               : UotPolicy::LowUot(uot);
      exec.max_concurrent_per_op = workers;
      QueryExecutor::Execute(&plan, exec);
      const std::string got = CanonicalRows(*plan.result_table());
      if (expected.empty()) {
        expected = got;
        EXPECT_FALSE(expected.empty());
      } else {
        EXPECT_EQ(got, expected)
            << "uot=" << uot << " workers=" << workers;
      }
    }
  }
}

}  // namespace
}  // namespace uot
