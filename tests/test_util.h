#ifndef UOT_TESTS_TEST_UTIL_H_
#define UOT_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/query_executor.h"
#include "expr/expression.h"
#include "expr/predicate.h"
#include "plan/plan_builder.h"
#include "storage/storage_manager.h"
#include "storage/table.h"
#include "types/row_builder.h"

namespace uot {
namespace testing {

/// Compares two CanonicalRows() strings field by field, allowing a relative
/// tolerance on numeric fields: parallel aggregation sums are only
/// reproducible up to floating-point merge order, so exact string equality
/// is the wrong comparator for results containing SUM/AVG columns.
inline ::testing::AssertionResult CanonicalRowsNear(
    const std::string& actual, const std::string& expected,
    double rel_tol = 1e-6) {
  std::istringstream sa(actual), se(expected);
  std::string la, le;
  int line_no = 0;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool ge = static_cast<bool>(std::getline(se, le));
    if (!ga && !ge) return ::testing::AssertionSuccess();
    ++line_no;
    if (ga != ge) {
      return ::testing::AssertionFailure()
             << "row counts differ at line " << line_no;
    }
    std::istringstream fa(la), fe(le);
    std::string va, ve;
    int field = 0;
    while (true) {
      const bool ha = static_cast<bool>(std::getline(fa, va, ','));
      const bool he = static_cast<bool>(std::getline(fe, ve, ','));
      if (!ha && !he) break;
      ++field;
      if (ha != he) {
        return ::testing::AssertionFailure()
               << "field counts differ at line " << line_no;
      }
      if (va == ve) continue;
      char* enda = nullptr;
      char* ende = nullptr;
      const double da = std::strtod(va.c_str(), &enda);
      const double de = std::strtod(ve.c_str(), &ende);
      const bool numeric = enda == va.c_str() + va.size() &&
                           ende == ve.c_str() + ve.size() && !va.empty() &&
                           !ve.empty();
      if (!numeric ||
          std::abs(da - de) >
              rel_tol * std::max({1.0, std::abs(da), std::abs(de)})) {
        return ::testing::AssertionFailure()
               << "line " << line_no << " field " << field << ": '" << va
               << "' vs '" << ve << "'";
      }
    }
  }
}

/// Builds a two-column (k INT32, v DOUBLE) table with `rows` rows where
/// k = i % modulo and v = i.
inline std::unique_ptr<Table> MakeKvTable(StorageManager* storage,
                                          const std::string& name,
                                          uint64_t rows, int32_t modulo,
                                          Layout layout = Layout::kRowStore,
                                          size_t block_bytes = 4096) {
  Schema schema({{"k", Type::Int32()}, {"v", Type::Double()}});
  auto table = std::make_unique<Table>(name, schema, layout, block_bytes,
                                       storage, MemoryCategory::kBaseTable);
  RowBuilder row(&table->schema());
  for (uint64_t i = 0; i < rows; ++i) {
    row.SetInt32(0, static_cast<int32_t>(i % modulo));
    row.SetDouble(1, static_cast<double>(i));
    table->AppendRow(row.data());
  }
  return table;
}

/// SplitMix64: tiny, implementation-independent deterministic RNG so fuzz
/// seeds reproduce identically on every platform/stdlib (std::uniform_*
/// distributions are not portable across library implementations).
class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi], inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// True with probability num/den.
  bool Chance(int num, int den) { return Range(1, den) <= num; }

 private:
  uint64_t state_;
};

/// A seeded random join-tree query for differential (parity) testing: the
/// same spec can be instantiated as an unpartitioned or radix-partitioned
/// plan any number of times, over the same generated base tables, so byte
/// parity of CanonicalRows across {radix_bits, join kernel, UoT policy} is
/// a meaningful assertion.
///
/// Shape: a left-deep chain of 1..3 hash joins over one probe table.
/// Randomized per seed: join kinds (inner/semi/anti), key column types
/// (INT32/INT64), one- vs two-column keys, residual (non-equi) conditions,
/// an optional pre-join selection, an optional LIP filter, and the probe
/// key distributions — uniform, heavy-hitter (~75% of rows share one key,
/// the radix skew case), and all-duplicates (a constant column: every row
/// lands in one partition). Key domains include negative values and 0 so
/// sentinel/zero keys are always in play.
class RandomJoinQuery {
 public:
  RandomJoinQuery(StorageManager* storage, uint64_t seed) : seed_(seed) {
    FuzzRng rng(seed);
    num_joins_ = static_cast<int>(rng.Range(1, 3));
    const uint64_t probe_rows = static_cast<uint64_t>(rng.Range(64, 900));

    // Probe table: one key column per join + a second-key INT32 column
    // ("e") + a DOUBLE residual/payload column ("v").
    std::vector<Column> probe_cols;
    for (int j = 0; j < num_joins_; ++j) {
      key_is_int64_.push_back(rng.Chance(1, 2));
      probe_cols.push_back({"k" + std::to_string(j),
                            key_is_int64_[static_cast<size_t>(j)]
                                ? Type::Int64()
                                : Type::Int32()});
    }
    probe_cols.push_back({"e", Type::Int32()});
    probe_cols.push_back({"v", Type::Double()});
    extra_col_ = num_joins_;
    value_col_ = num_joins_ + 1;

    // Per-key distribution: 0 = uniform, 1 = heavy-hitter, 2 = all-dup.
    std::vector<int> dist, modulo;
    for (int j = 0; j < num_joins_; ++j) {
      dist.push_back(static_cast<int>(rng.Range(0, 2)));
      modulo.push_back(static_cast<int>(rng.Range(4, 48)));
    }

    Schema probe_schema(std::move(probe_cols));
    auto probe = std::make_unique<Table>(
        "fuzz.probe", probe_schema, Layout::kRowStore, /*block_bytes=*/2048,
        storage, MemoryCategory::kBaseTable);
    RowBuilder row(&probe->schema());
    for (uint64_t i = 0; i < probe_rows; ++i) {
      for (int j = 0; j < num_joins_; ++j) {
        const int m = modulo[static_cast<size_t>(j)];
        int64_t key;
        switch (dist[static_cast<size_t>(j)]) {
          case 1:  // heavy hitter: ~75% of rows share key -1.
            key = rng.Chance(3, 4) ? -1 : rng.Range(0, m - 1);
            break;
          case 2:  // all duplicates.
            key = 7;
            break;
          default:  // uniform, domain spans negatives and 0.
            key = rng.Range(-m / 2, m - 1);
        }
        if (key_is_int64_[static_cast<size_t>(j)]) {
          row.SetInt64(j, key);
        } else {
          row.SetInt32(j, static_cast<int32_t>(key));
        }
      }
      row.SetInt32(extra_col_, static_cast<int32_t>(rng.Range(0, 3)));
      row.SetDouble(value_col_, static_cast<double>(rng.Range(0, 999)) / 10.0);
      probe->AppendRow(row.data());
    }
    probe_ = probe.get();
    tables_.push_back(std::move(probe));

    // Build tables: (bk <key type>, be INT32, bv DOUBLE). Keys drawn from
    // the matching probe domain (plus misses) with duplicates possible.
    for (int j = 0; j < num_joins_; ++j) {
      const int m = modulo[static_cast<size_t>(j)];
      const uint64_t build_rows = static_cast<uint64_t>(rng.Range(1, 160));
      Schema build_schema(
          {{"bk", key_is_int64_[static_cast<size_t>(j)] ? Type::Int64()
                                                        : Type::Int32()},
           {"be", Type::Int32()},
           {"bv", Type::Double()}});
      auto build = std::make_unique<Table>(
          "fuzz.build" + std::to_string(j), build_schema, Layout::kRowStore,
          2048, storage, MemoryCategory::kBaseTable);
      RowBuilder brow(&build->schema());
      for (uint64_t i = 0; i < build_rows; ++i) {
        const int64_t key = rng.Range(-m / 2 - 1, m);  // some always miss
        if (key_is_int64_[static_cast<size_t>(j)]) {
          brow.SetInt64(0, key);
        } else {
          brow.SetInt32(0, static_cast<int32_t>(key));
        }
        brow.SetInt32(1, static_cast<int32_t>(rng.Range(0, 3)));
        brow.SetDouble(2, static_cast<double>(rng.Range(0, 999)) / 10.0);
        build->AppendRow(brow.data());
      }
      builds_.push_back(build.get());
      tables_.push_back(std::move(build));

      two_key_.push_back(rng.Chance(1, 4));
      const int kind_roll = static_cast<int>(rng.Range(0, 3));
      kinds_.push_back(kind_roll <= 1 ? JoinKind::kInner
                       : kind_roll == 2 ? JoinKind::kLeftSemi
                                        : JoinKind::kLeftAnti);
      has_residual_.push_back(rng.Chance(2, 5));
      static const CompareOp kResidualOps[] = {CompareOp::kNe, CompareOp::kLt,
                                               CompareOp::kGt, CompareOp::kLe,
                                               CompareOp::kGe};
      residual_ops_.push_back(kResidualOps[rng.Range(0, 4)]);
      residual_scales_.push_back(rng.Chance(1, 2) ? 1.0 : 0.5);
    }

    pre_select_ = rng.Chance(1, 3);
    select_threshold_ = static_cast<double>(rng.Range(5, 95));
    // LIP prunes probe rows that cannot match build 0 — identical results
    // for inner/semi, but it would *create* anti-join matches, so gate it.
    use_lip_ = rng.Chance(1, 4) && kinds_[0] != JoinKind::kLeftAnti;
  }

  uint64_t seed() const { return seed_; }
  int num_joins() const { return num_joins_; }

  std::string Description() const {
    std::string out = "seed=" + std::to_string(seed_) +
                      " joins=" + std::to_string(num_joins_);
    for (int j = 0; j < num_joins_; ++j) {
      const size_t sj = static_cast<size_t>(j);
      out += " [j" + std::to_string(j) + ":";
      out += kinds_[sj] == JoinKind::kInner      ? "inner"
             : kinds_[sj] == JoinKind::kLeftSemi ? "semi"
                                                 : "anti";
      out += key_is_int64_[sj] ? ",i64" : ",i32";
      if (two_key_[sj]) out += ",2key";
      if (has_residual_[sj]) out += ",resid";
      out += "]";
    }
    if (pre_select_) out += " select";
    if (use_lip_) out += " lip";
    return out;
  }

  /// A fresh plan over this query's tables. `radix_bits` 0 keeps every
  /// join on the single shared-table path; > 0 exchanges both sides of
  /// every join into 2^radix_bits partitions. Results must be
  /// byte-identical either way.
  std::unique_ptr<QueryPlan> MakePlan(StorageManager* storage,
                                      int radix_bits) const {
    PlanBuilderConfig config;
    config.block_bytes = 2048;
    config.use_lip = use_lip_;
    config.join_radix_bits = radix_bits;
    PlanBuilder builder(storage, config);

    // Builds first so a LIP-bearing selection can reference build 0.
    std::vector<BuildHashOperator*> build_ops;
    for (int j = 0; j < num_joins_; ++j) {
      const size_t sj = static_cast<size_t>(j);
      std::vector<int> build_keys{0};
      if (two_key_[sj]) build_keys.push_back(1);
      build_ops.push_back(builder.Build("build" + std::to_string(j),
                                        PlanBuilder::Base(*builds_[sj]),
                                        build_keys, {2}));
    }

    PlanBuilder::Src current = PlanBuilder::Base(*probe_);
    if (pre_select_) {
      std::vector<int> all_cols;
      for (int c = 0; c < probe_->schema().num_columns(); ++c) {
        all_cols.push_back(c);
      }
      std::vector<std::pair<BuildHashOperator*, int>> lip;
      if (use_lip_ && !two_key_[0]) lip.push_back({build_ops[0], 0});
      current = builder.Select(
          "select", current,
          Cmp(CompareOp::kLe, Col(value_col_, Type::Double()),
              LitDouble(select_threshold_)),
          Projection::Identity(probe_->schema(), all_cols), std::move(lip));
    }

    for (int j = 0; j < num_joins_; ++j) {
      const size_t sj = static_cast<size_t>(j);
      std::vector<int> probe_keys{j};
      if (two_key_[sj]) probe_keys.push_back(extra_col_);
      std::vector<int> out_cols;
      for (int c = 0; c < builder.SchemaOf(current).num_columns(); ++c) {
        out_cols.push_back(c);
      }
      std::vector<ResidualCondition> residuals;
      if (has_residual_[sj]) {
        residuals.push_back({value_col_, 0, residual_ops_[sj],
                             residual_scales_[sj]});
      }
      current = builder.Probe("probe" + std::to_string(j), current,
                              build_ops[sj], probe_keys, out_cols, kinds_[sj],
                              std::move(residuals));
    }
    return builder.Finish(current);
  }

 private:
  const uint64_t seed_;
  int num_joins_ = 0;
  int extra_col_ = 0;
  int value_col_ = 0;
  std::vector<std::unique_ptr<Table>> tables_;
  const Table* probe_ = nullptr;
  std::vector<const Table*> builds_;
  std::vector<bool> key_is_int64_;
  std::vector<bool> two_key_;
  std::vector<JoinKind> kinds_;
  std::vector<bool> has_residual_;
  std::vector<CompareOp> residual_ops_;
  std::vector<double> residual_scales_;
  bool pre_select_ = false;
  double select_threshold_ = 0.0;
  bool use_lip_ = false;
};

}  // namespace testing
}  // namespace uot

#endif  // UOT_TESTS_TEST_UTIL_H_
