#ifndef UOT_TESTS_TEST_UTIL_H_
#define UOT_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/query_executor.h"
#include "storage/storage_manager.h"
#include "storage/table.h"
#include "types/row_builder.h"

namespace uot {
namespace testing {

/// Compares two CanonicalRows() strings field by field, allowing a relative
/// tolerance on numeric fields: parallel aggregation sums are only
/// reproducible up to floating-point merge order, so exact string equality
/// is the wrong comparator for results containing SUM/AVG columns.
inline ::testing::AssertionResult CanonicalRowsNear(
    const std::string& actual, const std::string& expected,
    double rel_tol = 1e-6) {
  std::istringstream sa(actual), se(expected);
  std::string la, le;
  int line_no = 0;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool ge = static_cast<bool>(std::getline(se, le));
    if (!ga && !ge) return ::testing::AssertionSuccess();
    ++line_no;
    if (ga != ge) {
      return ::testing::AssertionFailure()
             << "row counts differ at line " << line_no;
    }
    std::istringstream fa(la), fe(le);
    std::string va, ve;
    int field = 0;
    while (true) {
      const bool ha = static_cast<bool>(std::getline(fa, va, ','));
      const bool he = static_cast<bool>(std::getline(fe, ve, ','));
      if (!ha && !he) break;
      ++field;
      if (ha != he) {
        return ::testing::AssertionFailure()
               << "field counts differ at line " << line_no;
      }
      if (va == ve) continue;
      char* enda = nullptr;
      char* ende = nullptr;
      const double da = std::strtod(va.c_str(), &enda);
      const double de = std::strtod(ve.c_str(), &ende);
      const bool numeric = enda == va.c_str() + va.size() &&
                           ende == ve.c_str() + ve.size() && !va.empty() &&
                           !ve.empty();
      if (!numeric ||
          std::abs(da - de) >
              rel_tol * std::max({1.0, std::abs(da), std::abs(de)})) {
        return ::testing::AssertionFailure()
               << "line " << line_no << " field " << field << ": '" << va
               << "' vs '" << ve << "'";
      }
    }
  }
}

/// Builds a two-column (k INT32, v DOUBLE) table with `rows` rows where
/// k = i % modulo and v = i.
inline std::unique_ptr<Table> MakeKvTable(StorageManager* storage,
                                          const std::string& name,
                                          uint64_t rows, int32_t modulo,
                                          Layout layout = Layout::kRowStore,
                                          size_t block_bytes = 4096) {
  Schema schema({{"k", Type::Int32()}, {"v", Type::Double()}});
  auto table = std::make_unique<Table>(name, schema, layout, block_bytes,
                                       storage, MemoryCategory::kBaseTable);
  RowBuilder row(&table->schema());
  for (uint64_t i = 0; i < rows; ++i) {
    row.SetInt32(0, static_cast<int32_t>(i % modulo));
    row.SetDouble(1, static_cast<double>(i));
    table->AppendRow(row.data());
  }
  return table;
}

}  // namespace testing
}  // namespace uot

#endif  // UOT_TESTS_TEST_UTIL_H_
