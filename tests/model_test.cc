#include <gtest/gtest.h>

#include "exec/query_executor.h"
#include "model/cost_model.h"
#include "model/memory_model.h"
#include "model/uot_chooser.h"
#include "operators/aggregate_operator.h"
#include "operators/select_operator.h"
#include "test_util.h"

namespace uot {
namespace {

constexpr double kKB = 1024.0;
constexpr double kMB = 1024.0 * 1024.0;

TEST(CostModelTest, ComponentCostsScaleWithUotSize) {
  CostModel m;
  EXPECT_DOUBLE_EQ(m.W_mem(2 * kMB), 2.0 * m.W_mem(kMB));
  EXPECT_GT(m.R_L3(2 * kMB), m.R_L3(kMB));
  // Below the prefetch ramp, a disrupted read pays the full slow rate.
  EXPECT_DOUBLE_EQ(m.R_L3(128 * kKB), 128 * kKB / m.params().read_bw);
  // Amortized (prefetched) sequential reads are much cheaper: AR << R
  // (at block sizes within the prefetch ramp).
  EXPECT_LT(m.AR_L3(128 * kKB), 0.5 * m.R_L3(128 * kKB));
  // For huge UoTs the prefetcher recovers: R_L3 approaches AR_L3
  // (Section V-A's high-UoT argument).
  EXPECT_LT(m.R_L3(64 * kMB), 1.2 * m.AR_L3(64 * kMB));
}

TEST(CostModelTest, P1PrimeMatchesPaperFormula) {
  CostModel m;  // L3 = 25 MB
  // p1' = min(1, 2BT/|L3|)
  EXPECT_NEAR(m.P1Prime(128 * kKB, 1), 2.0 * 128 * kKB / (25 * kMB), 1e-12);
  EXPECT_NEAR(m.P1Prime(2 * kMB, 20), 1.0, 1e-12);  // saturates at 1
  EXPECT_LT(m.P1Prime(128 * kKB, 1), m.P1Prime(128 * kKB, 20));
  // The paper's threshold: sizes above |L3| / (2T) push p1' to 1.
  const double threshold = 25 * kMB / (2.0 * 20);
  EXPECT_GE(m.P1Prime(threshold * 1.01, 20), 1.0 - 1e-9);
}

TEST(CostModelTest, P2DecreasesWithUotSize) {
  CostModel m;
  EXPECT_NEAR(m.P2(64 * kKB), 1.0, 1e-12);  // small UoT: p2 ~ 1
  EXPECT_GT(m.P2(512 * kKB), m.P2(2 * kMB));
  EXPECT_LT(m.P2(8 * kMB), 0.05);
}

TEST(CostModelTest, ExtraCostsLinearInUotCount) {
  CostModel m;
  const double b = 512 * kKB;
  EXPECT_DOUBLE_EQ(m.NonPipeliningExtraCost(200, b),
                   2.0 * m.NonPipeliningExtraCost(100, b));
  EXPECT_DOUBLE_EQ(m.PipeliningExtraCost(200, b, 10),
                   2.0 * m.PipeliningExtraCost(100, b, 10));
}

TEST(CostModelTest, RatioNearOneAtBothExtremes) {
  // The paper's Section V-A conclusion: at both ends of the UoT spectrum
  // the two strategies' extra costs are comparable (ratio close to 1).
  CostModel m;
  for (int threads : {10, 20}) {
    const double low = m.CostRatio(128 * kKB, threads);
    const double high = m.CostRatio(16 * kMB, threads);
    EXPECT_GT(low, 0.5) << "T=" << threads;
    EXPECT_LT(low, 2.0) << "T=" << threads;
    EXPECT_GT(high, 0.5) << "T=" << threads;
    EXPECT_LT(high, 2.0) << "T=" << threads;
  }
}

TEST(CostModelTest, LowUotSlightAdvantageAtSmallBlocks) {
  // Section V-A(b): at low UoT values the pipelining strategy has a slight
  // advantage, i.e. the non-pipelining/pipelining ratio >= ~1.
  CostModel m;
  EXPECT_GE(m.CostRatio(128 * kKB, 20), 1.0);
}

TEST(CostModelTest, GapShrinksAsUotGrows) {
  // |ratio - 1| at 2 MB should not exceed the value at 128 KB (the paper's
  // "larger block size bridges the gap").
  CostModel m;
  const double small_gap = std::abs(m.CostRatio(128 * kKB, 20) - 1.0);
  const double large_gap = std::abs(m.CostRatio(2 * kMB, 20) - 1.0);
  const double huge_gap = std::abs(m.CostRatio(16 * kMB, 20) - 1.0);
  EXPECT_LE(large_gap, small_gap + 0.08);
  EXPECT_LE(huge_gap, 0.05);
}

TEST(CostModelTest, DiskModelSecondsVsMicroseconds) {
  // Section V-C: for a persistent store, the non-pipelining extra cost for
  // thousands of UoTs is orders of magnitude above the pipelining cost.
  CostModel m;
  const double high = m.StoreExtraCostHighUot(1000, 2 * kMB);
  const double low = m.StoreExtraCostLowUot(1000);
  EXPECT_GT(high, 1e9);          // > 1 second (in ns)
  EXPECT_LT(low, 1e7);           // < 10 ms
  EXPECT_GT(high / low, 1000.0);  // orders of magnitude apart
}

TEST(CostModelTest, DescribeMentionsParameters) {
  CostModel m;
  const std::string d = m.Describe();
  EXPECT_NE(d.find("L3"), std::string::npos);
  EXPECT_NE(d.find("p1"), std::string::npos);
}

TEST(MemoryModelTest, HashTableBytesFormula) {
  // (M/w) * (c/f): 1 GB of 100-byte tuples, 32-byte buckets, f = 0.5
  // -> 10M entries * 64 bytes.
  const double bytes =
      MemoryModel::HashTableBytes(1e9, 100.0, 32.0, 0.5);
  EXPECT_DOUBLE_EQ(bytes, (1e9 / 100.0) * (32.0 / 0.5));
}

TEST(MemoryModelTest, SelectivityAndProjectivity) {
  EXPECT_DOUBLE_EQ(MemoryModel::Selectivity(539, 1000), 0.539);
  EXPECT_DOUBLE_EQ(MemoryModel::Projectivity(19.0, 145.0), 19.0 / 145.0);
  EXPECT_NEAR(MemoryModel::TotalReduction(0.539, 0.131), 0.0706, 1e-4);
}

TEST(MemoryModelTest, CascadeFootprintsMatchTableII) {
  // Table II: low UoT holds hash tables 2..n; high UoT holds sigma(R).
  const std::vector<double> hts = {100.0, 50.0, 25.0};
  const auto fp = MemoryModel::LeafJoinCascade(hts, 500.0);
  EXPECT_DOUBLE_EQ(fp.low_uot_overhead_bytes, 75.0);
  EXPECT_DOUBLE_EQ(fp.high_uot_overhead_bytes, 500.0);
}

TEST(MemoryModelTest, SingleJoinCascadeHasNoLowUotOverhead) {
  const auto fp = MemoryModel::LeafJoinCascade({100.0}, 300.0);
  EXPECT_DOUBLE_EQ(fp.low_uot_overhead_bytes, 0.0);
  EXPECT_DOUBLE_EQ(fp.high_uot_overhead_bytes, 300.0);
}

TEST(MemoryModelTest, EitherStrategyCanWin) {
  // SSB-style: small dimension hash tables -> low UoT cheaper.
  const auto ssb = MemoryModel::LeafJoinCascade({1e6, 1e6, 1e6}, 1e9);
  EXPECT_LT(ssb.low_uot_overhead_bytes, ssb.high_uot_overhead_bytes);
  // Q07-style: a huge orders hash table -> high UoT cheaper when pruning
  // (LIP) shrinks sigma(R).
  const auto q7 = MemoryModel::LeafJoinCascade({1e6, 2.4e9, 1e6}, 224e6);
  EXPECT_GT(q7.low_uot_overhead_bytes, q7.high_uot_overhead_bytes);
}

TEST(UotChooserTest, UnconstrainedChoiceComesFromTheCostModel) {
  CostModelUotChooser chooser;  // no budget
  EdgeEstimate estimate{/*rows=*/1u << 20, /*row_bytes=*/64.0};
  const UotChoice choice = chooser.ChooseEdge(estimate, 1u << 16);
  EXPECT_STREQ(choice.reason, "cost-model");
  EXPECT_GT(choice.uot_bytes, 0.0);
  EXPECT_GE(choice.chosen_cost_ns, 0.0);
  // Section VI: materializing this edge holds the whole sigma live.
  EXPECT_DOUBLE_EQ(choice.materialized_bytes, estimate.bytes());
  EXPECT_NE(choice.ToString().find("cost-model"), std::string::npos);
}

TEST(UotChooserTest, BudgetCapForcesSmallGranule) {
  CostModelUotChooser::Options options;
  options.memory_budget_bytes = 4096;  // cap = 1024 B per edge granule
  options.budget_cap_fraction = 0.25;
  CostModelUotChooser chooser(options);
  // A 64 MiB edge in 64 KiB blocks: whole-table and every multi-block
  // granule breach the cap, so the chooser must fall back to 1 block.
  EdgeEstimate estimate{/*rows=*/1u << 20, /*row_bytes=*/64.0};
  const UotChoice choice = chooser.ChooseEdge(estimate, 1u << 16);
  EXPECT_FALSE(choice.uot.IsWholeTable());
  EXPECT_EQ(choice.uot.blocks_per_transfer(), 1u);
  EXPECT_STREQ(choice.reason, "memory-cap");
}

TEST(UotChooserTest, GenerousBudgetDoesNotCap) {
  CostModelUotChooser::Options options;
  options.memory_budget_bytes = int64_t{1} << 40;
  CostModelUotChooser chooser(options);
  EdgeEstimate estimate{/*rows=*/1u << 20, /*row_bytes=*/64.0};
  const UotChoice capped_free = chooser.ChooseEdge(estimate, 1u << 16);
  const UotChoice unbounded =
      CostModelUotChooser().ChooseEdge(estimate, 1u << 16);
  EXPECT_STREQ(capped_free.reason, "cost-model");
  EXPECT_EQ(capped_free.uot.blocks_per_transfer(),
            unbounded.uot.blocks_per_transfer());
}

TEST(UotChooserTest, EmptyEstimateStaysValid) {
  CostModelUotChooser chooser;
  const UotChoice choice = chooser.ChooseEdge(EdgeEstimate{}, 4096);
  EXPECT_NE(choice.uot.blocks_per_transfer(), 0u);
  EXPECT_DOUBLE_EQ(choice.materialized_bytes, 0.0);
}

/// select -> agg over synthetic data (one streaming edge), for the
/// plan-level chooser APIs.
std::unique_ptr<QueryPlan> MakeChooserPlan(StorageManager* storage,
                                           const Table& input) {
  auto plan = std::make_unique<QueryPlan>(storage);
  auto proj = Projection::Identity(input.schema(), {0, 1});
  Schema sel_schema = proj->output_schema();
  Table* sel_out = plan->CreateTempTable("sel.out", sel_schema,
                                         Layout::kRowStore, 1024);
  InsertDestination* sel_dest = plan->CreateDestination(sel_out);
  auto select = std::make_unique<SelectOperator>(
      "select", std::make_unique<TruePredicate>(), std::move(proj),
      sel_dest);
  select->AttachBaseTable(&input);
  const int select_op = plan->AddOperator(std::move(select));
  plan->RegisterOutput(select_op, sel_dest);

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum"});
  Schema agg_schema = AggregateOperator::OutputSchema(sel_schema, {0}, aggs);
  Table* agg_out = plan->CreateTempTable("agg.out", agg_schema,
                                         Layout::kRowStore, 1024);
  InsertDestination* agg_dest = plan->CreateDestination(agg_out);
  auto agg = std::make_unique<AggregateOperator>(
      "agg", sel_schema, std::vector<int>{0}, std::move(aggs), nullptr,
      agg_dest);
  const int agg_op = plan->AddOperator(std::move(agg));
  plan->RegisterOutput(agg_op, agg_dest);
  plan->AddStreamingEdge(select_op, agg_op);
  plan->SetResultTable(agg_out);
  return plan;
}

TEST(UotChooserTest, ProfiledPlanRoundTripAnnotates) {
  StorageManager storage;
  auto input = testing::MakeKvTable(&storage, "in", 2000, 20,
                                    Layout::kRowStore, 1024);

  // Profile run: execute once, then measure the edge's actual output. The
  // intermediates must survive the run to be measurable.
  auto profiled = MakeChooserPlan(&storage, *input);
  ExecConfig config;
  config.num_workers = 2;
  config.drop_consumed_blocks = false;
  QueryExecutor::Execute(profiled.get(), config);
  const std::vector<EdgeEstimate> estimates =
      CostModelUotChooser::EstimatesFromExecutedPlan(*profiled);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates[0].rows, 2000u);
  EXPECT_GT(estimates[0].row_bytes, 0.0);

  // Bind-time choice applied as a plan annotation on a fresh plan.
  CostModelUotChooser chooser;
  auto fresh = MakeChooserPlan(&storage, *input);
  const std::vector<UotChoice> choices = chooser.ChoosePlan(*fresh, estimates);
  ASSERT_EQ(choices.size(), 1u);
  CostModelUotChooser::AnnotatePlan(fresh.get(), choices);
  ASSERT_TRUE(fresh->edge_uot(0).has_value());
  EXPECT_EQ(fresh->edge_uot(0)->blocks_per_transfer(),
            choices[0].uot.blocks_per_transfer());

  // The annotated plan still executes and the annotation drove the edge.
  ExecutionStats stats = QueryExecutor::Execute(fresh.get(), config);
  ASSERT_EQ(stats.edge_transfers.size(), 1u);
  if (choices[0].uot.IsWholeTable()) {
    EXPECT_EQ(stats.edge_transfers[0], 1u);
  } else {
    EXPECT_GE(stats.edge_transfers[0], 1u);
  }
}

}  // namespace
}  // namespace uot
