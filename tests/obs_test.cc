#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "exec/adaptive_uot_policy.h"
#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "obs/trace_json.h"
#include "obs/trace_session.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"
#include "util/timer.h"

namespace uot {
namespace {

using obs::ChromeTraceSummary;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::ParseChromeTraceJson;
using obs::TraceEvent;
using obs::TraceEventType;
using obs::TracePhase;
using obs::TraceSession;

TEST(TraceSessionTest, ConcurrentEmissionFromManyThreads) {
  TraceSession session;
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&session, t] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        const int64_t now = NowNanos();
        session.EmitComplete(TraceEventType::kWorkOrder,
                             static_cast<uint32_t>(t), now, now + 100,
                             /*arg0=*/i % 7, /*arg1=*/t);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(session.num_events(),
            static_cast<size_t>(kThreads) * kEventsPerThread);

  const std::vector<TraceEvent> events = session.SortedEvents();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads) * kEventsPerThread);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(TraceSessionTest, InterleavedSessionsKeepEventsSeparate) {
  TraceSession a;
  TraceSession b;
  // The same thread alternating between sessions exercises the
  // thread-local buffer cache's session-id check.
  for (int i = 0; i < 100; ++i) {
    a.EmitInstant(TraceEventType::kEdgeFlush, 0, i);
    b.EmitInstant(TraceEventType::kBlockTransfer, 0, i, -1, 2);
    b.EmitInstant(TraceEventType::kBlockTransfer, 0, i, -1, 2);
  }
  EXPECT_EQ(a.num_events(), 100u);
  EXPECT_EQ(b.num_events(), 200u);
}

TEST(TraceSessionTest, PerfettoJsonRoundTrips) {
  TraceSession session;
  session.SetThreadName(0, "coordinator");
  session.SetThreadName(1, "worker 0");
  session.SetOperatorNames({"sel(lineitem)", "probe(orders)"});
  const int64_t base = NowNanos();
  session.EmitComplete(TraceEventType::kQuery, 0, base, base + 5000, -1, -1,
                       3);
  session.EmitComplete(TraceEventType::kWorkOrder, 1, base + 100, base + 900,
                       0, 0);
  session.EmitInstant(TraceEventType::kBlockTransfer, 0, /*edge=*/0, -1, 4);
  session.EmitInstant(TraceEventType::kEdgeFlush, 0, /*edge=*/0);
  session.EmitCounter(TraceEventType::kMemoryBytes, /*category=*/2, 4096);
  session.EmitCounter(TraceEventType::kQueueDepth, /*queue=*/0, 7);

  const std::string json = session.ToChromeJson();
  ChromeTraceSummary summary;
  const Status status = ParseChromeTraceJson(json, &summary);
  ASSERT_TRUE(status.ok()) << status.ToString();

  // 6 events + 2 thread-name metadata records.
  EXPECT_EQ(summary.num_events, 8u);
  EXPECT_EQ(summary.num_metadata, 2u);
  EXPECT_EQ(summary.num_complete, 2u);
  EXPECT_EQ(summary.num_instant, 2u);
  EXPECT_EQ(summary.num_counter, 2u);
  EXPECT_TRUE(summary.timestamps_monotonic);
  EXPECT_GE(summary.last_ts_us, summary.first_ts_us);
}

TEST(TraceJsonTest, RejectsMalformedDocuments) {
  ChromeTraceSummary summary;
  EXPECT_FALSE(ParseChromeTraceJson("", &summary).ok());
  EXPECT_FALSE(ParseChromeTraceJson("{", &summary).ok());
  EXPECT_FALSE(ParseChromeTraceJson("[]", &summary).ok());
  // Valid JSON but no traceEvents array.
  EXPECT_FALSE(ParseChromeTraceJson("{\"a\": 1}", &summary).ok());
  // traceEvents must be an array.
  EXPECT_FALSE(ParseChromeTraceJson("{\"traceEvents\": 1}", &summary).ok());
  // Events must be objects.
  EXPECT_FALSE(ParseChromeTraceJson("{\"traceEvents\": [1]}", &summary).ok());
  // Trailing garbage.
  EXPECT_FALSE(
      ParseChromeTraceJson("{\"traceEvents\": []} x", &summary).ok());
  // Timestamped events must carry "ts".
  EXPECT_FALSE(ParseChromeTraceJson(
                   "{\"traceEvents\": [{\"ph\": \"X\"}]}", &summary)
                   .ok());
  // Minimal valid documents parse.
  EXPECT_TRUE(ParseChromeTraceJson("{\"traceEvents\": []}", &summary).ok());
  EXPECT_TRUE(ParseChromeTraceJson(
                  "{\"traceEvents\": [{\"ph\": \"M\", \"name\": \"x\"}]}",
                  &summary)
                  .ok());
  EXPECT_EQ(summary.num_metadata, 1u);
}

TEST(TraceJsonTest, DetectsNonMonotonicTimestamps) {
  ChromeTraceSummary summary;
  const Status status = ParseChromeTraceJson(
      "{\"traceEvents\": ["
      "{\"ph\": \"i\", \"ts\": 5.0},"
      "{\"ph\": \"i\", \"ts\": 3.0}"
      "]}",
      &summary);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(summary.timestamps_monotonic);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({10, 100, 1000});
  ASSERT_EQ(h.num_buckets(), 4u);
  for (int64_t v : {-5, 0, 9, 10}) h.Record(v);    // bucket 0: v <= 10
  for (int64_t v : {11, 100}) h.Record(v);         // bucket 1: v <= 100
  for (int64_t v : {101, 999, 1000}) h.Record(v);  // bucket 2: v <= 1000
  for (int64_t v : {1001, 50000}) h.Record(v);     // overflow bucket
  EXPECT_EQ(h.bucket_count(0), 4u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 3u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.TotalCount(), 11u);
  EXPECT_EQ(h.Min(), -5);
  EXPECT_EQ(h.Max(), 50000);
  EXPECT_EQ(h.bucket_upper_bound(0), 10);
  EXPECT_EQ(h.bucket_upper_bound(3), INT64_MAX);
  // The p50 of 11 samples is the 6th: value 11 -> bucket with bound 100.
  EXPECT_EQ(h.ApproxPercentile(0.5), 100);
  EXPECT_EQ(h.ApproxPercentile(1.0), INT64_MAX);
}

TEST(HistogramTest, ValueAtQuantileInterpolatesInsideBuckets) {
  Histogram h({10, 20, 30, 40});
  for (int64_t v = 1; v <= 40; ++v) h.Record(v);  // 10 per bucket
  // Exact-rank quantiles land on the true order statistics.
  EXPECT_EQ(h.ValueAtQuantile(0.25), 10);
  EXPECT_EQ(h.ValueAtQuantile(0.50), 20);
  EXPECT_EQ(h.ValueAtQuantile(0.975), 39);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 40);
  // ApproxPercentile can only answer with a bucket bound; the
  // interpolated value refines it within the same bucket.
  EXPECT_EQ(h.ApproxPercentile(0.975), 40);
}

TEST(HistogramTest, ValueAtQuantileClampsToObservedRange) {
  // All samples land in one wide bucket: interpolation against the
  // nominal edges must not report values no sample ever had.
  Histogram h({1000});
  for (int64_t v = 0; v < 100; ++v) h.Record(v);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 99);
  EXPECT_GE(h.ValueAtQuantile(0.5), 0);
  EXPECT_LE(h.ValueAtQuantile(0.5), 99);
  // Overflow bucket: the upper edge is the observed max, not INT64_MAX.
  Histogram o({10});
  o.Record(50);
  o.Record(70);
  EXPECT_EQ(o.ValueAtQuantile(0.99), 70);
}

TEST(HistogramTest, SnapshotDigestsCountSumAndQuantiles) {
  Histogram h(Histogram::ExponentialBounds(1, 2.0, 16));
  const HistogramSnapshot empty = h.TakeSnapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min, 0);
  EXPECT_EQ(empty.max, 0);
  EXPECT_EQ(empty.p99, 0);

  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 1000 * 1001 / 2);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 1000);
  EXPECT_NEAR(snap.mean, 500.5, 0.01);
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
}

TEST(HistogramTest, ExponentialBoundsStrictlyIncrease) {
  const std::vector<int64_t> bounds = Histogram::ExponentialBounds(1, 1.3, 40);
  ASSERT_EQ(bounds.size(), 40u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]) << "at " << i;
  }
}

TEST(HistogramTest, ConcurrentRecordsAreAllCounted) {
  Histogram h(Histogram::ExponentialBounds(1, 2.0, 16));
  constexpr int kThreads = 4;
  constexpr int kRecords = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kRecords; ++i) h.Record(i % 1024);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(), static_cast<uint64_t>(kThreads) * kRecords);
  uint64_t bucket_sum = 0;
  for (size_t i = 0; i < h.num_buckets(); ++i) bucket_sum += h.bucket_count(i);
  EXPECT_EQ(bucket_sum, h.TotalCount());
}

TEST(CounterTest, OverflowWrapsAround) {
  Counter c;
  c.Add(UINT64_MAX);
  EXPECT_EQ(c.Value(), UINT64_MAX);
  // Unsigned wraparound is the documented overflow behavior: a counter
  // that exceeds 2^64 - 1 must keep the query alive, not abort it.
  c.Add(2);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(GaugeTest, TracksValueAndHighWaterMark) {
  Gauge g;
  g.Set(5);
  g.Set(3);
  EXPECT_EQ(g.Value(), 3);
  EXPECT_EQ(g.Max(), 5);
  g.Add(10);
  EXPECT_EQ(g.Value(), 13);
  EXPECT_EQ(g.Max(), 13);
  g.Add(-20);
  EXPECT_EQ(g.Value(), -7);
  EXPECT_EQ(g.Max(), 13);
}

TEST(MetricsRegistryTest, GetReturnsStablePointersAndFindLocates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("a.count");
  EXPECT_EQ(registry.GetCounter("a.count"), c);
  EXPECT_EQ(registry.FindCounter("a.count"), c);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  Gauge* g = registry.GetGauge("b.gauge");
  EXPECT_EQ(registry.GetGauge("b.gauge"), g);
  Histogram* h = registry.GetHistogram("c.hist", {1, 2, 3});
  EXPECT_EQ(registry.GetHistogram("c.hist"), h);
  EXPECT_EQ(h->num_buckets(), 4u);
}

TEST(MetricsRegistryTest, CsvAndJsonExportCoverAllMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("blocks.transferred")->Add(42);
  registry.GetGauge("queue.depth")->Set(7);
  Histogram* h = registry.GetHistogram("latency_ns", {100, 200});
  h->Record(50);
  h->Record(150);
  h->Record(500);

  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("metric,kind,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("blocks.transferred,counter,value,42"),
            std::string::npos);
  EXPECT_NE(csv.find("queue.depth,gauge,value,7"), std::string::npos);
  EXPECT_NE(csv.find("queue.depth,gauge,max,7"), std::string::npos);
  EXPECT_NE(csv.find("latency_ns,histogram,count,3"), std::string::npos);
  EXPECT_NE(csv.find("latency_ns,histogram,le_100,1"), std::string::npos);
  EXPECT_NE(csv.find("latency_ns,histogram,le_200,1"), std::string::npos);
  EXPECT_NE(csv.find("latency_ns,histogram,le_inf,1"), std::string::npos);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"blocks.transferred\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"queue.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
}

/// End-to-end acceptance: a TPC-H query run with tracing enabled produces
/// a valid Chrome/Perfetto trace and a populated metrics registry that
/// agree with the execution stats.
TEST(ObsIntegrationTest, TpchQueryTraceIsValidAndConsistent) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = 0.002;
  config.layout = Layout::kColumnStore;
  config.block_bytes = 16 * 1024;
  db.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 8 * 1024;
  auto plan = BuildTpchPlan(7, db, plan_config);

  TraceSession trace;
  MetricsRegistry metrics;
  ExecConfig exec;
  exec.num_workers = 4;
  exec.uot = UotPolicy::LowUot(1);
  exec.trace = &trace;
  exec.metrics = &metrics;
  const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
  ASSERT_GT(stats.records.size(), 0u);

  // The trace parses, is non-trivial, and its timestamps are sorted.
  const std::string json = trace.ToChromeJson();
  ChromeTraceSummary summary;
  const Status status = ParseChromeTraceJson(json, &summary);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(summary.timestamps_monotonic);
  // One span per work order plus the query span, plus one span per batched
  // join-kernel stage (the default kernel emits those per batch).
  size_t join_stage_spans = 0;
  for (const TraceEvent& e : trace.SortedEvents()) {
    if (e.type == TraceEventType::kJoinBatchStage) ++join_stage_spans;
  }
  EXPECT_GT(join_stage_spans, 0u);
  EXPECT_EQ(summary.num_complete,
            stats.records.size() + 1 + join_stage_spans);
  EXPECT_GT(summary.num_counter, 0u);   // queue depth + memory tracks
  EXPECT_GT(summary.num_instant, 0u);   // transfers, flushes, finishes
  EXPECT_GT(summary.num_metadata, 0u);  // thread names

  // Metrics agree with the stats the scheduler aggregated.
  const Counter* wo = metrics.FindCounter("scheduler.work_orders");
  ASSERT_NE(wo, nullptr);
  EXPECT_EQ(wo->Value(), stats.records.size());
  const Histogram* latency =
      metrics.FindHistogram("scheduler.work_order_latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->TotalCount(), stats.records.size());
  for (size_t i = 0; i < stats.operators.size(); ++i) {
    const Counter* per_op = metrics.FindCounter(
        "scheduler.op." + std::to_string(i) + ".work_orders");
    ASSERT_NE(per_op, nullptr);
    EXPECT_EQ(per_op->Value(), stats.operators[i].num_work_orders);
  }
  // Edge transfer counters match the stats' per-edge transfer counts.
  for (size_t e = 0; e < stats.edge_transfers.size(); ++e) {
    const Counter* transfers = metrics.FindCounter(
        "scheduler.edge." + std::to_string(e) + ".transfers");
    ASSERT_NE(transfers, nullptr);
    EXPECT_EQ(transfers->Value(), stats.edge_transfers[e]);
  }
  // The memory gauges saw the hash-table high-water mark.
  const Gauge* ht = metrics.FindGauge("memory.hash_table.bytes");
  ASSERT_NE(ht, nullptr);
  EXPECT_GT(ht->Max(), 0);
  // The batched join kernels counted their batches.
  const Counter* probe_batches = metrics.FindCounter("join.probe.batches");
  ASSERT_NE(probe_batches, nullptr);
  EXPECT_GT(probe_batches->Value(), 0u);
  const Counter* build_batches = metrics.FindCounter("join.build.batches");
  ASSERT_NE(build_batches, nullptr);
  EXPECT_GT(build_batches->Value(), 0u);

  // Round-trip through a file, as the benches and trace_explorer write it.
  const std::string path = ::testing::TempDir() + "/uot_q7.trace.json";
  ASSERT_TRUE(trace.WriteChromeJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string reread;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) reread.append(buf, n);
  std::fclose(f);
  ChromeTraceSummary reread_summary;
  ASSERT_TRUE(ParseChromeTraceJson(reread, &reread_summary).ok());
  EXPECT_EQ(reread_summary.num_events, summary.num_events);
}

/// Tracing disabled must leave no observable footprint (and, per the
/// acceptance criteria, no measurable overhead — the pointer is null and
/// every instrumentation site is a single branch).
TEST(ObsIntegrationTest, DisabledTracingLeavesNoFootprint) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = 0.002;
  config.layout = Layout::kColumnStore;
  config.block_bytes = 16 * 1024;
  db.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 8 * 1024;
  auto plan = BuildTpchPlan(1, db, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
  EXPECT_GT(stats.records.size(), 0u);
  EXPECT_EQ(exec.trace, nullptr);
  EXPECT_EQ(exec.metrics, nullptr);
}

TEST(ObsIntegrationTest, UotTrajectoryIsVisibleInTraceAndMetrics) {
  // Per-edge UoT observability: the exported trace carries one counter
  // track per edge (the UoT trajectory Perfetto renders as a step graph)
  // and an instant per adaptation; metrics mirror both.
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = 0.002;
  config.layout = Layout::kColumnStore;
  config.block_bytes = 16 * 1024;
  db.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 8 * 1024;
  auto plan = BuildTpchPlan(3, db, plan_config);

  TraceSession trace;
  MetricsRegistry metrics;
  ExecConfig exec;
  exec.num_workers = 4;
  exec.uot_policy = std::make_shared<AdaptiveUotPolicy>();
  exec.memory_budget_bytes = 1;  // constant pressure -> adaptations
  exec.trace = &trace;
  exec.metrics = &metrics;
  const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);

  size_t effective_events = 0, adapt_events = 0;
  for (const TraceEvent& e : trace.SortedEvents()) {
    if (e.type == TraceEventType::kUotEffective) ++effective_events;
    if (e.type == TraceEventType::kUotAdapt) ++adapt_events;
  }
  // Every streaming edge announces its starting UoT, then each adaptation
  // re-emits the counter: counter events strictly outnumber adaptations.
  ASSERT_GT(stats.edge_transfers.size(), 0u);
  EXPECT_GE(effective_events,
            stats.edge_transfers.size() + stats.uot_adaptations);
  EXPECT_GT(stats.uot_adaptations, 0u);
  EXPECT_EQ(adapt_events, stats.uot_adaptations);

  // The Chrome JSON still parses and carries the per-edge counter track.
  const std::string json = trace.ToChromeJson();
  ChromeTraceSummary summary;
  ASSERT_TRUE(ParseChromeTraceJson(json, &summary).ok());
  EXPECT_TRUE(summary.timestamps_monotonic);
  EXPECT_NE(json.find("uot.edge0.effective_blocks"), std::string::npos);
  EXPECT_NE(json.find("uot_adapt"), std::string::npos);
  EXPECT_NE(json.find("from_blocks"), std::string::npos);

  // Metrics mirror the trace: a gauge per edge plus adaptation counters.
  for (size_t e = 0; e < stats.edge_transfers.size(); ++e) {
    const Gauge* gauge = metrics.FindGauge(
        "uot.edge." + std::to_string(e) + ".effective_blocks");
    ASSERT_NE(gauge, nullptr);
    EXPECT_GT(gauge->Max(), 0);
  }
  const Counter* adaptations = metrics.FindCounter("uot.adaptations");
  ASSERT_NE(adaptations, nullptr);
  EXPECT_EQ(adaptations->Value(), stats.uot_adaptations);
}

}  // namespace
}  // namespace uot
