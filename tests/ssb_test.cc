#include <gtest/gtest.h>

#include <map>

#include "exec/query_executor.h"
#include "ssb/ssb_queries.h"
#include "test_util.h"

namespace uot {
namespace {

class SsbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    storage_ = new StorageManager();
    db_ = new SsbDatabase(storage_);
    SsbConfig config;
    config.scale_factor = 0.003;
    config.block_bytes = 64 * 1024;
    db_->Generate(config);
  }
  static void TearDownTestSuite() {
    delete db_;
    delete storage_;
  }
  static StorageManager* storage_;
  static SsbDatabase* db_;
};

StorageManager* SsbTest::storage_ = nullptr;
SsbDatabase* SsbTest::db_ = nullptr;

TEST_F(SsbTest, CardinalitiesAndDimensions) {
  EXPECT_EQ(db_->lineorder().NumRows(), 18000u);  // 6M * 0.003
  EXPECT_EQ(db_->date().NumRows(), 7u * 365 + 2);  // 1992-1998, 2 leap yrs
  EXPECT_GT(db_->customer().NumRows(), 0u);
  EXPECT_GT(db_->supplier().NumRows(), 0u);
  EXPECT_GT(db_->part().NumRows(), 0u);
  // Dimensions are small relative to the fact table — the Section VI-B
  // property that makes SSB the low-UoT-friendly workload.
  EXPECT_LT(db_->customer().TotalBytes() + db_->supplier().TotalBytes() +
                db_->part().TotalBytes() + db_->date().TotalBytes(),
            db_->lineorder().TotalBytes());
}

TEST_F(SsbTest, DimensionTagsAreConsistent) {
  const Table& s = db_->supplier();
  for (uint64_t r = 0; r < s.NumRows(); r += 7) {
    const std::string nation = s.GetValue(r, ssb::kSNation).AsChar();
    const std::string city = s.GetValue(r, ssb::kSCity).AsChar();
    ASSERT_EQ(city.substr(0, 3), nation);  // city tag embeds the nation
    const int n = std::stoi(nation.substr(1));
    ASSERT_GE(n, 1);
    ASSERT_LE(n, 25);
    const std::string region = s.GetValue(r, ssb::kSRegion).AsChar();
    static const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                      "MIDEAST"};
    ASSERT_EQ(region, kRegions[(n - 1) / 5]);
  }
}

TEST_F(SsbTest, RevenueIsConsistentWithDiscount) {
  const Table& lo = db_->lineorder();
  for (uint64_t r = 0; r < lo.NumRows(); r += 997) {
    const double price = lo.GetValue(r, ssb::kLoExtendedprice).AsDouble();
    const int32_t disc = lo.GetValue(r, ssb::kLoDiscount).AsInt32();
    const double revenue = lo.GetValue(r, ssb::kLoRevenue).AsDouble();
    ASSERT_NEAR(revenue, price * (100 - disc) / 100.0, 1e-6);
  }
}

TEST_F(SsbTest, AllThirteenQueriesExecute) {
  PlanBuilderConfig plan_config;
  plan_config.block_bytes = 32 * 1024;
  ExecConfig exec;
  exec.num_workers = 2;
  exec.uot = UotPolicy::LowUot(1);
  for (int q : SupportedSsbQueries()) {
    auto plan = BuildSsbPlan(q, *db_, plan_config);
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    EXPECT_GT(stats.records.size(), 0u) << "SSB Q" << q;
    ASSERT_NE(plan->result_table(), nullptr) << "SSB Q" << q;
  }
}

TEST_F(SsbTest, Q11MatchesDirectComputation) {
  PlanBuilderConfig plan_config;
  auto plan = BuildSsbPlan(11, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  ASSERT_EQ(plan->result_table()->NumRows(), 1u);
  const double engine = plan->result_table()->GetValue(0, 0).AsDouble();

  const Table& lo = db_->lineorder();
  double expected = 0;
  for (uint64_t r = 0; r < lo.NumRows(); ++r) {
    const int32_t date = lo.GetValue(r, ssb::kLoOrderdate).AsInt32();
    const int32_t disc = lo.GetValue(r, ssb::kLoDiscount).AsInt32();
    const int32_t qty = lo.GetValue(r, ssb::kLoQuantity).AsInt32();
    if (date / 10000 == 1993 && disc >= 1 && disc <= 3 && qty < 25) {
      expected +=
          lo.GetValue(r, ssb::kLoExtendedprice).AsDouble() * disc;
    }
  }
  EXPECT_NEAR(engine, expected, 1e-6 * std::max(1.0, expected));
}

TEST_F(SsbTest, ResultsInvariantAcrossUot) {
  PlanBuilderConfig plan_config;
  plan_config.block_bytes = 16 * 1024;
  std::map<int, std::string> expected;
  for (int q : SupportedSsbQueries()) {
    auto plan = BuildSsbPlan(q, *db_, plan_config);
    ExecConfig exec;
    exec.num_workers = 1;
    exec.uot = UotPolicy::HighUot();
    QueryExecutor::Execute(plan.get(), exec);
    expected[q] = CanonicalRows(*plan->result_table());
  }
  for (int q : SupportedSsbQueries()) {
    auto plan = BuildSsbPlan(q, *db_, plan_config);
    ExecConfig exec;
    exec.num_workers = 3;
    exec.uot = UotPolicy::LowUot(2);
    QueryExecutor::Execute(plan.get(), exec);
    EXPECT_TRUE(testing::CanonicalRowsNear(
        CanonicalRows(*plan->result_table()), expected[q]))
        << "SSB Q" << q;
  }
}

TEST_F(SsbTest, LipInvariantToo) {
  PlanBuilderConfig base;
  base.block_bytes = 16 * 1024;
  PlanBuilderConfig lip = base;
  lip.use_lip = true;
  ExecConfig exec;
  exec.num_workers = 2;
  for (int q : {21, 31, 41, 43}) {
    auto plan_a = BuildSsbPlan(q, *db_, base);
    auto plan_b = BuildSsbPlan(q, *db_, lip);
    QueryExecutor::Execute(plan_a.get(), exec);
    QueryExecutor::Execute(plan_b.get(), exec);
    EXPECT_TRUE(testing::CanonicalRowsNear(
        CanonicalRows(*plan_b->result_table()),
        CanonicalRows(*plan_a->result_table())))
        << "SSB Q" << q;
  }
}

TEST_F(SsbTest, ThreeColumnGroupingProducesCrossProduct) {
  // Q31 groups by (c_nation, s_nation, d_year): with ASIA on both sides
  // there are up to 5 x 5 nations x 6 years = 150 groups.
  PlanBuilderConfig plan_config;
  auto plan = BuildSsbPlan(31, *db_, plan_config);
  ExecConfig exec;
  exec.num_workers = 2;
  QueryExecutor::Execute(plan.get(), exec);
  const Table& result = *plan->result_table();
  EXPECT_GT(result.NumRows(), 25u);
  EXPECT_LE(result.NumRows(), 150u);
  EXPECT_EQ(result.schema().num_columns(), 4);
}

/// The paper's Section VI-B claim: with SSB's small dimension hash tables,
/// the low-UoT strategy has the lower memory overhead (the opposite of
/// TPC-H Q07).
TEST_F(SsbTest, LowUotHasLowerFootprintOnStarJoins) {
  PlanBuilderConfig plan_config;
  plan_config.block_bytes = 8 * 1024;
  int64_t temp_peak[2];
  int64_t ht_peak[2];
  int idx = 0;
  for (const bool whole_table : {false, true}) {
    auto plan = BuildSsbPlan(31, *db_, plan_config);
    ExecConfig exec;
    exec.num_workers = 1;
    exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    temp_peak[idx] = stats.PeakTemporaryBytes();
    ht_peak[idx] = stats.PeakHashTableBytes();
    ++idx;
  }
  // Hash tables are identical; the high-UoT run additionally materializes
  // the wide fact-scan intermediate.
  EXPECT_NEAR(static_cast<double>(ht_peak[0]),
              static_cast<double>(ht_peak[1]),
              0.01 * static_cast<double>(ht_peak[1]));
  EXPECT_LT(temp_peak[0], temp_peak[1] / 2);
  // Low-UoT total overhead (hash tables, intermediates transient) is below
  // the high-UoT overhead (materialized intermediates).
  EXPECT_LT(ht_peak[0] + temp_peak[0], ht_peak[1] + temp_peak[1]);
}

}  // namespace
}  // namespace uot
