// Fused-pipeline tests (ISSUE 9 tentpole): fused tuple-at-a-time execution
// must be byte-identical to vectorized execution across manual chains, the
// full TPC-H/SSB suites and the RandomJoinQuery fuzz corpus, while
// reporting zero intermediate-block transfers on fused interior edges.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.h"
#include "exec/query_executor.h"
#include "model/uot_chooser.h"
#include "expr/predicate.h"
#include "expr/projection.h"
#include "fused/pipeline_fuser.h"
#include "plan/plan_builder.h"
#include "plan/query_plan.h"
#include "scheduler/execution_stats.h"
#include "ssb/ssb_queries.h"
#include "storage/storage_manager.h"
#include "test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace uot {
namespace {

using ::uot::testing::CanonicalRowsNear;
using ::uot::testing::MakeKvTable;
using ::uot::testing::RandomJoinQuery;

int NumFuzzSeeds() {
  // ISSUE 9 acceptance floor is 200 seeds; UOT_FUZZ_SEEDS overrides (e.g.
  // the TSan CI arm, or quicker local iteration).
  if (const char* env = std::getenv("UOT_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

ExecConfig ModeConfig(PipelineMode mode) {
  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(2);
  config.pipeline_mode = mode;
  return config;
}

/// Fused-run invariants: every edge interior to an executed chain reports
/// zero produced/delivered blocks and zero transfers (the zero-copy claim
/// of the fused mode, checked against the honest per-edge accounting), and
/// every non-fused edge still satisfies the delivery invariants.
void CheckFusedInvariants(const QueryPlan& plan, const ExecutionStats& stats,
                          const std::string& label) {
  ASSERT_EQ(stats.edges.size(), plan.streaming_edges().size()) << label;
  size_t fused_edges = 0;
  for (size_t e = 0; e < stats.edges.size(); ++e) {
    const EdgeStats& es = stats.edges[e];
    if (es.fused) {
      ++fused_edges;
      EXPECT_EQ(es.blocks_produced, 0u) << label << " fused edge " << e;
      EXPECT_EQ(es.blocks_delivered, 0u) << label << " fused edge " << e;
      EXPECT_EQ(es.transfers, 0u) << label << " fused edge " << e;
      EXPECT_EQ(es.bytes_delivered, 0u) << label << " fused edge " << e;
      EXPECT_EQ(es.max_buffered_blocks, 0u) << label << " fused edge " << e;
    } else {
      EXPECT_EQ(es.blocks_delivered, es.blocks_produced)
          << label << " edge " << e;
      if (es.blocks_produced > 0) {
        EXPECT_GE(es.transfers, 1u) << label << " edge " << e;
      }
    }
  }
  // Each chain of k ops marks exactly k-1 interior edges fused.
  size_t expected_fused_edges = 0;
  for (const FusedChainStats& chain : stats.fused_chains) {
    ASSERT_GE(chain.ops.size(), 2u) << label;
    expected_fused_edges += chain.ops.size() - 1;
    ASSERT_EQ(chain.stages.size(), chain.ops.size()) << label;
    // Stage row flow is monotone non-increasing across select stages and
    // consistent between adjacent stages: what a stage emits is what the
    // next stage sees.
    for (size_t s = 0; s + 1 < chain.stages.size(); ++s) {
      EXPECT_EQ(chain.stages[s].rows_out, chain.stages[s + 1].rows_in)
          << label << " chain stage " << s;
    }
    for (const FusedStageStats& stage : chain.stages) {
      if (stage.kind == "select") {
        EXPECT_LE(stage.rows_out, stage.rows_in) << label << " " << stage.name;
      }
      EXPECT_FALSE(stage.name.empty()) << label;
    }
  }
  EXPECT_EQ(fused_edges, expected_fused_edges) << label;
}

size_t CountChainOps(const ExecutionStats& stats) {
  size_t n = 0;
  for (const FusedChainStats& chain : stats.fused_chains) {
    n += chain.ops.size();
  }
  return n;
}

/// A Q3-shaped select -> probe -> probe -> aggregate plan over kv tables.
/// `threshold` controls the selection's pass rate (v <= threshold; the
/// kv value column is the row index). Small blocks force many head work
/// orders and row groups that straddle block boundaries.
std::unique_ptr<QueryPlan> MakeChainPlan(StorageManager* storage,
                                         const Table& probe, const Table& dim1,
                                         const Table& dim2, double threshold,
                                         bool annotate, bool use_lip) {
  PlanBuilderConfig config;
  config.block_bytes = 2048;
  config.use_lip = use_lip;
  PlanBuilder builder(storage, config);
  BuildHashOperator* build1 =
      builder.Build("build1", PlanBuilder::Base(dim1), {0}, {1});
  BuildHashOperator* build2 =
      builder.Build("build2", PlanBuilder::Base(dim2), {0}, {1});
  const Schema& probe_schema = probe.schema();
  PlanBuilder::Src sel = builder.Select(
      "sel", PlanBuilder::Base(probe),
      Cmp(CompareOp::kLe, Col(1, Type::Double()), LitDouble(threshold)),
      Projection::Identity(probe_schema, {0, 1}), {{build1, 0}});
  PlanBuilder::Src probe1 =
      builder.Probe("probe1", sel, build1, {0}, {0, 1});
  PlanBuilder::Src probe2 =
      builder.Probe("probe2", probe1, build2, {0}, {0, 1, 2});
  PlanBuilder::Src agg = builder.Aggregate(
      "agg", probe2, {0},
      [] {
        std::vector<AggSpec> aggs;
        aggs.push_back({AggFn::kCount, nullptr, "cnt"});
        aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum_v"});
        aggs.push_back({AggFn::kMin, Col(2, Type::Double()), "min_p"});
        return aggs;
      }());
  if (annotate) builder.AnnotateFusedPipeline({sel, probe1, probe2, agg});
  return builder.Finish(agg);
}

TEST(PipelineFuserTest, DetectsSelectProbeAggregateChain) {
  StorageManager storage;
  std::unique_ptr<Table> probe = MakeKvTable(&storage, "probe", 3000, 64);
  std::unique_ptr<Table> dim1 = MakeKvTable(&storage, "dim1", 64, 64);
  std::unique_ptr<Table> dim2 = MakeKvTable(&storage, "dim2", 64, 64);
  std::unique_ptr<QueryPlan> plan = MakeChainPlan(
      &storage, *probe, *dim1, *dim2, 1500.0, false, false);

  const std::vector<std::vector<int>> chains =
      fused::PipelineFuser::DetectFusablePipelines(*plan);
  ASSERT_EQ(chains.size(), 1u);
  // The whole select -> probe -> probe -> aggregate spine fuses; the two
  // build sides (pipeline breakers) stay out.
  ASSERT_EQ(chains[0].size(), 4u);
  EXPECT_EQ(plan->op(chains[0][0])->name(), "sel");
  EXPECT_EQ(plan->op(chains[0][1])->name(), "probe1");
  EXPECT_EQ(plan->op(chains[0][2])->name(), "probe2");
  EXPECT_EQ(plan->op(chains[0][3])->name(), "agg");
  EXPECT_TRUE(fused::PipelineFuser::IsFusableChain(*plan, chains[0]));

  // Sub-chains are valid too; reversed or gapped sequences are not.
  EXPECT_TRUE(fused::PipelineFuser::IsFusableChain(
      *plan, {chains[0][0], chains[0][1]}));
  EXPECT_FALSE(fused::PipelineFuser::IsFusableChain(
      *plan, {chains[0][1], chains[0][0]}));
  EXPECT_FALSE(fused::PipelineFuser::IsFusableChain(
      *plan, {chains[0][0], chains[0][2]}));
  EXPECT_FALSE(fused::PipelineFuser::IsFusableChain(*plan, {chains[0][0]}));
}

TEST(PipelineFuserTest, RadixPartitionedProbesAreNotFusable) {
  // Radix-partitioned joins interpose exchange operators; exchange edges
  // are pipeline breakers, so no chain may contain a probe.
  StorageManager storage;
  RandomJoinQuery query(&storage, 3);
  std::unique_ptr<QueryPlan> plan = query.MakePlan(&storage, 2);
  const std::vector<std::vector<int>> chains =
      fused::PipelineFuser::DetectFusablePipelines(*plan);
  for (const std::vector<int>& chain : chains) {
    for (int op : chain) {
      EXPECT_EQ(dynamic_cast<const ProbeHashOperator*>(plan->op(op)), nullptr)
          << "radix-partitioned probe " << plan->op(op)->name()
          << " must not fuse";
    }
  }
}

TEST(PipelineFuserTest, AnnotationShowsInPlanToString) {
  StorageManager storage;
  std::unique_ptr<Table> probe = MakeKvTable(&storage, "probe", 1000, 16);
  std::unique_ptr<Table> dim1 = MakeKvTable(&storage, "dim1", 16, 16);
  std::unique_ptr<Table> dim2 = MakeKvTable(&storage, "dim2", 16, 16);
  std::unique_ptr<QueryPlan> plan =
      MakeChainPlan(&storage, *probe, *dim1, *dim2, 500.0, true, false);
  ASSERT_EQ(plan->fused_pipelines().size(), 1u);
  const std::string text = plan->ToString();
  EXPECT_NE(text.find("fused[0]"), std::string::npos) << text;
}

class FusedChainTest : public ::testing::Test {
 protected:
  /// Executes the chain plan under `mode` and returns canonical rows,
  /// checking invariants and (fused) chain accounting.
  std::string Run(PipelineMode mode, double threshold, bool annotate,
                  bool use_lip, uint64_t* rows_into_agg = nullptr) {
    StorageManager storage;
    std::unique_ptr<Table> probe = MakeKvTable(&storage, "probe", 5000, 96);
    std::unique_ptr<Table> dim1 = MakeKvTable(&storage, "dim1", 96, 96);
    std::unique_ptr<Table> dim2 = MakeKvTable(&storage, "dim2", 96, 96);
    std::unique_ptr<QueryPlan> plan = MakeChainPlan(
        &storage, *probe, *dim1, *dim2, threshold, annotate, use_lip);
    const std::string label =
        std::string(PipelineModeName(mode)) + " thr=" +
        std::to_string(threshold) + (use_lip ? " lip" : "");
    const ExecutionStats stats =
        QueryExecutor::Execute(plan.get(), ModeConfig(mode));
    CheckFusedInvariants(*plan, stats, label);
    if (mode == PipelineMode::kFused) {
      EXPECT_EQ(stats.fused_chains.size(), 1u) << label;
      if (stats.fused_chains.size() == 1) {
        const FusedChainStats& chain = stats.fused_chains[0];
        EXPECT_EQ(chain.ops.size(), 4u) << label;
        EXPECT_GE(chain.work_orders, 1u) << label;
        EXPECT_EQ(chain.stages.front().rows_in, probe->NumRows()) << label;
        if (rows_into_agg != nullptr) {
          *rows_into_agg = chain.stages.back().rows_in;
        }
      }
    } else {
      EXPECT_TRUE(stats.fused_chains.empty()) << label;
    }
    return CanonicalRows(*plan->result_table());
  }
};

TEST_F(FusedChainTest, FusedMatchesVectorizedOnManualChain) {
  for (const bool annotate : {false, true}) {
    const std::string vec =
        Run(PipelineMode::kVectorized, 2500.0, annotate, false);
    const std::string fus =
        Run(PipelineMode::kFused, 2500.0, annotate, false);
    ASSERT_FALSE(vec.empty());
    EXPECT_TRUE(CanonicalRowsNear(fus, vec)) << "annotate=" << annotate;
  }
}

TEST_F(FusedChainTest, FusedMatchesVectorizedWithLipFilters) {
  const std::string vec =
      Run(PipelineMode::kVectorized, 2500.0, false, true);
  const std::string fus = Run(PipelineMode::kFused, 2500.0, false, true);
  ASSERT_FALSE(vec.empty());
  EXPECT_TRUE(CanonicalRowsNear(fus, vec));
}

TEST_F(FusedChainTest, EmptySelectionProducesIdenticalEmptyAggregates) {
  // threshold < 0 selects nothing: the fused chain must still finish its
  // lifecycle cleanly and produce the same (group-less, hence empty)
  // aggregate output as vectorized.
  uint64_t rows_into_agg = 123;
  const std::string vec =
      Run(PipelineMode::kVectorized, -1.0, false, false);
  const std::string fus =
      Run(PipelineMode::kFused, -1.0, false, false, &rows_into_agg);
  EXPECT_EQ(fus, vec);
  EXPECT_EQ(rows_into_agg, 0u);
}

TEST(FusedTpchTest, AllSupportedQueriesMatchVectorized) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = 0.004;
  config.block_bytes = 64 * 1024;
  db.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 32 * 1024;
  size_t fused_chain_ops = 0;
  for (const int query : SupportedTpchQueries()) {
    SCOPED_TRACE("TPC-H Q" + std::to_string(query));
    std::unique_ptr<QueryPlan> vec_plan =
        BuildTpchPlan(query, db, plan_config);
    const ExecutionStats vec_stats = QueryExecutor::Execute(
        vec_plan.get(), ModeConfig(PipelineMode::kVectorized));
    EXPECT_TRUE(vec_stats.fused_chains.empty());
    const std::string expected = CanonicalRows(*vec_plan->result_table());

    std::unique_ptr<QueryPlan> fused_plan =
        BuildTpchPlan(query, db, plan_config);
    const ExecutionStats fused_stats = QueryExecutor::Execute(
        fused_plan.get(), ModeConfig(PipelineMode::kFused));
    CheckFusedInvariants(*fused_plan, fused_stats,
                         "Q" + std::to_string(query));
    fused_chain_ops += CountChainOps(fused_stats);
    EXPECT_TRUE(CanonicalRowsNear(
        CanonicalRows(*fused_plan->result_table()), expected));
  }
  // The suite must actually exercise the fused interpreter, not fall back
  // to vectorized everywhere.
  EXPECT_GT(fused_chain_ops, 0u);
}

TEST(FusedSsbTest, AllQueriesMatchVectorized) {
  StorageManager storage;
  SsbDatabase db(&storage);
  SsbConfig config;
  config.scale_factor = 0.003;
  config.block_bytes = 64 * 1024;
  db.Generate(config);

  PlanBuilderConfig plan_config;
  plan_config.block_bytes = 32 * 1024;
  size_t fused_chain_ops = 0;
  for (const int query : SupportedSsbQueries()) {
    SCOPED_TRACE("SSB " + std::to_string(query / 10) + "." +
                 std::to_string(query % 10));
    std::unique_ptr<QueryPlan> vec_plan = BuildSsbPlan(query, db, plan_config);
    const std::string expected = [&] {
      QueryExecutor::Execute(vec_plan.get(),
                             ModeConfig(PipelineMode::kVectorized));
      return CanonicalRows(*vec_plan->result_table());
    }();

    std::unique_ptr<QueryPlan> fused_plan =
        BuildSsbPlan(query, db, plan_config);
    const ExecutionStats fused_stats = QueryExecutor::Execute(
        fused_plan.get(), ModeConfig(PipelineMode::kFused));
    CheckFusedInvariants(*fused_plan, fused_stats, "ssb");
    fused_chain_ops += CountChainOps(fused_stats);
    EXPECT_TRUE(CanonicalRowsNear(
        CanonicalRows(*fused_plan->result_table()), expected));
  }
  EXPECT_GT(fused_chain_ops, 0u);
}

TEST(FusedFuzzTest, SeededRandomPlansAreByteIdenticalToVectorized) {
  // The fuzz plans end in a probe (no aggregate), so fused and vectorized
  // results must be *exactly* equal, not just numerically near. Covers
  // semi/anti joins, residual conditions, LIP filters, two-column keys and
  // block-boundary row groups (probe block_bytes is 2048).
  const int num_seeds = NumFuzzSeeds();
  size_t seeds_with_chain = 0;
  for (int seed = 0; seed < num_seeds; ++seed) {
    StorageManager storage;
    RandomJoinQuery query(&storage, static_cast<uint64_t>(seed));
    SCOPED_TRACE(query.Description());

    std::unique_ptr<QueryPlan> vec_plan = query.MakePlan(&storage, 0);
    QueryExecutor::Execute(vec_plan.get(),
                           ModeConfig(PipelineMode::kVectorized));
    const std::string expected = CanonicalRows(*vec_plan->result_table());

    std::unique_ptr<QueryPlan> fused_plan = query.MakePlan(&storage, 0);
    const ExecutionStats fused_stats = QueryExecutor::Execute(
        fused_plan.get(), ModeConfig(PipelineMode::kFused));
    CheckFusedInvariants(*fused_plan, fused_stats, query.Description());
    if (!fused_stats.fused_chains.empty()) ++seeds_with_chain;
    EXPECT_EQ(CanonicalRows(*fused_plan->result_table()), expected);

    // Every fifth seed also re-runs radix-partitioned under kFused: the
    // mode must degrade gracefully to vectorized around exchanges.
    if (seed % 5 == 0) {
      const int radix_bits = 1 + seed % 6;
      std::unique_ptr<QueryPlan> radix_plan =
          query.MakePlan(&storage, radix_bits);
      const ExecutionStats radix_stats = QueryExecutor::Execute(
          radix_plan.get(), ModeConfig(PipelineMode::kFused));
      CheckFusedInvariants(*radix_plan, radix_stats, "radix fused");
      EXPECT_EQ(CanonicalRows(*radix_plan->result_table()), expected)
          << "radix=" << radix_bits;
    }
  }
  // Most fuzz plans contain at least one select -> probe chain.
  EXPECT_GT(seeds_with_chain, static_cast<size_t>(num_seeds) / 2);
}

TEST(FusedModelTest, ChooserPicksFusedForWideChainsVectorizedForNarrow) {
  StorageManager storage;
  std::unique_ptr<Table> probe = MakeKvTable(&storage, "probe", 3000, 64);
  std::unique_ptr<Table> dim1 = MakeKvTable(&storage, "dim1", 64, 64);
  std::unique_ptr<Table> dim2 = MakeKvTable(&storage, "dim2", 64, 64);
  std::unique_ptr<QueryPlan> plan =
      MakeChainPlan(&storage, *probe, *dim1, *dim2, 1500.0, false, false);
  const std::vector<std::vector<int>> chains =
      fused::PipelineFuser::DetectFusablePipelines(*plan);
  ASSERT_EQ(chains.size(), 1u);

  CostModelUotChooser chooser;
  const auto estimates_for = [&](uint64_t rows, double row_bytes) {
    std::vector<EdgeEstimate> estimates(plan->streaming_edges().size());
    for (EdgeEstimate& est : estimates) {
      est.rows = rows;
      est.row_bytes = row_bytes;
    }
    return estimates;
  };

  // Wide intermediates are expensive to materialize: fuse.
  const FusedChoice wide = chooser.ChooseFusedChain(
      *plan, chains[0], estimates_for(100000, 64.0));
  EXPECT_TRUE(wide.fuse) << wide.ToString();
  EXPECT_LT(wide.fused_cost_ns, wide.vectorized_cost_ns);

  // Narrow intermediates are cheap to materialize; the scalar per-row
  // dispatch penalty dominates: stay vectorized.
  const FusedChoice narrow = chooser.ChooseFusedChain(
      *plan, chains[0], estimates_for(100000, 8.0));
  EXPECT_FALSE(narrow.fuse) << narrow.ToString();
  EXPECT_GE(narrow.fused_cost_ns, narrow.vectorized_cost_ns);
}

TEST(FusedEngineTest, ConcurrentFusedAndVectorizedSessionsShareOnePool) {
  // Mixed-mode sessions on one shared Engine: fused chains must not
  // corrupt scheduler state visible to concurrently running vectorized
  // sessions (and vice versa). Run under TSan in CI.
  constexpr int kQueries = 8;
  std::vector<std::unique_ptr<StorageManager>> storages;
  std::vector<std::unique_ptr<RandomJoinQuery>> queries;
  std::vector<std::string> expected(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    storages.push_back(std::make_unique<StorageManager>());
    queries.push_back(std::make_unique<RandomJoinQuery>(
        storages.back().get(), static_cast<uint64_t>(100 + i)));
    std::unique_ptr<QueryPlan> plan =
        queries.back()->MakePlan(storages.back().get(), 0);
    QueryExecutor::Execute(plan.get(),
                           ModeConfig(PipelineMode::kVectorized));
    expected[static_cast<size_t>(i)] = CanonicalRows(*plan->result_table());
  }

  EngineConfig engine_config;
  engine_config.num_workers = 4;
  Engine engine(engine_config);
  std::vector<std::string> actual(kQueries);
  std::vector<std::thread> threads;
  threads.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    threads.emplace_back([&, i] {
      std::unique_ptr<QueryPlan> plan = queries[static_cast<size_t>(i)]
          ->MakePlan(storages[static_cast<size_t>(i)].get(), 0);
      const PipelineMode mode =
          i % 2 == 0 ? PipelineMode::kFused : PipelineMode::kVectorized;
      engine.Execute(plan.get(), ModeConfig(mode));
      actual[static_cast<size_t>(i)] = CanonicalRows(*plan->result_table());
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(actual[static_cast<size_t>(i)], expected[static_cast<size_t>(i)])
        << queries[static_cast<size_t>(i)]->Description();
  }
}

}  // namespace
}  // namespace uot
