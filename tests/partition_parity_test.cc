// Differential parity harness for the radix-partitioned hash join (ISSUE 7
// tentpole anchor): seeded randomized join trees execute through
// {unpartitioned, radix_bits 1..6} x {scalar, batched kernel} x
// {fixed, model-annotated, adaptive UoT} and every configuration must
// produce byte-identical sorted results, with per-edge transfer-count
// invariants holding on every run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec/adaptive_uot_policy.h"
#include "exec/query_executor.h"
#include "model/uot_chooser.h"
#include "operators/exchange_operator.h"
#include "plan/query_plan.h"
#include "scheduler/execution_stats.h"
#include "storage/storage_manager.h"
#include "test_util.h"

namespace uot {
namespace {

using ::uot::testing::RandomJoinQuery;

enum class PolicyMode { kFixed, kModel, kAdaptive };

const char* PolicyName(PolicyMode mode) {
  switch (mode) {
    case PolicyMode::kFixed:
      return "fixed";
    case PolicyMode::kModel:
      return "model";
    case PolicyMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

/// Pins every edge to the cost model's static choice. The estimates are
/// deliberately rough (the harness checks parity, not calibration); what
/// matters is that annotation paths — including the exchange-edge
/// whole-table exclusion — execute on randomized plans.
void AnnotateWithModel(QueryPlan* plan) {
  CostModelUotChooser chooser;
  std::vector<EdgeEstimate> estimates;
  for (size_t i = 0; i < plan->streaming_edges().size(); ++i) {
    EdgeEstimate est;
    est.rows = 512;
    est.row_bytes = 24.0;
    estimates.push_back(est);
  }
  CostModelUotChooser::AnnotatePlan(plan,
                                    chooser.ChoosePlan(*plan, estimates));
}

/// Transfer-count invariants that must hold on every run regardless of
/// partitioning, kernel or UoT policy.
void CheckTransferInvariants(const QueryPlan& plan,
                             const ExecutionStats& stats, int radix_bits,
                             int num_joins, const std::string& label) {
  ASSERT_EQ(stats.edges.size(), plan.streaming_edges().size()) << label;
  for (size_t e = 0; e < stats.edges.size(); ++e) {
    const EdgeStats& es = stats.edges[e];
    // Every produced block is eventually delivered, exactly once.
    EXPECT_EQ(es.blocks_delivered, es.blocks_produced)
        << label << " edge " << e;
    if (es.blocks_produced > 0) {
      // A transfer carries at least one block and at most all of them.
      EXPECT_GE(es.transfers, 1u) << label << " edge " << e;
      EXPECT_LE(es.transfers, es.blocks_produced) << label << " edge " << e;
    } else {
      EXPECT_EQ(es.transfers, 0u) << label << " edge " << e;
    }
    EXPECT_EQ(es.exchange,
              plan.streaming_edges()[e].kind == QueryPlan::EdgeKind::kExchange)
        << label << " edge " << e;
  }

  // Partitioned plans carry one exchange per join side; unpartitioned
  // plans none.
  if (radix_bits == 0) {
    EXPECT_TRUE(stats.exchanges.empty()) << label;
    return;
  }
  EXPECT_EQ(stats.exchanges.size(), static_cast<size_t>(2 * num_joins))
      << label;
  for (const ExchangeStats& x : stats.exchanges) {
    EXPECT_EQ(x.radix_bits, radix_bits) << label << " " << x.name;
    ASSERT_EQ(x.partition_rows.size(),
              static_cast<size_t>(1) << radix_bits)
        << label << " " << x.name;
    ASSERT_EQ(x.partition_blocks.size(), x.partition_rows.size())
        << label << " " << x.name;
    uint64_t blocks = 0;
    for (size_t p = 0; p < x.partition_rows.size(); ++p) {
      blocks += x.partition_blocks[p];
      if (x.partition_rows[p] == 0) {
        // Lazy writers: empty partitions never check out a block.
        EXPECT_EQ(x.partition_blocks[p], 0u)
            << label << " " << x.name << " part " << p;
      } else {
        EXPECT_GE(x.partition_blocks[p], 1u)
            << label << " " << x.name << " part " << p;
      }
    }
    // Exactly the tagged blocks the exchange completed flow down its edge.
    bool found = false;
    for (size_t e = 0; e < stats.edges.size(); ++e) {
      if (stats.edges[e].producer == x.op) {
        EXPECT_EQ(stats.edges[e].blocks_produced, blocks)
            << label << " " << x.name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << label << " " << x.name << " has no edge";
  }
}

std::string RunOnce(StorageManager* storage, const RandomJoinQuery& query,
                    int radix_bits, bool batched, PolicyMode policy) {
  const std::string label = query.Description() +
                            " radix=" + std::to_string(radix_bits) +
                            (batched ? " batched " : " scalar ") +
                            PolicyName(policy);
  std::unique_ptr<QueryPlan> plan = query.MakePlan(storage, radix_bits);
  if (policy == PolicyMode::kModel) AnnotateWithModel(plan.get());

  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(2);
  config.join.kernel = batched ? JoinKernel::kBatched : JoinKernel::kScalar;
  if (policy == PolicyMode::kAdaptive) {
    config.uot_policy = std::make_shared<AdaptiveUotPolicy>();
  }
  const ExecutionStats stats = QueryExecutor::Execute(plan.get(), config);
  CheckTransferInvariants(*plan, stats, radix_bits, query.num_joins(),
                          label);
  return CanonicalRows(*plan->result_table());
}

int NumFuzzSeeds() {
  // ISSUE 7 acceptance floor is 200 seeds; UOT_FUZZ_SEEDS overrides (e.g.
  // deeper soak runs, or quicker local iteration).
  if (const char* env = std::getenv("UOT_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

TEST(PartitionParityTest, SeededRandomPlansAreByteIdenticalAcrossMatrix) {
  const int num_seeds = NumFuzzSeeds();
  const PolicyMode kPolicies[] = {PolicyMode::kFixed, PolicyMode::kModel,
                                  PolicyMode::kAdaptive};
  for (int seed = 0; seed < num_seeds; ++seed) {
    StorageManager storage;
    RandomJoinQuery query(&storage, static_cast<uint64_t>(seed));
    SCOPED_TRACE(query.Description());

    // Reference: unpartitioned, scalar kernel, fixed UoT.
    const std::string expected =
        RunOnce(&storage, query, 0, false, PolicyMode::kFixed);

    // Unpartitioned with the other kernel and a cycling policy.
    EXPECT_EQ(RunOnce(&storage, query, 0, true,
                      kPolicies[static_cast<size_t>(seed) % 3]),
              expected);

    // One radix depth per seed (cycling through 1..6), against the full
    // {kernel} x {policy} matrix: over the seed loop every
    // (radix, kernel, policy) combination is exercised many times.
    const int radix_bits = 1 + seed % 6;
    for (bool batched : {false, true}) {
      for (PolicyMode policy : kPolicies) {
        EXPECT_EQ(RunOnce(&storage, query, radix_bits, batched, policy),
                  expected)
            << "radix=" << radix_bits << " batched=" << batched << " "
            << PolicyName(policy);
      }
    }
  }
}

TEST(PartitionParityTest, DeepRadixSweepOnOneSkewedQuery) {
  // One fixed seed chosen for a heavy-hitter key distribution runs the
  // whole radix range 1..6 back to back (the seeded matrix above cycles
  // radix by seed, so this closes the "every radix on one plan" gap).
  StorageManager storage;
  RandomJoinQuery query(&storage, 7);
  SCOPED_TRACE(query.Description());
  const std::string expected =
      RunOnce(&storage, query, 0, false, PolicyMode::kFixed);
  for (int radix_bits = 1; radix_bits <= 6; ++radix_bits) {
    EXPECT_EQ(RunOnce(&storage, query, radix_bits, true,
                      PolicyMode::kAdaptive),
              expected)
        << "radix=" << radix_bits;
  }
}

TEST(PartitionParityTest, ModelAnnotationNeverPinsWholeTableOnExchange) {
  StorageManager storage;
  RandomJoinQuery query(&storage, 11);
  std::unique_ptr<QueryPlan> plan = query.MakePlan(&storage, 3);
  CostModelUotChooser chooser;
  std::vector<EdgeEstimate> estimates;
  for (size_t i = 0; i < plan->streaming_edges().size(); ++i) {
    EdgeEstimate est;
    est.rows = 100000;  // large enough that whole-table wins on pipelines
    est.row_bytes = 24.0;
    estimates.push_back(est);
  }
  const std::vector<UotChoice> choices = chooser.ChoosePlan(*plan, estimates);
  ASSERT_EQ(choices.size(), plan->streaming_edges().size());
  bool saw_exchange = false;
  for (size_t i = 0; i < choices.size(); ++i) {
    if (plan->streaming_edges()[i].kind == QueryPlan::EdgeKind::kExchange) {
      saw_exchange = true;
      EXPECT_FALSE(choices[i].uot.IsWholeTable())
          << "edge " << i << ": materializing an exchange input recreates "
          << "the serial repartition barrier";
    }
  }
  EXPECT_TRUE(saw_exchange);
}

}  // namespace
}  // namespace uot
