#include <gtest/gtest.h>

#include "exec/query_executor.h"
#include "scheduler/uot_policy.h"
#include "operators/select_operator.h"
#include "test_util.h"

namespace uot {
namespace {

using testing::MakeKvTable;

TEST(UotPolicyTest, DefaultsToOneBlock) {
  UotPolicy policy;
  EXPECT_FALSE(policy.IsWholeTable());
  EXPECT_EQ(policy.blocks_per_transfer(), 1u);
}

TEST(UotPolicyTest, ZeroClampsToOne) {
  UotPolicy policy(0);
  EXPECT_EQ(policy.blocks_per_transfer(), 1u);
}

TEST(UotPolicyTest, WholeTableSentinel) {
  EXPECT_TRUE(UotPolicy::HighUot().IsWholeTable());
  EXPECT_FALSE(UotPolicy::LowUot(1000000).IsWholeTable());
}

TEST(UotPolicyTest, ToStringFormats) {
  EXPECT_EQ(UotPolicy::LowUot(1).ToString(), "UoT=1-block(s)");
  EXPECT_EQ(UotPolicy::LowUot(8).ToString(), "UoT=8-block(s)");
  EXPECT_EQ(UotPolicy::HighUot().ToString(), "UoT=whole-table");
}

TEST(RenderTableTest, HeaderRowsAndTruncation) {
  StorageManager storage;
  auto table = MakeKvTable(&storage, "t", 30, 5);
  const std::string out = RenderTable(*table, 3);
  EXPECT_NE(out.find("k | v"), std::string::npos);
  EXPECT_NE(out.find("(30 rows total)"), std::string::npos);
  // Exactly 3 data lines plus header plus ellipsis.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(RenderTableTest, FullTableHasNoEllipsis) {
  StorageManager storage;
  auto table = MakeKvTable(&storage, "t", 2, 5);
  const std::string out = RenderTable(*table, 10);
  EXPECT_EQ(out.find("rows total"), std::string::npos);
}

TEST(CanonicalRowsTest, SortsRows) {
  StorageManager storage;
  Schema s({{"x", Type::Int32()}});
  Table table("t", s, Layout::kRowStore, 4096, &storage,
              MemoryCategory::kBaseTable);
  for (int v : {3, 1, 2}) table.AppendValues({TypedValue::Int32(v)});
  EXPECT_EQ(CanonicalRows(table), "1\n2\n3\n");
}

TEST(CanonicalRowsTest, RoundsDoublesToSevenSignificantDigits) {
  StorageManager storage;
  Schema s({{"x", Type::Double()}});
  Table table("t", s, Layout::kRowStore, 4096, &storage,
              MemoryCategory::kBaseTable);
  table.AppendValues({TypedValue::Double(72607618.934)});
  Table table2("t2", s, Layout::kRowStore, 4096, &storage,
               MemoryCategory::kBaseTable);
  table2.AppendValues({TypedValue::Double(72607618.938)});
  // Values differing only past the 7th significant digit canonicalize
  // identically (aggregation merge order must not affect comparisons).
  EXPECT_EQ(CanonicalRows(table), CanonicalRows(table2));
}

TEST(CanonicalRowsTest, EmptyTableIsEmptyString) {
  StorageManager storage;
  auto table = MakeKvTable(&storage, "t", 0, 5);
  EXPECT_EQ(CanonicalRows(*table), "");
}

TEST(ExecutorTest, PlanWithOnlyLeafOperator) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 100, 10);
  QueryPlan plan(&storage);
  auto proj = Projection::Identity(input->schema(), {0});
  Table* out = plan.CreateTempTable("out", proj->output_schema(),
                                    Layout::kRowStore, 4096);
  InsertDestination* dest = plan.CreateDestination(out);
  auto select = std::make_unique<SelectOperator>(
      "select", std::make_unique<TruePredicate>(), std::move(proj), dest);
  select->AttachBaseTable(input.get());
  const int op = plan.AddOperator(std::move(select));
  plan.RegisterOutput(op, dest);
  plan.SetResultTable(out);

  ExecConfig config;
  config.num_workers = 1;
  const ExecutionStats stats = QueryExecutor::Execute(&plan, config);
  EXPECT_EQ(out->NumRows(), 100u);
  EXPECT_EQ(stats.operators.size(), 1u);
  EXPECT_EQ(stats.edge_transfers.size(), 0u);
  // No records for nonexistent op: AverageDop of an op with no work.
  EXPECT_DOUBLE_EQ(stats.AverageDop(0), stats.AverageDop(0));
  EXPECT_GT(stats.AverageDop(0), 0.0);
}

TEST(ExecutorTest, RepeatedExecutionOfFreshPlansIsStable) {
  StorageManager storage;
  auto probe = MakeKvTable(&storage, "p", 500, 25);
  std::string first;
  for (int i = 0; i < 3; ++i) {
    QueryPlan plan(&storage);
    auto proj = Projection::Identity(probe->schema(), {0, 1});
    Table* out = plan.CreateTempTable("out", proj->output_schema(),
                                      Layout::kRowStore, 512);
    InsertDestination* dest = plan.CreateDestination(out);
    auto select = std::make_unique<SelectOperator>(
        "select",
        Cmp(CompareOp::kLt, Col(1, Type::Double()), LitDouble(100.0)),
        std::move(proj), dest);
    select->AttachBaseTable(probe.get());
    const int op = plan.AddOperator(std::move(select));
    plan.RegisterOutput(op, dest);
    plan.SetResultTable(out);
    ExecConfig config;
    config.num_workers = 2;
    QueryExecutor::Execute(&plan, config);
    const std::string rows = CanonicalRows(*out);
    if (first.empty()) {
      first = rows;
    } else {
      EXPECT_EQ(rows, first);
    }
  }
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace uot
