#include <gtest/gtest.h>

#include "exec/adaptive_uot_policy.h"
#include "exec/query_executor.h"
#include "scheduler/scheduler.h"
#include "scheduler/uot_policy.h"
#include "operators/select_operator.h"
#include "test_util.h"

namespace uot {
namespace {

using testing::MakeKvTable;

TEST(UotPolicyTest, DefaultsToOneBlock) {
  UotPolicy policy;
  EXPECT_FALSE(policy.IsWholeTable());
  EXPECT_EQ(policy.blocks_per_transfer(), 1u);
}

TEST(UotPolicyDeathTest, ZeroBlocksIsInvalid) {
  // A UoT of zero blocks is meaningless; a chooser/policy bug producing it
  // must abort loudly instead of silently degrading to pipelining.
  EXPECT_DEATH(UotPolicy policy(0), "blocks_per_transfer != 0");
}

TEST(UotPolicyTest, FixedPolicyReturnsItsValueForAnyEdgeState) {
  FixedUotPolicy one(UotPolicy::LowUot(1));
  FixedUotPolicy eight(UotPolicy::LowUot(8));
  FixedUotPolicy whole(UotPolicy::HighUot());
  EdgeRuntimeState edge;
  for (int i = 0; i < 3; ++i) {
    edge.edge_index = i;
    edge.buffered_blocks = static_cast<uint64_t>(100 * i);
    edge.deferred_work_orders = static_cast<uint64_t>(i);
    edge.tracked_bytes = 1 << 30;
    edge.memory_budget_bytes = 1;
    EXPECT_EQ(one.BlocksPerTransfer(edge), 1u);
    EXPECT_EQ(eight.BlocksPerTransfer(edge), 8u);
    EXPECT_EQ(whole.BlocksPerTransfer(edge), UotPolicy::kWholeTable);
  }
  EXPECT_EQ(one.ToString(), "fixed(UoT=1-block(s))");
  EXPECT_EQ(whole.ToString(), "fixed(UoT=whole-table)");
}

TEST(ExecConfigTest, ToStringShowsResolvedPolicyAndJoinKernel) {
  ExecConfig config;
  config.num_workers = 3;
  config.uot = UotPolicy::LowUot(2);
  const std::string scalar = config.ToString();
  EXPECT_NE(scalar.find("workers=3"), std::string::npos);
  EXPECT_NE(scalar.find("fixed(UoT=2-block(s))"), std::string::npos);
  EXPECT_NE(scalar.find("join=batched"), std::string::npos);

  config.uot_policy = std::make_shared<AdaptiveUotPolicy>();
  config.memory_budget_bytes = 123456;
  config.join.kernel = JoinKernel::kScalar;
  const std::string adaptive = config.ToString();
  EXPECT_NE(adaptive.find("adaptive("), std::string::npos);
  EXPECT_NE(adaptive.find("budget=123456B"), std::string::npos);
  EXPECT_NE(adaptive.find("join=scalar"), std::string::npos);
}

TEST(UotPolicyTest, WholeTableSentinel) {
  EXPECT_TRUE(UotPolicy::HighUot().IsWholeTable());
  EXPECT_FALSE(UotPolicy::LowUot(1000000).IsWholeTable());
}

TEST(UotPolicyTest, ToStringFormats) {
  EXPECT_EQ(UotPolicy::LowUot(1).ToString(), "UoT=1-block(s)");
  EXPECT_EQ(UotPolicy::LowUot(8).ToString(), "UoT=8-block(s)");
  EXPECT_EQ(UotPolicy::HighUot().ToString(), "UoT=whole-table");
}

TEST(RenderTableTest, HeaderRowsAndTruncation) {
  StorageManager storage;
  auto table = MakeKvTable(&storage, "t", 30, 5);
  const std::string out = RenderTable(*table, 3);
  EXPECT_NE(out.find("k | v"), std::string::npos);
  EXPECT_NE(out.find("(30 rows total)"), std::string::npos);
  // Exactly 3 data lines plus header plus ellipsis.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(RenderTableTest, FullTableHasNoEllipsis) {
  StorageManager storage;
  auto table = MakeKvTable(&storage, "t", 2, 5);
  const std::string out = RenderTable(*table, 10);
  EXPECT_EQ(out.find("rows total"), std::string::npos);
}

TEST(CanonicalRowsTest, SortsRows) {
  StorageManager storage;
  Schema s({{"x", Type::Int32()}});
  Table table("t", s, Layout::kRowStore, 4096, &storage,
              MemoryCategory::kBaseTable);
  for (int v : {3, 1, 2}) table.AppendValues({TypedValue::Int32(v)});
  EXPECT_EQ(CanonicalRows(table), "1\n2\n3\n");
}

TEST(CanonicalRowsTest, RoundsDoublesToSevenSignificantDigits) {
  StorageManager storage;
  Schema s({{"x", Type::Double()}});
  Table table("t", s, Layout::kRowStore, 4096, &storage,
              MemoryCategory::kBaseTable);
  table.AppendValues({TypedValue::Double(72607618.934)});
  Table table2("t2", s, Layout::kRowStore, 4096, &storage,
               MemoryCategory::kBaseTable);
  table2.AppendValues({TypedValue::Double(72607618.938)});
  // Values differing only past the 7th significant digit canonicalize
  // identically (aggregation merge order must not affect comparisons).
  EXPECT_EQ(CanonicalRows(table), CanonicalRows(table2));
}

TEST(CanonicalRowsTest, EmptyTableIsEmptyString) {
  StorageManager storage;
  auto table = MakeKvTable(&storage, "t", 0, 5);
  EXPECT_EQ(CanonicalRows(*table), "");
}

TEST(ExecutorTest, PlanWithOnlyLeafOperator) {
  StorageManager storage;
  auto input = MakeKvTable(&storage, "in", 100, 10);
  QueryPlan plan(&storage);
  auto proj = Projection::Identity(input->schema(), {0});
  Table* out = plan.CreateTempTable("out", proj->output_schema(),
                                    Layout::kRowStore, 4096);
  InsertDestination* dest = plan.CreateDestination(out);
  auto select = std::make_unique<SelectOperator>(
      "select", std::make_unique<TruePredicate>(), std::move(proj), dest);
  select->AttachBaseTable(input.get());
  const int op = plan.AddOperator(std::move(select));
  plan.RegisterOutput(op, dest);
  plan.SetResultTable(out);

  ExecConfig config;
  config.num_workers = 1;
  const ExecutionStats stats = QueryExecutor::Execute(&plan, config);
  EXPECT_EQ(out->NumRows(), 100u);
  EXPECT_EQ(stats.operators.size(), 1u);
  EXPECT_EQ(stats.edge_transfers.size(), 0u);
  // Startup logging satellite: stats carry the resolved config so failures
  // show which policy actually ran.
  EXPECT_NE(stats.config_summary.find("fixed(UoT=1-block(s))"),
            std::string::npos);
  EXPECT_NE(stats.ToString().find("ExecConfig{"), std::string::npos);
  // No records for nonexistent op: AverageDop of an op with no work.
  EXPECT_DOUBLE_EQ(stats.AverageDop(0), stats.AverageDop(0));
  EXPECT_GT(stats.AverageDop(0), 0.0);
}

TEST(ExecutorTest, RepeatedExecutionOfFreshPlansIsStable) {
  StorageManager storage;
  auto probe = MakeKvTable(&storage, "p", 500, 25);
  std::string first;
  for (int i = 0; i < 3; ++i) {
    QueryPlan plan(&storage);
    auto proj = Projection::Identity(probe->schema(), {0, 1});
    Table* out = plan.CreateTempTable("out", proj->output_schema(),
                                      Layout::kRowStore, 512);
    InsertDestination* dest = plan.CreateDestination(out);
    auto select = std::make_unique<SelectOperator>(
        "select",
        Cmp(CompareOp::kLt, Col(1, Type::Double()), LitDouble(100.0)),
        std::move(proj), dest);
    select->AttachBaseTable(probe.get());
    const int op = plan.AddOperator(std::move(select));
    plan.RegisterOutput(op, dest);
    plan.SetResultTable(out);
    ExecConfig config;
    config.num_workers = 2;
    QueryExecutor::Execute(&plan, config);
    const std::string rows = CanonicalRows(*out);
    if (first.empty()) {
      first = rows;
    } else {
      EXPECT_EQ(rows, first);
    }
  }
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace uot
