#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "join/hash_table.h"
#include "model/memory_model.h"
#include "util/memory_tracker.h"

namespace uot {
namespace {

Schema PayloadSchema() {
  return Schema({{"v", Type::Int32()}});
}

void InsertKv(JoinHashTable* ht, int64_t key, int32_t value) {
  uint64_t k[2] = {static_cast<uint64_t>(key), 0};
  std::byte payload[4];
  std::memcpy(payload, &value, 4);
  ht->Insert(k, payload);
}

std::vector<int32_t> ProbeAll(const JoinHashTable& ht, int64_t key) {
  uint64_t k[2] = {static_cast<uint64_t>(key), 0};
  std::vector<int32_t> out;
  ht.Probe(k, [&out](const std::byte* payload) {
    int32_t v;
    std::memcpy(&v, payload, 4);
    out.push_back(v);
  });
  return out;
}

TEST(JoinHashTableTest, InsertAndProbe) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 1, 0.75, &tracker);
  ht.Reserve(100);
  for (int i = 0; i < 100; ++i) InsertKv(&ht, i, i * 10);
  EXPECT_EQ(ht.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto vals = ProbeAll(ht, i);
    ASSERT_EQ(vals.size(), 1u) << "key " << i;
    EXPECT_EQ(vals[0], i * 10);
  }
  EXPECT_TRUE(ProbeAll(ht, 1000).empty());
}

TEST(JoinHashTableTest, DuplicateKeysMultimap) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 1, 0.5, &tracker);
  ht.Reserve(30);
  for (int i = 0; i < 10; ++i) InsertKv(&ht, 7, i);
  for (int i = 0; i < 10; ++i) InsertKv(&ht, 8, 100 + i);
  const auto vals = ProbeAll(ht, 7);
  EXPECT_EQ(vals.size(), 10u);
  EXPECT_EQ(std::set<int32_t>(vals.begin(), vals.end()).size(), 10u);
  EXPECT_EQ(ProbeAll(ht, 8).size(), 10u);
}

TEST(JoinHashTableTest, NegativeAndLargeKeys) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 1, 0.75, &tracker);
  ht.Reserve(4);
  InsertKv(&ht, -5, 1);
  InsertKv(&ht, 1LL << 40, 2);
  InsertKv(&ht, 0, 3);
  EXPECT_EQ(ProbeAll(ht, -5).at(0), 1);
  EXPECT_EQ(ProbeAll(ht, 1LL << 40).at(0), 2);
  EXPECT_EQ(ProbeAll(ht, 0).at(0), 3);
  EXPECT_TRUE(ProbeAll(ht, 5).empty());
}

TEST(JoinHashTableTest, CompositeKeys) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 2, 0.75, &tracker);
  ht.Reserve(10);
  std::byte payload[4];
  const int32_t v1 = 1, v2 = 2;
  uint64_t k1[2] = {10, 20};
  uint64_t k2[2] = {20, 10};  // swapped words must be a distinct key
  std::memcpy(payload, &v1, 4);
  ht.Insert(k1, payload);
  std::memcpy(payload, &v2, 4);
  ht.Insert(k2, payload);

  int32_t got = 0;
  ht.Probe(k1, [&](const std::byte* p) { std::memcpy(&got, p, 4); });
  EXPECT_EQ(got, 1);
  ht.Probe(k2, [&](const std::byte* p) { std::memcpy(&got, p, 4); });
  EXPECT_EQ(got, 2);
}

TEST(JoinHashTableTest, EmptyPayload) {
  MemoryTracker tracker;
  JoinHashTable ht(Schema(std::vector<Column>{}), 1, 0.75, &tracker);
  ht.Reserve(10);
  uint64_t k[2] = {3, 0};
  ht.Insert(k, nullptr);
  int hits = 0;
  ht.Probe(k, [&hits](const std::byte*) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(JoinHashTableTest, SlotSizingMatchesModel) {
  MemoryTracker tracker;
  const double f = 0.5;
  JoinHashTable ht(PayloadSchema(), 1, f, &tracker);
  ht.Reserve(1000);
  // Slots >= entries / load factor, rounded to a power of two.
  EXPECT_GE(ht.num_slots(), static_cast<uint64_t>(1000 / f));
  EXPECT_EQ(ht.num_slots() & (ht.num_slots() - 1), 0u);
  // The Section VI-B model: footprint ~ entries * (c / f). Allow the
  // power-of-two rounding factor of <= 2x plus tag storage.
  const double model = MemoryModel::HashTableBytes(
      1000.0 * 12, 12.0, static_cast<double>(ht.slot_bytes()), f);
  EXPECT_GE(static_cast<double>(ht.allocated_bytes()), model * 0.9);
  EXPECT_LE(static_cast<double>(ht.allocated_bytes()), model * 2.5);
}

TEST(JoinHashTableTest, MemoryAccountingLifecycle) {
  MemoryTracker tracker;
  {
    JoinHashTable ht(PayloadSchema(), 1, 0.75, &tracker);
    EXPECT_EQ(tracker.Current(MemoryCategory::kHashTable), 0);
    ht.Reserve(100);
    EXPECT_EQ(tracker.Current(MemoryCategory::kHashTable),
              static_cast<int64_t>(ht.allocated_bytes()));
  }
  EXPECT_EQ(tracker.Current(MemoryCategory::kHashTable), 0);
}

TEST(JoinHashTableTest, ConcurrentBuildFindsAllEntries) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 1, 0.75, &tracker);
  constexpr int kThreads = 4, kPerThread = 2000;
  ht.Reserve(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ht, t] {
      for (int i = 0; i < kPerThread; ++i) {
        InsertKv(&ht, t * kPerThread + i, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ht.size(), static_cast<uint64_t>(kThreads * kPerThread));
  for (int key : {0, 1999, 2000, 4500, 7999}) {
    EXPECT_EQ(ProbeAll(ht, key).size(), 1u) << "key " << key;
  }
}

TEST(JoinHashTableTest, HashKeyMixesWords) {
  uint64_t a[2] = {1, 0};
  uint64_t b[2] = {2, 0};
  uint64_t c[2] = {1, 1};
  EXPECT_NE(HashJoinKey(a, 1), HashJoinKey(b, 1));
  EXPECT_NE(HashJoinKey(a, 2), HashJoinKey(c, 2));
}

/// Batched probes must observe exactly the per-row scalar Probe results,
/// in the same order (row-ascending, chain order within a row) — the
/// byte-parity contract of the batched join kernels. Exercised across
/// 1- and 2-word keys, duplicate-heavy keys, misses, prefetch on/off, and
/// batch sizes straddling the prefetch threshold and typical batch bounds.
TEST(JoinHashTableTest, ProbeBatchMatchesScalarProbe) {
  for (const int words : {1, 2}) {
    MemoryTracker tracker;
    JoinHashTable ht(PayloadSchema(), words, 0.7, &tracker);
    ht.Reserve(600);
    // Duplicate-heavy: key k appears (k % 5) + 1 times.
    for (int k = 0; k < 100; ++k) {
      for (int dup = 0; dup <= k % 5; ++dup) {
        uint64_t key[2] = {static_cast<uint64_t>(k),
                           static_cast<uint64_t>(k * 3)};
        const int32_t v = k * 100 + dup;
        std::byte payload[4];
        std::memcpy(payload, &v, 4);
        ht.Insert(key, payload);
      }
    }

    for (const uint32_t n : {0u, 1u, 15u, 16u, 17u, 255u, 256u, 257u}) {
      // Probe keys cycle through hits and misses (keys >= 100 miss).
      std::vector<uint64_t> keys(static_cast<size_t>(n) * words);
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t k = i % 120;
        keys[static_cast<size_t>(i) * words] = k;
        if (words == 2) keys[static_cast<size_t>(i) * words + 1] = k * 3;
      }

      // Scalar reference: per-row Probe in row order.
      std::vector<std::pair<uint32_t, int32_t>> expected;
      for (uint32_t i = 0; i < n; ++i) {
        ht.Probe(keys.data() + static_cast<size_t>(i) * words,
                 [&](const std::byte* payload) {
                   int32_t v;
                   std::memcpy(&v, payload, 4);
                   expected.emplace_back(i, v);
                 });
      }

      for (const int dist : {0, 4, 16}) {
        std::vector<uint64_t> hashes;
        std::vector<JoinMatch> matches;
        ht.ProbeBatch(keys.data(), n, dist, &hashes, &matches);
        ASSERT_EQ(matches.size(), expected.size())
            << "words=" << words << " n=" << n << " dist=" << dist;
        for (size_t i = 0; i < matches.size(); ++i) {
          EXPECT_EQ(matches[i].row, expected[i].first);
          int32_t v;
          std::memcpy(&v, matches[i].payload, 4);
          EXPECT_EQ(v, expected[i].second);
        }
        // The scratch holds the batch hashes (LIP filters rely on this).
        for (uint32_t i = 0; i < n; ++i) {
          EXPECT_EQ(hashes[i],
                    HashJoinKey(keys.data() + static_cast<size_t>(i) * words,
                                words));
        }
      }
    }
  }
}

/// A table built with InsertBatch must be indistinguishable from one built
/// with per-row Insert: single-threaded batch order equals row order, so
/// every probe chain matches exactly.
TEST(JoinHashTableTest, InsertBatchMatchesScalarInsert) {
  for (const uint32_t n : {1u, 15u, 16u, 255u, 256u, 257u}) {
    MemoryTracker tracker;
    JoinHashTable scalar_ht(PayloadSchema(), 1, 0.7, &tracker);
    JoinHashTable batched_ht(PayloadSchema(), 1, 0.7, &tracker);
    scalar_ht.Reserve(n);
    batched_ht.Reserve(n);

    std::vector<uint64_t> keys(n);
    std::vector<std::byte> payloads(static_cast<size_t>(n) * 4);
    for (uint32_t i = 0; i < n; ++i) {
      keys[i] = i % 50;  // duplicates once n > 50
      const int32_t v = static_cast<int32_t>(i);
      std::memcpy(payloads.data() + static_cast<size_t>(i) * 4, &v, 4);
    }
    for (uint32_t i = 0; i < n; ++i) {
      scalar_ht.Insert(&keys[i], payloads.data() + static_cast<size_t>(i) * 4);
    }
    std::vector<uint64_t> hashes;
    batched_ht.InsertBatch(keys.data(), payloads.data(), n,
                           /*prefetch_distance=*/16, &hashes);

    ASSERT_EQ(batched_ht.size(), scalar_ht.size());
    ASSERT_EQ(batched_ht.num_slots(), scalar_ht.num_slots());
    for (uint64_t key = 0; key < 50; ++key) {
      EXPECT_EQ(ProbeAll(batched_ht, static_cast<int64_t>(key)),
                ProbeAll(scalar_ht, static_cast<int64_t>(key)))
          << "n=" << n << " key=" << key;
    }
  }
}

/// Zero-width payloads (semi/anti join builds) work through the batched
/// path: `payloads` may be null when the payload schema is empty.
TEST(JoinHashTableTest, InsertBatchEmptyPayload) {
  MemoryTracker tracker;
  JoinHashTable ht(Schema(std::vector<Column>{}), 1, 0.75, &tracker);
  ht.Reserve(64);
  std::vector<uint64_t> keys(64);
  for (uint32_t i = 0; i < 64; ++i) keys[i] = i;
  std::vector<uint64_t> hashes;
  ht.InsertBatch(keys.data(), nullptr, 64, /*prefetch_distance=*/8, &hashes);
  EXPECT_EQ(ht.size(), 64u);
  std::vector<JoinMatch> matches;
  ht.ProbeBatch(keys.data(), 64, /*prefetch_distance=*/8, &hashes, &matches);
  EXPECT_EQ(matches.size(), 64u);
}

}  // namespace
}  // namespace uot
