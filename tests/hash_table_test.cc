#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "join/hash_table.h"
#include "model/memory_model.h"
#include "util/memory_tracker.h"

namespace uot {
namespace {

Schema PayloadSchema() {
  return Schema({{"v", Type::Int32()}});
}

void InsertKv(JoinHashTable* ht, int64_t key, int32_t value) {
  uint64_t k[2] = {static_cast<uint64_t>(key), 0};
  std::byte payload[4];
  std::memcpy(payload, &value, 4);
  ht->Insert(k, payload);
}

std::vector<int32_t> ProbeAll(const JoinHashTable& ht, int64_t key) {
  uint64_t k[2] = {static_cast<uint64_t>(key), 0};
  std::vector<int32_t> out;
  ht.Probe(k, [&out](const std::byte* payload) {
    int32_t v;
    std::memcpy(&v, payload, 4);
    out.push_back(v);
  });
  return out;
}

TEST(JoinHashTableTest, InsertAndProbe) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 1, 0.75, &tracker);
  ht.Reserve(100);
  for (int i = 0; i < 100; ++i) InsertKv(&ht, i, i * 10);
  EXPECT_EQ(ht.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto vals = ProbeAll(ht, i);
    ASSERT_EQ(vals.size(), 1u) << "key " << i;
    EXPECT_EQ(vals[0], i * 10);
  }
  EXPECT_TRUE(ProbeAll(ht, 1000).empty());
}

TEST(JoinHashTableTest, DuplicateKeysMultimap) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 1, 0.5, &tracker);
  ht.Reserve(30);
  for (int i = 0; i < 10; ++i) InsertKv(&ht, 7, i);
  for (int i = 0; i < 10; ++i) InsertKv(&ht, 8, 100 + i);
  const auto vals = ProbeAll(ht, 7);
  EXPECT_EQ(vals.size(), 10u);
  EXPECT_EQ(std::set<int32_t>(vals.begin(), vals.end()).size(), 10u);
  EXPECT_EQ(ProbeAll(ht, 8).size(), 10u);
}

TEST(JoinHashTableTest, NegativeAndLargeKeys) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 1, 0.75, &tracker);
  ht.Reserve(4);
  InsertKv(&ht, -5, 1);
  InsertKv(&ht, 1LL << 40, 2);
  InsertKv(&ht, 0, 3);
  EXPECT_EQ(ProbeAll(ht, -5).at(0), 1);
  EXPECT_EQ(ProbeAll(ht, 1LL << 40).at(0), 2);
  EXPECT_EQ(ProbeAll(ht, 0).at(0), 3);
  EXPECT_TRUE(ProbeAll(ht, 5).empty());
}

TEST(JoinHashTableTest, CompositeKeys) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 2, 0.75, &tracker);
  ht.Reserve(10);
  std::byte payload[4];
  const int32_t v1 = 1, v2 = 2;
  uint64_t k1[2] = {10, 20};
  uint64_t k2[2] = {20, 10};  // swapped words must be a distinct key
  std::memcpy(payload, &v1, 4);
  ht.Insert(k1, payload);
  std::memcpy(payload, &v2, 4);
  ht.Insert(k2, payload);

  int32_t got = 0;
  ht.Probe(k1, [&](const std::byte* p) { std::memcpy(&got, p, 4); });
  EXPECT_EQ(got, 1);
  ht.Probe(k2, [&](const std::byte* p) { std::memcpy(&got, p, 4); });
  EXPECT_EQ(got, 2);
}

TEST(JoinHashTableTest, EmptyPayload) {
  MemoryTracker tracker;
  JoinHashTable ht(Schema(std::vector<Column>{}), 1, 0.75, &tracker);
  ht.Reserve(10);
  uint64_t k[2] = {3, 0};
  ht.Insert(k, nullptr);
  int hits = 0;
  ht.Probe(k, [&hits](const std::byte*) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(JoinHashTableTest, SlotSizingMatchesModel) {
  MemoryTracker tracker;
  const double f = 0.5;
  JoinHashTable ht(PayloadSchema(), 1, f, &tracker);
  ht.Reserve(1000);
  // Slots >= entries / load factor, rounded to a power of two.
  EXPECT_GE(ht.num_slots(), static_cast<uint64_t>(1000 / f));
  EXPECT_EQ(ht.num_slots() & (ht.num_slots() - 1), 0u);
  // The Section VI-B model: footprint ~ entries * (c / f). Allow the
  // power-of-two rounding factor of <= 2x plus tag storage.
  const double model = MemoryModel::HashTableBytes(
      1000.0 * 12, 12.0, static_cast<double>(ht.slot_bytes()), f);
  EXPECT_GE(static_cast<double>(ht.allocated_bytes()), model * 0.9);
  EXPECT_LE(static_cast<double>(ht.allocated_bytes()), model * 2.5);
}

TEST(JoinHashTableTest, MemoryAccountingLifecycle) {
  MemoryTracker tracker;
  {
    JoinHashTable ht(PayloadSchema(), 1, 0.75, &tracker);
    EXPECT_EQ(tracker.Current(MemoryCategory::kHashTable), 0);
    ht.Reserve(100);
    EXPECT_EQ(tracker.Current(MemoryCategory::kHashTable),
              static_cast<int64_t>(ht.allocated_bytes()));
  }
  EXPECT_EQ(tracker.Current(MemoryCategory::kHashTable), 0);
}

TEST(JoinHashTableTest, ConcurrentBuildFindsAllEntries) {
  MemoryTracker tracker;
  JoinHashTable ht(PayloadSchema(), 1, 0.75, &tracker);
  constexpr int kThreads = 4, kPerThread = 2000;
  ht.Reserve(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ht, t] {
      for (int i = 0; i < kPerThread; ++i) {
        InsertKv(&ht, t * kPerThread + i, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ht.size(), static_cast<uint64_t>(kThreads * kPerThread));
  for (int key : {0, 1999, 2000, 4500, 7999}) {
    EXPECT_EQ(ProbeAll(ht, key).size(), 1u) << "key " << key;
  }
}

TEST(JoinHashTableTest, HashKeyMixesWords) {
  uint64_t a[2] = {1, 0};
  uint64_t b[2] = {2, 0};
  uint64_t c[2] = {1, 1};
  EXPECT_NE(HashJoinKey(a, 1), HashJoinKey(b, 1));
  EXPECT_NE(HashJoinKey(a, 2), HashJoinKey(c, 2));
}

}  // namespace
}  // namespace uot
