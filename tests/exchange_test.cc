// Partition-boundary edge cases for the exchange/radix-partitioned join
// path (ISSUE 7 satellite): empty partitions, all rows in one partition,
// sentinel (zero/negative/extreme) keys, partition count exceeding row
// count, an exchange edge feeding a multi-input consumer (the sort-merge
// join droppable regression), and 4 concurrent partitioned TPC-H sessions
// on a shared Engine.

#include <gtest/gtest.h>

#include <climits>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.h"
#include "exec/query_executor.h"
#include "join/partition_kernel.h"
#include "operators/exchange_operator.h"
#include "operators/select_operator.h"
#include "operators/sort_merge_join_operator.h"
#include "plan/plan_builder.h"
#include "plan/query_plan.h"
#include "storage/storage_manager.h"
#include "test_util.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace uot {
namespace {

using ::uot::testing::CanonicalRowsNear;

/// (k INT32, v DOUBLE) table with explicit key values; v = row index.
std::unique_ptr<Table> MakeKeyTable(StorageManager* storage,
                                    const std::string& name,
                                    const std::vector<int32_t>& keys,
                                    size_t block_bytes = 512) {
  Schema schema({{"k", Type::Int32()}, {"v", Type::Double()}});
  auto table = std::make_unique<Table>(name, schema, Layout::kRowStore,
                                       block_bytes, storage,
                                       MemoryCategory::kBaseTable);
  RowBuilder row(&table->schema());
  for (size_t i = 0; i < keys.size(); ++i) {
    row.SetInt32(0, keys[i]);
    row.SetDouble(1, static_cast<double>(i));
    table->AppendRow(row.data());
  }
  return table;
}

/// One-join plan over (k, v) tables; radix_bits 0 = unpartitioned.
std::unique_ptr<QueryPlan> MakeJoinPlan(StorageManager* storage,
                                        const Table& probe,
                                        const Table& build, int radix_bits,
                                        JoinKind kind = JoinKind::kInner) {
  PlanBuilderConfig config;
  config.block_bytes = 512;
  config.join_radix_bits = radix_bits;
  PlanBuilder builder(storage, config);
  BuildHashOperator* build_op =
      builder.Build("build", PlanBuilder::Base(build), {0}, {1});
  PlanBuilder::Src out = builder.Probe("probe", PlanBuilder::Base(probe),
                                       build_op, {0}, {0, 1}, kind);
  return builder.Finish(out);
}

std::string RunPlan(QueryPlan* plan, ExecutionStats* stats_out = nullptr) {
  ExecConfig config;
  config.num_workers = 2;
  config.uot = UotPolicy::LowUot(1);
  ExecutionStats stats = QueryExecutor::Execute(plan, config);
  if (stats_out != nullptr) *stats_out = std::move(stats);
  return CanonicalRows(*plan->result_table());
}

TEST(ExchangeEdgeCaseTest, EmptyPartitionsNeverCheckOutBlocks) {
  StorageManager storage;
  // Build keys all identical: at radix 4 exactly one of 16 build
  // partitions is populated, the other 15 stay empty.
  auto build = MakeKeyTable(&storage, "build", std::vector<int32_t>(40, 42));
  std::vector<int32_t> probe_keys;
  for (int i = 0; i < 200; ++i) probe_keys.push_back(i % 2 == 0 ? 42 : i);
  auto probe = MakeKeyTable(&storage, "probe", probe_keys);

  auto reference = MakeJoinPlan(&storage, *probe, *build, 0);
  const std::string expected = RunPlan(reference.get());

  auto partitioned = MakeJoinPlan(&storage, *probe, *build, 4);
  ExecutionStats stats;
  EXPECT_EQ(RunPlan(partitioned.get(), &stats), expected);

  ASSERT_EQ(stats.exchanges.size(), 2u);
  for (const ExchangeStats& x : stats.exchanges) {
    ASSERT_EQ(x.partition_rows.size(), 16u);
    for (size_t p = 0; p < x.partition_rows.size(); ++p) {
      if (x.partition_rows[p] == 0) {
        EXPECT_EQ(x.partition_blocks[p], 0u) << x.name << " part " << p;
      }
    }
  }
  // The build exchange concentrates all 40 rows in one partition.
  const ExchangeStats& build_xchg =
      stats.exchanges[0].name.find("build") != std::string::npos
          ? stats.exchanges[0]
          : stats.exchanges[1];
  int populated = 0;
  for (uint64_t rows : build_xchg.partition_rows) populated += rows > 0;
  EXPECT_EQ(populated, 1);
  EXPECT_EQ(build_xchg.TotalRows(), 40u);
  EXPECT_GT(build_xchg.SkewRatio(), 15.0);  // max/mean = 40/(40/16)
}

TEST(ExchangeEdgeCaseTest, AllRowsInOnePartitionMatchesUnpartitioned) {
  StorageManager storage;
  // Every row of both sides carries the same key: the partitioned join
  // degenerates to one populated sub-table plus a full cross product.
  auto build = MakeKeyTable(&storage, "build", std::vector<int32_t>(25, 7));
  auto probe = MakeKeyTable(&storage, "probe", std::vector<int32_t>(60, 7));

  auto reference = MakeJoinPlan(&storage, *probe, *build, 0);
  const std::string expected = RunPlan(reference.get());
  EXPECT_NE(expected.find(','), std::string::npos);

  for (int radix_bits : {1, 3, 5}) {
    auto partitioned = MakeJoinPlan(&storage, *probe, *build, radix_bits);
    EXPECT_EQ(RunPlan(partitioned.get()), expected) << "radix=" << radix_bits;
    EXPECT_EQ(partitioned->result_table()->NumRows(), 25u * 60u);
  }
}

TEST(ExchangeEdgeCaseTest, SentinelZeroAndNegativeKeysPartitionCorrectly) {
  StorageManager storage;
  // The engine has no SQL NULL; absent keys surface as sentinel values —
  // zero, -1, INT32_MIN/MAX. They must hash/partition like any other key,
  // including the sign extension of the int32 -> uint64 widening.
  const std::vector<int32_t> keys = {0,       -1,      INT32_MIN, INT32_MAX,
                                     7,       -7,      0,         -1,
                                     INT32_MIN, 12345, -12345,    0};
  auto build = MakeKeyTable(&storage, "build",
                            {0, -1, INT32_MIN, INT32_MAX, 99});
  auto probe = MakeKeyTable(&storage, "probe", keys);

  for (JoinKind kind :
       {JoinKind::kInner, JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    auto reference = MakeJoinPlan(&storage, *probe, *build, 0, kind);
    const std::string expected = RunPlan(reference.get());
    for (int radix_bits : {1, 4, 6}) {
      auto partitioned =
          MakeJoinPlan(&storage, *probe, *build, radix_bits, kind);
      EXPECT_EQ(RunPlan(partitioned.get()), expected)
          << "kind=" << static_cast<int>(kind) << " radix=" << radix_bits;
    }
  }
  // Sanity on the inner reference itself: 8 probe rows carry one of the 4
  // matching sentinel keys, each matched once.
  auto inner = MakeJoinPlan(&storage, *probe, *build, 0);
  RunPlan(inner.get());
  EXPECT_EQ(inner->result_table()->NumRows(), 8u);
}

TEST(ExchangeEdgeCaseTest, PartitionCountExceedingRowCount) {
  StorageManager storage;
  // 64 partitions over 3 build rows and 5 probe rows: nearly every
  // partition is empty on both sides, some on only one side.
  auto build = MakeKeyTable(&storage, "build", {1, 2, 3});
  auto probe = MakeKeyTable(&storage, "probe", {1, 2, 3, 4, 5});

  auto reference = MakeJoinPlan(&storage, *probe, *build, 0);
  const std::string expected = RunPlan(reference.get());

  auto partitioned = MakeJoinPlan(&storage, *probe, *build, 6);
  ExecutionStats stats;
  EXPECT_EQ(RunPlan(partitioned.get(), &stats), expected);
  EXPECT_EQ(partitioned->result_table()->NumRows(), 3u);
  ASSERT_EQ(stats.exchanges.size(), 2u);
  for (const ExchangeStats& x : stats.exchanges) {
    ASSERT_EQ(x.partition_rows.size(), 64u);
    EXPECT_LE(x.TotalRows(), 5u);
  }

  // Degenerate inputs too: an empty build side at deep radix.
  auto empty_build = MakeKeyTable(&storage, "empty", {});
  auto ref_empty = MakeJoinPlan(&storage, *probe, *empty_build, 0);
  const std::string expected_empty = RunPlan(ref_empty.get());
  auto part_empty = MakeJoinPlan(&storage, *probe, *empty_build, 6);
  EXPECT_EQ(RunPlan(part_empty.get()), expected_empty);
  EXPECT_EQ(part_empty->result_table()->NumRows(), 0u);
}

TEST(ExchangeEdgeCaseTest, ExchangeEdgeFeedingSortMergeJoinDropsBlocks) {
  // Regression companion to PR 2's droppable tracking: an exchange output
  // feeding one input of a multi-input consumer (sort-merge join) must be
  // dropped after consumption — and only once — even though the exchange
  // registers one destination per partition on the same output table.
  StorageManager storage;
  std::vector<int32_t> left_keys, right_keys;
  for (int i = 0; i < 120; ++i) left_keys.push_back(i % 12);
  for (int i = 0; i < 84; ++i) right_keys.push_back(i % 12);
  auto left = MakeKeyTable(&storage, "left", left_keys, 512);
  auto right = MakeKeyTable(&storage, "right", right_keys, 512);

  auto run_smj = [&](int radix_bits, Table** xchg_out) {
    auto plan = std::make_unique<QueryPlan>(&storage);
    int left_op;
    Table* left_out;
    if (radix_bits > 0) {
      // Base left -> exchange(radix) -> SMJ input 0.
      left_out = plan->CreateTempTable("xchg.out", left->schema(),
                                       Layout::kRowStore, 512);
      const uint32_t parts = NumPartitions(radix_bits);
      std::vector<InsertDestination*> dests;
      for (uint32_t p = 0; p < parts; ++p) {
        InsertDestination* d = plan->CreateDestination(left_out);
        d->set_partition(static_cast<int32_t>(p));
        dests.push_back(d);
      }
      auto xchg = std::make_unique<ExchangeOperator>(
          "xchg", std::vector<int>{0}, radix_bits, dests);
      xchg->AttachBaseTable(left.get());
      left_op = plan->AddOperator(std::move(xchg));
      for (InsertDestination* d : dests) plan->RegisterOutput(left_op, d);
    } else {
      // Base left -> identity select -> SMJ input 0.
      auto proj = Projection::Identity(left->schema(), {0, 1});
      left_out = plan->CreateTempTable("sel_l.out", proj->output_schema(),
                                       Layout::kRowStore, 512);
      InsertDestination* d = plan->CreateDestination(left_out);
      auto sel = std::make_unique<SelectOperator>(
          "sel_l", std::make_unique<TruePredicate>(), std::move(proj), d);
      sel->AttachBaseTable(left.get());
      left_op = plan->AddOperator(std::move(sel));
      plan->RegisterOutput(left_op, d);
    }
    if (xchg_out != nullptr) *xchg_out = left_out;

    auto rproj = Projection::Identity(right->schema(), {0, 1});
    Table* right_out = plan->CreateTempTable(
        "sel_r.out", rproj->output_schema(), Layout::kRowStore, 512);
    InsertDestination* rdest = plan->CreateDestination(right_out);
    auto rsel = std::make_unique<SelectOperator>(
        "sel_r", std::make_unique<TruePredicate>(), std::move(rproj), rdest);
    rsel->AttachBaseTable(right.get());
    const int right_op = plan->AddOperator(std::move(rsel));
    plan->RegisterOutput(right_op, rdest);

    Schema join_schema = SortMergeJoinOperator::OutputSchema(
        left_out->schema(), {0, 1}, right_out->schema(), {1});
    Table* join_out = plan->CreateTempTable("smj.out", join_schema,
                                            Layout::kRowStore, 4096);
    InsertDestination* join_dest = plan->CreateDestination(join_out);
    auto smj = std::make_unique<SortMergeJoinOperator>(
        "smj", left_out->schema(), right_out->schema(), std::vector<int>{0},
        std::vector<int>{0}, std::vector<int>{0, 1}, std::vector<int>{1},
        join_dest);
    const int join_op = plan->AddOperator(std::move(smj));
    plan->RegisterOutput(join_op, join_dest);
    if (radix_bits > 0) {
      plan->AddExchangeEdge(left_op, join_op, /*consumer_input=*/0);
    } else {
      plan->AddStreamingEdge(left_op, join_op, /*consumer_input=*/0);
    }
    plan->AddStreamingEdge(right_op, join_op, /*consumer_input=*/1);
    plan->SetResultTable(join_out);
    return plan;
  };

  Table* ref_left_out = nullptr;
  auto reference = run_smj(0, &ref_left_out);
  const std::string expected = RunPlan(reference.get());
  EXPECT_EQ(reference->result_table()->NumRows(), 12u * 10u * 7u);

  Table* xchg_out = nullptr;
  auto exchanged = run_smj(2, &xchg_out);
  EXPECT_EQ(RunPlan(exchanged.get()), expected);
  // The exchanged intermediate must not leak: the sort-merge join is its
  // only consumer, so every tagged block is dropped after the merge.
  ASSERT_NE(xchg_out, nullptr);
  EXPECT_TRUE(xchg_out->blocks().empty())
      << "exchange intermediate leaked past the multi-input consumer";
}

TEST(ExchangeStressTest, FourConcurrentPartitionedTpchSessionsMatchSerial) {
  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig tpch_config;
  tpch_config.scale_factor = 0.002;
  tpch_config.block_bytes = 16 * 1024;
  db.Generate(tpch_config);

  ExecConfig config;
  config.uot = UotPolicy::LowUot(2);

  // Serial unpartitioned references.
  TpchPlanConfig serial_config;
  std::string expected_q3, expected_q9;
  {
    auto q3 = BuildTpchPlan(3, db, serial_config);
    QueryExecutor::Execute(q3.get(), config);
    expected_q3 = CanonicalRows(*q3->result_table());
    auto q9 = BuildTpchPlan(9, db, serial_config);
    QueryExecutor::Execute(q9.get(), config);
    expected_q9 = CanonicalRows(*q9->result_table());
  }
  ASSERT_FALSE(expected_q3.empty());
  ASSERT_FALSE(expected_q9.empty());

  // 4 concurrent radix-partitioned sessions (2x Q3, 2x Q9) on one Engine.
  TpchPlanConfig partitioned_config;
  partitioned_config.join_radix_bits = 2;
  const int queries[4] = {3, 9, 3, 9};
  std::vector<std::unique_ptr<QueryPlan>> plans;
  for (int q : queries) {
    plans.push_back(BuildTpchPlan(q, db, partitioned_config));
  }

  EngineConfig engine_config;
  engine_config.num_workers = 4;
  Engine engine(engine_config);

  std::mutex mu;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (++ready == 4) {
          go = true;
          cv.notify_all();
        } else {
          cv.wait(lock, [&] { return go; });
        }
      }
      engine.Execute(plans[static_cast<size_t>(i)].get(), config);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < 4; ++i) {
    const std::string& expected = queries[i] == 3 ? expected_q3 : expected_q9;
    // Aggregate sums merge in nondeterministic order under concurrency, so
    // compare canonically with a numeric tolerance, not byte equality.
    EXPECT_TRUE(CanonicalRowsNear(
        CanonicalRows(*plans[static_cast<size_t>(i)]->result_table()),
        expected))
        << "query " << queries[i] << " session " << i;
  }
  EXPECT_EQ(engine.queries_executed(), 4u);
}

}  // namespace
}  // namespace uot
