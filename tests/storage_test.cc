#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "storage/block.h"
#include "storage/block_pool.h"
#include "storage/insert_destination.h"
#include "storage/storage_manager.h"
#include "storage/table.h"
#include "types/row_builder.h"

namespace uot {
namespace {

Schema TestSchema() {
  return Schema({{"id", Type::Int32()},
                 {"val", Type::Double()},
                 {"tag", Type::Char(6)}});
}

std::vector<std::byte> PackRow(const Schema& s, int32_t id, double val,
                               const std::string& tag) {
  RowBuilder row(&s);
  row.SetInt32(0, id);
  row.SetDouble(1, val);
  row.SetChar(2, tag);
  return std::vector<std::byte>(row.data(), row.data() + s.row_width());
}

class BlockLayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(BlockLayoutTest, AppendAndReadBack) {
  const Schema schema = TestSchema();
  Block block(1, &schema, GetParam(), 1024);
  EXPECT_GT(block.capacity_rows(), 0u);
  EXPECT_TRUE(block.Empty());

  for (int i = 0; i < 10; ++i) {
    auto row = PackRow(schema, i, i * 1.5, "t" + std::to_string(i));
    ASSERT_TRUE(block.AppendRow(row.data()));
  }
  EXPECT_EQ(block.num_rows(), 10u);

  for (uint32_t r = 0; r < 10; ++r) {
    const ColumnAccess id = block.Column(0);
    int32_t v;
    std::memcpy(&v, id.at(r), 4);
    EXPECT_EQ(v, static_cast<int32_t>(r));
    double d;
    std::memcpy(&d, block.Column(1).at(r), 8);
    EXPECT_DOUBLE_EQ(d, r * 1.5);
  }
}

TEST_P(BlockLayoutTest, GetRowRoundTrips) {
  const Schema schema = TestSchema();
  Block block(1, &schema, GetParam(), 1024);
  const auto row_in = PackRow(schema, 42, 2.25, "abc");
  ASSERT_TRUE(block.AppendRow(row_in.data()));
  std::vector<std::byte> row_out(schema.row_width());
  block.GetRow(0, row_out.data());
  EXPECT_EQ(std::memcmp(row_in.data(), row_out.data(), schema.row_width()),
            0);
}

TEST_P(BlockLayoutTest, FillsToCapacityThenRejects) {
  const Schema schema = TestSchema();
  Block block(1, &schema, GetParam(), 256);
  const uint32_t cap = block.capacity_rows();
  EXPECT_EQ(cap, 256u / schema.row_width());
  const auto row = PackRow(schema, 1, 1.0, "x");
  for (uint32_t i = 0; i < cap; ++i) ASSERT_TRUE(block.AppendRow(row.data()));
  EXPECT_TRUE(block.Full());
  EXPECT_FALSE(block.AppendRow(row.data()));
  EXPECT_EQ(block.num_rows(), cap);
}

TEST_P(BlockLayoutTest, BulkAppendRespectsCapacity) {
  const Schema schema = TestSchema();
  Block block(1, &schema, GetParam(), 10 * schema.row_width());
  std::vector<std::byte> rows;
  for (int i = 0; i < 25; ++i) {
    const auto r = PackRow(schema, i, i, "b");
    rows.insert(rows.end(), r.begin(), r.end());
  }
  EXPECT_EQ(block.AppendRows(rows.data(), 25), 10u);
  EXPECT_TRUE(block.Full());
  int32_t v;
  std::memcpy(&v, block.Column(0).at(9), 4);
  EXPECT_EQ(v, 9);
}

TEST_P(BlockLayoutTest, ClearResets) {
  const Schema schema = TestSchema();
  Block block(1, &schema, GetParam(), 512);
  const auto row = PackRow(schema, 5, 5.0, "z");
  ASSERT_TRUE(block.AppendRow(row.data()));
  block.Clear();
  EXPECT_TRUE(block.Empty());
  EXPECT_TRUE(block.AppendRow(row.data()));
}

INSTANTIATE_TEST_SUITE_P(Layouts, BlockLayoutTest,
                         ::testing::Values(Layout::kRowStore,
                                           Layout::kColumnStore),
                         [](const auto& info) {
                           return info.param == Layout::kRowStore
                                      ? "RowStore"
                                      : "ColumnStore";
                         });

TEST(BlockTest, ColumnStrides) {
  const Schema schema = TestSchema();
  Block row_block(1, &schema, Layout::kRowStore, 1024);
  EXPECT_EQ(row_block.Column(0).stride, schema.row_width());
  EXPECT_EQ(row_block.Column(1).stride, schema.row_width());
  Block col_block(2, &schema, Layout::kColumnStore, 1024);
  EXPECT_EQ(col_block.Column(0).stride, 4u);
  EXPECT_EQ(col_block.Column(1).stride, 8u);
  EXPECT_EQ(col_block.Column(2).stride, 6u);
}

TEST(BlockTest, AllocatedBytesRoundsToWholeTuples) {
  const Schema schema = TestSchema();  // 18-byte rows
  Block block(1, &schema, Layout::kRowStore, 1000);
  EXPECT_EQ(block.capacity_rows(), 1000u / schema.row_width());
  EXPECT_EQ(block.allocated_bytes(),
            block.capacity_rows() * schema.row_width());
}

TEST(StorageManagerTest, TracksBlockMemory) {
  StorageManager storage;
  const Schema schema = TestSchema();
  Block* b1 = storage.CreateBlock(&schema, Layout::kRowStore, 1024,
                                  MemoryCategory::kBaseTable);
  Block* b2 = storage.CreateBlock(&schema, Layout::kColumnStore, 2048,
                                  MemoryCategory::kTemporaryTable);
  EXPECT_EQ(storage.num_blocks(), 2u);
  EXPECT_EQ(storage.tracker().Current(MemoryCategory::kBaseTable),
            static_cast<int64_t>(b1->allocated_bytes()));
  const int64_t temp_bytes = static_cast<int64_t>(b2->allocated_bytes());
  EXPECT_EQ(storage.tracker().Current(MemoryCategory::kTemporaryTable),
            temp_bytes);
  storage.DropBlock(b2);
  EXPECT_EQ(storage.num_blocks(), 1u);
  EXPECT_EQ(storage.tracker().Current(MemoryCategory::kTemporaryTable), 0);
  EXPECT_EQ(storage.tracker().Peak(MemoryCategory::kTemporaryTable),
            temp_bytes);
}

TEST(TableTest, AppendAcrossBlocks) {
  StorageManager storage;
  Table table("t", TestSchema(), Layout::kRowStore, 5 * 18, &storage,
              MemoryCategory::kBaseTable);
  const Schema& s = table.schema();
  for (int i = 0; i < 23; ++i) {
    const auto row = PackRow(s, i, i * 2.0, "r");
    table.AppendRow(row.data());
  }
  EXPECT_EQ(table.NumRows(), 23u);
  EXPECT_GE(table.blocks().size(), 5u);  // 5 rows per block
  EXPECT_EQ(table.GetValue(0, 0).AsInt32(), 0);
  EXPECT_EQ(table.GetValue(22, 0).AsInt32(), 22);
  EXPECT_DOUBLE_EQ(table.GetValue(13, 1).AsDouble(), 26.0);
}

TEST(TableTest, AppendValuesConvenience) {
  StorageManager storage;
  Table table("t", TestSchema(), Layout::kColumnStore, 1024, &storage,
              MemoryCategory::kBaseTable);
  table.AppendValues({TypedValue::Int32(1), TypedValue::Double(2.0),
                      TypedValue::Char("abc")});
  EXPECT_EQ(table.NumRows(), 1u);
  EXPECT_EQ(table.GetValue(0, 2).AsChar(), "abc");
}

TEST(TableTest, DropBlocksReleasesMemory) {
  StorageManager storage;
  {
    Table table("t", TestSchema(), Layout::kRowStore, 1024, &storage,
                MemoryCategory::kTemporaryTable);
    table.AppendValues({TypedValue::Int32(1), TypedValue::Double(1.0),
                        TypedValue::Char("a")});
    EXPECT_GT(storage.tracker().Current(MemoryCategory::kTemporaryTable), 0);
  }  // destructor drops blocks
  EXPECT_EQ(storage.tracker().Current(MemoryCategory::kTemporaryTable), 0);
  EXPECT_EQ(storage.num_blocks(), 0u);
}

TEST(BlockPoolTest, CheckoutReturnsPooledBlockFirst) {
  StorageManager storage;
  const Schema schema = TestSchema();
  BlockPool pool(&storage, &schema, Layout::kRowStore, 1024,
                 MemoryCategory::kTemporaryTable);
  Block* a = pool.Checkout();
  EXPECT_EQ(pool.PooledCount(), 0u);
  pool.Return(a);
  EXPECT_EQ(pool.PooledCount(), 1u);
  Block* b = pool.Checkout();
  EXPECT_EQ(b, a);  // reuse preserves locality (paper Section III-A)
}

TEST(BlockPoolTest, DrainAllEmptiesPool) {
  StorageManager storage;
  const Schema schema = TestSchema();
  BlockPool pool(&storage, &schema, Layout::kRowStore, 1024,
                 MemoryCategory::kTemporaryTable);
  Block* a = pool.Checkout();
  Block* b = pool.Checkout();
  EXPECT_NE(a, b);
  pool.Return(a);
  pool.Return(b);
  const auto drained = pool.DrainAll();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(pool.PooledCount(), 0u);
}

TEST(InsertDestinationTest, CompletesFullBlocksAndFlushesPartials) {
  StorageManager storage;
  Table out("out", TestSchema(), Layout::kRowStore, 4 * 18, &storage,
            MemoryCategory::kTemporaryTable);
  int ready_count = 0;
  InsertDestination dest(&storage, &out,
                         [&ready_count](Block*) { ++ready_count; });
  {
    InsertDestination::Writer writer(&dest);
    const Schema& s = out.schema();
    for (int i = 0; i < 10; ++i) {
      const auto row = PackRow(s, i, i, "w");
      writer.AppendRow(row.data());
    }
  }
  // 4 rows per block: two full blocks completed mid-writing.
  EXPECT_EQ(ready_count, 2);
  EXPECT_EQ(out.NumRows(), 8u);
  dest.Flush();  // the partial block (2 rows) becomes ready
  EXPECT_EQ(ready_count, 3);
  EXPECT_EQ(out.NumRows(), 10u);
  EXPECT_EQ(dest.blocks_completed(), 3u);
}

TEST(InsertDestinationTest, FlushDropsEmptyBlocks) {
  StorageManager storage;
  Table out("out", TestSchema(), Layout::kRowStore, 1024, &storage,
            MemoryCategory::kTemporaryTable);
  InsertDestination dest(&storage, &out, nullptr);
  { InsertDestination::Writer writer(&dest); }  // no rows written
  dest.Flush();
  EXPECT_EQ(out.NumRows(), 0u);
  EXPECT_EQ(out.blocks().size(), 0u);
  EXPECT_EQ(storage.num_blocks(), 0u);  // empty block dropped
}

TEST(InsertDestinationTest, ConcurrentWritersProduceAllRows) {
  StorageManager storage;
  Table out("out", TestSchema(), Layout::kRowStore, 8 * 18, &storage,
            MemoryCategory::kTemporaryTable);
  InsertDestination dest(&storage, &out, nullptr);
  constexpr int kThreads = 4, kRows = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dest, &out, t] {
      InsertDestination::Writer writer(&dest);
      const Schema& s = out.schema();
      for (int i = 0; i < kRows; ++i) {
        const auto row = PackRow(s, t * kRows + i, i, "c");
        writer.AppendRow(row.data());
      }
    });
  }
  for (auto& t : threads) t.join();
  dest.Flush();
  EXPECT_EQ(out.NumRows(), static_cast<uint64_t>(kThreads * kRows));
}

}  // namespace
}  // namespace uot
