// Reproduces Fig. 9: scalability of two probe operators from TPC-H Q07 —
// one probing a small (selected supplier) hash table, one probing the huge
// orders hash table — against ideal linear speedup.
//
// Runs on the discrete-event scheduler simulator (this container has one
// core; see DESIGN.md substitution 1). The contention slope is derived
// from the hash-table size relative to L3: probes into a table far larger
// than L3 contend for memory bandwidth and storage-manager latches.

#include <cstdio>

#include "simsched/des_scheduler.h"

namespace {

/// Interference slope for a shared hash table of `ht_mb` megabytes probed
/// through a 25 MB L3: beyond-L3 tables serialize on the memory bus.
double ContentionAlpha(double ht_mb) {
  const double l3_mb = 25.0;
  const double excess = ht_mb / l3_mb;
  return 0.02 + 0.18 * (excess / (1.0 + excess));
}

}  // namespace

int main() {
  using namespace uot;
  std::printf("Fig 9: probe-operator scalability (DES simulator), "
              "speedup vs 1 thread\n\n");

  struct ProbeCase {
    const char* name;
    double ht_mb;
  };
  const ProbeCase cases[] = {
      {"probe(small supplier HT, ~2MB)", 2.0},
      {"probe(whole orders HT, ~2.4GB)", 2400.0},
  };

  std::printf("%-8s %28s %28s %8s\n", "threads", cases[0].name,
              cases[1].name, "ideal");
  double base[2] = {0, 0};
  for (const int threads : {1, 2, 4, 8, 12, 16, 20}) {
    double speedup[2];
    for (int c = 0; c < 2; ++c) {
      SimOperator probe;
      probe.name = "probe";
      probe.num_work_orders = 400;
      probe.work_ns = 1e6;
      probe.contention_alpha = ContentionAlpha(cases[c].ht_mb);
      probe.overhead_ns = 0.05e6;
      probe.sync_beta = cases[c].ht_mb > 25.0 ? 0.10 : 0.02;
      SimConfig config;
      config.num_workers = threads;
      const double makespan =
          DesScheduler::Run({probe}, config).makespan_ns;
      if (threads == 1) base[c] = makespan;
      speedup[c] = base[c] / makespan;
    }
    std::printf("%-8d %28.2f %28.2f %8d\n", threads, speedup[0], speedup[1],
                threads);
  }
  std::printf("\nPaper: the probe on the large hash table scales poorly "
              "(contention in memory and the storage manager); the small-"
              "hash-table probe tracks ideal far longer.\n");
  return 0;
}
