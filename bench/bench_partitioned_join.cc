// Radix-partitioned hash join A/B (ISSUE 7 satellite): unpartitioned
// shared-table join vs an exchange-partitioned join swept over radix_bits,
// with uniform and Zipf-skewed probe keys. The build side is sized
// out-of-cache so the unpartitioned probe pays an L3 miss per chain, while
// partitioned sub-tables become (near-)cache-resident — the contention/
// locality trade the Section V/VI repartition cost terms
// (CostModel::RepartitionExtraCost vs PartitionedProbeSavings) model.
//
// Probe-phase time is read from the scheduler's per-operator task
// accounting (OperatorStats), so repartition (exchange) time is reported
// separately and does not pollute the probe comparison.
//
// Emits BENCH_partitioned_join.json. UOT_PARTITION_BENCH_SMALL=1 shrinks
// the tables so CI can smoke-test the emitter in seconds.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "model/uot_chooser.h"
#include "plan/plan_builder.h"
#include "types/row_builder.h"
#include "util/random.h"

namespace {

using namespace uot;
using namespace uot::bench;

std::unique_ptr<Table> MakeKeyedTable(StorageManager* storage,
                                      const std::string& name,
                                      const std::vector<int64_t>& keys,
                                      size_t block_bytes) {
  Schema schema({{"k", Type::Int64()}, {"v", Type::Int64()}});
  auto table = std::make_unique<Table>(name, schema, Layout::kRowStore,
                                       block_bytes, storage,
                                       MemoryCategory::kBaseTable);
  RowBuilder row(&table->schema());
  for (size_t i = 0; i < keys.size(); ++i) {
    row.SetInt64(0, keys[i]);
    row.SetInt64(1, static_cast<int64_t>(i));
    table->AppendRow(row.data());
  }
  return table;
}

/// Probe keys over [0, domain): uniform, or Zipf-like (power-skewed toward
/// low keys, the heavy-hitter regime where one partition runs hot).
std::vector<int64_t> ProbeKeys(uint64_t rows, uint64_t domain, bool zipf) {
  std::vector<int64_t> keys;
  keys.reserve(rows);
  Random rng(42);
  for (uint64_t i = 0; i < rows; ++i) {
    const double u = rng.NextDouble();
    const double scaled = zipf ? u * u * u * u : u;  // ~Zipf tail mass
    int64_t key = static_cast<int64_t>(
        scaled * static_cast<double>(domain));
    if (key >= static_cast<int64_t>(domain)) {
      key = static_cast<int64_t>(domain) - 1;
    }
    keys.push_back(key);
  }
  return keys;
}

struct PhaseTimes {
  double query_ms = 0.0;
  double probe_ms = 0.0;     // probe operator task time
  double exchange_ms = 0.0;  // both exchange operators' task time
};

PhaseTimes RunJoin(StorageManager* storage, const Table& probe,
                   const Table& build, int radix_bits, size_t block_bytes,
                   int workers, int runs) {
  PhaseTimes best;
  best.query_ms = 1e300;
  for (int r = 0; r < runs; ++r) {
    PlanBuilderConfig plan_config;
    plan_config.block_bytes = block_bytes;
    plan_config.join_radix_bits = radix_bits;
    PlanBuilder builder(storage, plan_config);
    BuildHashOperator* build_op =
        builder.Build("build", PlanBuilder::Base(build), {0}, {1});
    PlanBuilder::Src out = builder.Probe("probe", PlanBuilder::Base(probe),
                                         build_op, {0}, {0, 1});
    auto plan = builder.Finish(out);

    ExecConfig exec;
    exec.num_workers = workers;
    exec.uot = UotPolicy::LowUot(2);
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    if (stats.QueryMillis() < best.query_ms) {
      best.query_ms = stats.QueryMillis();
      best.probe_ms = 0.0;
      best.exchange_ms = 0.0;
      for (const OperatorStats& op : stats.operators) {
        const double ms = static_cast<double>(op.total_task_ns) / 1e6;
        if (op.name == "probe") best.probe_ms += ms;
        if (op.name.find(".xchg") != std::string::npos) {
          best.exchange_ms += ms;
        }
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  const bool small = std::getenv("UOT_PARTITION_BENCH_SMALL") != nullptr;
  const uint64_t build_rows = small ? 20'000 : 1'500'000;
  const uint64_t probe_rows = small ? 60'000 : 6'000'000;
  const size_t block_bytes = small ? 16 * 1024 : MidBlockBytes();
  const int workers = Threads();
  const int runs = std::max(1, small ? 1 : Runs());

  std::printf("bench_partitioned_join: build=%llu probe=%llu workers=%d%s\n",
              static_cast<unsigned long long>(build_rows),
              static_cast<unsigned long long>(probe_rows), workers,
              small ? " [small]" : "");

  StorageManager storage;
  std::vector<int64_t> build_keys(build_rows);
  for (uint64_t i = 0; i < build_rows; ++i) {
    build_keys[i] = static_cast<int64_t>(i);
  }
  auto build =
      MakeKeyedTable(&storage, "build", build_keys, block_bytes);

  // What the model would pick for this shape, for cross-checking the
  // sweep against CostModelUotChooser::ChooseRadixBits.
  {
    CostModelUotChooser chooser;
    EdgeEstimate build_est{build_rows, 16.0};
    EdgeEstimate probe_est{probe_rows, 16.0};
    const RadixChoice choice =
        chooser.ChooseRadixBits(build_est, probe_est, /*slot_bytes=*/32);
    std::printf("model: %s\n", choice.ToString().c_str());
  }

  BenchJson json("partitioned_join");
  json.Set("build_rows", static_cast<double>(build_rows));
  json.Set("probe_rows", static_cast<double>(probe_rows));
  json.Set("workers", static_cast<double>(workers));

  for (const bool zipf : {false, true}) {
    const char* dist = zipf ? "zipf" : "uniform";
    auto probe = MakeKeyedTable(
        &storage, std::string("probe_") + dist,
        ProbeKeys(probe_rows, build_rows, zipf), block_bytes);

    double probe_radix0_ms = 0.0;
    double best_partitioned_ms = 1e300;
    for (const int radix_bits : {0, 1, 2, 3, 4, 5, 6}) {
      const PhaseTimes t = RunJoin(&storage, *probe, *build, radix_bits,
                                   block_bytes, workers, runs);
      const std::string tag =
          std::string(dist) + "_radix" + std::to_string(radix_bits);
      std::printf(
          "  %-18s query %9.2f ms   probe %9.2f ms   exchange %8.2f ms\n",
          tag.c_str(), t.query_ms, t.probe_ms, t.exchange_ms);
      json.Set(tag + "_query_ms", t.query_ms);
      json.Set(tag + "_probe_ms", t.probe_ms);
      json.Set(tag + "_exchange_ms", t.exchange_ms);
      if (radix_bits == 0) {
        probe_radix0_ms = t.probe_ms;
      } else {
        best_partitioned_ms = std::min(best_partitioned_ms, t.probe_ms);
      }
    }
    const double speedup =
        best_partitioned_ms > 0.0 ? probe_radix0_ms / best_partitioned_ms
                                  : 0.0;
    std::printf("  %s probe-phase speedup (best radix vs shared table): "
                "%.2fx\n",
                dist, speedup);
    json.Set(std::string(dist) + "_probe_speedup", speedup);
  }

  json.Write();
  std::printf("\nTarget: >= 1.3x probe-phase speedup on the skewed "
              "out-of-cache arm at 8 workers.\n");
  return 0;
}
