// Reproduces Fig. 5: per-task execution times of the probe hash operator
// when it is the first consumer operator in a pipeline, for low vs high
// UoT values at two block sizes (128 KB and 2 MB).

#include <cstdio>

#include "bench_util.h"
#include "simcache/access_streams.h"
#include "simcache/cache_simulator.h"
#include "util/random.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Fig 5: per-task time (ms) of the first consumer probe in "
              "the lineitem pipeline (SF=%.3f, %d workers)\n\n",
              sf, Threads());

  // Paper grid 128KB / 2MB, scaled to the laptop SF (see bench_util.h).
  for (const size_t block_bytes : {SmallBlockBytes(), LargeBlockBytes()}) {
    TpchFixture fixture(sf, Layout::kColumnStore, block_bytes);
    TpchPlanConfig plan_config;
    plan_config.block_bytes = block_bytes;

    std::printf("block size %s:\n", HumanBytes(block_bytes).c_str());
    std::printf("%-5s %12s %12s %10s\n", "Query", "low UoT", "high UoT",
                "low/high");
    for (int query : SupportedTpchQueries()) {
      // Probe the plan shape first.
      auto shape = BuildTpchPlan(query, fixture.db(), plan_config);
      const int probe_op = FirstLineitemConsumer(*shape);
      if (probe_op < 0) continue;

      double avg[2] = {0, 0};
      uint64_t tasks = UINT64_MAX;
      int idx = 0;
      for (const bool whole_table : {false, true}) {
        ExecConfig exec;
        exec.num_workers = Threads();
        exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
        QueryTiming t =
            TimeQuery(query, fixture.db(), plan_config, exec, Runs());
        const OperatorStats& os =
            t.stats.operators[static_cast<size_t>(probe_op)];
        avg[idx++] = os.avg_task_ms();
        tasks = std::min(tasks, os.num_work_orders);
      }
      // Per-task averages over a handful of tasks are noise; skip them.
      if (avg[1] > 0 && tasks >= 4) {
        std::printf("Q%-4d %12.4f %12.4f %9.2fx\n", query, avg[0], avg[1],
                    avg[0] / avg[1]);
      }
    }
    std::printf("\n");
  }
  // ---- cache-simulator view (paper cache geometry: 25MB L3, 20 threads)
  // This machine's 105MB L3 keeps every intermediate hot, hiding the
  // effect the paper measured; the simulator restores the paper's
  // geometry. Low UoT: the probe input was produced moments ago and only
  // (T-1) peer blocks intervened. High UoT: the whole intermediate table
  // was materialized first, so the input is cold.
  std::printf("\nCache-simulator view (Haswell geometry, T=20):\n");
  std::printf("%-10s %14s %14s %10s\n", "block", "low UoT (ms)",
              "high UoT (ms)", "low/high");
  for (const uint64_t block :
       {uint64_t{128 * 1024}, uint64_t{512 * 1024},
        uint64_t{2 * 1024 * 1024}}) {
    const int kThreads = 20;
    const uint64_t table_bytes = 256ULL * 1024 * 1024;
    double ms[2];
    int idx = 0;
    for (const bool whole_table : {false, true}) {
      CacheSimulator sim{CacheSimConfig{}};
      Random rng(13);
      TaskTraceConfig trace;
      trace.block_bytes = block;
      trace.tuple_bytes = 16;  // select output rows (projected)
      trace.attr_bytes = 16;
      trace.hash_table_bytes = 8ULL * 1024 * 1024;
      // Producer writes the probe-input block (warms the caches).
      for (uint64_t b = 0; b < block; b += 64) {
        sim.Access(trace.input_base + b, 2);
      }
      // Intervening traffic before the probe runs.
      const uint64_t pollution =
          whole_table ? table_bytes
                      : static_cast<uint64_t>(kThreads - 1) * block;
      for (uint64_t b = 0; b < pollution; b += 64) {
        sim.Access((1ULL << 44) + b, 3);
      }
      ms[idx++] = SimulateProbeTask(&sim, trace, &rng, 0.5) / 1e6;
    }
    std::printf("%-10s %14.3f %14.3f %10.2f\n",
                HumanBytes(block).c_str(), ms[0], ms[1], ms[0] / ms[1]);
  }
  std::printf("\nPaper: low UoT generally benefits the probe operator; the "
              "improvement shrinks from 128KB to 2MB blocks.\n");
  return 0;
}
