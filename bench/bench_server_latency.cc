// Many-client open-loop load generator for the query front end
// (src/server): N client threads connect to a TextServer over TCP and fire
// requests on a fixed arrival schedule (open loop: arrival times are
// precomputed from the target rate, so a slow server accumulates queueing
// delay instead of silently throttling the offered load). Latency is
// measured from the *scheduled* arrival to reply completion — the
// coordinated-omission-free definition — and reported as p50/p95/p99 tails
// together with the plan-cache hit rate and the cost-model evaluation
// count, the serving-layer headline: repeat templates must ride cached
// annotations, not the model.
//
// Env knobs (bench_util.h conventions):
//   UOT_SF               TPC-H scale factor        (default 0.01)
//   UOT_THREADS          engine worker threads     (default hw)
//   UOT_SERVER_CLIENTS   concurrent clients        (default 8)
//   UOT_SERVER_REQUESTS  requests per client       (default 50)
//   UOT_SERVER_RPS       per-client request rate   (default 40)
//
// Emits BENCH_server_latency.json (UOT_BENCH_JSON_DIR).

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/text_server.h"

namespace uot {
namespace bench {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atoi(env) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atof(env) : fallback;
}

/// A blocking line-protocol client on one TCP connection.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  /// Sends one statement and drains its reply. True iff the reply is OK.
  bool Roundtrip(const std::string& statement) {
    std::string line = statement + "\n";
    size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    bool ok = false;
    bool first = true;
    while (true) {
      std::string reply_line;
      if (!ReadLine(&reply_line)) return false;
      if (first) {
        ok = reply_line.rfind("OK", 0) == 0;
        if (reply_line.rfind("ERR", 0) == 0) return false;
        first = false;
      }
      if (reply_line == "END") return ok;
    }
  }

 private:
  bool ReadLine(std::string* out) {
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    out->assign(buffer_, 0, newline);
    buffer_.erase(0, newline + 1);
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// The workload mix: a small pool of SQL templates (repeats hit the plan
/// cache; the literal varies per request to prove parameter-independence)
/// plus a TPC-H plan every 8th request. Request 0 of each template is the
/// only model evaluation the whole run should pay per template.
std::string StatementFor(int client, int index) {
  const int literal = 10 + (client * 7 + index * 3) % 40;
  switch (index % 8) {
    case 0:
      return "select count(*), sum(l_quantity) from lineitem where "
             "l_quantity < " +
             std::to_string(literal);
    case 1:
      return "select l_returnflag, sum(l_extendedprice) from lineitem "
             "group by l_returnflag";
    case 2:
      return "select count(*) from orders where o_totalprice < " +
             std::to_string(literal * 1000);
    case 3:
      return "tpch 6";
    case 4:
      return "select l_linestatus, count(*) from lineitem where "
             "l_discount < 0." + std::string(1, '0' + literal % 10) +
             " group by l_linestatus";
    case 5:
      return "select count(*) from lineitem join orders on l_orderkey = "
             "o_orderkey where l_quantity > " +
             std::to_string(literal);
    case 6:
      return "tpch 1";
    default:
      return "select max(l_extendedprice), min(l_extendedprice) from "
             "lineitem where l_quantity = " +
             std::to_string(literal % 50 + 1);
  }
}

struct ClientResult {
  std::vector<double> latencies_ms;  // scheduled-arrival -> completion
  int errors = 0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

}  // namespace

int Main() {
  const double sf = EnvDouble("UOT_SF", 0.01);
  const int workers = Threads();
  const int num_clients = EnvInt("UOT_SERVER_CLIENTS", 8);
  const int requests_per_client = EnvInt("UOT_SERVER_REQUESTS", 50);
  const double rps = EnvDouble("UOT_SERVER_RPS", 40.0);

  std::printf("server latency: sf=%g workers=%d clients=%d req/client=%d "
              "rate=%g/s/client\n",
              sf, workers, num_clients, requests_per_client, rps);

  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig tpch_config;
  tpch_config.scale_factor = sf;
  db.Generate(tpch_config);
  server::Catalog catalog(&storage);
  catalog.RegisterTpch(&db);

  server::FrontEndConfig config;
  config.engine.num_workers = workers;
  config.chooser.threads = workers;
  server::FrontEnd frontend(config, &catalog);
  server::TextServer tcp(&frontend);
  const Status status = tcp.Start(0);
  if (!status.ok()) {
    std::printf("FAILED to start server: %s\n", status.ToString().c_str());
    return 1;
  }

  // Warm nothing: the first occurrence of each template is part of the
  // measured run (a real server's cold start), and the hit rate reported
  // below includes those compulsory misses.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now() +
                                  std::chrono::milliseconds(50);
  std::vector<ClientResult> results(static_cast<size_t>(num_clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& result = results[static_cast<size_t>(c)];
      Client client(tcp.port());
      if (!client.connected()) {
        result.errors = requests_per_client;
        return;
      }
      for (int i = 0; i < requests_per_client; ++i) {
        // Open loop: the i-th request is *due* at start + i/rate. Sleep
        // until then if early; if the previous reply made us late, fire
        // immediately and let the latency sample absorb the backlog.
        const Clock::time_point due =
            start + std::chrono::microseconds(
                        static_cast<int64_t>(1e6 * i / rps));
        std::this_thread::sleep_until(due);
        const bool ok = client.Roundtrip(StatementFor(c, i));
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - due)
                .count();
        if (ok) {
          result.latencies_ms.push_back(ms);
        } else {
          ++result.errors;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  int errors = 0;
  for (const ClientResult& r : results) {
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
    errors += r.errors;
  }
  std::sort(all.begin(), all.end());
  const double p50 = Percentile(&all, 0.50);
  const double p95 = Percentile(&all, 0.95);
  const double p99 = Percentile(&all, 0.99);
  const double max_ms = all.empty() ? 0.0 : all.back();
  double sum = 0;
  for (double v : all) sum += v;
  const double mean = all.empty() ? 0.0 : sum / static_cast<double>(all.size());
  const double qps = duration_s > 0
                         ? static_cast<double>(all.size()) / duration_s
                         : 0.0;

  const server::PlanCache& cache = *frontend.plan_cache();
  const uint64_t lookups = cache.hits() + cache.misses() +
                           cache.invalidations();
  const double hit_rate =
      lookups > 0 ? static_cast<double>(cache.hits()) /
                        static_cast<double>(lookups)
                  : 0.0;

  std::printf("\n%-28s %10s\n", "metric", "value");
  std::printf("%-28s %10zu\n", "completed requests", all.size());
  std::printf("%-28s %10d\n", "errors", errors);
  std::printf("%-28s %10.1f\n", "achieved qps", qps);
  std::printf("%-28s %10.3f\n", "mean ms", mean);
  std::printf("%-28s %10.3f\n", "p50 ms", p50);
  std::printf("%-28s %10.3f\n", "p95 ms", p95);
  std::printf("%-28s %10.3f\n", "p99 ms", p99);
  std::printf("%-28s %10.3f\n", "max ms", max_ms);
  std::printf("%-28s %10.3f\n", "cache hit rate", hit_rate);
  std::printf("%-28s %10llu\n", "model evaluations",
              static_cast<unsigned long long>(frontend.model_evaluations()));

  BenchJson json("server_latency");
  json.Set("scale_factor", sf);
  json.Set("workers", workers);
  json.Set("clients", num_clients);
  json.Set("requests_per_client", requests_per_client);
  json.Set("target_rps_per_client", rps);
  json.Set("completed_requests", static_cast<double>(all.size()));
  json.Set("errors", errors);
  json.Set("duration_s", duration_s);
  json.Set("achieved_qps", qps);
  json.Set("mean_ms", mean);
  json.Set("p50_ms", p50);
  json.Set("p95_ms", p95);
  json.Set("p99_ms", p99);
  json.Set("max_ms", max_ms);
  json.Set("cache_hits", static_cast<double>(cache.hits()));
  json.Set("cache_misses", static_cast<double>(cache.misses()));
  json.Set("cache_hit_rate", hit_rate);
  json.Set("model_evaluations",
           static_cast<double>(frontend.model_evaluations()));
  json.Set("connections", static_cast<double>(tcp.connections_accepted()));
  json.Write();

  tcp.Stop();
  frontend.Shutdown();
  // The run only counts if the fleet actually ran concurrently and mostly
  // hit the cache: fail loudly so CI notices a degenerate configuration.
  if (errors > 0 || all.empty()) {
    std::printf("FAILED: %d errors\n", errors);
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace uot

int main() { return uot::bench::Main(); }
