// Reproduces Table II (and the Section VI-C discussion): the memory
// footprint of the two extreme UoT strategies on the TPC-H Q07 leaf join
// cascade — low UoT must keep all probe-side hash tables live, high UoT
// materializes the selection output instead.
//
// Peaks are read from the observability layer's memory gauges
// ("memory.<category>.bytes", sampled on every tracked allocate/release)
// rather than from raw ExecutionStats; set UOT_OBS_DIR to also dump each
// run's Perfetto trace (whose memory counter tracks show the footprint
// timeline) and metrics CSV.

#include <cstdio>

#include "bench_util.h"
#include "model/memory_model.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Table II: memory footprint of low vs high UoT on the Q07 "
              "cascade (SF=%.3f)\n\n", sf);

  TpchFixture fixture(sf, Layout::kColumnStore, 1 << 20);
  TpchPlanConfig plan_config;
  // Scaled blocks (DESIGN.md substitution 1) so the intermediates span
  // many blocks, as they do at the paper's SF 50.
  plan_config.block_bytes = MidBlockBytes();

  for (const bool whole_table : {false, true}) {
    ExecConfig exec;
    exec.num_workers = Threads();
    exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
    ObservedRun run = RunObserved(7, fixture.db(), plan_config, exec);
    std::printf("%-22s peak hash tables: %8.2f MB   peak intermediates: "
                "%8.2f MB\n",
                exec.uot.ToString().c_str(),
                static_cast<double>(run.PeakBytes("hash_table")) / 1e6,
                static_cast<double>(run.PeakBytes("temporary_table")) / 1e6);
    MaybeExportObs(run, whole_table ? "table2_high_uot" : "table2_low_uot");
  }

  // Model predictions (Section VI-B): hash table on the whole orders table
  // is the dominant term, as in the paper's Q07 example.
  const Table& orders = fixture.db().orders();
  const double orders_bytes = static_cast<double>(orders.TotalBytes());
  const double ht_orders = MemoryModel::HashTableBytes(
      orders_bytes, orders.schema().row_width(),
      /*bucket=*/8 + 8 + 4 /* key + payload, pre-alignment */, 0.75);
  std::printf("\nModel: hash table over the whole orders table ~ %.2f MB "
              "(orders base table: %.2f MB)\n", ht_orders / 1e6,
              orders_bytes / 1e6);
  std::printf("Paper: at SF 100 the orders hash table is ~2.4 GB while the "
              "select output is 2.8 GB unpruned / 224 MB with LIP —\n"
              "so either strategy can have the lower footprint "
              "(Section VI-C).\n");
  return 0;
}
