// Shared-engine concurrency: wall-clock throughput of a fixed TPC-H query
// batch executed (a) serially through the per-query QueryExecutor path and
// (b) on one shared worker-pool Engine at 1/2/4 concurrent queries.
//
// Single queries rarely keep every worker busy (pipeline structure bounds
// their DOP); admitting several queries to one pool fills the idle workers,
// so batch throughput should rise with the concurrency level. Emits
// BENCH_concurrency.json for the CI perf trajectory.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/engine.h"
#include "util/timer.h"

namespace {

using namespace uot;
using namespace uot::bench;

// Two instances each of four differently shaped queries: scan-heavy (1, 6),
// join-heavy (3), and join+aggregate (12).
const std::vector<int> kBatch = {1, 3, 6, 12, 1, 3, 6, 12};

double RunBatchConcurrent(Engine* engine, const TpchDatabase& db,
                          const TpchPlanConfig& plan_config,
                          const ExecConfig& exec, int concurrency) {
  // Plans are built up front so the measured interval is pure execution.
  std::vector<std::unique_ptr<QueryPlan>> plans;
  for (int query : kBatch) plans.push_back(BuildTpchPlan(query, db, plan_config));
  std::atomic<size_t> next{0};
  Timer timer;
  std::vector<std::thread> drivers;
  for (int d = 0; d < concurrency; ++d) {
    drivers.emplace_back([&] {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= plans.size()) return;
        engine->Execute(plans[i].get(), exec);
      }
    });
  }
  for (auto& t : drivers) t.join();
  return timer.ElapsedSeconds() * 1e3;
}

}  // namespace

int main() {
  const double sf = ScaleFactor();
  const char* threads_env = std::getenv("UOT_THREADS");
  // The headline configuration is 8 pool workers; UOT_THREADS overrides.
  const int workers = threads_env != nullptr ? std::atoi(threads_env) : 8;
  const int runs = Runs();

  std::printf("Concurrent throughput: %zu-query TPC-H batch "
              "(SF=%.3f, %d pool workers, best of %d runs)\n\n",
              kBatch.size(), sf, workers, runs);

  TpchFixture fixture(sf, Layout::kColumnStore, MidBlockBytes());
  TpchPlanConfig plan_config;
  plan_config.block_bytes = MidBlockBytes();
  ExecConfig exec;
  exec.num_workers = workers;
  exec.uot = UotPolicy::LowUot(1);

  BenchJson json("concurrency");
  json.SetString("batch", "2x{Q1,Q3,Q6,Q12}");
  json.Set("scale_factor", sf);
  json.Set("workers", workers);

  // Serial baseline: the historical path, one fresh worker pool per query.
  double serial_ms = 1e300;
  for (int r = 0; r < runs; ++r) {
    std::vector<std::unique_ptr<QueryPlan>> plans;
    for (int query : kBatch) {
      plans.push_back(BuildTpchPlan(query, fixture.db(), plan_config));
    }
    Timer timer;
    for (auto& plan : plans) QueryExecutor::Execute(plan.get(), exec);
    serial_ms = std::min(serial_ms, timer.ElapsedSeconds() * 1e3);
  }
  std::printf("%-28s %10.2f ms\n", "serial (per-query pools)", serial_ms);
  json.Set("serial_ms", serial_ms);

  EngineConfig engine_config;
  engine_config.num_workers = workers;
  // Engine telemetry across every shared-engine run: per-query latency
  // percentiles come from the engine's own histogram instead of
  // hand-rolled sorting here.
  obs::MetricsRegistry engine_metrics;
  engine_config.metrics = &engine_metrics;
  Engine engine(engine_config);
  for (const int concurrency : {1, 2, 4}) {
    double best_ms = 1e300;
    for (int r = 0; r < runs; ++r) {
      best_ms = std::min(best_ms,
                         RunBatchConcurrent(&engine, fixture.db(), plan_config,
                                            exec, concurrency));
    }
    const double speedup = serial_ms / best_ms;
    std::printf("shared engine, %d concurrent %10.2f ms   %5.2fx vs serial\n",
                concurrency, best_ms, speedup);
    json.Set("shared_" + std::to_string(concurrency) + "_ms", best_ms);
    json.Set("speedup_" + std::to_string(concurrency), speedup);
  }
  const obs::Histogram* latency =
      engine_metrics.FindHistogram("engine.query_latency_ns");
  if (latency != nullptr && latency->TotalCount() > 0) {
    const obs::HistogramSnapshot snap = latency->TakeSnapshot();
    std::printf("\nper-query latency over all shared-engine runs: "
                "p50 %.2f ms, p95 %.2f ms, p99 %.2f ms (%llu queries)\n",
                static_cast<double>(snap.p50) / 1e6,
                static_cast<double>(snap.p95) / 1e6,
                static_cast<double>(snap.p99) / 1e6,
                static_cast<unsigned long long>(snap.count));
    json.Set("latency_p50_ms", static_cast<double>(snap.p50) / 1e6);
    json.Set("latency_p95_ms", static_cast<double>(snap.p95) / 1e6);
    json.Set("latency_p99_ms", static_cast<double>(snap.p99) / 1e6);
  }
  json.Set("queries_executed",
           static_cast<double>(engine.queries_executed()));
  json.Write();
  std::printf("\nTarget: >= 1.2x batch throughput at 4 concurrent queries.\n");
  return 0;
}
