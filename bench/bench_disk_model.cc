// Validates the Section V-C persistent-store variant of the model: with a
// disk/SSD under an in-memory buffer pool, the non-pipelining strategy's
// extra cost is in the order of seconds for thousands of UoTs, while the
// pipelining strategy's instruction-cache cost is micro-seconds.

#include <cstdio>

#include "model/cost_model.h"

int main() {
  using namespace uot;
  CostModel ssd;  // default store ~0.5 GB/s (SSD)

  CostModelParams hdd_params;
  hdd_params.store_read_bw = 0.1;  // ~100 MB/s
  hdd_params.store_write_bw = 0.08;
  CostModel hdd(hdd_params);

  const double kMB = 1024.0 * 1024.0;
  std::printf("Section V-C: extra cost in the persistent-store setting\n\n");
  std::printf("%-8s %-10s %18s %18s %12s\n", "UoTs", "UoT size",
              "high UoT (ms)", "low UoT (ms)", "ratio");
  for (const uint64_t n : {uint64_t{1000}, uint64_t{10000}}) {
    for (const double b : {0.5 * kMB, 2 * kMB}) {
      const double high_ssd = ssd.StoreExtraCostHighUot(n, b) / 1e6;
      const double low = ssd.StoreExtraCostLowUot(n) / 1e6;
      std::printf("%-8llu %7.1fMB %18.1f %18.4f %11.0fx\n",
                  static_cast<unsigned long long>(n), b / kMB, high_ssd,
                  low, high_ssd / low);
    }
  }
  std::printf("\nHDD instead of SSD (100 MB/s): high-UoT extra cost for "
              "10000 x 2MB UoTs = %.1f seconds\n",
              hdd.StoreExtraCostHighUot(10000, 2 * kMB) / 1e9);
  std::printf("\nPaper: seconds for the non-pipelining case vs nano/micro-"
              "seconds for pipelining — consistent with why disk-based "
              "systems prize pipelining.\n");
  return 0;
}
