// Validates the Section V analytical model: Equation (1)'s ratio of
// non-pipelining to pipelining extra cost across UoT sizes and thread
// counts, plus the component costs behind the two regimes.

#include <cstdio>

#include "model/cost_model.h"

int main() {
  using namespace uot;
  CostModel m;
  std::printf("Section V analytical model — %s\n\n", m.Describe().c_str());

  std::printf("Equation (1) cost ratio (non-pipelining / pipelining):\n");
  std::printf("%-10s", "UoT size");
  for (const int threads : {1, 5, 10, 20}) {
    std::printf("   T=%-5d", threads);
  }
  std::printf("%10s %8s\n", "p1'(T=20)", "p2");
  const double kKB = 1024.0, kMB = 1024.0 * 1024.0;
  for (const double b : {64 * kKB, 128 * kKB, 256 * kKB, 512 * kKB, kMB,
                         2 * kMB, 4 * kMB, 8 * kMB, 16 * kMB}) {
    if (b >= kMB) {
      std::printf("%7.0fMB ", b / kMB);
    } else {
      std::printf("%7.0fKB ", b / kKB);
    }
    for (const int threads : {1, 5, 10, 20}) {
      std::printf("   %7.3f", m.CostRatio(b, threads));
    }
    std::printf("%10.3f %8.3f\n", m.P1Prime(b, 20), m.P2(b));
  }

  std::printf("\nExtra work for 1000 UoTs of 512KB, T=20:\n");
  std::printf("  non-pipelining: %10.2f ms  (W_mem + AR_L3 + p1*M_L3)\n",
              m.NonPipeliningExtraCost(1000, 512 * kKB) / 1e6);
  std::printf("  pipelining:     %10.2f ms  (2*IC + p2*(M+R) + "
              "p1'*(M+R+W))\n",
              m.PipeliningExtraCost(1000, 512 * kKB, 20) / 1e6);

  std::printf("\nPaper Section V-A: the ratio is close to 1 at both ends "
              "of the spectrum, with a slight advantage to low UoT values "
              "at small sizes.\n");
  return 0;
}
