// Reproduces Fig. 7: full TPC-H query execution times for low vs high UoT
// at block sizes 128 KB (a) and 2 MB (b), column-store base tables.

#include <cmath>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Fig 7: TPC-H query times (ms), column store "
              "(SF=%.3f, %d workers, mean of best runs)\n\n",
              sf, Threads());

  // Paper grid 128KB / 2MB, scaled to the laptop SF (see bench_util.h).
  for (const size_t block_bytes : {SmallBlockBytes(), LargeBlockBytes()}) {
    TpchFixture fixture(sf, Layout::kColumnStore, block_bytes);
    TpchPlanConfig plan_config;
    plan_config.block_bytes = block_bytes;

    std::printf("(%s) block size %s:\n",
                block_bytes == SmallBlockBytes() ? "a" : "b",
                HumanBytes(block_bytes).c_str());
    std::printf("%-5s %12s %12s %10s\n", "Query", "low UoT", "high UoT",
                "low/high");
    double geo = 0;
    int counted = 0;
    for (int query : SupportedTpchQueries()) {
      double ms[2] = {0, 0};
      int idx = 0;
      for (const bool whole_table : {false, true}) {
        ExecConfig exec;
        exec.num_workers = Threads();
        exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
        ms[idx++] = TimeQuery(query, fixture.db(), plan_config, exec, Runs())
                        .best_mean_ms;
      }
      std::printf("Q%-4d %12.2f %12.2f %9.2fx\n", query, ms[0], ms[1],
                  ms[0] / ms[1]);
      geo += std::log(ms[0] / ms[1]);
      ++counted;
    }
    std::printf("geomean low/high: %.3fx\n\n",
                std::exp(geo / std::max(1, counted)));
  }
  std::printf("Paper: low UoT slightly better at small blocks; little "
              "difference at 2MB.\n");
  return 0;
}
