// Reproduces Fig. 11: TPC-H performance of a MonetDB-style baseline — an
// operator-at-a-time, fully materializing, single-threaded engine — against
// the UoT-scheduled engine (DESIGN.md substitution 3).

#include <cstdio>

#include "baseline/materializing_engine.h"
#include "bench_util.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Fig 11: operator-at-a-time baseline vs UoT-scheduled engine "
              "(SF=%.3f, engine: %d workers, low UoT)\n\n", sf, Threads());

  TpchFixture fixture(sf, Layout::kColumnStore, 2 * 1024 * 1024);

  TpchPlanConfig engine_config;
  engine_config.block_bytes = LargeBlockBytes();
  // The paper explicitly credits LIP filters for part of Quickstep's edge
  // over MonetDB ("LIP filters in Quickstep reduce the data movement
  // across operators significantly") — the engine runs with them on.
  engine_config.use_lip = true;
  // The baseline materializes whole intermediates: giant blocks.
  TpchPlanConfig baseline_config;
  baseline_config.block_bytes = 64 * 1024 * 1024;

  ExecConfig engine_exec;
  engine_exec.num_workers = Threads();
  engine_exec.uot = UotPolicy::LowUot(1);

  std::printf("%-5s %14s %14s %10s\n", "Query", "baseline (ms)",
              "engine (ms)", "speedup");
  int engine_wins = 0, total = 0;
  for (int query : SupportedTpchQueries()) {
    double baseline_best = 1e300;
    for (int r = 0; r < Runs(); ++r) {
      auto plan = BuildTpchPlan(query, fixture.db(), baseline_config);
      const double ms = MaterializingEngine::ExecutePlan(plan.get());
      if (ms < baseline_best) baseline_best = ms;
    }
    const double engine_ms =
        TimeQuery(query, fixture.db(), engine_config, engine_exec, Runs())
            .best_mean_ms;
    std::printf("Q%-4d %14.2f %14.2f %9.2fx\n", query, baseline_best,
                engine_ms, baseline_best / engine_ms);
    if (engine_ms <= baseline_best) ++engine_wins;
    ++total;
  }
  std::printf("\nEngine at least as fast in %d of %d queries "
              "(paper: Quickstep beats MonetDB in 15 of 22).\n",
              engine_wins, total);
  return 0;
}
