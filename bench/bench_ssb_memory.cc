// Validates the paper's Section VI-B remark: "we see many cases when a
// lower UoT value results in a lower memory footprint ... especially for
// queries in the Star Schema Benchmark (SSB) that have small join hash
// tables" — the opposite of the TPC-H Q07 case where the whole-orders hash
// table dominates. Runs SSB star joins under both UoT extremes and prints
// the Table II-style footprint comparison.

#include <cstdio>
#include <cstdlib>

#include "exec/query_executor.h"
#include "ssb/ssb_queries.h"

int main() {
  using namespace uot;
  const char* sf_env = std::getenv("UOT_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.05;

  StorageManager storage;
  SsbDatabase db(&storage);
  SsbConfig config;
  config.scale_factor = sf;
  config.block_bytes = 1 << 20;
  db.Generate(config);

  std::printf("SSB memory footprints, low vs high UoT (SF=%.3f)\n", sf);
  std::printf("(Section VI-B: SSB's small dimension hash tables make the "
              "low-UoT strategy the memory winner)\n\n");
  std::printf("%-6s | %18s | %22s %22s | %s\n", "Query", "hash tables",
              "intermediates (low)", "intermediates (high)", "winner");

  PlanBuilderConfig plan_config;
  plan_config.block_bytes = 64 * 1024;

  for (int q : {21, 23, 31, 33, 41, 43}) {
    int64_t ht_peak = 0;
    int64_t temp_peak[2];
    int idx = 0;
    for (const bool whole_table : {false, true}) {
      auto plan = BuildSsbPlan(q, db, plan_config);
      ExecConfig exec;
      exec.num_workers = 2;
      exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
      const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
      temp_peak[idx] = stats.PeakTemporaryBytes();
      ht_peak = stats.PeakHashTableBytes();
      ++idx;
    }
    // Table II accounting: low-UoT overhead = co-resident hash tables
    // (intermediates are transient); high-UoT overhead = the materialized
    // intermediate.
    const double low_overhead =
        static_cast<double>(ht_peak + temp_peak[0]);
    const double high_overhead =
        static_cast<double>(ht_peak + temp_peak[1]);
    std::printf("Q%-5d | %15.2f MB | %19.2f MB %19.2f MB | %s\n", q,
                static_cast<double>(ht_peak) / 1e6,
                static_cast<double>(temp_peak[0]) / 1e6,
                static_cast<double>(temp_peak[1]) / 1e6,
                low_overhead < high_overhead ? "low UoT" : "high UoT");
  }
  std::printf("\nContrast with TPC-H Q07 (bench_table2_memory_footprint): "
              "there the whole-orders hash table dwarfs the (LIP-pruned) "
              "intermediate, so the high-UoT strategy can win — which UoT "
              "extreme needs less memory is workload-dependent "
              "(Section VI-B).\n");
  return 0;
}
