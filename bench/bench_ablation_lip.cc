// Ablation: LIP (Lookahead Information Passing) Bloom-filter pruning —
// the paper's Section VI-C "technique to lower selectivity" and the reason
// its Quickstep numbers beat MonetDB's in Fig. 11. Compares query time,
// materialized-intermediate peaks and probe work for the LIP-eligible
// queries with pruning on and off.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Ablation: LIP Bloom-filter pruning (SF=%.3f, %d workers, "
              "high UoT)\n\n", sf, Threads());
  TpchFixture fixture(sf, Layout::kColumnStore, 1 << 20);

  std::printf("%-5s | %10s %10s | %12s %12s | %s\n", "Query", "off (ms)",
              "LIP (ms)", "peak-tmp off", "peak-tmp LIP", "tmp shrink");
  for (int query : {3, 5, 7, 8, 10, 19}) {
    double ms[2];
    int64_t peak[2];
    int idx = 0;
    for (const bool use_lip : {false, true}) {
      TpchPlanConfig plan_config;
      plan_config.block_bytes = MidBlockBytes();
      plan_config.use_lip = use_lip;
      ExecConfig exec;
      exec.num_workers = Threads();
      exec.uot = UotPolicy::HighUot();
      QueryTiming t =
          TimeQuery(query, fixture.db(), plan_config, exec, Runs());
      ms[idx] = t.best_mean_ms;
      peak[idx] = t.stats.PeakTemporaryBytes();
      ++idx;
    }
    std::printf("Q%-4d | %10.2f %10.2f | %9.2f MB %9.2f MB | %8.1fx\n",
                query, ms[0], ms[1],
                static_cast<double>(peak[0]) / 1e6,
                static_cast<double>(peak[1]) / 1e6,
                static_cast<double>(peak[0]) /
                    static_cast<double>(peak[1] > 0 ? peak[1] : 1));
  }
  std::printf("\nPaper Section VI-C: LIP cuts Q07's materialized select "
              "output from 2.8 GB to 224 MB (12.5x) at SF 100 — making the "
              "high-UoT strategy's memory overhead competitive with (or "
              "better than) the low-UoT strategy's hash tables.\n");
  return 0;
}
