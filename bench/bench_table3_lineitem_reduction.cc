// Reproduces Table III: selectivity, projectivity and total memory
// reduction of the selection on lineitem for queries with a
// selection + probe pipeline (Q03, Q07, Q10, Q19).

#include <cstdio>

#include "bench_util.h"
#include "tpch/tpch_analysis.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Table III: memory reduction with input table lineitem "
              "(SF=%.3f)\n\n", sf);
  TpchFixture fixture(sf, Layout::kColumnStore, 1 << 20);
  const auto rows = AnalyzeLineitemReductions(fixture.db());
  std::printf("%s\n", RenderReductionTable(rows, "lineitem").c_str());
  std::printf("Paper (SF 50): Q03 53.9/13.1/7.0, Q07 30.4/18.3/5.6, "
              "Q10 24.7/13.1/3.2, Q19 2.1/13.1/0.3, Avg 27.8/14.4/4.0\n");
  return 0;
}
