// Reproduces Fig. 2: the interplay between scheduling strategies and UoT
// values. A filter (sigma) feeding a probe (P) is executed with one worker
// under increasing UoT values; the printed work-order sequence morphs from
// the interleaved "pipelined" schedule to the phase-separated
// "non-pipelining" schedule.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "operators/build_hash_operator.h"
#include "operators/probe_hash_operator.h"
#include "operators/select_operator.h"
#include "types/row_builder.h"

namespace uot {
namespace {

struct MiniPlan {
  std::unique_ptr<QueryPlan> plan;
  int select_op;
  int probe_op;
};

MiniPlan MakePlan(StorageManager* storage, const Table& probe_table,
                  const Table& build_table, size_t temp_block_bytes) {
  MiniPlan mp;
  mp.plan = std::make_unique<QueryPlan>(storage);
  QueryPlan* plan = mp.plan.get();

  auto build = std::make_unique<BuildHashOperator>(
      "build", std::vector<int>{0}, std::vector<int>{1}, 0.75,
      &storage->tracker());
  build->InitHashTable(build_table.schema());
  build->AttachBaseTable(&build_table);
  BuildHashOperator* build_raw = build.get();
  const int build_op = plan->AddOperator(std::move(build));

  auto proj = Projection::Identity(probe_table.schema(), {0, 1});
  Schema sel_schema = proj->output_schema();
  Table* sel_out = plan->CreateTempTable("sel.out", sel_schema,
                                         Layout::kRowStore,
                                         temp_block_bytes);
  InsertDestination* sel_dest = plan->CreateDestination(sel_out);
  auto select = std::make_unique<SelectOperator>(
      "sigma", std::make_unique<TruePredicate>(), std::move(proj), sel_dest);
  select->AttachBaseTable(&probe_table);
  mp.select_op = plan->AddOperator(std::move(select));
  plan->RegisterOutput(mp.select_op, sel_dest);

  Schema probe_schema = ProbeHashOperator::OutputSchema(
      sel_schema, {0}, build_table.schema(), {1}, JoinKind::kInner);
  Table* probe_out = plan->CreateTempTable("probe.out", probe_schema,
                                           Layout::kRowStore,
                                           temp_block_bytes);
  InsertDestination* probe_dest = plan->CreateDestination(probe_out);
  auto probe = std::make_unique<ProbeHashOperator>(
      "P", build_raw, std::vector<int>{0}, std::vector<int>{0},
      JoinKind::kInner, std::vector<ResidualCondition>{}, probe_dest);
  mp.probe_op = plan->AddOperator(std::move(probe));
  plan->RegisterOutput(mp.probe_op, probe_dest);
  plan->AddStreamingEdge(mp.select_op, mp.probe_op);
  plan->AddBlockingEdge(build_op, mp.probe_op);
  plan->SetResultTable(probe_out);
  return mp;
}

}  // namespace
}  // namespace uot

int main() {
  using namespace uot;
  std::printf("Fig 2: work-order schedules for different UoT values\n");
  std::printf("(sigma = filter work order, P = probe work order; one "
              "worker)\n\n");

  StorageManager storage;
  // 8 base blocks -> 8 sigma work orders; select output blocks sized so
  // one input block produces about one output block.
  Schema schema({{"k", Type::Int32()}, {"v", Type::Double()}});
  const size_t block_bytes = 64 * schema.row_width();
  Table probe_table("probe", schema, Layout::kRowStore, block_bytes,
                    &storage, MemoryCategory::kBaseTable);
  Table build_table("build", schema, Layout::kRowStore, 4096, &storage,
                    MemoryCategory::kBaseTable);
  RowBuilder row(&schema);
  for (int i = 0; i < 64 * 8; ++i) {
    row.SetInt32(0, i % 16);
    row.SetDouble(1, i);
    probe_table.AppendRow(row.data());
  }
  for (int i = 0; i < 16; ++i) {
    row.SetInt32(0, i);
    row.SetDouble(1, i);
    build_table.AppendRow(row.data());
  }

  for (const uint64_t uot :
       {UINT64_C(1), UINT64_C(2), UINT64_C(4), UotPolicy::kWholeTable}) {
    auto mp = MakePlan(&storage, probe_table, build_table, block_bytes);
    ExecConfig config;
    config.num_workers = 1;
    config.uot = uot == UotPolicy::kWholeTable ? UotPolicy::HighUot()
                                               : UotPolicy::LowUot(uot);
    const ExecutionStats stats =
        QueryExecutor::Execute(mp.plan.get(), config);

    std::vector<WorkOrderRecord> records = stats.records;
    std::sort(records.begin(), records.end(),
              [](const WorkOrderRecord& a, const WorkOrderRecord& b) {
                return a.start_ns < b.start_ns;
              });
    std::printf("%-22s schedule: ", config.uot.ToString().c_str());
    for (const WorkOrderRecord& r : records) {
      if (r.op == mp.select_op) {
        std::printf("s ");
      } else if (r.op == mp.probe_op) {
        std::printf("P ");
      } else {
        std::printf("b ");
      }
    }
    std::printf("\n");
  }
  std::printf("\nAs the UoT grows, the schedule approaches the traditional "
              "non-pipelining phase split (paper Fig. 2).\n");
  return 0;
}
