// Join-kernel A/B: scalar (tuple-at-a-time) vs batched+software-prefetched
// build and probe, at in-cache and out-of-cache hash table sizes — the
// repo's version of the paper's Table VI prefetching experiment. Group
// prefetching overlaps the batch's independent cache misses, so the win
// appears once the table outgrows LLC and every probe chain starts with a
// memory stall.
//
// Two levels:
//   1. Kernel level: raw JoinHashTable Insert/Probe loops vs
//      InsertBatch/ProbeBatch (batch 256, prefetch distance 16).
//   2. Plan level: TPC-H Q3 through the scheduler with
//      ExecConfig::join.kernel flipped, across block sizes and UoT.
//
// Emits BENCH_join_kernels.json. UOT_JOIN_BENCH_SMALL=1 shrinks the table
// sizes and scale factor so CI can smoke-test the emitter in seconds.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "join/hash_table.h"
#include "operators/exec_context.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace uot;
using namespace uot::bench;

constexpr uint32_t kBatch = 256;
constexpr int kPrefetchDistance = 16;

struct KernelTimes {
  double build_scalar_ms = 0.0;
  double build_batched_ms = 0.0;
  double probe_scalar_ms = 0.0;
  double probe_batched_ms = 0.0;
};

/// Builds the probe key sequence: every build key once, in random order, so
/// a full probe pass touches the whole table with no locality the hardware
/// prefetcher could exploit.
std::vector<uint64_t> ShuffledKeys(uint64_t entries) {
  std::vector<uint64_t> keys(entries);
  for (uint64_t i = 0; i < entries; ++i) keys[i] = i * 37;
  Random rng(5);
  for (uint64_t i = entries - 1; i > 0; --i) {
    const uint64_t j =
        static_cast<uint64_t>(rng.Uniform(0, static_cast<int64_t>(i)));
    std::swap(keys[i], keys[j]);
  }
  return keys;
}

KernelTimes RunKernelAb(uint64_t entries, int runs) {
  Schema payload({{"v", Type::Int64()}});
  const std::vector<uint64_t> probe_keys = ShuffledKeys(entries);
  std::vector<std::byte> payloads(entries * 8);
  for (uint64_t i = 0; i < entries; ++i) {
    const int64_t v = static_cast<int64_t>(i);
    std::memcpy(payloads.data() + i * 8, &v, 8);
  }

  KernelTimes out;
  out.build_scalar_ms = out.build_batched_ms = 1e300;
  out.probe_scalar_ms = out.probe_batched_ms = 1e300;
  std::vector<uint64_t> hash_scratch;
  std::vector<JoinMatch> matches;
  matches.reserve(kBatch);

  for (int r = 0; r < runs; ++r) {
    // Scalar build.
    JoinHashTable ht_scalar(payload, 1, 0.75, nullptr);
    ht_scalar.Reserve(entries);
    {
      Timer t;
      for (uint64_t i = 0; i < entries; ++i) {
        const uint64_t key = i * 37;
        ht_scalar.Insert(&key, payloads.data() + i * 8);
      }
      out.build_scalar_ms =
          std::min(out.build_scalar_ms, t.ElapsedSeconds() * 1e3);
    }

    // Batched build. Keys are packed per batch (the operator's extract
    // stage does the same), outside the timed region's steady state cost.
    JoinHashTable ht_batched(payload, 1, 0.75, nullptr);
    ht_batched.Reserve(entries);
    std::vector<uint64_t> key_buf(kBatch);
    {
      Timer t;
      for (uint64_t base = 0; base < entries; base += kBatch) {
        const uint32_t m = static_cast<uint32_t>(
            std::min<uint64_t>(kBatch, entries - base));
        for (uint32_t i = 0; i < m; ++i) key_buf[i] = (base + i) * 37;
        ht_batched.InsertBatch(key_buf.data(), payloads.data() + base * 8, m,
                               kPrefetchDistance, &hash_scratch);
      }
      out.build_batched_ms =
          std::min(out.build_batched_ms, t.ElapsedSeconds() * 1e3);
    }

    // Scalar probe: one dependent pointer chase per tuple.
    int64_t sum_scalar = 0;
    {
      Timer t;
      for (uint64_t i = 0; i < entries; ++i) {
        ht_scalar.Probe(&probe_keys[i], [&sum_scalar](const std::byte* p) {
          int64_t v;
          std::memcpy(&v, p, 8);
          sum_scalar += v;
        });
      }
      out.probe_scalar_ms =
          std::min(out.probe_scalar_ms, t.ElapsedSeconds() * 1e3);
    }

    // Batched probe: hash the batch, prefetch ahead, then resolve.
    int64_t sum_batched = 0;
    {
      Timer t;
      for (uint64_t base = 0; base < entries; base += kBatch) {
        const uint32_t m = static_cast<uint32_t>(
            std::min<uint64_t>(kBatch, entries - base));
        ht_batched.ProbeBatch(&probe_keys[base], m, kPrefetchDistance,
                              &hash_scratch, &matches);
        for (const JoinMatch& match : matches) {
          int64_t v;
          std::memcpy(&v, match.payload, 8);
          sum_batched += v;
        }
      }
      out.probe_batched_ms =
          std::min(out.probe_batched_ms, t.ElapsedSeconds() * 1e3);
    }
    if (sum_scalar != sum_batched) {
      std::fprintf(stderr, "FATAL: kernel A/B sums diverge (%lld vs %lld)\n",
                   static_cast<long long>(sum_scalar),
                   static_cast<long long>(sum_batched));
      std::exit(1);
    }
  }
  return out;
}

void PrintKernelRow(const char* label, uint64_t entries,
                    const KernelTimes& t) {
  std::printf("%-12s (%8llu entries)  build %8.2f -> %8.2f ms (%4.2fx)   "
              "probe %8.2f -> %8.2f ms (%4.2fx)\n",
              label, static_cast<unsigned long long>(entries),
              t.build_scalar_ms, t.build_batched_ms,
              t.build_scalar_ms / t.build_batched_ms, t.probe_scalar_ms,
              t.probe_batched_ms, t.probe_scalar_ms / t.probe_batched_ms);
}

}  // namespace

int main() {
  const bool small = std::getenv("UOT_JOIN_BENCH_SMALL") != nullptr;
  const int runs = Runs();
  // Out-of-cache: ~4M entries -> ~128MB of slots, far beyond LLC. In-cache:
  // 16K entries -> ~256KB of slots, L2-resident.
  const uint64_t incache_entries = small ? (1ull << 10) : (1ull << 14);
  const uint64_t outcache_entries = small ? (1ull << 14) : (1ull << 22);

  std::printf("Join kernel A/B: scalar vs batched+prefetched "
              "(batch %u, distance %d, best of %d runs)\n\n",
              kBatch, kPrefetchDistance, runs);

  BenchJson json("join_kernels");
  json.Set("batch_size", kBatch);
  json.Set("prefetch_distance", kPrefetchDistance);
  json.Set("incache_entries", static_cast<double>(incache_entries));
  json.Set("outcache_entries", static_cast<double>(outcache_entries));

  const KernelTimes incache = RunKernelAb(incache_entries, runs);
  PrintKernelRow("in-cache", incache_entries, incache);
  json.Set("probe_scalar_ms_incache", incache.probe_scalar_ms);
  json.Set("probe_batched_ms_incache", incache.probe_batched_ms);
  json.Set("probe_speedup_incache",
           incache.probe_scalar_ms / incache.probe_batched_ms);
  json.Set("build_speedup_incache",
           incache.build_scalar_ms / incache.build_batched_ms);

  const KernelTimes outcache = RunKernelAb(outcache_entries, runs);
  PrintKernelRow("out-of-cache", outcache_entries, outcache);
  json.Set("probe_scalar_ms_outcache", outcache.probe_scalar_ms);
  json.Set("probe_batched_ms_outcache", outcache.probe_batched_ms);
  json.Set("probe_speedup_outcache",
           outcache.probe_scalar_ms / outcache.probe_batched_ms);
  json.Set("build_scalar_ms_outcache", outcache.build_scalar_ms);
  json.Set("build_batched_ms_outcache", outcache.build_batched_ms);
  json.Set("build_speedup_outcache",
           outcache.build_scalar_ms / outcache.build_batched_ms);

  // Plan level: TPC-H Q3 (join-heavy) with the kernel switch flipped, over
  // the block-size grid and both UoT extremes. Shows how much of the kernel
  // win survives end-to-end, where extraction/emission amortize it.
  const double sf = small ? std::min(ScaleFactor(), 0.01) : ScaleFactor();
  std::printf("\nPlan level: TPC-H Q3, SF=%.3f, %d workers\n", sf,
              Threads());
  TpchFixture fixture(sf, Layout::kColumnStore, MidBlockBytes());
  for (const size_t block_bytes : {SmallBlockBytes(), MidBlockBytes()}) {
    for (const bool whole_table : {false, true}) {
      TpchPlanConfig plan_config;
      plan_config.block_bytes = block_bytes;
      ExecConfig exec;
      exec.num_workers = Threads();
      exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
      double ms[2] = {0.0, 0.0};
      for (const JoinKernel kernel :
           {JoinKernel::kScalar, JoinKernel::kBatched}) {
        exec.join.kernel = kernel;
        ms[kernel == JoinKernel::kBatched ? 1 : 0] =
            TimeQuery(3, fixture.db(), plan_config, exec, runs).best_mean_ms;
      }
      const std::string tag = HumanBytes(block_bytes) +
                              (whole_table ? "_highuot" : "_lowuot");
      std::printf("  q3 %-14s scalar %8.2f ms   batched %8.2f ms   %4.2fx\n",
                  tag.c_str(), ms[0], ms[1], ms[0] / ms[1]);
      json.Set("q3_" + tag + "_scalar_ms", ms[0]);
      json.Set("q3_" + tag + "_batched_ms", ms[1]);
    }
  }

  json.Write();
  std::printf("\nTarget: >= 1.3x out-of-cache probe speedup "
              "(got %.2fx).\n",
              outcache.probe_scalar_ms / outcache.probe_batched_ms);
  return 0;
}
