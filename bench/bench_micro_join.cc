// Micro-benchmarks of the join hash table: build and probe throughput as a
// function of table size relative to cache capacity.

#include <benchmark/benchmark.h>

#include <cstring>

#include "join/hash_table.h"
#include "util/random.h"

namespace uot {
namespace {

void BM_HashTableBuild(benchmark::State& state) {
  const int64_t entries = state.range(0);
  Schema payload({{"v", Type::Int64()}});
  for (auto _ : state) {
    JoinHashTable ht(payload, 1, 0.75, nullptr);
    ht.Reserve(static_cast<uint64_t>(entries));
    std::byte buf[8];
    for (int64_t i = 0; i < entries; ++i) {
      const uint64_t key[2] = {static_cast<uint64_t>(i * 37), 0};
      std::memcpy(buf, &i, 8);
      ht.Insert(key, buf);
    }
    benchmark::DoNotOptimize(ht.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          entries);
}
BENCHMARK(BM_HashTableBuild)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_HashTableProbe(benchmark::State& state) {
  const int64_t entries = state.range(0);
  Schema payload({{"v", Type::Int64()}});
  JoinHashTable ht(payload, 1, 0.75, nullptr);
  ht.Reserve(static_cast<uint64_t>(entries));
  std::byte buf[8];
  for (int64_t i = 0; i < entries; ++i) {
    const uint64_t key[2] = {static_cast<uint64_t>(i * 37), 0};
    std::memcpy(buf, &i, 8);
    ht.Insert(key, buf);
  }
  Random rng(5);
  for (auto _ : state) {
    int64_t sum = 0;
    for (int i = 0; i < 1024; ++i) {
      const uint64_t key[2] = {
          static_cast<uint64_t>(rng.Uniform(0, entries - 1) * 37), 0};
      ht.Probe(key, [&sum](const std::byte* p) {
        int64_t v;
        std::memcpy(&v, p, 8);
        sum += v;
      });
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_HashTableProbe)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
}  // namespace uot

BENCHMARK_MAIN();
