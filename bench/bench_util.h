#ifndef UOT_BENCH_BENCH_UTIL_H_
#define UOT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "obs/trace_json.h"
#include "obs/trace_session.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace uot {
namespace bench {

/// Environment knobs shared by every bench binary:
///   UOT_SF       TPC-H scale factor (default 0.05)
///   UOT_THREADS  worker threads     (default 4)
///   UOT_RUNS     repetitions; the mean of the best ceil(runs*0.6) runs is
///                reported, mirroring the paper's best-3-of-10 (default 3)
inline double ScaleFactor() {
  const char* env = std::getenv("UOT_SF");
  return env != nullptr ? std::atof(env) : 0.05;
}

inline int Threads() {
  const char* env = std::getenv("UOT_THREADS");
  if (env != nullptr) return std::atoi(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

inline int Runs() {
  const char* env = std::getenv("UOT_RUNS");
  return env != nullptr ? std::atoi(env) : 3;
}

/// The paper's block-size grid (Table V).
inline const std::vector<size_t>& PaperBlockSizes() {
  static const std::vector<size_t>* kSizes =
      new std::vector<size_t>{128 * 1024, 512 * 1024, 2 * 1024 * 1024};
  return *kSizes;
}

/// Block sizes scaled so blocks-per-table stays comparable to the paper's
/// SF-50 setting at laptop scale factors (DESIGN.md substitution 1): the
/// paper's 128KB / 512KB / 2MB grid maps to 16KB / 64KB / 256KB at the
/// default SF. Override with UOT_BLOCK_SCALE (a multiplier).
inline size_t BlockScale() {
  const char* env = std::getenv("UOT_BLOCK_SCALE");
  return env != nullptr ? static_cast<size_t>(std::atoi(env)) : 1;
}
inline size_t SmallBlockBytes() { return 16 * 1024 * BlockScale(); }
inline size_t MidBlockBytes() { return 64 * 1024 * BlockScale(); }
inline size_t LargeBlockBytes() { return 256 * 1024 * BlockScale(); }

inline std::string HumanBytes(size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%zuMB", bytes / (1024 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuKB", bytes / 1024);
  }
  return buf;
}

/// Builds (and caches per block size/layout) a TPC-H database.
class TpchFixture {
 public:
  TpchFixture(double scale_factor, Layout layout, size_t block_bytes)
      : storage_(std::make_unique<StorageManager>()),
        db_(std::make_unique<TpchDatabase>(storage_.get())) {
    TpchConfig config;
    config.scale_factor = scale_factor;
    config.layout = layout;
    config.block_bytes = block_bytes;
    db_->Generate(config);
  }

  const TpchDatabase& db() const { return *db_; }
  StorageManager* storage() { return storage_.get(); }

 private:
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<TpchDatabase> db_;
};

/// Runs one query several times and returns the stats of a representative
/// run plus the mean-of-best query time.
struct QueryTiming {
  double best_mean_ms = 0.0;
  ExecutionStats stats;  // stats of the fastest run
  std::unique_ptr<QueryPlan> plan;  // plan of the fastest run (results)
};

inline QueryTiming TimeQuery(int query, const TpchDatabase& db,
                             const TpchPlanConfig& plan_config,
                             const ExecConfig& exec_config, int runs) {
  QueryTiming out;
  std::vector<double> times;
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    auto plan = BuildTpchPlan(query, db, plan_config);
    ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec_config);
    const double ms = stats.QueryMillis();
    times.push_back(ms);
    if (ms < best) {
      best = ms;
      out.stats = std::move(stats);
      out.plan = std::move(plan);
    }
  }
  std::sort(times.begin(), times.end());
  const size_t keep =
      std::max<size_t>(1, (times.size() * 6 + 9) / 10);  // best ~60%
  double sum = 0;
  for (size_t i = 0; i < keep && i < times.size(); ++i) sum += times[i];
  out.best_mean_ms = sum / static_cast<double>(std::min(keep, times.size()));
  return out;
}

/// One query execution with the observability layer attached: the benches
/// read per-operator/per-edge/memory figures from the metrics registry
/// (the same exporters users consume) instead of re-deriving them from raw
/// ExecutionStats, and can dump the trace for Perfetto.
struct ObservedRun {
  ExecutionStats stats;
  std::unique_ptr<QueryPlan> plan;
  std::unique_ptr<obs::TraceSession> trace;
  std::unique_ptr<obs::MetricsRegistry> metrics;

  /// Total task time (ms) the scheduler recorded for operator `op`.
  double OpTaskMillis(int op) const {
    const obs::Counter* c = metrics->FindCounter(
        "scheduler.op." + std::to_string(op) + ".task_ns");
    return c == nullptr ? 0.0 : static_cast<double>(c->Value()) / 1e6;
  }

  /// Sampled high-water mark (bytes) of a memory category gauge.
  int64_t PeakBytes(const char* category) const {
    const obs::Gauge* g = metrics->FindGauge(
        std::string("memory.") + category + ".bytes");
    return g == nullptr ? 0 : g->Max();
  }
};

/// Runs one query with a fresh TraceSession + MetricsRegistry attached.
inline ObservedRun RunObserved(int query, const TpchDatabase& db,
                               const TpchPlanConfig& plan_config,
                               ExecConfig exec_config) {
  ObservedRun out;
  out.trace = std::make_unique<obs::TraceSession>();
  out.metrics = std::make_unique<obs::MetricsRegistry>();
  exec_config.trace = out.trace.get();
  exec_config.metrics = out.metrics.get();
  out.plan = BuildTpchPlan(query, db, plan_config);
  out.stats = QueryExecutor::Execute(out.plan.get(), exec_config);
  return out;
}

/// When UOT_OBS_DIR is set, writes `<dir>/<prefix>.trace.json` and
/// `<dir>/<prefix>.metrics.csv` and prints where they went. The trace is
/// loadable in https://ui.perfetto.dev.
inline void MaybeExportObs(const ObservedRun& run,
                           const std::string& prefix) {
  const char* dir = std::getenv("UOT_OBS_DIR");
  if (dir == nullptr || run.trace == nullptr) return;
  const std::string trace_path = std::string(dir) + "/" + prefix +
                                 ".trace.json";
  const std::string csv_path = std::string(dir) + "/" + prefix +
                               ".metrics.csv";
  const Status trace_status = run.trace->WriteChromeJson(trace_path);
  const Status csv_status = run.metrics->WriteCsv(csv_path);
  if (trace_status.ok() && csv_status.ok()) {
    std::printf("  [obs] wrote %s and %s\n", trace_path.c_str(),
                csv_path.c_str());
  } else {
    std::printf("  [obs] export failed: %s / %s\n",
                trace_status.ToString().c_str(),
                csv_status.ToString().c_str());
  }
}

/// Machine-readable bench output: ordered key -> value rows written as
/// `BENCH_<name>.json` so CI can track a perf trajectory over commits.
/// The directory comes from UOT_BENCH_JSON_DIR (default: current dir).
/// Values are numbers (Set) or strings (SetString); insertion order is
/// preserved in the emitted object.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& key, double value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    rows_.emplace_back(key, buf);
  }

  void SetString(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    rows_.emplace_back(key, std::move(quoted));
  }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + name_ + "\"";
    for (const auto& [key, value] : rows_) {
      out += ",\n  \"" + key + "\": " + value;
    }
    out += "\n}\n";
    return out;
  }

  /// Writes BENCH_<name>.json and prints where it went (or why not).
  void Write() const {
    const char* dir = std::getenv("UOT_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir != nullptr ? dir : ".") + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("  [bench] cannot write %s\n", path.c_str());
      return;
    }
    const std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("  [bench] wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> rows_;
};

/// Index of the first probe operator consuming the lineitem select's
/// output — the paper's "first consumer operator in the pipeline" (Fig. 5).
/// Returns -1 if the query has no select(lineitem) -> probe chain.
inline int FirstLineitemConsumer(const QueryPlan& plan) {
  int sel_lineitem = -1;
  for (int i = 0; i < plan.num_operators(); ++i) {
    if (plan.op(i)->name() == "sel(lineitem)") {
      sel_lineitem = i;
      break;
    }
  }
  if (sel_lineitem < 0) return -1;
  for (const QueryPlan::StreamingEdge& e : plan.streaming_edges()) {
    if (e.producer == sel_lineitem &&
        plan.op(e.consumer)->name().rfind("probe", 0) == 0) {
      return e.consumer;
    }
  }
  return -1;
}

/// Operators of the select(lineitem) -> probe -> probe ... chain (the
/// paper's "deep operator chains", Fig. 6): the select plus every probe
/// reachable from it over streaming edges.
inline std::vector<int> LineitemChain(const QueryPlan& plan) {
  std::vector<int> chain;
  int current = -1;
  for (int i = 0; i < plan.num_operators(); ++i) {
    if (plan.op(i)->name() == "sel(lineitem)") {
      current = i;
      break;
    }
  }
  if (current < 0) return chain;
  chain.push_back(current);
  bool extended = true;
  while (extended) {
    extended = false;
    for (const QueryPlan::StreamingEdge& e : plan.streaming_edges()) {
      if (e.producer == chain.back() &&
          plan.op(e.consumer)->name().rfind("probe", 0) == 0) {
        chain.push_back(e.consumer);
        extended = true;
        break;
      }
    }
  }
  return chain;
}

/// Wall-clock span (ms) covering the given operators' work orders.
inline double ChainSpanMillis(const ExecutionStats& stats,
                              const std::vector<int>& ops) {
  int64_t first = INT64_MAX, last = 0;
  for (int op : ops) {
    const OperatorStats& os = stats.operators[static_cast<size_t>(op)];
    if (os.num_work_orders == 0) continue;
    first = std::min(first, os.first_start_ns);
    last = std::max(last, os.last_end_ns);
  }
  if (first == INT64_MAX) return 0.0;
  return static_cast<double>(last - first) / 1e6;
}

}  // namespace bench
}  // namespace uot

#endif  // UOT_BENCH_BENCH_UTIL_H_
