// Per-edge UoT policy A/B under a constrained shared memory budget:
// fixed pipelining (1 block) vs a static low-UoT granule (4 blocks) vs
// fixed whole-table vs the CostModelUotChooser's static per-edge picks vs
// the runtime AdaptiveUotPolicy.
//
// Two scenarios:
//  1. Solo: each arm runs TPC-H Q3 and Q7 alone under a budget derived
//     from a calibration run. Shows the static spectrum trade-off
//     (transfers vs footprint) and that the adaptive policy converges to
//     the narrow end when the budget is tight.
//  2. Shared: three companion Q3 queries run concurrently on one Engine
//     and a measured Q3 starts mid-flight, all under one shared budget.
//     The measured query's scan admissions defer whenever the companions'
//     buffered intermediates hold the budget at its start — a static
//     low-UoT granule keeps edges buffering regardless of pressure, while
//     the adaptive policy narrows the companions and frees the headroom.
//
// Emits BENCH_adaptive_uot.json for the CI perf trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/adaptive_uot_policy.h"
#include "exec/engine.h"
#include "model/uot_chooser.h"

namespace {

using namespace uot;
using namespace uot::bench;

constexpr uint64_t kLowUotBlocks = 4;  // the "static low-UoT" granule

struct ArmResult {
  double best_ms = 1e300;
  uint64_t deferrals = 0;
  uint64_t stalls = 0;
  uint64_t adaptations = 0;
  uint64_t transfers = 0;
  int64_t peak_temp_bytes = 0;
};

uint64_t TotalTransfers(const ExecutionStats& stats) {
  uint64_t total = 0;
  for (uint64_t t : stats.edge_transfers) total += t;
  return total;
}

double EnvPercent(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) / 100.0 : def;
}

/// Which UoT configuration an arm runs with.
struct ArmSpec {
  const char* key;    // JSON key fragment
  const char* label;  // console label
  // Exactly one of: scalar fixed value, plan annotations, or adaptive.
  bool adaptive = false;
  const std::vector<UotChoice>* annotations = nullptr;
  UotPolicy fixed = UotPolicy();
};

/// Applies `spec` to a freshly built plan + exec config. Returns the
/// adaptive policy when one was installed (so the caller can share it).
std::shared_ptr<AdaptiveUotPolicy> ApplyArm(
    const ArmSpec& spec, QueryPlan* plan, ExecConfig* exec,
    std::shared_ptr<AdaptiveUotPolicy> shared_policy) {
  if (spec.adaptive) {
    if (shared_policy == nullptr) {
      // Model choices seed the starting granule; plan annotations would
      // pin the edges (they take precedence over any session policy), so
      // the adaptive arm leaves the plan unannotated.
      AdaptiveUotPolicy::Options options;
      std::vector<uint64_t> seeds;
      if (spec.annotations != nullptr) {
        seeds = AdaptiveUotPolicy::SeedsFromChoices(*spec.annotations,
                                                    options.max_blocks);
      }
      shared_policy =
          std::make_shared<AdaptiveUotPolicy>(options, std::move(seeds));
    }
    exec->uot_policy = shared_policy;
    return shared_policy;
  }
  if (spec.annotations != nullptr) {
    CostModelUotChooser::AnnotatePlan(plan, *spec.annotations);
  } else {
    exec->uot = spec.fixed;
  }
  return nullptr;
}

/// Solo scenario: best-of-`runs` executions of one query under `exec_base`.
void RunSoloArm(int query, const TpchDatabase& db,
                const TpchPlanConfig& plan_config, const ExecConfig& exec_base,
                const ArmSpec& spec, int runs, ArmResult* arm) {
  for (int r = 0; r < runs; ++r) {
    auto plan = BuildTpchPlan(query, db, plan_config);
    ExecConfig exec = exec_base;
    // Fresh policy per run: per-(query_id, edge) state must not carry
    // over between what are independent queries to the policy.
    ApplyArm(spec, plan.get(), &exec, nullptr);
    obs::MetricsRegistry metrics;
    exec.metrics = &metrics;
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);

    if (stats.QueryMillis() < arm->best_ms) {
      arm->best_ms = stats.QueryMillis();
      arm->deferrals = stats.budget_deferrals;
      arm->stalls = stats.budget_stalls;
      arm->adaptations = stats.uot_adaptations;
      arm->transfers = TotalTransfers(stats);
      const obs::Gauge* temp =
          metrics.FindGauge("memory.temporary_table.bytes");
      arm->peak_temp_bytes = temp != nullptr ? temp->Max() : 0;
    }
  }
}

/// Shared scenario: `kCompanions` Q3 queries start on one Engine, then the
/// measured Q3 starts `delay_ms` later under the same shared budget. The
/// reported run is the one with the median measured deferral count, so a
/// single lucky or unlucky interleaving does not decide the headline.
constexpr int kCompanions = 3;

void RunSharedArm(const TpchDatabase& db, StorageManager* storage,
                  const TpchPlanConfig& plan_config, const ArmSpec& spec,
                  int64_t shared_budget, double delay_ms, int workers,
                  int runs, ArmResult* arm) {
  struct RunSample {
    double ms;
    ExecutionStats stats;
    int64_t peak_temp;
  };
  std::vector<RunSample> samples;
  for (int r = 0; r < runs; ++r) {
    // System-wide temp peak across companions + measured, straight from
    // the shared tracker: concurrent sessions clobber each other's
    // per-session gauge observers, and the aggregate footprint is the
    // quantity the shared budget actually constrains.
    storage->tracker().ResetPeaks();
    Engine engine(EngineConfig{workers, 0, 0});
    ExecConfig exec_base;
    exec_base.memory_budget_bytes = shared_budget;

    // One policy instance shared by companions and the measured query:
    // adapting to *global* pressure is the point of the scenario.
    std::shared_ptr<AdaptiveUotPolicy> shared_policy;

    std::vector<std::unique_ptr<QueryPlan>> companion_plans;
    std::vector<ExecConfig> companion_execs;
    for (int c = 0; c < kCompanions; ++c) {
      companion_plans.push_back(BuildTpchPlan(3, db, plan_config));
      ExecConfig exec = exec_base;
      // Returns the installed policy for the adaptive arm (first call
      // creates it, later calls reuse it) and nullptr otherwise.
      shared_policy =
          ApplyArm(spec, companion_plans.back().get(), &exec, shared_policy);
      companion_execs.push_back(exec);
    }

    std::vector<std::thread> threads;
    threads.reserve(kCompanions);
    for (int c = 0; c < kCompanions; ++c) {
      threads.emplace_back([&engine, &companion_plans, &companion_execs, c] {
        engine.Execute(companion_plans[static_cast<size_t>(c)].get(),
                       companion_execs[static_cast<size_t>(c)]);
      });
    }

    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int64_t>(delay_ms * 1000.0)));

    auto measured_plan = BuildTpchPlan(3, db, plan_config);
    ExecConfig measured_exec = exec_base;
    ApplyArm(spec, measured_plan.get(), &measured_exec, shared_policy);
    const ExecutionStats stats =
        engine.Execute(measured_plan.get(), measured_exec);
    for (auto& t : threads) t.join();

    samples.push_back(
        RunSample{stats.QueryMillis(), stats,
                  storage->tracker().Peak(MemoryCategory::kTemporaryTable)});
  }

  std::sort(samples.begin(), samples.end(),
            [](const RunSample& a, const RunSample& b) {
              return a.stats.budget_deferrals < b.stats.budget_deferrals;
            });
  const RunSample& median = samples[samples.size() / 2];
  arm->best_ms = median.ms;
  arm->deferrals = median.stats.budget_deferrals;
  arm->stalls = median.stats.budget_stalls;
  arm->adaptations = median.stats.uot_adaptations;
  arm->transfers = TotalTransfers(median.stats);
  arm->peak_temp_bytes = median.peak_temp;
}

void Report(BenchJson* json, const std::string& prefix, const char* label,
            const ArmResult& arm) {
  std::printf("  %-12s %9.2f ms  %6llu deferrals  %6llu stalls  "
              "%6llu transfers  %4llu adaptations  %8.1f KB temp peak\n",
              label, arm.best_ms,
              static_cast<unsigned long long>(arm.deferrals),
              static_cast<unsigned long long>(arm.stalls),
              static_cast<unsigned long long>(arm.transfers),
              static_cast<unsigned long long>(arm.adaptations),
              static_cast<double>(arm.peak_temp_bytes) / 1024.0);
  json->Set(prefix + "_ms", arm.best_ms);
  json->Set(prefix + "_deferrals", static_cast<double>(arm.deferrals));
  json->Set(prefix + "_stalls", static_cast<double>(arm.stalls));
  json->Set(prefix + "_transfers", static_cast<double>(arm.transfers));
  json->Set(prefix + "_adaptations", static_cast<double>(arm.adaptations));
  json->Set(prefix + "_peak_temp_bytes",
            static_cast<double>(arm.peak_temp_bytes));
}

}  // namespace

int main() {
  const double sf = ScaleFactor();
  const int workers = Threads();
  const int runs = Runs();

  std::printf("Adaptive per-edge UoT under a constrained memory budget "
              "(SF=%.3f, %d workers, %d runs)\n",
              sf, workers, runs);

  TpchFixture fixture(sf, Layout::kColumnStore, MidBlockBytes());
  TpchPlanConfig plan_config;
  plan_config.block_bytes = SmallBlockBytes();

  BenchJson json("adaptive_uot");
  json.Set("scale_factor", sf);
  json.Set("workers", workers);

  // Saved Q3 calibration outputs for the shared-budget scenario below.
  std::vector<UotChoice> q3_choices;
  int64_t q3_base = 0, q3_hash = 0, q3_temp = 0;
  double q3_low_ms = 0.0;

  for (const int query : {3, 7}) {
    const std::string q = "q" + std::to_string(query);

    // Calibration: one unconstrained materializing run with intermediates
    // kept, yielding (a) oracle per-edge cardinalities for the chooser and
    // (b) the footprint ceiling the budget is derived from.
    ExecConfig calib;
    calib.num_workers = workers;
    calib.uot = UotPolicy::HighUot();
    calib.drop_consumed_blocks = false;
    fixture.storage()->tracker().ResetPeaks();  // per-query ceilings
    auto calib_plan = BuildTpchPlan(query, fixture.db(), plan_config);
    QueryExecutor::Execute(calib_plan.get(), calib);
    const std::vector<EdgeEstimate> estimates =
        CostModelUotChooser::EstimatesFromExecutedPlan(*calib_plan);

    // Peaks straight from the tracker: the base tables were allocated
    // before any query ran, so the per-run gauges never see them.
    const MemoryTracker& tracker = fixture.storage()->tracker();
    const int64_t base_peak = tracker.Peak(MemoryCategory::kBaseTable);
    const int64_t hash_peak = tracker.Peak(MemoryCategory::kHashTable);
    const int64_t temp_peak = tracker.Peak(MemoryCategory::kTemporaryTable);
    // Free the calibration run's kept intermediates before any arm runs:
    // they would otherwise sit in the temporary-table category for the
    // whole A/B, inflating every arm's footprint by a constant and eating
    // most of the budget headroom the arms are supposed to compete for.
    calib_plan.reset();
    // The budget admits the structural footprint (base tables + hash
    // tables have no UoT-dependent alternative in this engine) plus a
    // slice of the materializing strategy's intermediate peak: wide
    // transfers must defer, narrow ones mostly fit. UOT_BUDGET_SLACK
    // overrides the slice (percent of the materializing temp peak).
    const double slack_frac = EnvPercent("UOT_BUDGET_SLACK", 0.55);
    const int64_t budget =
        base_peak + hash_peak +
        static_cast<int64_t>(static_cast<double>(temp_peak) * slack_frac);

    std::printf("\nQ%d solo: base %.1f KB, hash %.1f KB, temp(materializing) "
                "%.1f KB -> budget %.1f KB\n",
                query, base_peak / 1024.0, hash_peak / 1024.0,
                temp_peak / 1024.0, budget / 1024.0);
    json.Set(q + "_budget_bytes", static_cast<double>(budget));

    // The chooser's budget is the memory its choices can actually spend:
    // the slack above the structural footprint. Handing it the raw engine
    // budget would let the base tables inflate every edge's cap.
    CostModelUotChooser::Options chooser_options;
    chooser_options.threads = workers;
    chooser_options.memory_budget_bytes = budget - base_peak - hash_peak;
    const CostModelUotChooser chooser(chooser_options);
    auto shape_plan = BuildTpchPlan(query, fixture.db(), plan_config);
    const std::vector<UotChoice> choices =
        chooser.ChoosePlan(*shape_plan, estimates);
    for (size_t e = 0; e < choices.size(); ++e) {
      std::printf("  edge %zu: %s\n", e, choices[e].ToString().c_str());
    }

    ExecConfig exec;
    exec.num_workers = workers;
    exec.memory_budget_bytes = budget;

    const ArmSpec arms[] = {
        {"pipeline", "fixed(1)", false, nullptr, UotPolicy::LowUot(1)},
        {"fixed_low", "fixed(4)", false, nullptr,
         UotPolicy::LowUot(kLowUotBlocks)},
        {"whole", "fixed(whole)", false, nullptr, UotPolicy::HighUot()},
        {"model", "model", false, &choices, UotPolicy()},
        {"adaptive", "adaptive", true, &choices, UotPolicy()},
    };
    ArmResult results[5];
    for (int a = 0; a < 5; ++a) {
      RunSoloArm(query, fixture.db(), plan_config, exec, arms[a], runs,
                 &results[a]);
      Report(&json, q + "_" + arms[a].key, arms[a].label, results[a]);
    }
    const ArmResult& fixed_low = results[1];
    const ArmResult& whole = results[2];
    const ArmResult& adaptive = results[4];

    // Solo headline deltas: adaptive vs the static low granule and vs the
    // materializing end.
    json.Set(q + "_adaptive_vs_fixed_low_peak_temp_delta_bytes",
             static_cast<double>(fixed_low.peak_temp_bytes) -
                 static_cast<double>(adaptive.peak_temp_bytes));
    json.Set(q + "_adaptive_vs_whole_peak_temp_ratio",
             adaptive.peak_temp_bytes > 0
                 ? static_cast<double>(whole.peak_temp_bytes) /
                       static_cast<double>(adaptive.peak_temp_bytes)
                 : 0.0);

    if (query == 3) {
      q3_choices = choices;
      q3_base = base_peak;
      q3_hash = hash_peak;
      q3_temp = temp_peak;
      q3_low_ms = fixed_low.best_ms;
    }
  }

  // Shared-budget scenario: kCompanions Q3 queries occupy one Engine, the
  // measured Q3 starts mid-flight. The budget covers the structural
  // footprint of all queries (base tables + every query's hash tables)
  // plus a margin of buffered intermediates; whether the measured query's
  // scans are admitted or deferred depends on how much of that margin the
  // companions' transfer buffers hold at its start. UOT_SHARED_MARGIN
  // overrides the margin (percent of the companions' combined
  // materializing temp peak); UOT_SHARED_DELAY the start offset (percent
  // of the solo fixed-low runtime).
  const double margin_frac = EnvPercent("UOT_SHARED_MARGIN", 0.08);
  const double delay_frac = EnvPercent("UOT_SHARED_DELAY", 0.35);
  const int64_t margin = static_cast<int64_t>(
      margin_frac * static_cast<double>(kCompanions) *
      static_cast<double>(q3_temp));
  const int64_t shared_budget =
      q3_base + (kCompanions + 1) * q3_hash + margin;
  const double delay_ms = delay_frac * q3_low_ms;

  std::printf("\nQ3 shared: %d companions + measured, margin %.1f KB, "
              "budget %.1f KB, start delay %.2f ms\n",
              kCompanions, margin / 1024.0, shared_budget / 1024.0, delay_ms);
  json.Set("q3_shared_budget_bytes", static_cast<double>(shared_budget));

  const ArmSpec shared_arms[] = {
      {"pipeline", "fixed(1)", false, nullptr, UotPolicy::LowUot(1)},
      {"fixed_low", "fixed(4)", false, nullptr,
       UotPolicy::LowUot(kLowUotBlocks)},
      {"whole", "fixed(whole)", false, nullptr, UotPolicy::HighUot()},
      {"model", "model", false, &q3_choices, UotPolicy()},
      {"adaptive", "adaptive", true, &q3_choices, UotPolicy()},
  };
  ArmResult shared_results[5];
  for (int a = 0; a < 5; ++a) {
    RunSharedArm(fixture.db(), fixture.storage(), plan_config,
                 shared_arms[a], shared_budget, delay_ms, workers, runs,
                 &shared_results[a]);
    Report(&json, std::string("q3_shared_") + shared_arms[a].key,
           shared_arms[a].label, shared_results[a]);
  }

  // The acceptance headlines: the measured Q3 under the adaptive policy
  // vs the static low-UoT granule (deferrals, stalls — the duration-like
  // budget-pressure signal — and the system footprint the shared budget
  // constrains), plus vs the materializing end whose buffered
  // intermediates force the measured query's scans to defer outright.
  json.Set("q3_shared_adaptive_vs_fixed_low_deferral_delta",
           static_cast<double>(shared_results[1].deferrals) -
               static_cast<double>(shared_results[4].deferrals));
  json.Set("q3_shared_adaptive_vs_fixed_low_stall_delta",
           static_cast<double>(shared_results[1].stalls) -
               static_cast<double>(shared_results[4].stalls));
  json.Set("q3_shared_adaptive_vs_fixed_low_peak_temp_delta_bytes",
           static_cast<double>(shared_results[1].peak_temp_bytes) -
               static_cast<double>(shared_results[4].peak_temp_bytes));
  json.Set("q3_shared_adaptive_vs_whole_deferral_delta",
           static_cast<double>(shared_results[2].deferrals) -
               static_cast<double>(shared_results[4].deferrals));

  json.Write();
  std::printf("\nTarget: under the shared budget the measured Q3 completes "
              "with a lower system footprint and fewer budget stalls than "
              "the static low-UoT granule, without the forced scan "
              "deferrals of the materializing end.\n");
  return 0;
}
