// Micro-benchmarks of the storage substrate: block append and single-
// attribute scans under both layouts (the paper's Section IV-B dimension).

#include <benchmark/benchmark.h>

#include "storage/block.h"
#include "types/row_builder.h"

namespace uot {
namespace {

Schema WideSchema() {
  return Schema({{"a", Type::Int32()},
                 {"b", Type::Double()},
                 {"c", Type::Date()},
                 {"pad", Type::Char(84)}});  // 100-byte tuples
}

void FillBlock(Block* block) {
  const Schema& s = block->schema();
  RowBuilder row(&s);
  for (uint32_t i = 0; !block->Full(); ++i) {
    row.SetInt32(0, static_cast<int32_t>(i));
    row.SetDouble(1, i * 1.5);
    row.SetDate(2, static_cast<int32_t>(9000 + i % 365));
    block->AppendRow(row.data());
  }
}

void BM_BlockAppend(benchmark::State& state) {
  const Schema schema = WideSchema();
  const Layout layout = static_cast<Layout>(state.range(0));
  RowBuilder row(&schema);
  row.SetInt32(0, 7);
  row.SetDouble(1, 1.25);
  for (auto _ : state) {
    Block block(1, &schema, layout, 2 * 1024 * 1024);
    while (block.AppendRow(row.data())) {
    }
    benchmark::DoNotOptimize(block.num_rows());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          2 * 1024 * 1024);
}
BENCHMARK(BM_BlockAppend)->Arg(0)->Arg(1)->ArgName("layout");

void BM_SingleAttributeScan(benchmark::State& state) {
  const Schema schema = WideSchema();
  const Layout layout = static_cast<Layout>(state.range(0));
  Block block(1, &schema, layout, 2 * 1024 * 1024);
  FillBlock(&block);
  for (auto _ : state) {
    const ColumnAccess access = block.Column(1);
    double sum = 0;
    for (uint32_t r = 0; r < block.num_rows(); ++r) {
      double v;
      std::memcpy(&v, access.at(r), 8);
      sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          block.num_rows());
}
BENCHMARK(BM_SingleAttributeScan)->Arg(0)->Arg(1)->ArgName("layout");

void BM_FullRowExtraction(benchmark::State& state) {
  const Schema schema = WideSchema();
  const Layout layout = static_cast<Layout>(state.range(0));
  Block block(1, &schema, layout, 512 * 1024);
  FillBlock(&block);
  std::vector<std::byte> row(schema.row_width());
  for (auto _ : state) {
    for (uint32_t r = 0; r < block.num_rows(); ++r) {
      block.GetRow(r, row.data());
      benchmark::DoNotOptimize(row.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          block.num_rows());
}
BENCHMARK(BM_FullRowExtraction)->Arg(0)->Arg(1)->ArgName("layout");

}  // namespace
}  // namespace uot

BENCHMARK_MAIN();
