// Reproduces Table VI: average task execution times (ms) for the select,
// build-hash and probe-hash operators with the hardware prefetcher enabled
// ("Yes") and disabled ("No"), row-store format, three block sizes.
//
// Substitution (DESIGN.md): instead of toggling MSR 0x1A4, the operators'
// memory access patterns are replayed through the cache/prefetcher
// simulator calibrated to the paper's Haswell platform.

#include <cstdio>

#include "simcache/access_streams.h"
#include "simcache/cache_simulator.h"
#include "util/random.h"

namespace {

using uot::CacheSimConfig;
using uot::CacheSimulator;
using uot::Random;
using uot::TaskTraceConfig;

double AvgTaskMs(const char* op, uint64_t block_bytes, bool prefetch) {
  CacheSimConfig config;  // Haswell-like: 32K/256K/25M, 90ns memory
  config.prefetch_enabled = prefetch;
  CacheSimulator sim(config);
  Random rng(42);
  TaskTraceConfig trace;
  trace.block_bytes = block_bytes;
  trace.tuple_bytes = 145;  // row-store lineitem tuple
  trace.attr_bytes = 8;
  trace.hash_table_bytes = 64ULL * 1024 * 1024;  // well beyond L3
  trace.bucket_probes = 2;

  const int kTasks = 3;
  double total_ns = 0;
  for (int t = 0; t < kTasks; ++t) {
    if (op[0] == 's') {
      total_ns += SimulateSelectTask(&sim, trace, &rng, 0.3);
    } else if (op[0] == 'b') {
      total_ns += SimulateBuildTask(&sim, trace, &rng);
    } else {
      total_ns += SimulateProbeTask(&sim, trace, &rng, 0.5);
    }
    trace.input_base += trace.block_bytes + (1 << 20);  // fresh input block
  }
  return total_ns / kTasks / 1e6;
}

}  // namespace

int main() {
  std::printf("Table VI: average task times (ms) with prefetching enabled "
              "(Yes) / disabled (No), row store\n");
  std::printf("(cache/prefetcher simulator substitute for the MSR 0x1A4 "
              "experiment — see DESIGN.md)\n\n");

  std::printf("%-10s | %8s %8s | %8s %8s | %8s %8s\n", "Block size",
              "Sel Yes", "Sel No", "Bld Yes", "Bld No", "Prb Yes", "Prb No");
  for (const uint64_t block :
       {uint64_t{128 * 1024}, uint64_t{512 * 1024},
        uint64_t{2 * 1024 * 1024}}) {
    const double sel_yes = AvgTaskMs("select", block, true);
    const double sel_no = AvgTaskMs("select", block, false);
    const double bld_yes = AvgTaskMs("build", block, true);
    const double bld_no = AvgTaskMs("build", block, false);
    const double prb_yes = AvgTaskMs("probe", block, true);
    const double prb_no = AvgTaskMs("probe", block, false);
    std::printf("%-10s | %8.3f %8.3f | %8.3f %8.3f | %8.3f %8.3f\n",
                block >= 1024 * 1024 ? "2MB"
                                     : (block == 128 * 1024 ? "128KB"
                                                            : "512KB"),
                sel_yes, sel_no, bld_yes, bld_no, prb_yes, prb_no);
  }
  std::printf("\nPaper (SF 50, ms): 128KB 0.06/0.08 | 2.0/1.9 | 0.8/0.8; "
              "512KB 0.2/0.3 | 8.5/7.6 | 2.2/0.9; "
              "2MB 1.1/1.5 | 38.0/32.7 | 3.9/3.1\n");
  std::printf("Shape to reproduce: prefetching helps the sequential select "
              "but worsens (or fails to help) build and probe, whose mixed "
              "sequential+random streams defeat the stride detector.\n");
  return 0;
}
