// Reproduces Fig. 3: the distribution of query execution time across
// operators for the TPC-H queries (column store, high UoT value), showing
// the dominant and second-most-dominant operator shares.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Fig 3: per-operator share of TPC-H query time "
              "(column store, UoT = whole table, SF=%.3f, %d workers)\n\n",
              sf, Threads());

  TpchFixture fixture(sf, Layout::kColumnStore, 2 * 1024 * 1024);
  TpchPlanConfig plan_config;
  plan_config.block_bytes = 2 * 1024 * 1024;

  ExecConfig exec;
  exec.num_workers = Threads();
  exec.uot = UotPolicy::HighUot();

  std::printf("%-5s %-22s %9s %9s %s\n", "Query", "dominant operator",
              "top-1 %", "top-2 %", "dominant is leaf?");
  for (int query : SupportedTpchQueries()) {
    QueryTiming t = TimeQuery(query, fixture.db(), plan_config, exec, 1);
    // Leaf operators are those with no incoming streaming edge (they read
    // base tables directly). Plans are deterministic, so the shape plan's
    // indices match the timed run's.
    auto shape = BuildTpchPlan(query, fixture.db(), plan_config);
    std::vector<bool> is_leaf(static_cast<size_t>(shape->num_operators()),
                              true);
    for (const QueryPlan::StreamingEdge& e : shape->streaming_edges()) {
      is_leaf[static_cast<size_t>(e.consumer)] = false;
    }
    std::vector<std::pair<double, int>> shares;
    double total = 0;
    for (size_t i = 0; i < t.stats.operators.size(); ++i) {
      shares.emplace_back(t.stats.operators[i].total_task_ms(),
                          static_cast<int>(i));
      total += t.stats.operators[i].total_task_ms();
    }
    std::sort(shares.rbegin(), shares.rend());
    if (total <= 0) continue;
    const double top1 = 100.0 * shares[0].first / total;
    const double top2 =
        shares.size() > 1 ? 100.0 * shares[1].first / total : 0.0;
    const int top_op = shares[0].second;
    std::printf("Q%-4d %-22s %8.1f%% %8.1f%% %s\n", query,
                t.stats.operators[static_cast<size_t>(top_op)].name.c_str(),
                top1, top2,
                is_leaf[static_cast<size_t>(top_op)] ? "yes" : "no");
  }
  std::printf("\nPaper: Q1, Q6, Q13, Q14, Q15, Q19, Q22 spend >50%% in one "
              "dominant (often leaf) operator.\n");
  return 0;
}
