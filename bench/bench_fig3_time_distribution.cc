// Reproduces Fig. 3: the distribution of query execution time across
// operators for the TPC-H queries (column store, high UoT value), showing
// the dominant and second-most-dominant operator shares.
//
// Per-operator task times come from the observability layer's
// MetricsRegistry ("scheduler.op.<i>.task_ns" counters) rather than
// hand-rolled ExecutionStats aggregation; set UOT_OBS_DIR to also dump
// each query's Perfetto trace and metrics CSV.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Fig 3: per-operator share of TPC-H query time "
              "(column store, UoT = whole table, SF=%.3f, %d workers)\n\n",
              sf, Threads());

  TpchFixture fixture(sf, Layout::kColumnStore, 2 * 1024 * 1024);
  TpchPlanConfig plan_config;
  plan_config.block_bytes = 2 * 1024 * 1024;

  ExecConfig exec;
  exec.num_workers = Threads();
  exec.uot = UotPolicy::HighUot();

  std::printf("%-5s %-22s %9s %9s %s\n", "Query", "dominant operator",
              "top-1 %", "top-2 %", "dominant is leaf?");
  for (int query : SupportedTpchQueries()) {
    ObservedRun run = RunObserved(query, fixture.db(), plan_config, exec);
    // Leaf operators are those with no incoming streaming edge (they read
    // base tables directly).
    const QueryPlan& plan = *run.plan;
    std::vector<bool> is_leaf(static_cast<size_t>(plan.num_operators()),
                              true);
    for (const QueryPlan::StreamingEdge& e : plan.streaming_edges()) {
      is_leaf[static_cast<size_t>(e.consumer)] = false;
    }
    std::vector<std::pair<double, int>> shares;
    double total = 0;
    for (int i = 0; i < plan.num_operators(); ++i) {
      const double task_ms = run.OpTaskMillis(i);
      shares.emplace_back(task_ms, i);
      total += task_ms;
    }
    std::sort(shares.rbegin(), shares.rend());
    MaybeExportObs(run, "fig3_q" + std::to_string(query));
    if (total <= 0) continue;
    const double top1 = 100.0 * shares[0].first / total;
    const double top2 =
        shares.size() > 1 ? 100.0 * shares[1].first / total : 0.0;
    const int top_op = shares[0].second;
    std::printf("Q%-4d %-22s %8.1f%% %8.1f%% %s\n", query,
                plan.op(top_op)->name().c_str(), top1, top2,
                is_leaf[static_cast<size_t>(top_op)] ? "yes" : "no");
  }
  std::printf("\nPaper: Q1, Q6, Q13, Q14, Q15, Q19, Q22 spend >50%% in one "
              "dominant (often leaf) operator.\n");
  return 0;
}
