// Reproduces Table IV: selectivity, projectivity and total memory
// reduction of the selection on orders (Q03, Q04, Q05, Q08, Q10, Q21).

#include <cstdio>

#include "bench_util.h"
#include "tpch/tpch_analysis.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Table IV: memory reduction with input table orders "
              "(SF=%.3f)\n\n", sf);
  TpchFixture fixture(sf, Layout::kColumnStore, 1 << 20);
  const auto rows = AnalyzeOrdersReductions(fixture.db());
  std::printf("%s\n", RenderReductionTable(rows, "orders").c_str());
  std::printf("Paper (SF 50): Q03 48.6/8.7/4.2, Q04 3.8/10.9/0.4, "
              "Q05 15.2/5.8/0.9, Q08 30.4/11.6/3.5, Q10 3.8/5.8/0.2, "
              "Q21 48.7/2.9/1.4, Avg 25.1/7.6/1.8\n");
  return 0;
}
