// Reproduces Fig. 8: TPC-H query execution times for the row-store format
// at a 2 MB block size, low vs high UoT (plus the column-store comparison
// the paper draws against Fig. 7b).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  const size_t block_bytes = LargeBlockBytes();  // paper: 2MB, scaled
  std::printf("Fig 8: TPC-H query times (ms), row store, large blocks "
              "(SF=%.3f, %d workers)\n\n", sf, Threads());

  TpchFixture row_fixture(sf, Layout::kRowStore, block_bytes);
  TpchFixture col_fixture(sf, Layout::kColumnStore, block_bytes);
  TpchPlanConfig plan_config;
  plan_config.block_bytes = block_bytes;

  std::printf("%-5s %12s %12s %10s %14s\n", "Query", "low UoT", "high UoT",
              "low/high", "col-store low");
  for (int query : SupportedTpchQueries()) {
    double ms[2] = {0, 0};
    int idx = 0;
    for (const bool whole_table : {false, true}) {
      ExecConfig exec;
      exec.num_workers = Threads();
      exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
      ms[idx++] = TimeQuery(query, row_fixture.db(), plan_config, exec,
                            Runs())
                      .best_mean_ms;
    }
    ExecConfig exec;
    exec.num_workers = Threads();
    exec.uot = UotPolicy::LowUot(1);
    const double col_ms =
        TimeQuery(query, col_fixture.db(), plan_config, exec, Runs())
            .best_mean_ms;
    std::printf("Q%-4d %12.2f %12.2f %9.2fx %14.2f\n", query, ms[0], ms[1],
                ms[0] / ms[1], col_ms);
  }
  std::printf("\nPaper: row-store query performance is unaffected by the "
              "UoT choice; queries run faster on the column store.\n");
  return 0;
}
