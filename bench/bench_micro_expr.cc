// Micro-benchmarks of vectorized predicate evaluation: selection-vector
// filtering throughput at different selectivities and layouts.

#include <benchmark/benchmark.h>

#include "expr/predicate.h"
#include "types/row_builder.h"

namespace uot {
namespace {

std::unique_ptr<Block> MakeBlock(const Schema* schema, Layout layout) {
  auto block = std::make_unique<Block>(1, schema, layout, 1 << 20);
  RowBuilder row(schema);
  for (uint32_t i = 0; !block->Full(); ++i) {
    row.SetInt32(0, static_cast<int32_t>(i % 100));
    row.SetDouble(1, i * 0.5);
    block->AppendRow(row.data());
  }
  return block;
}

void BM_FilterSelectivity(benchmark::State& state) {
  static const Schema schema({{"k", Type::Int32()}, {"v", Type::Double()}});
  const Layout layout = static_cast<Layout>(state.range(0));
  const int32_t threshold = static_cast<int32_t>(state.range(1));
  auto block = MakeBlock(&schema, layout);
  auto pred = Cmp(CompareOp::kLt, Col(0, Type::Int32()),
                  Lit(TypedValue::Int32(threshold), Type::Int32()));
  for (auto _ : state) {
    const auto sel = pred->FilterAll(*block);
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          block->num_rows());
}
BENCHMARK(BM_FilterSelectivity)
    ->Args({0, 5})
    ->Args({0, 50})
    ->Args({0, 95})
    ->Args({1, 5})
    ->Args({1, 50})
    ->Args({1, 95})
    ->ArgNames({"layout", "sel%"});

void BM_ConjunctiveFilter(benchmark::State& state) {
  static const Schema schema({{"k", Type::Int32()}, {"v", Type::Double()}});
  auto block = MakeBlock(&schema, Layout::kColumnStore);
  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(Cmp(CompareOp::kGe, Col(0, Type::Int32()),
                      Lit(TypedValue::Int32(10), Type::Int32())));
  parts.push_back(Cmp(CompareOp::kLt, Col(0, Type::Int32()),
                      Lit(TypedValue::Int32(60), Type::Int32())));
  parts.push_back(Cmp(CompareOp::kLt, Col(1, Type::Double()),
                      LitDouble(1e6)));
  auto pred = And(std::move(parts));
  for (auto _ : state) {
    const auto sel = pred->FilterAll(*block);
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          block->num_rows());
}
BENCHMARK(BM_ConjunctiveFilter);

void BM_RevenueExpression(benchmark::State& state) {
  static const Schema schema({{"k", Type::Int32()}, {"v", Type::Double()}});
  auto block = MakeBlock(&schema, Layout::kColumnStore);
  auto expr = Mul(Col(1, Type::Double()),
                  Sub(LitDouble(1.0), LitDouble(0.04)));
  std::vector<uint32_t> rows(block->num_rows());
  for (uint32_t i = 0; i < rows.size(); ++i) rows[i] = i;
  std::vector<double> out(rows.size());
  for (auto _ : state) {
    expr->Eval(*block, rows.data(), static_cast<uint32_t>(rows.size()),
               reinterpret_cast<std::byte*>(out.data()));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          block->num_rows());
}
BENCHMARK(BM_RevenueExpression);

}  // namespace
}  // namespace uot

BENCHMARK_MAIN();
