// Tests the paper's untested Section V-B hypothesis. The paper writes:
// "For nested loops join, the UoT values determine how often there are
// cache misses due to context switches for the outer relation. ... we
// hypothesize that the performance for high UoT values and low UoT values
// will be similar, as the cost of cache misses resulting from context
// switches would be offset by the other access pattern that is sequential"
// — and footnote 1 admits they could not validate it because Quickstep's
// optimizer produces no such plans. This engine can build them directly.

#include <cstdio>
#include <cstdlib>

#include "exec/query_executor.h"
#include "operators/nested_loops_join_operator.h"
#include "operators/select_operator.h"
#include "types/row_builder.h"

namespace uot {
namespace {

struct NljPlan {
  std::unique_ptr<QueryPlan> plan;
  int nlj_op = -1;
};

/// sigma(outer) -> nested-loops-join(inner): the UoT applies to the
/// select -> NLJ streaming edge, exactly like the select -> probe pair of
/// Section V.
NljPlan MakePlan(StorageManager* storage, const Table& outer,
                 const Table& inner, size_t block_bytes) {
  NljPlan np;
  np.plan = std::make_unique<QueryPlan>(storage);
  QueryPlan* plan = np.plan.get();

  auto proj = Projection::Identity(outer.schema(), {0, 1});
  Schema sel_schema = proj->output_schema();
  Table* sel_out = plan->CreateTempTable("sel.out", sel_schema,
                                         Layout::kRowStore, block_bytes);
  InsertDestination* sel_dest = plan->CreateDestination(sel_out);
  auto select = std::make_unique<SelectOperator>(
      "sel(outer)", std::make_unique<TruePredicate>(), std::move(proj),
      sel_dest);
  select->AttachBaseTable(&outer);
  const int select_op = plan->AddOperator(std::move(select));
  plan->RegisterOutput(select_op, sel_dest);

  Schema out_schema = NestedLoopsJoinOperator::OutputSchema(
      sel_schema, {0, 1}, inner.schema(), {1});
  Table* join_out = plan->CreateTempTable("nlj.out", out_schema,
                                          Layout::kRowStore, block_bytes);
  InsertDestination* join_dest = plan->CreateDestination(join_out);
  auto nlj = std::make_unique<NestedLoopsJoinOperator>(
      "nlj(inner)", &inner, std::vector<int>{0}, std::vector<int>{0},
      std::vector<int>{0, 1}, std::vector<int>{1}, join_dest);
  np.nlj_op = plan->AddOperator(std::move(nlj));
  plan->RegisterOutput(np.nlj_op, join_dest);
  plan->AddStreamingEdge(select_op, np.nlj_op);
  plan->SetResultTable(join_out);
  return np;
}

}  // namespace
}  // namespace uot

int main() {
  using namespace uot;
  const char* rows_env = std::getenv("UOT_NLJ_ROWS");
  const int64_t outer_rows =
      rows_env != nullptr ? std::atoll(rows_env) : 60000;
  const int64_t inner_rows = 400;

  std::printf("Section V-B hypothesis (untested in the paper): nested-"
              "loops join performance is similar under low and high UoT\n");
  std::printf("(outer: %lld rows streamed through sigma; inner: %lld rows "
              "scanned sequentially per outer block)\n\n",
              static_cast<long long>(outer_rows),
              static_cast<long long>(inner_rows));

  StorageManager storage;
  Schema schema({{"k", Type::Int32()}, {"v", Type::Double()}});
  Table outer("outer", schema, Layout::kColumnStore, 64 * 1024, &storage,
              MemoryCategory::kBaseTable);
  Table inner("inner", schema, Layout::kColumnStore, 64 * 1024, &storage,
              MemoryCategory::kBaseTable);
  RowBuilder row(&schema);
  for (int64_t i = 0; i < outer_rows; ++i) {
    row.SetInt32(0, static_cast<int32_t>(i % (inner_rows * 4)));
    row.SetDouble(1, static_cast<double>(i));
    outer.AppendRow(row.data());
  }
  for (int64_t i = 0; i < inner_rows; ++i) {
    row.SetInt32(0, static_cast<int32_t>(i));
    row.SetDouble(1, static_cast<double>(i));
    inner.AppendRow(row.data());
  }

  std::printf("%-10s %14s %14s %14s %10s\n", "block", "low UoT (ms)",
              "high UoT (ms)", "per-task low", "low/high");
  for (const size_t block : {size_t{8 * 1024}, size_t{64 * 1024}}) {
    double query_ms[2], task_ms[2];
    int idx = 0;
    for (const bool whole_table : {false, true}) {
      double best = 1e300, best_task = 0;
      for (int run = 0; run < 3; ++run) {
        auto np = MakePlan(&storage, outer, inner, block);
        ExecConfig exec;
        exec.num_workers = 1;
        exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
        const ExecutionStats stats =
            QueryExecutor::Execute(np.plan.get(), exec);
        if (stats.QueryMillis() < best) {
          best = stats.QueryMillis();
          best_task = stats.operators[static_cast<size_t>(np.nlj_op)]
                          .avg_task_ms();
        }
      }
      query_ms[idx] = best;
      task_ms[idx] = best_task;
      ++idx;
    }
    std::printf("%-10zu %14.2f %14.2f %14.4f %9.2fx\n", block, query_ms[0],
                query_ms[1], task_ms[0], query_ms[0] / query_ms[1]);
  }
  std::printf("\nHypothesis holds if low/high stays close to 1.0: the "
              "inner relation's sequential scan dominates and re-warms the "
              "caches regardless of how the outer blocks arrive.\n");
  return 0;
}
