// Fused tuple-at-a-time pipelines vs the vectorized spectrum (ISSUE 9
// satellite): a Q3-shaped select -> probe -> probe -> aggregate chain over
// synthetic wide-row tables, run three ways --
//   materialize      whole-table UoT on every edge (the paper's wide end)
//   vectorized-best  CostModelUotChooser's per-edge UoT picks
//   fused            the chain collapsed into single work orders per morsel
//                    (zero intermediate-block materialization)
// -- at two working-set sizes: in-cache (intermediates fit in LLC) and
// out-of-cache (they do not, so the vectorized arms pay memory bandwidth
// for every intermediate row the fused arm never writes).
//
// Also reports CostModelUotChooser::ChooseFusedChain's verdict for each
// scenario so CI can check the model picks fused exactly where fused wins.
//
// Emits BENCH_fused_pipeline.json. UOT_FUSED_BENCH_SMALL=1 shrinks the
// tables for the CI smoke arm; UOT_THREADS / UOT_RUNS as usual.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "types/row_builder.h"
#include "expr/predicate.h"
#include "expr/projection.h"
#include "fused/pipeline_fuser.h"
#include "model/uot_chooser.h"
#include "plan/plan_builder.h"

namespace {

using namespace uot;
using namespace uot::bench;

/// Extra double payload columns on the fact table: wide intermediate rows
/// are where fusion pays (every byte of them is materialization traffic
/// the vectorized arms must spend and the fused arm skips).
constexpr int kPayloadCols = 6;
constexpr int32_t kFanout = 64;

std::unique_ptr<Table> MakeFactTable(StorageManager* storage,
                                     const std::string& name, uint64_t rows,
                                     size_t block_bytes) {
  std::vector<Column> cols = {{"k", Type::Int32()}, {"v", Type::Double()}};
  for (int p = 0; p < kPayloadCols; ++p) {
    cols.push_back({"p" + std::to_string(p), Type::Double()});
  }
  Schema schema(std::move(cols));
  auto table = std::make_unique<Table>(name, schema, Layout::kColumnStore,
                                       block_bytes, storage,
                                       MemoryCategory::kBaseTable);
  RowBuilder row(&table->schema());
  for (uint64_t i = 0; i < rows; ++i) {
    row.SetInt32(0, static_cast<int32_t>(i % kFanout));
    row.SetDouble(1, static_cast<double>(i));
    for (int p = 0; p < kPayloadCols; ++p) {
      row.SetDouble(2 + p, static_cast<double>(i + p));
    }
    table->AppendRow(row.data());
  }
  return table;
}

std::unique_ptr<Table> MakeDimTable(StorageManager* storage,
                                    const std::string& name,
                                    size_t block_bytes) {
  Schema schema({{"k", Type::Int32()}, {"d", Type::Double()}});
  auto table = std::make_unique<Table>(name, schema, Layout::kColumnStore,
                                       block_bytes, storage,
                                       MemoryCategory::kBaseTable);
  RowBuilder row(&table->schema());
  for (int32_t i = 0; i < kFanout; ++i) {
    row.SetInt32(0, i);
    row.SetDouble(1, static_cast<double>(i) * 0.5);
    table->AppendRow(row.data());
  }
  return table;
}

/// The Q3 shape: sel(fact, v <= threshold) -> probe(dim1) -> probe(dim2)
/// -> agg(group by k: count, sum(v), sum(p0)). `fuse` adds the explicit
/// fused-pipeline annotation over the whole chain.
std::unique_ptr<QueryPlan> MakeChainPlan(StorageManager* storage,
                                         const Table& fact, const Table& dim1,
                                         const Table& dim2, double threshold,
                                         size_t block_bytes, bool fuse) {
  PlanBuilderConfig config;
  config.block_bytes = block_bytes;
  PlanBuilder builder(storage, config);
  BuildHashOperator* build1 =
      builder.Build("build1", PlanBuilder::Base(dim1), {0}, {1});
  BuildHashOperator* build2 =
      builder.Build("build2", PlanBuilder::Base(dim2), {0}, {1});

  std::vector<int> all_cols;
  for (int c = 0; c < 2 + kPayloadCols; ++c) all_cols.push_back(c);
  PlanBuilder::Src sel = builder.Select(
      "sel", PlanBuilder::Base(fact),
      Cmp(CompareOp::kLe, Col(1, Type::Double()), LitDouble(threshold)),
      Projection::Identity(fact.schema(), all_cols));
  PlanBuilder::Src probe1 = builder.Probe("probe1", sel, build1, {0}, all_cols);
  std::vector<int> probe1_cols = all_cols;
  probe1_cols.push_back(2 + kPayloadCols);  // dim1 payload rides along
  PlanBuilder::Src probe2 =
      builder.Probe("probe2", probe1, build2, {0}, probe1_cols);

  std::vector<AggSpec> aggs;
  aggs.push_back({AggFn::kCount, nullptr, "cnt"});
  aggs.push_back({AggFn::kSum, Col(1, Type::Double()), "sum_v"});
  aggs.push_back({AggFn::kSum, Col(2, Type::Double()), "sum_p0"});
  PlanBuilder::Src agg =
      builder.Aggregate("agg", probe2, {0}, std::move(aggs));
  if (fuse) builder.AnnotateFusedPipeline({sel, probe1, probe2, agg});
  return builder.Finish(agg);
}

struct ArmResult {
  double best_ms = 1e300;
  uint64_t transfers = 0;
  uint64_t bytes_delivered = 0;
};

uint64_t TotalTransfers(const ExecutionStats& stats) {
  uint64_t total = 0;
  for (const EdgeStats& e : stats.edges) total += e.transfers;
  return total;
}

uint64_t TotalBytesDelivered(const ExecutionStats& stats) {
  uint64_t total = 0;
  for (const EdgeStats& e : stats.edges) total += e.bytes_delivered;
  return total;
}

/// One scenario (one fact-table size): calibrate, model-choose, run the
/// three arms best-of-`runs`, report wall clock + transfer volume + the
/// model's fused-vs-vectorized verdict.
void RunScenario(const std::string& key, uint64_t rows, size_t block_bytes,
                 int workers, int runs, BenchJson* json) {
  StorageManager storage;
  auto fact = MakeFactTable(&storage, "fact", rows, block_bytes);
  auto dim1 = MakeDimTable(&storage, "dim1", block_bytes);
  auto dim2 = MakeDimTable(&storage, "dim2", block_bytes);
  const double threshold = static_cast<double>(rows) * 0.9;

  const uint64_t row_width = fact->schema().row_width();
  std::printf("\n%s: %llu rows x %llu B (%.1f MB fact), blocks %s\n",
              key.c_str(), static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(row_width),
              static_cast<double>(rows * row_width) / 1e6,
              HumanBytes(block_bytes).c_str());
  json->Set(key + "_rows", static_cast<double>(rows));

  // Calibration: one materializing run with intermediates kept gives
  // oracle per-edge cardinalities for both choosers.
  auto calib_plan = MakeChainPlan(&storage, *fact, *dim1, *dim2, threshold,
                                  block_bytes, /*fuse=*/false);
  ExecConfig calib;
  calib.num_workers = workers;
  calib.uot = UotPolicy::HighUot();
  calib.drop_consumed_blocks = false;
  QueryExecutor::Execute(calib_plan.get(), calib);
  const std::vector<EdgeEstimate> estimates =
      CostModelUotChooser::EstimatesFromExecutedPlan(*calib_plan);

  CostModelUotChooser::Options chooser_options;
  chooser_options.threads = workers;
  const CostModelUotChooser chooser(chooser_options);
  const std::vector<UotChoice> choices =
      chooser.ChoosePlan(*calib_plan, estimates);

  // The model's fused-vs-vectorized call over the detected chain.
  const std::vector<std::vector<int>> chains =
      fused::PipelineFuser::DetectFusablePipelines(*calib_plan);
  FusedChoice verdict;
  if (!chains.empty()) {
    verdict = chooser.ChooseFusedChain(*calib_plan, chains.front(), estimates);
    std::printf("  model: %s\n", verdict.ToString().c_str());
  }
  json->Set(key + "_model_chose_fused", verdict.fuse ? 1.0 : 0.0);
  json->Set(key + "_model_fused_cost_ns", verdict.fused_cost_ns);
  json->Set(key + "_model_vectorized_cost_ns", verdict.vectorized_cost_ns);
  calib_plan.reset();

  struct Arm {
    const char* key;
    const char* label;
    bool fuse;
    bool materialize;
  };
  const Arm arms[] = {
      {"materialize", "materialize", false, true},
      {"vectorized", "vectorized-best", false, false},
      {"fused", "fused", true, false},
  };
  ArmResult results[3];
  for (int a = 0; a < 3; ++a) {
    for (int r = 0; r < runs; ++r) {
      auto plan = MakeChainPlan(&storage, *fact, *dim1, *dim2, threshold,
                                block_bytes, arms[a].fuse);
      ExecConfig exec;
      exec.num_workers = workers;
      if (arms[a].fuse) {
        exec.pipeline_mode = PipelineMode::kFused;
      } else if (arms[a].materialize) {
        exec.uot = UotPolicy::HighUot();
      } else {
        CostModelUotChooser::AnnotatePlan(plan.get(), choices);
      }
      const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
      if (stats.QueryMillis() < results[a].best_ms) {
        results[a].best_ms = stats.QueryMillis();
        results[a].transfers = TotalTransfers(stats);
        results[a].bytes_delivered = TotalBytesDelivered(stats);
      }
    }
    std::printf("  %-16s %9.2f ms  %6llu transfers  %10.1f KB delivered\n",
                arms[a].label, results[a].best_ms,
                static_cast<unsigned long long>(results[a].transfers),
                static_cast<double>(results[a].bytes_delivered) / 1024.0);
    const std::string prefix = key + "_" + arms[a].key;
    json->Set(prefix + "_ms", results[a].best_ms);
    json->Set(prefix + "_transfers",
              static_cast<double>(results[a].transfers));
    json->Set(prefix + "_bytes_delivered",
              static_cast<double>(results[a].bytes_delivered));
  }
  json->Set(key + "_fused_speedup_vs_vectorized",
            results[2].best_ms > 0.0 ? results[1].best_ms / results[2].best_ms
                                     : 0.0);
  json->Set(key + "_fused_speedup_vs_materialize",
            results[2].best_ms > 0.0 ? results[0].best_ms / results[2].best_ms
                                     : 0.0);
}

}  // namespace

int main() {
  const int workers = Threads();
  const int runs = Runs();
  const bool small = std::getenv("UOT_FUSED_BENCH_SMALL") != nullptr;

  std::printf("Fused pipeline vs vectorized spectrum "
              "(%d workers, %d runs%s)\n",
              workers, runs, small ? ", SMALL smoke sizes" : "");

  BenchJson json("fused_pipeline");
  json.Set("workers", workers);
  json.Set("small", small ? 1.0 : 0.0);

  // In-cache: the chain's intermediates fit in LLC, so materialization is
  // cheap and the fused win (if any) comes from dispatch savings alone.
  // Out-of-cache: intermediates are tens of MB per edge, so the
  // vectorized arms pay DRAM bandwidth the fused arm never touches.
  const uint64_t in_cache_rows = small ? 5000 : 20000;
  const uint64_t out_of_cache_rows = small ? 20000 : 2000000;
  RunScenario("in_cache", in_cache_rows, SmallBlockBytes(), workers, runs,
              &json);
  RunScenario("out_of_cache", out_of_cache_rows, MidBlockBytes(), workers,
              runs, &json);

  json.Write();
  std::printf("\nTarget: out-of-cache fused beats both vectorized arms on "
              "wall clock with zero intermediate transfers, and the model's "
              "ChooseFusedChain picks fused there.\n");
  return 0;
}
