// Reproduces Fig. 10: the interaction of block size, UoT value and
// operator scalability — per-task execution times of the two Q07 probe
// operators (good vs poor scalability) across block sizes under low and
// high UoT values.
//
// Runs on the discrete-event scheduler simulator (DESIGN.md substitution
// 1). Work per task scales with the block size; the fixed storage-
// management overhead and its synchronization slope shrink in relative
// terms as blocks grow, reproducing the paper's contention story.

#include <cstdio>

#include "simsched/des_scheduler.h"

namespace {

struct Shape {
  const char* name;
  double contention_alpha;
  double sync_beta;
};

}  // namespace

int main() {
  using namespace uot;
  std::printf("Fig 10: per-task probe time (ms) vs block size and UoT "
              "(DES simulator, 20 workers)\n\n");

  const Shape shapes[] = {
      {"(a) probe with better scalability (small HT)", 0.02, 0.02},
      {"(b) probe with poor scalability (large HT)", 0.20, 0.30},
  };
  const size_t kBlockSizes[] = {128 * 1024, 512 * 1024, 2 * 1024 * 1024};
  const double kTableBytes = 256.0 * 1024 * 1024;  // select output volume
  const double kWorkNsPerByte = 1e6 / (512.0 * 1024);

  for (const Shape& shape : shapes) {
    std::printf("%s:\n", shape.name);
    std::printf("%-10s %14s %14s\n", "block", "low UoT", "high UoT");
    for (const size_t block : kBlockSizes) {
      const uint64_t blocks =
          static_cast<uint64_t>(kTableBytes / static_cast<double>(block));
      double task_ms[2];
      int idx = 0;
      for (const bool whole_table : {false, true}) {
        SimOperator select;
        select.name = "select";
        select.num_work_orders = blocks;
        select.work_ns = kWorkNsPerByte * static_cast<double>(block) * 0.6;
        select.overhead_ns = 0.05e6;
        select.sync_beta = 0.02;

        SimOperator probe;
        probe.name = "probe";
        probe.streaming_producer = 0;
        probe.work_ns = kWorkNsPerByte * static_cast<double>(block);
        probe.overhead_ns = 0.1e6;  // per-work-order storage management
        probe.contention_alpha = shape.contention_alpha;
        // Latch contention in the storage manager scales with the rate of
        // concurrent block operations: quadratically worse as blocks
        // shrink (more block checkouts/returns per second per worker).
        const double shrink = 512.0 * 1024 / static_cast<double>(block);
        probe.sync_beta = shape.sync_beta * shrink * shrink;

        SimConfig config;
        config.num_workers = 20;
        config.uot =
            whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
        const SimResult r = DesScheduler::Run({select, probe}, config);
        task_ms[idx++] = r.operators[1].avg_task_ns / 1e6;
      }
      std::printf("%-10s %14.3f %14.3f\n",
                  block >= 1024 * 1024
                      ? (std::to_string(block / (1024 * 1024)) + "MB").c_str()
                      : (std::to_string(block / 1024) + "KB").c_str(),
                  task_ms[0], task_ms[1]);
    }
    std::printf("\n");
  }
  std::printf("Paper: the poorly scaling probe improves from 128KB to "
              "512KB (less storage-manager contention), then grows again "
              "at 2MB (more work per block); low UoT values are less prone "
              "to the contention because their DOP is lower.\n");
  return 0;
}
