// Reproduces Fig. 6: execution times of the complete select(lineitem) ->
// probe ... operator chains for low vs high UoT values at two block sizes.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace uot;
  using namespace uot::bench;

  const double sf = ScaleFactor();
  std::printf("Fig 6: operator-chain execution time (ms), "
              "select(lineitem) -> probes (SF=%.3f, %d workers)\n\n",
              sf, Threads());

  // Paper grid 128KB / 2MB, scaled to the laptop SF (see bench_util.h).
  for (const size_t block_bytes : {SmallBlockBytes(), LargeBlockBytes()}) {
    TpchFixture fixture(sf, Layout::kColumnStore, block_bytes);
    TpchPlanConfig plan_config;
    plan_config.block_bytes = block_bytes;

    std::printf("block size %s:\n", HumanBytes(block_bytes).c_str());
    std::printf("%-5s %6s %12s %12s %10s\n", "Query", "chain", "low UoT",
                "high UoT", "low/high");
    for (int query : SupportedTpchQueries()) {
      auto shape = BuildTpchPlan(query, fixture.db(), plan_config);
      const std::vector<int> chain = LineitemChain(*shape);
      if (chain.size() < 2) continue;

      double span[2] = {0, 0};
      int idx = 0;
      for (const bool whole_table : {false, true}) {
        ExecConfig exec;
        exec.num_workers = Threads();
        exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
        QueryTiming t =
            TimeQuery(query, fixture.db(), plan_config, exec, Runs());
        span[idx++] = ChainSpanMillis(t.stats, chain);
      }
      if (span[1] > 0) {
        std::printf("Q%-4d %6zu %12.3f %12.3f %9.2fx\n", query,
                    chain.size(), span[0], span[1], span[0] / span[1]);
      }
    }
    std::printf("\n");
  }
  std::printf("Paper: low UoT wins in some chains at small blocks; at 2MB "
              "all chains perform equally under both UoT values.\n");
  return 0;
}
