// An interactive SQL shell over the embedded query front end: the same
// parser -> plan cache -> engine path the TCP server uses, wired to
// stdin/stdout so you can watch the plan+annotation cache work.
//
//   $ ./build/examples/sql_shell
//   uot> select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag
//   OK rows=3 cache=miss ms=6.1
//   ...
//   uot> select l_returnflag, sum(l_quantity) from lineitem group by l_returnflag
//   OK rows=3 cache=hit ms=3.7          <- cached annotations, no model
//
// Usage: sql_shell [scale_factor]   (default 0.01)

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/text_server.h"

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
  std::fprintf(stderr, "generating TPC-H sf=%g ...\n", sf);

  uot::StorageManager storage;
  uot::TpchDatabase db(&storage);
  uot::TpchConfig tpch_config;
  tpch_config.scale_factor = sf;
  db.Generate(tpch_config);
  uot::server::Catalog catalog(&storage);
  catalog.RegisterTpch(&db);

  uot::server::FrontEndConfig config;
  uot::server::FrontEnd frontend(config, &catalog);

  std::fprintf(stderr,
               "tables: lineitem orders customer part supplier partsupp "
               "nation region\n"
               "statements: SELECT cols|aggs FROM t [JOIN t2 ON a = b] "
               "[WHERE ...] [GROUP BY ...]\n"
               "            PREPARE <name> AS SELECT ... / EXECUTE <name> "
               "(args) / TPCH <n> / STATS / QUIT\n");

  // The shell is just the server's stdio loop: identical wire format, so
  // anything that works here works over TCP (uot_server) too.
  uot::server::RunStdioLoop(&frontend, std::cin, std::cout);
  frontend.Shutdown();
  return 0;
}
