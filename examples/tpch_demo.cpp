// Generates a small TPC-H database and runs the paper's query set,
// printing result snippets and the per-operator breakdown of one query —
// a tour of the whole engine.
//
//   UOT_SF=0.01 ./build/examples/tpch_demo

#include <cstdio>
#include <cstdlib>

#include "exec/query_executor.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

using namespace uot;

int main() {
  const char* sf_env = std::getenv("UOT_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.01;

  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = sf;
  config.layout = Layout::kColumnStore;
  config.block_bytes = 256 * 1024;
  db.Generate(config);

  std::printf("TPC-H database at SF %.3f:\n", sf);
  for (const char* name : {"lineitem", "orders", "customer", "part",
                           "supplier", "partsupp", "nation", "region"}) {
    const Table* t = db.table(name);
    std::printf("  %-9s %9llu rows, %6.2f MB, %zu blocks\n", name,
                static_cast<unsigned long long>(t->NumRows()),
                static_cast<double>(t->TotalBytes()) / 1e6,
                t->blocks().size());
  }

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 64 * 1024;
  ExecConfig exec;
  exec.num_workers = 2;
  exec.uot = UotPolicy::LowUot(1);

  std::printf("\nRunning the paper's 14-query set (low UoT, 2 workers):\n");
  for (int query : SupportedTpchQueries()) {
    auto plan = BuildTpchPlan(query, db, plan_config);
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    std::printf("  Q%-3d %8.2f ms, %4zu work orders, %5llu result rows\n",
                query, stats.QueryMillis(), stats.records.size(),
                static_cast<unsigned long long>(
                    plan->result_table()->NumRows()));
  }

  std::printf("\nQ1 result (pricing summary):\n");
  auto q1 = BuildTpchPlan(1, db, plan_config);
  QueryExecutor::Execute(q1.get(), exec);
  std::printf("%s", RenderTable(*q1->result_table(), 6).c_str());

  std::printf("\nQ7 per-operator breakdown (the paper's running example):\n");
  auto q7 = BuildTpchPlan(7, db, plan_config);
  const ExecutionStats stats = QueryExecutor::Execute(q7.get(), exec);
  std::printf("%s", stats.ToString().c_str());
  return 0;
}
