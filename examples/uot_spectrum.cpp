// Walks the full UoT spectrum (the paper's Fig. 1): a TPC-H select -> probe
// pipeline executed with UoT = 1, 2, 4, ... blocks up to the whole table,
// showing how transfers, the consumer's degree of parallelism and query
// time evolve.
//
//   UOT_SF=0.05 ./build/examples/uot_spectrum

#include <cstdio>
#include <cstdlib>

#include "exec/query_executor.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

using namespace uot;

int main() {
  const char* sf_env = std::getenv("UOT_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.02;

  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = sf;
  config.block_bytes = 256 * 1024;
  db.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 32 * 1024;

  std::printf("TPC-H Q10 at SF %.3f across the UoT spectrum "
              "(32KB blocks, 2 workers)\n\n", sf);
  std::printf("%-18s %10s %12s %12s %12s\n", "UoT", "transfers",
              "probe DOP", "probe tasks", "query (ms)");

  for (const uint64_t uot :
       {UINT64_C(1), UINT64_C(2), UINT64_C(4), UINT64_C(8), UINT64_C(16),
        UotPolicy::kWholeTable}) {
    auto plan = BuildTpchPlan(10, db, plan_config);
    // Identify the probe fed by sel(lineitem).
    int probe_op = -1, edge_index = -1;
    for (size_t e = 0; e < plan->streaming_edges().size(); ++e) {
      const auto& edge = plan->streaming_edges()[e];
      if (plan->op(edge.producer)->name() == "sel(lineitem)") {
        probe_op = edge.consumer;
        edge_index = static_cast<int>(e);
      }
    }

    ExecConfig exec;
    exec.num_workers = 2;
    exec.uot = uot == UotPolicy::kWholeTable ? UotPolicy::HighUot()
                                             : UotPolicy::LowUot(uot);
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    std::printf("%-18s %10llu %12.2f %12llu %12.2f\n",
                exec.uot.ToString().c_str(),
                static_cast<unsigned long long>(
                    stats.edge_transfers[static_cast<size_t>(edge_index)]),
                stats.AverageDop(probe_op),
                static_cast<unsigned long long>(
                    stats.operators[static_cast<size_t>(probe_op)]
                        .num_work_orders),
                stats.QueryMillis());
  }

  std::printf("\nThere is no binary pipelining-vs-blocking choice — only "
              "points on this spectrum (paper Section I).\n");
  return 0;
}
