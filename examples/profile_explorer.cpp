// Offline profile analysis: loads a query-profile JSON document (written
// by `trace_explorer --profile` or obs::QueryProfile::WriteJson) and
// prints the model-calibration picture an engine developer acts on —
// the worst-calibrated edges (largest relative residuals) and the p99
// work-order latency per operator:
//
//   ./build/examples/profile_explorer q3.profile.json [top_n]
//
// Everything is read back through the dependency-free json_lite parser,
// so this tool doubles as an end-to-end check that exported profiles
// survive a round trip.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_lite.h"
#include "obs/query_profile.h"

using namespace uot;

namespace {

struct EdgeCalibration {
  int edge = -1;
  std::string producer;
  std::string consumer;
  double rel_err = 0.0;
  int64_t residual_transfers = 0;
  int64_t residual_bytes = 0;
  int64_t residual_footprint = 0;
  std::string reason;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <profile.json> [top_n]\n"
                 "  (write one with: trace_explorer --profile)\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const size_t top_n =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 5;

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  // Structural validation first: a malformed profile is reported as such,
  // not as a crash three accessors later.
  obs::QueryProfileSummary summary;
  const Status status = obs::ParseQueryProfileJson(json, &summary);
  if (!status.ok()) {
    std::fprintf(stderr, "%s is not a valid query profile: %s\n",
                 path.c_str(), status.ToString().c_str());
    return 1;
  }

  obs::JsonValue root;
  if (!obs::JsonValue::Parse(json, &root).ok()) return 1;

  std::printf("Profile %s: query \"%s\" (id %llu), %zu operators, %zu "
              "edges (%zu predicted), %zu UoT decisions, %zu budget "
              "events%s\n\n",
              path.c_str(), summary.query_name.c_str(),
              static_cast<unsigned long long>(summary.query_id),
              summary.num_operators, summary.num_edges,
              summary.num_predicted_edges, summary.num_uot_decisions,
              summary.num_budget_events,
              summary.profiled ? "" : " [profile logs were off]");

  // p99 work-order latency per operator.
  std::printf("Per-operator work-order latency (p50 / p95 / p99 ms):\n");
  for (const obs::JsonValue& op : root.Find("operators")->AsArray()) {
    const obs::JsonValue* latency = op.Find("latency");
    std::printf("  op[%2d] %-24s %8.3f / %8.3f / %8.3f  (%llu work orders)\n",
                static_cast<int>(op.NumberOr("op", -1)),
                op.StringOr("name", "?").c_str(),
                latency->NumberOr("p50", 0) / 1e6,
                latency->NumberOr("p95", 0) / 1e6,
                latency->NumberOr("p99", 0) / 1e6,
                static_cast<unsigned long long>(
                    op.NumberOr("work_orders", 0)));
  }

  // Worst-calibrated edges, by the exported relative error.
  std::vector<EdgeCalibration> calibrated;
  for (const obs::JsonValue& edge : root.Find("edges")->AsArray()) {
    const obs::JsonValue* residuals = edge.Find("residuals");
    if (residuals == nullptr) continue;
    EdgeCalibration c;
    c.edge = static_cast<int>(edge.NumberOr("edge", -1));
    c.producer = edge.StringOr("producer_name", "?");
    c.consumer = edge.StringOr("consumer_name", "?");
    c.rel_err = residuals->NumberOr("rel_err", 0);
    c.residual_transfers =
        static_cast<int64_t>(residuals->NumberOr("transfers", 0));
    c.residual_bytes = static_cast<int64_t>(residuals->NumberOr("bytes", 0));
    c.residual_footprint =
        static_cast<int64_t>(residuals->NumberOr("footprint_bytes", 0));
    c.reason = edge.Find("prediction")->StringOr("reason", "?");
    calibrated.push_back(std::move(c));
  }
  if (calibrated.empty()) {
    std::printf("\nNo model predictions in this profile (run the query "
                "through a CostModelUotChooser-annotated plan to get "
                "residuals).\n");
    return 0;
  }
  std::sort(calibrated.begin(), calibrated.end(),
            [](const EdgeCalibration& a, const EdgeCalibration& b) {
              return a.rel_err > b.rel_err;
            });
  std::printf("\nWorst-calibrated edges (top %zu of %zu, by relative "
              "error):\n",
              std::min(top_n, calibrated.size()), calibrated.size());
  for (size_t i = 0; i < calibrated.size() && i < top_n; ++i) {
    const EdgeCalibration& c = calibrated[i];
    std::printf("  edge[%2d] %s -> %s: rel_err %.3f, residual transfers "
                "%+lld, bytes %+lld, footprint %+lld [%s]\n",
                c.edge, c.producer.c_str(), c.consumer.c_str(), c.rel_err,
                static_cast<long long>(c.residual_transfers),
                static_cast<long long>(c.residual_bytes),
                static_cast<long long>(c.residual_footprint),
                c.reason.c_str());
  }
  return 0;
}
