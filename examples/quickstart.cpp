// Quickstart: build two small tables, run the paper's canonical
// select -> probe pipeline under a low and a high UoT value, and print the
// results plus per-operator statistics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "exec/query_executor.h"
#include "operators/build_hash_operator.h"
#include "operators/probe_hash_operator.h"
#include "operators/select_operator.h"
#include "types/row_builder.h"

using namespace uot;

int main() {
  StorageManager storage;

  // ---- 1. Create and load base tables (4 KB blocks). ----
  Schema sales_schema({{"product_id", Type::Int32()},
                       {"amount", Type::Double()}});
  Table sales("sales", sales_schema, Layout::kColumnStore, 4096, &storage,
              MemoryCategory::kBaseTable);
  Schema product_schema({{"product_id", Type::Int32()},
                         {"price", Type::Double()}});
  Table products("products", product_schema, Layout::kColumnStore, 4096,
                 &storage, MemoryCategory::kBaseTable);

  RowBuilder sale(&sales_schema);
  for (int i = 0; i < 10000; ++i) {
    sale.SetInt32(0, i % 100);          // product id
    sale.SetDouble(1, 1.0 + i % 7);     // amount
    sales.AppendRow(sale.data());
  }
  RowBuilder product(&product_schema);
  for (int i = 0; i < 100; ++i) {
    product.SetInt32(0, i);
    product.SetDouble(1, 9.99 + i);
    products.AppendRow(product.data());
  }

  // ---- 2. Build the plan: sel(sales) -> probe(build(products)). ----
  for (const bool whole_table : {false, true}) {
    QueryPlan plan(&storage);

    auto build = std::make_unique<BuildHashOperator>(
        "build(products)", std::vector<int>{0}, std::vector<int>{1}, 0.75,
        &storage.tracker());
    build->InitHashTable(product_schema);
    build->AttachBaseTable(&products);
    BuildHashOperator* build_raw = build.get();
    const int build_op = plan.AddOperator(std::move(build));

    // sigma: amount >= 5, projecting (product_id, amount).
    auto proj = Projection::Identity(sales_schema, {0, 1});
    Schema sel_schema = proj->output_schema();
    Table* sel_out = plan.CreateTempTable("sel.out", sel_schema,
                                          Layout::kRowStore, 4096);
    InsertDestination* sel_dest = plan.CreateDestination(sel_out);
    auto select = std::make_unique<SelectOperator>(
        "sel(sales)",
        Cmp(CompareOp::kGe, Col(1, Type::Double()), LitDouble(5.0)),
        std::move(proj), sel_dest);
    select->AttachBaseTable(&sales);
    const int select_op = plan.AddOperator(std::move(select));
    plan.RegisterOutput(select_op, sel_dest);

    Schema out_schema = ProbeHashOperator::OutputSchema(
        sel_schema, {0, 1}, product_schema, {1}, JoinKind::kInner);
    Table* join_out = plan.CreateTempTable("join.out", out_schema,
                                           Layout::kRowStore, 4096);
    InsertDestination* join_dest = plan.CreateDestination(join_out);
    auto probe = std::make_unique<ProbeHashOperator>(
        "probe(products)", build_raw, std::vector<int>{0},
        std::vector<int>{0, 1}, JoinKind::kInner,
        std::vector<ResidualCondition>{}, join_dest);
    const int probe_op = plan.AddOperator(std::move(probe));
    plan.RegisterOutput(probe_op, join_dest);

    plan.AddStreamingEdge(select_op, probe_op);  // UoT applies here
    plan.AddBlockingEdge(build_op, probe_op);    // probe waits for build
    plan.SetResultTable(join_out);

    // ---- 3. Execute with the chosen unit of transfer. ----
    ExecConfig config;
    config.num_workers = 2;
    config.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
    const ExecutionStats stats = QueryExecutor::Execute(&plan, config);

    std::printf("=== %s ===\n", config.uot.ToString().c_str());
    std::printf("%s", stats.ToString().c_str());
    std::printf("result rows: %llu, transfers on the select->probe edge: "
                "%llu\n",
                static_cast<unsigned long long>(join_out->NumRows()),
                static_cast<unsigned long long>(stats.edge_transfers[0]));
    std::printf("%s\n", RenderTable(*join_out, 5).c_str());
  }
  std::printf("Same result either way — the UoT value is purely a "
              "scheduling knob (the paper's central observation).\n");
  return 0;
}
