// Runs one TPC-H query with the observability layer enabled and writes a
// Chrome/Perfetto trace plus metrics exports:
//
//   UOT_SF=0.01 UOT_QUERY=7 ./build/examples/trace_explorer [out_prefix]
//
// produces `<out_prefix>.trace.json` (open it at https://ui.perfetto.dev
// or chrome://tracing — work-order spans per worker, UoT transfer instants,
// queue-depth and per-category memory counter tracks), plus
// `<out_prefix>.metrics.csv` and `<out_prefix>.metrics.json`.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "obs/trace_json.h"
#include "obs/trace_session.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

using namespace uot;

int main(int argc, char** argv) {
  const char* sf_env = std::getenv("UOT_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.01;
  const char* query_env = std::getenv("UOT_QUERY");
  const int query = query_env != nullptr ? std::atoi(query_env) : 7;
  const std::string prefix =
      argc > 1 ? argv[1] : ("q" + std::to_string(query));

  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = sf;
  config.layout = Layout::kColumnStore;
  config.block_bytes = 256 * 1024;
  db.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 64 * 1024;
  auto plan = BuildTpchPlan(query, db, plan_config);

  obs::TraceSession trace;
  obs::MetricsRegistry metrics;
  ExecConfig exec;
  exec.num_workers = 4;
  exec.uot = UotPolicy::LowUot(1);
  exec.trace = &trace;
  exec.metrics = &metrics;

  std::printf("Running TPC-H Q%d at SF %.3f with tracing enabled...\n",
              query, sf);
  const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
  std::printf("%s\n", stats.ToString().c_str());

  const std::string trace_path = prefix + ".trace.json";
  Status status = trace.WriteChromeJson(trace_path);
  if (!status.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Self-check: the file we just wrote must be a valid trace_event JSON
  // document with time-ordered events.
  obs::ChromeTraceSummary summary;
  status = obs::ParseChromeTraceJson(trace.ToChromeJson(), &summary);
  if (!status.ok() || !summary.timestamps_monotonic) {
    std::fprintf(stderr, "exported trace failed validation: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  status = metrics.WriteCsv(prefix + ".metrics.csv");
  if (status.ok()) status = metrics.WriteJson(prefix + ".metrics.json");
  if (!status.ok()) {
    std::fprintf(stderr, "metrics export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::printf("Trace: %s (%zu events: %zu spans, %zu instants, %zu counter "
              "samples; %.3f ms covered)\n",
              trace_path.c_str(), summary.num_events, summary.num_complete,
              summary.num_instant, summary.num_counter,
              (summary.last_ts_us - summary.first_ts_us) / 1000.0);
  std::printf("Metrics: %s.metrics.csv, %s.metrics.json\n", prefix.c_str(),
              prefix.c_str());
  std::printf("\nOpen the trace in https://ui.perfetto.dev (or "
              "chrome://tracing):\n"
              "  - each \"worker N\" track shows that worker's work-order "
              "spans (args carry the operator name);\n"
              "  - the coordinator track shows UoT transfers, edge flushes "
              "and budget events;\n"
              "  - counter tracks plot queue depths and per-category "
              "memory over time (Table II's timeline).\n");
  return 0;
}
