// Runs one TPC-H query with the observability layer enabled and writes a
// Chrome/Perfetto trace plus metrics exports:
//
//   UOT_SF=0.01 UOT_QUERY=7 ./build/examples/trace_explorer [out_prefix]
//
// produces `<out_prefix>.trace.json` (open it at https://ui.perfetto.dev
// or chrome://tracing — work-order spans per worker, UoT transfer instants,
// queue-depth and per-category memory counter tracks), plus
// `<out_prefix>.metrics.csv` and `<out_prefix>.metrics.json`.
//
// With `--profile`, the run additionally closes the observe-model-act
// loop: a calibration pass measures oracle per-edge cardinalities, the
// cost model's predictions are attached to the plan, the traced run
// executes with ExecConfig::profile on and a background metrics sampler,
// and the tool writes `<out_prefix>.profile.json` (validated),
// `<out_prefix>.profile.txt` (the annotated plan + calibration report),
// and `<out_prefix>.timeseries.json` / `.csv` — with the
// `model.residual.edge.*` gauges exported into the metrics files.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/query_executor.h"
#include "model/uot_chooser.h"
#include "obs/metrics.h"
#include "obs/metrics_sampler.h"
#include "obs/query_profile.h"
#include "obs/trace_json.h"
#include "obs/trace_session.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

using namespace uot;

int main(int argc, char** argv) {
  const char* sf_env = std::getenv("UOT_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.01;
  const char* query_env = std::getenv("UOT_QUERY");
  const int query = query_env != nullptr ? std::atoi(query_env) : 7;
  bool profile_mode = false;
  std::string prefix = "q" + std::to_string(query);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile_mode = true;
    } else {
      prefix = argv[i];
    }
  }

  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = sf;
  config.layout = Layout::kColumnStore;
  config.block_bytes = 256 * 1024;
  db.Generate(config);

  TpchPlanConfig plan_config;
  plan_config.block_bytes = 64 * 1024;
  auto plan = BuildTpchPlan(query, db, plan_config);

  obs::TraceSession trace;
  obs::MetricsRegistry metrics;
  ExecConfig exec;
  exec.num_workers = 4;
  exec.uot = UotPolicy::LowUot(1);
  exec.trace = &trace;
  exec.metrics = &metrics;

  if (profile_mode) {
    // Calibration pass: measure oracle per-edge cardinalities, then attach
    // the cost model's predictions to the traced plan (without pinning its
    // UoTs, so the traced run behaves exactly like the unprofiled one and
    // the residuals grade the model, not a changed execution).
    ExecConfig calib = exec;
    calib.trace = nullptr;
    calib.metrics = nullptr;
    calib.drop_consumed_blocks = false;
    auto calib_plan = BuildTpchPlan(query, db, plan_config);
    QueryExecutor::Execute(calib_plan.get(), calib);
    const std::vector<EdgeEstimate> estimates =
        CostModelUotChooser::EstimatesFromExecutedPlan(*calib_plan);
    CostModelUotChooser chooser;
    CostModelUotChooser::AnnotatePredictions(
        plan.get(), chooser.ChoosePlan(*plan, estimates));
    exec.profile = true;
  }

  obs::MetricsSampler::Options sampler_options;
  sampler_options.interval_ms = 1;
  sampler_options.capacity = 4096;
  obs::MetricsSampler sampler(&metrics, sampler_options);
  if (profile_mode) sampler.Start();

  std::printf("Running TPC-H Q%d at SF %.3f with tracing%s enabled...\n",
              query, sf, profile_mode ? " and profiling" : "");
  const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
  if (profile_mode) sampler.Stop();
  std::printf("%s\n", stats.ToString().c_str());

  if (profile_mode) {
    const obs::QueryProfile profile = obs::QueryProfile::FromRun(
        plan.get(), stats, {"q" + std::to_string(query)});
    profile.ExportResidualMetrics(&metrics);
    std::printf("%s\n", profile.ToString().c_str());
    const std::string report = profile.CalibrationReport();
    if (!report.empty()) std::printf("%s\n", report.c_str());

    const std::string json = profile.ToJson();
    obs::QueryProfileSummary profile_summary;
    Status profile_status =
        obs::ParseQueryProfileJson(json, &profile_summary);
    if (!profile_status.ok()) {
      std::fprintf(stderr, "profile JSON failed validation: %s\n",
                   profile_status.ToString().c_str());
      return 1;
    }
    profile_status = profile.WriteJson(prefix + ".profile.json");
    if (profile_status.ok()) {
      std::FILE* txt =
          std::fopen((prefix + ".profile.txt").c_str(), "w");
      if (txt == nullptr) {
        profile_status =
            Status::InvalidArgument("cannot open " + prefix + ".profile.txt");
      } else {
        std::fputs(profile.ToString().c_str(), txt);
        if (!report.empty()) std::fputs(report.c_str(), txt);
        std::fclose(txt);
      }
    }
    if (profile_status.ok()) {
      profile_status = sampler.WriteJson(prefix + ".timeseries.json");
    }
    if (profile_status.ok()) {
      profile_status = sampler.WriteCsv(prefix + ".timeseries.csv");
    }
    if (!profile_status.ok()) {
      std::fprintf(stderr, "profile export failed: %s\n",
                   profile_status.ToString().c_str());
      return 1;
    }
    std::printf("Profile: %s.profile.json (%zu operators, %zu edges, %zu "
                "predicted, %zu UoT decisions), %s.profile.txt\n",
                prefix.c_str(), profile_summary.num_operators,
                profile_summary.num_edges,
                profile_summary.num_predicted_edges,
                profile_summary.num_uot_decisions, prefix.c_str());
    std::printf("Time-series: %s.timeseries.json/.csv (%llu samples)\n",
                prefix.c_str(),
                static_cast<unsigned long long>(sampler.total_samples()));
  }

  const std::string trace_path = prefix + ".trace.json";
  Status status = trace.WriteChromeJson(trace_path);
  if (!status.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Self-check: the file we just wrote must be a valid trace_event JSON
  // document with time-ordered events.
  obs::ChromeTraceSummary summary;
  status = obs::ParseChromeTraceJson(trace.ToChromeJson(), &summary);
  if (!status.ok() || !summary.timestamps_monotonic) {
    std::fprintf(stderr, "exported trace failed validation: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  status = metrics.WriteCsv(prefix + ".metrics.csv");
  if (status.ok()) status = metrics.WriteJson(prefix + ".metrics.json");
  if (!status.ok()) {
    std::fprintf(stderr, "metrics export failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::printf("Trace: %s (%zu events: %zu spans, %zu instants, %zu counter "
              "samples; %.3f ms covered)\n",
              trace_path.c_str(), summary.num_events, summary.num_complete,
              summary.num_instant, summary.num_counter,
              (summary.last_ts_us - summary.first_ts_us) / 1000.0);
  std::printf("Metrics: %s.metrics.csv, %s.metrics.json\n", prefix.c_str(),
              prefix.c_str());
  std::printf("\nOpen the trace in https://ui.perfetto.dev (or "
              "chrome://tracing):\n"
              "  - each \"worker N\" track shows that worker's work-order "
              "spans (args carry the operator name);\n"
              "  - the coordinator track shows UoT transfers, edge flushes "
              "and budget events;\n"
              "  - counter tracks plot queue depths and per-category "
              "memory over time (Table II's timeline).\n");
  return 0;
}
