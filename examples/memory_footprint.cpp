// Explores the Section VI memory model on TPC-H Q07: which UoT extreme
// needs more memory? Compares the measured peaks of both strategies with
// the model's Table II formulas, including the paper's LIP-style pruning
// discussion.
//
//   UOT_SF=0.05 ./build/examples/memory_footprint

#include <cstdio>
#include <cstdlib>

#include "exec/query_executor.h"
#include "model/memory_model.h"
#include "tpch/tpch_analysis.h"
#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

using namespace uot;

int main() {
  const char* sf_env = std::getenv("UOT_SF");
  const double sf = sf_env != nullptr ? std::atof(sf_env) : 0.05;

  StorageManager storage;
  TpchDatabase db(&storage);
  TpchConfig config;
  config.scale_factor = sf;
  config.block_bytes = 1 << 20;
  db.Generate(config);

  std::printf("Memory footprints of the two UoT extremes on TPC-H Q07 "
              "(SF %.3f)\n\n", sf);

  // ---- measured peaks ----
  TpchPlanConfig plan_config;
  plan_config.block_bytes = 64 * 1024;
  for (const bool whole_table : {false, true}) {
    auto plan = BuildTpchPlan(7, db, plan_config);
    ExecConfig exec;
    exec.num_workers = 2;
    exec.uot = whole_table ? UotPolicy::HighUot() : UotPolicy::LowUot(1);
    const ExecutionStats stats = QueryExecutor::Execute(plan.get(), exec);
    std::printf("%-20s peak hash tables %7.2f MB | peak intermediates "
                "%7.2f MB\n",
                exec.uot.ToString().c_str(),
                static_cast<double>(stats.PeakHashTableBytes()) / 1e6,
                static_cast<double>(stats.PeakTemporaryBytes()) / 1e6);
  }

  // ---- model view (Table II) ----
  const double orders_bytes = static_cast<double>(db.orders().TotalBytes());
  const double ht_orders = MemoryModel::HashTableBytes(
      orders_bytes, db.orders().schema().row_width(), 24, 0.75);
  const double supplier_sel = 2.0 / 25.0;  // two nations of 25
  const double ht_supplier = MemoryModel::HashTableBytes(
      static_cast<double>(db.supplier().TotalBytes()) * supplier_sel,
      db.supplier().schema().row_width(), 24, 0.75);
  const double ht_customer = MemoryModel::HashTableBytes(
      static_cast<double>(db.customer().TotalBytes()) * supplier_sel,
      db.customer().schema().row_width(), 24, 0.75);

  const ReductionRow lineitem = AnalyzeReduction(db, 7, "lineitem");
  const double sigma_bytes =
      static_cast<double>(db.lineitem().TotalBytes()) * lineitem.total;

  const auto footprint = MemoryModel::LeafJoinCascade(
      {ht_supplier, ht_orders, ht_customer}, sigma_bytes);
  std::printf("\nTable II model: low-UoT overhead (co-resident hash tables "
              "2..n) = %.2f MB\n",
              footprint.low_uot_overhead_bytes / 1e6);
  std::printf("                high-UoT overhead (materialized sigma(R))  "
              "= %.2f MB\n",
              footprint.high_uot_overhead_bytes / 1e6);
  std::printf("\nWith LIP-style pruning the paper cuts sigma(R) by >10x "
              "(2.8 GB -> 224 MB at SF 100), flipping the winner: "
              "sometimes the \"non-pipelined\" strategy needs LESS memory "
              "(Section VI-C).\n");
  std::printf("Pruned sigma(R) at 10x: %.2f MB vs hash tables %.2f MB\n",
              footprint.high_uot_overhead_bytes / 10 / 1e6,
              footprint.low_uot_overhead_bytes / 1e6);
  return 0;
}
