// Interactive-ish exploration of the Section V analytical model: prints
// the extra-work breakdown of both strategies for a configurable
// (UoT size, thread count, UoT count) point, then the sensitivity of
// Equation (1) to each hardware parameter.
//
//   ./build/examples/model_explorer [uot_kb] [threads] [n_uots]

#include <cstdio>
#include <cstdlib>

#include "model/cost_model.h"

using namespace uot;

int main(int argc, char** argv) {
  const double uot_kb = argc > 1 ? std::atof(argv[1]) : 512;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 20;
  const uint64_t n = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3]))
                              : 1000;
  const double b = uot_kb * 1024;

  CostModel m;
  std::printf("%s\n", m.Describe().c_str());
  std::printf("\nPoint: UoT = %.0f KB, T = %d, N = %llu UoTs\n\n", uot_kb,
              threads, static_cast<unsigned long long>(n));

  std::printf("Component costs per UoT:\n");
  std::printf("  R_L3 (disrupted read)    %10.1f ns\n", m.R_L3(b));
  std::printf("  AR_L3 (amortized read)   %10.1f ns\n", m.AR_L3(b));
  std::printf("  W_mem (write to memory)  %10.1f ns\n", m.W_mem(b));
  std::printf("  M_L3 (miss penalty)      %10.1f ns\n", m.M_L3());
  std::printf("  IC (icache miss)         %10.1f ns\n", m.IC());
  std::printf("  p1' = min(1, 2BT/|L3|)   %10.3f\n", m.P1Prime(b, threads));
  std::printf("  p2(B)                    %10.3f\n", m.P2(b));

  std::printf("\nExtra work (total for N UoTs):\n");
  std::printf("  non-pipelining (high UoT): %10.3f ms\n",
              m.NonPipeliningExtraCost(n, b) / 1e6);
  std::printf("  pipelining (low UoT):      %10.3f ms\n",
              m.PipeliningExtraCost(n, b, threads) / 1e6);
  std::printf("  Equation (1) ratio:        %10.3f\n",
              m.CostRatio(b, threads));

  std::printf("\nSensitivity of the ratio (one parameter halved/doubled):\n");
  struct Knob {
    const char* name;
    double CostModelParams::* field;
  };
  const Knob knobs[] = {
      {"write bandwidth", &CostModelParams::write_bw},
      {"seq read bandwidth", &CostModelParams::seq_read_bw},
      {"disrupted read bandwidth", &CostModelParams::read_bw},
      {"L3 size", &CostModelParams::l3_bytes},
      {"miss penalty", &CostModelParams::l3_miss_ns},
  };
  for (const Knob& k : knobs) {
    CostModelParams low_params;
    low_params.*(k.field) *= 0.5;
    CostModelParams high_params;
    high_params.*(k.field) *= 2.0;
    std::printf("  %-26s x0.5 -> %6.3f   x2 -> %6.3f\n", k.name,
                CostModel(low_params).CostRatio(b, threads),
                CostModel(high_params).CostRatio(b, threads));
  }

  std::printf("\nPersistent-store variant (Section V-C): high UoT %.1f ms "
              "vs low UoT %.4f ms\n",
              m.StoreExtraCostHighUot(n, b) / 1e6,
              m.StoreExtraCostLowUot(n) / 1e6);
  return 0;
}
