#ifndef UOT_OPERATORS_EXCHANGE_OPERATOR_H_
#define UOT_OPERATORS_EXCHANGE_OPERATOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "join/partition_kernel.h"
#include "operators/operator.h"
#include "storage/insert_destination.h"

namespace uot {

/// Hash-repartitions its input into `2^radix_bits` disjoint partitions —
/// the producer side of an exchange edge (QueryPlan::EdgeKind::kExchange).
///
/// Rows are routed by the TOP `radix_bits` bits of the mixed join-key hash
/// (join/partition_kernel.h), the same hash the build/probe kernels mix, so
/// equal keys on both sides of a join land in the same partition. Each
/// partition has its own InsertDestination; all destinations write one
/// output table, and every completed block carries its partition tag, so
/// the downstream partitioned build/probe routes whole blocks to the right
/// hash sub-table with the join kernels unchanged.
///
/// The operator streams: one work order per delivered input block, no
/// barrier — repartitioning of early blocks overlaps the upstream select
/// (what distinguishes an exchange edge from a materializing break).
class ExchangeOperator final : public Operator {
 public:
  /// `destinations` are the per-partition sinks, one per partition in
  /// partition order (the plan owns them; they must all write the same
  /// output table and have their partition ids set). `key_cols` index the
  /// input schema.
  ExchangeOperator(std::string name, std::vector<int> key_cols,
                   int radix_bits,
                   std::vector<InsertDestination*> destinations);

  /// Binds the input to a materialized base table (instead of a stream).
  void AttachBaseTable(const Table* table) { input_.AttachTable(table); }

  void BindExecContext(const OperatorExecContext& ctx) override {
    exec_ctx_ = ctx;
  }

  void ReceiveInputBlocks(int input_index,
                          const std::vector<Block*>& blocks) override;
  void InputDone(int input_index) override;
  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override;
  void Finish() override;

  int radix_bits() const { return radix_bits_; }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(destinations_.size());
  }
  const std::vector<int>& key_cols() const { return key_cols_; }

  /// Rows routed to partition `p` so far (exact once the operator
  /// finished) — the skew signal behind the per-partition gauges.
  uint64_t partition_rows(uint32_t p) const {
    return partition_rows_[p].load(std::memory_order_relaxed);
  }
  /// Completed output blocks of partition `p` — 1:1 with the partition's
  /// downstream build/probe work orders.
  uint64_t partition_blocks(uint32_t p) const {
    return destinations_[p]->blocks_completed();
  }

 private:
  friend class ExchangeWorkOrder;

  const std::vector<int> key_cols_;
  const int radix_bits_;
  const std::vector<InsertDestination*> destinations_;

  StreamingInput input_;
  OperatorExecContext exec_ctx_;  // defaults until the scheduler binds one
  std::unique_ptr<std::atomic<uint64_t>[]> partition_rows_;
};

/// Routes one input block's rows to the per-partition destinations, via the
/// scalar per-row loop or the batched extract -> hash/partition -> scatter
/// pipeline; both route every row to the same partition and preserve input
/// row order within each partition.
class ExchangeWorkOrder final : public WorkOrder {
 public:
  ExchangeWorkOrder(const Block* block, ExchangeOperator* op)
      : block_(block), op_(op) {}

  void Execute() override;

 private:
  void ExecuteScalar();
  void ExecuteBatched();

  const Block* const block_;
  ExchangeOperator* const op_;
};

}  // namespace uot

#endif  // UOT_OPERATORS_EXCHANGE_OPERATOR_H_
