#ifndef UOT_OPERATORS_NESTED_LOOPS_JOIN_OPERATOR_H_
#define UOT_OPERATORS_NESTED_LOOPS_JOIN_OPERATOR_H_

#include <memory>
#include <vector>

#include "operators/operator.h"
#include "storage/insert_destination.h"

namespace uot {

/// Equality nested-loops join, one work order per outer block (paper §V-B
/// discusses NLJ access patterns). Primarily a reference implementation:
/// property tests check that hash joins produce identical results.
class NestedLoopsJoinOperator final : public Operator {
 public:
  /// Joins streamed/attached outer input against the materialized `inner`
  /// table on `outer_key_cols == inner_key_cols` (widened integral
  /// equality). Output: outer output cols, then inner output cols.
  NestedLoopsJoinOperator(std::string name, const Table* inner,
                          std::vector<int> outer_key_cols,
                          std::vector<int> inner_key_cols,
                          std::vector<int> outer_output_cols,
                          std::vector<int> inner_output_cols,
                          InsertDestination* destination);

  void AttachBaseTable(const Table* table) { input_.AttachTable(table); }

  void ReceiveInputBlocks(int input_index,
                          const std::vector<Block*>& blocks) override;
  void InputDone(int input_index) override;
  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override;
  void Finish() override;

  static Schema OutputSchema(const Schema& outer_schema,
                             const std::vector<int>& outer_output_cols,
                             const Schema& inner_schema,
                             const std::vector<int>& inner_output_cols);

 private:
  friend class NestedLoopsJoinWorkOrder;

  const Table* const inner_;
  const std::vector<int> outer_key_cols_;
  const std::vector<int> inner_key_cols_;
  const std::vector<int> outer_output_cols_;
  const std::vector<int> inner_output_cols_;
  InsertDestination* const destination_;

  StreamingInput input_;
};

/// Joins one outer block against every inner block.
class NestedLoopsJoinWorkOrder final : public WorkOrder {
 public:
  NestedLoopsJoinWorkOrder(const Block* outer_block,
                           NestedLoopsJoinOperator* op)
      : outer_block_(outer_block), op_(op) {}

  void Execute() override;

 private:
  const Block* const outer_block_;
  NestedLoopsJoinOperator* const op_;
};

}  // namespace uot

#endif  // UOT_OPERATORS_NESTED_LOOPS_JOIN_OPERATOR_H_
