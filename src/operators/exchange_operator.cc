#include "operators/exchange_operator.h"

#include <algorithm>

#include "obs/trace_session.h"
#include "operators/key_util.h"
#include "util/scratch_arena.h"
#include "util/timer.h"

namespace uot {
namespace {

/// Emits one kJoinBatchStage span when tracing is on (same shape the
/// build/probe kernels emit, so exchange stages land on the same track).
inline void TraceStage(obs::TraceSession* trace, uint32_t tid, int op,
                       obs::JoinBatchStage stage, int64_t start_ns,
                       uint32_t rows) {
  if (trace == nullptr) return;
  trace->EmitComplete(obs::TraceEventType::kJoinBatchStage, tid, start_ns,
                      NowNanos(), op, static_cast<int32_t>(stage),
                      static_cast<int64_t>(rows));
}

}  // namespace

ExchangeOperator::ExchangeOperator(std::string name, std::vector<int> key_cols,
                                   int radix_bits,
                                   std::vector<InsertDestination*> destinations)
    : Operator(std::move(name)),
      key_cols_(std::move(key_cols)),
      radix_bits_(radix_bits),
      destinations_(std::move(destinations)) {
  UOT_CHECK(key_cols_.size() == 1 || key_cols_.size() == 2);
  UOT_CHECK(radix_bits_ >= 1 && radix_bits_ <= kMaxRadixBits);
  UOT_CHECK(destinations_.size() == NumPartitions(radix_bits_));
  for (size_t p = 0; p < destinations_.size(); ++p) {
    UOT_CHECK(destinations_[p]->partition() == static_cast<int32_t>(p));
    // One shared output table: block routing happens via the partition tag,
    // not via separate tables, so downstream edge/droppable bookkeeping
    // stays per-table.
    UOT_CHECK(destinations_[p]->output() == destinations_[0]->output());
  }
  partition_rows_ =
      std::make_unique<std::atomic<uint64_t>[]>(destinations_.size());
  for (size_t p = 0; p < destinations_.size(); ++p) {
    partition_rows_[p].store(0, std::memory_order_relaxed);
  }
}

void ExchangeOperator::ReceiveInputBlocks(int input_index,
                                          const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.Deliver(blocks);
}

void ExchangeOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool ExchangeOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  for (Block* block : input_.TakePending()) {
    for (int col : key_cols_) {
      UOT_CHECK(IsKeyableType(block->schema().column(col).type));
    }
    auto wo = std::make_unique<ExchangeWorkOrder>(block, this);
    if (!input_.from_base_table()) wo->consumed_blocks.push_back(block);
    out->push_back(std::move(wo));
  }
  return input_.done();
}

void ExchangeOperator::Finish() {
  for (InsertDestination* d : destinations_) d->Flush();
}

void ExchangeWorkOrder::Execute() {
  if (op_->exec_ctx_.join.kernel == JoinKernel::kBatched) {
    ExecuteBatched();
  } else {
    ExecuteScalar();
  }
}

void ExchangeWorkOrder::ExecuteScalar() {
  const uint32_t parts = op_->num_partitions();
  const int radix_bits = op_->radix_bits_;
  const int words = static_cast<int>(op_->key_cols_.size());
  const Schema& schema = block_->schema();

  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(&arena);
  std::byte* row = arena.Alloc(schema.row_width());
  uint64_t* counts = arena.AllocArray<uint64_t>(parts);
  std::fill(counts, counts + parts, uint64_t{0});

  // Writers are created lazily so empty partitions never check out a block.
  std::vector<std::unique_ptr<InsertDestination::Writer>> writers(parts);
  uint64_t key[2] = {0, 0};
  for (uint32_t r = 0; r < block_->num_rows(); ++r) {
    ExtractKey(*block_, op_->key_cols_, r, key);
    const uint32_t p = PartitionOfKey(key, words, radix_bits);
    if (writers[p] == nullptr) {
      writers[p] =
          std::make_unique<InsertDestination::Writer>(op_->destinations_[p]);
    }
    block_->GetRow(r, row);
    writers[p]->AppendRow(row);
    ++counts[p];
  }
  for (uint32_t p = 0; p < parts; ++p) {
    if (counts[p] != 0) {
      op_->partition_rows_[p].fetch_add(counts[p], std::memory_order_relaxed);
    }
  }
}

void ExchangeWorkOrder::ExecuteBatched() {
  const uint32_t parts = op_->num_partitions();
  const int radix_bits = op_->radix_bits_;
  const int words = static_cast<int>(op_->key_cols_.size());
  const Schema& schema = block_->schema();
  const size_t row_width = schema.row_width();
  const uint32_t batch = op_->exec_ctx_.join.clamped_batch_size();
  obs::TraceSession* trace = op_->exec_ctx_.trace;
  const uint32_t tid = 1 + static_cast<uint32_t>(worker_id);
  const int32_t op_index = operator_index;

  // All columns, in order: the exchange forwards rows unchanged.
  std::vector<int> all_cols(static_cast<size_t>(schema.num_columns()));
  for (size_t c = 0; c < all_cols.size(); ++c) {
    all_cols[c] = static_cast<int>(c);
  }

  // Per-work-order scratch, sized once and reused by every batch.
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(&arena);
  uint64_t* keys =
      arena.AllocArray<uint64_t>(static_cast<size_t>(batch) * words);
  uint32_t* partitions = arena.AllocArray<uint32_t>(batch);
  std::byte* rows = arena.Alloc(static_cast<size_t>(batch) * row_width);
  uint64_t* counts = arena.AllocArray<uint64_t>(parts);
  std::fill(counts, counts + parts, uint64_t{0});

  std::vector<std::unique_ptr<InsertDestination::Writer>> writers(parts);
  const uint32_t num_rows = block_->num_rows();
  for (uint32_t base = 0; base < num_rows; base += batch) {
    const uint32_t m = std::min(batch, num_rows - base);

    // Stage: columnar key extraction + hash + radix partition ids.
    int64_t t0 = trace != nullptr ? NowNanos() : 0;
    ExtractKeys(*block_, op_->key_cols_, base, m, keys);
    PartitionBatch(keys, m, words, radix_bits, partitions);
    TraceStage(trace, tid, op_index, obs::JoinBatchStage::kPartition, t0, m);

    // Stage: pack the batch's rows once, then scatter each to its
    // partition's writer.
    t0 = trace != nullptr ? NowNanos() : 0;
    ExtractRows(*block_, all_cols, schema, base, m, rows);
    for (uint32_t i = 0; i < m; ++i) {
      const uint32_t p = partitions[i];
      if (writers[p] == nullptr) {
        writers[p] =
            std::make_unique<InsertDestination::Writer>(op_->destinations_[p]);
      }
      writers[p]->AppendRow(rows + static_cast<size_t>(i) * row_width);
      ++counts[p];
    }
    TraceStage(trace, tid, op_index, obs::JoinBatchStage::kScatter, t0, m);
  }

  for (uint32_t p = 0; p < parts; ++p) {
    if (counts[p] != 0) {
      op_->partition_rows_[p].fetch_add(counts[p], std::memory_order_relaxed);
    }
  }
}

}  // namespace uot
