#ifndef UOT_OPERATORS_BUILD_HASH_OPERATOR_H_
#define UOT_OPERATORS_BUILD_HASH_OPERATOR_H_

#include <memory>
#include <vector>

#include "join/hash_table.h"
#include "join/lip_filter.h"
#include "join/partitioned_hash_table.h"
#include "operators/operator.h"

namespace uot {

/// Builds the join hash table (paper Section III): one shared table at
/// `radix_bits == 0`, or `2^radix_bits` disjoint partition sub-tables when
/// the build input arrives through an exchange edge (blocks tagged with
/// their partition). Partitioned builds insert into per-partition tables
/// with no shared cache lines, and each probe touches only its block's
/// sub-table.
///
/// The table is presized from the input cardinality (per partition, when
/// partitioned — the exchange tags make exact counts available), so work
/// orders are generated once the input is complete (for base-table inputs
/// that is immediately); the builds themselves then run in parallel, one
/// work order per input block.
class BuildHashOperator final : public Operator {
 public:
  /// `key_cols`/`payload_cols` index the build input's schema.
  /// `radix_bits > 0` requires the input blocks to carry partition tags
  /// (i.e. to come through an ExchangeOperator keyed on the same columns).
  BuildHashOperator(std::string name, std::vector<int> key_cols,
                    std::vector<int> payload_cols, double load_factor,
                    MemoryTracker* tracker, int radix_bits = 0);

  /// Binds the input to a materialized base table (instead of a stream).
  void AttachBaseTable(const Table* table) { input_.AttachTable(table); }

  void BindExecContext(const OperatorExecContext& ctx) override {
    exec_ctx_ = ctx;
  }

  void ReceiveInputBlocks(int input_index,
                          const std::vector<Block*>& blocks) override;
  void InputDone(int input_index) override;
  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override;

  /// The partition-0 sub-table — at radix_bits 0 (one partition) this IS
  /// the whole table, preserving the pre-partitioning interface; callers
  /// that only need the payload schema may use it at any radix.
  JoinHashTable* hash_table() {
    return tables_ != nullptr ? tables_->sub_table(0) : nullptr;
  }
  const JoinHashTable* hash_table() const {
    return tables_ != nullptr ? tables_->sub_table(0) : nullptr;
  }

  /// All partition sub-tables (nullptr before InitHashTable).
  const PartitionedJoinHashTable* partitioned_table() const {
    return tables_.get();
  }

  /// The sub-table `block`'s rows belong to: the whole table at radix 0,
  /// otherwise the sub-table of the block's partition tag (the block must
  /// be tagged — partitioned builds/probes require exchanged input).
  const JoinHashTable* table_for_block(const Block* block) const;

  int radix_bits() const { return radix_bits_; }
  const std::vector<int>& key_cols() const { return key_cols_; }

  /// Also populate a LIP Bloom filter over the (mixed) join keys, for
  /// probe-side selection pruning (paper Section VI-C). Call before
  /// execution starts.
  void EnableLipFilter(int bits_per_entry = 8) {
    lip_bits_per_entry_ = bits_per_entry;
  }

  /// Valid after this operator finished (guaranteed by a blocking edge);
  /// nullptr when LIP was not enabled.
  const LipFilter* lip_filter() const { return lip_filter_.get(); }

  /// Creates the hash-table object once the input schema is known (called
  /// lazily at first block delivery, or explicitly by plan builders that
  /// know the schema upfront).
  void InitHashTable(const Schema& input_schema);

 private:
  const std::vector<int> key_cols_;
  const std::vector<int> payload_cols_;
  const double load_factor_;
  MemoryTracker* const tracker_;
  const int radix_bits_;

  StreamingInput input_;
  std::vector<Block*> buffered_;
  std::unique_ptr<PartitionedJoinHashTable> tables_;
  int lip_bits_per_entry_ = 0;  // 0 = LIP disabled
  std::unique_ptr<LipFilter> lip_filter_;
  bool generated_ = false;
  OperatorExecContext exec_ctx_;  // defaults until the scheduler binds one
};

/// Inserts one block's rows into its hash (sub-)table, either row at a
/// time (scalar kernel) or via the batched extract -> hash+prefetch ->
/// insert pipeline; both build identical tables.
class BuildHashWorkOrder final : public WorkOrder {
 public:
  BuildHashWorkOrder(const Block* block, const std::vector<int>* key_cols,
                     const std::vector<int>* payload_cols,
                     JoinHashTable* hash_table, LipFilter* lip_filter,
                     const OperatorExecContext* ctx)
      : block_(block),
        key_cols_(key_cols),
        payload_cols_(payload_cols),
        hash_table_(hash_table),
        lip_filter_(lip_filter),
        ctx_(ctx) {}

  void Execute() override;

 private:
  void ExecuteScalar();
  void ExecuteBatched();

  const Block* const block_;
  const std::vector<int>* const key_cols_;
  const std::vector<int>* const payload_cols_;
  JoinHashTable* const hash_table_;
  LipFilter* const lip_filter_;  // may be null
  const OperatorExecContext* const ctx_;
};

}  // namespace uot

#endif  // UOT_OPERATORS_BUILD_HASH_OPERATOR_H_
