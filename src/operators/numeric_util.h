#ifndef UOT_OPERATORS_NUMERIC_UTIL_H_
#define UOT_OPERATORS_NUMERIC_UTIL_H_

#include <cstring>

#include "expr/predicate.h"
#include "storage/block.h"
#include "types/type.h"
#include "util/macros.h"

namespace uot {

/// Applies `op` to already-widened numeric operands. Shared by the
/// residual-condition filters of the vectorized probe work orders and the
/// fused pipeline's probe stage, so both paths compare byte-identically.
template <typename T>
inline bool CompareValues(CompareOp op, T a, T b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

/// Loads a numeric column value widened to double (int64 -> double keeps
/// the usual precision loss; residual comparisons depend on it being
/// applied identically on every execution path).
inline double LoadNumeric(const Type& type, const std::byte* src) {
  switch (type.id()) {
    case TypeId::kInt32:
    case TypeId::kDate: {
      int32_t v;
      std::memcpy(&v, src, 4);
      return static_cast<double>(v);
    }
    case TypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, src, 8);
      return static_cast<double>(v);
    }
    case TypeId::kDouble: {
      double v;
      std::memcpy(&v, src, 8);
      return v;
    }
    case TypeId::kChar:
      UOT_CHECK(false);  // residuals compare numeric columns
  }
  return 0.0;
}

/// Columnar LoadNumeric over rows `[row_begin, row_begin + n)`: the type
/// dispatch is hoisted out of the row loop (batched extract stage).
inline void LoadNumericColumn(const Type& type, const ColumnAccess& access,
                              uint32_t row_begin, uint32_t n, double* out) {
  switch (type.id()) {
    case TypeId::kInt32:
    case TypeId::kDate:
      for (uint32_t i = 0; i < n; ++i) {
        int32_t v;
        std::memcpy(&v, access.at(row_begin + i), 4);
        out[i] = static_cast<double>(v);
      }
      return;
    case TypeId::kInt64:
      for (uint32_t i = 0; i < n; ++i) {
        int64_t v;
        std::memcpy(&v, access.at(row_begin + i), 8);
        out[i] = static_cast<double>(v);
      }
      return;
    case TypeId::kDouble:
      for (uint32_t i = 0; i < n; ++i) {
        std::memcpy(&out[i], access.at(row_begin + i), 8);
      }
      return;
    case TypeId::kChar:
      UOT_CHECK(false);  // residuals compare numeric columns
  }
}

}  // namespace uot

#endif  // UOT_OPERATORS_NUMERIC_UTIL_H_
