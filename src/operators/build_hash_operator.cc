#include "operators/build_hash_operator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace_session.h"
#include "operators/key_util.h"
#include "util/timer.h"

namespace uot {
namespace {

/// Emits one kJoinBatchStage span when tracing is on. `start_ns` is read
/// only when `trace` is non-null, so untraced runs never call NowNanos.
inline void TraceStage(obs::TraceSession* trace, uint32_t tid, int op,
                       obs::JoinBatchStage stage, int64_t start_ns,
                       uint32_t rows) {
  if (trace == nullptr) return;
  trace->EmitComplete(obs::TraceEventType::kJoinBatchStage, tid, start_ns,
                      NowNanos(), op, static_cast<int32_t>(stage),
                      static_cast<int64_t>(rows));
}

}  // namespace

BuildHashOperator::BuildHashOperator(std::string name,
                                     std::vector<int> key_cols,
                                     std::vector<int> payload_cols,
                                     double load_factor,
                                     MemoryTracker* tracker, int radix_bits)
    : Operator(std::move(name)),
      key_cols_(std::move(key_cols)),
      payload_cols_(std::move(payload_cols)),
      load_factor_(load_factor),
      tracker_(tracker),
      radix_bits_(radix_bits) {
  UOT_CHECK(key_cols_.size() == 1 || key_cols_.size() == 2);
  UOT_CHECK(radix_bits_ >= 0 && radix_bits_ <= kMaxRadixBits);
}

void BuildHashOperator::InitHashTable(const Schema& input_schema) {
  if (tables_ != nullptr) return;
  Schema payload;
  if (input_schema.num_columns() > 0) {
    for (int c : key_cols_) {
      UOT_CHECK(IsKeyableType(input_schema.column(c).type));
    }
    payload = SubSchema(input_schema, payload_cols_);
  }  // else: empty input — probes will see an empty table
  tables_ = std::make_unique<PartitionedJoinHashTable>(
      std::move(payload), static_cast<int>(key_cols_.size()), load_factor_,
      radix_bits_, tracker_);
}

const JoinHashTable* BuildHashOperator::table_for_block(
    const Block* block) const {
  if (tables_ == nullptr) return nullptr;
  if (radix_bits_ == 0) return tables_->sub_table(0);
  const int32_t p = block->partition();
  UOT_CHECK(p >= 0 &&
            static_cast<uint32_t>(p) < tables_->num_partitions());
  return tables_->sub_table(static_cast<uint32_t>(p));
}

void BuildHashOperator::ReceiveInputBlocks(int input_index,
                                           const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  if (!blocks.empty()) InitHashTable(blocks.front()->schema());
  input_.Deliver(blocks);
}

void BuildHashOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool BuildHashOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  // Presizing requires the full input cardinality, so builds start only
  // when the input is complete.
  if (!input_.done()) return false;
  if (!generated_) {
    buffered_ = input_.TakePending();
    if (!buffered_.empty()) InitHashTable(buffered_.front()->schema());
    if (tables_ == nullptr) {
      // Empty input: create a minimal table so probes see an empty table.
      InitHashTable(Schema(std::vector<Column>{}));
    }
    // Presize each sub-table exactly: one partition gets the whole input;
    // at radix > 0 the exchange's partition tags give per-partition counts.
    const uint32_t parts = tables_->num_partitions();
    std::vector<uint64_t> counts(parts, 0);
    if (parts == 1) {
      counts[0] = input_.total_rows();
    } else {
      for (const Block* block : buffered_) {
        const int32_t p = block->partition();
        UOT_CHECK(p >= 0 && static_cast<uint32_t>(p) < parts);
        counts[static_cast<size_t>(p)] += block->num_rows();
      }
    }
    tables_->ReservePartitions(counts);
    if (lip_bits_per_entry_ > 0) {
      // One filter spans all partitions (inserts are atomic fetch_or, so
      // concurrent per-partition builds share it safely).
      lip_filter_ = std::make_unique<LipFilter>(input_.total_rows(),
                                                lip_bits_per_entry_);
    }
    for (Block* block : buffered_) {
      JoinHashTable* table =
          parts == 1 ? tables_->sub_table(0)
                     : tables_->sub_table(
                           static_cast<uint32_t>(block->partition()));
      auto wo = std::make_unique<BuildHashWorkOrder>(
          block, &key_cols_, &payload_cols_, table, lip_filter_.get(),
          &exec_ctx_);
      if (!input_.from_base_table()) wo->consumed_blocks.push_back(block);
      out->push_back(std::move(wo));
    }
    generated_ = true;
  }
  return true;
}

void BuildHashWorkOrder::Execute() {
  if (ctx_ != nullptr && ctx_->join.kernel == JoinKernel::kBatched) {
    ExecuteBatched();
  } else {
    ExecuteScalar();
  }
}

void BuildHashWorkOrder::ExecuteScalar() {
  const Schema& payload_schema = hash_table_->payload_schema();
  std::vector<std::byte> payload(payload_schema.row_width());
  uint64_t key[2] = {0, 0};
  for (uint32_t row = 0; row < block_->num_rows(); ++row) {
    ExtractKey(*block_, *key_cols_, row, key);
    ExtractColumns(*block_, *payload_cols_, payload_schema, row,
                   payload.data());
    hash_table_->Insert(key, payload.data());
    if (lip_filter_ != nullptr) {
      lip_filter_->Insert(HashJoinKey(key,
                                      static_cast<int>(key_cols_->size())));
    }
  }
}

void BuildHashWorkOrder::ExecuteBatched() {
  const Schema& payload_schema = hash_table_->payload_schema();
  const size_t payload_width = payload_schema.row_width();
  const uint32_t batch = ctx_->join.clamped_batch_size();
  const int dist = ctx_->join.prefetch_distance;
  const size_t words = key_cols_->size();
  obs::TraceSession* trace = ctx_->trace;
  const uint32_t tid = 1 + static_cast<uint32_t>(worker_id);
  const int32_t op = operator_index;

  // Per-work-order scratch, sized once and reused by every batch.
  std::vector<uint64_t> keys(static_cast<size_t>(batch) * words);
  std::vector<uint64_t> hashes;
  std::vector<std::byte> payloads(static_cast<size_t>(batch) * payload_width);

  uint64_t num_batches = 0;
  uint64_t prefetches = 0;
  const uint32_t num_rows = block_->num_rows();
  for (uint32_t base = 0; base < num_rows; base += batch) {
    const uint32_t m = std::min(batch, num_rows - base);
    ++num_batches;

    // Stage: columnar extraction of keys and packed payload rows.
    int64_t t0 = trace != nullptr ? NowNanos() : 0;
    ExtractKeys(*block_, *key_cols_, base, m, keys.data());
    if (payload_width > 0) {
      ExtractRows(*block_, *payload_cols_, payload_schema, base, m,
                  payloads.data());
    }
    TraceStage(trace, tid, op, obs::JoinBatchStage::kExtract, t0, m);

    // Stage: hash the batch, prefetch home slots ahead of the inserting
    // key, claim slots in batch order.
    t0 = trace != nullptr ? NowNanos() : 0;
    prefetches +=
        hash_table_->InsertBatch(keys.data(), payloads.data(), m, dist,
                                 &hashes);
    if (lip_filter_ != nullptr) {
      // InsertBatch leaves the batch hashes in `hashes`; the LIP filter
      // mixes the same join-key hash, so reuse instead of rehashing.
      for (uint32_t i = 0; i < m; ++i) lip_filter_->Insert(hashes[i]);
    }
    TraceStage(trace, tid, op, obs::JoinBatchStage::kInsert, t0, m);
  }

  if (ctx_->join_build_batches != nullptr) {
    ctx_->join_build_batches->Add(num_batches);
  }
  if (ctx_->join_build_prefetch_issued != nullptr && prefetches > 0) {
    ctx_->join_build_prefetch_issued->Add(prefetches);
  }
}

}  // namespace uot
