#include "operators/build_hash_operator.h"

#include "operators/key_util.h"

namespace uot {

BuildHashOperator::BuildHashOperator(std::string name,
                                     std::vector<int> key_cols,
                                     std::vector<int> payload_cols,
                                     double load_factor,
                                     MemoryTracker* tracker)
    : Operator(std::move(name)),
      key_cols_(std::move(key_cols)),
      payload_cols_(std::move(payload_cols)),
      load_factor_(load_factor),
      tracker_(tracker) {
  UOT_CHECK(key_cols_.size() == 1 || key_cols_.size() == 2);
}

void BuildHashOperator::InitHashTable(const Schema& input_schema) {
  if (hash_table_ != nullptr) return;
  Schema payload;
  if (input_schema.num_columns() > 0) {
    for (int c : key_cols_) {
      UOT_CHECK(IsKeyableType(input_schema.column(c).type));
    }
    payload = SubSchema(input_schema, payload_cols_);
  }  // else: empty input — probes will see an empty table
  hash_table_ = std::make_unique<JoinHashTable>(
      std::move(payload), static_cast<int>(key_cols_.size()), load_factor_,
      tracker_);
}

void BuildHashOperator::ReceiveInputBlocks(int input_index,
                                           const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  if (!blocks.empty()) InitHashTable(blocks.front()->schema());
  input_.Deliver(blocks);
}

void BuildHashOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool BuildHashOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  // Presizing requires the full input cardinality, so builds start only
  // when the input is complete.
  if (!input_.done()) return false;
  if (!generated_) {
    buffered_ = input_.TakePending();
    if (!buffered_.empty()) InitHashTable(buffered_.front()->schema());
    if (hash_table_ == nullptr) {
      // Empty input: create a minimal table so probes see an empty table.
      InitHashTable(Schema(std::vector<Column>{}));
    }
    hash_table_->Reserve(input_.total_rows());
    if (lip_bits_per_entry_ > 0) {
      lip_filter_ = std::make_unique<LipFilter>(input_.total_rows(),
                                                lip_bits_per_entry_);
    }
    for (Block* block : buffered_) {
      auto wo = std::make_unique<BuildHashWorkOrder>(
          block, &key_cols_, &payload_cols_, hash_table_.get(),
          lip_filter_.get());
      if (!input_.from_base_table()) wo->consumed_blocks.push_back(block);
      out->push_back(std::move(wo));
    }
    generated_ = true;
  }
  return true;
}

void BuildHashWorkOrder::Execute() {
  const Schema& payload_schema = hash_table_->payload_schema();
  std::vector<std::byte> payload(payload_schema.row_width());
  uint64_t key[2] = {0, 0};
  for (uint32_t row = 0; row < block_->num_rows(); ++row) {
    ExtractKey(*block_, *key_cols_, row, key);
    ExtractColumns(*block_, *payload_cols_, payload_schema, row,
                   payload.data());
    hash_table_->Insert(key, payload.data());
    if (lip_filter_ != nullptr) {
      lip_filter_->Insert(HashJoinKey(key,
                                      static_cast<int>(key_cols_->size())));
    }
  }
}

}  // namespace uot
