#ifndef UOT_OPERATORS_AGGREGATE_OPERATOR_H_
#define UOT_OPERATORS_AGGREGATE_OPERATOR_H_

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/predicate.h"
#include "expr/projection.h"
#include "operators/operator.h"
#include "storage/insert_destination.h"

namespace uot {

enum class AggFn : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate computation: a function over an input expression
/// (`expr == nullptr` means COUNT(*)).
struct AggSpec {
  AggFn fn;
  std::unique_ptr<Scalar> expr;
  std::string name;
};

/// Running state of one aggregate within one group.
///
/// Sums use Kahan compensation so the result is (nearly) independent of the
/// order in which work orders' partials merge — scheduling must not change
/// query results beyond the last representable bit.
struct AggState {
  double sum = 0.0;
  double comp = 0.0;  // Kahan compensation term
  int64_t count = 0;
  double min = 1e308;
  double max = -1e308;

  void Add(double v) {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }

  void Merge(const AggState& other) {
    Add(other.sum);
    Add(-other.comp);
    count += other.count;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
};

/// Hash-based (optionally grouped) aggregation with an optional fused
/// filter predicate, so plans like TPC-H Q1/Q6 are a single leaf operator
/// on the base table — matching the paper's Fig. 3 observation that those
/// queries are dominated by one leaf operator.
///
/// Each work order aggregates one input block into a thread-local partial
/// table and merges it into the shared result under a mutex; Finish()
/// materializes the final groups into the output destination.
class AggregateOperator final : public Operator {
 public:
  /// `group_cols` (0-3 columns, integral or CHAR<=8) may be empty for
  /// scalar aggregation. `input_schema` is the schema of the streamed or
  /// attached input.
  AggregateOperator(std::string name, const Schema& input_schema,
                    std::vector<int> group_cols, std::vector<AggSpec> aggs,
                    std::unique_ptr<Predicate> predicate,
                    InsertDestination* destination);

  void AttachBaseTable(const Table* table) { input_.AttachTable(table); }

  void ReceiveInputBlocks(int input_index,
                          const std::vector<Block*>& blocks) override;
  void InputDone(int input_index) override;
  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override;
  void Finish() override;

  /// Output schema: group columns (original types) then one column per
  /// aggregate (COUNT -> INT64, others -> DOUBLE).
  static Schema OutputSchema(const Schema& input_schema,
                             const std::vector<int>& group_cols,
                             const std::vector<AggSpec>& aggs);

  /// Composite group key: up to 3 widened column words.
  using GroupKey = std::array<uint64_t, 3>;
  struct KeyHash {
    size_t operator()(const GroupKey& k) const {
      uint64_t h = k[0] * 0x9E3779B97F4A7C15ULL + k[1];
      h ^= h >> 29;
      h = (h + k[2]) * 0xBF58476D1CE4E5B9ULL;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };
  using GroupMap = std::unordered_map<GroupKey, std::vector<AggState>, KeyHash>;

  /// Merges a work order's partial result (called from worker threads).
  void MergePartial(GroupMap&& partial);

  const Schema& input_schema() const { return input_schema_; }
  const std::vector<int>& group_cols() const { return group_cols_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }
  const Predicate* predicate() const { return predicate_.get(); }

 private:
  const Schema input_schema_;
  const std::vector<int> group_cols_;
  const std::vector<AggSpec> aggs_;
  const std::unique_ptr<Predicate> predicate_;
  InsertDestination* const destination_;

  StreamingInput input_;

  std::mutex merge_mutex_;
  GroupMap groups_;
};

/// Aggregates one input block into a partial group table.
class AggregateWorkOrder final : public WorkOrder {
 public:
  AggregateWorkOrder(const Block* block, AggregateOperator* op,
                     const std::vector<int>* group_cols,
                     const std::vector<AggSpec>* aggs,
                     const Predicate* predicate)
      : block_(block),
        op_(op),
        group_cols_(group_cols),
        aggs_(aggs),
        predicate_(predicate) {}

  void Execute() override;

 private:
  const Block* const block_;
  AggregateOperator* const op_;
  const std::vector<int>* const group_cols_;
  const std::vector<AggSpec>* const aggs_;
  const Predicate* const predicate_;
};

}  // namespace uot

#endif  // UOT_OPERATORS_AGGREGATE_OPERATOR_H_
