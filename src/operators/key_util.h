#ifndef UOT_OPERATORS_KEY_UTIL_H_
#define UOT_OPERATORS_KEY_UTIL_H_

#include <cstring>
#include <vector>

#include "storage/block.h"
#include "types/schema.h"
#include "util/macros.h"

namespace uot {

/// Join/grouping keys are 1-2 columns widened to 64-bit words. Integral
/// columns sign-extend; CHAR columns of width <= 8 pack their (space padded)
/// bytes. Equality of widened words is equivalent to equality of values.
inline uint64_t WidenKeyValue(const Type& type, const std::byte* value) {
  switch (type.id()) {
    case TypeId::kInt32:
    case TypeId::kDate: {
      int32_t v;
      std::memcpy(&v, value, 4);
      return static_cast<uint64_t>(static_cast<int64_t>(v));
    }
    case TypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, value, 8);
      return static_cast<uint64_t>(v);
    }
    case TypeId::kChar: {
      UOT_DCHECK(type.width() <= 8);
      uint64_t v = 0;
      std::memcpy(&v, value, type.width());
      return v;
    }
    case TypeId::kDouble:
      UOT_CHECK(false);  // doubles are not key material
  }
  return 0;
}

/// Restores the packed representation of a widened key word.
inline void UnwidenKeyValue(const Type& type, uint64_t word, std::byte* out) {
  switch (type.id()) {
    case TypeId::kInt32:
    case TypeId::kDate: {
      const int32_t v = static_cast<int32_t>(static_cast<int64_t>(word));
      std::memcpy(out, &v, 4);
      return;
    }
    case TypeId::kInt64: {
      const int64_t v = static_cast<int64_t>(word);
      std::memcpy(out, &v, 8);
      return;
    }
    case TypeId::kChar:
      std::memcpy(out, &word, type.width());
      return;
    case TypeId::kDouble:
      UOT_CHECK(false);
  }
}

/// True if `type` can serve as a key column.
inline bool IsKeyableType(const Type& type) {
  return type.IsIntegral() ||
         (type.id() == TypeId::kChar && type.width() <= 8);
}

/// Extracts the composite key of row `row` from `block` into `out[0..words)`.
inline void ExtractKey(const Block& block, const std::vector<int>& key_cols,
                       uint32_t row, uint64_t* out) {
  for (size_t k = 0; k < key_cols.size(); ++k) {
    const int col = key_cols[k];
    const Type& type = block.schema().column(col).type;
    out[k] = WidenKeyValue(type, block.Column(col).at(row));
  }
}

/// Columnar batch form of ExtractKey: widens the composite keys of rows
/// `[row_begin, row_begin + n)` into `out[i * words + k]` (row-major, one
/// group of `key_cols.size()` words per row). The type dispatch and column
/// base/stride are hoisted out of the row loop, so the inner loops are
/// tight strided copies — the extract stage of the batched join kernels.
inline void ExtractKeys(const Block& block, const std::vector<int>& key_cols,
                        uint32_t row_begin, uint32_t n, uint64_t* out) {
  const size_t words = key_cols.size();
  for (size_t k = 0; k < words; ++k) {
    const int col = key_cols[k];
    const Type& type = block.schema().column(col).type;
    const ColumnAccess access = block.Column(col);
    uint64_t* dst = out + k;
    switch (type.id()) {
      case TypeId::kInt32:
      case TypeId::kDate:
        for (uint32_t i = 0; i < n; ++i) {
          int32_t v;
          std::memcpy(&v, access.at(row_begin + i), 4);
          dst[static_cast<size_t>(i) * words] =
              static_cast<uint64_t>(static_cast<int64_t>(v));
        }
        break;
      case TypeId::kInt64:
        for (uint32_t i = 0; i < n; ++i) {
          int64_t v;
          std::memcpy(&v, access.at(row_begin + i), 8);
          dst[static_cast<size_t>(i) * words] = static_cast<uint64_t>(v);
        }
        break;
      case TypeId::kChar: {
        UOT_DCHECK(type.width() <= 8);
        const uint16_t w = type.width();
        for (uint32_t i = 0; i < n; ++i) {
          uint64_t v = 0;
          std::memcpy(&v, access.at(row_begin + i), w);
          dst[static_cast<size_t>(i) * words] = v;
        }
        break;
      }
      case TypeId::kDouble:
        UOT_CHECK(false);  // doubles are not key material
    }
  }
}

/// Columnar batch form of ExtractColumns: packs rows
/// `[row_begin, row_begin + n)` of the given columns into `n` consecutive
/// packed rows of `out_schema` starting at `out`. Per-column widths and
/// offsets are hoisted out of the row loop.
inline void ExtractRows(const Block& block, const std::vector<int>& cols,
                        const Schema& out_schema, uint32_t row_begin,
                        uint32_t n, std::byte* out) {
  const size_t stride = out_schema.row_width();
  for (size_t c = 0; c < cols.size(); ++c) {
    const uint16_t w = out_schema.column(static_cast<int>(c)).type.width();
    const size_t off = out_schema.offset(static_cast<int>(c));
    const ColumnAccess access = block.Column(cols[c]);
    std::byte* dst = out + off;
    switch (w) {
      case 4:
        for (uint32_t i = 0; i < n; ++i) {
          std::memcpy(dst + static_cast<size_t>(i) * stride,
                      access.at(row_begin + i), 4);
        }
        break;
      case 8:
        for (uint32_t i = 0; i < n; ++i) {
          std::memcpy(dst + static_cast<size_t>(i) * stride,
                      access.at(row_begin + i), 8);
        }
        break;
      default:
        for (uint32_t i = 0; i < n; ++i) {
          std::memcpy(dst + static_cast<size_t>(i) * stride,
                      access.at(row_begin + i), w);
        }
    }
  }
}

/// Copies the given columns of row `row` into a packed row of the
/// sub-schema formed by those columns, written at `out`.
inline void ExtractColumns(const Block& block, const std::vector<int>& cols,
                           const Schema& out_schema, uint32_t row,
                           std::byte* out) {
  for (size_t i = 0; i < cols.size(); ++i) {
    const uint16_t w = out_schema.column(static_cast<int>(i)).type.width();
    std::memcpy(out + out_schema.offset(static_cast<int>(i)),
                block.Column(cols[i]).at(row), w);
  }
}

/// Builds the sub-schema of `input` selecting `cols` (names preserved).
inline Schema SubSchema(const Schema& input, const std::vector<int>& cols) {
  std::vector<Column> out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(input.column(c));
  return Schema(std::move(out));
}

}  // namespace uot

#endif  // UOT_OPERATORS_KEY_UTIL_H_
