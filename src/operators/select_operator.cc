#include "operators/select_operator.h"

#include "operators/key_util.h"

namespace uot {

SelectOperator::SelectOperator(std::string name,
                               std::unique_ptr<Predicate> predicate,
                               std::unique_ptr<Projection> projection,
                               InsertDestination* destination)
    : Operator(std::move(name)),
      predicate_(std::move(predicate)),
      projection_(std::move(projection)),
      destination_(destination) {
  UOT_CHECK(destination_ != nullptr);
  UOT_CHECK(destination_->schema() == projection_->output_schema());
}

void SelectOperator::ReceiveInputBlocks(int input_index,
                                        const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.Deliver(blocks);
}

void SelectOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool SelectOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  for (Block* block : input_.TakePending()) {
    auto wo = std::make_unique<SelectWorkOrder>(
        block, predicate_.get(), projection_.get(), &lip_, destination_);
    if (!input_.from_base_table()) wo->consumed_blocks.push_back(block);
    out->push_back(std::move(wo));
  }
  return input_.done();
}

void SelectOperator::Finish() { destination_->Flush(); }

void SelectWorkOrder::Execute() {
  std::vector<uint32_t> sel = predicate_->FilterAll(*block_);
  // LIP pruning: drop rows whose join key cannot match any build row.
  for (const LipAttachment& lip : *lip_) {
    if (sel.empty()) break;
    const LipFilter* filter = lip.source->lip_filter();
    UOT_CHECK(filter != nullptr);  // blocking edge + EnableLipFilter
    const Type& type = block_->schema().column(lip.key_col).type;
    const ColumnAccess access = block_->Column(lip.key_col);
    uint32_t kept = 0;
    for (uint32_t i = 0; i < sel.size(); ++i) {
      const uint64_t key[1] = {WidenKeyValue(type, access.at(sel[i]))};
      if (filter->MightContain(HashJoinKey(key, 1))) sel[kept++] = sel[i];
    }
    sel.resize(kept);
  }
  if (sel.empty()) return;
  InsertDestination::Writer writer(destination_);
  projection_->MaterializeInto(*block_, sel, &writer);
}

}  // namespace uot
