#include "operators/sort_merge_join_operator.h"

#include <algorithm>
#include <cstring>

#include "operators/key_util.h"

namespace uot {
namespace {

/// A side's row with its composite sort key.
struct KeyedRow {
  uint64_t key[2];
  const Block* block;
  uint32_t row;
};

bool KeyLess(const KeyedRow& a, const KeyedRow& b) {
  // Sort by the widened words reinterpreted as signed values so runs of
  // equal keys are contiguous; ordering direction is irrelevant to the
  // join, only grouping is.
  if (a.key[0] != b.key[0]) {
    return static_cast<int64_t>(a.key[0]) < static_cast<int64_t>(b.key[0]);
  }
  return static_cast<int64_t>(a.key[1]) < static_cast<int64_t>(b.key[1]);
}

bool KeyEqual(const KeyedRow& a, const KeyedRow& b) {
  return a.key[0] == b.key[0] && a.key[1] == b.key[1];
}

std::vector<KeyedRow> GatherKeyed(const std::vector<Block*>& blocks,
                                  const std::vector<int>& key_cols) {
  std::vector<KeyedRow> rows;
  for (const Block* block : blocks) {
    for (uint32_t r = 0; r < block->num_rows(); ++r) {
      KeyedRow kr;
      kr.key[0] = 0;
      kr.key[1] = 0;
      ExtractKey(*block, key_cols, r, kr.key);
      kr.block = block;
      kr.row = r;
      rows.push_back(kr);
    }
  }
  std::sort(rows.begin(), rows.end(), KeyLess);
  return rows;
}

}  // namespace

SortMergeJoinOperator::SortMergeJoinOperator(
    std::string name, const Schema& left_schema, const Schema& right_schema,
    std::vector<int> left_key_cols, std::vector<int> right_key_cols,
    std::vector<int> left_output_cols, std::vector<int> right_output_cols,
    InsertDestination* destination)
    : Operator(std::move(name)),
      left_schema_(left_schema),
      right_schema_(right_schema),
      left_key_cols_(std::move(left_key_cols)),
      right_key_cols_(std::move(right_key_cols)),
      left_output_cols_(std::move(left_output_cols)),
      right_output_cols_(std::move(right_output_cols)),
      destination_(destination) {
  UOT_CHECK(left_key_cols_.size() == right_key_cols_.size());
  UOT_CHECK(!left_key_cols_.empty() && left_key_cols_.size() <= 2);
}

void SortMergeJoinOperator::ReceiveInputBlocks(
    int input_index, const std::vector<Block*>& blocks) {
  (input_index == 0 ? left_ : right_).Deliver(blocks);
}

void SortMergeJoinOperator::InputDone(int input_index) {
  (input_index == 0 ? left_ : right_).MarkDone();
}

bool SortMergeJoinOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  if (!left_.done() || !right_.done()) return false;
  if (!generated_) {
    left_blocks_ = left_.TakePending();
    right_blocks_ = right_.TakePending();
    auto wo = std::make_unique<SortMergeJoinWorkOrder>(this);
    // Transient input blocks (from either streaming side) may be dropped
    // once the single merge work order has executed.
    if (!left_.from_base_table()) {
      wo->consumed_blocks.insert(wo->consumed_blocks.end(),
                                 left_blocks_.begin(), left_blocks_.end());
    }
    if (!right_.from_base_table()) {
      wo->consumed_blocks.insert(wo->consumed_blocks.end(),
                                 right_blocks_.begin(), right_blocks_.end());
    }
    out->push_back(std::move(wo));
    generated_ = true;
  }
  return true;
}

void SortMergeJoinOperator::Finish() { destination_->Flush(); }

Schema SortMergeJoinOperator::OutputSchema(
    const Schema& left_schema, const std::vector<int>& left_output_cols,
    const Schema& right_schema, const std::vector<int>& right_output_cols) {
  std::vector<Column> columns;
  for (int c : left_output_cols) columns.push_back(left_schema.column(c));
  for (int c : right_output_cols) columns.push_back(right_schema.column(c));
  return Schema(std::move(columns));
}

void SortMergeJoinWorkOrder::Execute() {
  const std::vector<KeyedRow> left =
      GatherKeyed(op_->left_blocks_, op_->left_key_cols_);
  const std::vector<KeyedRow> right =
      GatherKeyed(op_->right_blocks_, op_->right_key_cols_);

  const Schema left_part = SubSchema(op_->left_schema_,
                                     op_->left_output_cols_);
  const Schema right_part = SubSchema(op_->right_schema_,
                                      op_->right_output_cols_);
  std::vector<std::byte> row(op_->destination_->schema().row_width());
  InsertDestination::Writer writer(op_->destination_);

  size_t li = 0, ri = 0;
  while (li < left.size() && ri < right.size()) {
    if (KeyLess(left[li], right[ri])) {
      ++li;
    } else if (KeyLess(right[ri], left[li])) {
      ++ri;
    } else {
      // Equal-key runs: emit the cross product.
      size_t lend = li;
      while (lend < left.size() && KeyEqual(left[lend], left[li])) ++lend;
      size_t rend = ri;
      while (rend < right.size() && KeyEqual(right[rend], right[ri])) ++rend;
      for (size_t l = li; l < lend; ++l) {
        ExtractColumns(*left[l].block, op_->left_output_cols_, left_part,
                       left[l].row, row.data());
        for (size_t r = ri; r < rend; ++r) {
          ExtractColumns(*right[r].block, op_->right_output_cols_,
                         right_part, right[r].row,
                         row.data() + left_part.row_width());
          writer.AppendRow(row.data());
        }
      }
      li = lend;
      ri = rend;
    }
  }
}

}  // namespace uot
