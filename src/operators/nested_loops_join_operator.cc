#include "operators/nested_loops_join_operator.h"

#include <cstring>

#include "operators/key_util.h"

namespace uot {

NestedLoopsJoinOperator::NestedLoopsJoinOperator(
    std::string name, const Table* inner, std::vector<int> outer_key_cols,
    std::vector<int> inner_key_cols, std::vector<int> outer_output_cols,
    std::vector<int> inner_output_cols, InsertDestination* destination)
    : Operator(std::move(name)),
      inner_(inner),
      outer_key_cols_(std::move(outer_key_cols)),
      inner_key_cols_(std::move(inner_key_cols)),
      outer_output_cols_(std::move(outer_output_cols)),
      inner_output_cols_(std::move(inner_output_cols)),
      destination_(destination) {
  UOT_CHECK(inner_ != nullptr);
  UOT_CHECK(outer_key_cols_.size() == inner_key_cols_.size());
  UOT_CHECK(!outer_key_cols_.empty() && outer_key_cols_.size() <= 2);
}

void NestedLoopsJoinOperator::ReceiveInputBlocks(
    int input_index, const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.Deliver(blocks);
}

void NestedLoopsJoinOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool NestedLoopsJoinOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  for (Block* block : input_.TakePending()) {
    auto wo = std::make_unique<NestedLoopsJoinWorkOrder>(block, this);
    if (!input_.from_base_table()) wo->consumed_blocks.push_back(block);
    out->push_back(std::move(wo));
  }
  return input_.done();
}

void NestedLoopsJoinOperator::Finish() { destination_->Flush(); }

Schema NestedLoopsJoinOperator::OutputSchema(
    const Schema& outer_schema, const std::vector<int>& outer_output_cols,
    const Schema& inner_schema, const std::vector<int>& inner_output_cols) {
  std::vector<Column> columns;
  for (int c : outer_output_cols) columns.push_back(outer_schema.column(c));
  for (int c : inner_output_cols) columns.push_back(inner_schema.column(c));
  return Schema(std::move(columns));
}

void NestedLoopsJoinWorkOrder::Execute() {
  const Schema& out_schema = op_->destination_->schema();
  const Schema outer_part =
      SubSchema(outer_block_->schema(), op_->outer_output_cols_);
  const Schema inner_part =
      SubSchema(op_->inner_->schema(), op_->inner_output_cols_);
  std::vector<std::byte> row(out_schema.row_width());
  uint64_t outer_key[2] = {0, 0};
  uint64_t inner_key[2] = {0, 0};
  const size_t key_words = op_->outer_key_cols_.size();

  InsertDestination::Writer writer(op_->destination_);
  for (uint32_t r = 0; r < outer_block_->num_rows(); ++r) {
    ExtractKey(*outer_block_, op_->outer_key_cols_, r, outer_key);
    bool outer_ready = false;
    for (const Block* inner_block : op_->inner_->blocks()) {
      for (uint32_t s = 0; s < inner_block->num_rows(); ++s) {
        ExtractKey(*inner_block, op_->inner_key_cols_, s, inner_key);
        if (outer_key[0] != inner_key[0]) continue;
        if (key_words == 2 && outer_key[1] != inner_key[1]) continue;
        if (!outer_ready) {
          ExtractColumns(*outer_block_, op_->outer_output_cols_, outer_part,
                         r, row.data());
          outer_ready = true;
        }
        ExtractColumns(*inner_block, op_->inner_output_cols_, inner_part, s,
                       row.data() + outer_part.row_width());
        writer.AppendRow(row.data());
      }
    }
  }
}

}  // namespace uot
