#ifndef UOT_OPERATORS_SORT_OPERATOR_H_
#define UOT_OPERATORS_SORT_OPERATOR_H_

#include <memory>
#include <vector>

#include "operators/operator.h"
#include "storage/insert_destination.h"

namespace uot {

/// One ORDER BY key.
struct SortKey {
  int col;
  bool ascending;
};

/// A blocking sort: buffers the whole input, then one work order sorts and
/// rewrites it. Sort-based operators are inherently blocking (paper §V-B),
/// so the UoT value does not apply to their input edge; they appear at the
/// top of TPC-H plans where inputs are small.
class SortOperator final : public Operator {
 public:
  SortOperator(std::string name, const Schema& input_schema,
               std::vector<SortKey> keys, InsertDestination* destination,
               uint64_t limit = 0);  // limit 0 = no limit

  void AttachBaseTable(const Table* table) { input_.AttachTable(table); }

  void ReceiveInputBlocks(int input_index,
                          const std::vector<Block*>& blocks) override;
  void InputDone(int input_index) override;
  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override;
  void Finish() override;

 private:
  friend class SortWorkOrder;

  const Schema input_schema_;
  const std::vector<SortKey> keys_;
  InsertDestination* const destination_;
  const uint64_t limit_;

  StreamingInput input_;
  std::vector<Block*> buffered_;
  bool generated_ = false;
};

/// Sorts the operator's buffered input and writes it out in order.
class SortWorkOrder final : public WorkOrder {
 public:
  explicit SortWorkOrder(SortOperator* op) : op_(op) {}

  void Execute() override;

 private:
  SortOperator* const op_;
};

}  // namespace uot

#endif  // UOT_OPERATORS_SORT_OPERATOR_H_
