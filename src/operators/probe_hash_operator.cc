#include "operators/probe_hash_operator.h"

#include <cstring>

#include "operators/key_util.h"

namespace uot {
namespace {

template <typename T>
bool CompareValues(CompareOp op, T a, T b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

/// Loads a numeric column value widened to double.
double LoadNumeric(const Type& type, const std::byte* src) {
  switch (type.id()) {
    case TypeId::kInt32:
    case TypeId::kDate: {
      int32_t v;
      std::memcpy(&v, src, 4);
      return static_cast<double>(v);
    }
    case TypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, src, 8);
      return static_cast<double>(v);
    }
    case TypeId::kDouble: {
      double v;
      std::memcpy(&v, src, 8);
      return v;
    }
    case TypeId::kChar:
      UOT_CHECK(false);  // residuals compare numeric columns
  }
  return 0.0;
}

}  // namespace

ProbeHashOperator::ProbeHashOperator(
    std::string name, const BuildHashOperator* build,
    std::vector<int> probe_key_cols, std::vector<int> probe_output_cols,
    JoinKind kind, std::vector<ResidualCondition> residuals,
    InsertDestination* destination)
    : Operator(std::move(name)),
      build_(build),
      probe_key_cols_(std::move(probe_key_cols)),
      probe_output_cols_(std::move(probe_output_cols)),
      kind_(kind),
      residuals_(std::move(residuals)),
      destination_(destination) {
  UOT_CHECK(probe_key_cols_.size() == 1 || probe_key_cols_.size() == 2);
  UOT_CHECK(residuals_.size() <= 4);
}

void ProbeHashOperator::ReceiveInputBlocks(int input_index,
                                           const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.Deliver(blocks);
}

void ProbeHashOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool ProbeHashOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  const JoinHashTable* table = build_->hash_table();
  UOT_CHECK(table != nullptr);  // blocking edge guarantees build finished
  for (Block* block : input_.TakePending()) {
    auto wo = std::make_unique<ProbeHashWorkOrder>(
        block, table, &probe_key_cols_, &probe_output_cols_, kind_,
        &residuals_, destination_);
    if (!input_.from_base_table()) wo->consumed_blocks.push_back(block);
    out->push_back(std::move(wo));
  }
  return input_.done();
}

void ProbeHashOperator::Finish() { destination_->Flush(); }

Schema ProbeHashOperator::OutputSchema(const Schema& probe_schema,
                                       const std::vector<int>& probe_output_cols,
                                       const Schema& build_schema,
                                       const std::vector<int>& payload_cols,
                                       JoinKind kind) {
  std::vector<Column> columns;
  for (int c : probe_output_cols) columns.push_back(probe_schema.column(c));
  if (kind == JoinKind::kInner) {
    for (int c : payload_cols) columns.push_back(build_schema.column(c));
  }
  return Schema(std::move(columns));
}

void ProbeHashWorkOrder::Execute() {
  const Schema& out_schema = destination_->schema();
  const Schema& payload_schema = hash_table_->payload_schema();
  const Schema probe_part = SubSchema(block_->schema(), *probe_output_cols_);
  const uint32_t probe_width = probe_part.row_width();
  UOT_DCHECK(kind_ != JoinKind::kInner ||
             probe_width + payload_schema.row_width() ==
                 out_schema.row_width());
  (void)out_schema;

  std::vector<std::byte> row(destination_->schema().row_width());
  uint64_t key[2] = {0, 0};
  InsertDestination::Writer writer(destination_);

  for (uint32_t r = 0; r < block_->num_rows(); ++r) {
    ExtractKey(*block_, *probe_key_cols_, r, key);
    // Residual probe-side values are loaded once per row.
    double probe_residuals[4];
    for (size_t i = 0; i < residuals_->size(); ++i) {
      const ResidualCondition& rc = (*residuals_)[i];
      probe_residuals[i] =
          LoadNumeric(block_->schema().column(rc.probe_col).type,
                      block_->Column(rc.probe_col).at(r));
    }
    bool probe_part_ready = false;
    bool any_match = false;
    hash_table_->Probe(key, [&](const std::byte* payload) {
      for (size_t i = 0; i < residuals_->size(); ++i) {
        const ResidualCondition& rc = (*residuals_)[i];
        const double build_val =
            rc.scale *
            LoadNumeric(payload_schema.column(rc.payload_col).type,
                        payload + payload_schema.offset(rc.payload_col));
        if (!CompareValues(rc.op, probe_residuals[i], build_val)) return;
      }
      any_match = true;
      if (kind_ != JoinKind::kInner) return;
      if (!probe_part_ready) {
        ExtractColumns(*block_, *probe_output_cols_, probe_part, r,
                       row.data());
        probe_part_ready = true;
      }
      if (payload_schema.row_width() > 0) {
        std::memcpy(row.data() + probe_width, payload,
                    payload_schema.row_width());
      }
      writer.AppendRow(row.data());
    });
    const bool emit_probe_row =
        (kind_ == JoinKind::kLeftSemi && any_match) ||
        (kind_ == JoinKind::kLeftAnti && !any_match);
    if (emit_probe_row) {
      ExtractColumns(*block_, *probe_output_cols_, probe_part, r, row.data());
      writer.AppendRow(row.data());
    }
  }
}

}  // namespace uot
