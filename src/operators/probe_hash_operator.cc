#include "operators/probe_hash_operator.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_session.h"
#include "operators/key_util.h"
#include "operators/numeric_util.h"
#include "util/timer.h"

namespace uot {
namespace {

/// Emits one kJoinBatchStage span when tracing is on. `start_ns` is read
/// only when `trace` is non-null, so untraced runs never call NowNanos.
inline void TraceStage(obs::TraceSession* trace, uint32_t tid, int op,
                       obs::JoinBatchStage stage, int64_t start_ns,
                       uint32_t rows) {
  if (trace == nullptr) return;
  trace->EmitComplete(obs::TraceEventType::kJoinBatchStage, tid, start_ns,
                      NowNanos(), op, static_cast<int32_t>(stage),
                      static_cast<int64_t>(rows));
}

}  // namespace

ProbeHashOperator::ProbeHashOperator(
    std::string name, const BuildHashOperator* build,
    std::vector<int> probe_key_cols, std::vector<int> probe_output_cols,
    JoinKind kind, std::vector<ResidualCondition> residuals,
    InsertDestination* destination)
    : Operator(std::move(name)),
      build_(build),
      probe_key_cols_(std::move(probe_key_cols)),
      probe_output_cols_(std::move(probe_output_cols)),
      kind_(kind),
      residuals_(std::move(residuals)),
      destination_(destination) {
  UOT_CHECK(probe_key_cols_.size() == 1 || probe_key_cols_.size() == 2);
  UOT_CHECK(residuals_.size() <= 4);
}

void ProbeHashOperator::ReceiveInputBlocks(int input_index,
                                           const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.Deliver(blocks);
}

void ProbeHashOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool ProbeHashOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  UOT_CHECK(build_->hash_table() != nullptr);  // blocking edge: build done
  for (Block* block : input_.TakePending()) {
    // The whole table at radix 0; the block's partition sub-table when the
    // build is partitioned (probe input then comes through an exchange
    // keyed like the build, so each block's matches are all in one
    // sub-table). The probe kernel itself is partition-oblivious.
    const JoinHashTable* table = build_->table_for_block(block);
    auto wo = std::make_unique<ProbeHashWorkOrder>(
        block, table, &probe_key_cols_, &probe_output_cols_, kind_,
        &residuals_, destination_, &exec_ctx_);
    if (!input_.from_base_table()) wo->consumed_blocks.push_back(block);
    out->push_back(std::move(wo));
  }
  return input_.done();
}

void ProbeHashOperator::Finish() { destination_->Flush(); }

Schema ProbeHashOperator::OutputSchema(const Schema& probe_schema,
                                       const std::vector<int>& probe_output_cols,
                                       const Schema& build_schema,
                                       const std::vector<int>& payload_cols,
                                       JoinKind kind) {
  std::vector<Column> columns;
  for (int c : probe_output_cols) columns.push_back(probe_schema.column(c));
  if (kind == JoinKind::kInner) {
    for (int c : payload_cols) columns.push_back(build_schema.column(c));
  }
  return Schema(std::move(columns));
}

void ProbeHashWorkOrder::Execute() {
  if (ctx_ != nullptr && ctx_->join.kernel == JoinKernel::kBatched) {
    ExecuteBatched();
  } else {
    ExecuteScalar();
  }
}

void ProbeHashWorkOrder::ExecuteScalar() {
  const Schema& out_schema = destination_->schema();
  const Schema& payload_schema = hash_table_->payload_schema();
  const Schema probe_part = SubSchema(block_->schema(), *probe_output_cols_);
  const uint32_t probe_width = probe_part.row_width();
  UOT_DCHECK(kind_ != JoinKind::kInner ||
             probe_width + payload_schema.row_width() ==
                 out_schema.row_width());
  (void)out_schema;

  std::vector<std::byte> row(destination_->schema().row_width());
  uint64_t key[2] = {0, 0};
  InsertDestination::Writer writer(destination_);

  for (uint32_t r = 0; r < block_->num_rows(); ++r) {
    ExtractKey(*block_, *probe_key_cols_, r, key);
    // Residual probe-side values are loaded once per row.
    double probe_residuals[4];
    for (size_t i = 0; i < residuals_->size(); ++i) {
      const ResidualCondition& rc = (*residuals_)[i];
      probe_residuals[i] =
          LoadNumeric(block_->schema().column(rc.probe_col).type,
                      block_->Column(rc.probe_col).at(r));
    }
    bool probe_part_ready = false;
    bool any_match = false;
    hash_table_->Probe(key, [&](const std::byte* payload) {
      for (size_t i = 0; i < residuals_->size(); ++i) {
        const ResidualCondition& rc = (*residuals_)[i];
        const double build_val =
            rc.scale *
            LoadNumeric(payload_schema.column(rc.payload_col).type,
                        payload + payload_schema.offset(rc.payload_col));
        if (!CompareValues(rc.op, probe_residuals[i], build_val)) return;
      }
      any_match = true;
      if (kind_ != JoinKind::kInner) return;
      if (!probe_part_ready) {
        ExtractColumns(*block_, *probe_output_cols_, probe_part, r,
                       row.data());
        probe_part_ready = true;
      }
      if (payload_schema.row_width() > 0) {
        std::memcpy(row.data() + probe_width, payload,
                    payload_schema.row_width());
      }
      writer.AppendRow(row.data());
    });
    const bool emit_probe_row =
        (kind_ == JoinKind::kLeftSemi && any_match) ||
        (kind_ == JoinKind::kLeftAnti && !any_match);
    if (emit_probe_row) {
      ExtractColumns(*block_, *probe_output_cols_, probe_part, r, row.data());
      writer.AppendRow(row.data());
    }
  }
}

void ProbeHashWorkOrder::ExecuteBatched() {
  const Schema& payload_schema = hash_table_->payload_schema();
  const Schema probe_part = SubSchema(block_->schema(), *probe_output_cols_);
  const uint32_t probe_width = probe_part.row_width();
  const size_t payload_width = payload_schema.row_width();
  UOT_DCHECK(kind_ != JoinKind::kInner ||
             probe_width + payload_width ==
                 destination_->schema().row_width());

  const uint32_t batch = ctx_->join.clamped_batch_size();
  const int dist = ctx_->join.prefetch_distance;
  const size_t words = probe_key_cols_->size();
  const size_t num_res = residuals_->size();
  obs::TraceSession* trace = ctx_->trace;
  const uint32_t tid = 1 + static_cast<uint32_t>(worker_id);
  const int32_t op = operator_index;

  // Per-work-order scratch, sized once and reused by every batch — the
  // steady-state loop performs no heap allocation (`matches` and `hashes`
  // grow to their high-water marks and stay there).
  std::vector<uint64_t> keys(static_cast<size_t>(batch) * words);
  std::vector<uint64_t> hashes;
  std::vector<JoinMatch> matches;
  std::vector<double> residual_vals(num_res * batch);  // [rc * batch + row]
  std::vector<uint8_t> row_has_match(kind_ == JoinKind::kInner ? 0 : batch);
  std::vector<std::byte> row(destination_->schema().row_width());
  InsertDestination::Writer writer(destination_);

  uint64_t num_batches = 0;
  uint64_t prefetches = 0;
  const uint32_t num_rows = block_->num_rows();
  for (uint32_t base = 0; base < num_rows; base += batch) {
    const uint32_t m = std::min(batch, num_rows - base);
    ++num_batches;

    // Stage: columnar extraction of keys and probe-side residual values.
    int64_t t0 = trace != nullptr ? NowNanos() : 0;
    ExtractKeys(*block_, *probe_key_cols_, base, m, keys.data());
    for (size_t rc = 0; rc < num_res; ++rc) {
      const ResidualCondition& cond = (*residuals_)[rc];
      LoadNumericColumn(block_->schema().column(cond.probe_col).type,
                        block_->Column(cond.probe_col), base, m,
                        residual_vals.data() + rc * batch);
    }
    TraceStage(trace, tid, op, obs::JoinBatchStage::kExtract, t0, m);

    // Stage: hash the whole batch, prefetch home slots ahead of the
    // resolving key, collect candidate matches.
    t0 = trace != nullptr ? NowNanos() : 0;
    prefetches +=
        hash_table_->ProbeBatch(keys.data(), m, dist, &hashes, &matches);
    TraceStage(trace, tid, op, obs::JoinBatchStage::kProbe, t0, m);

    // Stage: residual filter — compact `matches` in place, preserving
    // order so emission matches the scalar path byte for byte.
    if (num_res > 0 && !matches.empty()) {
      t0 = trace != nullptr ? NowNanos() : 0;
      size_t kept = 0;
      for (const JoinMatch& match : matches) {
        bool ok = true;
        for (size_t rc = 0; rc < num_res; ++rc) {
          const ResidualCondition& cond = (*residuals_)[rc];
          const double build_val =
              cond.scale *
              LoadNumeric(
                  payload_schema.column(cond.payload_col).type,
                  match.payload + payload_schema.offset(cond.payload_col));
          if (!CompareValues(cond.op, residual_vals[rc * batch + match.row],
                             build_val)) {
            ok = false;
            break;
          }
        }
        if (ok) matches[kept++] = match;
      }
      matches.resize(kept);
      TraceStage(trace, tid, op, obs::JoinBatchStage::kResidual, t0, m);
    }

    // Stage: emit. Matches arrive grouped by probe row ascending, so the
    // probe part is packed once per distinct matching row.
    t0 = trace != nullptr ? NowNanos() : 0;
    if (kind_ == JoinKind::kInner) {
      uint32_t ready_row = UINT32_MAX;  // no probe part packed yet
      for (const JoinMatch& match : matches) {
        if (match.row != ready_row) {
          ExtractColumns(*block_, *probe_output_cols_, probe_part,
                         base + match.row, row.data());
          ready_row = match.row;
        }
        if (payload_width > 0) {
          std::memcpy(row.data() + probe_width, match.payload, payload_width);
        }
        writer.AppendRow(row.data());
      }
    } else {
      std::fill(row_has_match.begin(), row_has_match.begin() + m, uint8_t{0});
      for (const JoinMatch& match : matches) row_has_match[match.row] = 1;
      const uint8_t want = kind_ == JoinKind::kLeftSemi ? 1 : 0;
      for (uint32_t i = 0; i < m; ++i) {
        if (row_has_match[i] != want) continue;
        ExtractColumns(*block_, *probe_output_cols_, probe_part, base + i,
                       row.data());
        writer.AppendRow(row.data());
      }
    }
    TraceStage(trace, tid, op, obs::JoinBatchStage::kEmit, t0, m);
  }

  if (ctx_->join_probe_batches != nullptr) {
    ctx_->join_probe_batches->Add(num_batches);
  }
  if (ctx_->join_probe_prefetch_issued != nullptr && prefetches > 0) {
    ctx_->join_probe_prefetch_issued->Add(prefetches);
  }
}

}  // namespace uot
