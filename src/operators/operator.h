#ifndef UOT_OPERATORS_OPERATOR_H_
#define UOT_OPERATORS_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "operators/exec_context.h"
#include "storage/block.h"
#include "storage/table.h"

namespace uot {

/// One independently executable unit of an operator's work (paper
/// Section III): the operator's logic bound to one input granule. Work
/// orders of one operator may execute concurrently on different workers.
class WorkOrder {
 public:
  virtual ~WorkOrder() = default;

  virtual void Execute() = 0;

  /// Set by the scheduler at dispatch time.
  int operator_index = -1;

  /// Worker executing this order, set just before Execute(); 0 for
  /// standalone drivers. Used as the trace track (tid = 1 + worker_id).
  int worker_id = 0;

  /// The transient intermediate blocks this work order consumes, if any.
  /// The scheduler may drop them once the work order completes (temporary
  /// blocks are transient under small UoT values — paper Table II's
  /// zero intermediate-table footprint for the low-UoT strategy). Never
  /// populated with base-table input blocks. Operators with several
  /// streaming inputs (sort-merge join) list blocks from every input; the
  /// scheduler resolves each block to its producer table.
  std::vector<Block*> consumed_blocks;
};

/// A physical relational operator.
///
/// The scheduler drives operators through a small lifecycle, always from the
/// scheduler thread (implementations need no internal locking for these
/// calls):
///   1. ReceiveInputBlocks / InputDone as the UoT policy releases producer
///      output to this operator;
///   2. GenerateWorkOrders whenever new input or dependency completion makes
///      progress possible — the operator emits ready work orders and reports
///      whether it will ever emit more;
///   3. Finish once all emitted work orders have executed and generation is
///      done — the operator flushes partially filled output blocks.
class Operator {
 public:
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(Operator);

  const std::string& name() const { return name_; }

  /// Installs the execution context (kernel knobs + observability handles)
  /// before work-order generation starts. Operators that never get bound
  /// run with the default-constructed context. Called from the scheduler
  /// thread (or a standalone driver); the referenced sinks must outlive
  /// every work order of this operator.
  virtual void BindExecContext(const OperatorExecContext& ctx) { (void)ctx; }

  /// Streaming input delivery. `input_index` identifies the edge for
  /// operators with several streaming inputs.
  virtual void ReceiveInputBlocks(int input_index,
                                  const std::vector<Block*>& blocks) {
    (void)input_index;
    (void)blocks;
  }

  /// The streaming producer feeding `input_index` has completed.
  virtual void InputDone(int input_index) { (void)input_index; }

  /// Emits work orders that are ready to execute. Returns true when the
  /// operator is certain it will generate no further work orders.
  virtual bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) = 0;

  /// All work orders completed; flush outputs (partially filled blocks are
  /// transferred at the end of the operator's execution — paper §III-B).
  virtual void Finish() {}

 private:
  const std::string name_;
};

/// Helper for operators with one streaming (or base-table) input: tracks
/// delivered-but-unprocessed blocks and end-of-input.
class StreamingInput {
 public:
  StreamingInput() = default;

  /// Binds the input to a fully materialized table instead of a stream.
  void AttachTable(const Table* table) {
    for (Block* b : table->blocks()) pending_.push_back(b);
    done_ = true;
    from_base_table_ = true;
    total_rows_ += table->NumRows();
  }

  /// True if the input is a base table (whose blocks must never be
  /// treated as transient intermediates).
  bool from_base_table() const { return from_base_table_; }

  void Deliver(const std::vector<Block*>& blocks) {
    for (Block* b : blocks) {
      pending_.push_back(b);
      total_rows_ += b->num_rows();
    }
  }

  void MarkDone() { done_ = true; }
  bool done() const { return done_; }
  uint64_t total_rows() const { return total_rows_; }

  /// Blocks delivered since the last call (consumed by the operator).
  std::vector<Block*> TakePending() {
    std::vector<Block*> taken;
    taken.swap(pending_);
    return taken;
  }

  bool HasPending() const { return !pending_.empty(); }

 private:
  std::vector<Block*> pending_;
  bool done_ = false;
  bool from_base_table_ = false;
  uint64_t total_rows_ = 0;
};

}  // namespace uot

#endif  // UOT_OPERATORS_OPERATOR_H_
