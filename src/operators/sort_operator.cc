#include "operators/sort_operator.h"

#include <algorithm>
#include <cstring>

namespace uot {

SortOperator::SortOperator(std::string name, const Schema& input_schema,
                           std::vector<SortKey> keys,
                           InsertDestination* destination, uint64_t limit)
    : Operator(std::move(name)),
      input_schema_(input_schema),
      keys_(std::move(keys)),
      destination_(destination),
      limit_(limit) {
  UOT_CHECK(!keys_.empty());
}

void SortOperator::ReceiveInputBlocks(int input_index,
                                      const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.Deliver(blocks);
}

void SortOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool SortOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  if (!input_.done()) return false;
  if (!generated_) {
    buffered_ = input_.TakePending();
    auto wo = std::make_unique<SortWorkOrder>(this);
    // The sort copies every input row into its own packed buffer, so
    // transient input blocks may be dropped after the work order runs.
    if (!input_.from_base_table()) wo->consumed_blocks = buffered_;
    out->push_back(std::move(wo));
    generated_ = true;
  }
  return true;
}

void SortOperator::Finish() { destination_->Flush(); }

void SortWorkOrder::Execute() {
  const Schema& schema = op_->input_schema_;
  const uint32_t width = schema.row_width();

  // Gather all rows into a contiguous packed buffer.
  uint64_t total = 0;
  for (const Block* b : op_->buffered_) total += b->num_rows();
  std::vector<std::byte> rows(total * width);
  uint64_t at = 0;
  for (const Block* b : op_->buffered_) {
    for (uint32_t r = 0; r < b->num_rows(); ++r) {
      b->GetRow(r, rows.data() + at * width);
      ++at;
    }
  }

  std::vector<uint64_t> order(total);
  for (uint64_t i = 0; i < total; ++i) order[i] = i;

  auto compare_rows = [&](uint64_t a, uint64_t b) {
    for (const SortKey& k : op_->keys_) {
      const Type& type = schema.column(k.col).type;
      const std::byte* va = rows.data() + a * width + schema.offset(k.col);
      const std::byte* vb = rows.data() + b * width + schema.offset(k.col);
      int c = 0;
      switch (type.id()) {
        case TypeId::kInt32:
        case TypeId::kDate: {
          int32_t x, y;
          std::memcpy(&x, va, 4);
          std::memcpy(&y, vb, 4);
          c = (x < y) ? -1 : (x > y ? 1 : 0);
          break;
        }
        case TypeId::kInt64: {
          int64_t x, y;
          std::memcpy(&x, va, 8);
          std::memcpy(&y, vb, 8);
          c = (x < y) ? -1 : (x > y ? 1 : 0);
          break;
        }
        case TypeId::kDouble: {
          double x, y;
          std::memcpy(&x, va, 8);
          std::memcpy(&y, vb, 8);
          c = (x < y) ? -1 : (x > y ? 1 : 0);
          break;
        }
        case TypeId::kChar:
          c = std::memcmp(va, vb, type.width());
          break;
      }
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return a < b;  // stable tie-break
  };
  std::sort(order.begin(), order.end(), compare_rows);

  uint64_t emit = total;
  if (op_->limit_ > 0 && op_->limit_ < emit) emit = op_->limit_;
  InsertDestination::Writer writer(op_->destination_);
  for (uint64_t i = 0; i < emit; ++i) {
    writer.AppendRow(rows.data() + order[i] * width);
  }
}

}  // namespace uot
