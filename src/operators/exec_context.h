#ifndef UOT_OPERATORS_EXEC_CONTEXT_H_
#define UOT_OPERATORS_EXEC_CONTEXT_H_

#include <cstdint>
#include <string>

namespace uot {

namespace obs {
class Counter;
class TraceSession;
}  // namespace obs

/// Which hash-join kernel the build/probe work orders run.
enum class JoinKernel : uint8_t {
  /// Tuple-at-a-time: extract one key, hash, walk the table, emit. Each
  /// probe takes a dependent cache miss on the home slot (the paper's
  /// Table VI baseline). Kept for A/B comparison and byte-parity testing.
  kScalar = 0,
  /// Batch-at-a-time: extract a batch of keys columnar, hash them all,
  /// software-prefetch the home slots ahead of resolution (group
  /// prefetching, cf. the paper's Table VI experiment), then resolve
  /// matches through selection vectors. The default.
  kBatched = 1,
};

/// Knobs of the batched join kernels, wired through ExecConfig::join.
struct JoinKernelConfig {
  JoinKernel kernel = JoinKernel::kBatched;
  /// Rows per probe/build batch (clamped to [1, 65536]).
  int batch_size = 256;
  /// How many keys ahead of the resolving key home-slot prefetches are
  /// issued. <= 0 disables prefetching (batching alone still applies).
  int prefetch_distance = 16;

  /// Batches smaller than this resolve without prefetching: the prefetch
  /// lead-in cannot hide latency when the whole batch fits in flight.
  static constexpr uint32_t kMinRowsForPrefetch = 16;

  uint32_t clamped_batch_size() const {
    if (batch_size < 1) return 1;
    if (batch_size > 65536) return 65536;
    return static_cast<uint32_t>(batch_size);
  }

  /// "scalar" or "batched(batch=256,prefetch=16)", for config summaries.
  std::string ToString() const {
    if (kernel == JoinKernel::kScalar) return "scalar";
    return "batched(batch=" + std::to_string(clamped_batch_size()) +
           ",prefetch=" + std::to_string(prefetch_distance) + ")";
  }
};

/// Per-execution context handed to operators by the scheduler (or by a
/// standalone driver) before work-order generation: kernel knobs plus
/// pre-resolved observability handles so work orders update metrics
/// lock-free and emit per-batch trace spans. All pointers may be null
/// (the default context traces/counts nothing but runs the same kernels).
struct OperatorExecContext {
  JoinKernelConfig join;
  obs::TraceSession* trace = nullptr;
  obs::Counter* join_probe_batches = nullptr;
  obs::Counter* join_probe_prefetch_issued = nullptr;
  obs::Counter* join_build_batches = nullptr;
  obs::Counter* join_build_prefetch_issued = nullptr;
};

}  // namespace uot

#endif  // UOT_OPERATORS_EXEC_CONTEXT_H_
