#include "operators/operator.h"

// Interface definitions only; this file anchors the translation unit.
