#ifndef UOT_OPERATORS_SORT_MERGE_JOIN_OPERATOR_H_
#define UOT_OPERATORS_SORT_MERGE_JOIN_OPERATOR_H_

#include <memory>
#include <vector>

#include "operators/operator.h"
#include "storage/insert_destination.h"

namespace uot {

/// Sort-merge equality join. Both inputs are buffered completely, then one
/// work order sorts the two sides by their (widened integral) keys and
/// merges equal-key runs.
///
/// The paper's Section V-B classifies sort-based operators as inherently
/// blocking — the UoT value does not apply to their input edges; this
/// operator exists to make that part of the operator taxonomy concrete and
/// as a second reference implementation for join correctness tests.
class SortMergeJoinOperator final : public Operator {
 public:
  /// Output: `left_output_cols` then `right_output_cols`. Input 0 is the
  /// left side, input 1 the right side.
  SortMergeJoinOperator(std::string name, const Schema& left_schema,
                        const Schema& right_schema,
                        std::vector<int> left_key_cols,
                        std::vector<int> right_key_cols,
                        std::vector<int> left_output_cols,
                        std::vector<int> right_output_cols,
                        InsertDestination* destination);

  void AttachLeftTable(const Table* table) { left_.AttachTable(table); }
  void AttachRightTable(const Table* table) { right_.AttachTable(table); }

  void ReceiveInputBlocks(int input_index,
                          const std::vector<Block*>& blocks) override;
  void InputDone(int input_index) override;
  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override;
  void Finish() override;

  static Schema OutputSchema(const Schema& left_schema,
                             const std::vector<int>& left_output_cols,
                             const Schema& right_schema,
                             const std::vector<int>& right_output_cols);

 private:
  friend class SortMergeJoinWorkOrder;

  const Schema left_schema_;
  const Schema right_schema_;
  const std::vector<int> left_key_cols_;
  const std::vector<int> right_key_cols_;
  const std::vector<int> left_output_cols_;
  const std::vector<int> right_output_cols_;
  InsertDestination* const destination_;

  StreamingInput left_;
  StreamingInput right_;
  std::vector<Block*> left_blocks_;
  std::vector<Block*> right_blocks_;
  bool generated_ = false;
};

/// Sorts both buffered sides and merges them.
class SortMergeJoinWorkOrder final : public WorkOrder {
 public:
  explicit SortMergeJoinWorkOrder(SortMergeJoinOperator* op) : op_(op) {}

  void Execute() override;

 private:
  SortMergeJoinOperator* const op_;
};

}  // namespace uot

#endif  // UOT_OPERATORS_SORT_MERGE_JOIN_OPERATOR_H_
