#ifndef UOT_OPERATORS_SELECT_OPERATOR_H_
#define UOT_OPERATORS_SELECT_OPERATOR_H_

#include <memory>

#include "expr/predicate.h"
#include "expr/projection.h"
#include "operators/build_hash_operator.h"
#include "operators/operator.h"
#include "storage/insert_destination.h"

namespace uot {

/// A LIP-filter attachment: rows whose `key_col` value misses `source`'s
/// Bloom filter are pruned during the scan (paper Section VI-C / LIP [42]).
struct LipAttachment {
  const BuildHashOperator* source;
  int key_col;
};

/// Filter + project, one work order per input block (paper Section III).
/// The canonical producer of the paper's select -> probe pipeline when
/// attached to a base table; with a streamed input it acts as a filter over
/// a join intermediate (e.g. TPC-H Q19's cross-table OR predicate).
class SelectOperator final : public Operator {
 public:
  SelectOperator(std::string name, std::unique_ptr<Predicate> predicate,
                 std::unique_ptr<Projection> projection,
                 InsertDestination* destination);

  /// Input is a fully materialized table (base-table scan).
  void AttachBaseTable(const Table* table) { input_.AttachTable(table); }

  /// Prunes scanned rows through `source`'s LIP Bloom filter on `key_col`
  /// (an input-schema column index). The plan must add a blocking edge
  /// source -> this so the filter is complete before scanning starts, and
  /// `source` must have LIP enabled.
  void AddLipFilter(const BuildHashOperator* source, int key_col) {
    // Composite-key filters would hash differently on each side.
    UOT_CHECK(source->key_cols().size() == 1);
    lip_.push_back(LipAttachment{source, key_col});
  }

  void ReceiveInputBlocks(int input_index,
                          const std::vector<Block*>& blocks) override;
  void InputDone(int input_index) override;
  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override;
  void Finish() override;

  const Projection& projection() const { return *projection_; }
  const Predicate& predicate() const { return *predicate_; }
  const std::vector<LipAttachment>& lip_filters() const { return lip_; }
  InsertDestination* destination() const { return destination_; }
  /// The streaming/base input, exposed so a fused pipeline driver can pull
  /// this operator's pending blocks when it acts as a chain head.
  StreamingInput* streaming_input() { return &input_; }

 private:
  const std::unique_ptr<Predicate> predicate_;
  const std::unique_ptr<Projection> projection_;
  InsertDestination* const destination_;
  std::vector<LipAttachment> lip_;
  StreamingInput input_;
};

/// Executes the select logic on one input block.
class SelectWorkOrder final : public WorkOrder {
 public:
  SelectWorkOrder(const Block* block, const Predicate* predicate,
                  const Projection* projection,
                  const std::vector<LipAttachment>* lip,
                  InsertDestination* destination)
      : block_(block),
        predicate_(predicate),
        projection_(projection),
        lip_(lip),
        destination_(destination) {}

  void Execute() override;

 private:
  const Block* const block_;
  const Predicate* const predicate_;
  const Projection* const projection_;
  const std::vector<LipAttachment>* const lip_;
  InsertDestination* const destination_;
};

}  // namespace uot

#endif  // UOT_OPERATORS_SELECT_OPERATOR_H_
