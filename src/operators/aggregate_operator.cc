#include "operators/aggregate_operator.h"

#include <cstring>

#include "operators/key_util.h"

namespace uot {

AggregateOperator::AggregateOperator(std::string name,
                                     const Schema& input_schema,
                                     std::vector<int> group_cols,
                                     std::vector<AggSpec> aggs,
                                     std::unique_ptr<Predicate> predicate,
                                     InsertDestination* destination)
    : Operator(std::move(name)),
      input_schema_(input_schema),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      predicate_(std::move(predicate)),
      destination_(destination) {
  UOT_CHECK(group_cols_.size() <= 3);
  for (int c : group_cols_) {
    UOT_CHECK(IsKeyableType(input_schema_.column(c).type));
  }
  UOT_CHECK(!aggs_.empty());
}

void AggregateOperator::ReceiveInputBlocks(int input_index,
                                           const std::vector<Block*>& blocks) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.Deliver(blocks);
}

void AggregateOperator::InputDone(int input_index) {
  UOT_DCHECK(input_index == 0);
  (void)input_index;
  input_.MarkDone();
}

bool AggregateOperator::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  for (Block* block : input_.TakePending()) {
    auto wo = std::make_unique<AggregateWorkOrder>(
        block, this, &group_cols_, &aggs_, predicate_.get());
    if (!input_.from_base_table()) wo->consumed_blocks.push_back(block);
    out->push_back(std::move(wo));
  }
  return input_.done();
}

void AggregateOperator::MergePartial(GroupMap&& partial) {
  std::lock_guard<std::mutex> lock(merge_mutex_);
  for (auto& [key, states] : partial) {
    auto [it, inserted] = groups_.try_emplace(key, std::move(states));
    if (!inserted) {
      for (size_t a = 0; a < aggs_.size(); ++a) {
        it->second[a].Merge(states[a]);
      }
    }
  }
}

void AggregateOperator::Finish() {
  // Materialize final groups (single-threaded; group counts are small
  // relative to input sizes).
  {
    const Schema& out_schema = destination_->schema();
    std::vector<std::byte> row(out_schema.row_width());
    InsertDestination::Writer writer(destination_);
    // Scalar aggregation over empty input still produces one row of zeros.
    if (groups_.empty() && group_cols_.empty()) {
      groups_.try_emplace(GroupKey{0, 0, 0},
                          std::vector<AggState>(aggs_.size()));
    }
    for (const auto& [key, states] : groups_) {
      int col = 0;
      for (size_t g = 0; g < group_cols_.size(); ++g, ++col) {
        const Type& type = input_schema_.column(group_cols_[g]).type;
        UnwidenKeyValue(type, key[g], row.data() + out_schema.offset(col));
      }
      for (size_t a = 0; a < aggs_.size(); ++a, ++col) {
        const AggState& s = states[a];
        if (aggs_[a].fn == AggFn::kCount) {
          std::memcpy(row.data() + out_schema.offset(col), &s.count, 8);
        } else {
          double v = 0.0;
          switch (aggs_[a].fn) {
            case AggFn::kSum:
              v = s.sum;
              break;
            case AggFn::kAvg:
              v = s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
              break;
            case AggFn::kMin:
              v = s.min;
              break;
            case AggFn::kMax:
              v = s.max;
              break;
            case AggFn::kCount:
              break;
          }
          std::memcpy(row.data() + out_schema.offset(col), &v, 8);
        }
      }
      writer.AppendRow(row.data());
    }
  }
  destination_->Flush();
}

Schema AggregateOperator::OutputSchema(const Schema& input_schema,
                                       const std::vector<int>& group_cols,
                                       const std::vector<AggSpec>& aggs) {
  std::vector<Column> columns;
  for (int c : group_cols) columns.push_back(input_schema.column(c));
  for (const AggSpec& a : aggs) {
    columns.push_back(Column{
        a.name, a.fn == AggFn::kCount ? Type::Int64() : Type::Double()});
  }
  return Schema(std::move(columns));
}

void AggregateWorkOrder::Execute() {
  std::vector<uint32_t> sel;
  if (predicate_ != nullptr) {
    sel = predicate_->FilterAll(*block_);
  } else {
    sel.resize(block_->num_rows());
    for (uint32_t i = 0; i < block_->num_rows(); ++i) sel[i] = i;
  }
  const uint32_t n = static_cast<uint32_t>(sel.size());
  if (n == 0) return;

  // Evaluate aggregate inputs column-at-a-time.
  std::vector<std::vector<double>> inputs(aggs_->size());
  for (size_t a = 0; a < aggs_->size(); ++a) {
    if ((*aggs_)[a].expr != nullptr) {
      inputs[a].resize(n);
      EvalAsDouble(*(*aggs_)[a].expr, *block_, sel.data(), n,
                   inputs[a].data());
    }
  }

  AggregateOperator::GroupMap partial;
  AggregateOperator::GroupKey key = {0, 0, 0};
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t g = 0; g < group_cols_->size(); ++g) {
      const int col = (*group_cols_)[g];
      key[g] = WidenKeyValue(block_->schema().column(col).type,
                             block_->Column(col).at(sel[i]));
    }
    auto [it, inserted] =
        partial.try_emplace(key, aggs_->size(), AggState{});
    std::vector<AggState>& states = it->second;
    for (size_t a = 0; a < aggs_->size(); ++a) {
      AggState& s = states[a];
      ++s.count;
      if ((*aggs_)[a].expr != nullptr) {
        const double v = inputs[a][i];
        s.Add(v);
        if (v < s.min) s.min = v;
        if (v > s.max) s.max = v;
      }
    }
  }
  op_->MergePartial(std::move(partial));
}

}  // namespace uot
