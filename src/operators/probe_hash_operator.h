#ifndef UOT_OPERATORS_PROBE_HASH_OPERATOR_H_
#define UOT_OPERATORS_PROBE_HASH_OPERATOR_H_

#include <memory>
#include <vector>

#include "expr/predicate.h"
#include "join/hash_table.h"
#include "operators/build_hash_operator.h"
#include "operators/operator.h"
#include "storage/insert_destination.h"

namespace uot {

enum class JoinKind : uint8_t {
  kInner = 0,
  kLeftSemi = 1,  // emit probe row iff a match exists (EXISTS subqueries)
  kLeftAnti = 2,  // emit probe row iff no match exists (NOT EXISTS)
};

/// An extra non-equijoin condition checked per candidate match:
///   probe_value  op  scale * payload_value
/// Both sides are widened to double when either column is a DOUBLE (or
/// `scale != 1`), otherwise compared as int64. This covers the TPC-H
/// residuals: Q21's `l2.l_suppkey <> l1.l_suppkey` (integral), Q17's
/// `l_quantity < 0.2 * avg(l_quantity)` and Q20's
/// `ps_availqty > 0.5 * sum(l_quantity)` (scaled doubles), and Q2's
/// `ps_supplycost = min(ps_supplycost)`.
struct ResidualCondition {
  int probe_col;
  int payload_col;
  CompareOp op;
  double scale = 1.0;
};

/// Probes the join hash table with each input block: the consumer operator
/// of the paper's select -> probe pipeline (paper Sections III/V). One work
/// order per probe input block; work orders only become eligible after the
/// build operator finished (a blocking DAG dependency).
class ProbeHashOperator final : public Operator {
 public:
  /// `build` owns the hash table this operator probes; the plan must add a
  /// blocking edge build -> this.
  ProbeHashOperator(std::string name, const BuildHashOperator* build,
                    std::vector<int> probe_key_cols,
                    std::vector<int> probe_output_cols, JoinKind kind,
                    std::vector<ResidualCondition> residuals,
                    InsertDestination* destination);

  /// Probe input is a materialized table rather than a stream.
  void AttachBaseTable(const Table* table) { input_.AttachTable(table); }

  void BindExecContext(const OperatorExecContext& ctx) override {
    exec_ctx_ = ctx;
  }

  void ReceiveInputBlocks(int input_index,
                          const std::vector<Block*>& blocks) override;
  void InputDone(int input_index) override;
  bool GenerateWorkOrders(
      std::vector<std::unique_ptr<WorkOrder>>* out) override;
  void Finish() override;

  /// Output schema: probe output columns, then (for inner joins) the build
  /// payload columns.
  static Schema OutputSchema(const Schema& probe_schema,
                             const std::vector<int>& probe_output_cols,
                             const Schema& build_schema,
                             const std::vector<int>& payload_cols,
                             JoinKind kind);

  const BuildHashOperator* build() const { return build_; }
  const std::vector<int>& probe_key_cols() const { return probe_key_cols_; }
  const std::vector<int>& probe_output_cols() const {
    return probe_output_cols_;
  }
  JoinKind kind() const { return kind_; }
  const std::vector<ResidualCondition>& residuals() const {
    return residuals_;
  }
  InsertDestination* destination() const { return destination_; }
  /// The streaming/base input, exposed so a fused pipeline driver can pull
  /// this operator's pending blocks when it acts as a chain head.
  StreamingInput* streaming_input() { return &input_; }

 private:
  const BuildHashOperator* const build_;
  const std::vector<int> probe_key_cols_;
  const std::vector<int> probe_output_cols_;
  const JoinKind kind_;
  const std::vector<ResidualCondition> residuals_;
  InsertDestination* const destination_;
  OperatorExecContext exec_ctx_;  // defaults until the scheduler binds one

  StreamingInput input_;
};

/// Probes one block against the shared hash table. Runs either the scalar
/// tuple-at-a-time loop or the batched extract -> hash+prefetch -> match ->
/// residual-filter -> emit pipeline, per the bound execution context; both
/// produce byte-identical output.
class ProbeHashWorkOrder final : public WorkOrder {
 public:
  ProbeHashWorkOrder(const Block* block, const JoinHashTable* hash_table,
                     const std::vector<int>* probe_key_cols,
                     const std::vector<int>* probe_output_cols, JoinKind kind,
                     const std::vector<ResidualCondition>* residuals,
                     InsertDestination* destination,
                     const OperatorExecContext* ctx)
      : block_(block),
        hash_table_(hash_table),
        probe_key_cols_(probe_key_cols),
        probe_output_cols_(probe_output_cols),
        kind_(kind),
        residuals_(residuals),
        destination_(destination),
        ctx_(ctx) {}

  void Execute() override;

 private:
  void ExecuteScalar();
  void ExecuteBatched();

  const Block* const block_;
  const JoinHashTable* const hash_table_;
  const std::vector<int>* const probe_key_cols_;
  const std::vector<int>* const probe_output_cols_;
  const JoinKind kind_;
  const std::vector<ResidualCondition>* const residuals_;
  InsertDestination* const destination_;
  const OperatorExecContext* const ctx_;
};

}  // namespace uot

#endif  // UOT_OPERATORS_PROBE_HASH_OPERATOR_H_
