#ifndef UOT_SERVER_PLAN_CACHE_H_
#define UOT_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/uot_chooser.h"
#include "util/macros.h"

namespace uot {
namespace server {

/// The cached physical annotations of one query template: everything the
/// CostModelUotChooser decided for this plan shape, so a repeat execution
/// re-applies the choices without evaluating the model.
struct PlanCacheEntry {
  /// The world the choices were made in: table cardinalities + the exec
  /// knobs that shape plans or costs (join kernel, radix config, block
  /// size, budget). A lookup whose fingerprint differs invalidates the
  /// entry — cardinality or knob drift means the model must re-choose.
  std::string fingerprint;
  /// ChooseRadixBits verdict for the plan's join (0 = unpartitioned; also
  /// 0 for joinless plans). Part of the entry because radix changes the
  /// plan's exchange-edge shape, so UoT choices only map onto a plan
  /// compiled at the same radix.
  int radix_bits = 0;
  /// ChoosePlan verdict per streaming edge, in plan edge order.
  std::vector<UotChoice> choices;
};

/// A bounded, thread-safe LRU map from query template to PlanCacheEntry.
class PlanCache {
 public:
  /// `capacity` bounds the number of entries; 0 disables the cache
  /// entirely (every Insert is a no-op, every Lookup a miss).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}
  UOT_DISALLOW_COPY_AND_ASSIGN(PlanCache);

  enum class Outcome {
    kHit,          // entry present, fingerprint matches
    kMiss,         // no entry for the template
    kInvalidated,  // entry present but stale; erased
  };

  /// Looks up `key`; on a hit copies the entry into `*out` and refreshes
  /// recency. A fingerprint mismatch erases the stale entry and reports
  /// kInvalidated (the caller re-chooses and re-inserts).
  Outcome Lookup(const std::string& key, const std::string& fingerprint,
                 PlanCacheEntry* out);

  /// Inserts (or replaces) the entry for `key`, evicting the
  /// least-recently-used entry when over capacity.
  void Insert(const std::string& key, PlanCacheEntry entry);

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t invalidations() const;
  uint64_t evictions() const;

 private:
  struct Node {
    std::string key;
    PlanCacheEntry entry;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace server
}  // namespace uot

#endif  // UOT_SERVER_PLAN_CACHE_H_
