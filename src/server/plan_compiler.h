#ifndef UOT_SERVER_PLAN_COMPILER_H_
#define UOT_SERVER_PLAN_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "model/uot_chooser.h"
#include "plan/plan_builder.h"
#include "server/catalog.h"
#include "server/sql_parser.h"
#include "util/status.h"

namespace uot {
namespace server {

/// Compiles a parsed SelectStatement into a physical QueryPlan through
/// PlanBuilder, resolving columns against the catalog and binding literal
/// (or EXECUTE-parameter) values to the compared columns' types.
///
/// Plan shape (the left-deep form every existing substrate uses):
///   Select(from-table)
///     [-> Exchange/Build(join-table) + Probe]       when joined
///     -> Aggregate                                  when aggregated
///     [-> projection-only Select]                   bare columns post-join
class PlanCompiler {
 public:
  PlanCompiler(const Catalog* catalog, PlanBuilderConfig config)
      : catalog_(catalog), config_(config) {}

  /// Builds the plan. `params` supplies values for `?` placeholders in
  /// statement order; `radix_bits` partitions the join (0 = shared table,
  /// ignored without a join). On error `*out` is untouched.
  Status Compile(const SelectStatement& stmt,
                 const std::vector<SqlValue>& params, int radix_bits,
                 std::unique_ptr<QueryPlan>* out) const;

  /// Base-table cardinality estimates of the join's build (join-table) and
  /// probe (from-table) inputs, for CostModelUotChooser::ChooseRadixBits.
  /// Fails unless the statement has a join.
  Status JoinEstimates(const SelectStatement& stmt, EdgeEstimate* build,
                       EdgeEstimate* probe) const;

  const PlanBuilderConfig& config() const { return config_; }

 private:
  const Catalog* const catalog_;
  const PlanBuilderConfig config_;
};

}  // namespace server
}  // namespace uot

#endif  // UOT_SERVER_PLAN_COMPILER_H_
