#include "server/catalog.h"

#include <algorithm>
#include <cctype>

namespace uot {
namespace server {
namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

void Catalog::RegisterTable(const std::string& name, const Table* table) {
  const std::string key = Lower(name);
  if (tables_.emplace(key, table).second) {
    names_.push_back(key);
  } else {
    tables_[key] = table;
  }
}

void Catalog::RegisterTpch(const TpchDatabase* db) {
  tpch_ = db;
  for (const char* name : {"lineitem", "orders", "customer", "part",
                           "supplier", "partsupp", "nation", "region"}) {
    RegisterTable(name, db->table(name));
  }
}

const Table* Catalog::Find(const std::string& name) const {
  const auto it = tables_.find(Lower(name));
  return it == tables_.end() ? nullptr : it->second;
}

std::string Catalog::CardinalityFingerprint(
    const std::vector<std::string>& tables) const {
  std::string out;
  for (const std::string& name : tables) {
    const Table* table = Find(name);
    out += Lower(name);
    out += '=';
    out += table != nullptr ? std::to_string(table->NumRows()) : "?";
    out += ';';
  }
  return out;
}

}  // namespace server
}  // namespace uot
