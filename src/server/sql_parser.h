#ifndef UOT_SERVER_SQL_PARSER_H_
#define UOT_SERVER_SQL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "expr/predicate.h"
#include "operators/aggregate_operator.h"
#include "util/status.h"

namespace uot {
namespace server {

/// A literal (or `?` placeholder) appearing in a WHERE condition or an
/// EXECUTE parameter list. Typing against the compared column happens at
/// compile time (plan_compiler.h): an int literal compared to a DOUBLE
/// column widens, a quoted string compared to a DATE column parses as
/// YYYY-MM-DD, and so on.
struct SqlValue {
  enum class Kind { kInt, kDouble, kString, kParam };
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  /// 0-based position among the statement's `?` placeholders.
  int param_index = -1;
};

/// One WHERE conjunct: `<column> <op> <literal-or-param>`. Columns may be
/// qualified (`lineitem.l_quantity`) or bare.
struct SqlCondition {
  std::string column;
  CompareOp op = CompareOp::kEq;
  SqlValue value;
};

/// One SELECT-list entry: a bare column or an aggregate over one.
struct SqlSelectItem {
  bool is_aggregate = false;
  AggFn fn = AggFn::kCount;
  bool count_star = false;
  std::string column;  // empty for COUNT(*)
};

/// `JOIN <table> ON <left.col> = <right.col>`.
struct SqlJoin {
  std::string table;
  std::string left_column;
  std::string right_column;
};

/// The supported statement shape:
///   SELECT <item> [, <item>]* FROM <table>
///     [JOIN <table> ON <col> = <col>]
///     [WHERE <cond> [AND <cond>]*]
///     [GROUP BY <col> [, <col>]*]
/// Aggregates: COUNT(*), COUNT(c), SUM(c), MIN(c), MAX(c), AVG(c).
struct SelectStatement {
  std::vector<SqlSelectItem> items;
  std::string table;
  bool has_join = false;
  SqlJoin join;
  std::vector<SqlCondition> where;
  std::vector<std::string> group_by;
  /// Number of `?` placeholders (in WHERE order).
  int num_params = 0;

  /// Tables the statement reads, FROM first.
  std::vector<std::string> Tables() const;

  /// The statement's query template: a canonical lower-case rendering with
  /// every literal replaced by `?`. Two invocations that differ only in
  /// literal values share one template — the plan-cache key.
  std::string TemplateKey() const;
};

/// Parses the SQL subset. Errors carry a position-free human message (the
/// wire protocol relays them verbatim).
Status ParseSelect(std::string_view sql, SelectStatement* out);

/// Parses a comma-separated EXECUTE argument list, e.g. `1, 2.5, 'x'`.
/// Placeholders are not allowed here.
Status ParseValueList(std::string_view text, std::vector<SqlValue>* out);

}  // namespace server
}  // namespace uot

#endif  // UOT_SERVER_SQL_PARSER_H_
