#ifndef UOT_SERVER_FRONTEND_H_
#define UOT_SERVER_FRONTEND_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "model/uot_chooser.h"
#include "obs/metrics.h"
#include "server/catalog.h"
#include "server/plan_cache.h"
#include "server/plan_compiler.h"
#include "server/sql_parser.h"

namespace uot {
namespace server {

/// One admission class: how much of the engine a tenant may occupy.
/// Layered in front of the engine's own admission control — the class gate
/// bounds a tenant's concurrent queries and scales the per-query memory
/// budget, the engine's FIFO gate then arbitrates across tenants.
struct TenantClass {
  std::string name;
  /// Concurrent queries of this class (0 = unlimited within the class;
  /// the engine-wide max_inflight_queries still applies). Excess requests
  /// wait at the class gate.
  int max_inflight = 0;
  /// Fraction of EngineConfig::memory_budget_bytes a query of this class
  /// receives as its per-query ExecConfig budget (ignored when the engine
  /// is unbudgeted).
  double memory_share = 1.0;
};

struct FrontEndConfig {
  EngineConfig engine;
  /// Plan-construction knobs for compiled statements and TPCH plans.
  PlanBuilderConfig plan;
  /// Cost-model options behind the plan+annotation cache.
  CostModelUotChooser::Options chooser;
  /// Join kernel knobs applied to every query.
  JoinKernelConfig join;
  /// Admission classes; a "default" class (unlimited, full share) is added
  /// when absent.
  std::vector<TenantClass> tenants;
  size_t plan_cache_capacity = 128;
  /// Upper bound handed to ChooseRadixBits for ad-hoc joins.
  int max_radix_bits = 6;
};

struct Request {
  std::string text;
  std::string tenant = "default";
  /// Connection-level pipeline execution mode (SET PIPELINE_MODE), applied
  /// to every query this request executes.
  PipelineMode pipeline_mode = PipelineMode::kVectorized;
};

struct Response {
  bool ok = false;
  std::string error;
  /// OK summary for row-less statements (PREPARE, SET TENANT, STATS).
  std::string message;
  /// Result rows as canonical sorted CSV (one line per row).
  std::string rows_csv;
  uint64_t row_count = 0;
  enum class Cache { kNone, kHit, kMiss } cache = Cache::kNone;
  double exec_ms = 0.0;
  uint64_t query_id = 0;
  /// Set by SET TENANT so the connection layer can update its state.
  std::string set_tenant;
  /// Set by SET PIPELINE_MODE ("fused" / "vectorized"); empty = unchanged.
  std::string set_pipeline_mode;
};

/// The query front end (ROADMAP item 1): parses requests, compiles them to
/// QueryPlans, reuses cached CostModelUotChooser decisions per query
/// template, gates tenants through admission classes, and executes on the
/// shared Engine. Handle() is safe to call from many connection threads.
///
/// Statements:
///   SELECT ... / PREPARE <name> AS SELECT ... / EXECUTE <name> [args]
///   TPCH <n>          run the built-in TPC-H plan (catalog needs TPC-H)
///   SET TENANT <x>    switch the connection's admission class
///   SET PIPELINE_MODE <fused|vectorized>
///                     switch the connection's pipeline execution mode
///   STATS             server counters (cache, model, engine)
class FrontEnd {
 public:
  FrontEnd(FrontEndConfig config, const Catalog* catalog);
  ~FrontEnd();
  UOT_DISALLOW_COPY_AND_ASSIGN(FrontEnd);

  Response Handle(const Request& request);

  /// Rejects in-flight and future requests, then stops the engine.
  void Shutdown();

  Engine* engine() { return engine_.get(); }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  PlanCache* plan_cache() { return &plan_cache_; }
  /// Cost-model evaluations performed (ChoosePlan + ChooseRadixBits
  /// calls). Flat across repeat queries of one template — the cache's
  /// whole point; tests and STATS read it to verify.
  uint64_t model_evaluations() const {
    return model_evaluations_counter_->Value();
  }

  /// The knob component of the cache fingerprint (join kernel, block size,
  /// radix config, budgets, pipeline mode). Every knob that shapes the
  /// plan or its annotations must be in here — an unfingerprinted knob
  /// silently serves stale plans after the knob changes. Public so tests
  /// can assert that knob changes produce distinct fingerprints and
  /// therefore invalidate cached plans.
  std::string KnobFingerprint(
      PipelineMode pipeline_mode = PipelineMode::kVectorized) const;

 private:
  struct TenantState {
    TenantClass cls;
    int inflight = 0;
  };

  Response ExecuteSelect(const SelectStatement& stmt,
                         const std::vector<SqlValue>& params,
                         const std::string& tenant, PipelineMode mode);
  Response ExecuteTpch(int query, const std::string& tenant,
                       PipelineMode mode);
  /// The cached-annotation execution path shared by SELECT and TPCH:
  /// look up `key`, compile via `compile(radix_bits)`, annotate on hit,
  /// execute under `tenant`'s class in pipeline mode `mode`, choose+insert
  /// on miss.
  template <typename CompileFn>
  Response ExecuteWithCache(const std::string& key,
                            const std::vector<std::string>& tables,
                            bool has_join, CompileFn&& compile,
                            const SelectStatement* stmt,
                            const std::string& tenant, PipelineMode mode);
  Response Stats() const;

  Status AcquireTenant(const std::string& tenant, TenantState** state);
  void ReleaseTenant(TenantState* state);

  const FrontEndConfig config_;
  const Catalog* const catalog_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<Engine> engine_;
  PlanCompiler compiler_;
  CostModelUotChooser chooser_;
  PlanCache plan_cache_;

  std::mutex prepared_mutex_;
  std::map<std::string, SelectStatement> prepared_;

  std::mutex tenant_mutex_;
  std::condition_variable tenant_cv_;
  std::map<std::string, TenantState> tenants_;
  bool shutdown_ = false;  // guarded by tenant_mutex_

  obs::Counter* requests_counter_;
  obs::Counter* errors_counter_;
  obs::Counter* rows_counter_;
  obs::Counter* cache_hits_counter_;
  obs::Counter* cache_misses_counter_;
  obs::Counter* cache_invalidations_counter_;
  obs::Counter* model_evaluations_counter_;
  obs::Histogram* request_latency_hist_;
};

}  // namespace server
}  // namespace uot

#endif  // UOT_SERVER_FRONTEND_H_
