#include "server/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace uot {
namespace server {
namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Hand-rolled tokenizer: identifiers, numbers, quoted strings, operators
/// and punctuation. SQL keywords are case-insensitive identifiers.
struct Token {
  enum class Kind { kIdent, kNumber, kString, kOp, kPunct, kParam, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;  // identifiers lower-cased; ops/puncts verbatim
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

  Status error() const { return error_; }

 private:
  void Advance() {
    if (!error_.ok()) return;
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) {
      current_ = Token{Token::Kind::kEnd, ""};
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[end])) ||
              input_[end] == '_' || input_[end] == '.')) {
        ++end;
      }
      current_ = Token{Token::Kind::kIdent,
                       Lower(std::string(input_.substr(pos_, end - pos_)))};
      pos_ = end;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t end = pos_ + 1;
      while (end < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[end])) ||
              input_[end] == '.')) {
        ++end;
      }
      current_ = Token{Token::Kind::kNumber,
                       std::string(input_.substr(pos_, end - pos_))};
      pos_ = end;
      return;
    }
    if (c == '\'') {
      size_t end = pos_ + 1;
      while (end < input_.size() && input_[end] != '\'') ++end;
      if (end >= input_.size()) {
        error_ = Status::InvalidArgument("unterminated string literal");
        current_ = Token{Token::Kind::kEnd, ""};
        return;
      }
      current_ = Token{Token::Kind::kString,
                       std::string(input_.substr(pos_ + 1, end - pos_ - 1))};
      pos_ = end + 1;
      return;
    }
    if (c == '?') {
      current_ = Token{Token::Kind::kParam, "?"};
      ++pos_;
      return;
    }
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      size_t end = pos_ + 1;
      if (end < input_.size() && (input_[end] == '=' || input_[end] == '>')) {
        ++end;
      }
      current_ = Token{Token::Kind::kOp,
                       std::string(input_.substr(pos_, end - pos_))};
      pos_ = end;
      return;
    }
    if (c == ',' || c == '(' || c == ')' || c == '*' || c == ';') {
      current_ = Token{Token::Kind::kPunct, std::string(1, c)};
      ++pos_;
      return;
    }
    error_ = Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    current_ = Token{Token::Kind::kEnd, ""};
  }

  std::string_view input_;
  size_t pos_ = 0;
  Token current_;
  Status error_ = Status::OK();
};

Status ParseCompareOp(const std::string& text, CompareOp* op) {
  if (text == "=") *op = CompareOp::kEq;
  else if (text == "!=" || text == "<>") *op = CompareOp::kNe;
  else if (text == "<") *op = CompareOp::kLt;
  else if (text == "<=") *op = CompareOp::kLe;
  else if (text == ">") *op = CompareOp::kGt;
  else if (text == ">=") *op = CompareOp::kGe;
  else return Status::InvalidArgument("bad comparison operator '" + text + "'");
  return Status::OK();
}

const char* OpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?op";
}

const char* AggText(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
  }
  return "?agg";
}

Status NumberValue(const std::string& text, SqlValue* v) {
  // stoll/stod throw on unrepresentable literals; a client-supplied number
  // must never take the process down, so map those to InvalidArgument.
  try {
    if (text.find('.') != std::string::npos) {
      v->kind = SqlValue::Kind::kDouble;
      v->double_value = std::stod(text);
    } else {
      v->kind = SqlValue::Kind::kInt;
      v->int_value = std::stoll(text);
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("numeric literal '" + text +
                                   "' is out of range");
  }
  return Status::OK();
}

Status ParseValueToken(Lexer* lex, SqlValue* out) {
  const Token t = lex->Take();
  switch (t.kind) {
    case Token::Kind::kNumber:
      return NumberValue(t.text, out);
    case Token::Kind::kString:
      out->kind = SqlValue::Kind::kString;
      out->string_value = t.text;
      return Status::OK();
    case Token::Kind::kParam:
      out->kind = SqlValue::Kind::kParam;
      return Status::OK();
    default:
      return Status::InvalidArgument("expected a literal, got '" + t.text +
                                     "'");
  }
}

}  // namespace

std::vector<std::string> SelectStatement::Tables() const {
  std::vector<std::string> out{table};
  if (has_join) out.push_back(join.table);
  return out;
}

std::string SelectStatement::TemplateKey() const {
  std::string key = "select ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) key += ',';
    const SqlSelectItem& item = items[i];
    if (item.is_aggregate) {
      key += AggText(item.fn);
      key += '(';
      key += item.count_star ? "*" : item.column;
      key += ')';
    } else {
      key += item.column;
    }
  }
  key += " from " + table;
  if (has_join) {
    key += " join " + join.table + " on " + join.left_column + "=" +
           join.right_column;
  }
  for (size_t i = 0; i < where.size(); ++i) {
    key += i == 0 ? " where " : " and ";
    key += where[i].column;
    key += OpText(where[i].op);
    key += '?';  // literals normalized away: one template per query shape
  }
  for (size_t i = 0; i < group_by.size(); ++i) {
    key += i == 0 ? " group by " : ",";
    key += group_by[i];
  }
  return key;
}

Status ParseSelect(std::string_view sql, SelectStatement* out) {
  *out = SelectStatement();
  Lexer lex(sql);
  auto expect_ident = [&lex](const char* what, std::string* text) -> Status {
    const Token t = lex.Take();
    if (t.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     ", got '" + t.text + "'");
    }
    *text = t.text;
    return Status::OK();
  };
  auto expect_keyword = [&lex](const char* kw) -> Status {
    const Token t = lex.Take();
    if (t.kind != Token::Kind::kIdent || t.text != kw) {
      return Status::InvalidArgument(std::string("expected '") + kw +
                                     "', got '" + t.text + "'");
    }
    return Status::OK();
  };

  UOT_RETURN_IF_ERROR(expect_keyword("select"));

  // Select list.
  while (true) {
    Token t = lex.Take();
    if (t.kind != Token::Kind::kIdent) {
      return Status::InvalidArgument("expected a select item, got '" + t.text +
                                     "'");
    }
    SqlSelectItem item;
    AggFn fn;
    bool is_agg = true;
    if (t.text == "count") fn = AggFn::kCount;
    else if (t.text == "sum") fn = AggFn::kSum;
    else if (t.text == "min") fn = AggFn::kMin;
    else if (t.text == "max") fn = AggFn::kMax;
    else if (t.text == "avg") fn = AggFn::kAvg;
    else is_agg = false;
    if (is_agg && lex.Peek().kind == Token::Kind::kPunct &&
        lex.Peek().text == "(") {
      lex.Take();  // '('
      item.is_aggregate = true;
      item.fn = fn;
      const Token arg = lex.Take();
      if (arg.kind == Token::Kind::kPunct && arg.text == "*") {
        if (fn != AggFn::kCount) {
          return Status::InvalidArgument("'*' is only valid in count(*)");
        }
        item.count_star = true;
      } else if (arg.kind == Token::Kind::kIdent) {
        item.column = arg.text;
      } else {
        return Status::InvalidArgument("expected a column in aggregate");
      }
      const Token close = lex.Take();
      if (close.kind != Token::Kind::kPunct || close.text != ")") {
        return Status::InvalidArgument("expected ')' after aggregate");
      }
    } else {
      item.column = t.text;
    }
    out->items.push_back(std::move(item));
    if (lex.Peek().kind == Token::Kind::kPunct && lex.Peek().text == ",") {
      lex.Take();
      continue;
    }
    break;
  }

  UOT_RETURN_IF_ERROR(expect_keyword("from"));
  UOT_RETURN_IF_ERROR(expect_ident("a table name", &out->table));

  if (lex.Peek().kind == Token::Kind::kIdent && lex.Peek().text == "join") {
    lex.Take();
    out->has_join = true;
    UOT_RETURN_IF_ERROR(expect_ident("a table name", &out->join.table));
    UOT_RETURN_IF_ERROR(expect_keyword("on"));
    UOT_RETURN_IF_ERROR(expect_ident("a column", &out->join.left_column));
    const Token eq = lex.Take();
    if (eq.kind != Token::Kind::kOp || eq.text != "=") {
      return Status::InvalidArgument("expected '=' in join condition");
    }
    UOT_RETURN_IF_ERROR(expect_ident("a column", &out->join.right_column));
  }

  if (lex.Peek().kind == Token::Kind::kIdent && lex.Peek().text == "where") {
    lex.Take();
    while (true) {
      SqlCondition cond;
      UOT_RETURN_IF_ERROR(expect_ident("a column", &cond.column));
      const Token op = lex.Take();
      if (op.kind != Token::Kind::kOp) {
        return Status::InvalidArgument("expected a comparison operator");
      }
      UOT_RETURN_IF_ERROR(ParseCompareOp(op.text, &cond.op));
      UOT_RETURN_IF_ERROR(ParseValueToken(&lex, &cond.value));
      if (cond.value.kind == SqlValue::Kind::kParam) {
        cond.value.param_index = out->num_params++;
      }
      out->where.push_back(std::move(cond));
      if (lex.Peek().kind == Token::Kind::kIdent && lex.Peek().text == "and") {
        lex.Take();
        continue;
      }
      break;
    }
  }

  if (lex.Peek().kind == Token::Kind::kIdent && lex.Peek().text == "group") {
    lex.Take();
    UOT_RETURN_IF_ERROR(expect_keyword("by"));
    while (true) {
      std::string col;
      UOT_RETURN_IF_ERROR(expect_ident("a column", &col));
      out->group_by.push_back(std::move(col));
      if (lex.Peek().kind == Token::Kind::kPunct && lex.Peek().text == ",") {
        lex.Take();
        continue;
      }
      break;
    }
  }

  if (lex.Peek().kind == Token::Kind::kPunct && lex.Peek().text == ";") {
    lex.Take();
  }
  UOT_RETURN_IF_ERROR(lex.error());
  if (lex.Peek().kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("trailing input after statement: '" +
                                   lex.Peek().text + "'");
  }
  if (out->items.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  return Status::OK();
}

Status ParseValueList(std::string_view text, std::vector<SqlValue>* out) {
  out->clear();
  Lexer lex(text);
  if (lex.Peek().kind == Token::Kind::kEnd) return Status::OK();
  while (true) {
    SqlValue v;
    UOT_RETURN_IF_ERROR(ParseValueToken(&lex, &v));
    if (v.kind == SqlValue::Kind::kParam) {
      return Status::InvalidArgument("'?' is not a value");
    }
    out->push_back(std::move(v));
    if (lex.Peek().kind == Token::Kind::kPunct && lex.Peek().text == ",") {
      lex.Take();
      continue;
    }
    break;
  }
  UOT_RETURN_IF_ERROR(lex.error());
  if (lex.Peek().kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("trailing input after value list");
  }
  return Status::OK();
}

}  // namespace server
}  // namespace uot
