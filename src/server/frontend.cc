#include "server/frontend.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "exec/query_executor.h"
#include "tpch/tpch_queries.h"
#include "util/timer.h"

namespace uot {
namespace server {
namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits the leading word off `*rest` (lower-cased; empty at end).
std::string TakeWord(std::string_view* rest) {
  *rest = Trim(*rest);
  size_t end = 0;
  while (end < rest->size() &&
         !std::isspace(static_cast<unsigned char>((*rest)[end]))) {
    ++end;
  }
  std::string word = Lower(std::string(rest->substr(0, end)));
  rest->remove_prefix(end);
  *rest = Trim(*rest);
  return word;
}

Response ErrorResponse(const Status& status) {
  Response resp;
  resp.ok = false;
  resp.error = status.message();
  return resp;
}

/// Per-edge cardinality estimates measured from an executed run: the
/// payload bytes each edge actually delivered, divided by the producer's
/// output row width. Unlike EstimatesFromExecutedPlan this reads the
/// always-collected EdgeStats, so it works with dropped (transient)
/// intermediate blocks — the server never re-executes just to estimate.
std::vector<EdgeEstimate> EstimatesFromRun(const QueryPlan& plan,
                                           const ExecutionStats& stats) {
  std::vector<EdgeEstimate> out;
  if (stats.edges.size() != plan.streaming_edges().size()) return out;
  for (const EdgeStats& edge : stats.edges) {
    const InsertDestination* dest = plan.destination_of(edge.producer);
    EdgeEstimate est;
    if (dest != nullptr) {
      est.row_bytes = dest->output()->schema().row_width();
      if (est.row_bytes > 0) {
        est.rows = static_cast<uint64_t>(
            static_cast<double>(edge.bytes_delivered) / est.row_bytes);
      }
    }
    out.push_back(est);
  }
  return out;
}

/// Per-slot bytes handed to ChooseRadixBits for ad-hoc joins: two key
/// words plus the payload row (the PartitionedJoinHashTable slot layout).
size_t SlotBytes(double payload_row_bytes) {
  return 16 + static_cast<size_t>(payload_row_bytes);
}

}  // namespace

FrontEnd::FrontEnd(FrontEndConfig config, const Catalog* catalog)
    : config_(std::move(config)),
      catalog_(catalog),
      compiler_(catalog, config_.plan),
      chooser_(config_.chooser),
      plan_cache_(config_.plan_cache_capacity) {
  EngineConfig engine_config = config_.engine;
  engine_config.metrics = &metrics_;  // server.* and engine.* side by side
  engine_ = std::make_unique<Engine>(engine_config);
  bool has_default = false;
  for (const TenantClass& cls : config_.tenants) {
    tenants_[cls.name] = TenantState{cls, 0};
    if (cls.name == "default") has_default = true;
  }
  if (!has_default) {
    tenants_["default"] = TenantState{TenantClass{"default", 0, 1.0}, 0};
  }
  requests_counter_ = metrics_.GetCounter("server.requests");
  errors_counter_ = metrics_.GetCounter("server.errors");
  rows_counter_ = metrics_.GetCounter("server.rows_returned");
  cache_hits_counter_ = metrics_.GetCounter("server.plan_cache.hits");
  cache_misses_counter_ = metrics_.GetCounter("server.plan_cache.misses");
  cache_invalidations_counter_ =
      metrics_.GetCounter("server.plan_cache.invalidations");
  model_evaluations_counter_ = metrics_.GetCounter("server.model.evaluations");
  request_latency_hist_ = metrics_.GetHistogram("server.request_latency_ns");
}

FrontEnd::~FrontEnd() { Shutdown(); }

void FrontEnd::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    shutdown_ = true;
  }
  tenant_cv_.notify_all();
  engine_->Shutdown();
}

Response FrontEnd::Handle(const Request& request) {
  const int64_t start_ns = NowNanos();
  requests_counter_->Increment();

  Response resp;
  std::string_view rest = request.text;
  const std::string verb = TakeWord(&rest);
  if (verb == "select") {
    SelectStatement stmt;
    const Status status = ParseSelect(request.text, &stmt);
    resp = status.ok() ? ExecuteSelect(stmt, {}, request.tenant,
                                       request.pipeline_mode)
                       : ErrorResponse(status);
  } else if (verb == "prepare") {
    const std::string name = TakeWord(&rest);
    const std::string as = TakeWord(&rest);
    if (name.empty() || as != "as") {
      resp = ErrorResponse(
          Status::InvalidArgument("usage: PREPARE <name> AS SELECT ..."));
    } else {
      SelectStatement stmt;
      const Status status = ParseSelect(rest, &stmt);
      if (status.ok()) {
        std::lock_guard<std::mutex> lock(prepared_mutex_);
        prepared_[name] = std::move(stmt);
        resp.ok = true;
        resp.message = "prepared " + name;
      } else {
        resp = ErrorResponse(status);
      }
    }
  } else if (verb == "execute") {
    const std::string name = TakeWord(&rest);
    std::string_view args = Trim(rest);
    if (!args.empty() && args.front() == '(' && args.back() == ')') {
      args = Trim(args.substr(1, args.size() - 2));
    }
    SelectStatement stmt;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(prepared_mutex_);
      const auto it = prepared_.find(name);
      if (it != prepared_.end()) {
        stmt = it->second;
        found = true;
      }
    }
    std::vector<SqlValue> params;
    Status status = found ? ParseValueList(args, &params)
                          : Status::NotFound("no prepared statement '" +
                                             name + "'");
    if (status.ok() && static_cast<int>(params.size()) != stmt.num_params) {
      status = Status::InvalidArgument(
          "statement expects " + std::to_string(stmt.num_params) +
          " parameter(s), got " + std::to_string(params.size()));
    }
    resp = status.ok() ? ExecuteSelect(stmt, params, request.tenant,
                                       request.pipeline_mode)
                       : ErrorResponse(status);
  } else if (verb == "tpch") {
    const std::string num = TakeWord(&rest);
    const int query = std::atoi(num.c_str());
    if (catalog_->tpch() == nullptr) {
      resp = ErrorResponse(
          Status::FailedPrecondition("no TPC-H data registered"));
    } else if (!IsTpchQuerySupported(query)) {
      resp = ErrorResponse(
          Status::InvalidArgument("unsupported TPC-H query '" + num + "'"));
    } else {
      resp = ExecuteTpch(query, request.tenant, request.pipeline_mode);
    }
  } else if (verb == "set") {
    const std::string what = TakeWord(&rest);
    if (what == "tenant") {
      const std::string name = TakeWord(&rest);
      if (name.empty()) {
        resp = ErrorResponse(
            Status::InvalidArgument("usage: SET TENANT <name>"));
      } else {
        std::lock_guard<std::mutex> lock(tenant_mutex_);
        if (tenants_.count(name) == 0) {
          resp = ErrorResponse(Status::NotFound("unknown tenant '" + name +
                                                "'"));
        } else {
          resp.ok = true;
          resp.message = "tenant " + name;
          resp.set_tenant = name;
        }
      }
    } else if (what == "pipeline_mode") {
      // Accept "SET PIPELINE_MODE fused" and "SET PIPELINE_MODE = fused".
      std::string value = TakeWord(&rest);
      if (value == "=") {
        value = TakeWord(&rest);
      } else if (!value.empty() && value.front() == '=') {
        value = value.substr(1);
      }
      if (value == "fused" || value == "vectorized") {
        resp.ok = true;
        resp.message = "pipeline_mode " + value;
        resp.set_pipeline_mode = value;
      } else {
        resp = ErrorResponse(Status::InvalidArgument(
            "usage: SET PIPELINE_MODE <fused|vectorized>"));
      }
    } else {
      resp = ErrorResponse(Status::InvalidArgument(
          "usage: SET TENANT <name> | SET PIPELINE_MODE "
          "<fused|vectorized>"));
    }
  } else if (verb == "stats") {
    resp = Stats();
  } else {
    resp = ErrorResponse(Status::InvalidArgument(
        "unknown statement '" + verb +
        "' (expected SELECT/PREPARE/EXECUTE/TPCH/SET/STATS)"));
  }

  request_latency_hist_->Record(NowNanos() - start_ns);
  if (!resp.ok) errors_counter_->Increment();
  return resp;
}

template <typename CompileFn>
Response FrontEnd::ExecuteWithCache(const std::string& key,
                                    const std::vector<std::string>& tables,
                                    bool has_join, CompileFn&& compile,
                                    const SelectStatement* stmt,
                                    const std::string& tenant,
                                    PipelineMode mode) {
  const std::string fingerprint =
      catalog_->CardinalityFingerprint(tables) + KnobFingerprint(mode);

  PlanCacheEntry entry;
  const PlanCache::Outcome outcome =
      plan_cache_.Lookup(key, fingerprint, &entry);
  bool hit = outcome == PlanCache::Outcome::kHit;
  switch (outcome) {
    case PlanCache::Outcome::kHit: cache_hits_counter_->Increment(); break;
    case PlanCache::Outcome::kMiss: cache_misses_counter_->Increment(); break;
    case PlanCache::Outcome::kInvalidated:
      cache_invalidations_counter_->Increment();
      break;
  }

  // Radix bits shape the plan (exchange edges), so they are decided before
  // compilation: the cached verdict on a hit, a fresh ChooseRadixBits
  // model evaluation on a missed ad-hoc join.
  int radix_bits = config_.plan.join_radix_bits;
  if (hit) {
    radix_bits = entry.radix_bits;
  } else if (has_join && stmt != nullptr) {
    EdgeEstimate build_est, probe_est;
    const Status status = compiler_.JoinEstimates(*stmt, &build_est,
                                                  &probe_est);
    if (!status.ok()) return ErrorResponse(status);
    radix_bits = chooser_
                     .ChooseRadixBits(build_est, probe_est,
                                      SlotBytes(build_est.row_bytes),
                                      config_.plan.load_factor,
                                      config_.max_radix_bits)
                     .radix_bits;
    model_evaluations_counter_->Increment();
  }

  std::unique_ptr<QueryPlan> plan;
  const Status compile_status = compile(radix_bits, &plan);
  if (!compile_status.ok()) return ErrorResponse(compile_status);

  if (hit) {
    if (entry.choices.size() == plan->streaming_edges().size()) {
      // The whole point of the cache: per-edge UoT choices pinned as plan
      // annotations, no model evaluation.
      CostModelUotChooser::AnnotatePlan(plan.get(), entry.choices);
    } else {
      hit = false;  // stale shape (should not happen; fingerprint guards)
    }
  }

  TenantState* tenant_state = nullptr;
  const Status admit_status = AcquireTenant(tenant, &tenant_state);
  if (!admit_status.ok()) return ErrorResponse(admit_status);

  ExecConfig exec;
  exec.join = config_.join;
  exec.pipeline_mode = mode;
  if (config_.engine.memory_budget_bytes > 0) {
    exec.memory_budget_bytes = static_cast<int64_t>(
        static_cast<double>(config_.engine.memory_budget_bytes) *
        tenant_state->cls.memory_share);
  }
  ExecutionStats stats;
  const Status exec_status = engine_->ExecuteOrReject(plan.get(), exec,
                                                      &stats);
  ReleaseTenant(tenant_state);
  if (!exec_status.ok()) return ErrorResponse(exec_status);

  if (!hit) {
    const std::vector<EdgeEstimate> estimates = EstimatesFromRun(*plan,
                                                                 stats);
    if (estimates.size() == plan->streaming_edges().size()) {
      entry.fingerprint = fingerprint;
      entry.radix_bits = radix_bits;
      entry.choices = chooser_.ChoosePlan(*plan, estimates);
      model_evaluations_counter_->Increment();
      plan_cache_.Insert(key, entry);
    }
  }

  Response resp;
  resp.ok = true;
  resp.rows_csv = CanonicalRows(*plan->result_table());
  resp.row_count = plan->result_table()->NumRows();
  resp.cache = hit ? Response::Cache::kHit : Response::Cache::kMiss;
  resp.exec_ms = stats.QueryMillis();
  resp.query_id = stats.query_id;
  rows_counter_->Add(resp.row_count);
  return resp;
}

Response FrontEnd::ExecuteSelect(const SelectStatement& stmt,
                                 const std::vector<SqlValue>& params,
                                 const std::string& tenant,
                                 PipelineMode mode) {
  return ExecuteWithCache(
      stmt.TemplateKey(), stmt.Tables(), stmt.has_join,
      [this, &stmt, &params](int radix_bits,
                             std::unique_ptr<QueryPlan>* plan) {
        return compiler_.Compile(stmt, params, radix_bits, plan);
      },
      &stmt, tenant, mode);
}

Response FrontEnd::ExecuteTpch(int query, const std::string& tenant,
                               PipelineMode mode) {
  const TpchDatabase* db = catalog_->tpch();
  return ExecuteWithCache(
      "tpch:" + std::to_string(query),
      {"lineitem", "orders", "customer", "part", "supplier", "partsupp",
       "nation", "region"},
      /*has_join=*/false,
      [this, db, query](int radix_bits, std::unique_ptr<QueryPlan>* plan) {
        TpchPlanConfig plan_config = config_.plan;
        plan_config.join_radix_bits = radix_bits;
        *plan = BuildTpchPlan(query, *db, plan_config);
        return Status::OK();
      },
      /*stmt=*/nullptr, tenant, mode);
}

Response FrontEnd::Stats() const {
  const auto counter = [this](const char* name) -> uint64_t {
    const obs::Counter* c = metrics_.FindCounter(name);
    return c != nullptr ? c->Value() : 0;
  };
  Response resp;
  resp.ok = true;
  resp.message =
      "requests=" + std::to_string(counter("server.requests")) +
      " errors=" + std::to_string(counter("server.errors")) +
      " cache_hits=" + std::to_string(counter("server.plan_cache.hits")) +
      " cache_misses=" + std::to_string(counter("server.plan_cache.misses")) +
      " cache_invalidations=" +
      std::to_string(counter("server.plan_cache.invalidations")) +
      " cache_size=" + std::to_string(plan_cache_.size()) +
      " model_evaluations=" +
      std::to_string(counter("server.model.evaluations")) +
      " queries_executed=" + std::to_string(engine_->queries_executed()) +
      " active_queries=" + std::to_string(engine_->active_queries());
  return resp;
}

Status FrontEnd::AcquireTenant(const std::string& tenant,
                               TenantState** state) {
  std::unique_lock<std::mutex> lock(tenant_mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  TenantState& ts = it->second;
  tenant_cv_.wait(lock, [this, &ts] {
    return shutdown_ || ts.cls.max_inflight <= 0 ||
           ts.inflight < ts.cls.max_inflight;
  });
  if (shutdown_) {
    return Status::FailedPrecondition("server shutting down");
  }
  ++ts.inflight;
  *state = &ts;
  return Status::OK();
}

void FrontEnd::ReleaseTenant(TenantState* state) {
  {
    std::lock_guard<std::mutex> lock(tenant_mutex_);
    --state->inflight;
  }
  tenant_cv_.notify_all();
}

std::string FrontEnd::KnobFingerprint(PipelineMode pipeline_mode) const {
  return "|kernel=" + std::to_string(static_cast<int>(config_.join.kernel)) +
         ";pmode=" + std::to_string(static_cast<int>(pipeline_mode)) +
         ";batch=" + std::to_string(config_.join.batch_size) +
         ";prefetch=" + std::to_string(config_.join.prefetch_distance) +
         ";block=" + std::to_string(config_.plan.block_bytes) +
         ";radix=" + std::to_string(config_.plan.join_radix_bits) +
         ";lip=" + std::to_string(config_.plan.use_lip ? 1 : 0) +
         ";budget=" + std::to_string(config_.engine.memory_budget_bytes) +
         ";chooser_budget=" +
         std::to_string(config_.chooser.memory_budget_bytes) +
         ";threads=" + std::to_string(config_.chooser.threads);
}

}  // namespace server
}  // namespace uot
