// The server binary: loads a TPC-H catalog and serves the text protocol
// over TCP (or stdin with --stdin). See DESIGN.md "Serving".
//
// Usage: uot_server [--port N] [--stdin] [--workers N] [--sf F]
//                   [--max-inflight N] [--budget-mb N]
//                   [--tenant name:max_inflight:memory_share]...
//
// With --stdin the server reads statements from stdin and writes replies
// to stdout (CI smoke tests, piping). Otherwise it binds 127.0.0.1:port
// (default 5433; 0 picks an ephemeral port) and prints the bound port.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "server/text_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool ParseTenant(const std::string& spec, uot::server::TenantClass* out) {
  const size_t c1 = spec.find(':');
  if (c1 == std::string::npos) return false;
  const size_t c2 = spec.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  out->name = spec.substr(0, c1);
  out->max_inflight = std::atoi(spec.substr(c1 + 1, c2 - c1 - 1).c_str());
  out->memory_share = std::atof(spec.substr(c2 + 1).c_str());
  return !out->name.empty() && out->memory_share > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 5433;
  bool use_stdin = false;
  int workers = 4;
  double scale_factor = 0.01;
  int max_inflight = 0;
  int64_t budget_mb = 0;
  std::vector<uot::server::TenantClass> tenants;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--port") port = std::atoi(next());
    else if (arg == "--stdin") use_stdin = true;
    else if (arg == "--workers") workers = std::atoi(next());
    else if (arg == "--sf") scale_factor = std::atof(next());
    else if (arg == "--max-inflight") max_inflight = std::atoi(next());
    else if (arg == "--budget-mb") budget_mb = std::atoll(next());
    else if (arg == "--tenant") {
      uot::server::TenantClass cls;
      if (!ParseTenant(next(), &cls)) {
        std::fprintf(stderr,
                     "bad --tenant spec (want name:max_inflight:share)\n");
        return 2;
      }
      tenants.push_back(cls);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  uot::StorageManager storage;
  uot::TpchDatabase db(&storage);
  uot::TpchConfig tpch_config;
  tpch_config.scale_factor = scale_factor;
  std::fprintf(stderr, "[uot_server] generating TPC-H sf=%g ...\n",
               scale_factor);
  db.Generate(tpch_config);
  uot::server::Catalog catalog(&storage);
  catalog.RegisterTpch(&db);

  uot::server::FrontEndConfig config;
  config.engine.num_workers = workers;
  config.engine.max_inflight_queries = max_inflight;
  config.engine.memory_budget_bytes = budget_mb * (1 << 20);
  config.chooser.threads = workers;
  config.chooser.memory_budget_bytes = config.engine.memory_budget_bytes;
  config.tenants = tenants;
  uot::server::FrontEnd frontend(config, &catalog);

  if (use_stdin) {
    uot::server::RunStdioLoop(&frontend, std::cin, std::cout);
    frontend.Shutdown();
    return 0;
  }

  uot::server::TextServer tcp(&frontend);
  const uot::Status status = tcp.Start(port);
  if (!status.ok()) {
    std::fprintf(stderr, "[uot_server] %s\n", status.ToString().c_str());
    return 1;
  }
  // Port on stdout so scripts can scrape it (ephemeral-port mode).
  std::printf("LISTENING 127.0.0.1:%d\n", tcp.port());
  std::fflush(stdout);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::fprintf(stderr, "[uot_server] shutting down\n");
  tcp.Stop();
  frontend.Shutdown();
  return 0;
}
