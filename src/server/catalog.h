#ifndef UOT_SERVER_CATALOG_H_
#define UOT_SERVER_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "storage/table.h"
#include "tpch/tpch_generator.h"

namespace uot {
namespace server {

/// Name -> base-table registry the front end resolves queries against.
/// Registration happens at startup (single-threaded); lookups afterwards
/// are read-only and therefore safe from concurrent request threads.
class Catalog {
 public:
  explicit Catalog(StorageManager* storage) : storage_(storage) {}
  UOT_DISALLOW_COPY_AND_ASSIGN(Catalog);

  /// Registers `table` under lower-case `name` (overwrites an existing
  /// entry of the same name).
  void RegisterTable(const std::string& name, const Table* table);

  /// Registers the eight TPC-H base tables and remembers the database so
  /// the TPCH <n> statement can build the reference plans.
  void RegisterTpch(const TpchDatabase* db);

  /// Case-insensitive lookup; nullptr if unknown.
  const Table* Find(const std::string& name) const;

  /// The registered TPC-H database; nullptr unless RegisterTpch ran.
  const TpchDatabase* tpch() const { return tpch_; }

  StorageManager* storage() const { return storage_; }

  /// Registered names in registration order.
  const std::vector<std::string>& table_names() const { return names_; }

  /// "name=rows;..." over the given tables — the cardinality component of
  /// the plan-cache fingerprint. Unknown names render as "name=?".
  std::string CardinalityFingerprint(
      const std::vector<std::string>& tables) const;

 private:
  StorageManager* const storage_;
  const TpchDatabase* tpch_ = nullptr;
  std::map<std::string, const Table*> tables_;
  std::vector<std::string> names_;
};

}  // namespace server
}  // namespace uot

#endif  // UOT_SERVER_CATALOG_H_
