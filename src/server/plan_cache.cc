#include "server/plan_cache.h"

namespace uot {
namespace server {

PlanCache::Outcome PlanCache::Lookup(const std::string& key,
                                     const std::string& fingerprint,
                                     PlanCacheEntry* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return Outcome::kMiss;
  }
  if (it->second->entry.fingerprint != fingerprint) {
    lru_.erase(it->second);
    index_.erase(it);
    ++invalidations_;
    return Outcome::kInvalidated;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->entry;
  ++hits_;
  return Outcome::kHit;
}

void PlanCache::Insert(const std::string& key, PlanCacheEntry entry) {
  if (capacity_ == 0) return;  // cache disabled: never store anything
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, std::move(entry)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

uint64_t PlanCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}

uint64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace server
}  // namespace uot
