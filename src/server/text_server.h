#ifndef UOT_SERVER_TEXT_SERVER_H_
#define UOT_SERVER_TEXT_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/frontend.h"
#include "util/status.h"

namespace uot {
namespace server {

/// Renders one front-end response in the wire format:
///   OK rows=<n> cache=<hit|miss|none> ms=<milliseconds> [<message>]
///   <csv row>\n...            (row_count lines)
///   END
/// or, on failure:
///   ERR <message>
std::string FormatResponse(const Response& response);

/// Newline-delimited text protocol over TCP (127.0.0.1): one statement per
/// request line, one FormatResponse block per reply. Each accepted
/// connection gets a serving thread; SET TENANT switches that connection's
/// admission class; QUIT (or EOF) closes it.
class TextServer {
 public:
  explicit TextServer(FrontEnd* frontend) : frontend_(frontend) {}
  ~TextServer();
  UOT_DISALLOW_COPY_AND_ASSIGN(TextServer);

  /// Binds 127.0.0.1:`port` (0 = pick an ephemeral port, see port()) and
  /// starts the accept loop.
  Status Start(int port);

  /// The bound port; 0 before Start.
  int port() const { return port_; }

  /// Stops accepting, closes live connections, joins serving threads.
  /// Idempotent. Does not shut the front end down — several servers (or a
  /// server plus in-process callers) may share one.
  void Stop();

  /// Connections accepted so far.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Connections currently being served (their fd is still open).
  size_t active_connections() const {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    return live_.size();
  }

 private:
  void AcceptLoop();
  void Serve(int client_fd);
  /// Thread body for one connection: runs Serve, then closes the fd and
  /// retires the thread handle so long-lived servers don't accumulate
  /// CLOSE_WAIT fds or joined-out thread objects.
  void ServeConnection(int client_fd);

  FrontEnd* const frontend_;
  /// Atomic because Stop() invalidates the fd concurrently with the
  /// accept loop's reads.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::thread accept_thread_;
  mutable std::mutex clients_mutex_;
  /// Serving threads keyed by client fd. A thread removes itself (moving
  /// its handle to finished_) after closing its fd; Stop() moves the
  /// still-live handles out and joins them after shutdown()ing the fds.
  std::unordered_map<int, std::thread> live_;
  /// Exited serving threads awaiting join; reaped by the accept loop on
  /// each new connection and drained by Stop().
  std::vector<std::thread> finished_;
  /// Losing concurrent Stop() callers wait here until the winner finishes
  /// the full teardown (touching accept_thread_ from two threads is UB).
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopped_ = false;
};

/// Serves the same protocol over an istream/ostream pair (stdin mode: CI
/// smoke tests and piping without sockets). Returns at EOF or QUIT.
void RunStdioLoop(FrontEnd* frontend, std::istream& in, std::ostream& out);

}  // namespace server
}  // namespace uot

#endif  // UOT_SERVER_TEXT_SERVER_H_
