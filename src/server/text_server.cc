#include "server/text_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace uot {
namespace server {
namespace {

bool IsQuit(const std::string& line) {
  std::string word;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (word.empty()) continue;
      break;
    }
    word += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return word == "quit";
}

bool BlankLine(const std::string& line) {
  for (char c : line) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::string FormatResponse(const Response& response) {
  if (!response.ok) return "ERR " + response.error + "\n";
  char ms[32];
  std::snprintf(ms, sizeof(ms), "%.3f", response.exec_ms);
  std::string out = "OK rows=" + std::to_string(response.row_count) +
                    " cache=";
  switch (response.cache) {
    case Response::Cache::kHit: out += "hit"; break;
    case Response::Cache::kMiss: out += "miss"; break;
    case Response::Cache::kNone: out += "none"; break;
  }
  out += " ms=";
  out += ms;
  if (!response.message.empty()) {
    out += ' ';
    out += response.message;
  }
  out += '\n';
  out += response.rows_csv;  // CanonicalRows lines are newline-terminated
  out += "END\n";
  return out;
}

TextServer::~TextServer() { Stop(); }

Status TextServer::Start(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("bind() failed: " +
                            std::string(std::strerror(errno)));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return Status::Internal("listen() failed: " +
                            std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TextServer::Stop() {
  if (stopping_.exchange(true)) {
    // A concurrent Stop() already owns the teardown; wait for it to finish
    // rather than racing it on accept_thread_ (double join is UB).
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  // Closing the listening socket unblocks accept(); shutting down client
  // sockets unblocks their reads. Each serving thread closes its own fd on
  // the way out, so Stop() only shutdown()s.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const auto& client : live_) ::shutdown(client.first, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    threads.reserve(live_.size() + finished_.size());
    for (auto& client : live_) threads.push_back(std::move(client.second));
    live_.clear();
    for (std::thread& t : finished_) threads.push_back(std::move(t));
    finished_.clear();
  }
  for (std::thread& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
}

void TextServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = listen_fd_.load(std::memory_order_acquire);
    if (fd < 0) return;  // Stop() already invalidated the socket
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;  // transient accept failure
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::thread> reap;
    {
      std::lock_guard<std::mutex> lock(clients_mutex_);
      if (stopping_.load(std::memory_order_relaxed)) {
        ::close(client);
        return;
      }
      live_.emplace(client,
                    std::thread([this, client] { ServeConnection(client); }));
      reap.swap(finished_);
    }
    for (std::thread& t : reap) t.join();
  }
}

void TextServer::ServeConnection(int client_fd) {
  Serve(client_fd);
  std::lock_guard<std::mutex> lock(clients_mutex_);
  ::close(client_fd);
  const auto it = live_.find(client_fd);
  if (it != live_.end()) {
    // Still registered: retire our own handle for the accept loop (or
    // Stop()) to join. If Stop() already claimed it, it owns the join.
    finished_.push_back(std::move(it->second));
    live_.erase(it);
  }
}

void TextServer::Serve(int client_fd) {
  std::string tenant = "default";
  PipelineMode mode = PipelineMode::kVectorized;
  std::string buffer;
  char chunk[4096];
  while (true) {
    // Drain complete lines already buffered before reading more.
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (BlankLine(line)) continue;
      if (IsQuit(line)) return;
      const Response resp = frontend_->Handle(Request{line, tenant, mode});
      if (!resp.set_tenant.empty()) tenant = resp.set_tenant;
      if (!resp.set_pipeline_mode.empty()) {
        mode = resp.set_pipeline_mode == "fused" ? PipelineMode::kFused
                                                 : PipelineMode::kVectorized;
      }
      const std::string reply = FormatResponse(resp);
      size_t sent = 0;
      while (sent < reply.size()) {
        const ssize_t n = ::send(client_fd, reply.data() + sent,
                                 reply.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) return;
        sent += static_cast<size_t>(n);
      }
    }
    const ssize_t n = ::recv(client_fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;  // EOF, peer reset, or Stop()'s shutdown()
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

void RunStdioLoop(FrontEnd* frontend, std::istream& in, std::ostream& out) {
  std::string tenant = "default";
  PipelineMode mode = PipelineMode::kVectorized;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (BlankLine(line)) continue;
    if (IsQuit(line)) return;
    const Response resp = frontend->Handle(Request{line, tenant, mode});
    if (!resp.set_tenant.empty()) tenant = resp.set_tenant;
    if (!resp.set_pipeline_mode.empty()) {
      mode = resp.set_pipeline_mode == "fused" ? PipelineMode::kFused
                                               : PipelineMode::kVectorized;
    }
    out << FormatResponse(resp) << std::flush;
  }
}

}  // namespace server
}  // namespace uot
