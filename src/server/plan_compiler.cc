#include "server/plan_compiler.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <utility>

#include "expr/projection.h"
#include "types/date.h"

namespace uot {
namespace server {
namespace {

/// A column resolved against the statement's tables: which side it lives
/// on (0 = FROM table, 1 = JOIN table) and its index there.
struct BoundColumn {
  int side = 0;
  int index = -1;
  Type type = Type::Int32();
};

class Resolver {
 public:
  Resolver(const std::string& left_name, const Schema* left,
           const std::string& right_name, const Schema* right)
      : left_name_(left_name),
        left_(left),
        right_name_(right_name),
        right_(right) {}

  Status Resolve(const std::string& name, BoundColumn* out) const {
    std::string qualifier, column = name;
    const size_t dot = name.find('.');
    if (dot != std::string::npos) {
      qualifier = name.substr(0, dot);
      column = name.substr(dot + 1);
    }
    if (qualifier.empty() || qualifier == left_name_) {
      const int idx = left_->ColumnIndex(column);
      if (idx >= 0) {
        *out = {0, idx, left_->column(idx).type};
        return Status::OK();
      }
      if (!qualifier.empty()) {
        return Status::NotFound("no column '" + column + "' in table '" +
                                qualifier + "'");
      }
    }
    if (right_ != nullptr && (qualifier.empty() || qualifier == right_name_)) {
      const int idx = right_->ColumnIndex(column);
      if (idx >= 0) {
        *out = {1, idx, right_->column(idx).type};
        return Status::OK();
      }
    }
    return Status::NotFound("unknown column '" + name + "'");
  }

 private:
  const std::string& left_name_;
  const Schema* left_;
  const std::string& right_name_;
  const Schema* right_;
};

Status BindValue(const SqlValue& value, const std::vector<SqlValue>& params,
                 const Type& type, TypedValue* out) {
  const SqlValue* v = &value;
  if (v->kind == SqlValue::Kind::kParam) {
    if (v->param_index < 0 ||
        v->param_index >= static_cast<int>(params.size())) {
      return Status::InvalidArgument(
          "missing value for parameter " + std::to_string(v->param_index + 1));
    }
    v = &params[static_cast<size_t>(v->param_index)];
    if (v->kind == SqlValue::Kind::kParam) {
      return Status::InvalidArgument("parameter bound to another '?'");
    }
  }
  switch (type.id()) {
    case TypeId::kInt32:
      if (v->kind != SqlValue::Kind::kInt) {
        return Status::InvalidArgument("expected an integer literal");
      }
      *out = TypedValue::Int32(static_cast<int32_t>(v->int_value));
      return Status::OK();
    case TypeId::kInt64:
      if (v->kind != SqlValue::Kind::kInt) {
        return Status::InvalidArgument("expected an integer literal");
      }
      *out = TypedValue::Int64(v->int_value);
      return Status::OK();
    case TypeId::kDouble:
      if (v->kind == SqlValue::Kind::kDouble) {
        *out = TypedValue::Double(v->double_value);
      } else if (v->kind == SqlValue::Kind::kInt) {
        *out = TypedValue::Double(static_cast<double>(v->int_value));
      } else {
        return Status::InvalidArgument("expected a numeric literal");
      }
      return Status::OK();
    case TypeId::kDate: {
      if (v->kind == SqlValue::Kind::kInt) {
        // Raw day count — the representation profiles/tools emit.
        *out = TypedValue::Date(static_cast<int32_t>(v->int_value));
        return Status::OK();
      }
      if (v->kind != SqlValue::Kind::kString) {
        return Status::InvalidArgument("expected a 'YYYY-MM-DD' date");
      }
      int y = 0, m = 0, d = 0;
      if (std::sscanf(v->string_value.c_str(), "%d-%d-%d", &y, &m, &d) != 3 ||
          m < 1 || m > 12 || d < 1 || d > 31) {
        return Status::InvalidArgument("bad date literal '" + v->string_value +
                                       "'");
      }
      *out = TypedValue::Date(MakeDate(y, m, d));
      return Status::OK();
    }
    case TypeId::kChar:
      if (v->kind != SqlValue::Kind::kString) {
        return Status::InvalidArgument("expected a string literal");
      }
      if (v->string_value.size() > type.width()) {
        return Status::InvalidArgument("string literal wider than CHAR(" +
                                       std::to_string(type.width()) + ")");
      }
      *out = TypedValue::Char(v->string_value);
      return Status::OK();
  }
  return Status::InvalidArgument("unsupported column type");
}

std::vector<int> AllColumns(const Schema& schema) {
  std::vector<int> cols;
  for (int c = 0; c < schema.num_columns(); ++c) cols.push_back(c);
  return cols;
}

std::string AggName(const SqlSelectItem& item, size_t index) {
  std::string name = item.count_star ? "count_star" : item.column;
  const size_t dot = name.find('.');
  if (dot != std::string::npos) name = name.substr(dot + 1);
  return name + "_" + std::to_string(index);
}

}  // namespace

Status PlanCompiler::Compile(const SelectStatement& stmt,
                             const std::vector<SqlValue>& params,
                             int radix_bits,
                             std::unique_ptr<QueryPlan>* out) const {
  const Table* left = catalog_->Find(stmt.table);
  if (left == nullptr) {
    return Status::NotFound("unknown table '" + stmt.table + "'");
  }
  const Table* right = nullptr;
  if (stmt.has_join) {
    right = catalog_->Find(stmt.join.table);
    if (right == nullptr) {
      return Status::NotFound("unknown table '" + stmt.join.table + "'");
    }
  }
  Resolver resolver(stmt.table, &left->schema(), stmt.join.table,
                    right != nullptr ? &right->schema() : nullptr);

  // Split WHERE conjuncts by the scan they push down to.
  std::vector<std::unique_ptr<Predicate>> preds[2];
  for (const SqlCondition& cond : stmt.where) {
    BoundColumn col;
    UOT_RETURN_IF_ERROR(resolver.Resolve(cond.column, &col));
    TypedValue value;
    UOT_RETURN_IF_ERROR(BindValue(cond.value, params, col.type, &value));
    preds[col.side].push_back(Cmp(cond.op, Col(col.index, col.type),
                                  Lit(value, col.type)));
  }
  auto side_pred = [&preds](int side) -> std::unique_ptr<Predicate> {
    if (preds[side].empty()) return std::make_unique<TruePredicate>();
    if (preds[side].size() == 1) return std::move(preds[side][0]);
    return And(std::move(preds[side]));
  };

  PlanBuilder pb(catalog_->storage(), config_);
  PlanBuilder::Src current;
  // Maps a resolved (side, index) to the column's index in `current`.
  int right_offset = 0;

  if (!stmt.has_join) {
    current = pb.Select(
        "scan_" + stmt.table, PlanBuilder::Base(*left), side_pred(0),
        Projection::Identity(left->schema(), AllColumns(left->schema())));
  } else {
    // Join keys: accept the ON columns in either order.
    BoundColumn on_left, on_right;
    UOT_RETURN_IF_ERROR(resolver.Resolve(stmt.join.left_column, &on_left));
    UOT_RETURN_IF_ERROR(resolver.Resolve(stmt.join.right_column, &on_right));
    if (on_left.side == on_right.side) {
      return Status::InvalidArgument(
          "join condition must compare the two tables");
    }
    if (on_left.side == 1) std::swap(on_left, on_right);

    PlanBuilder::Src probe_in = pb.Select(
        "scan_" + stmt.table, PlanBuilder::Base(*left), side_pred(0),
        Projection::Identity(left->schema(), AllColumns(left->schema())));
    PlanBuilder::Src build_in = pb.Select(
        "scan_" + stmt.join.table, PlanBuilder::Base(*right), side_pred(1),
        Projection::Identity(right->schema(), AllColumns(right->schema())));
    BuildHashOperator* build =
        pb.Build("build_" + stmt.join.table, build_in, {on_right.index},
                 AllColumns(right->schema()), radix_bits);
    current = pb.Probe("probe_" + stmt.table, probe_in, build,
                       {on_left.index}, AllColumns(left->schema()));
    // Probe output: the probe side's columns first, then the build payload.
    right_offset = left->schema().num_columns();
  }
  auto current_index = [right_offset](const BoundColumn& col) {
    return col.side == 0 ? col.index : right_offset + col.index;
  };

  const bool aggregated =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SqlSelectItem& i) { return i.is_aggregate; });

  if (aggregated) {
    std::vector<int> group_cols;
    for (const std::string& name : stmt.group_by) {
      BoundColumn col;
      UOT_RETURN_IF_ERROR(resolver.Resolve(name, &col));
      group_cols.push_back(current_index(col));
    }
    // The aggregate's output is [group keys..., aggregates...]; out_cols
    // maps each select item to its position there so the result matches
    // the select list, not the operator's native order.
    std::vector<AggSpec> aggs;
    std::vector<int> out_cols;
    const int num_keys = static_cast<int>(group_cols.size());
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SqlSelectItem& item = stmt.items[i];
      if (!item.is_aggregate) {
        BoundColumn col;
        UOT_RETURN_IF_ERROR(resolver.Resolve(item.column, &col));
        const auto key = std::find(group_cols.begin(), group_cols.end(),
                                   current_index(col));
        if (key == group_cols.end()) {
          return Status::InvalidArgument(
              "column '" + item.column +
              "' must appear in GROUP BY or inside an aggregate");
        }
        out_cols.push_back(
            static_cast<int>(std::distance(group_cols.begin(), key)));
        continue;
      }
      AggSpec spec;
      spec.fn = item.fn;
      spec.name = AggName(item, i);
      if (!item.count_star) {
        BoundColumn col;
        UOT_RETURN_IF_ERROR(resolver.Resolve(item.column, &col));
        spec.expr = Col(current_index(col), col.type);
      }
      out_cols.push_back(num_keys + static_cast<int>(aggs.size()));
      aggs.push_back(std::move(spec));
    }
    if (aggs.empty()) {
      return Status::InvalidArgument(
          "GROUP BY without an aggregate in the select list");
    }
    const int num_aggs = static_cast<int>(aggs.size());
    current = pb.Aggregate("agg", current, std::move(group_cols),
                           std::move(aggs));
    bool native_order = out_cols.size() ==
                        static_cast<size_t>(num_keys + num_aggs);
    for (size_t j = 0; native_order && j < out_cols.size(); ++j) {
      native_order = out_cols[j] == static_cast<int>(j);
    }
    if (!native_order) {
      current = pb.Select("project_agg", current,
                          std::make_unique<TruePredicate>(),
                          Projection::Identity(current.table->schema(),
                                               out_cols));
    }
  } else {
    // Bare-column select: project the requested columns (an extra
    // projection-only stage after a join; folded into the scan otherwise).
    std::vector<int> cols;
    for (const SqlSelectItem& item : stmt.items) {
      BoundColumn col;
      UOT_RETURN_IF_ERROR(resolver.Resolve(item.column, &col));
      cols.push_back(current_index(col));
    }
    current = pb.Select("project", current, std::make_unique<TruePredicate>(),
                        Projection::Identity(current.table->schema(), cols));
  }

  *out = pb.Finish(current);
  return Status::OK();
}

Status PlanCompiler::JoinEstimates(const SelectStatement& stmt,
                                   EdgeEstimate* build,
                                   EdgeEstimate* probe) const {
  if (!stmt.has_join) {
    return Status::InvalidArgument("statement has no join");
  }
  const Table* left = catalog_->Find(stmt.table);
  const Table* right = catalog_->Find(stmt.join.table);
  if (left == nullptr || right == nullptr) {
    return Status::NotFound("unknown table in join");
  }
  build->rows = right->NumRows();
  build->row_bytes = right->schema().row_width();
  probe->rows = left->NumRows();
  probe->row_bytes = left->schema().row_width();
  return Status::OK();
}

}  // namespace server
}  // namespace uot
