#ifndef UOT_JOIN_PARTITIONED_HASH_TABLE_H_
#define UOT_JOIN_PARTITIONED_HASH_TABLE_H_

#include <memory>
#include <vector>

#include "join/hash_table.h"
#include "join/partition_kernel.h"

namespace uot {

/// The partitioned variant of the join hash table: `2^radix_bits` disjoint
/// JoinHashTable sub-tables, one per hash partition (ROADMAP item 2, the
/// morsel-style alternative to the paper's single shared table).
///
/// Each sub-table is built and probed only with keys whose mixed hash falls
/// in its partition (PartitionOfKey), so build work orders of different
/// partitions share no cache lines and take no CAS contention, and a
/// sub-table sized to fit L3 keeps its probes cache-resident even when the
/// combined table would not.
///
/// The sub-tables are plain JoinHashTables — the scalar and batched
/// build/probe kernels run unmodified against them, which is what makes the
/// partitioned path byte-parity equivalent to the unpartitioned one.
class PartitionedJoinHashTable {
 public:
  /// Creates the `2^radix_bits` empty sub-tables (radix_bits in
  /// [0, kMaxRadixBits]; 0 degenerates to one sub-table, the unpartitioned
  /// shape). Sub-tables are sized later via ReservePartitions.
  PartitionedJoinHashTable(Schema payload_schema, int num_key_cols,
                           double load_factor, int radix_bits,
                           MemoryTracker* tracker);
  UOT_DISALLOW_COPY_AND_ASSIGN(PartitionedJoinHashTable);

  /// Sizes sub-table `p` for `counts[p]` inserts. `counts` must have
  /// exactly num_partitions() entries; exact per-partition counts are
  /// available because builds start only once their (exchanged) input is
  /// complete. Empty partitions get a minimal table probes see as empty.
  void ReservePartitions(const std::vector<uint64_t>& counts);

  JoinHashTable* sub_table(uint32_t partition) {
    UOT_DCHECK(partition < sub_tables_.size());
    return sub_tables_[partition].get();
  }
  const JoinHashTable* sub_table(uint32_t partition) const {
    UOT_DCHECK(partition < sub_tables_.size());
    return sub_tables_[partition].get();
  }

  int radix_bits() const { return radix_bits_; }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(sub_tables_.size());
  }
  const Schema& payload_schema() const {
    return sub_tables_.front()->payload_schema();
  }
  int num_key_cols() const { return sub_tables_.front()->num_key_cols(); }

  /// Entries across all sub-tables.
  uint64_t size() const;
  /// Slot + tag bytes across all sub-tables.
  size_t allocated_bytes() const;

 private:
  const int radix_bits_;
  std::vector<std::unique_ptr<JoinHashTable>> sub_tables_;
};

}  // namespace uot

#endif  // UOT_JOIN_PARTITIONED_HASH_TABLE_H_
