#ifndef UOT_JOIN_PARTITION_KERNEL_H_
#define UOT_JOIN_PARTITION_KERNEL_H_

#include <cstdint>

#include "join/hash_table.h"
#include "util/macros.h"

namespace uot {

/// Radix partitioning for the partitioned hash join: partition ids come
/// from the TOP `radix_bits` bits of the mixed join-key hash, while
/// JoinHashTable derives its slot index from the LOW bits (hash & mask).
/// The bit ranges are independent, so restricting a sub-table to one
/// partition does not skew its slot distribution.
constexpr int kMaxRadixBits = 16;

/// Number of partitions at `radix_bits` (1 for the unpartitioned case).
inline uint32_t NumPartitions(int radix_bits) {
  UOT_DCHECK(radix_bits >= 0 && radix_bits <= kMaxRadixBits);
  return uint32_t{1} << radix_bits;
}

/// Partition id of one already-mixed join-key hash.
inline uint32_t PartitionOfHash(uint64_t hash, int radix_bits) {
  if (radix_bits == 0) return 0;  // shifting by 64 is undefined
  return static_cast<uint32_t>(hash >> (64 - radix_bits));
}

/// Partition id of one widened composite key (`words` = 1 or 2).
inline uint32_t PartitionOfKey(const uint64_t* key, int words,
                               int radix_bits) {
  return PartitionOfHash(HashJoinKey(key, words), radix_bits);
}

/// Batched partition stage of the exchange kernel: hashes `n` widened keys
/// (packed at stride `words`, as produced by ExtractKeys) and writes each
/// row's partition id to `out[i]`. The hash mix is the same one the
/// build/probe kernels apply, so both sides of a join land matching keys in
/// matching partitions.
inline void PartitionBatch(const uint64_t* keys, uint32_t n, int words,
                           int radix_bits, uint32_t* out) {
  if (words == 1) {
    for (uint32_t i = 0; i < n; ++i) {
      out[i] = PartitionOfHash(HashJoinKey(&keys[i], 1), radix_bits);
    }
    return;
  }
  for (uint32_t i = 0; i < n; ++i) {
    out[i] = PartitionOfHash(
        HashJoinKey(&keys[static_cast<size_t>(i) * 2], 2), radix_bits);
  }
}

/// Histogram stage: counts the rows of one partitioned batch per partition
/// (`counts` has NumPartitions(radix_bits) entries; not cleared here so
/// callers can accumulate across batches).
inline void PartitionHistogram(const uint32_t* partitions, uint32_t n,
                               uint64_t* counts) {
  for (uint32_t i = 0; i < n; ++i) ++counts[partitions[i]];
}

}  // namespace uot

#endif  // UOT_JOIN_PARTITION_KERNEL_H_
