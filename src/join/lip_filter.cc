#include "join/lip_filter.h"

namespace uot {

LipFilter::LipFilter(uint64_t expected_entries, int bits_per_entry) {
  UOT_CHECK(bits_per_entry >= 1);
  num_bits_ = (expected_entries < 64 ? 64 : expected_entries) *
              static_cast<uint64_t>(bits_per_entry);
  const uint64_t words = (num_bits_ + 63) / 64;
  bits_ = std::make_unique<std::atomic<uint64_t>[]>(words);
  for (uint64_t i = 0; i < words; ++i) {
    bits_[i].store(0, std::memory_order_relaxed);
  }
}

void LipFilter::Insert(uint64_t key) {
  uint64_t h1, h2;
  Hashes(key, &h1, &h2);
  bits_[h1 >> 6].fetch_or(uint64_t{1} << (h1 & 63),
                          std::memory_order_relaxed);
  bits_[h2 >> 6].fetch_or(uint64_t{1} << (h2 & 63),
                          std::memory_order_relaxed);
}

}  // namespace uot
