#ifndef UOT_JOIN_HASH_TABLE_H_
#define UOT_JOIN_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "types/schema.h"
#include "util/macros.h"
#include "util/memory_tracker.h"

namespace uot {

/// Mixes a composite key (1 or 2 widened 64-bit words) into a hash.
inline uint64_t HashJoinKey(const uint64_t* key, int words) {
  uint64_t h = key[0] + 0x9E3779B97F4A7C15ULL;
  if (words == 2) h ^= key[1] * 0xC2B2AE3D27D4EB4FULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

/// One probe hit produced by JoinHashTable::ProbeBatch: the batch-relative
/// row of the probe key and the matching entry's payload.
struct JoinMatch {
  uint32_t row;              // index into the probed key batch [0, n)
  const std::byte* payload;  // packed payload_schema tuple in the slot
};

/// A non-partitioned hash table for hash joins (paper Section III):
/// one shared table built concurrently by all build work orders, probed
/// read-only afterwards.
///
/// Layout matches the paper's Section VI-B memory model: fixed-size buckets
/// of `slot_bytes()` (= c) in an open-addressed array sized so that the
/// occupancy never exceeds `load_factor` (= f); the footprint per entry is
/// therefore c/f. Duplicate keys are supported (linear-probe multimap).
///
/// Concurrency: `Insert` is thread-safe (per-slot CAS claim, release-store
/// publish). `Probe` must only run after all inserts are complete, which the
/// scheduler guarantees via the blocking build->probe dependency.
class JoinHashTable {
 public:
  /// `num_key_cols` is 1 or 2; payload rows are packed `payload_schema`
  /// tuples carried alongside the key.
  JoinHashTable(Schema payload_schema, int num_key_cols, double load_factor,
                MemoryTracker* tracker);
  ~JoinHashTable();
  UOT_DISALLOW_COPY_AND_ASSIGN(JoinHashTable);

  /// Sizes the table for `num_entries` inserts. Must be called once before
  /// any Insert.
  void Reserve(uint64_t num_entries);

  /// Inserts a key (array of `num_key_cols` widened words) with its packed
  /// payload. Thread-safe. CHECK-fails if Reserve was too small.
  void Insert(const uint64_t* key, const std::byte* payload);

  /// Batched insert of `n` keys (packed at stride `num_key_cols` words)
  /// with `n` packed payloads (stride `payload_schema().row_width()`).
  /// Hashes the whole batch first, software-prefetches home slots
  /// `prefetch_distance` keys ahead of the inserting key, then claims
  /// slots in batch order — equivalent to calling Insert per row.
  /// `hash_scratch` is caller-owned so repeated calls allocate nothing;
  /// it holds the batch hashes on return (LIP filters reuse them).
  /// Thread-safe. Returns the number of prefetches issued.
  uint64_t InsertBatch(const uint64_t* keys, const std::byte* payloads,
                       uint32_t n, int prefetch_distance,
                       std::vector<uint64_t>* hash_scratch);

  /// Invokes `fn(payload_ptr)` for every entry whose key equals `key`.
  template <typename Fn>
  void Probe(const uint64_t* key, Fn&& fn) const {
    const uint64_t mask = num_slots_ - 1;
    uint64_t idx = HashJoinKey(key, num_key_cols_) & mask;
    while (true) {
      const uint8_t tag = tags_[idx].load(std::memory_order_acquire);
      if (tag == 0) return;  // empty slot terminates the probe chain
      if (tag == 2) {
        const std::byte* slot = SlotPtr(idx);
        const uint64_t* slot_key = reinterpret_cast<const uint64_t*>(slot);
        bool match = slot_key[0] == key[0];
        if (num_key_cols_ == 2) match = match && slot_key[1] == key[1];
        if (match) fn(slot + static_cast<size_t>(num_key_cols_) * 8);
      }
      idx = (idx + 1) & mask;
    }
  }

  /// Batched probe of `n` keys (packed at stride `num_key_cols` words):
  /// computes all hashes, issues home-slot prefetches `prefetch_distance`
  /// keys ahead of the resolving key (group prefetching — the batch's
  /// independent memory accesses overlap instead of serializing on one
  /// dependent miss per tuple), then appends every match to `matches`.
  /// Matches are grouped by probe row in ascending row order with chain
  /// order preserved inside a row — exactly the order per-row Probe calls
  /// would observe, so scalar and batched probes are byte-parity
  /// equivalent. Batches below JoinKernelConfig::kMinRowsForPrefetch (or
  /// `prefetch_distance` <= 0) resolve without prefetching.
  /// Returns the number of prefetches issued.
  uint64_t ProbeBatch(const uint64_t* keys, uint32_t n, int prefetch_distance,
                      std::vector<uint64_t>* hash_scratch,
                      std::vector<JoinMatch>* matches) const;

  const Schema& payload_schema() const { return payload_schema_; }
  int num_key_cols() const { return num_key_cols_; }
  double load_factor() const { return load_factor_; }

  uint64_t size() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  uint64_t num_slots() const { return num_slots_; }
  /// Bytes per bucket (the model's `c`): key words + payload.
  size_t slot_bytes() const { return slot_stride_; }
  /// Total bytes of slot + tag storage.
  size_t allocated_bytes() const { return allocated_bytes_; }

 private:
  std::byte* SlotPtr(uint64_t idx) {
    return slots_.get() + idx * slot_stride_;
  }
  const std::byte* SlotPtr(uint64_t idx) const {
    return slots_.get() + idx * slot_stride_;
  }

  /// Warms the tag byte and the slot's first line for an upcoming probe or
  /// insert of the slot at `idx`.
  void PrefetchSlot(uint64_t idx) const {
    UOT_PREFETCH_READ(&tags_[idx]);
    UOT_PREFETCH_READ(SlotPtr(idx));
  }

  /// One claim-and-publish insert starting the linear probe at the slot
  /// for `hash`; shared by Insert and InsertBatch.
  void InsertWithHash(const uint64_t* key, uint64_t hash,
                      const std::byte* payload);

  const Schema payload_schema_;
  const int num_key_cols_;
  const double load_factor_;
  MemoryTracker* const tracker_;

  size_t slot_stride_ = 0;
  uint64_t num_slots_ = 0;
  size_t allocated_bytes_ = 0;
  std::unique_ptr<std::byte[]> slots_;
  std::unique_ptr<std::atomic<uint8_t>[]> tags_;
  std::atomic<uint64_t> num_entries_{0};
};

}  // namespace uot

#endif  // UOT_JOIN_HASH_TABLE_H_
