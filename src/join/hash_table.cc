#include "join/hash_table.h"

#include <cstring>

#include "obs/trace_session.h"
#include "operators/exec_context.h"

namespace uot {
namespace {

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

JoinHashTable::JoinHashTable(Schema payload_schema, int num_key_cols,
                             double load_factor, MemoryTracker* tracker)
    : payload_schema_(std::move(payload_schema)),
      num_key_cols_(num_key_cols),
      load_factor_(load_factor),
      tracker_(tracker) {
  UOT_CHECK(num_key_cols_ == 1 || num_key_cols_ == 2);
  UOT_CHECK(load_factor_ > 0.0 && load_factor_ <= 1.0);
  // Round the bucket up to 8 bytes so slot key words stay aligned.
  const size_t raw = static_cast<size_t>(num_key_cols_) * 8 +
                     payload_schema_.row_width();
  slot_stride_ = (raw + 7) & ~size_t{7};
}

JoinHashTable::~JoinHashTable() {
  if (tracker_ != nullptr && allocated_bytes_ > 0) {
    tracker_->Release(MemoryCategory::kHashTable, allocated_bytes_);
  }
}

void JoinHashTable::Reserve(uint64_t num_entries) {
  UOT_CHECK(slots_ == nullptr);  // Reserve is one-shot
  const uint64_t wanted = static_cast<uint64_t>(
      static_cast<double>(num_entries < 1 ? 1 : num_entries) / load_factor_);
  num_slots_ = NextPow2(wanted < 16 ? 16 : wanted);
  slots_ = std::make_unique<std::byte[]>(num_slots_ * slot_stride_);
  tags_ = std::make_unique<std::atomic<uint8_t>[]>(num_slots_);
  for (uint64_t i = 0; i < num_slots_; ++i) {
    tags_[i].store(0, std::memory_order_relaxed);
  }
  allocated_bytes_ = num_slots_ * (slot_stride_ + 1);
  if (tracker_ != nullptr) {
    tracker_->Allocate(MemoryCategory::kHashTable, allocated_bytes_);
    if (obs::TraceSession* trace = tracker_->trace()) {
      const int32_t slots = num_slots_ > static_cast<uint64_t>(INT32_MAX)
                                ? INT32_MAX
                                : static_cast<int32_t>(num_slots_);
      trace->EmitInstant(obs::TraceEventType::kHashTableReserve, /*tid=*/0,
                         /*arg0=*/-1, /*arg1=*/slots,
                         static_cast<int64_t>(allocated_bytes_));
    }
  }
}

void JoinHashTable::Insert(const uint64_t* key, const std::byte* payload) {
  UOT_DCHECK(slots_ != nullptr);
  InsertWithHash(key, HashJoinKey(key, num_key_cols_), payload);
}

void JoinHashTable::InsertWithHash(const uint64_t* key, uint64_t hash,
                                   const std::byte* payload) {
  const uint64_t mask = num_slots_ - 1;
  uint64_t idx = hash & mask;
  for (uint64_t attempts = 0; attempts < num_slots_; ++attempts) {
    uint8_t expected = 0;
    if (tags_[idx].compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel)) {
      std::byte* slot = SlotPtr(idx);
      std::memcpy(slot, key, static_cast<size_t>(num_key_cols_) * 8);
      if (payload_schema_.row_width() > 0) {
        std::memcpy(slot + static_cast<size_t>(num_key_cols_) * 8, payload,
                    payload_schema_.row_width());
      }
      tags_[idx].store(2, std::memory_order_release);
      num_entries_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    idx = (idx + 1) & mask;
  }
  UOT_CHECK(false);  // table over-full: Reserve() was called with too few rows
}

uint64_t JoinHashTable::InsertBatch(const uint64_t* keys,
                                    const std::byte* payloads, uint32_t n,
                                    int prefetch_distance,
                                    std::vector<uint64_t>* hash_scratch) {
  UOT_DCHECK(slots_ != nullptr);
  if (n == 0) return 0;
  if (hash_scratch->size() < n) hash_scratch->resize(n);
  uint64_t* hashes = hash_scratch->data();
  const int words = num_key_cols_;
  for (uint32_t i = 0; i < n; ++i) {
    hashes[i] = HashJoinKey(keys + static_cast<size_t>(i) * words, words);
  }
  const uint64_t mask = num_slots_ - 1;
  const uint32_t dist =
      (prefetch_distance > 0 && n >= JoinKernelConfig::kMinRowsForPrefetch)
          ? static_cast<uint32_t>(prefetch_distance)
          : 0;
  uint64_t prefetches = 0;
  if (dist > 0) {
    const uint32_t warm = dist < n ? dist : n;
    for (uint32_t i = 0; i < warm; ++i) {
      const uint64_t idx = hashes[i] & mask;
      UOT_PREFETCH_WRITE(&tags_[idx]);
      UOT_PREFETCH_WRITE(SlotPtr(idx));
    }
    prefetches += warm;
  }
  const size_t payload_width = payload_schema_.row_width();
  for (uint32_t i = 0; i < n; ++i) {
    if (dist > 0 && i + dist < n) {
      const uint64_t idx = hashes[i + dist] & mask;
      UOT_PREFETCH_WRITE(&tags_[idx]);
      UOT_PREFETCH_WRITE(SlotPtr(idx));
      ++prefetches;
    }
    InsertWithHash(keys + static_cast<size_t>(i) * words, hashes[i],
                   payloads + i * payload_width);
  }
  return prefetches;
}

uint64_t JoinHashTable::ProbeBatch(const uint64_t* keys, uint32_t n,
                                   int prefetch_distance,
                                   std::vector<uint64_t>* hash_scratch,
                                   std::vector<JoinMatch>* matches) const {
  matches->clear();
  if (n == 0) return 0;
  UOT_DCHECK(slots_ != nullptr);
  if (hash_scratch->size() < n) hash_scratch->resize(n);
  uint64_t* hashes = hash_scratch->data();
  const int words = num_key_cols_;
  for (uint32_t i = 0; i < n; ++i) {
    hashes[i] = HashJoinKey(keys + static_cast<size_t>(i) * words, words);
  }
  const uint64_t mask = num_slots_ - 1;
  const uint32_t dist =
      (prefetch_distance > 0 && n >= JoinKernelConfig::kMinRowsForPrefetch)
          ? static_cast<uint32_t>(prefetch_distance)
          : 0;
  uint64_t prefetches = 0;
  if (dist > 0) {
    const uint32_t warm = dist < n ? dist : n;
    for (uint32_t i = 0; i < warm; ++i) PrefetchSlot(hashes[i] & mask);
    prefetches += warm;
  }
  const size_t payload_offset = static_cast<size_t>(words) * 8;
  for (uint32_t i = 0; i < n; ++i) {
    if (dist > 0 && i + dist < n) {
      PrefetchSlot(hashes[i + dist] & mask);
      ++prefetches;
    }
    const uint64_t* key = keys + static_cast<size_t>(i) * words;
    uint64_t idx = hashes[i] & mask;
    while (true) {
      const uint8_t tag = tags_[idx].load(std::memory_order_acquire);
      if (tag == 0) break;  // empty slot terminates the probe chain
      if (tag == 2) {
        const std::byte* slot = SlotPtr(idx);
        const uint64_t* slot_key = reinterpret_cast<const uint64_t*>(slot);
        bool match = slot_key[0] == key[0];
        if (words == 2) match = match && slot_key[1] == key[1];
        if (match) matches->push_back(JoinMatch{i, slot + payload_offset});
      }
      idx = (idx + 1) & mask;
    }
  }
  return prefetches;
}

}  // namespace uot
