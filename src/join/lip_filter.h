#ifndef UOT_JOIN_LIP_FILTER_H_
#define UOT_JOIN_LIP_FILTER_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/macros.h"

namespace uot {

/// A Bloom filter used for Lookahead Information Passing (LIP, Zhu et al.
/// [42] in the paper): hash-join build operators populate it with their
/// join keys, and probe-side selects prune rows whose keys cannot match —
/// the paper's main "technique to lower selectivity" (Section VI-C).
///
/// Inserts are thread-safe (atomic fetch_or); queries must only run after
/// all inserts completed, which the plan's blocking edges guarantee.
class LipFilter {
 public:
  /// Sizes the filter for `expected_entries` keys with `bits_per_entry`
  /// bits each (8 bits/entry with 2 probes gives a ~2-4% false-positive
  /// rate).
  explicit LipFilter(uint64_t expected_entries, int bits_per_entry = 8);
  UOT_DISALLOW_COPY_AND_ASSIGN(LipFilter);

  void Insert(uint64_t key);

  bool MightContain(uint64_t key) const {
    uint64_t h1, h2;
    Hashes(key, &h1, &h2);
    return TestBit(h1) && TestBit(h2);
  }

  uint64_t num_bits() const { return num_bits_; }
  size_t allocated_bytes() const { return (num_bits_ + 7) / 8; }

 private:
  void Hashes(uint64_t key, uint64_t* h1, uint64_t* h2) const {
    uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    *h1 = h % num_bits_;
    *h2 = (h >> 32 | h << 32) % num_bits_;
  }

  bool TestBit(uint64_t bit) const {
    return (bits_[bit >> 6].load(std::memory_order_relaxed) >>
            (bit & 63)) &
           1;
  }

  uint64_t num_bits_;
  std::unique_ptr<std::atomic<uint64_t>[]> bits_;
};

}  // namespace uot

#endif  // UOT_JOIN_LIP_FILTER_H_
