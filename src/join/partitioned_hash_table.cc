#include "join/partitioned_hash_table.h"

namespace uot {

PartitionedJoinHashTable::PartitionedJoinHashTable(Schema payload_schema,
                                                  int num_key_cols,
                                                  double load_factor,
                                                  int radix_bits,
                                                  MemoryTracker* tracker)
    : radix_bits_(radix_bits) {
  UOT_CHECK(radix_bits >= 0 && radix_bits <= kMaxRadixBits);
  const uint32_t parts = NumPartitions(radix_bits);
  sub_tables_.reserve(parts);
  for (uint32_t p = 0; p < parts; ++p) {
    sub_tables_.push_back(std::make_unique<JoinHashTable>(
        payload_schema, num_key_cols, load_factor, tracker));
  }
}

void PartitionedJoinHashTable::ReservePartitions(
    const std::vector<uint64_t>& counts) {
  UOT_CHECK(counts.size() == sub_tables_.size());
  for (size_t p = 0; p < sub_tables_.size(); ++p) {
    sub_tables_[p]->Reserve(counts[p]);
  }
}

uint64_t PartitionedJoinHashTable::size() const {
  uint64_t total = 0;
  for (const auto& t : sub_tables_) total += t->size();
  return total;
}

size_t PartitionedJoinHashTable::allocated_bytes() const {
  size_t total = 0;
  for (const auto& t : sub_tables_) total += t->allocated_bytes();
  return total;
}

}  // namespace uot
