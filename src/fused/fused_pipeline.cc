#include "fused/fused_pipeline.h"

#include <cstring>

#include "join/hash_table.h"
#include "operators/key_util.h"
#include "operators/numeric_util.h"

namespace uot {
namespace fused {

FusedChain::FusedChain(QueryPlan* plan, std::vector<int> ops)
    : ops_(std::move(ops)) {
  UOT_CHECK(ops_.size() >= 2);
  stages_.reserve(ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    Operator* op = plan->op(ops_[i]);
    auto stage = std::make_unique<Stage>();
    stage->op_index = ops_[i];
    if (auto* select = dynamic_cast<SelectOperator*>(op)) {
      stage->kind = StageKind::kSelect;
      stage->select = select;
      stage->out_schema = &select->destination()->schema();
    } else if (auto* probe = dynamic_cast<ProbeHashOperator*>(op)) {
      // Radix-partitioned probes are pipeline breakers; the fuser never
      // admits them.
      UOT_CHECK(probe->build()->radix_bits() == 0);
      stage->kind = StageKind::kProbe;
      stage->probe = probe;
      stage->out_schema = &probe->destination()->schema();
    } else if (auto* agg = dynamic_cast<AggregateOperator*>(op)) {
      UOT_CHECK(i + 1 == ops_.size());  // aggregates only terminate chains
      stage->kind = StageKind::kAggregate;
      stage->agg = agg;
    } else {
      UOT_CHECK(false);  // not a fusable operator
    }
    stages_.push_back(std::move(stage));
  }
  Stage& head = *stages_.front();
  head_input_ = head.kind == StageKind::kSelect
                    ? head.select->streaming_input()
                    : head.probe->streaming_input();
}

bool FusedChain::GenerateWorkOrders(
    std::vector<std::unique_ptr<WorkOrder>>* out) {
  for (Block* block : head_input_->TakePending()) {
    auto wo = std::make_unique<FusedChainWorkOrder>(block, this);
    if (!head_input_->from_base_table()) wo->consumed_blocks.push_back(block);
    out->push_back(std::move(wo));
    work_orders_.fetch_add(1, std::memory_order_relaxed);
  }
  return head_input_->done();
}

std::vector<FusedChain::StageStats> FusedChain::Stats() const {
  std::vector<StageStats> out;
  out.reserve(stages_.size());
  for (const std::unique_ptr<Stage>& st : stages_) {
    const Operator* op = st->select != nullptr
                             ? static_cast<const Operator*>(st->select)
                             : (st->probe != nullptr
                                    ? static_cast<const Operator*>(st->probe)
                                    : static_cast<const Operator*>(st->agg));
    out.push_back(StageStats{st->op_index, op->name(), st->kind,
                             st->rows_in.load(std::memory_order_relaxed),
                             st->rows_out.load(std::memory_order_relaxed)});
  }
  return out;
}

const char* FusedChain::StageKindName(StageKind kind) {
  switch (kind) {
    case StageKind::kSelect:
      return "select";
    case StageKind::kProbe:
      return "probe";
    case StageKind::kAggregate:
      return "aggregate";
  }
  return "?";
}

void FusedChainWorkOrder::Execute() {
  const size_t num_stages = chain_->stages_.size();
  sels_.resize(num_stages);
  scratch_.resize(num_stages);
  for (size_t s = 0; s + 1 < num_stages; ++s) {
    // Interior stages stream into a work-order-local granule sized to the
    // row-group bound, so downstream stages never see a wider input.
    const Schema* schema = chain_->stages_[s]->out_schema;
    scratch_[s] = std::make_unique<Block>(
        0, schema, Layout::kRowStore,
        static_cast<size_t>(FusedChain::kRowGroupRows) * schema->row_width());
  }
  const FusedChain::Stage& tail = *chain_->stages_.back();
  if (tail.kind != FusedChain::StageKind::kAggregate) {
    InsertDestination* dest = tail.kind == FusedChain::StageKind::kSelect
                                  ? tail.select->destination()
                                  : tail.probe->destination();
    writer_ = std::make_unique<InsertDestination::Writer>(dest);
  }

  const uint32_t num_rows = block_->num_rows();
  std::vector<uint32_t>& head_sel = sels_[0];
  for (uint32_t base = 0; base < num_rows;
       base += FusedChain::kRowGroupRows) {
    const uint32_t m = std::min(FusedChain::kRowGroupRows, num_rows - base);
    head_sel.resize(m);
    for (uint32_t i = 0; i < m; ++i) head_sel[i] = base + i;
    ExecStage(0, *block_, &head_sel);
  }

  if (tail.kind == FusedChain::StageKind::kAggregate) {
    tail.agg->MergePartial(std::move(partial_));
  }
  writer_.reset();  // flush the tail writer before the order completes
}

void FusedChainWorkOrder::ExecStage(size_t s, const Block& block,
                                    std::vector<uint32_t>* sel) {
  switch (chain_->stages_[s]->kind) {
    case FusedChain::StageKind::kSelect:
      ExecSelect(s, block, sel);
      return;
    case FusedChain::StageKind::kProbe:
      ExecProbe(s, block, sel);
      return;
    case FusedChain::StageKind::kAggregate:
      ExecAggregate(s, block, sel);
      return;
  }
}

void FusedChainWorkOrder::FlushScratch(size_t s) {
  Block* out = scratch_[s].get();
  if (out->Empty()) return;
  std::vector<uint32_t>& next_sel = sels_[s + 1];
  next_sel.resize(out->num_rows());
  for (uint32_t i = 0; i < out->num_rows(); ++i) next_sel[i] = i;
  ExecStage(s + 1, *out, &next_sel);
  out->Clear();
}

void FusedChainWorkOrder::ExecSelect(size_t s, const Block& block,
                                     std::vector<uint32_t>* sel) {
  FusedChain::Stage& st = *chain_->stages_[s];
  st.rows_in.fetch_add(sel->size(), std::memory_order_relaxed);

  // Same predicate → LIP → project sequence as SelectWorkOrder::Execute,
  // over the incoming selection instead of the whole block.
  st.select->predicate().Filter(block, sel);
  for (const LipAttachment& lip : st.select->lip_filters()) {
    if (sel->empty()) break;
    const LipFilter* filter = lip.source->lip_filter();
    UOT_CHECK(filter != nullptr);  // blocking edge + EnableLipFilter
    const Type& type = block.schema().column(lip.key_col).type;
    const ColumnAccess access = block.Column(lip.key_col);
    uint32_t kept = 0;
    for (uint32_t i = 0; i < sel->size(); ++i) {
      const uint64_t key[1] = {WidenKeyValue(type, access.at((*sel)[i]))};
      if (filter->MightContain(HashJoinKey(key, 1))) (*sel)[kept++] = (*sel)[i];
    }
    sel->resize(kept);
  }
  st.rows_out.fetch_add(sel->size(), std::memory_order_relaxed);
  if (sel->empty()) return;

  const bool tail = s + 1 == chain_->stages_.size();
  if (tail) {
    st.select->projection().MaterializeInto(block, *sel, writer_.get());
    return;
  }
  // Interior: materialize the surviving rows into this stage's granule and
  // push them straight through the rest of the chain. The granule holds at
  // most kRowGroupRows rows and every upstream source is bounded by that,
  // so a single flush always fits.
  Block* out = scratch_[s].get();
  st.select->projection().MaterializeIntoBlock(
      block, sel->data(), static_cast<uint32_t>(sel->size()), out);
  FlushScratch(s);
}

void FusedChainWorkOrder::ExecProbe(size_t s, const Block& block,
                                    std::vector<uint32_t>* sel) {
  FusedChain::Stage& st = *chain_->stages_[s];
  st.rows_in.fetch_add(sel->size(), std::memory_order_relaxed);

  const JoinHashTable* hash_table = st.probe->build()->hash_table();
  UOT_CHECK(hash_table != nullptr);  // blocking edge: build done
  const Schema& payload_schema = hash_table->payload_schema();
  const std::vector<int>& key_cols = st.probe->probe_key_cols();
  const std::vector<int>& output_cols = st.probe->probe_output_cols();
  const std::vector<ResidualCondition>& residuals = st.probe->residuals();
  const JoinKind kind = st.probe->kind();
  const Schema probe_part = SubSchema(block.schema(), output_cols);
  const uint32_t probe_width = probe_part.row_width();

  const bool tail = s + 1 == chain_->stages_.size();
  Block* out = tail ? nullptr : scratch_[s].get();
  std::vector<std::byte> row(st.out_schema->row_width());
  uint64_t key[2] = {0, 0};
  uint64_t emitted = 0;

  // Emission content and per-row order match ProbeHashWorkOrder's scalar
  // loop exactly; only the row source (the incoming selection) differs.
  const auto emit = [&](const std::byte* packed_row) {
    ++emitted;
    if (tail) {
      writer_->AppendRow(packed_row);
      return;
    }
    if (!out->AppendRow(packed_row)) {
      FlushScratch(s);
      UOT_CHECK(out->AppendRow(packed_row));
    }
  };

  for (const uint32_t r : *sel) {
    ExtractKey(block, key_cols, r, key);
    double probe_residuals[4];
    for (size_t i = 0; i < residuals.size(); ++i) {
      const ResidualCondition& rc = residuals[i];
      probe_residuals[i] = LoadNumeric(block.schema().column(rc.probe_col).type,
                                       block.Column(rc.probe_col).at(r));
    }
    bool probe_part_ready = false;
    bool any_match = false;
    hash_table->Probe(key, [&](const std::byte* payload) {
      for (size_t i = 0; i < residuals.size(); ++i) {
        const ResidualCondition& rc = residuals[i];
        const double build_val =
            rc.scale *
            LoadNumeric(payload_schema.column(rc.payload_col).type,
                        payload + payload_schema.offset(rc.payload_col));
        if (!CompareValues(rc.op, probe_residuals[i], build_val)) return;
      }
      any_match = true;
      if (kind != JoinKind::kInner) return;
      if (!probe_part_ready) {
        ExtractColumns(block, output_cols, probe_part, r, row.data());
        probe_part_ready = true;
      }
      if (payload_schema.row_width() > 0) {
        std::memcpy(row.data() + probe_width, payload,
                    payload_schema.row_width());
      }
      emit(row.data());
    });
    const bool emit_probe_row = (kind == JoinKind::kLeftSemi && any_match) ||
                                (kind == JoinKind::kLeftAnti && !any_match);
    if (emit_probe_row) {
      ExtractColumns(block, output_cols, probe_part, r, row.data());
      emit(row.data());
    }
  }
  st.rows_out.fetch_add(emitted, std::memory_order_relaxed);
  if (!tail) FlushScratch(s);
}

void FusedChainWorkOrder::ExecAggregate(size_t s, const Block& block,
                                        std::vector<uint32_t>* sel) {
  FusedChain::Stage& st = *chain_->stages_[s];
  st.rows_in.fetch_add(sel->size(), std::memory_order_relaxed);
  if (st.agg->predicate() != nullptr) {
    st.agg->predicate()->Filter(block, sel);
  }
  st.rows_out.fetch_add(sel->size(), std::memory_order_relaxed);
  const uint32_t n = static_cast<uint32_t>(sel->size());
  if (n == 0) return;

  // Same accumulation as AggregateWorkOrder::Execute, into a partial map
  // spanning the whole fused work order (merged once in Execute).
  const std::vector<AggSpec>& aggs = st.agg->aggs();
  const std::vector<int>& group_cols = st.agg->group_cols();
  std::vector<std::vector<double>> inputs(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].expr != nullptr) {
      inputs[a].resize(n);
      EvalAsDouble(*aggs[a].expr, block, sel->data(), n, inputs[a].data());
    }
  }
  AggregateOperator::GroupKey key = {0, 0, 0};
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t g = 0; g < group_cols.size(); ++g) {
      const int col = group_cols[g];
      key[g] = WidenKeyValue(block.schema().column(col).type,
                             block.Column(col).at((*sel)[i]));
    }
    auto [it, inserted] = partial_.try_emplace(key, aggs.size(), AggState{});
    std::vector<AggState>& states = it->second;
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& agg_state = states[a];
      ++agg_state.count;
      if (aggs[a].expr != nullptr) {
        const double v = inputs[a][i];
        agg_state.Add(v);
        if (v < agg_state.min) agg_state.min = v;
        if (v > agg_state.max) agg_state.max = v;
      }
    }
  }
}

}  // namespace fused
}  // namespace uot
