#ifndef UOT_FUSED_PIPELINE_FUSER_H_
#define UOT_FUSED_PIPELINE_FUSER_H_

#include <vector>

#include "plan/query_plan.h"

namespace uot {
namespace fused {

/// Detects the maximal fusable pipelines of a plan: linear
/// select→probe(×N)→aggregate/project chains whose interior streaming
/// edges can be collapsed into single fused work orders (ROADMAP item 3).
///
/// A streaming edge producer → consumer is fusable when:
///  - it is a plain pipeline edge into the consumer's only streaming input
///    (exchange/repartition edges are pipeline breakers);
///  - the producer is a Select or ProbeHash operator whose only streaming
///    consumer is this edge (its output is read exactly once, so skipping
///    its materialization loses nothing);
///  - the producer's output is not the plan's result table (fused interior
///    outputs are never materialized);
///  - the consumer is a Select, ProbeHash or Aggregate operator; and
///  - every ProbeHash endpoint probes an unpartitioned build
///    (radix-partitioned probes need partition-tagged exchange blocks —
///    another pipeline breaker).
///
/// Build sides, exchanges and sorts therefore always stay on the
/// vectorized path. The returned chains are disjoint, in pipeline order,
/// and at least two operators long.
class PipelineFuser {
 public:
  /// Maximal fusable chains of `plan`, each a producer→consumer operator
  /// index sequence.
  static std::vector<std::vector<int>> DetectFusablePipelines(
      const QueryPlan& plan);

  /// True when `ops` is a valid fusable chain of `plan` (every
  /// consecutive pair is a fusable edge). Used to re-validate
  /// QueryPlan::fused_pipelines() annotations before the session fuses
  /// them; invalid chains fall back to vectorized execution.
  static bool IsFusableChain(const QueryPlan& plan,
                             const std::vector<int>& ops);

 private:
  static bool IsFusableEdge(const QueryPlan& plan,
                            const QueryPlan::StreamingEdge& edge);
};

}  // namespace fused
}  // namespace uot

#endif  // UOT_FUSED_PIPELINE_FUSER_H_
