#ifndef UOT_FUSED_FUSED_PIPELINE_H_
#define UOT_FUSED_FUSED_PIPELINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "operators/aggregate_operator.h"
#include "operators/operator.h"
#include "operators/probe_hash_operator.h"
#include "operators/select_operator.h"
#include "plan/query_plan.h"
#include "storage/block.h"
#include "storage/insert_destination.h"

namespace uot {
namespace fused {

/// A fused pipeline: a select→probe(×N)→aggregate/project chain executed
/// tuple-at-a-time — the third point on the UoT spectrum (ROADMAP item 3),
/// beyond block-at-a-time toward "as small as a single tuple".
///
/// Where the vectorized path materializes every interior operator's output
/// into blocks and transfers them under the UoT policy, a fused chain binds
/// all stages at construction time into one interpreter: each work order
/// takes one head input block and walks it in small row groups through the
/// whole chain, carrying only a selection vector plus (after a projection
/// or join widens rows) one cache-resident scratch granule per interior
/// stage. Interior streaming edges transfer zero blocks; pipeline breakers
/// (hash-table builds, exchanges, sorts) keep their vectorized edges.
///
/// Stage semantics replicate the operators' scalar work orders exactly
/// (same predicate/LIP/residual/emission logic in the same row order), so
/// fused output is byte-identical to vectorized output per stage; only the
/// granule boundaries differ.
class FusedChain {
 public:
  /// Rows per head row group — and the row capacity of every interior
  /// scratch granule, so no stage ever sees a wider input than this. Small
  /// enough that a granule of typical intermediate width stays L1/L2
  /// resident while rows loop through the chain.
  static constexpr uint32_t kRowGroupRows = 1024;

  enum class StageKind : uint8_t { kSelect, kProbe, kAggregate };

  /// One bound stage. Exactly one operator pointer is non-null, per kind.
  struct Stage {
    StageKind kind;
    int op_index;
    SelectOperator* select = nullptr;
    ProbeHashOperator* probe = nullptr;
    AggregateOperator* agg = nullptr;
    /// Schema of this stage's output rows (the operator's destination
    /// schema); null for the aggregate tail, which emits no stream.
    const Schema* out_schema = nullptr;
    /// Rows entering / leaving the stage, summed over all work orders
    /// (relaxed: per-stage totals, no cross-stage ordering claimed).
    std::atomic<uint64_t> rows_in{0};
    std::atomic<uint64_t> rows_out{0};
  };

  /// Per-stage counter snapshot for profiles and EXPLAIN ANALYZE.
  struct StageStats {
    int op_index;
    std::string name;
    StageKind kind;
    uint64_t rows_in;
    uint64_t rows_out;
  };

  /// Binds the chain over `plan` operators `ops` (must satisfy
  /// PipelineFuser::IsFusableChain; CHECK-fails on a non-fusable shape).
  FusedChain(QueryPlan* plan, std::vector<int> ops);
  UOT_DISALLOW_COPY_AND_ASSIGN(FusedChain);

  /// Mirrors Operator::GenerateWorkOrders for the chain head: one fused
  /// work order per pending head input block; returns true when the head
  /// input is exhausted.
  bool GenerateWorkOrders(std::vector<std::unique_ptr<WorkOrder>>* out);

  const std::vector<int>& ops() const { return ops_; }
  int head_op() const { return ops_.front(); }
  int tail_op() const { return ops_.back(); }
  int num_stages() const { return static_cast<int>(stages_.size()); }
  const Stage& stage(int i) const { return *stages_[static_cast<size_t>(i)]; }

  std::vector<StageStats> Stats() const;
  uint64_t work_orders() const {
    return work_orders_.load(std::memory_order_relaxed);
  }

  static const char* StageKindName(StageKind kind);

 private:
  friend class FusedChainWorkOrder;

  const std::vector<int> ops_;
  std::vector<std::unique_ptr<Stage>> stages_;
  StreamingInput* head_input_;
  std::atomic<uint64_t> work_orders_{0};
};

/// Executes the whole fused chain over one head input block, row group by
/// row group. Scratch granules are work-order-local, so chain work orders
/// run concurrently like any other.
class FusedChainWorkOrder final : public WorkOrder {
 public:
  FusedChainWorkOrder(const Block* block, FusedChain* chain)
      : block_(block), chain_(chain) {}

  void Execute() override;

 private:
  /// Runs stage `s` over `sel` rows of `block`, recursing into downstream
  /// stages as output granules fill. `sel` is stage-local scratch and is
  /// clobbered.
  void ExecStage(size_t s, const Block& block, std::vector<uint32_t>* sel);

  void ExecSelect(size_t s, const Block& block, std::vector<uint32_t>* sel);
  void ExecProbe(size_t s, const Block& block, std::vector<uint32_t>* sel);
  void ExecAggregate(size_t s, const Block& block,
                     std::vector<uint32_t>* sel);

  /// Pushes the rows buffered in stage `s`'s scratch granule through the
  /// downstream stages, then clears the granule.
  void FlushScratch(size_t s);

  const Block* const block_;
  FusedChain* const chain_;

  // Execute-scoped state (the work order is single-use).
  std::vector<std::unique_ptr<Block>> scratch_;   // [stage], interior only
  std::vector<std::vector<uint32_t>> sels_;       // [stage]
  std::unique_ptr<InsertDestination::Writer> writer_;  // non-aggregate tail
  AggregateOperator::GroupMap partial_;           // aggregate tail
};

}  // namespace fused
}  // namespace uot

#endif  // UOT_FUSED_FUSED_PIPELINE_H_
