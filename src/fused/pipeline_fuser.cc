#include "fused/pipeline_fuser.h"

#include <map>

#include "operators/aggregate_operator.h"
#include "operators/probe_hash_operator.h"
#include "operators/select_operator.h"

namespace uot {
namespace fused {
namespace {

/// True when `op` may produce into a fused chain (its work is re-runnable
/// per row group and its output can be skipped).
bool IsFusableProducer(const Operator* op) {
  if (dynamic_cast<const SelectOperator*>(op) != nullptr) return true;
  const auto* probe = dynamic_cast<const ProbeHashOperator*>(op);
  return probe != nullptr && probe->build()->radix_bits() == 0;
}

/// True when `op` may consume inside a fused chain (interior or tail).
bool IsFusableConsumer(const Operator* op) {
  if (dynamic_cast<const AggregateOperator*>(op) != nullptr) return true;
  return IsFusableProducer(op);
}

}  // namespace

bool PipelineFuser::IsFusableEdge(const QueryPlan& plan,
                                  const QueryPlan::StreamingEdge& edge) {
  if (edge.kind != QueryPlan::EdgeKind::kPipeline) return false;
  if (edge.consumer_input != 0) return false;
  if (!IsFusableProducer(plan.op(edge.producer))) return false;
  if (!IsFusableConsumer(plan.op(edge.consumer))) return false;
  // The producer's output must flow only into this edge, and the consumer
  // must have no other streaming input (multi-input consumers like
  // sort-merge join cannot run one-input-row-at-a-time).
  int producer_out = 0;
  int consumer_in = 0;
  for (const QueryPlan::StreamingEdge& e : plan.streaming_edges()) {
    if (e.producer == edge.producer) ++producer_out;
    if (e.consumer == edge.consumer) ++consumer_in;
  }
  if (producer_out != 1 || consumer_in != 1) return false;
  // Interior outputs are skipped entirely, so they must not be the query
  // result (and must exist: an unregistered destination means the operator
  // is not a block producer in the usual sense).
  const InsertDestination* dest = plan.destination_of(edge.producer);
  if (dest == nullptr || dest->output() == plan.result_table()) return false;
  return true;
}

std::vector<std::vector<int>> PipelineFuser::DetectFusablePipelines(
    const QueryPlan& plan) {
  // Fusable successor per operator (-1 = none); unique by the
  // single-consumer/single-input requirement of IsFusableEdge.
  std::map<int, int> next;
  std::map<int, int> prev;
  for (const QueryPlan::StreamingEdge& e : plan.streaming_edges()) {
    if (!IsFusableEdge(plan, e)) continue;
    next[e.producer] = e.consumer;
    prev[e.consumer] = e.producer;
  }
  std::vector<std::vector<int>> chains;
  for (const auto& [head, second] : next) {
    if (prev.count(head) != 0) continue;  // not a chain head
    std::vector<int> chain{head};
    int cur = second;
    while (true) {
      chain.push_back(cur);
      auto it = next.find(cur);
      if (it == next.end()) break;
      cur = it->second;
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

bool PipelineFuser::IsFusableChain(const QueryPlan& plan,
                                   const std::vector<int>& ops) {
  if (ops.size() < 2) return false;
  for (const int op : ops) {
    if (op < 0 || op >= plan.num_operators()) return false;
  }
  for (size_t i = 0; i + 1 < ops.size(); ++i) {
    const int edge = plan.FindStreamingEdge(ops[i], ops[i + 1]);
    if (edge < 0) return false;
    if (!IsFusableEdge(plan, plan.streaming_edges()[static_cast<size_t>(
                                 edge)])) {
      return false;
    }
  }
  return true;
}

}  // namespace fused
}  // namespace uot
