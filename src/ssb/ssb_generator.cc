#include "ssb/ssb_generator.h"

#include <algorithm>
#include <cstdio>

#include "types/date.h"
#include "types/row_builder.h"

namespace uot {
namespace {

using ssb::CustomerCol;
using ssb::DateCol;
using ssb::LineorderCol;
using ssb::PartCol;
using ssb::SupplierCol;

constexpr const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDEAST"};

/// Nation tag "Nnn" for nation index 1..25; region = (n-1)/5.
std::string NationTag(int nation) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "N%02d", nation);
  return buf;
}

std::string CityTag(int nation, int city) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "N%02dC%d", nation, city);
  return buf;
}

int32_t DateKey(int y, int m, int d) { return y * 10000 + m * 100 + d; }

constexpr int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};

}  // namespace

void SsbDatabase::Generate(const SsbConfig& config) {
  config_ = config;
  const double sf = config.scale_factor;
  UOT_CHECK(sf > 0);
  Random rng(config.seed);

  const int64_t num_lineorder =
      std::max<int64_t>(3000, static_cast<int64_t>(6000000 * sf));
  const int64_t num_customer =
      std::max<int64_t>(150, static_cast<int64_t>(30000 * sf));
  const int64_t num_supplier =
      std::max<int64_t>(50, static_cast<int64_t>(2000 * sf));
  const int64_t num_part =
      std::max<int64_t>(200, static_cast<int64_t>(200000 * sf));

  auto make_table = [&](const char* name, Schema schema) {
    return std::make_unique<Table>(name, std::move(schema), config.layout,
                                   config.block_bytes, storage_,
                                   MemoryCategory::kBaseTable);
  };

  // ---- date: 7 years, 1992-1998 ----
  date_ = make_table("date", SsbDateSchema());
  std::vector<int32_t> datekeys;
  {
    RowBuilder row(&date_->schema());
    for (int y = 1992; y <= 1998; ++y) {
      int week = 1, day_in_year = 0;
      for (int m = 1; m <= 12; ++m) {
        int days = kDaysInMonth[m - 1];
        if (m == 2 && y % 4 == 0) days = 29;
        for (int d = 1; d <= days; ++d) {
          ++day_in_year;
          week = (day_in_year + 6) / 7;
          row.SetInt32(DateCol::kDDatekey, DateKey(y, m, d));
          row.SetInt32(DateCol::kDYear, y);
          row.SetInt32(DateCol::kDYearmonthnum, y * 100 + m);
          row.SetInt32(DateCol::kDMonth, m);
          row.SetInt32(DateCol::kDWeeknuminyear, week);
          date_->AppendRow(row.data());
          datekeys.push_back(DateKey(y, m, d));
        }
      }
    }
  }

  // ---- customer ----
  customer_ = make_table("customer", SsbCustomerSchema());
  {
    RowBuilder row(&customer_->schema());
    char buf[32];
    constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING",
                                          "FURNITURE", "MACHINERY",
                                          "HOUSEHOLD"};
    for (int64_t c = 1; c <= num_customer; ++c) {
      const int nation = static_cast<int>(rng.Uniform(1, 25));
      row.SetInt32(CustomerCol::kCCustkey, static_cast<int32_t>(c));
      std::snprintf(buf, sizeof(buf), "Customer#%09lld",
                    static_cast<long long>(c));
      row.SetChar(CustomerCol::kCName, buf);
      row.SetChar(CustomerCol::kCCity,
                  CityTag(nation, static_cast<int>(rng.Uniform(0, 9))));
      row.SetChar(CustomerCol::kCNation, NationTag(nation));
      row.SetChar(CustomerCol::kCRegion, kRegions[(nation - 1) / 5]);
      row.SetChar(CustomerCol::kCMktsegment, kSegments[rng.Uniform(0, 4)]);
      customer_->AppendRow(row.data());
    }
  }

  // ---- supplier ----
  supplier_ = make_table("supplier", SsbSupplierSchema());
  {
    RowBuilder row(&supplier_->schema());
    char buf[32];
    for (int64_t s = 1; s <= num_supplier; ++s) {
      const int nation = static_cast<int>(rng.Uniform(1, 25));
      row.SetInt32(SupplierCol::kSSuppkey, static_cast<int32_t>(s));
      std::snprintf(buf, sizeof(buf), "Supplier#%09lld",
                    static_cast<long long>(s));
      row.SetChar(SupplierCol::kSName, buf);
      row.SetChar(SupplierCol::kSCity,
                  CityTag(nation, static_cast<int>(rng.Uniform(0, 9))));
      row.SetChar(SupplierCol::kSNation, NationTag(nation));
      row.SetChar(SupplierCol::kSRegion, kRegions[(nation - 1) / 5]);
      supplier_->AppendRow(row.data());
    }
  }

  // ---- part ----
  part_ = make_table("part", SsbPartSchema());
  {
    RowBuilder row(&part_->schema());
    char buf[32];
    constexpr const char* kColors[10] = {"red",    "green", "blue",
                                         "yellow", "white", "black",
                                         "pink",   "brown", "cyan",
                                         "ivory"};
    for (int64_t p = 1; p <= num_part; ++p) {
      // mfgr 1..5, category 1..5 within it, brand 1..40 within that.
      const int mfgr = static_cast<int>(rng.Uniform(1, 5));
      const int cat = static_cast<int>(rng.Uniform(1, 5));
      const int brand = static_cast<int>(rng.Uniform(1, 40));
      row.SetInt32(PartCol::kPPartkey, static_cast<int32_t>(p));
      std::snprintf(buf, sizeof(buf), "%s %s", kColors[rng.Uniform(0, 9)],
                    kColors[rng.Uniform(0, 9)]);
      row.SetChar(PartCol::kPName, buf);
      std::snprintf(buf, sizeof(buf), "MFGR#%d", mfgr);
      row.SetChar(PartCol::kPMfgr, buf);
      std::snprintf(buf, sizeof(buf), "MFGR#%d%d", mfgr, cat);
      row.SetChar(PartCol::kPCategory, buf);
      std::snprintf(buf, sizeof(buf), "B#%d%d%02d", mfgr, cat, brand);
      row.SetChar(PartCol::kPBrand1, buf);
      row.SetChar(PartCol::kPColor, kColors[rng.Uniform(0, 9)]);
      row.SetInt32(PartCol::kPSize, static_cast<int32_t>(rng.Uniform(1, 50)));
      part_->AppendRow(row.data());
    }
  }

  // ---- lineorder ----
  lineorder_ = make_table("lineorder", SsbLineorderSchema());
  {
    RowBuilder row(&lineorder_->schema());
    int64_t orderkey = 0;
    int64_t produced = 0;
    while (produced < num_lineorder) {
      ++orderkey;
      const int lines = static_cast<int>(rng.Uniform(1, 7));
      const int32_t orderdate = datekeys[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(datekeys.size()) - 1))];
      for (int ln = 1; ln <= lines && produced < num_lineorder; ++ln) {
        const int32_t qty = static_cast<int32_t>(rng.Uniform(1, 50));
        const double price =
            static_cast<double>(rng.Uniform(90000, 200000)) / 100.0;
        const int32_t disc = static_cast<int32_t>(rng.Uniform(0, 10));
        row.SetInt64(LineorderCol::kLoOrderkey, orderkey);
        row.SetInt32(LineorderCol::kLoLinenumber, ln);
        row.SetInt32(LineorderCol::kLoCustkey,
                     static_cast<int32_t>(rng.Uniform(1, num_customer)));
        row.SetInt32(LineorderCol::kLoPartkey,
                     static_cast<int32_t>(rng.Uniform(1, num_part)));
        row.SetInt32(LineorderCol::kLoSuppkey,
                     static_cast<int32_t>(rng.Uniform(1, num_supplier)));
        row.SetInt32(LineorderCol::kLoOrderdate, orderdate);
        row.SetInt32(LineorderCol::kLoQuantity, qty);
        row.SetDouble(LineorderCol::kLoExtendedprice, price * qty);
        row.SetInt32(LineorderCol::kLoDiscount, disc);
        row.SetDouble(LineorderCol::kLoRevenue,
                      price * qty * (100.0 - disc) / 100.0);
        row.SetDouble(LineorderCol::kLoSupplycost, 0.6 * price * qty);
        lineorder_->AppendRow(row.data());
        ++produced;
      }
    }
  }
}

}  // namespace uot
