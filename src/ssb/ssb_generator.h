#ifndef UOT_SSB_SSB_GENERATOR_H_
#define UOT_SSB_SSB_GENERATOR_H_

#include <memory>
#include <string>

#include "ssb/ssb_schema.h"
#include "storage/table.h"
#include "util/random.h"

namespace uot {

/// Generation parameters for the Star Schema Benchmark substrate.
struct SsbConfig {
  double scale_factor = 0.01;  // SF 1 ~ 6M lineorder rows
  Layout layout = Layout::kColumnStore;
  size_t block_bytes = 1 << 20;
  uint64_t seed = 7;
};

/// An in-memory SSB database: the fact table plus four dimensions.
///
/// Dimension values use compact tags so they fit the engine's 8-byte group
/// keys: regions are the spec names ("AMERICA", "ASIA", ...), nations are
/// "N01".."N25" (5 per region), cities are "N01C0".."N25C9" (10 per
/// nation), part categories are "MFGR#CC" and brands "B#CCNN".
class SsbDatabase {
 public:
  explicit SsbDatabase(StorageManager* storage) : storage_(storage) {}
  UOT_DISALLOW_COPY_AND_ASSIGN(SsbDatabase);

  void Generate(const SsbConfig& config);

  const SsbConfig& config() const { return config_; }
  StorageManager* storage() const { return storage_; }

  const Table& lineorder() const { return *lineorder_; }
  const Table& customer() const { return *customer_; }
  const Table& supplier() const { return *supplier_; }
  const Table& part() const { return *part_; }
  const Table& date() const { return *date_; }

 private:
  StorageManager* const storage_;
  SsbConfig config_;
  std::unique_ptr<Table> lineorder_;
  std::unique_ptr<Table> customer_;
  std::unique_ptr<Table> supplier_;
  std::unique_ptr<Table> part_;
  std::unique_ptr<Table> date_;
};

}  // namespace uot

#endif  // UOT_SSB_SSB_GENERATOR_H_
