#ifndef UOT_SSB_SSB_SCHEMA_H_
#define UOT_SSB_SSB_SCHEMA_H_

#include "types/schema.h"

namespace uot {

/// Star Schema Benchmark table schemas (O'Neil et al., the paper's [35]).
///
/// The paper invokes SSB in Section VI-B: its dimension hash tables are
/// small, so the low-UoT strategy usually has the lower memory footprint —
/// the opposite of TPC-H Q07. This module exists to validate that claim.
///
/// Fixed-width adaptation as for TPC-H (DESIGN.md substitution 5). City
/// names are CHAR(8) (e.g. "UNITEDK3") so they can serve as group keys.
Schema SsbLineorderSchema();
Schema SsbCustomerSchema();
Schema SsbSupplierSchema();
Schema SsbPartSchema();
Schema SsbDateSchema();

namespace ssb {

enum LineorderCol : int {
  kLoOrderkey = 0,
  kLoLinenumber,
  kLoCustkey,
  kLoPartkey,
  kLoSuppkey,
  kLoOrderdate,  // foreign key into date (d_datekey, yyyymmdd int32)
  kLoQuantity,
  kLoExtendedprice,
  kLoDiscount,   // percent, 0..10 (int32, per the SSB spec)
  kLoRevenue,
  kLoSupplycost,
};

enum CustomerCol : int {
  kCCustkey = 0,
  kCName,
  kCCity,
  kCNation,
  kCRegion,
  kCMktsegment,
};

enum SupplierCol : int {
  kSSuppkey = 0,
  kSName,
  kSCity,
  kSNation,
  kSRegion,
};

enum PartCol : int {
  kPPartkey = 0,
  kPName,
  kPMfgr,
  kPCategory,
  kPBrand1,
  kPColor,
  kPSize,
};

enum DateCol : int {
  kDDatekey = 0,  // yyyymmdd int32
  kDYear,
  kDYearmonthnum,  // yyyymm
  kDMonth,
  kDWeeknuminyear,
};

}  // namespace ssb

}  // namespace uot

#endif  // UOT_SSB_SSB_SCHEMA_H_
