#ifndef UOT_SSB_SSB_QUERIES_H_
#define UOT_SSB_SSB_QUERIES_H_

#include <memory>
#include <vector>

#include "plan/plan_builder.h"
#include "ssb/ssb_generator.h"

namespace uot {

/// The 13 SSB queries, identified as flight*10 + index: 11, 12, 13, 21,
/// 22, 23, 31, 32, 33, 34, 41, 42, 43.
const std::vector<int>& SupportedSsbQueries();

/// Builds the star-join plan for SSB query `query_id` (dimension hash
/// tables probed by a single fact-table scan — the small-hash-table
/// workload of the paper's Section VI-B).
std::unique_ptr<QueryPlan> BuildSsbPlan(int query_id, const SsbDatabase& db,
                                        const PlanBuilderConfig& config);

}  // namespace uot

#endif  // UOT_SSB_SSB_QUERIES_H_
