#include "ssb/ssb_schema.h"

namespace uot {

Schema SsbLineorderSchema() {
  return Schema({
      {"lo_orderkey", Type::Int64()},
      {"lo_linenumber", Type::Int32()},
      {"lo_custkey", Type::Int32()},
      {"lo_partkey", Type::Int32()},
      {"lo_suppkey", Type::Int32()},
      {"lo_orderdate", Type::Int32()},
      {"lo_quantity", Type::Int32()},
      {"lo_extendedprice", Type::Double()},
      {"lo_discount", Type::Int32()},
      {"lo_revenue", Type::Double()},
      {"lo_supplycost", Type::Double()},
  });
}

Schema SsbCustomerSchema() {
  return Schema({
      {"c_custkey", Type::Int32()},
      {"c_name", Type::Char(25)},
      {"c_city", Type::Char(8)},
      {"c_nation", Type::Char(8)},
      {"c_region", Type::Char(12)},
      {"c_mktsegment", Type::Char(10)},
  });
}

Schema SsbSupplierSchema() {
  return Schema({
      {"s_suppkey", Type::Int32()},
      {"s_name", Type::Char(25)},
      {"s_city", Type::Char(8)},
      {"s_nation", Type::Char(8)},
      {"s_region", Type::Char(12)},
  });
}

Schema SsbPartSchema() {
  return Schema({
      {"p_partkey", Type::Int32()},
      {"p_name", Type::Char(22)},
      {"p_mfgr", Type::Char(6)},
      {"p_category", Type::Char(7)},
      {"p_brand1", Type::Char(8)},  // "MFGR#2239" truncates to 8: use tags
      {"p_color", Type::Char(11)},
      {"p_size", Type::Int32()},
  });
}

Schema SsbDateSchema() {
  return Schema({
      {"d_datekey", Type::Int32()},
      {"d_year", Type::Int32()},
      {"d_yearmonthnum", Type::Int32()},
      {"d_month", Type::Int32()},
      {"d_weeknuminyear", Type::Int32()},
  });
}

}  // namespace uot
