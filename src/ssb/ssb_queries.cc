#include "ssb/ssb_queries.h"

#include <type_traits>
#include <utility>

namespace uot {
namespace {

using ssb::CustomerCol;
using ssb::DateCol;
using ssb::LineorderCol;
using ssb::PartCol;
using ssb::SupplierCol;

template <typename T0, typename... Ts>
auto MakeVec(T0 first, Ts... rest) {
  using Elem =
      std::conditional_t<std::is_same_v<std::decay_t<T0>, AggSpec>, AggSpec,
                         std::unique_ptr<Scalar>>;
  std::vector<Elem> v;
  v.reserve(1 + sizeof...(rest));
  v.push_back(std::move(first));
  (v.push_back(std::move(rest)), ...);
  return v;
}

std::unique_ptr<Scalar> C(const Schema& s, int col) {
  return Col(col, s.column(col).type);
}

std::unique_ptr<Predicate> CmpCL(const Schema& s, int col, CompareOp op,
                                 TypedValue v) {
  return Cmp(op, C(s, col), Lit(std::move(v), s.column(col).type));
}

std::unique_ptr<Predicate> CharEq(const Schema& s, int col,
                                  const std::string& v) {
  return CmpCL(s, col, CompareOp::kEq, TypedValue::Char(v));
}

std::unique_ptr<Predicate> Int32Between(const Schema& s, int col, int32_t lo,
                                        int32_t hi) {
  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(CmpCL(s, col, CompareOp::kGe, TypedValue::Int32(lo)));
  parts.push_back(CmpCL(s, col, CompareOp::kLe, TypedValue::Int32(hi)));
  return And(std::move(parts));
}

std::unique_ptr<Projection> Proj(std::vector<std::unique_ptr<Scalar>> exprs,
                                 std::vector<std::string> names) {
  return std::make_unique<Projection>(std::move(exprs), std::move(names));
}

AggSpec Agg(AggFn fn, std::unique_ptr<Scalar> expr, std::string name) {
  return AggSpec{fn, std::move(expr), std::move(name)};
}

// ---- flight 1: date-filtered discount revenue (scalar aggregate) ----

std::unique_ptr<QueryPlan> BuildFlight1(const SsbDatabase& db,
                                        const PlanBuilderConfig& config,
                                        std::unique_ptr<Predicate> date_pred,
                                        int32_t disc_lo, int32_t disc_hi,
                                        int32_t qty_lo, int32_t qty_hi) {
  PlanBuilder b(db.storage(), config);
  const Schema& lo = db.lineorder().schema();
  const Schema& d = db.date().schema();
  (void)d;

  auto sel_date = b.Select(
      "sel(date)", PlanBuilder::Base(db.date()), std::move(date_pred),
      Proj(MakeVec(C(db.date().schema(), DateCol::kDDatekey)),
           {"d_datekey"}));
  auto* ht_date = b.Build("build(date)", sel_date, {0}, {});

  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(
      Int32Between(lo, LineorderCol::kLoDiscount, disc_lo, disc_hi));
  parts.push_back(
      Int32Between(lo, LineorderCol::kLoQuantity, qty_lo, qty_hi));
  auto sel_lo = b.Select(
      "sel(lineorder)", PlanBuilder::Base(db.lineorder()),
      And(std::move(parts)),
      Proj(MakeVec(C(lo, LineorderCol::kLoOrderdate),
                   Mul(C(lo, LineorderCol::kLoExtendedprice),
                       C(lo, LineorderCol::kLoDiscount))),
           {"lo_orderdate", "value"}),
      {{ht_date, LineorderCol::kLoOrderdate}});
  auto matched = b.Probe("probe(date) semi", sel_lo, ht_date, {0}, {1},
                         JoinKind::kLeftSemi);
  auto agg = b.Aggregate(
      "agg", matched, {},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "revenue")));
  return b.Finish(agg);
}

// ---- flight 2: (year, brand) revenue over part/supplier filters ----

std::unique_ptr<QueryPlan> BuildFlight2(const SsbDatabase& db,
                                        const PlanBuilderConfig& config,
                                        std::unique_ptr<Predicate> part_pred,
                                        const std::string& s_region) {
  PlanBuilder b(db.storage(), config);
  const Schema& lo = db.lineorder().schema();
  const Schema& p = db.part().schema();
  const Schema& s = db.supplier().schema();

  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      CharEq(s, SupplierCol::kSRegion, s_region),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey)), {"s_suppkey"}));
  auto* ht_sup = b.Build("build(supplier)", sel_sup, {0}, {});

  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()), std::move(part_pred),
      Proj(MakeVec(C(p, PartCol::kPPartkey), C(p, PartCol::kPBrand1)),
           {"p_partkey", "p_brand1"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {1});

  auto* ht_date = b.Build("build(date)", PlanBuilder::Base(db.date()),
                          {DateCol::kDDatekey}, {DateCol::kDYear});

  auto sel_lo = b.Select(
      "sel(lineorder)", PlanBuilder::Base(db.lineorder()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(lo, LineorderCol::kLoOrderdate),
                   C(lo, LineorderCol::kLoPartkey),
                   C(lo, LineorderCol::kLoSuppkey),
                   C(lo, LineorderCol::kLoRevenue)),
           {"lo_orderdate", "lo_partkey", "lo_suppkey", "lo_revenue"}),
      {{ht_part, LineorderCol::kLoPartkey},
       {ht_sup, LineorderCol::kLoSuppkey}});
  // -> [orderdate, partkey, revenue]
  auto p1 = b.Probe("probe(supplier) semi", sel_lo, ht_sup, {2}, {0, 1, 3},
                    JoinKind::kLeftSemi);
  // -> [orderdate, revenue, p_brand1]
  auto p2 = b.Probe("probe(part)", p1, ht_part, {1}, {0, 2});
  // -> [revenue, p_brand1, d_year]
  auto p3 = b.Probe("probe(date)", p2, ht_date, {0}, {1, 2});
  auto agg = b.Aggregate(
      "agg", p3, {2, 1},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "lo_revenue")));
  auto sorted = b.Sort("sort", agg, {{0, true}, {1, true}});
  return b.Finish(sorted);
}

// ---- flight 3: revenue by (cust attr, supp attr, year) ----

std::unique_ptr<QueryPlan> BuildFlight3(
    const SsbDatabase& db, const PlanBuilderConfig& config,
    std::unique_ptr<Predicate> cust_pred, int cust_attr_col,
    std::unique_ptr<Predicate> supp_pred, int supp_attr_col,
    std::unique_ptr<Predicate> date_pred) {
  PlanBuilder b(db.storage(), config);
  const Schema& lo = db.lineorder().schema();
  const Schema& c = db.customer().schema();
  const Schema& s = db.supplier().schema();
  const Schema& d = db.date().schema();

  auto sel_cust = b.Select(
      "sel(customer)", PlanBuilder::Base(db.customer()),
      std::move(cust_pred),
      Proj(MakeVec(C(c, CustomerCol::kCCustkey), C(c, cust_attr_col)),
           {"c_custkey", "c_attr"}));
  auto* ht_cust = b.Build("build(customer)", sel_cust, {0}, {1});

  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      std::move(supp_pred),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey), C(s, supp_attr_col)),
           {"s_suppkey", "s_attr"}));
  auto* ht_sup = b.Build("build(supplier)", sel_sup, {0}, {1});

  auto sel_date = b.Select(
      "sel(date)", PlanBuilder::Base(db.date()), std::move(date_pred),
      Proj(MakeVec(C(d, DateCol::kDDatekey), C(d, DateCol::kDYear)),
           {"d_datekey", "d_year"}));
  auto* ht_date = b.Build("build(date)", sel_date, {0}, {1});

  auto sel_lo = b.Select(
      "sel(lineorder)", PlanBuilder::Base(db.lineorder()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(lo, LineorderCol::kLoOrderdate),
                   C(lo, LineorderCol::kLoCustkey),
                   C(lo, LineorderCol::kLoSuppkey),
                   C(lo, LineorderCol::kLoRevenue)),
           {"lo_orderdate", "lo_custkey", "lo_suppkey", "lo_revenue"}),
      {{ht_cust, LineorderCol::kLoCustkey},
       {ht_sup, LineorderCol::kLoSuppkey},
       {ht_date, LineorderCol::kLoOrderdate}});
  // -> [orderdate, suppkey, revenue, c_attr]
  auto p1 = b.Probe("probe(customer)", sel_lo, ht_cust, {1}, {0, 2, 3});
  // -> [orderdate, revenue, c_attr, s_attr]
  auto p2 = b.Probe("probe(supplier)", p1, ht_sup, {1}, {0, 2, 3});
  // -> [revenue, c_attr, s_attr, d_year]
  auto p3 = b.Probe("probe(date)", p2, ht_date, {0}, {1, 2, 3});
  auto agg = b.Aggregate(
      "agg", p3, {1, 2, 3},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "lo_revenue")));
  auto sorted = b.Sort("sort", agg, {{2, true}, {3, false}});
  return b.Finish(sorted);
}

// ---- flight 4: profit by (year, attr [, attr]) ----

std::unique_ptr<QueryPlan> BuildQ41(const SsbDatabase& db,
                                    const PlanBuilderConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& lo = db.lineorder().schema();
  const Schema& c = db.customer().schema();
  const Schema& s = db.supplier().schema();
  const Schema& p = db.part().schema();

  auto sel_cust = b.Select(
      "sel(customer)", PlanBuilder::Base(db.customer()),
      CharEq(c, CustomerCol::kCRegion, "AMERICA"),
      Proj(MakeVec(C(c, CustomerCol::kCCustkey),
                   C(c, CustomerCol::kCNation)),
           {"c_custkey", "c_nation"}));
  auto* ht_cust = b.Build("build(customer)", sel_cust, {0}, {1});

  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      CharEq(s, SupplierCol::kSRegion, "AMERICA"),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey)), {"s_suppkey"}));
  auto* ht_sup = b.Build("build(supplier)", sel_sup, {0}, {});

  std::vector<TypedValue> mfgrs;
  mfgrs.push_back(TypedValue::Char("MFGR#1"));
  mfgrs.push_back(TypedValue::Char("MFGR#2"));
  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()),
      std::make_unique<InList>(C(p, PartCol::kPMfgr), std::move(mfgrs)),
      Proj(MakeVec(C(p, PartCol::kPPartkey)), {"p_partkey"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {});

  auto* ht_date = b.Build("build(date)", PlanBuilder::Base(db.date()),
                          {DateCol::kDDatekey}, {DateCol::kDYear});

  auto sel_lo = b.Select(
      "sel(lineorder)", PlanBuilder::Base(db.lineorder()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(lo, LineorderCol::kLoOrderdate),
                   C(lo, LineorderCol::kLoCustkey),
                   C(lo, LineorderCol::kLoPartkey),
                   C(lo, LineorderCol::kLoSuppkey),
                   Sub(C(lo, LineorderCol::kLoRevenue),
                       C(lo, LineorderCol::kLoSupplycost))),
           {"lo_orderdate", "lo_custkey", "lo_partkey", "lo_suppkey",
            "profit"}),
      {{ht_cust, LineorderCol::kLoCustkey},
       {ht_sup, LineorderCol::kLoSuppkey},
       {ht_part, LineorderCol::kLoPartkey}});
  // -> [orderdate, custkey, partkey, profit]
  auto p1 = b.Probe("probe(supplier) semi", sel_lo, ht_sup, {3},
                    {0, 1, 2, 4}, JoinKind::kLeftSemi);
  // -> [orderdate, custkey, profit]
  auto p2 = b.Probe("probe(part) semi", p1, ht_part, {2}, {0, 1, 3},
                    JoinKind::kLeftSemi);
  // -> [orderdate, profit, c_nation]
  auto p3 = b.Probe("probe(customer)", p2, ht_cust, {1}, {0, 2});
  // -> [profit, c_nation, d_year]
  auto p4 = b.Probe("probe(date)", p3, ht_date, {0}, {1, 2});
  auto agg = b.Aggregate(
      "agg", p4, {2, 1},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "profit")));
  auto sorted = b.Sort("sort", agg, {{0, true}, {1, true}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ42Q43(const SsbDatabase& db,
                                       const PlanBuilderConfig& config,
                                       bool q43) {
  PlanBuilder b(db.storage(), config);
  const Schema& lo = db.lineorder().schema();
  const Schema& c = db.customer().schema();
  const Schema& s = db.supplier().schema();
  const Schema& p = db.part().schema();
  const Schema& d = db.date().schema();

  auto sel_cust = b.Select(
      "sel(customer)", PlanBuilder::Base(db.customer()),
      CharEq(c, CustomerCol::kCRegion, "AMERICA"),
      Proj(MakeVec(C(c, CustomerCol::kCCustkey)), {"c_custkey"}));
  auto* ht_cust = b.Build("build(customer)", sel_cust, {0}, {});

  // Q42 keeps AMERICA suppliers and groups by nation; Q43 pins one nation
  // and groups by city.
  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      q43 ? CharEq(s, SupplierCol::kSNation, "N07")
          : CharEq(s, SupplierCol::kSRegion, "AMERICA"),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey),
                   C(s, q43 ? SupplierCol::kSCity : SupplierCol::kSNation)),
           {"s_suppkey", "s_attr"}));
  auto* ht_sup = b.Build("build(supplier)", sel_sup, {0}, {1});

  // Q42 keeps MFGR#1/2 parts and groups by category; Q43 groups by brand.
  std::unique_ptr<Predicate> part_pred;
  if (q43) {
    part_pred = CharEq(p, PartCol::kPCategory, "MFGR#14");
  } else {
    std::vector<TypedValue> mfgrs;
    mfgrs.push_back(TypedValue::Char("MFGR#1"));
    mfgrs.push_back(TypedValue::Char("MFGR#2"));
    part_pred =
        std::make_unique<InList>(C(p, PartCol::kPMfgr), std::move(mfgrs));
  }
  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()), std::move(part_pred),
      Proj(MakeVec(C(p, PartCol::kPPartkey),
                   C(p, q43 ? PartCol::kPBrand1 : PartCol::kPCategory)),
           {"p_partkey", "p_attr"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {1});

  std::vector<TypedValue> years;
  years.push_back(TypedValue::Int32(1997));
  years.push_back(TypedValue::Int32(1998));
  auto sel_date = b.Select(
      "sel(date)", PlanBuilder::Base(db.date()),
      std::make_unique<InList>(C(d, DateCol::kDYear), std::move(years)),
      Proj(MakeVec(C(d, DateCol::kDDatekey), C(d, DateCol::kDYear)),
           {"d_datekey", "d_year"}));
  auto* ht_date = b.Build("build(date)", sel_date, {0}, {1});

  auto sel_lo = b.Select(
      "sel(lineorder)", PlanBuilder::Base(db.lineorder()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(lo, LineorderCol::kLoOrderdate),
                   C(lo, LineorderCol::kLoCustkey),
                   C(lo, LineorderCol::kLoPartkey),
                   C(lo, LineorderCol::kLoSuppkey),
                   Sub(C(lo, LineorderCol::kLoRevenue),
                       C(lo, LineorderCol::kLoSupplycost))),
           {"lo_orderdate", "lo_custkey", "lo_partkey", "lo_suppkey",
            "profit"}),
      {{ht_cust, LineorderCol::kLoCustkey},
       {ht_sup, LineorderCol::kLoSuppkey},
       {ht_part, LineorderCol::kLoPartkey},
       {ht_date, LineorderCol::kLoOrderdate}});
  // -> [orderdate, partkey, suppkey, profit]
  auto p1 = b.Probe("probe(customer) semi", sel_lo, ht_cust, {1},
                    {0, 2, 3, 4}, JoinKind::kLeftSemi);
  // -> [orderdate, partkey, profit, s_attr]
  auto p2 = b.Probe("probe(supplier)", p1, ht_sup, {2}, {0, 1, 3});
  // -> [orderdate, profit, s_attr, p_attr]
  auto p3 = b.Probe("probe(part)", p2, ht_part, {1}, {0, 2, 3});
  // -> [profit, s_attr, p_attr, d_year]
  auto p4 = b.Probe("probe(date)", p3, ht_date, {0}, {1, 2, 3});
  auto agg = b.Aggregate(
      "agg", p4, {3, 1, 2},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "profit")));
  auto sorted = b.Sort("sort", agg, {{0, true}, {1, true}, {2, true}});
  return b.Finish(sorted);
}

}  // namespace

const std::vector<int>& SupportedSsbQueries() {
  static const std::vector<int>* kQueries = new std::vector<int>{
      11, 12, 13, 21, 22, 23, 31, 32, 33, 34, 41, 42, 43};
  return *kQueries;
}

std::unique_ptr<QueryPlan> BuildSsbPlan(int query_id, const SsbDatabase& db,
                                        const PlanBuilderConfig& config) {
  const Schema& d = db.date().schema();
  const Schema& c = db.customer().schema();
  const Schema& s = db.supplier().schema();
  const Schema& p = db.part().schema();
  switch (query_id) {
    case 11:
      return BuildFlight1(db, config,
                          CmpCL(d, DateCol::kDYear, CompareOp::kEq,
                                TypedValue::Int32(1993)),
                          1, 3, 1, 24);
    case 12:
      return BuildFlight1(db, config,
                          CmpCL(d, DateCol::kDYearmonthnum, CompareOp::kEq,
                                TypedValue::Int32(199401)),
                          4, 6, 26, 35);
    case 13: {
      std::vector<std::unique_ptr<Predicate>> parts;
      parts.push_back(CmpCL(d, DateCol::kDWeeknuminyear, CompareOp::kEq,
                            TypedValue::Int32(6)));
      parts.push_back(CmpCL(d, DateCol::kDYear, CompareOp::kEq,
                            TypedValue::Int32(1994)));
      return BuildFlight1(db, config, And(std::move(parts)), 5, 7, 26, 35);
    }
    case 21:
      return BuildFlight2(db, config,
                          CharEq(p, PartCol::kPCategory, "MFGR#12"),
                          "AMERICA");
    case 22: {
      std::vector<std::unique_ptr<Predicate>> parts;
      parts.push_back(CmpCL(p, PartCol::kPBrand1, CompareOp::kGe,
                            TypedValue::Char("B#2221")));
      parts.push_back(CmpCL(p, PartCol::kPBrand1, CompareOp::kLe,
                            TypedValue::Char("B#2228")));
      return BuildFlight2(db, config, And(std::move(parts)), "ASIA");
    }
    case 23:
      return BuildFlight2(db, config,
                          CharEq(p, PartCol::kPBrand1, "B#2239"), "EUROPE");
    case 31:
      return BuildFlight3(
          db, config, CharEq(c, CustomerCol::kCRegion, "ASIA"),
          CustomerCol::kCNation, CharEq(s, SupplierCol::kSRegion, "ASIA"),
          SupplierCol::kSNation,
          Int32Between(d, DateCol::kDYear, 1992, 1997));
    case 32:
      return BuildFlight3(
          db, config, CharEq(c, CustomerCol::kCNation, "N13"),
          CustomerCol::kCCity, CharEq(s, SupplierCol::kSNation, "N13"),
          SupplierCol::kSCity,
          Int32Between(d, DateCol::kDYear, 1992, 1997));
    case 33: {
      auto city_in = [](const Schema& schema, int col) {
        std::vector<TypedValue> cities;
        cities.push_back(TypedValue::Char("N13C1"));
        cities.push_back(TypedValue::Char("N13C5"));
        return std::make_unique<InList>(
            Col(col, schema.column(col).type), std::move(cities));
      };
      return BuildFlight3(db, config, city_in(c, CustomerCol::kCCity),
                          CustomerCol::kCCity,
                          city_in(s, SupplierCol::kSCity),
                          SupplierCol::kSCity,
                          Int32Between(d, DateCol::kDYear, 1992, 1997));
    }
    case 34: {
      auto city_in = [](const Schema& schema, int col) {
        std::vector<TypedValue> cities;
        cities.push_back(TypedValue::Char("N13C1"));
        cities.push_back(TypedValue::Char("N13C5"));
        return std::make_unique<InList>(
            Col(col, schema.column(col).type), std::move(cities));
      };
      return BuildFlight3(db, config, city_in(c, CustomerCol::kCCity),
                          CustomerCol::kCCity,
                          city_in(s, SupplierCol::kSCity),
                          SupplierCol::kSCity,
                          CmpCL(d, DateCol::kDYearmonthnum, CompareOp::kEq,
                                TypedValue::Int32(199712)));
    }
    case 41:
      return BuildQ41(db, config);
    case 42:
      return BuildQ42Q43(db, config, /*q43=*/false);
    case 43:
      return BuildQ42Q43(db, config, /*q43=*/true);
    default:
      UOT_CHECK(false);
      return nullptr;
  }
}

}  // namespace uot
