#include "model/uot_chooser.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "model/memory_model.h"

namespace uot {

std::string UotChoice::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s (%s, %.0f B/transfer, cost %.0f ns)",
                uot.ToString().c_str(), reason, uot_bytes, chosen_cost_ns);
  return buf;
}

CostModelUotChooser::CostModelUotChooser(Options options)
    : options_(options), model_(options.cost_params) {
  UOT_CHECK(options_.threads >= 1);
  UOT_CHECK(options_.max_blocks >= 1);
  UOT_CHECK(options_.budget_cap_fraction > 0.0);
}

std::string RadixChoice::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "radix_bits=%d (%s, table %.0f B, sub %.0f B, "
                "repartition %.0f ns vs saved %.0f ns)",
                radix_bits, reason, table_bytes, sub_table_bytes,
                repartition_cost_ns, saved_cost_ns);
  return buf;
}

UotChoice CostModelUotChooser::ChooseEdge(const EdgeEstimate& estimate,
                                          size_t block_bytes,
                                          bool exchange_edge) const {
  UOT_CHECK(block_bytes > 0);
  UotChoice choice;

  // How many blocks the producer will emit under this estimate. An edge
  // estimated empty carries no data either way: 1-block pipelining is the
  // no-risk default (no buffering, no materialized footprint).
  const double est_bytes = estimate.bytes();
  const uint64_t est_blocks = static_cast<uint64_t>(std::max(
      1.0, std::ceil(est_bytes / static_cast<double>(block_bytes))));

  // Section VI: materializing holds the whole sigma live (the high-UoT
  // overhead of a one-edge cascade); a k-block UoT holds only the granule.
  choice.materialized_bytes =
      MemoryModel::LeafJoinCascade({}, est_bytes).high_uot_overhead_bytes;
  choice.materializing_cost_ns = model_.NonPipeliningExtraCost(
      est_blocks, static_cast<double>(block_bytes));

  choice.est_rows = estimate.rows;
  choice.est_bytes = static_cast<uint64_t>(std::max(0.0, est_bytes));
  choice.est_blocks = est_blocks;

  // The budget cap on one edge's live transfer granule.
  const double cap =
      options_.memory_budget_bytes > 0
          ? options_.budget_cap_fraction *
                static_cast<double>(options_.memory_budget_bytes)
          : 0.0;

  // Candidates 1, 2, 4, ... blocks: Section V pipelining cost at UoT size
  // k * block_bytes over ceil(est_blocks / k) transfers.
  double best_cost = 0.0;
  uint64_t best_k = 0;
  bool capped = false;
  for (uint64_t k = 1; k <= options_.max_blocks; k *= 2) {
    const double uot_bytes = static_cast<double>(k * block_bytes);
    if (cap > 0.0 && uot_bytes > cap && k > 1) {
      capped = true;  // larger granules would breach the per-edge cap
      break;
    }
    const uint64_t num_uots = (est_blocks + k - 1) / k;
    const double cost =
        model_.PipeliningExtraCost(num_uots, uot_bytes, options_.threads);
    if (best_k == 0 || cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
    if (k >= est_blocks) break;  // larger k's behave like whole-table
  }

  // Whole-table competes only when its materialized footprint fits under
  // the cap (Section VI is the constraint, Section V the objective) and
  // the edge is not an exchange: materializing a repartition input stalls
  // every partition consumer behind the producer's last block, the exact
  // serial barrier the exchange edge exists to dissolve.
  const bool whole_allowed =
      !exchange_edge && (cap <= 0.0 || choice.materialized_bytes <= cap);
  if (whole_allowed && choice.materializing_cost_ns < best_cost) {
    choice.uot = UotPolicy::HighUot();
    choice.uot_bytes = est_bytes;
    choice.chosen_cost_ns = choice.materializing_cost_ns;
    choice.reason = "cost-model";
    choice.predicted_transfers = 1;
    choice.predicted_footprint_bytes =
        static_cast<uint64_t>(std::max(0.0, choice.materialized_bytes));
    return choice;
  }

  choice.uot = UotPolicy::LowUot(best_k);
  choice.uot_bytes = static_cast<double>(best_k * block_bytes);
  choice.chosen_cost_ns = best_cost;
  choice.predicted_transfers = (est_blocks + best_k - 1) / best_k;
  choice.predicted_footprint_bytes = static_cast<uint64_t>(
      std::min(choice.uot_bytes, std::max(0.0, est_bytes)));
  if (exchange_edge && choice.materializing_cost_ns < best_cost) {
    // Whole-table would have won on cost but is ineligible on an
    // exchange edge.
    choice.reason = "exchange";
  } else {
    choice.reason =
        (capped || (!whole_allowed &&
                    choice.materializing_cost_ns < best_cost))
            ? "memory-cap"
            : "cost-model";
  }
  return choice;
}

RadixChoice CostModelUotChooser::ChooseRadixBits(
    const EdgeEstimate& build_estimate, const EdgeEstimate& probe_estimate,
    size_t slot_bytes, double load_factor, int max_radix_bits) const {
  UOT_CHECK(slot_bytes > 0);
  UOT_CHECK(load_factor > 0.0 && load_factor <= 1.0);
  UOT_CHECK(max_radix_bits >= 1 && max_radix_bits <= 16);
  RadixChoice choice;
  choice.table_bytes = static_cast<double>(build_estimate.rows) *
                       static_cast<double>(slot_bytes) / load_factor;
  choice.sub_table_bytes = choice.table_bytes;
  const double l3 = model_.params().l3_bytes;
  if (choice.table_bytes <= l3) {
    choice.reason = "fits-l3";  // probes are already cache-resident
    return choice;
  }
  // Smallest radix whose sub-tables fit L3 (deepest radix if none does —
  // partial residency still beats none).
  int bits = max_radix_bits;
  for (int r = 1; r <= max_radix_bits; ++r) {
    if (choice.table_bytes / static_cast<double>(1u << r) <= l3) {
      bits = r;
      break;
    }
  }
  const double sub = choice.table_bytes / static_cast<double>(1u << bits);
  // Repartitioning rewrites both inputs once, in ~64 KiB working granules.
  const double granule = 64.0 * 1024.0;
  const double total_bytes = build_estimate.bytes() + probe_estimate.bytes();
  const uint64_t num_uots = static_cast<uint64_t>(
      std::max(1.0, std::ceil(total_bytes / granule)));
  choice.repartition_cost_ns =
      model_.RepartitionExtraCost(num_uots, granule, 1 << bits);
  choice.saved_cost_ns = model_.PartitionedProbeSavings(
      probe_estimate.rows, choice.table_bytes, sub);
  if (choice.repartition_cost_ns >= choice.saved_cost_ns) {
    choice.reason = "small-build";  // the copy costs more than it saves
    return choice;
  }
  choice.radix_bits = bits;
  choice.sub_table_bytes = sub;
  choice.reason = "partition";
  return choice;
}

std::string FusedChoice::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s (%s, fused %.0f ns vs vectorized %.0f ns)",
                fuse ? "fused" : "vectorized", reason, fused_cost_ns,
                vectorized_cost_ns);
  return buf;
}

FusedChoice CostModelUotChooser::ChooseFusedChain(
    const QueryPlan& plan, const std::vector<int>& chain_ops,
    const std::vector<EdgeEstimate>& estimates,
    uint64_t row_group_rows) const {
  UOT_CHECK(chain_ops.size() >= 2);
  UOT_CHECK(estimates.size() == plan.streaming_edges().size());
  UOT_CHECK(row_group_rows >= 1);
  FusedChoice choice;
  std::vector<uint64_t> edge_rows;
  edge_rows.reserve(chain_ops.size() - 1);
  for (size_t i = 0; i + 1 < chain_ops.size(); ++i) {
    const int edge = plan.FindStreamingEdge(chain_ops[i], chain_ops[i + 1]);
    UOT_CHECK(edge >= 0);  // not a chain of this plan
    const EdgeEstimate& est = estimates[static_cast<size_t>(edge)];
    const QueryPlan::StreamingEdge& e =
        plan.streaming_edges()[static_cast<size_t>(edge)];
    const InsertDestination* dest = plan.destination_of(e.producer);
    const size_t block_bytes =
        dest != nullptr ? dest->output()->block_bytes() : (1u << 20);
    choice.vectorized_cost_ns +=
        ChooseEdge(est, block_bytes,
                   e.kind == QueryPlan::EdgeKind::kExchange)
            .chosen_cost_ns;
    edge_rows.push_back(est.rows);
  }
  choice.fused_cost_ns = model_.FusedChainCost(edge_rows, row_group_rows);
  if (choice.fused_cost_ns < choice.vectorized_cost_ns) {
    choice.fuse = true;
    choice.reason = "fused-cheaper";
  }
  return choice;
}

std::vector<UotChoice> CostModelUotChooser::ChoosePlan(
    const QueryPlan& plan, const std::vector<EdgeEstimate>& estimates) const {
  const auto& edges = plan.streaming_edges();
  UOT_CHECK(estimates.size() == edges.size());
  std::vector<UotChoice> choices;
  choices.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    const InsertDestination* dest = plan.destination_of(edges[i].producer);
    // Producers without a registered destination (no materialized output
    // table, e.g. hash-table builds) fall back to a 1 MiB granule.
    const size_t block_bytes =
        dest != nullptr ? dest->output()->block_bytes() : (1u << 20);
    choices.push_back(
        ChooseEdge(estimates[i], block_bytes,
                   edges[i].kind == QueryPlan::EdgeKind::kExchange));
  }
  return choices;
}

void CostModelUotChooser::AnnotatePlan(QueryPlan* plan,
                                       const std::vector<UotChoice>& choices) {
  UOT_CHECK(plan != nullptr);
  UOT_CHECK(choices.size() == plan->streaming_edges().size());
  for (size_t i = 0; i < choices.size(); ++i) {
    plan->AnnotateEdgeUot(static_cast<int>(i), choices[i].uot);
  }
  AnnotatePredictions(plan, choices);
}

void CostModelUotChooser::AnnotatePredictions(
    QueryPlan* plan, const std::vector<UotChoice>& choices) {
  UOT_CHECK(plan != nullptr);
  UOT_CHECK(choices.size() == plan->streaming_edges().size());
  for (size_t i = 0; i < choices.size(); ++i) {
    const UotChoice& c = choices[i];
    QueryPlan::EdgePrediction prediction;
    prediction.uot_blocks = c.uot.blocks_per_transfer();
    prediction.est_rows = c.est_rows;
    prediction.est_bytes = c.est_bytes;
    prediction.est_blocks = c.est_blocks;
    prediction.predicted_transfers = c.predicted_transfers;
    prediction.predicted_footprint_bytes = c.predicted_footprint_bytes;
    prediction.predicted_cost_ns = c.chosen_cost_ns;
    prediction.reason = c.reason;
    plan->AnnotateEdgePrediction(static_cast<int>(i), std::move(prediction));
  }
}

std::vector<EdgeEstimate> CostModelUotChooser::EstimatesFromExecutedPlan(
    const QueryPlan& plan) {
  std::vector<EdgeEstimate> estimates;
  for (const QueryPlan::StreamingEdge& e : plan.streaming_edges()) {
    EdgeEstimate est;
    const InsertDestination* dest = plan.destination_of(e.producer);
    if (dest != nullptr) {
      const Table* out = dest->output();
      est.rows = out->NumRows();
      est.row_bytes = static_cast<double>(out->schema().row_width());
    }
    estimates.push_back(est);
  }
  return estimates;
}

}  // namespace uot
