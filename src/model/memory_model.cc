#include "model/memory_model.h"

#include "util/macros.h"

namespace uot {

double MemoryModel::HashTableBytes(double input_bytes, double tuple_width,
                                   double bucket_bytes, double load_factor) {
  UOT_CHECK(tuple_width > 0 && load_factor > 0 && load_factor <= 1.0);
  const double entries = input_bytes / tuple_width;  // M / w
  return entries * (bucket_bytes / load_factor);     // * (c / f)
}

double MemoryModel::Selectivity(uint64_t selected_rows, uint64_t input_rows) {
  UOT_CHECK(input_rows > 0);
  return static_cast<double>(selected_rows) /
         static_cast<double>(input_rows);
}

double MemoryModel::Projectivity(double projected_tuple_bytes,
                                 double input_tuple_bytes) {
  UOT_CHECK(input_tuple_bytes > 0);
  return projected_tuple_bytes / input_tuple_bytes;
}

MemoryModel::CascadeFootprint MemoryModel::LeafJoinCascade(
    const std::vector<double>& hash_table_bytes, double sigma_bytes) {
  CascadeFootprint result{0.0, sigma_bytes};
  // Low UoT: hash tables 2..n must be live while the first join runs
  // (Table II: sum_{i=2..n} |H_i|); high UoT builds one at a time but
  // materializes sigma(R).
  for (size_t i = 1; i < hash_table_bytes.size(); ++i) {
    result.low_uot_overhead_bytes += hash_table_bytes[i];
  }
  return result;
}

}  // namespace uot
