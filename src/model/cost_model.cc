#include "model/cost_model.h"

#include <algorithm>
#include <cstdio>

namespace uot {

double CostModel::P1Prime(double uot_bytes, int threads) const {
  return std::min(1.0, 2.0 * uot_bytes * threads / p_.l3_bytes);
}

double CostModel::P2(double uot_bytes) const {
  return std::min(1.0, p_.p2_scale_bytes / uot_bytes);
}

double CostModel::NonPipeliningExtraCost(uint64_t num_uots,
                                         double uot_bytes) const {
  const double n = static_cast<double>(num_uots);
  return W_mem(uot_bytes) * n + AR_L3(uot_bytes) * n + p_.p1 * n * M_L3();
}

double CostModel::PipeliningExtraCost(uint64_t num_uots, double uot_bytes,
                                      int threads) const {
  const double n = static_cast<double>(num_uots);
  const double p1p = P1Prime(uot_bytes, threads);
  const double p2 = P2(uot_bytes);
  return 2.0 * n * IC() + p2 * n * (M_L3() + R_L3(uot_bytes)) +
         p1p * (M_L3() + R_L3(uot_bytes) + W_mem(uot_bytes)) * n;
}

double CostModel::CostRatio(double uot_bytes, int threads) const {
  // Equation (1): instruction-cache terms dropped, N cancels.
  const double p1p = P1Prime(uot_bytes, threads);
  const double p2 = P2(uot_bytes);
  const double numerator =
      AR_L3(uot_bytes) + W_mem(uot_bytes) + p_.p1 * M_L3();
  const double denominator =
      p2 * (M_L3() + R_L3(uot_bytes)) +
      p1p * (M_L3() + R_L3(uot_bytes) + W_mem(uot_bytes));
  return numerator / denominator;
}

double CostModel::StoreExtraCostHighUot(uint64_t num_uots,
                                        double uot_bytes) const {
  const double n = static_cast<double>(num_uots);
  return n * uot_bytes / p_.store_read_bw +
         n * uot_bytes / p_.store_write_bw;
}

double CostModel::StoreExtraCostLowUot(uint64_t num_uots) const {
  return 2.0 * static_cast<double>(num_uots) * IC();
}

std::string CostModel::Describe() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "CostModel{L3=%.1f MB, read=%.1f B/ns, seq_read=%.1f B/ns, "
                "write=%.1f B/ns, M_L3=%.0f ns, IC=%.0f ns, p1=%.2f}",
                p_.l3_bytes / (1024.0 * 1024.0), p_.read_bw, p_.seq_read_bw,
                p_.write_bw, p_.l3_miss_ns, p_.icache_miss_ns, p_.p1);
  return buf;
}

}  // namespace uot
