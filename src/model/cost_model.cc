#include "model/cost_model.h"

#include <algorithm>
#include <cstdio>

namespace uot {

double CostModel::P1Prime(double uot_bytes, int threads) const {
  return std::min(1.0, 2.0 * uot_bytes * threads / p_.l3_bytes);
}

double CostModel::P2(double uot_bytes) const {
  return std::min(1.0, p_.p2_scale_bytes / uot_bytes);
}

double CostModel::NonPipeliningExtraCost(uint64_t num_uots,
                                         double uot_bytes) const {
  const double n = static_cast<double>(num_uots);
  return W_mem(uot_bytes) * n + AR_L3(uot_bytes) * n + p_.p1 * n * M_L3();
}

double CostModel::PipeliningExtraCost(uint64_t num_uots, double uot_bytes,
                                      int threads) const {
  const double n = static_cast<double>(num_uots);
  const double p1p = P1Prime(uot_bytes, threads);
  const double p2 = P2(uot_bytes);
  return 2.0 * n * IC() + p2 * n * (M_L3() + R_L3(uot_bytes)) +
         p1p * (M_L3() + R_L3(uot_bytes) + W_mem(uot_bytes)) * n;
}

double CostModel::CostRatio(double uot_bytes, int threads) const {
  // Equation (1): instruction-cache terms dropped, N cancels.
  const double p1p = P1Prime(uot_bytes, threads);
  const double p2 = P2(uot_bytes);
  const double numerator =
      AR_L3(uot_bytes) + W_mem(uot_bytes) + p_.p1 * M_L3();
  const double denominator =
      p2 * (M_L3() + R_L3(uot_bytes)) +
      p1p * (M_L3() + R_L3(uot_bytes) + W_mem(uot_bytes));
  return numerator / denominator;
}

double CostModel::StoreExtraCostHighUot(uint64_t num_uots,
                                        double uot_bytes) const {
  const double n = static_cast<double>(num_uots);
  return n * uot_bytes / p_.store_read_bw +
         n * uot_bytes / p_.store_write_bw;
}

double CostModel::StoreExtraCostLowUot(uint64_t num_uots) const {
  return 2.0 * static_cast<double>(num_uots) * IC();
}

double CostModel::FusedChainCost(const std::vector<uint64_t>& edge_rows,
                                 uint64_t row_group_rows) const {
  double cost = 0.0;
  for (const uint64_t rows : edge_rows) {
    const uint64_t granules =
        std::max<uint64_t>(1, (rows + row_group_rows - 1) / row_group_rows);
    cost += 2.0 * static_cast<double>(granules) * IC() +
            static_cast<double>(rows) * p_.fused_row_penalty_ns;
  }
  return cost;
}

double CostModel::RepartitionExtraCost(uint64_t num_uots, double uot_bytes,
                                       int partitions) const {
  const double n = static_cast<double>(num_uots);
  return n * (W_mem(uot_bytes) + AR_L3(uot_bytes)) +
         n * static_cast<double>(partitions) * (M_L3() + IC());
}

double CostModel::PartitionedProbeSavings(uint64_t probe_rows,
                                          double table_bytes,
                                          double sub_table_bytes) const {
  // Probability a random slot access misses L3 is the fraction of the
  // table that cannot be resident: max(0, 1 - l3/size). The savings is the
  // per-probe miss-probability drop times M_L3 over all probes.
  const double miss_whole =
      table_bytes <= p_.l3_bytes ? 0.0 : 1.0 - p_.l3_bytes / table_bytes;
  const double miss_sub = sub_table_bytes <= p_.l3_bytes
                              ? 0.0
                              : 1.0 - p_.l3_bytes / sub_table_bytes;
  const double saved = miss_whole - miss_sub;
  if (saved <= 0.0) return 0.0;
  return static_cast<double>(probe_rows) * saved * M_L3();
}

std::string CostModel::Describe() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "CostModel{L3=%.1f MB, read=%.1f B/ns, seq_read=%.1f B/ns, "
                "write=%.1f B/ns, M_L3=%.0f ns, IC=%.0f ns, p1=%.2f}",
                p_.l3_bytes / (1024.0 * 1024.0), p_.read_bw, p_.seq_read_bw,
                p_.write_bw, p_.l3_miss_ns, p_.icache_miss_ns, p_.p1);
  return buf;
}

}  // namespace uot
