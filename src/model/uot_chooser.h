#ifndef UOT_MODEL_UOT_CHOOSER_H_
#define UOT_MODEL_UOT_CHOOSER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "plan/query_plan.h"
#include "scheduler/uot_policy.h"

namespace uot {

/// Cardinality estimate for one streaming edge: how much output its
/// producer is expected to emit. Estimates come from the analysis layer
/// (tpch/tpch_analysis.h selectivity/projectivity products) or from a
/// profiled prior run (EstimatesFromExecutedPlan).
struct EdgeEstimate {
  uint64_t rows = 0;
  double row_bytes = 0.0;

  double bytes() const { return static_cast<double>(rows) * row_bytes; }
};

/// The chooser's verdict for one edge.
struct UotChoice {
  /// The chosen point on the UoT spectrum.
  UotPolicy uot = UotPolicy();
  /// Transfer granule of the choice, bytes (whole output for kWholeTable).
  double uot_bytes = 0.0;
  /// Modeled extra cost (ns) of the chosen UoT vs. of materializing.
  double chosen_cost_ns = 0.0;
  double materializing_cost_ns = 0.0;
  /// Section VI footprint of materializing this edge (the sigma bytes the
  /// whole-table strategy holds live).
  double materialized_bytes = 0.0;
  /// Why this UoT won: "cost-model" (pure Section V argmin) or
  /// "memory-cap" (the Section VI footprint hit the budget cap and forced
  /// a smaller granule than the cost argmin).
  const char* reason = "cost-model";

  /// The inputs and derived expectations behind the choice, kept so
  /// profiles can hold the model accountable (residual accounting):
  /// the estimate the model saw ...
  uint64_t est_rows = 0;
  uint64_t est_bytes = 0;
  uint64_t est_blocks = 0;
  /// ... and what it implies at the chosen UoT: number of transfers and
  /// the Section VI bytes the edge is expected to hold live (the granule
  /// for finite UoT, the whole intermediate when materializing).
  uint64_t predicted_transfers = 0;
  uint64_t predicted_footprint_bytes = 0;

  std::string ToString() const;
};

/// The chooser's verdict on how many radix bits a hash join should use
/// (0 = unpartitioned): Section V's repartition cost against the probe
/// cache-miss savings of L3-resident sub-tables (Section VI footprint
/// reasoning applied to the hash table instead of the intermediate).
struct RadixChoice {
  int radix_bits = 0;
  /// Modeled whole-table and per-partition sub-table sizes, bytes.
  double table_bytes = 0.0;
  double sub_table_bytes = 0.0;
  /// Extra cost of repartitioning both join inputs, ns.
  double repartition_cost_ns = 0.0;
  /// Probe-side cache-miss cost the partitioning saves, ns.
  double saved_cost_ns = 0.0;
  /// "fits-l3" (table already cache-resident -> 0), "small-build"
  /// (repartition costs more than it saves -> 0), or "partition".
  const char* reason = "fits-l3";

  std::string ToString() const;
};

/// The chooser's verdict on one fusable pipeline: fused tuple-at-a-time
/// execution against the best vectorized per-edge UoT choices over the
/// chain's interior edges.
struct FusedChoice {
  bool fuse = false;
  /// Modeled extra cost (ns) of walking the chain in row groups
  /// (CostModel::FusedChainCost).
  double fused_cost_ns = 0.0;
  /// Sum of the interior edges' best vectorized costs
  /// (UotChoice::chosen_cost_ns of each edge's ChooseEdge verdict).
  double vectorized_cost_ns = 0.0;
  /// "fused-cheaper" or "vectorized-cheaper".
  const char* reason = "vectorized-cheaper";

  std::string ToString() const;
};

/// Static per-edge UoT selection at plan bind time (tentpole part 3): for
/// every streaming edge, evaluates the Section V cost model over candidate
/// UoT values (1, 2, 4, ... blocks, and whole-table) using the edge's
/// cardinality estimate, caps the candidates with the Section VI memory
/// footprint against the shared budget, and picks the cheapest. The
/// choices can be applied as plan annotations (AnnotatePlan) or used to
/// seed an AdaptiveUotPolicy.
class CostModelUotChooser {
 public:
  struct Options {
    CostModelParams cost_params;
    /// Worker threads the query will run with (the model's T).
    int threads = 4;
    /// Memory available to the query's intermediates (0 = unconstrained).
    /// Pass the headroom above the structural footprint (base tables,
    /// hash tables), not the engine's raw budget: the chooser caps edge
    /// granules against this number, and bytes it cannot reclaim would
    /// only inflate every cap.
    int64_t memory_budget_bytes = 0;
    /// Fraction of the budget one edge's live transfer granule may occupy;
    /// whole-table is only eligible when the edge's full materialized
    /// footprint fits under this cap.
    double budget_cap_fraction = 0.25;
    /// Largest finite candidate, in blocks.
    uint64_t max_blocks = 64;
  };

  CostModelUotChooser() : CostModelUotChooser(Options{}) {}
  explicit CostModelUotChooser(Options options);

  /// The cost-model choice for one edge whose producer emits `estimate`
  /// into blocks of `block_bytes`. `exchange_edge` marks an exchange/
  /// repartition edge: whole-table is excluded there — materializing an
  /// exchange input recreates the serial repartition barrier the exchange
  /// exists to avoid (the partition consumers would sit idle until the
  /// producer finished), so only finite UoT values compete.
  UotChoice ChooseEdge(const EdgeEstimate& estimate, size_t block_bytes,
                       bool exchange_edge = false) const;

  /// Radix bits for a hash join whose build side emits `build_estimate`
  /// and whose probe side emits `probe_estimate`: 0 when the whole table
  /// fits L3 or when the repartition work (both inputs rewritten once)
  /// exceeds the modeled probe-miss savings; otherwise the smallest radix
  /// in [1, max_radix_bits] whose sub-tables fit L3. `slot_bytes` is the
  /// hash table's per-entry slot cost (key words + payload + tag).
  RadixChoice ChooseRadixBits(const EdgeEstimate& build_estimate,
                              const EdgeEstimate& probe_estimate,
                              size_t slot_bytes, double load_factor = 0.75,
                              int max_radix_bits = 6) const;

  /// Whether chain `chain_ops` (a fusable pipeline of `plan`, in pipeline
  /// order — e.g. one of PipelineFuser::DetectFusablePipelines) should
  /// execute fused: the tuple-at-a-time cost of crossing each interior
  /// edge in `row_group_rows`-row granules against the sum of the edges'
  /// best vectorized choices. `estimates[i]` pairs with
  /// plan.streaming_edges()[i], exactly as in ChoosePlan.
  FusedChoice ChooseFusedChain(const QueryPlan& plan,
                               const std::vector<int>& chain_ops,
                               const std::vector<EdgeEstimate>& estimates,
                               uint64_t row_group_rows = 1024) const;

  /// Choices for every streaming edge of `plan` (estimates[i] pairs with
  /// plan.streaming_edges()[i]; block sizes come from the producers'
  /// output tables).
  std::vector<UotChoice> ChoosePlan(
      const QueryPlan& plan, const std::vector<EdgeEstimate>& estimates) const;

  /// Applies `choices` (from ChoosePlan) as per-edge plan annotations,
  /// pinning every edge's UoT. Also records the predictions
  /// (AnnotatePredictions) so profiled runs get residuals for free.
  static void AnnotatePlan(QueryPlan* plan,
                           const std::vector<UotChoice>& choices);

  /// Records only the model's expectations (QueryPlan::EdgePrediction)
  /// without pinning edge UoTs. Use when the choices seed an adaptive
  /// policy instead of pinning the plan: the profile still compares the
  /// model's predictions against what the adaptive run measured.
  static void AnnotatePredictions(QueryPlan* plan,
                                  const std::vector<UotChoice>& choices);

  /// Oracle estimates measured from an already-executed plan's intermediate
  /// tables — per-edge actual output cardinalities, for benchmarking the
  /// chooser against a profiled run of the same query shape. The profile
  /// run must execute with ExecConfig::drop_consumed_blocks = false, or the
  /// consumed intermediates measure as empty.
  static std::vector<EdgeEstimate> EstimatesFromExecutedPlan(
      const QueryPlan& plan);

  const Options& options() const { return options_; }
  const CostModel& cost_model() const { return model_; }

 private:
  Options options_;
  CostModel model_;
};

}  // namespace uot

#endif  // UOT_MODEL_UOT_CHOOSER_H_
