#ifndef UOT_MODEL_MEMORY_MODEL_H_
#define UOT_MODEL_MEMORY_MODEL_H_

#include <cstdint>
#include <vector>

namespace uot {

/// The Section VI memory-footprint model, comparing the overhead of the two
/// extreme UoT strategies on a leaf-level join cascade (paper Fig. 4,
/// Table II).
class MemoryModel {
 public:
  /// Hash-table size for an input table of `input_bytes` with tuples of
  /// `tuple_width` bytes: (M/w) * (c/f)   (Section VI-B).
  static double HashTableBytes(double input_bytes, double tuple_width,
                               double bucket_bytes, double load_factor);

  /// Selectivity s = Ns / N (Section VI-A).
  static double Selectivity(uint64_t selected_rows, uint64_t input_rows);

  /// Projectivity p = Cs / C: projected bytes per tuple over total bytes
  /// per tuple.
  static double Projectivity(double projected_tuple_bytes,
                             double input_tuple_bytes);

  /// Total memory reduction of a select: s * p (the paper's "Total" column
  /// in Tables III/IV).
  static double TotalReduction(double selectivity, double projectivity) {
    return selectivity * projectivity;
  }

  /// Table II for a cascade of n probes over hash tables of the given
  /// sizes, with the select output of `sigma_bytes`:
  ///  - low-UoT overhead: all hash tables but the first must coexist;
  ///  - high-UoT overhead: the materialized select output.
  struct CascadeFootprint {
    double low_uot_overhead_bytes;
    double high_uot_overhead_bytes;
  };
  static CascadeFootprint LeafJoinCascade(
      const std::vector<double>& hash_table_bytes, double sigma_bytes);
};

}  // namespace uot

#endif  // UOT_MODEL_MEMORY_MODEL_H_
