#ifndef UOT_MODEL_COST_MODEL_H_
#define UOT_MODEL_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace uot {

/// Parameters of the Section V analytical model (paper Table I), expressed
/// as hardware rates so the per-UoT costs R_h, AR_h, W_h scale with the UoT
/// size B.
///
/// Defaults are calibrated to the paper's evaluation platform (Table V:
/// dual Haswell EP, 25 MB L3): sequential prefetched reads are much faster
/// than disrupted reads (AR_L3 << R_L3) and memory writes are the dominant
/// per-byte cost, which is what drives the paper's conclusion that the two
/// strategies converge.
struct CostModelParams {
  double l3_bytes = 25.0 * 1024 * 1024;

  /// Bytes/ns of a *disrupted* (non-prefetched) read — the rate paid until
  /// the hardware prefetcher re-detects the stream.
  double read_bw = 10.0;
  /// Bytes read at the disrupted rate before the prefetcher locks back on;
  /// beyond this, R_L3 proceeds at the sequential rate. This captures the
  /// paper's observation that "the miss penalty will decrease quickly" once
  /// the access pattern is detected, and is what makes R_L3 -> AR_L3 for
  /// multi-megabyte UoTs (Section V-A's high-UoT regime).
  double prefetch_ramp_bytes = 128.0 * 1024;
  /// Bytes/ns of a sequential prefetched read — determines AR_L3.
  /// AR_L3 << R_L3 per the paper.
  double seq_read_bw = 40.0;
  /// Bytes/ns of writing a UoT from cache to memory — determines W_mem.
  /// Writes are the dominant cost in both regimes (Section V-A).
  double write_bw = 8.0;

  /// One-time L3 miss penalty per UoT access, ns (M_L3).
  double l3_miss_ns = 90.0;
  /// Instruction-cache refill cost per operator context switch, ns (IC).
  double icache_miss_ns = 400.0;

  /// p1: probability that reading a probe input UoT misses L3 in the
  /// non-pipelining case (hash-table reads disrupt the sequential stream).
  double p1 = 0.8;
  /// Scale B0 for p2(B) = min(1, B0 / B): the probability that the select
  /// operator's stream was evicted when control switches back from the
  /// probe. Small UoTs switch often -> p2 ~ 1; large UoTs amortize.
  double p2_scale_bytes = 256.0 * 1024;

  /// ns/row of scalar tuple-at-a-time stage dispatch in a fused chain:
  /// fused execution forfeits the batched/prefetching kernels and their
  /// instruction-level parallelism, so every row crossing a fused interior
  /// edge pays this penalty. The counterweight to the W_mem/AR_L3 savings:
  /// narrow intermediates (cheap to materialize) stay vectorized, wide
  /// ones fuse.
  double fused_row_penalty_ns = 2.0;

  // ---- persistent-store variant (Section V-C) ----
  /// Bytes/ns of the persistent store (default ~0.5 GB/s: an SSD).
  double store_read_bw = 0.5;
  double store_write_bw = 0.4;
};

/// The Section V analytical model for the select -> probe producer/consumer
/// pair: quantifies only the *extra* work each strategy performs relative
/// to the other (costs common to all UoT values cancel).
class CostModel {
 public:
  explicit CostModel(CostModelParams params = CostModelParams())
      : p_(params) {}

  const CostModelParams& params() const { return p_; }

  // Per-UoT component costs (ns) for UoT size `uot_bytes`.
  /// Disrupted read: the first `prefetch_ramp_bytes` at the slow rate, the
  /// remainder at the prefetched sequential rate.
  double R_L3(double uot_bytes) const {
    const double ramp =
        uot_bytes < p_.prefetch_ramp_bytes ? uot_bytes
                                           : p_.prefetch_ramp_bytes;
    return ramp / p_.read_bw + (uot_bytes - ramp) / p_.seq_read_bw;
  }
  double AR_L3(double uot_bytes) const { return uot_bytes / p_.seq_read_bw; }
  double W_mem(double uot_bytes) const { return uot_bytes / p_.write_bw; }
  double M_L3() const { return p_.l3_miss_ns; }
  double IC() const { return p_.icache_miss_ns; }

  /// p1' = min(1, 2BT / |L3|): the likelihood that a probe input written by
  /// the producer is no longer in L3 when the consumer reads it.
  double P1Prime(double uot_bytes, int threads) const;

  /// p2(B): probability the select stream misses L3 after a context switch
  /// back from the probe.
  double P2(double uot_bytes) const;

  /// Extra work of the non-pipelining strategy (UoT = whole table), per
  /// Section V:  W_mem·N_out + AR_L3·N_in + p1·N_in·M_L3,
  /// with N_in = N_out = `num_uots` select-output/probe-input UoTs.
  double NonPipeliningExtraCost(uint64_t num_uots, double uot_bytes) const;

  /// Extra work of the pipelining strategy (small UoT), per Section V:
  /// (N_out+N_in)·IC + p2·N_in·(M_L3+R_L3) + p1'·(M_L3+R_L3+W_mem)·N_in.
  double PipeliningExtraCost(uint64_t num_uots, double uot_bytes,
                             int threads) const;

  /// Equation (1): the ratio of non-pipelining to pipelining extra cost
  /// (N_probe_in cancels; instruction-cache terms are dropped as the paper
  /// does when simplifying).
  double CostRatio(double uot_bytes, int threads) const;

  // ---- Section V-C: persistent store with an in-memory buffer pool ----

  /// Extra cost for large UoT values: R_store·N_in + W_store·N_out.
  double StoreExtraCostHighUot(uint64_t num_uots, double uot_bytes) const;

  /// Extra cost for small UoT values: (N_out + N_in)·IC.
  double StoreExtraCostLowUot(uint64_t num_uots) const;

  // ---- fused-pipeline extension (ROADMAP item 3: the far-low end of the
  // UoT spectrum) ----

  /// Extra work of executing a fused chain tuple-at-a-time instead of
  /// vectorizing its interior edges: per interior edge i carrying
  /// edge_rows[i] rows, the bound stage functions switch contexts once per
  /// `row_group_rows`-row granule ((N_out + N_in)·IC with
  /// N = ceil(rows/row_group_rows)) and every row pays the scalar
  /// dispatch penalty (fused_row_penalty_ns) — but the granule never
  /// leaves cache, so the W_mem / AR_L3 / M_L3 terms both vectorized
  /// strategies pay per UoT vanish. Compare against the sum of the
  /// per-edge chosen costs (UotChoice::chosen_cost_ns) of the same edges.
  double FusedChainCost(const std::vector<uint64_t>& edge_rows,
                        uint64_t row_group_rows) const;

  // ---- radix-partitioned join extension (Section V/VI applied to an
  // exchange edge) ----

  /// Extra work a radix exchange adds over feeding the join directly:
  /// every UoT is written once more (the repartitioned copy, W_mem) and
  /// re-read by the partition consumer (AR_L3 — the copy is sequential per
  /// partition), plus a per-partition stream-switch charge (M_L3 + IC) for
  /// the scatter touching `partitions` output streams.
  double RepartitionExtraCost(uint64_t num_uots, double uot_bytes,
                              int partitions) const;

  /// Work the partitioning saves on the probe side: with the whole table
  /// resident beyond L3, the fraction of probes that miss pay M_L3 each;
  /// sub-tables of `sub_table_bytes` keep (1 - sub/l3 overflow) of those
  /// hits cache-resident. Returns saved ns for `probe_rows` probes against
  /// a table of `table_bytes` vs. sub-tables of `sub_table_bytes`.
  double PartitionedProbeSavings(uint64_t probe_rows, double table_bytes,
                                 double sub_table_bytes) const;

  std::string Describe() const;

 private:
  CostModelParams p_;
};

}  // namespace uot

#endif  // UOT_MODEL_COST_MODEL_H_
