#include "baseline/materializing_engine.h"

#include <algorithm>

#include "operators/build_hash_operator.h"
#include "operators/select_operator.h"
#include "exec/engine.h"
#include "util/timer.h"

namespace uot {

void MaterializingEngine::Drive(Operator* op) {
  std::vector<std::unique_ptr<WorkOrder>> wos;
  while (!op->GenerateWorkOrders(&wos)) {
    for (auto& wo : wos) wo->Execute();
    wos.clear();
  }
  for (auto& wo : wos) wo->Execute();
  op->Finish();
}

std::unique_ptr<Table> MaterializingEngine::MakeOutput(
    const std::string& name, Schema schema, uint64_t bytes_hint) {
  const uint64_t block_bytes =
      std::max<uint64_t>(bytes_hint, schema.row_width());
  return std::make_unique<Table>(name, std::move(schema), Layout::kRowStore,
                                 block_bytes, storage_,
                                 MemoryCategory::kTemporaryTable);
}

std::unique_ptr<Table> MaterializingEngine::Select(const Table& input,
                                                   const Predicate& pred,
                                                   const Projection& proj) {
  auto out = MakeOutput("baseline.select", proj.output_schema(),
                        input.TotalBytes() + proj.output_schema().row_width());
  InsertDestination dest(storage_, out.get(), nullptr);
  {
    InsertDestination::Writer writer(&dest);
    for (const Block* block : input.blocks()) {
      const std::vector<uint32_t> sel = pred.FilterAll(*block);
      if (!sel.empty()) proj.MaterializeInto(*block, sel, &writer);
    }
  }
  dest.Flush();
  return out;
}

std::unique_ptr<Table> MaterializingEngine::HashJoin(const Table& probe,
                                                     const Table& build,
                                                     const JoinSpec& spec) {
  OperatorExecContext exec_ctx;
  exec_ctx.join = spec.join;
  BuildHashOperator build_op("baseline.build", spec.build_keys,
                             spec.build_payload, spec.load_factor,
                             &storage_->tracker());
  build_op.BindExecContext(exec_ctx);
  build_op.InitHashTable(build.schema());
  build_op.AttachBaseTable(&build);
  Drive(&build_op);

  Schema out_schema = ProbeHashOperator::OutputSchema(
      probe.schema(), spec.probe_out,
      build_op.hash_table()->payload_schema(),
      [&] {
        std::vector<int> all;
        for (int c = 0;
             c < build_op.hash_table()->payload_schema().num_columns(); ++c) {
          all.push_back(c);
        }
        return all;
      }(),
      spec.kind);
  auto out = MakeOutput("baseline.join", std::move(out_schema),
                        probe.TotalBytes() + build.TotalBytes() + 1024);
  InsertDestination dest(storage_, out.get(), nullptr);
  ProbeHashOperator probe_op("baseline.probe", &build_op, spec.probe_keys,
                             spec.probe_out, spec.kind, spec.residuals,
                             &dest);
  probe_op.BindExecContext(exec_ctx);
  probe_op.AttachBaseTable(&probe);
  Drive(&probe_op);
  return out;
}

std::unique_ptr<Table> MaterializingEngine::GroupAggregate(
    const Table& input, std::vector<int> group_cols,
    std::vector<AggSpec> aggs, std::unique_ptr<Predicate> pred) {
  Schema out_schema =
      AggregateOperator::OutputSchema(input.schema(), group_cols, aggs);
  auto out = MakeOutput("baseline.agg", out_schema,
                        std::max<uint64_t>(1 << 20, out_schema.row_width()));
  InsertDestination dest(storage_, out.get(), nullptr);
  AggregateOperator op("baseline.agg", input.schema(), std::move(group_cols),
                       std::move(aggs), std::move(pred), &dest);
  op.AttachBaseTable(&input);
  Drive(&op);
  return out;
}

std::unique_ptr<Table> MaterializingEngine::Sort(const Table& input,
                                                 std::vector<SortKey> keys,
                                                 uint64_t limit) {
  auto out = MakeOutput("baseline.sort", input.schema(),
                        input.TotalBytes() + input.schema().row_width());
  InsertDestination dest(storage_, out.get(), nullptr);
  SortOperator op("baseline.sort", input.schema(), std::move(keys), &dest,
                  limit);
  op.AttachBaseTable(&input);
  Drive(&op);
  return out;
}

double MaterializingEngine::ExecutePlan(QueryPlan* plan) {
  ExecConfig config;
  config.num_workers = 1;
  config.uot = UotPolicy::HighUot();
  // The baseline is the materializing extreme of the spectrum, expressed
  // through the policy interface like every other execution mode.
  config.uot_policy = std::make_shared<FixedUotPolicy>(UotPolicy::HighUot());
  Timer timer;
  EngineConfig engine_config;
  engine_config.num_workers = config.num_workers;
  Engine engine(engine_config);
  engine.Execute(plan, config);
  return timer.ElapsedMillis();
}

}  // namespace uot
