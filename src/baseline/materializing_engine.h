#ifndef UOT_BASELINE_MATERIALIZING_ENGINE_H_
#define UOT_BASELINE_MATERIALIZING_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "operators/aggregate_operator.h"
#include "operators/probe_hash_operator.h"
#include "operators/sort_operator.h"
#include "plan/query_plan.h"
#include "storage/table.h"

namespace uot {

/// An operator-at-a-time, fully materializing, single-threaded engine — the
/// MonetDB-style baseline of the paper's Fig. 11 (see DESIGN.md
/// substitution 3).
///
/// Every operator consumes its *entire* input and materializes its entire
/// output before the next operator starts; there is no scheduler, no
/// streaming, and no intra-operator parallelism. Outputs are written into
/// whole-table-sized blocks, mimicking full-column materialization.
///
/// The standalone operator helpers below also serve as sequential reference
/// implementations for the property tests.
class MaterializingEngine {
 public:
  explicit MaterializingEngine(StorageManager* storage)
      : storage_(storage) {}
  UOT_DISALLOW_COPY_AND_ASSIGN(MaterializingEngine);

  /// sigma+project: returns a new fully materialized table.
  std::unique_ptr<Table> Select(const Table& input, const Predicate& pred,
                                const Projection& proj);

  struct JoinSpec {
    std::vector<int> build_keys;
    std::vector<int> build_payload;
    std::vector<int> probe_keys;
    std::vector<int> probe_out;
    JoinKind kind = JoinKind::kInner;
    std::vector<ResidualCondition> residuals;
    double load_factor = 0.75;
    /// Kernel selection + batching knobs bound to the build and probe
    /// operators; tests A/B the scalar and batched kernels through this.
    JoinKernelConfig join;
  };
  std::unique_ptr<Table> HashJoin(const Table& probe, const Table& build,
                                  const JoinSpec& spec);

  std::unique_ptr<Table> GroupAggregate(const Table& input,
                                        std::vector<int> group_cols,
                                        std::vector<AggSpec> aggs,
                                        std::unique_ptr<Predicate> pred);

  std::unique_ptr<Table> Sort(const Table& input, std::vector<SortKey> keys,
                              uint64_t limit = 0);

  /// Executes a full query plan in baseline mode: single worker, one
  /// operator at a time (whole-table UoT). Returns wall-clock milliseconds;
  /// the result stays in `plan->result_table()`.
  static double ExecutePlan(QueryPlan* plan);

 private:
  /// Output-table block size: one whole-table block when possible.
  std::unique_ptr<Table> MakeOutput(const std::string& name, Schema schema,
                                    uint64_t bytes_hint);
  /// Drives one operator (already fed) to completion on this thread.
  static void Drive(Operator* op);

  StorageManager* const storage_;
};

}  // namespace uot

#endif  // UOT_BASELINE_MATERIALIZING_ENGINE_H_
