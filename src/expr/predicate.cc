#include "expr/predicate.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace uot {
namespace {

std::atomic<uint8_t> g_compare_kernel{
    static_cast<uint8_t>(CompareKernel::kBranchFree)};

/// One comparison over the selection, column-vs-column or
/// column-vs-hoisted-constant (`rhs_const` non-null), under the active
/// kernel. Both kernels compact in place preserving row order; the
/// branch-free variant stores unconditionally and advances `kept` by the
/// comparison result, which keeps the loop free of data-dependent branches
/// so the compiler can vectorize it.
template <typename Op>
void RunCompare(const double* lhs, const double* rhs,
                const double* rhs_const, Op op, std::vector<uint32_t>* sel) {
  const uint32_t n = static_cast<uint32_t>(sel->size());
  uint32_t* s = sel->data();
  uint32_t kept = 0;
  if (GetCompareKernel() == CompareKernel::kBranchFree) {
    if (rhs_const != nullptr) {
      const double c = *rhs_const;
      for (uint32_t i = 0; i < n; ++i) {
        s[kept] = s[i];
        kept += static_cast<uint32_t>(op(lhs[i], c));
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        s[kept] = s[i];
        kept += static_cast<uint32_t>(op(lhs[i], rhs[i]));
      }
    }
  } else {
    if (rhs_const != nullptr) {
      const double c = *rhs_const;
      for (uint32_t i = 0; i < n; ++i) {
        if (op(lhs[i], c)) s[kept++] = s[i];
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        if (op(lhs[i], rhs[i])) s[kept++] = s[i];
      }
    }
  }
  sel->resize(kept);
}

}  // namespace

void SetCompareKernel(CompareKernel kernel) {
  g_compare_kernel.store(static_cast<uint8_t>(kernel),
                         std::memory_order_relaxed);
}

CompareKernel GetCompareKernel() {
  return static_cast<CompareKernel>(
      g_compare_kernel.load(std::memory_order_relaxed));
}

std::vector<uint32_t> Predicate::FilterAll(const Block& block) const {
  std::vector<uint32_t> sel(block.num_rows());
  for (uint32_t i = 0; i < block.num_rows(); ++i) sel[i] = i;
  Filter(block, &sel);
  return sel;
}

Comparison::Comparison(CompareOp op, std::unique_ptr<Scalar> left,
                       std::unique_ptr<Scalar> right)
    : op_(op),
      left_(std::move(left)),
      right_(std::move(right)),
      is_char_(left_->result_type().id() == TypeId::kChar),
      rhs_is_literal_(!is_char_ &&
                      dynamic_cast<const Literal*>(right_.get()) != nullptr) {
  if (is_char_) {
    UOT_CHECK(right_->result_type().id() == TypeId::kChar);
    UOT_CHECK(left_->result_type().width() == right_->result_type().width());
  } else {
    UOT_CHECK(left_->result_type().IsNumeric());
    UOT_CHECK(right_->result_type().IsNumeric());
  }
}

void Comparison::Filter(const Block& block, std::vector<uint32_t>* sel) const {
  const uint32_t n = static_cast<uint32_t>(sel->size());
  if (n == 0) return;
  if (!is_char_) {
    std::vector<double> lhs(n);
    EvalAsDouble(*left_, block, sel->data(), n, lhs.data());
    // Literal right operands hoist to a loop constant; otherwise the
    // operand is materialized per selected row like the left side.
    double constant = 0.0;
    const double* rhs_const = nullptr;
    std::vector<double> rhs;
    if (rhs_is_literal_) {
      EvalAsDouble(*right_, block, sel->data(), 1, &constant);
      rhs_const = &constant;
    } else {
      rhs.resize(n);
      EvalAsDouble(*right_, block, sel->data(), n, rhs.data());
    }
    switch (op_) {
      case CompareOp::kEq:
        RunCompare(lhs.data(), rhs.data(), rhs_const,
                   [](double a, double b) { return a == b; }, sel);
        return;
      case CompareOp::kNe:
        RunCompare(lhs.data(), rhs.data(), rhs_const,
                   [](double a, double b) { return a != b; }, sel);
        return;
      case CompareOp::kLt:
        RunCompare(lhs.data(), rhs.data(), rhs_const,
                   [](double a, double b) { return a < b; }, sel);
        return;
      case CompareOp::kLe:
        RunCompare(lhs.data(), rhs.data(), rhs_const,
                   [](double a, double b) { return a <= b; }, sel);
        return;
      case CompareOp::kGt:
        RunCompare(lhs.data(), rhs.data(), rhs_const,
                   [](double a, double b) { return a > b; }, sel);
        return;
      case CompareOp::kGe:
        RunCompare(lhs.data(), rhs.data(), rhs_const,
                   [](double a, double b) { return a >= b; }, sel);
        return;
    }
    return;
  }
  const uint16_t w = left_->result_type().width();
  std::vector<std::byte> lhs(static_cast<size_t>(n) * w);
  std::vector<std::byte> rhs(static_cast<size_t>(n) * w);
  left_->Eval(block, sel->data(), n, lhs.data());
  right_->Eval(block, sel->data(), n, rhs.data());
  uint32_t kept = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const int c = std::memcmp(lhs.data() + static_cast<size_t>(i) * w,
                              rhs.data() + static_cast<size_t>(i) * w, w);
    bool keep = false;
    switch (op_) {
      case CompareOp::kEq:
        keep = c == 0;
        break;
      case CompareOp::kNe:
        keep = c != 0;
        break;
      case CompareOp::kLt:
        keep = c < 0;
        break;
      case CompareOp::kLe:
        keep = c <= 0;
        break;
      case CompareOp::kGt:
        keep = c > 0;
        break;
      case CompareOp::kGe:
        keep = c >= 0;
        break;
    }
    if (keep) (*sel)[kept++] = (*sel)[i];
  }
  sel->resize(kept);
}

std::string Comparison::ToString() const {
  static constexpr const char* kOps[] = {" = ", " <> ", " < ",
                                         " <= ", " > ", " >= "};
  return "(" + left_->ToString() + kOps[static_cast<int>(op_)] +
         right_->ToString() + ")";
}

void Conjunction::Filter(const Block& block,
                         std::vector<uint32_t>* sel) const {
  for (const auto& child : children_) {
    if (sel->empty()) return;
    child->Filter(block, sel);
  }
}

std::string Conjunction::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += children_[i]->ToString();
  }
  return out + ")";
}

void Disjunction::Filter(const Block& block,
                         std::vector<uint32_t>* sel) const {
  std::vector<uint32_t> result;
  for (const auto& child : children_) {
    std::vector<uint32_t> candidate = *sel;
    child->Filter(block, &candidate);
    // Union of two sorted lists.
    std::vector<uint32_t> merged;
    merged.reserve(result.size() + candidate.size());
    std::set_union(result.begin(), result.end(), candidate.begin(),
                   candidate.end(), std::back_inserter(merged));
    result = std::move(merged);
  }
  *sel = std::move(result);
}

std::string Disjunction::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += " OR ";
    out += children_[i]->ToString();
  }
  return out + ")";
}

void Negation::Filter(const Block& block, std::vector<uint32_t>* sel) const {
  std::vector<uint32_t> matched = *sel;
  child_->Filter(block, &matched);
  // Keep rows in *sel that are absent from `matched` (both sorted).
  std::vector<uint32_t> kept;
  kept.reserve(sel->size() - matched.size());
  std::set_difference(sel->begin(), sel->end(), matched.begin(),
                      matched.end(), std::back_inserter(kept));
  *sel = std::move(kept);
}

std::string Negation::ToString() const {
  return "NOT " + child_->ToString();
}

InList::InList(std::unique_ptr<Scalar> expr, std::vector<TypedValue> values)
    : expr_(std::move(expr)), values_(std::move(values)) {
  const Type type = expr_->result_type();
  packed_.reserve(values_.size());
  for (const TypedValue& v : values_) {
    std::vector<std::byte> buf(type.width());
    v.CopyTo(type, buf.data());
    packed_.push_back(std::move(buf));
  }
}

void InList::Filter(const Block& block, std::vector<uint32_t>* sel) const {
  const uint32_t n = static_cast<uint32_t>(sel->size());
  if (n == 0) return;
  const uint16_t w = expr_->result_type().width();
  std::vector<std::byte> vals(static_cast<size_t>(n) * w);
  expr_->Eval(block, sel->data(), n, vals.data());
  uint32_t kept = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const std::byte* v = vals.data() + static_cast<size_t>(i) * w;
    bool found = false;
    for (const auto& candidate : packed_) {
      if (std::memcmp(v, candidate.data(), w) == 0) {
        found = true;
        break;
      }
    }
    if (found) (*sel)[kept++] = (*sel)[i];
  }
  sel->resize(kept);
}

std::string InList::ToString() const {
  std::string out = expr_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  return out + ")";
}

Like::Like(std::unique_ptr<Scalar> expr, std::string pattern, bool negated)
    : expr_(std::move(expr)),
      pattern_(std::move(pattern)),
      negated_(negated) {
  UOT_CHECK(expr_->result_type().id() == TypeId::kChar);
  UOT_CHECK(pattern_.find('_') == std::string::npos);
  anchored_start_ = !pattern_.empty() && pattern_.front() != '%';
  anchored_end_ = !pattern_.empty() && pattern_.back() != '%';
  std::string current;
  for (char c : pattern_) {
    if (c == '%') {
      if (!current.empty()) parts_.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) parts_.push_back(current);
}

bool Like::Matches(const char* text, size_t len) const {
  // Strip space padding from the fixed-width value.
  while (len > 0 && text[len - 1] == ' ') --len;
  if (parts_.empty()) return true;  // pattern was all '%'
  size_t pos = 0;
  for (size_t p = 0; p < parts_.size(); ++p) {
    const std::string& part = parts_[p];
    if (p == 0 && anchored_start_) {
      if (len < part.size() ||
          std::memcmp(text, part.data(), part.size()) != 0) {
        return false;
      }
      pos = part.size();
      continue;
    }
    // Greedy search for the next occurrence at or after pos.
    bool found = false;
    for (size_t i = pos; i + part.size() <= len; ++i) {
      if (std::memcmp(text + i, part.data(), part.size()) == 0) {
        pos = i + part.size();
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (anchored_end_) {
    const std::string& last = parts_.back();
    if (len < last.size() ||
        std::memcmp(text + (len - last.size()), last.data(), last.size()) !=
            0) {
      return false;
    }
  }
  return true;
}

void Like::Filter(const Block& block, std::vector<uint32_t>* sel) const {
  const uint32_t n = static_cast<uint32_t>(sel->size());
  if (n == 0) return;
  const uint16_t w = expr_->result_type().width();
  std::vector<std::byte> vals(static_cast<size_t>(n) * w);
  expr_->Eval(block, sel->data(), n, vals.data());
  uint32_t kept = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const char* text =
        reinterpret_cast<const char*>(vals.data() + static_cast<size_t>(i) * w);
    if (Matches(text, w) != negated_) (*sel)[kept++] = (*sel)[i];
  }
  sel->resize(kept);
}

std::string Like::ToString() const {
  return expr_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "'";
}

std::unique_ptr<Predicate> Cmp(CompareOp op, std::unique_ptr<Scalar> l,
                               std::unique_ptr<Scalar> r) {
  return std::make_unique<Comparison>(op, std::move(l), std::move(r));
}

std::unique_ptr<Predicate> And(std::vector<std::unique_ptr<Predicate>> ps) {
  return std::make_unique<Conjunction>(std::move(ps));
}

std::unique_ptr<Predicate> Or(std::vector<std::unique_ptr<Predicate>> ps) {
  return std::make_unique<Disjunction>(std::move(ps));
}

std::unique_ptr<Predicate> Not(std::unique_ptr<Predicate> p) {
  return std::make_unique<Negation>(std::move(p));
}

std::unique_ptr<Predicate> BetweenCol(int col, Type type, TypedValue lo,
                                      TypedValue hi) {
  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(Cmp(CompareOp::kGe, Col(col, type), Lit(std::move(lo), type)));
  parts.push_back(Cmp(CompareOp::kLe, Col(col, type), Lit(std::move(hi), type)));
  return And(std::move(parts));
}

}  // namespace uot
