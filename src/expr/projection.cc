#include "expr/projection.h"

#include <cstring>

namespace uot {

Projection::Projection(std::vector<std::unique_ptr<Scalar>> exprs,
                       std::vector<std::string> names)
    : exprs_(std::move(exprs)) {
  UOT_CHECK(exprs_.size() == names.size());
  std::vector<Column> columns;
  columns.reserve(exprs_.size());
  for (size_t i = 0; i < exprs_.size(); ++i) {
    columns.push_back(Column{std::move(names[i]), exprs_[i]->result_type()});
  }
  schema_ = Schema(std::move(columns));
}

void Projection::MaterializeInto(const Block& block,
                                 const std::vector<uint32_t>& rows,
                                 InsertDestination::Writer* writer) const {
  const uint32_t n = static_cast<uint32_t>(rows.size());
  if (n == 0) return;
  // Evaluate each expression into a contiguous column buffer.
  std::vector<std::vector<std::byte>> cols(exprs_.size());
  for (size_t e = 0; e < exprs_.size(); ++e) {
    cols[e].resize(static_cast<size_t>(n) * exprs_[e]->result_type().width());
    exprs_[e]->Eval(block, rows.data(), n, cols[e].data());
  }
  // Stitch packed rows and append.
  std::vector<std::byte> row(schema_.row_width());
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t e = 0; e < exprs_.size(); ++e) {
      const uint16_t w = exprs_[e]->result_type().width();
      std::memcpy(row.data() + schema_.offset(static_cast<int>(e)),
                  cols[e].data() + static_cast<size_t>(i) * w, w);
    }
    writer->AppendRow(row.data());
  }
}

void Projection::MaterializeIntoBlock(const Block& block,
                                      const uint32_t* rows, uint32_t n,
                                      Block* out) const {
  if (n == 0) return;
  std::vector<std::vector<std::byte>> cols(exprs_.size());
  for (size_t e = 0; e < exprs_.size(); ++e) {
    cols[e].resize(static_cast<size_t>(n) * exprs_[e]->result_type().width());
    exprs_[e]->Eval(block, rows, n, cols[e].data());
  }
  std::vector<std::byte> row(schema_.row_width());
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t e = 0; e < exprs_.size(); ++e) {
      const uint16_t w = exprs_[e]->result_type().width();
      std::memcpy(row.data() + schema_.offset(static_cast<int>(e)),
                  cols[e].data() + static_cast<size_t>(i) * w, w);
    }
    UOT_CHECK(out->AppendRow(row.data()));  // caller sized the scratch
  }
}

std::unique_ptr<Projection> Projection::Identity(
    const Schema& input, const std::vector<int>& cols) {
  std::vector<std::unique_ptr<Scalar>> exprs;
  std::vector<std::string> names;
  exprs.reserve(cols.size());
  names.reserve(cols.size());
  for (int c : cols) {
    exprs.push_back(Col(c, input.column(c).type));
    names.push_back(input.column(c).name);
  }
  return std::make_unique<Projection>(std::move(exprs), std::move(names));
}

}  // namespace uot
