#ifndef UOT_EXPR_PREDICATE_H_
#define UOT_EXPR_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expression.h"

namespace uot {

/// A boolean expression evaluated over a block via selection vectors.
///
/// `Filter` receives a sorted selection vector and removes the rows that do
/// not satisfy the predicate (keeping order). Conjunctions therefore apply
/// cheapest-first filters on ever-shrinking vectors, the standard vectorized
/// style.
class Predicate {
 public:
  virtual ~Predicate() = default;

  virtual void Filter(const Block& block, std::vector<uint32_t>* sel) const = 0;

  virtual std::string ToString() const = 0;

  /// Convenience: selection vector of all rows of `block` passing this
  /// predicate.
  std::vector<uint32_t> FilterAll(const Block& block) const;
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Numeric comparison kernel selection (a process-wide A/B switch, like
/// JoinKernelConfig for the join kernels):
///  - kScalar: the historical branchy compaction loop
///    (`if (cmp) sel[kept++] = sel[i]`) — one hard-to-predict branch per
///    row at moderate selectivities.
///  - kBranchFree: unconditional-store compaction
///    (`sel[kept] = sel[i]; kept += cmp`) — no data-dependent branches, so
///    the compiler can auto-vectorize the compare and the loop never
///    mispredicts. With a literal operand the constant is hoisted out of
///    the loop instead of materialized per row.
/// Both kernels keep rows in identical order, so flipping the switch is a
/// pure A/B comparison (asserted by expr_test).
enum class CompareKernel : uint8_t { kScalar = 0, kBranchFree = 1 };

/// Sets/reads the process-wide comparison kernel (atomic; safe to flip
/// between queries, takes effect on the next Filter call).
void SetCompareKernel(CompareKernel kernel);
CompareKernel GetCompareKernel();

/// `left op right`. Numeric operands are compared as doubles; CHAR operands
/// are compared bytewise (both sides must have equal widths).
class Comparison final : public Predicate {
 public:
  Comparison(CompareOp op, std::unique_ptr<Scalar> left,
             std::unique_ptr<Scalar> right);

  void Filter(const Block& block, std::vector<uint32_t>* sel) const override;
  std::string ToString() const override;

 private:
  const CompareOp op_;
  const std::unique_ptr<Scalar> left_;
  const std::unique_ptr<Scalar> right_;
  const bool is_char_;
  /// Right operand is a numeric literal: the kernels hoist the constant
  /// out of the row loop instead of materializing it per row.
  const bool rhs_is_literal_;
};

/// AND of child predicates, applied in order.
class Conjunction final : public Predicate {
 public:
  explicit Conjunction(std::vector<std::unique_ptr<Predicate>> children)
      : children_(std::move(children)) {}

  void Filter(const Block& block, std::vector<uint32_t>* sel) const override;
  std::string ToString() const override;

 private:
  const std::vector<std::unique_ptr<Predicate>> children_;
};

/// OR of child predicates (union of their selections).
class Disjunction final : public Predicate {
 public:
  explicit Disjunction(std::vector<std::unique_ptr<Predicate>> children)
      : children_(std::move(children)) {}

  void Filter(const Block& block, std::vector<uint32_t>* sel) const override;
  std::string ToString() const override;

 private:
  const std::vector<std::unique_ptr<Predicate>> children_;
};

/// NOT child.
class Negation final : public Predicate {
 public:
  explicit Negation(std::unique_ptr<Predicate> child)
      : child_(std::move(child)) {}

  void Filter(const Block& block, std::vector<uint32_t>* sel) const override;
  std::string ToString() const override;

 private:
  const std::unique_ptr<Predicate> child_;
};

/// `expr IN (v1, v2, ...)` for small literal sets (linear membership scan).
class InList final : public Predicate {
 public:
  InList(std::unique_ptr<Scalar> expr, std::vector<TypedValue> values);

  void Filter(const Block& block, std::vector<uint32_t>* sel) const override;
  std::string ToString() const override;

 private:
  const std::unique_ptr<Scalar> expr_;
  const std::vector<TypedValue> values_;
  std::vector<std::vector<std::byte>> packed_;  // one packed value each
};

/// SQL LIKE over a CHAR expression, supporting '%' wildcards only (all the
/// paper's TPC-H patterns — 'PROMO%', '%special%requests%' — use only '%').
class Like final : public Predicate {
 public:
  /// `negated` implements NOT LIKE.
  Like(std::unique_ptr<Scalar> expr, std::string pattern, bool negated);

  void Filter(const Block& block, std::vector<uint32_t>* sel) const override;
  std::string ToString() const override;

  /// Exposed for testing: true if `text` (space padding stripped) matches.
  bool Matches(const char* text, size_t len) const;

 private:
  const std::unique_ptr<Scalar> expr_;
  const std::string pattern_;
  const bool negated_;
  bool anchored_start_ = false;
  bool anchored_end_ = false;
  std::vector<std::string> parts_;  // literal segments between '%'s
};

/// Always-true predicate (an unfiltered scan).
class TruePredicate final : public Predicate {
 public:
  void Filter(const Block& block, std::vector<uint32_t>* sel) const override {
    (void)block;
    (void)sel;
  }
  std::string ToString() const override { return "TRUE"; }
};

// ---- convenience factories ----

std::unique_ptr<Predicate> Cmp(CompareOp op, std::unique_ptr<Scalar> l,
                               std::unique_ptr<Scalar> r);
std::unique_ptr<Predicate> And(std::vector<std::unique_ptr<Predicate>> ps);
std::unique_ptr<Predicate> Or(std::vector<std::unique_ptr<Predicate>> ps);
std::unique_ptr<Predicate> Not(std::unique_ptr<Predicate> p);
/// `lo <= expr AND expr <= hi` over a fresh copy of the column reference.
std::unique_ptr<Predicate> BetweenCol(int col, Type type, TypedValue lo,
                                      TypedValue hi);

}  // namespace uot

#endif  // UOT_EXPR_PREDICATE_H_
