#include "expr/expression.h"

#include <algorithm>
#include <cstring>

#include "expr/predicate.h"
#include "types/date.h"
#include "util/scratch_arena.h"

namespace uot {

void ColumnRef::Eval(const Block& block, const uint32_t* rows, uint32_t n,
                     std::byte* out) const {
  UOT_DCHECK(block.schema().column(col_).type == type_);
  const ColumnAccess access = block.Column(col_);
  const uint16_t w = type_.width();
  switch (w) {
    case 4:
      for (uint32_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 4u, access.at(rows[i]), 4);
      }
      return;
    case 8:
      for (uint32_t i = 0; i < n; ++i) {
        std::memcpy(out + i * 8u, access.at(rows[i]), 8);
      }
      return;
    default:
      for (uint32_t i = 0; i < n; ++i) {
        std::memcpy(out + static_cast<size_t>(i) * w, access.at(rows[i]), w);
      }
  }
}

std::string ColumnRef::ToString() const {
  return "$" + std::to_string(col_);
}

Literal::Literal(TypedValue value, Type type)
    : value_(std::move(value)), type_(type), packed_(type.width()) {
  value_.CopyTo(type_, packed_.data());
}

void Literal::Eval(const Block& block, const uint32_t* rows, uint32_t n,
                   std::byte* out) const {
  (void)block;
  (void)rows;
  const uint16_t w = type_.width();
  for (uint32_t i = 0; i < n; ++i) {
    std::memcpy(out + static_cast<size_t>(i) * w, packed_.data(), w);
  }
}

std::string Literal::ToString() const { return value_.ToString(); }

Arithmetic::Arithmetic(ArithmeticOp op, std::unique_ptr<Scalar> left,
                       std::unique_ptr<Scalar> right)
    : op_(op), left_(std::move(left)), right_(std::move(right)) {
  UOT_CHECK(left_->result_type().IsNumeric());
  UOT_CHECK(right_->result_type().IsNumeric());
}

void Arithmetic::Eval(const Block& block, const uint32_t* rows, uint32_t n,
                      std::byte* out) const {
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(&arena);
  double* lhs = arena.AllocArray<double>(n);
  double* rhs = arena.AllocArray<double>(n);
  EvalAsDouble(*left_, block, rows, n, lhs);
  EvalAsDouble(*right_, block, rows, n, rhs);
  double* result = reinterpret_cast<double*>(out);
  switch (op_) {
    case ArithmeticOp::kAdd:
      for (uint32_t i = 0; i < n; ++i) result[i] = lhs[i] + rhs[i];
      return;
    case ArithmeticOp::kSubtract:
      for (uint32_t i = 0; i < n; ++i) result[i] = lhs[i] - rhs[i];
      return;
    case ArithmeticOp::kMultiply:
      for (uint32_t i = 0; i < n; ++i) result[i] = lhs[i] * rhs[i];
      return;
    case ArithmeticOp::kDivide:
      for (uint32_t i = 0; i < n; ++i) result[i] = lhs[i] / rhs[i];
      return;
  }
}

std::string Arithmetic::ToString() const {
  static constexpr const char* kOps[] = {" + ", " - ", " * ", " / "};
  return "(" + left_->ToString() + kOps[static_cast<int>(op_)] +
         right_->ToString() + ")";
}

CaseWhen::CaseWhen(std::unique_ptr<Predicate> condition,
                   std::unique_ptr<Scalar> then_value,
                   std::unique_ptr<Scalar> else_value)
    : condition_(std::move(condition)),
      then_value_(std::move(then_value)),
      else_value_(std::move(else_value)) {
  UOT_CHECK(then_value_->result_type().IsNumeric());
  UOT_CHECK(else_value_->result_type().IsNumeric());
}

CaseWhen::~CaseWhen() = default;

void CaseWhen::Eval(const Block& block, const uint32_t* rows, uint32_t n,
                    std::byte* out) const {
  // Evaluate both branches, then overwrite the matching rows with the THEN
  // values (matching rows come back as a sorted subsequence of `rows`).
  double* result = reinterpret_cast<double*>(out);
  EvalAsDouble(*else_value_, block, rows, n, result);
  // Filter requires a real vector (in-place compaction), so the selection
  // scratch is a pooled thread-local vector rather than arena bytes; the
  // pool hands nested evaluations distinct vectors.
  ScratchSelVector matched;
  matched->assign(rows, rows + n);
  condition_->Filter(block, matched.get());
  if (matched->empty()) return;
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(&arena);
  double* then_vals = arena.AllocArray<double>(matched->size());
  EvalAsDouble(*then_value_, block, matched->data(),
               static_cast<uint32_t>(matched->size()), then_vals);
  size_t m = 0;
  for (uint32_t i = 0; i < n && m < matched->size(); ++i) {
    if (rows[i] == (*matched)[m]) {
      result[i] = then_vals[m];
      ++m;
    }
  }
  UOT_DCHECK(m == matched->size());
}

std::string CaseWhen::ToString() const {
  return "CASE WHEN " + condition_->ToString() + " THEN " +
         then_value_->ToString() + " ELSE " + else_value_->ToString() +
         " END";
}

Substring::Substring(std::unique_ptr<Scalar> child, int start, int len)
    : child_(std::move(child)), start_(start), len_(len) {
  UOT_CHECK(child_->result_type().id() == TypeId::kChar);
  UOT_CHECK(start_ >= 0 && len_ > 0);
  UOT_CHECK(start_ + len_ <= child_->result_type().width());
}

void Substring::Eval(const Block& block, const uint32_t* rows, uint32_t n,
                     std::byte* out) const {
  const uint16_t w = child_->result_type().width();
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(&arena);
  std::byte* tmp = arena.Alloc(static_cast<size_t>(n) * w);
  child_->Eval(block, rows, n, tmp);
  for (uint32_t i = 0; i < n; ++i) {
    std::memcpy(out + static_cast<size_t>(i) * len_,
                tmp + static_cast<size_t>(i) * w + start_,
                static_cast<size_t>(len_));
  }
}

std::string Substring::ToString() const {
  return "SUBSTRING(" + child_->ToString() + ", " +
         std::to_string(start_ + 1) + ", " + std::to_string(len_) + ")";
}

ExtractYear::ExtractYear(std::unique_ptr<Scalar> child)
    : child_(std::move(child)) {
  UOT_CHECK(child_->result_type().id() == TypeId::kDate);
}

void ExtractYear::Eval(const Block& block, const uint32_t* rows, uint32_t n,
                       std::byte* out) const {
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(&arena);
  std::byte* dates = arena.Alloc(static_cast<size_t>(n) * 4);
  child_->Eval(block, rows, n, dates);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t days;
    std::memcpy(&days, dates + i * 4u, 4);
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    const int32_t year = y;
    std::memcpy(out + i * 4u, &year, 4);
  }
}

std::string ExtractYear::ToString() const {
  return "YEAR(" + child_->ToString() + ")";
}

void EvalAsDouble(const Scalar& scalar, const Block& block,
                  const uint32_t* rows, uint32_t n, double* out) {
  const Type type = scalar.result_type();
  UOT_CHECK(type.IsNumeric());
  if (type.id() == TypeId::kDouble) {
    scalar.Eval(block, rows, n, reinterpret_cast<std::byte*>(out));
    return;
  }
  // Fast path: direct strided widening for column references avoids the
  // intermediate packed buffer.
  if (const ColumnRef* ref = scalar.as_column_ref()) {
    const ColumnAccess access = block.Column(ref->col());
    if (type.width() == 4) {
      for (uint32_t i = 0; i < n; ++i) {
        int32_t v;
        std::memcpy(&v, access.at(rows[i]), 4);
        out[i] = static_cast<double>(v);
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        int64_t v;
        std::memcpy(&v, access.at(rows[i]), 8);
        out[i] = static_cast<double>(v);
      }
    }
    return;
  }
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(&arena);
  std::byte* tmp = arena.Alloc(static_cast<size_t>(n) * type.width());
  scalar.Eval(block, rows, n, tmp);
  if (type.width() == 4) {
    for (uint32_t i = 0; i < n; ++i) {
      int32_t v;
      std::memcpy(&v, tmp + i * 4u, 4);
      out[i] = static_cast<double>(v);
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      int64_t v;
      std::memcpy(&v, tmp + i * 8u, 8);
      out[i] = static_cast<double>(v);
    }
  }
}

std::unique_ptr<Scalar> Col(int col, Type type) {
  return std::make_unique<ColumnRef>(col, type);
}
std::unique_ptr<Scalar> Lit(TypedValue value, Type type) {
  return std::make_unique<Literal>(std::move(value), type);
}
std::unique_ptr<Scalar> LitInt32(int32_t v) {
  return Lit(TypedValue::Int32(v), Type::Int32());
}
std::unique_ptr<Scalar> LitInt64(int64_t v) {
  return Lit(TypedValue::Int64(v), Type::Int64());
}
std::unique_ptr<Scalar> LitDouble(double v) {
  return Lit(TypedValue::Double(v), Type::Double());
}
std::unique_ptr<Scalar> LitDate(int32_t days) {
  return Lit(TypedValue::Date(days), Type::Date());
}
std::unique_ptr<Scalar> Add(std::unique_ptr<Scalar> l,
                            std::unique_ptr<Scalar> r) {
  return std::make_unique<Arithmetic>(ArithmeticOp::kAdd, std::move(l),
                                      std::move(r));
}
std::unique_ptr<Scalar> Sub(std::unique_ptr<Scalar> l,
                            std::unique_ptr<Scalar> r) {
  return std::make_unique<Arithmetic>(ArithmeticOp::kSubtract, std::move(l),
                                      std::move(r));
}
std::unique_ptr<Scalar> Mul(std::unique_ptr<Scalar> l,
                            std::unique_ptr<Scalar> r) {
  return std::make_unique<Arithmetic>(ArithmeticOp::kMultiply, std::move(l),
                                      std::move(r));
}
std::unique_ptr<Scalar> Div(std::unique_ptr<Scalar> l,
                            std::unique_ptr<Scalar> r) {
  return std::make_unique<Arithmetic>(ArithmeticOp::kDivide, std::move(l),
                                      std::move(r));
}

}  // namespace uot
