#ifndef UOT_EXPR_EXPRESSION_H_
#define UOT_EXPR_EXPRESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/block.h"
#include "types/typed_value.h"

namespace uot {

class ColumnRef;

/// A scalar expression evaluated over the rows of one block.
///
/// Evaluation is vectorized: given a selection vector (row indices into the
/// block), an expression writes one packed value of `result_type()` per
/// selected row into a contiguous output buffer. This is the batch-at-a-time
/// processing style of block-based engines (paper Sections II/III).
class Scalar {
 public:
  virtual ~Scalar() = default;

  /// The (context-free) result type; expressions are bound to their input
  /// schema at plan-construction time.
  virtual Type result_type() const = 0;

  /// Evaluates rows `rows[0..n)` of `block`, writing `n` packed values of
  /// width `result_type().width()` to `out`.
  virtual void Eval(const Block& block, const uint32_t* rows, uint32_t n,
                    std::byte* out) const = 0;

  /// Non-null iff this expression is a bare column reference. A virtual
  /// accessor instead of `dynamic_cast` on the hot EvalAsDouble path: the
  /// RTTI lookup cost scales with class-hierarchy depth, a vtable call is
  /// constant.
  virtual const ColumnRef* as_column_ref() const { return nullptr; }

  virtual std::string ToString() const = 0;
};

/// References column `col` of the input block.
class ColumnRef final : public Scalar {
 public:
  /// `type` must match the input schema's column type.
  ColumnRef(int col, Type type) : col_(col), type_(type) {}

  int col() const { return col_; }
  Type result_type() const override { return type_; }
  void Eval(const Block& block, const uint32_t* rows, uint32_t n,
            std::byte* out) const override;
  const ColumnRef* as_column_ref() const override { return this; }
  std::string ToString() const override;

 private:
  const int col_;
  const Type type_;
};

/// A constant.
class Literal final : public Scalar {
 public:
  /// `type` controls the packed representation (notably CHAR width).
  Literal(TypedValue value, Type type);

  const TypedValue& value() const { return value_; }
  Type result_type() const override { return type_; }
  void Eval(const Block& block, const uint32_t* rows, uint32_t n,
            std::byte* out) const override;
  std::string ToString() const override;

 private:
  const TypedValue value_;
  const Type type_;
  std::vector<std::byte> packed_;
};

enum class ArithmeticOp : uint8_t { kAdd, kSubtract, kMultiply, kDivide };

/// Binary arithmetic over numeric operands. Results are computed and stored
/// as DOUBLE (sufficient for the paper's workloads, where arithmetic appears
/// only in price expressions such as l_extendedprice * (1 - l_discount)).
class Arithmetic final : public Scalar {
 public:
  Arithmetic(ArithmeticOp op, std::unique_ptr<Scalar> left,
             std::unique_ptr<Scalar> right);

  Type result_type() const override { return Type::Double(); }
  void Eval(const Block& block, const uint32_t* rows, uint32_t n,
            std::byte* out) const override;
  std::string ToString() const override;

 private:
  const ArithmeticOp op_;
  const std::unique_ptr<Scalar> left_;
  const std::unique_ptr<Scalar> right_;
};

class Predicate;  // predicate.h includes this header

/// CASE WHEN <pred> THEN <a> ELSE <b> END over numeric branches (stored as
/// DOUBLE). Enables the TPC-H pivot aggregates, e.g. Q12's
/// sum(case when o_orderpriority in ('1-URGENT','2-HIGH') then 1 else 0).
class CaseWhen final : public Scalar {
 public:
  CaseWhen(std::unique_ptr<Predicate> condition,
           std::unique_ptr<Scalar> then_value,
           std::unique_ptr<Scalar> else_value);
  ~CaseWhen() override;

  Type result_type() const override { return Type::Double(); }
  void Eval(const Block& block, const uint32_t* rows, uint32_t n,
            std::byte* out) const override;
  std::string ToString() const override;

 private:
  const std::unique_ptr<Predicate> condition_;
  const std::unique_ptr<Scalar> then_value_;
  const std::unique_ptr<Scalar> else_value_;
};

/// SUBSTRING over a CHAR operand: a fixed `[start, start+len)` byte slice,
/// producing CHAR(len). Covers TPC-H patterns like substring(c_phone, 1, 2)
/// and grouping on priority-class prefixes.
class Substring final : public Scalar {
 public:
  /// `start` is a 0-based byte offset into the operand's fixed-width value.
  Substring(std::unique_ptr<Scalar> child, int start, int len);

  Type result_type() const override {
    return Type::Char(static_cast<uint16_t>(len_));
  }
  void Eval(const Block& block, const uint32_t* rows, uint32_t n,
            std::byte* out) const override;
  std::string ToString() const override;

 private:
  const std::unique_ptr<Scalar> child_;
  const int start_;
  const int len_;
};

/// EXTRACT(YEAR FROM date_expr): maps a DATE operand to an INT32 year.
/// Years are grouping keys in TPC-H Q7/Q8-style queries.
class ExtractYear final : public Scalar {
 public:
  explicit ExtractYear(std::unique_ptr<Scalar> child);

  Type result_type() const override { return Type::Int32(); }
  void Eval(const Block& block, const uint32_t* rows, uint32_t n,
            std::byte* out) const override;
  std::string ToString() const override;

 private:
  const std::unique_ptr<Scalar> child_;
};

/// Evaluates any numeric scalar into doubles (widening integral results).
/// Shared by arithmetic, comparisons and aggregates.
void EvalAsDouble(const Scalar& scalar, const Block& block,
                  const uint32_t* rows, uint32_t n, double* out);

// ---- convenience factories ----

std::unique_ptr<Scalar> Col(int col, Type type);
std::unique_ptr<Scalar> Lit(TypedValue value, Type type);
/// Numeric literal helpers with the natural type.
std::unique_ptr<Scalar> LitInt32(int32_t v);
std::unique_ptr<Scalar> LitInt64(int64_t v);
std::unique_ptr<Scalar> LitDouble(double v);
std::unique_ptr<Scalar> LitDate(int32_t days);
std::unique_ptr<Scalar> Add(std::unique_ptr<Scalar> l,
                            std::unique_ptr<Scalar> r);
std::unique_ptr<Scalar> Sub(std::unique_ptr<Scalar> l,
                            std::unique_ptr<Scalar> r);
std::unique_ptr<Scalar> Mul(std::unique_ptr<Scalar> l,
                            std::unique_ptr<Scalar> r);
std::unique_ptr<Scalar> Div(std::unique_ptr<Scalar> l,
                            std::unique_ptr<Scalar> r);

}  // namespace uot

#endif  // UOT_EXPR_EXPRESSION_H_
