#ifndef UOT_EXPR_PROJECTION_H_
#define UOT_EXPR_PROJECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expression.h"
#include "storage/insert_destination.h"

namespace uot {

/// A list of output expressions with names: the projection applied by a
/// producer operator before materializing its output block (the
/// "projectivity" knob of paper Section VI-A).
class Projection {
 public:
  Projection(std::vector<std::unique_ptr<Scalar>> exprs,
             std::vector<std::string> names);
  UOT_DISALLOW_COPY_AND_ASSIGN(Projection);

  const Schema& output_schema() const { return schema_; }
  int num_exprs() const { return static_cast<int>(exprs_.size()); }
  const Scalar& expr(int i) const { return *exprs_[static_cast<size_t>(i)]; }

  /// Materializes the selected rows of `block` into `writer`, evaluating
  /// every output expression column-at-a-time and then stitching packed
  /// rows.
  void MaterializeInto(const Block& block, const std::vector<uint32_t>& rows,
                       InsertDestination::Writer* writer) const;

  /// Same evaluation, but appends the packed rows to a raw block (a fused
  /// pipeline's transient scratch granule) instead of an insert
  /// destination. The caller must have sized `out` to hold all `n` rows
  /// (CHECK-fails on overflow); `out->schema()` must equal
  /// output_schema().
  void MaterializeIntoBlock(const Block& block, const uint32_t* rows,
                            uint32_t n, Block* out) const;

  /// Convenience: a projection that passes through columns
  /// `cols` of `input` unchanged (names preserved).
  static std::unique_ptr<Projection> Identity(const Schema& input,
                                              const std::vector<int>& cols);

 private:
  std::vector<std::unique_ptr<Scalar>> exprs_;
  Schema schema_;
};

}  // namespace uot

#endif  // UOT_EXPR_PROJECTION_H_
