#include "scheduler/execution_stats.h"

#include <algorithm>
#include <cstdio>

namespace uot {

double ExecutionStats::AverageDop(int op) const {
  // Sweep the +1/-1 events of this operator's work orders.
  std::vector<std::pair<int64_t, int>> events;
  for (const WorkOrderRecord& r : records) {
    if (r.op != op) continue;
    events.emplace_back(r.start_ns, +1);
    events.emplace_back(r.end_ns, -1);
  }
  if (events.empty()) return 0.0;
  std::sort(events.begin(), events.end());
  int64_t busy_weighted = 0;
  int64_t span_start = events.front().first;
  int64_t prev = span_start;
  int running = 0;
  for (const auto& [ts, delta] : events) {
    busy_weighted += running * (ts - prev);
    running += delta;
    prev = ts;
  }
  // Zero span (all records share one timestamp, possible on coarse clocks):
  // there is no interval to integrate over, so the DOP is defined as 0
  // rather than NaN or an arbitrary count.
  const int64_t span = prev - span_start;
  if (span <= 0) return 0.0;
  return static_cast<double>(busy_weighted) / static_cast<double>(span);
}

std::string ExecutionStats::ToString() const {
  std::string out;
  char line[256];
  if (!config_summary.empty()) out += config_summary + "\n";
  std::snprintf(line, sizeof(line), "query: %.3f ms, %zu work orders\n",
                QueryMillis(), records.size());
  out += line;
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorStats& s = operators[i];
    std::snprintf(line, sizeof(line),
                  "  [%zu] %-24s tasks=%-6llu total=%9.3f ms avg=%8.4f ms "
                  "span=%9.3f ms\n",
                  i, s.name.c_str(),
                  static_cast<unsigned long long>(s.num_work_orders),
                  s.total_task_ms(), s.avg_task_ms(), s.span_ms());
    out += line;
  }
  out += "  memory peaks:";
  for (int c = 0; c < kNumMemoryCategories; ++c) {
    std::snprintf(line, sizeof(line), " %s=%lld B (%.2f MiB)",
                  MemoryCategoryName(static_cast<MemoryCategory>(c)),
                  static_cast<long long>(peak_bytes[c]),
                  static_cast<double>(peak_bytes[c]) / (1024.0 * 1024.0));
    out += line;
  }
  out += "\n";
  if (!edge_transfers.empty()) {
    out += "  edge transfers:";
    for (size_t e = 0; e < edge_transfers.size(); ++e) {
      std::snprintf(line, sizeof(line), " [%zu]=%llu", e,
                    static_cast<unsigned long long>(edge_transfers[e]));
      out += line;
    }
    out += "\n";
  }
  if (budget_deferrals > 0 || budget_stalls > 0 || uot_adaptations > 0) {
    std::snprintf(line, sizeof(line),
                  "  budget deferrals=%llu stalls=%llu, uot adaptations=%llu"
                  "\n",
                  static_cast<unsigned long long>(budget_deferrals),
                  static_cast<unsigned long long>(budget_stalls),
                  static_cast<unsigned long long>(uot_adaptations));
    out += line;
  }
  return out;
}

}  // namespace uot
