#include "scheduler/uot_policy.h"

// Header-only implementation; this file anchors the translation unit.
