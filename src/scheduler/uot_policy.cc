#include "scheduler/uot_policy.h"

#include "scheduler/scheduler.h"

namespace uot {

std::string ExecConfig::ToString() const {
  std::string out = "ExecConfig{workers=" + std::to_string(num_workers);
  out += ", uot=";
  out += uot_policy != nullptr ? uot_policy->ToString()
                               : FixedUotPolicy(uot).ToString();
  out += ", join=" + join.ToString();
  if (max_concurrent_per_op > 0) {
    out += ", max_concurrent_per_op=" + std::to_string(max_concurrent_per_op);
  }
  if (memory_budget_bytes > 0) {
    out += ", budget=" + std::to_string(memory_budget_bytes) + "B";
  }
  if (!drop_consumed_blocks) out += ", keep_consumed_blocks";
  if (pipeline_mode != PipelineMode::kVectorized) {
    out += ", pipeline_mode=";
    out += PipelineModeName(pipeline_mode);
  }
  if (!metrics_prefix.empty()) out += ", metrics_prefix=" + metrics_prefix;
  if (profile) out += ", profile";
  out += "}";
  return out;
}

}  // namespace uot
