#ifndef UOT_SCHEDULER_QUERY_SESSION_H_
#define UOT_SCHEDULER_QUERY_SESSION_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fused/fused_pipeline.h"
#include "plan/query_plan.h"
#include "scheduler/execution_stats.h"
#include "scheduler/scheduler.h"
#include "util/thread_safe_queue.h"

namespace uot {

namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

class QuerySession;

/// Where a session's ready work orders go. Implemented by Engine
/// (exec/engine.h), whose shared queue feeds the persistent worker pool;
/// kept abstract so the scheduler layer does not depend on the exec layer.
class WorkOrderSink {
 public:
  virtual ~WorkOrderSink() = default;

  /// Enqueues a work order owned by `session`. High-priority work orders
  /// (pipeline consumers) overtake queued leaf work across every session
  /// sharing the sink. Returns false iff the sink has shut down and will
  /// never execute the work order.
  virtual bool SubmitWork(QuerySession* session,
                          std::unique_ptr<WorkOrder> work_order,
                          bool high_priority) = 0;

  /// Current depth of the shared work-order queue (observability only).
  virtual size_t WorkQueueDepth() const = 0;
};

/// The per-query half of the execution engine (paper Section III): all
/// scheduling state of one running query — operator/edge states, the
/// deferred-work-order queue, statistics, observability handles — plus the
/// coordinating event loop.
///
/// `Run()` executes the coordinator on the calling thread: it reacts to
/// execution events routed back from the worker pool through the session's
/// own event queue:
///  - a producer completed an output block -> accumulate it on each
///    outgoing streaming edge and transfer to the consumer once UoT blocks
///    are available (for the whole-table UoT, only when the producer
///    finished);
///  - a work order finished -> account it, drop consumed transient blocks,
///    release capped/deferred work orders, and when the operator is fully
///    done, flush its partial output blocks and unblock dependents.
///
/// Work orders are executed by pool workers owned by the Engine; many
/// sessions run concurrently on one pool, each tagged with its own
/// `query_id` and (optionally) its own trace/metrics sinks.
class QuerySession {
 public:
  /// `pool_workers` is the size of the worker pool behind `sink` (used for
  /// budget pacing and trace thread naming). `query_id` tags this
  /// session's stats and trace events.
  QuerySession(QueryPlan* plan, ExecConfig config, WorkOrderSink* sink,
               int pool_workers, uint64_t query_id);
  UOT_DISALLOW_COPY_AND_ASSIGN(QuerySession);

  /// Executes the plan to completion and returns the collected statistics.
  /// Runs the coordinator loop on the calling thread; must be called at
  /// most once.
  ExecutionStats Run();

  /// Executes `work_order` on behalf of this session and posts the
  /// completion event to the session's event queue. Called by pool worker
  /// threads, concurrently with Run().
  void ExecuteWorkOrder(std::unique_ptr<WorkOrder> work_order, int worker_id);

  uint64_t query_id() const { return query_id_; }

 private:
  struct Event {
    enum class Kind { kBlockReady, kWorkOrderDone, kOperatorFlushed };
    Kind kind;
    int op = -1;
    Block* block = nullptr;
    std::vector<Block*> consumed;  // transient input blocks, for dropping
    WorkOrderRecord record;
  };

  struct OpState {
    int blocking_deps = 0;
    bool is_consumer = false;  // fed by a streaming edge
    bool done_generating = false;
    bool finishing = false;
    bool finished = false;
    uint64_t generated = 0;
    uint64_t completed = 0;
    int running = 0;
    std::vector<std::unique_ptr<WorkOrder>> held;  // over the concurrency cap
  };

  struct EdgeState {
    std::vector<Block*> buffer;
    uint64_t transfers = 0;
    uint64_t produced = 0;  // total blocks completed by the producer
    // Last UoT value the policy resolved for this edge (0 = never
    // consulted; UotPolicy::kWholeTable = materializing). Changes are
    // counted/traced as adaptations.
    uint64_t effective_uot = 0;
    // Measured transfer volume (EdgeStats): payload bytes follow
    // block rows x the producer schema's row width, cached per edge at
    // Run() start.
    uint64_t row_width = 0;
    uint64_t buffered_bytes = 0;  // payload bytes awaiting transfer
    uint64_t blocks_delivered = 0;
    uint64_t bytes_delivered = 0;
    uint64_t max_buffered_bytes = 0;
    uint64_t max_buffered_blocks = 0;
  };

  struct DeferredWorkOrder {
    int op;
    bool counted;  // deferred over budget (counted/traced), not just paced
    std::unique_ptr<WorkOrder> work_order;
  };

  /// Resolves observability sinks from the config and pre-registers the
  /// session's metric handles so hot-path updates are lock-free.
  void InitObservability();
  /// The session-tagged metric name (config.metrics_prefix + name).
  std::string MetricName(const char* name) const;
  /// Samples queue-depth gauges/counter tracks (observability only).
  void SampleQueueDepths();
  /// Consults the UoT policy layer for `edge_index` (plan annotation >
  /// config.uot_policy > FixedUotPolicy(config.uot)) and returns the
  /// blocks-per-transfer threshold. Records effective-UoT gauges/counter
  /// tracks and counts/traces mid-query changes as adaptations.
  uint64_t ResolveEdgeUot(int edge_index);
  /// Appends to the profile's budget-event log (and mirrors the existing
  /// trace instants); no-op unless config.profile is set.
  void RecordBudgetEvent(int op, bool release, int64_t tracked_bytes);
  /// Builds the session's fused pipelines (PipelineMode::kFused only):
  /// plan annotations when present (each re-validated and required to be
  /// disjoint; invalid ones fall back to vectorized execution), otherwise
  /// PipelineFuser auto-detection. Marks interior edges fused.
  void SetupFusedChains();
  /// The fused chain whose head is `op`, or nullptr.
  fused::FusedChain* FusedChainHeadedBy(int op);
  /// The chain head `op`'s work is folded into, or -1 when `op` is not a
  /// non-head member of a fused chain. Blocking edges into such members
  /// also gate the head: a fused work order probes every member's build.
  int FusedHeadOf(int op) const;
  void TryGenerate(int op);
  void Dispatch(int op, std::unique_ptr<WorkOrder> wo);
  /// Re-dispatches budget-deferred work orders when allowed.
  void ReleaseDeferred();
  /// Hands a work order to the sink (consumers at high priority).
  void SubmitToPool(const OpState& state, std::unique_ptr<WorkOrder> wo);
  void CheckOperatorDone(int op);
  void HandleWorkOrderDone(Event* event);
  void HandleBlockReady(int op, Block* block);
  void HandleOperatorFlushed(int op);
  void DeliverEdge(int edge_index, bool final_flush);
  bool AllFinished() const;

  QueryPlan* const plan_;
  const ExecConfig config_;
  WorkOrderSink* const sink_;
  const int pool_workers_;
  const uint64_t query_id_;

  ThreadSafeQueue<Event> event_queue_;

  std::vector<OpState> op_states_;
  std::vector<EdgeState> edge_states_;
  // Per consumer op: the producer output tables whose blocks may be
  // dropped after this op consumes them — one entry per incoming streaming
  // edge whose producer has no other consumer. A consumer with several
  // streaming inputs (e.g. sort-merge join) lists every such producer;
  // consumed blocks are resolved against each in turn.
  std::vector<std::vector<Table*>> droppable_sources_;
  // Fused pipelines of this run (PipelineMode::kFused only; empty
  // otherwise). A chain's interior operators generate no work orders of
  // their own — the head generates fused work orders spanning the whole
  // chain — but keep their normal finish lifecycle, driven by the empty
  // final flush of each interior edge.
  std::vector<std::unique_ptr<fused::FusedChain>> fused_chains_;
  std::vector<int> fused_chain_of_op_;  // per op: chain index or -1
  std::vector<bool> fused_edge_;        // per streaming edge: chain interior
  // Work orders deferred by the memory budget, FIFO.
  std::deque<DeferredWorkOrder> deferred_;
  int total_running_ = 0;
  ExecutionStats stats_;

  // The resolved UoT policy chain: `uot_policy_` points at the config's
  // shared policy, or at `default_policy_` (wrapping the scalar
  // config.uot) when none is set. `edge_pin_` holds per-edge plan
  // annotations (0 = unpinned).
  std::unique_ptr<FixedUotPolicy> default_policy_;
  EdgeUotPolicy* uot_policy_ = nullptr;
  int64_t baseline_tracked_bytes_ = 0;  // tracked bytes at session start
  std::vector<uint64_t> edge_pin_;

  // Observability sinks and pre-resolved metric handles, all null when the
  // corresponding ExecConfig option is unset.
  obs::TraceSession* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* work_order_count_ = nullptr;
  obs::Histogram* work_order_latency_ns_ = nullptr;
  obs::Gauge* work_queue_depth_ = nullptr;
  obs::Gauge* event_queue_depth_ = nullptr;
  obs::Counter* budget_deferrals_ = nullptr;
  obs::Counter* budget_stalls_ = nullptr;
  obs::Counter* uot_adaptations_ = nullptr;
  std::vector<obs::Gauge*> edge_uot_gauge_;
  std::vector<obs::Counter*> edge_uot_adaptations_;
  // Execution context bound to every operator before generation: kernel
  // knobs from the config plus the sinks above, pre-resolved so batched
  // join work orders update counters lock-free.
  OperatorExecContext op_ctx_;
  std::vector<obs::Counter*> op_task_ns_;
  std::vector<obs::Counter*> op_work_orders_;
  std::vector<obs::Counter*> edge_transfers_metric_;
  std::vector<obs::Counter*> edge_blocks_metric_;
};

}  // namespace uot

#endif  // UOT_SCHEDULER_QUERY_SESSION_H_
