#ifndef UOT_SCHEDULER_SCHEDULER_H_
#define UOT_SCHEDULER_SCHEDULER_H_

#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "plan/query_plan.h"
#include "scheduler/execution_stats.h"
#include "scheduler/uot_policy.h"
#include "util/thread_safe_queue.h"

namespace uot {

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TraceSession;
}  // namespace obs

/// Execution configuration for one query run.
struct ExecConfig {
  /// Number of worker threads executing work orders.
  int num_workers = 4;
  /// The unit of transfer applied to every streaming edge.
  UotPolicy uot;
  /// Optional cap on concurrently executing work orders per operator
  /// (0 = unlimited). One of the "sophisticated scheduling policies" the
  /// paper mentions in Section III-C.
  int max_concurrent_per_op = 0;
  /// Drop intermediate blocks once their (single) consumer work order has
  /// executed. This makes temporaries transient, which is what gives the
  /// low-UoT strategy its near-zero intermediate footprint (Table II).
  /// Blocks feeding several consumers are kept.
  bool drop_consumed_blocks = true;
  /// Soft memory budget in bytes (0 = unlimited): while total tracked
  /// memory exceeds it, new work orders are deferred — except that one
  /// work order is always kept in flight so the query progresses. Another
  /// of the paper's Section III-C scheduling policies.
  int64_t memory_budget_bytes = 0;
  /// Optional trace sink (see src/obs/): when set, the scheduler records
  /// typed span/instant/counter events (work orders, UoT transfers, edge
  /// flushes, budget deferrals, queue depths) for Perfetto export. Null
  /// (the default) keeps the hot path at a single pointer check.
  obs::TraceSession* trace = nullptr;
  /// Optional metrics sink: when set, the scheduler maintains named
  /// counters/gauges/histograms (per-operator task time, per-edge
  /// transfers, queue depths, work-order latency distribution).
  obs::MetricsRegistry* metrics = nullptr;
};

/// The query scheduler (paper Section III): a single coordinating loop plus
/// a pool of worker threads.
///
/// Workers execute work orders to completion; the coordinator reacts to
/// execution events:
///  - a producer completed an output block -> accumulate it on each
///    outgoing streaming edge and transfer to the consumer once UoT blocks
///    are available (for the whole-table UoT, only when the producer
///    finished);
///  - a work order finished -> account it, release capped work orders, and
///    when the operator is fully done, flush its partial output blocks and
///    unblock dependent operators.
class Scheduler {
 public:
  Scheduler(QueryPlan* plan, ExecConfig config);
  UOT_DISALLOW_COPY_AND_ASSIGN(Scheduler);

  /// Executes the plan to completion and returns the collected statistics.
  ExecutionStats Run();

 private:
  struct Event {
    enum class Kind { kBlockReady, kWorkOrderDone, kOperatorFlushed };
    Kind kind;
    int op = -1;
    Block* block = nullptr;
    Block* consumed = nullptr;  // transient input block, for dropping
    WorkOrderRecord record;
  };

  struct OpState {
    int blocking_deps = 0;
    bool is_consumer = false;  // fed by a streaming edge
    bool done_generating = false;
    bool finishing = false;
    bool finished = false;
    uint64_t generated = 0;
    uint64_t completed = 0;
    int running = 0;
    std::vector<std::unique_ptr<WorkOrder>> held;  // over the concurrency cap
  };

  struct EdgeState {
    std::vector<Block*> buffer;
    uint64_t transfers = 0;
  };

  void WorkerLoop(int worker_id);
  /// Resolves observability sinks from the config and pre-registers the
  /// scheduler's metric handles so hot-path updates are lock-free.
  void InitObservability();
  /// Samples queue-depth gauges/counter tracks (observability only).
  void SampleQueueDepths();
  void TryGenerate(int op);
  void Dispatch(int op, std::unique_ptr<WorkOrder> wo);
  /// Re-dispatches budget-deferred work orders when allowed.
  void ReleaseDeferred();
  void CheckOperatorDone(int op);
  void HandleBlockReady(int op, Block* block);
  void HandleOperatorFlushed(int op);
  void DeliverEdge(int edge_index, bool final_flush);
  bool AllFinished() const;

  QueryPlan* const plan_;
  const ExecConfig config_;

  ThreadSafeQueue<std::unique_ptr<WorkOrder>> work_queue_;
  ThreadSafeQueue<Event> event_queue_;
  std::vector<std::thread> workers_;

  std::vector<OpState> op_states_;
  std::vector<EdgeState> edge_states_;
  // Per consumer op: the producer output table whose blocks may be dropped
  // after this op consumes them (nullptr when not droppable).
  std::vector<Table*> droppable_source_;
  // Work orders deferred by the memory budget, FIFO.
  std::deque<std::pair<int, std::unique_ptr<WorkOrder>>> deferred_;
  int total_running_ = 0;
  ExecutionStats stats_;

  // Observability sinks and pre-resolved metric handles, all null when the
  // corresponding ExecConfig option is unset.
  obs::TraceSession* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* work_order_count_ = nullptr;
  obs::Histogram* work_order_latency_ns_ = nullptr;
  obs::Gauge* work_queue_depth_ = nullptr;
  obs::Gauge* event_queue_depth_ = nullptr;
  obs::Counter* budget_deferrals_ = nullptr;
  std::vector<obs::Counter*> op_task_ns_;
  std::vector<obs::Counter*> op_work_orders_;
  std::vector<obs::Counter*> edge_transfers_metric_;
  std::vector<obs::Counter*> edge_blocks_metric_;
};

}  // namespace uot

#endif  // UOT_SCHEDULER_SCHEDULER_H_
