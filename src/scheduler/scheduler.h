#ifndef UOT_SCHEDULER_SCHEDULER_H_
#define UOT_SCHEDULER_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "operators/exec_context.h"
#include "scheduler/uot_policy.h"

namespace uot {

namespace obs {
class MetricsRegistry;
class TraceSession;
}  // namespace obs

/// How streaming pipelines between operators execute (the third axis of
/// the UoT spectrum, ROADMAP item 3):
///  - kVectorized: block-at-a-time — every streaming edge materializes
///    blocks that the UoT policy batches into transfers (the paper's
///    subject).
///  - kFused: select→probe(×N)→aggregate/project chains collapse into a
///    single work order per input morsel that walks rows through the whole
///    chain with zero intermediate block materialization (the far-low end
///    of the spectrum). Pipeline-breaking edges (build sides, exchange,
///    sort) stay vectorized; chains come from QueryPlan fused-pipeline
///    annotations or, when the plan carries none, from the PipelineFuser
///    pass at session start. Results are byte-identical to kVectorized.
enum class PipelineMode : uint8_t {
  kVectorized = 0,
  kFused = 1,
};

inline const char* PipelineModeName(PipelineMode mode) {
  return mode == PipelineMode::kFused ? "fused" : "vectorized";
}

/// Execution configuration for one query run.
///
/// Execution itself is split across two layers (paper Section III plus the
/// engine extension, see DESIGN.md):
///  - QuerySession (scheduler/query_session.h) holds the per-query
///    scheduling state and runs the coordinator loop;
///  - Engine (exec/engine.h) owns the persistent worker pool shared by all
///    concurrently running sessions.
/// QueryExecutor::Execute (exec/query_executor.h) wires both together for
/// the common single-query case.
struct ExecConfig {
  /// Number of worker threads executing work orders. For a standalone
  /// QueryExecutor::Execute run this is the size of the (one-query) engine
  /// pool; sessions submitted to a shared Engine use the engine's pool and
  /// ignore this field.
  int num_workers = 4;
  /// The session-default unit of transfer. When `uot_policy` is null the
  /// session wraps this value in a FixedUotPolicy, preserving the
  /// historical scalar semantics: the same UoT on every streaming edge.
  UotPolicy uot;
  /// Optional per-edge UoT policy (shared so one adaptive policy instance
  /// can serve many concurrent sessions). When set, it is consulted on
  /// every block-completion event of every streaming edge and overrides
  /// `uot`. Per-edge plan annotations (QueryPlan::AnnotateEdgeUot) pin an
  /// edge and take precedence over both.
  std::shared_ptr<EdgeUotPolicy> uot_policy;
  /// Optional cap on concurrently executing work orders per operator
  /// (0 = unlimited). One of the "sophisticated scheduling policies" the
  /// paper mentions in Section III-C.
  int max_concurrent_per_op = 0;
  /// Drop intermediate blocks once their (single) consumer work order has
  /// executed. This makes temporaries transient, which is what gives the
  /// low-UoT strategy its near-zero intermediate footprint (Table II).
  /// Blocks feeding several consumers are kept.
  bool drop_consumed_blocks = true;
  /// Hash-join kernel selection and batching knobs (batch size, prefetch
  /// distance). The session binds these to every operator before work-order
  /// generation; the batched and scalar kernels produce byte-identical
  /// output, so flipping `join.kernel` is a pure A/B switch.
  JoinKernelConfig join;
  /// Soft memory budget in bytes (0 = unlimited): while total tracked
  /// memory exceeds it, new work orders are deferred — except that one
  /// work order is always kept in flight so the query progresses. Another
  /// of the paper's Section III-C scheduling policies.
  int64_t memory_budget_bytes = 0;
  /// Optional trace sink (see src/obs/): when set, the session records
  /// typed span/instant/counter events (work orders, UoT transfers, edge
  /// flushes, budget deferrals, queue depths) for Perfetto export. Null
  /// (the default) keeps the hot path at a single pointer check. Give each
  /// concurrent session its own TraceSession so exported traces stay
  /// per-query.
  obs::TraceSession* trace = nullptr;
  /// Optional metrics sink: when set, the session maintains named
  /// counters/gauges/histograms (per-operator task time, per-edge
  /// transfers, queue depths, work-order latency distribution).
  obs::MetricsRegistry* metrics = nullptr;
  /// Prepended to every metric name this session registers (e.g. "q3.").
  /// Lets concurrent sessions share one MetricsRegistry without their
  /// counters colliding; empty (the default) keeps the historical names.
  std::string metrics_prefix;
  /// Collect the per-query profile logs (effective-UoT decision timeline
  /// with causes, budget defer/release events) in ExecutionStats so
  /// obs::QueryProfile can assemble an EXPLAIN-ANALYZE-style report.
  /// Off (the default) keeps the coordinator loop allocation-free; cheap
  /// per-edge integer accounting (EdgeStats) is always collected because
  /// it cannot change transfer behavior.
  bool profile = false;
  /// Pipeline execution mode: vectorized block-at-a-time (default) or
  /// fused single-work-order chains. Fused falls back to vectorized
  /// per-pipeline wherever no fusable chain exists, so it is always safe
  /// to request.
  PipelineMode pipeline_mode = PipelineMode::kVectorized;

  /// One-line summary of the resolved execution configuration (worker
  /// count, effective UoT policy, join kernel, caps and budget) for logs,
  /// traces and test-failure output.
  std::string ToString() const;
};

}  // namespace uot

#endif  // UOT_SCHEDULER_SCHEDULER_H_
