#ifndef UOT_SCHEDULER_UOT_POLICY_H_
#define UOT_SCHEDULER_UOT_POLICY_H_

#include <cstdint>
#include <string>

#include "util/macros.h"

namespace uot {

/// The unit of transfer (UoT): how much producer output accumulates before
/// it is transferred to the consumer operator (paper Sections I-III, Fig 1).
///
/// The granularity is measured in completed output blocks, matching the
/// paper's block-based setting: the smallest UoT is a single block
/// (traditionally called "pipelining"); the largest is the whole
/// intermediate table (traditionally "blocking"/"materializing"). Every
/// value in between is a valid point on the spectrum.
class UotPolicy {
 public:
  /// Sentinel meaning "accumulate the producer's entire output before the
  /// (single) transfer" — the materializing end of the spectrum. It is a
  /// reserved blocks_per_transfer value, not a count: no real edge buffers
  /// UINT64_MAX blocks, so IsWholeTable() is unambiguous.
  static constexpr uint64_t kWholeTable = UINT64_MAX;

  /// Default: smallest UoT (one block per transfer).
  UotPolicy() : blocks_per_transfer_(1) {}
  /// Zero blocks per transfer is meaningless (a transfer must carry at
  /// least one block) and aborts: a policy/chooser bug must fail loudly
  /// instead of silently degrading to pipelining.
  explicit UotPolicy(uint64_t blocks_per_transfer)
      : blocks_per_transfer_(blocks_per_transfer) {
    UOT_CHECK(blocks_per_transfer != 0);
  }

  /// The low end of the spectrum: transfer every `k` completed blocks.
  static UotPolicy LowUot(uint64_t k = 1) { return UotPolicy(k); }

  /// The high end: wait for the entire intermediate table.
  static UotPolicy HighUot() { return UotPolicy(kWholeTable); }

  bool IsWholeTable() const { return blocks_per_transfer_ == kWholeTable; }
  uint64_t blocks_per_transfer() const { return blocks_per_transfer_; }

  std::string ToString() const {
    if (IsWholeTable()) return "UoT=whole-table";
    return "UoT=" + std::to_string(blocks_per_transfer_) + "-block(s)";
  }

 private:
  uint64_t blocks_per_transfer_;
};

/// Runtime snapshot of one streaming edge, assembled by the scheduler every
/// time it consults the UoT policy (on each block-completion event). Static
/// identity plus per-edge progress plus engine-level memory feedback — the
/// inputs an adaptive policy needs to move an edge along the UoT spectrum
/// mid-query.
struct EdgeRuntimeState {
  // Static identity.
  int edge_index = -1;
  int producer = -1;
  int consumer = -1;
  /// Engine-assigned id of the querying session (0 outside an engine).
  /// Lets one policy instance shared across concurrent sessions keep
  /// per-query edge state.
  uint64_t query_id = 0;
  /// True when this edge is an exchange/repartition edge
  /// (QueryPlan::EdgeKind::kExchange). Exchange consumers (partitioned
  /// builds) buffer their whole input anyway, so large UoT values on such
  /// an edge buy no locality — they only delay the repartition work that
  /// should overlap the producer. Policies use this to clamp.
  bool is_exchange = false;
  /// True when this edge is interior to a fused pipeline chain
  /// (ExecConfig::pipeline_mode == kFused): rows cross it inside a single
  /// fused work order, so no blocks ever accumulate and no transfers
  /// happen. The scheduler never consults the policy for fused edges —
  /// the flag exists so snapshots handed to observers report honestly.
  bool fused = false;

  // Edge progress.
  uint64_t buffered_blocks = 0;    // accumulated, not yet transferred
  uint64_t produced_blocks = 0;    // total blocks the producer completed
  uint64_t transfers = 0;          // transfers delivered so far
  bool producer_finished = false;  // producer flushed (final delivery)

  // Engine feedback.
  int64_t tracked_bytes = 0;        // current tracked memory, all categories
  int64_t memory_budget_bytes = 0;  // session budget (0 = unlimited)
  /// Tracked bytes when the session started: the structural floor (base
  /// tables, prior queries' state) the policy cannot influence. Pressure is
  /// meaningful on the headroom above it — with large resident base tables,
  /// tracked_bytes / memory_budget_bytes saturates near 1 and carries no
  /// signal about the query's own intermediates.
  int64_t baseline_tracked_bytes = 0;
  uint64_t deferred_work_orders = 0;  // budget/pacing deferral queue depth
  uint64_t producer_work_orders_done = 0;
  uint64_t consumer_work_orders_done = 0;
};

/// Why a policy decision landed on the value it did — the profile's
/// adaptive-decision log records one of these per effective-UoT change so
/// an operator can tell a memory-pressure narrow from a rate-imbalance
/// halving without re-deriving it from counters (ISSUE 6 tentpole (4)).
enum class UotAdaptCause : uint8_t {
  /// First resolution of the edge (session start / seed value).
  kSeed = 0,
  /// A plan annotation pinned the edge; the policy was not consulted.
  kPinned,
  /// The policy returned the same value as last time (steady state).
  kNone,
  /// Narrowed because budget-deferred work orders queued up.
  kDeferralDepth,
  /// Narrowed because tracked memory crossed the headroom watermark.
  kHeadroomWatermark,
  /// Widened after a calm streak with headroom to spare.
  kCalmStreak,
  /// Halved widening patience / clamp due to producer/consumer rate
  /// imbalance.
  kRateImbalance,
};

/// Stable lower-case name ("seed", "deferral_depth", ...) used by trace
/// args, profile JSON, and logs. Inline so the obs layer (which links
/// below the scheduler) can render causes in trace exports.
inline const char* UotAdaptCauseName(UotAdaptCause cause) {
  switch (cause) {
    case UotAdaptCause::kSeed: return "seed";
    case UotAdaptCause::kPinned: return "pinned";
    case UotAdaptCause::kNone: return "none";
    case UotAdaptCause::kDeferralDepth: return "deferral_depth";
    case UotAdaptCause::kHeadroomWatermark: return "headroom_watermark";
    case UotAdaptCause::kCalmStreak: return "calm_streak";
    case UotAdaptCause::kRateImbalance: return "rate_imbalance";
  }
  return "unknown";
}

/// The per-edge UoT decision point. The scheduler consults the policy on
/// every block-completion event of every streaming edge; the returned value
/// is the number of accumulated blocks that triggers a transfer
/// (UotPolicy::kWholeTable = wait for the producer to finish). Returning 0
/// is a policy bug and aborts the query.
///
/// Implementations may be shared by many concurrent sessions (the Engine
/// runs sessions on one pool), so BlocksPerTransfer must be thread-safe;
/// use EdgeRuntimeState::query_id/edge_index to key any internal state.
class EdgeUotPolicy {
 public:
  virtual ~EdgeUotPolicy() = default;

  /// Blocks that must accumulate on `edge` before the next transfer.
  virtual uint64_t BlocksPerTransfer(const EdgeRuntimeState& edge) = 0;

  /// Same decision, but also reports why. The base implementation cannot
  /// know a cause and reports kNone; adaptive policies override this and
  /// have the one-arg form delegate here. The scheduler always calls this
  /// form so the cause reaches the decision log.
  virtual uint64_t BlocksPerTransfer(const EdgeRuntimeState& edge,
                                     UotAdaptCause* cause) {
    if (cause != nullptr) *cause = UotAdaptCause::kNone;
    return BlocksPerTransfer(edge);
  }

  /// Human-readable description for logs / ExecConfig::ToString().
  virtual std::string ToString() const = 0;
};

/// The default policy: one fixed UoT value for every edge of every query —
/// exactly the historical scalar `ExecConfig::uot` semantics, expressed
/// through the policy interface.
class FixedUotPolicy final : public EdgeUotPolicy {
 public:
  explicit FixedUotPolicy(UotPolicy uot = UotPolicy()) : uot_(uot) {}

  using EdgeUotPolicy::BlocksPerTransfer;
  uint64_t BlocksPerTransfer(const EdgeRuntimeState&) override {
    return uot_.blocks_per_transfer();
  }

  std::string ToString() const override {
    return "fixed(" + uot_.ToString() + ")";
  }

  UotPolicy uot() const { return uot_; }

 private:
  const UotPolicy uot_;
};

}  // namespace uot

#endif  // UOT_SCHEDULER_UOT_POLICY_H_
