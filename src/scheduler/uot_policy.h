#ifndef UOT_SCHEDULER_UOT_POLICY_H_
#define UOT_SCHEDULER_UOT_POLICY_H_

#include <cstdint>
#include <string>

namespace uot {

/// The unit of transfer (UoT): how much producer output accumulates before
/// it is transferred to the consumer operator (paper Sections I-III, Fig 1).
///
/// The granularity is measured in completed output blocks, matching the
/// paper's block-based setting: the smallest UoT is a single block
/// (traditionally called "pipelining"); the largest is the whole
/// intermediate table (traditionally "blocking"/"materializing"). Every
/// value in between is a valid point on the spectrum.
class UotPolicy {
 public:
  static constexpr uint64_t kWholeTable = UINT64_MAX;

  /// Default: smallest UoT (one block per transfer).
  UotPolicy() : blocks_per_transfer_(1) {}
  explicit UotPolicy(uint64_t blocks_per_transfer)
      : blocks_per_transfer_(blocks_per_transfer == 0 ? 1
                                                      : blocks_per_transfer) {}

  /// The low end of the spectrum: transfer every `k` completed blocks.
  static UotPolicy LowUot(uint64_t k = 1) { return UotPolicy(k); }

  /// The high end: wait for the entire intermediate table.
  static UotPolicy HighUot() { return UotPolicy(kWholeTable); }

  bool IsWholeTable() const { return blocks_per_transfer_ == kWholeTable; }
  uint64_t blocks_per_transfer() const { return blocks_per_transfer_; }

  std::string ToString() const {
    if (IsWholeTable()) return "UoT=whole-table";
    return "UoT=" + std::to_string(blocks_per_transfer_) + "-block(s)";
  }

 private:
  uint64_t blocks_per_transfer_;
};

}  // namespace uot

#endif  // UOT_SCHEDULER_UOT_POLICY_H_
