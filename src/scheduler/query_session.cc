#include "scheduler/query_session.h"

#include <algorithm>

#include "fused/pipeline_fuser.h"
#include "obs/metrics.h"
#include "obs/trace_session.h"
#include "operators/exchange_operator.h"
#include "util/timer.h"

namespace uot {

QuerySession::QuerySession(QueryPlan* plan, ExecConfig config,
                           WorkOrderSink* sink, int pool_workers,
                           uint64_t query_id)
    : plan_(plan),
      config_(std::move(config)),
      sink_(sink),
      pool_workers_(pool_workers),
      query_id_(query_id) {
  UOT_CHECK(plan_ != nullptr);
  UOT_CHECK(sink_ != nullptr);
  UOT_CHECK(pool_workers_ >= 1);
}

std::string QuerySession::MetricName(const char* name) const {
  return config_.metrics_prefix + name;
}

void QuerySession::InitObservability() {
  trace_ = config_.trace;
  metrics_ = config_.metrics;
  const int n = plan_->num_operators();
  if (trace_ != nullptr) {
    std::vector<std::string> names;
    names.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) names.push_back(plan_->op(i)->name());
    trace_->SetOperatorNames(std::move(names));
    trace_->SetThreadName(0, "coordinator");
    for (int w = 0; w < pool_workers_; ++w) {
      trace_->SetThreadName(static_cast<uint32_t>(1 + w),
                            "worker " + std::to_string(w));
    }
  }
  op_task_ns_.clear();
  op_work_orders_.clear();
  edge_transfers_metric_.clear();
  edge_blocks_metric_.clear();
  op_ctx_ = OperatorExecContext{};
  op_ctx_.join = config_.join;
  op_ctx_.trace = trace_;
  edge_uot_gauge_.clear();
  edge_uot_adaptations_.clear();
  if (metrics_ == nullptr) {
    work_order_count_ = nullptr;
    work_order_latency_ns_ = nullptr;
    work_queue_depth_ = nullptr;
    event_queue_depth_ = nullptr;
    budget_deferrals_ = nullptr;
    budget_stalls_ = nullptr;
    uot_adaptations_ = nullptr;
    return;
  }
  op_ctx_.join_probe_batches =
      metrics_->GetCounter(MetricName("join.probe.batches"));
  op_ctx_.join_probe_prefetch_issued =
      metrics_->GetCounter(MetricName("join.probe.prefetch_issued"));
  op_ctx_.join_build_batches =
      metrics_->GetCounter(MetricName("join.build.batches"));
  op_ctx_.join_build_prefetch_issued =
      metrics_->GetCounter(MetricName("join.build.prefetch_issued"));
  work_order_count_ = metrics_->GetCounter(MetricName("scheduler.work_orders"));
  work_order_latency_ns_ =
      metrics_->GetHistogram(MetricName("scheduler.work_order_latency_ns"));
  work_queue_depth_ =
      metrics_->GetGauge(MetricName("scheduler.queue.work_orders.depth"));
  event_queue_depth_ =
      metrics_->GetGauge(MetricName("scheduler.queue.events.depth"));
  budget_deferrals_ =
      metrics_->GetCounter(MetricName("scheduler.budget.deferrals"));
  budget_stalls_ =
      metrics_->GetCounter(MetricName("scheduler.budget.stalls"));
  uot_adaptations_ = metrics_->GetCounter(MetricName("uot.adaptations"));
  for (int i = 0; i < n; ++i) {
    const std::string prefix =
        MetricName("scheduler.op.") + std::to_string(i);
    op_task_ns_.push_back(metrics_->GetCounter(prefix + ".task_ns"));
    op_work_orders_.push_back(metrics_->GetCounter(prefix + ".work_orders"));
  }
  for (size_t e = 0; e < plan_->streaming_edges().size(); ++e) {
    const std::string prefix =
        MetricName("scheduler.edge.") + std::to_string(e);
    edge_transfers_metric_.push_back(
        metrics_->GetCounter(prefix + ".transfers"));
    edge_blocks_metric_.push_back(metrics_->GetCounter(prefix + ".blocks"));
    const std::string uot_prefix =
        MetricName("uot.edge.") + std::to_string(e);
    edge_uot_gauge_.push_back(
        metrics_->GetGauge(uot_prefix + ".effective_blocks"));
    edge_uot_adaptations_.push_back(
        metrics_->GetCounter(uot_prefix + ".adaptations"));
  }
}

void QuerySession::SampleQueueDepths() {
  const int64_t work_depth = static_cast<int64_t>(sink_->WorkQueueDepth());
  const int64_t event_depth = static_cast<int64_t>(event_queue_.Size());
  if (work_queue_depth_ != nullptr) {
    work_queue_depth_->Set(work_depth);
    event_queue_depth_->Set(event_depth);
  }
  if (trace_ != nullptr) {
    trace_->EmitCounter(obs::TraceEventType::kQueueDepth, 0, work_depth);
    trace_->EmitCounter(obs::TraceEventType::kQueueDepth, 1, event_depth);
  }
}

ExecutionStats QuerySession::Run() {
  const int n = plan_->num_operators();
  op_states_.clear();
  op_states_.resize(static_cast<size_t>(n));
  edge_states_.clear();
  edge_states_.resize(plan_->streaming_edges().size());
  deferred_.clear();
  total_running_ = 0;
  stats_ = ExecutionStats{};
  stats_.query_id = query_id_;
  stats_.config_summary = config_.ToString();
  stats_.operators.resize(static_cast<size_t>(n));

  // Resolve the UoT policy chain: plan annotations pin individual edges;
  // otherwise the config's policy decides; otherwise the scalar session
  // default, wrapped so the consultation path is always the interface.
  default_policy_ = std::make_unique<FixedUotPolicy>(config_.uot);
  uot_policy_ = config_.uot_policy != nullptr ? config_.uot_policy.get()
                                              : default_policy_.get();
  // The structural floor policies measure pressure against: whatever is
  // already tracked (base tables, concurrent queries) when we start.
  baseline_tracked_bytes_ = plan_->storage()->tracker().TotalCurrent();
  edge_pin_.clear();
  for (const QueryPlan::StreamingEdge& e : plan_->streaming_edges()) {
    edge_pin_.push_back(e.uot_blocks);
  }
  // Cache each edge's payload row width so transfer-volume accounting is
  // a multiply, not a schema lookup, per block.
  for (size_t e = 0; e < plan_->streaming_edges().size(); ++e) {
    const InsertDestination* dest =
        plan_->destination_of(plan_->streaming_edges()[e].producer);
    edge_states_[e].row_width =
        dest != nullptr ? dest->output()->schema().row_width() : 0;
  }
  for (int i = 0; i < n; ++i) {
    stats_.operators[static_cast<size_t>(i)].name = plan_->op(i)->name();
  }

  SetupFusedChains();

  for (const QueryPlan::BlockingEdge& e : plan_->blocking_edges()) {
    ++op_states_[static_cast<size_t>(e.consumer)].blocking_deps;
    // A fused chain's work orders touch every member (probing each probe
    // stage's hash table), so a member's blocking producer gates the head
    // too.
    const int head = FusedHeadOf(e.consumer);
    if (head >= 0) ++op_states_[static_cast<size_t>(head)].blocking_deps;
  }
  // Operators fed by a streaming edge are pipeline consumers: their work
  // orders overtake queued leaf work so transferred data is consumed while
  // hot (the eager-execution half of the paper's pipelining definition,
  // Section II; cf. the interleaved schedules of Fig. 2).
  for (const QueryPlan::StreamingEdge& e : plan_->streaming_edges()) {
    op_states_[static_cast<size_t>(e.consumer)].is_consumer = true;
  }

  // A consumer may drop an input block after use iff the block's producer
  // has no other consumer. Tracked per (consumer, producer): an operator
  // with several streaming inputs (e.g. sort-merge join) lists every
  // droppable producer table, not just the last edge scanned.
  droppable_sources_.assign(static_cast<size_t>(n), {});
  if (config_.drop_consumed_blocks) {
    for (const QueryPlan::StreamingEdge& e : plan_->streaming_edges()) {
      int consumers_of_producer = 0;
      for (const QueryPlan::StreamingEdge& other :
           plan_->streaming_edges()) {
        if (other.producer == e.producer) ++consumers_of_producer;
      }
      InsertDestination* dest = plan_->destination_of(e.producer);
      if (consumers_of_producer == 1 && dest != nullptr) {
        droppable_sources_[static_cast<size_t>(e.consumer)].push_back(
            dest->output());
      }
    }
  }

  // Completed producer blocks surface as kBlockReady events. An exchange
  // operator has one destination per partition, all writing one output
  // table — the callback goes on every destination so every partition's
  // blocks flow through the same edge accounting.
  for (int i = 0; i < n; ++i) {
    for (InsertDestination* dest : plan_->destinations_of(i)) {
      dest->set_on_block_ready([this, i](Block* block) {
        event_queue_.Push(Event{Event::Kind::kBlockReady, i, block, {}, {}});
      });
    }
  }

  InitObservability();
  for (int i = 0; i < n; ++i) plan_->op(i)->BindExecContext(op_ctx_);

  plan_->storage()->tracker().ResetPeaks();
  stats_.query_start_ns = NowNanos();

  // Record each edge's starting UoT so metrics/traces show the full
  // trajectory (adaptive policies may move it on later consultations).
  // Fused interior edges never consult the policy — no blocks ever cross
  // them; their gauge/track value is the -1 sentinel (0 already means
  // whole-table) so dashboards show "fused", not a stale UoT.
  for (size_t e = 0; e < plan_->streaming_edges().size(); ++e) {
    if (fused_edge_[e]) {
      if (metrics_ != nullptr) edge_uot_gauge_[e]->Set(-1);
      if (trace_ != nullptr) {
        trace_->EmitCounter(obs::TraceEventType::kUotEffective,
                            static_cast<int>(e), -1);
      }
      continue;
    }
    ResolveEdgeUot(static_cast<int>(e));
  }

  for (int i = 0; i < n; ++i) TryGenerate(i);
  ReleaseDeferred();

  while (!AllFinished()) {
    std::optional<Event> event = event_queue_.Pop();
    UOT_CHECK(event.has_value());  // queue is never closed mid-run
    if (trace_ != nullptr || metrics_ != nullptr) SampleQueueDepths();
    switch (event->kind) {
      case Event::Kind::kBlockReady:
        HandleBlockReady(event->op, event->block);
        break;
      case Event::Kind::kWorkOrderDone:
        HandleWorkOrderDone(&*event);
        break;
      case Event::Kind::kOperatorFlushed:
        HandleOperatorFlushed(event->op);
        break;
    }
  }

  stats_.query_end_ns = NowNanos();

  if (trace_ != nullptr) {
    trace_->EmitComplete(obs::TraceEventType::kQuery, /*tid=*/0,
                         stats_.query_start_ns, stats_.query_end_ns,
                         /*arg0=*/static_cast<int32_t>(query_id_),
                         /*arg1=*/-1,
                         static_cast<int64_t>(stats_.records.size()));
  }

  const MemoryTracker& tracker = plan_->storage()->tracker();
  for (int c = 0; c < kNumMemoryCategories; ++c) {
    stats_.peak_bytes[c] = tracker.Peak(static_cast<MemoryCategory>(c));
  }
  stats_.edge_transfers.clear();
  for (const EdgeState& e : edge_states_) {
    stats_.edge_transfers.push_back(e.transfers);
  }
  stats_.profiled = config_.profile;
  stats_.edges.clear();
  const auto& plan_edges = plan_->streaming_edges();
  for (size_t e = 0; e < plan_edges.size(); ++e) {
    const EdgeState& state = edge_states_[e];
    EdgeStats edge_stats;
    edge_stats.producer = plan_edges[e].producer;
    edge_stats.consumer = plan_edges[e].consumer;
    edge_stats.transfers = state.transfers;
    edge_stats.blocks_produced = state.produced;
    edge_stats.blocks_delivered = state.blocks_delivered;
    edge_stats.bytes_delivered = state.bytes_delivered;
    edge_stats.max_buffered_bytes = state.max_buffered_bytes;
    edge_stats.max_buffered_blocks = state.max_buffered_blocks;
    edge_stats.final_uot_blocks = state.effective_uot;
    edge_stats.exchange = plan_edges[e].kind == QueryPlan::EdgeKind::kExchange;
    edge_stats.fused = fused_edge_[e];
    stats_.edges.push_back(edge_stats);
  }
  stats_.fused_chains.clear();
  for (const auto& chain : fused_chains_) {
    FusedChainStats cs;
    cs.ops = chain->ops();
    cs.work_orders = chain->work_orders();
    for (const fused::FusedChain::StageStats& st : chain->Stats()) {
      FusedStageStats stage;
      stage.op = st.op_index;
      stage.name = st.name;
      stage.kind = fused::FusedChain::StageKindName(st.kind);
      stage.rows_in = st.rows_in;
      stage.rows_out = st.rows_out;
      cs.stages.push_back(std::move(stage));
    }
    stats_.fused_chains.push_back(std::move(cs));
  }
  stats_.exchanges.clear();
  for (int i = 0; i < n; ++i) {
    const auto* exchange = dynamic_cast<const ExchangeOperator*>(plan_->op(i));
    if (exchange == nullptr) continue;
    ExchangeStats xs;
    xs.op = i;
    xs.name = exchange->name();
    xs.radix_bits = exchange->radix_bits();
    for (uint32_t p = 0; p < exchange->num_partitions(); ++p) {
      xs.partition_rows.push_back(exchange->partition_rows(p));
      xs.partition_blocks.push_back(exchange->partition_blocks(p));
    }
    stats_.exchanges.push_back(std::move(xs));
  }
  return std::move(stats_);
}

void QuerySession::ExecuteWorkOrder(std::unique_ptr<WorkOrder> work_order,
                                    int worker_id) {
  WorkOrderRecord record;
  record.op = work_order->operator_index;
  record.worker = worker_id;
  work_order->worker_id = worker_id;
  record.start_ns = NowNanos();
  work_order->Execute();
  record.end_ns = NowNanos();
  if (trace_ != nullptr) {
    trace_->EmitComplete(obs::TraceEventType::kWorkOrder,
                         static_cast<uint32_t>(1 + worker_id),
                         record.start_ns, record.end_ns, record.op,
                         worker_id);
  }
  event_queue_.Push(Event{Event::Kind::kWorkOrderDone, record.op, nullptr,
                          std::move(work_order->consumed_blocks), record});
}

void QuerySession::HandleWorkOrderDone(Event* event) {
  OpState& state = op_states_[static_cast<size_t>(event->op)];
  ++state.completed;
  --state.running;
  --total_running_;
  // Transient intermediate blocks are dropped once consumed. Each block is
  // resolved against the consumer's droppable producer tables in turn
  // (ReleaseBlock is a no-op returning false on the wrong table).
  const std::vector<Table*>& sources =
      droppable_sources_[static_cast<size_t>(event->op)];
  for (Block* consumed : event->consumed) {
    for (Table* source : sources) {
      if (source->ReleaseBlock(consumed)) {
        plan_->storage()->DropBlock(consumed);
        break;
      }
    }
  }
  stats_.records.push_back(event->record);
  OperatorStats& os = stats_.operators[static_cast<size_t>(event->op)];
  ++os.num_work_orders;
  os.total_task_ns += event->record.duration_ns();
  if (os.first_start_ns == 0 || event->record.start_ns < os.first_start_ns) {
    os.first_start_ns = event->record.start_ns;
  }
  if (event->record.end_ns > os.last_end_ns) {
    os.last_end_ns = event->record.end_ns;
  }
  if (metrics_ != nullptr) {
    const size_t op_index = static_cast<size_t>(event->op);
    work_order_count_->Increment();
    work_order_latency_ns_->Record(event->record.duration_ns());
    op_task_ns_[op_index]->Add(
        static_cast<uint64_t>(event->record.duration_ns()));
    op_work_orders_[op_index]->Increment();
  }
  // Release held work orders under the concurrency cap.
  while (!state.held.empty() &&
         (config_.max_concurrent_per_op == 0 ||
          state.running < config_.max_concurrent_per_op)) {
    std::unique_ptr<WorkOrder> wo = std::move(state.held.back());
    state.held.pop_back();
    ++state.running;
    ++total_running_;
    SubmitToPool(state, std::move(wo));
  }
  ReleaseDeferred();
  CheckOperatorDone(event->op);
}

void QuerySession::SetupFusedChains() {
  const int n = plan_->num_operators();
  fused_chains_.clear();
  fused_chain_of_op_.assign(static_cast<size_t>(n), -1);
  fused_edge_.assign(plan_->streaming_edges().size(), false);
  if (config_.pipeline_mode != PipelineMode::kFused) return;
  std::vector<std::vector<int>> chains;
  if (!plan_->fused_pipelines().empty()) {
    for (const std::vector<int>& ops : plan_->fused_pipelines()) {
      if (fused::PipelineFuser::IsFusableChain(*plan_, ops)) {
        chains.push_back(ops);
      }
    }
  } else {
    chains = fused::PipelineFuser::DetectFusablePipelines(*plan_);
  }
  for (std::vector<int>& ops : chains) {
    bool overlaps = false;
    for (const int op : ops) {
      if (fused_chain_of_op_[static_cast<size_t>(op)] >= 0) overlaps = true;
    }
    if (overlaps) continue;  // first annotation wins; the rest vectorize
    const int chain_index = static_cast<int>(fused_chains_.size());
    for (const int op : ops) {
      fused_chain_of_op_[static_cast<size_t>(op)] = chain_index;
    }
    for (size_t i = 0; i + 1 < ops.size(); ++i) {
      const int edge = plan_->FindStreamingEdge(ops[i], ops[i + 1]);
      UOT_CHECK(edge >= 0);  // IsFusableChain verified every link
      fused_edge_[static_cast<size_t>(edge)] = true;
    }
    fused_chains_.push_back(
        std::make_unique<fused::FusedChain>(plan_, std::move(ops)));
  }
}

fused::FusedChain* QuerySession::FusedChainHeadedBy(int op) {
  const int chain = fused_chain_of_op_[static_cast<size_t>(op)];
  if (chain < 0) return nullptr;
  fused::FusedChain* c = fused_chains_[static_cast<size_t>(chain)].get();
  return c->head_op() == op ? c : nullptr;
}

int QuerySession::FusedHeadOf(int op) const {
  const int chain = fused_chain_of_op_[static_cast<size_t>(op)];
  if (chain < 0) return -1;
  const int head = fused_chains_[static_cast<size_t>(chain)]->head_op();
  return head == op ? -1 : head;
}

void QuerySession::TryGenerate(int op) {
  OpState& state = op_states_[static_cast<size_t>(op)];
  if (state.finished || state.finishing || state.blocking_deps > 0) return;
  if (!state.done_generating) {
    std::vector<std::unique_ptr<WorkOrder>> out;
    // A fused chain head generates work orders spanning the whole chain;
    // the chain's other members never see input blocks (interior edges
    // transfer nothing), so their own GenerateWorkOrders yields no orders
    // and they finish through the normal empty-flush cascade.
    fused::FusedChain* chain = FusedChainHeadedBy(op);
    state.done_generating = chain != nullptr
                                ? chain->GenerateWorkOrders(&out)
                                : plan_->op(op)->GenerateWorkOrders(&out);
    for (auto& wo : out) {
      wo->operator_index = op;
      ++state.generated;
      Dispatch(op, std::move(wo));
    }
  }
  CheckOperatorDone(op);
}

void QuerySession::SubmitToPool(const OpState& state,
                                std::unique_ptr<WorkOrder> wo) {
  const bool accepted =
      sink_->SubmitWork(this, std::move(wo), state.is_consumer);
  UOT_CHECK(accepted);  // the pool outlives every active session
}

void QuerySession::Dispatch(int op, std::unique_ptr<WorkOrder> wo) {
  OpState& state = op_states_[static_cast<size_t>(op)];
  if (config_.max_concurrent_per_op != 0 &&
      state.running >= config_.max_concurrent_per_op) {
    state.held.push_back(std::move(wo));
    return;
  }
  // Memory-budget policy: *producer* work orders (leaf scans creating new
  // intermediates) go through admission control and are released paced
  // against the budget. Consumer work orders always run — they consume
  // and release transient blocks, which is what brings memory back under
  // the budget.
  if (config_.memory_budget_bytes > 0 && !state.is_consumer) {
    const bool over_budget =
        plan_->storage()->tracker().TotalCurrent() >
        config_.memory_budget_bytes;
    // Admit straight away when the budget would release it immediately
    // anyway (under budget, a pool slot free, nothing already queued —
    // FIFO order). Only a deferral forced by the budget itself is counted
    // and traced; pacing deferrals (admissions waiting for a pool slot)
    // are not budget events.
    if (over_budget || !deferred_.empty() ||
        total_running_ >= pool_workers_) {
      if (over_budget) {
        const int64_t tracked = plan_->storage()->tracker().TotalCurrent();
        if (trace_ != nullptr) {
          trace_->EmitInstant(obs::TraceEventType::kBudgetDefer, /*tid=*/0,
                              op, -1, tracked);
        }
        if (budget_deferrals_ != nullptr) budget_deferrals_->Increment();
        ++stats_.budget_deferrals;
        RecordBudgetEvent(op, /*release=*/false, tracked);
      }
      deferred_.push_back(DeferredWorkOrder{op, over_budget, std::move(wo)});
      return;
    }
  }
  ++state.running;
  ++total_running_;
  SubmitToPool(state, std::move(wo));
}

void QuerySession::ReleaseDeferred() {
  while (!deferred_.empty()) {
    const bool over_budget =
        plan_->storage()->tracker().TotalCurrent() >
        config_.memory_budget_bytes;
    // Over budget: only release if nothing is running (progress
    // guarantee). Under budget: admit producers only up to the pool
    // size, so allocations stay paced against completions. Each denied
    // release while deferred work waits is a stall — the duration-like
    // signal of budget pressure (deferral counts alone only record the
    // first admission refusal of each work order).
    if (over_budget && total_running_ > 0) {
      if (budget_stalls_ != nullptr) budget_stalls_->Increment();
      ++stats_.budget_stalls;
      return;
    }
    if (!over_budget && total_running_ >= pool_workers_) return;
    DeferredWorkOrder deferred = std::move(deferred_.front());
    deferred_.pop_front();
    if (deferred.counted) {
      const int64_t tracked = plan_->storage()->tracker().TotalCurrent();
      if (trace_ != nullptr) {
        trace_->EmitInstant(obs::TraceEventType::kBudgetRelease, /*tid=*/0,
                            deferred.op, -1, tracked);
      }
      RecordBudgetEvent(deferred.op, /*release=*/true, tracked);
    }
    OpState& state = op_states_[static_cast<size_t>(deferred.op)];
    if (config_.max_concurrent_per_op != 0 &&
        state.running >= config_.max_concurrent_per_op) {
      state.held.push_back(std::move(deferred.work_order));
      continue;
    }
    ++state.running;
    ++total_running_;
    // Producers queue behind consumers: never high priority.
    const bool accepted =
        sink_->SubmitWork(this, std::move(deferred.work_order), false);
    UOT_CHECK(accepted);
    if (over_budget) return;  // released the single progress work order
  }
}

void QuerySession::CheckOperatorDone(int op) {
  OpState& state = op_states_[static_cast<size_t>(op)];
  if (state.finished || state.finishing) return;
  if (!state.done_generating || state.completed != state.generated) return;
  // All work orders executed and no more coming: flush the operator. The
  // flush callbacks enqueue kBlockReady events; the marker event below is
  // processed after them (FIFO), so final UoT transfers see every block.
  state.finishing = true;
  plan_->op(op)->Finish();
  event_queue_.Push(Event{Event::Kind::kOperatorFlushed, op, nullptr, {}, {}});
}

uint64_t QuerySession::ResolveEdgeUot(int edge_index) {
  const size_t e = static_cast<size_t>(edge_index);
  EdgeState& state = edge_states_[e];
  uint64_t blocks;
  UotAdaptCause cause = UotAdaptCause::kNone;
  if (edge_pin_[e] != 0) {
    blocks = edge_pin_[e];
    cause = UotAdaptCause::kPinned;
  } else {
    const QueryPlan::StreamingEdge& edge = plan_->streaming_edges()[e];
    EdgeRuntimeState rt;
    rt.edge_index = edge_index;
    rt.producer = edge.producer;
    rt.consumer = edge.consumer;
    rt.query_id = query_id_;
    rt.is_exchange = edge.kind == QueryPlan::EdgeKind::kExchange;
    rt.buffered_blocks = state.buffer.size();
    rt.produced_blocks = state.produced;
    rt.transfers = state.transfers;
    const OpState& producer = op_states_[static_cast<size_t>(edge.producer)];
    rt.producer_finished = producer.finished || producer.finishing;
    rt.tracked_bytes = plan_->storage()->tracker().TotalCurrent();
    rt.memory_budget_bytes = config_.memory_budget_bytes;
    rt.baseline_tracked_bytes = baseline_tracked_bytes_;
    rt.deferred_work_orders = deferred_.size();
    rt.producer_work_orders_done = producer.completed;
    rt.consumer_work_orders_done =
        op_states_[static_cast<size_t>(edge.consumer)].completed;
    blocks = uot_policy_->BlocksPerTransfer(rt, &cause);
  }
  UOT_CHECK(blocks != 0);  // a zero UoT is a policy bug, not a request
  if (blocks != state.effective_uot) {
    // First resolution of the edge is the seed value unless a pin or the
    // policy itself says otherwise.
    if (state.effective_uot == 0 && cause == UotAdaptCause::kNone) {
      cause = UotAdaptCause::kSeed;
    }
    // Gauge/counter-track value: blocks per transfer, with 0 standing in
    // for whole-table (0 is otherwise invalid, so the sentinel is
    // unambiguous and keeps the track plottable).
    const int64_t plotted =
        blocks == UotPolicy::kWholeTable ? 0
                                         : static_cast<int64_t>(blocks);
    if (metrics_ != nullptr) edge_uot_gauge_[e]->Set(plotted);
    if (trace_ != nullptr) {
      trace_->EmitCounter(obs::TraceEventType::kUotEffective, edge_index,
                          plotted);
    }
    if (state.effective_uot != 0) {  // a mid-query change: an adaptation
      ++stats_.uot_adaptations;
      if (metrics_ != nullptr) {
        uot_adaptations_->Increment();
        edge_uot_adaptations_[e]->Increment();
      }
      if (trace_ != nullptr) {
        const int64_t previous =
            state.effective_uot == UotPolicy::kWholeTable
                ? 0
                : static_cast<int64_t>(state.effective_uot);
        trace_->EmitInstant(obs::TraceEventType::kUotAdapt, /*tid=*/0,
                            edge_index,
                            static_cast<int32_t>(std::min<int64_t>(
                                previous, INT32_MAX)),
                            plotted);
      }
    }
    // The adaptive-decision log: one instant per (re)resolution that
    // changed the edge, with the cause the policy reported.
    if (trace_ != nullptr) {
      trace_->EmitInstant(obs::TraceEventType::kUotDecision, /*tid=*/0,
                          edge_index, static_cast<int32_t>(cause), plotted);
    }
    if (config_.profile) {
      UotDecisionRecord decision;
      decision.t_ns = NowNanos();
      decision.edge = edge_index;
      decision.from_blocks = state.effective_uot;
      decision.to_blocks = blocks;
      decision.cause = cause;
      stats_.uot_decisions.push_back(decision);
    }
    state.effective_uot = blocks;
  }
  return blocks;
}

void QuerySession::RecordBudgetEvent(int op, bool release,
                                     int64_t tracked_bytes) {
  if (!config_.profile) return;
  BudgetEventRecord event;
  event.t_ns = NowNanos();
  event.op = op;
  event.release = release;
  event.tracked_bytes = tracked_bytes;
  stats_.budget_events.push_back(event);
}

void QuerySession::HandleBlockReady(int op, Block* block) {
  const auto& edges = plan_->streaming_edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].producer != op) continue;
    EdgeState& edge = edge_states_[i];
    edge.buffer.push_back(block);
    ++edge.produced;
    edge.buffered_bytes +=
        static_cast<uint64_t>(block->num_rows()) * edge.row_width;
    if (edge.buffered_bytes > edge.max_buffered_bytes) {
      edge.max_buffered_bytes = edge.buffered_bytes;
    }
    if (edge.buffer.size() > edge.max_buffered_blocks) {
      edge.max_buffered_blocks = edge.buffer.size();
    }
    const uint64_t blocks = ResolveEdgeUot(static_cast<int>(i));
    if (blocks != UotPolicy::kWholeTable && edge.buffer.size() >= blocks) {
      DeliverEdge(static_cast<int>(i), /*final_flush=*/false);
    }
  }
}

void QuerySession::DeliverEdge(int edge_index, bool final_flush) {
  const QueryPlan::StreamingEdge& edge =
      plan_->streaming_edges()[static_cast<size_t>(edge_index)];
  EdgeState& state = edge_states_[static_cast<size_t>(edge_index)];
  if (!state.buffer.empty()) {
    plan_->op(edge.consumer)
        ->ReceiveInputBlocks(edge.consumer_input, state.buffer);
    ++state.transfers;
    state.blocks_delivered += state.buffer.size();
    state.bytes_delivered += state.buffered_bytes;
    state.buffered_bytes = 0;
    if (trace_ != nullptr) {
      trace_->EmitInstant(obs::TraceEventType::kBlockTransfer, /*tid=*/0,
                          edge_index, -1,
                          static_cast<int64_t>(state.buffer.size()));
    }
    if (metrics_ != nullptr) {
      edge_transfers_metric_[static_cast<size_t>(edge_index)]->Increment();
      edge_blocks_metric_[static_cast<size_t>(edge_index)]->Add(
          state.buffer.size());
    }
    state.buffer.clear();
  }
  if (final_flush) {
    if (trace_ != nullptr) {
      trace_->EmitInstant(obs::TraceEventType::kEdgeFlush, /*tid=*/0,
                          edge_index);
    }
    plan_->op(edge.consumer)->InputDone(edge.consumer_input);
  }
  TryGenerate(edge.consumer);
}

void QuerySession::HandleOperatorFlushed(int op) {
  OpState& state = op_states_[static_cast<size_t>(op)];
  state.finished = true;
  state.finishing = false;
  if (trace_ != nullptr) {
    trace_->EmitInstant(obs::TraceEventType::kOperatorFinish, /*tid=*/0, op);
  }
  // A finished exchange knows its final per-partition row spread: publish
  // the skew gauges (rows per partition, plus max/mean x100 as a single
  // imbalance number) while the session is still hot.
  if (metrics_ != nullptr) {
    if (const auto* exchange =
            dynamic_cast<const ExchangeOperator*>(plan_->op(op))) {
      const std::string prefix =
          MetricName("exchange.op.") + std::to_string(op);
      uint64_t total = 0;
      uint64_t max_rows = 0;
      for (uint32_t p = 0; p < exchange->num_partitions(); ++p) {
        const uint64_t rows = exchange->partition_rows(p);
        total += rows;
        max_rows = std::max(max_rows, rows);
        metrics_
            ->GetGauge(prefix + ".partition." + std::to_string(p) + ".rows")
            ->Set(static_cast<int64_t>(rows));
      }
      if (total > 0) {
        const double mean = static_cast<double>(total) /
                            static_cast<double>(exchange->num_partitions());
        metrics_->GetGauge(prefix + ".skew_x100")
            ->Set(static_cast<int64_t>(100.0 *
                                       static_cast<double>(max_rows) / mean));
      }
    }
  }
  const auto& edges = plan_->streaming_edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].producer != op) continue;
    DeliverEdge(static_cast<int>(i), /*final_flush=*/true);
  }
  for (const QueryPlan::BlockingEdge& e : plan_->blocking_edges()) {
    if (e.producer != op) continue;
    OpState& consumer = op_states_[static_cast<size_t>(e.consumer)];
    --consumer.blocking_deps;
    if (consumer.blocking_deps == 0) TryGenerate(e.consumer);
    // Mirror the extra dependency a fused member's blocking producer put
    // on its chain head.
    const int head = FusedHeadOf(e.consumer);
    if (head >= 0) {
      OpState& head_state = op_states_[static_cast<size_t>(head)];
      --head_state.blocking_deps;
      if (head_state.blocking_deps == 0) TryGenerate(head);
    }
  }
}

bool QuerySession::AllFinished() const {
  for (const OpState& s : op_states_) {
    if (!s.finished) return false;
  }
  return true;
}

}  // namespace uot
