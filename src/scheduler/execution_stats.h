#ifndef UOT_SCHEDULER_EXECUTION_STATS_H_
#define UOT_SCHEDULER_EXECUTION_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "scheduler/uot_policy.h"
#include "util/memory_tracker.h"

namespace uot {

/// Timing record of one executed work order.
struct WorkOrderRecord {
  int op = -1;
  int worker = -1;
  int64_t start_ns = 0;
  int64_t end_ns = 0;

  int64_t duration_ns() const { return end_ns - start_ns; }
};

/// Aggregated per-operator execution statistics.
struct OperatorStats {
  std::string name;
  uint64_t num_work_orders = 0;
  int64_t total_task_ns = 0;   // sum of work-order durations
  int64_t first_start_ns = 0;  // earliest work-order start
  int64_t last_end_ns = 0;     // latest work-order end

  double total_task_ms() const {
    return static_cast<double>(total_task_ns) / 1e6;
  }
  double avg_task_ms() const {
    return num_work_orders == 0
               ? 0.0
               : total_task_ms() / static_cast<double>(num_work_orders);
  }
  /// Wall-clock span from the first work-order start to the last end.
  double span_ms() const {
    return static_cast<double>(last_end_ns - first_start_ns) / 1e6;
  }
};

/// Measured per-edge execution detail, collected by the session for every
/// streaming edge (the integer accounting is cheap and cannot influence
/// transfer behavior, so it is always on; see ExecConfig::profile for the
/// event logs that are not).
struct EdgeStats {
  int producer = -1;
  int consumer = -1;
  /// Transfers delivered (same number as ExecutionStats::edge_transfers,
  /// kept here so one struct describes the whole edge).
  uint64_t transfers = 0;
  uint64_t blocks_produced = 0;
  uint64_t blocks_delivered = 0;
  /// Payload bytes delivered over the edge (block rows x schema row
  /// width — the transfer volume of the paper's Section V cost model,
  /// not allocator bytes).
  uint64_t bytes_delivered = 0;
  /// High-water mark of payload bytes buffered awaiting transfer: the
  /// edge's measured Section VI footprint.
  uint64_t max_buffered_bytes = 0;
  uint64_t max_buffered_blocks = 0;
  /// Effective UoT when the edge flushed (UotPolicy::kWholeTable for
  /// materializing edges).
  uint64_t final_uot_blocks = 0;
  /// True for exchange/repartition edges (QueryPlan::EdgeKind::kExchange).
  bool exchange = false;
  /// True when the edge was interior to a fused pipeline this run: rows
  /// walked the chain inside single work orders, so the zero transfer /
  /// zero block counts above are real, not an unexercised edge.
  bool fused = false;
};

/// Per-stage row counters of one fused pipeline (FusedChain::StageStats,
/// copied into the stats so profiles do not reference live operators).
struct FusedStageStats {
  int op = -1;
  std::string name;
  std::string kind;  // "select" | "probe" | "aggregate"
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

/// One fused pipeline executed by the session: its operator chain, how many
/// fused work orders ran, and the per-stage row flow.
struct FusedChainStats {
  std::vector<int> ops;
  uint64_t work_orders = 0;
  std::vector<FusedStageStats> stages;
};

/// Per-partition outcome of one exchange operator: how evenly the radix
/// partitioning spread the rows (the skew signal behind the
/// exchange.op.*.partition.* gauges).
struct ExchangeStats {
  int op = -1;
  std::string name;
  int radix_bits = 0;
  std::vector<uint64_t> partition_rows;
  std::vector<uint64_t> partition_blocks;

  uint64_t TotalRows() const {
    uint64_t total = 0;
    for (uint64_t r : partition_rows) total += r;
    return total;
  }
  /// max(partition rows) / mean(partition rows); 1.0 = perfectly even,
  /// num_partitions = everything in one partition. 0 when no rows flowed.
  double SkewRatio() const {
    if (partition_rows.empty()) return 0.0;
    const uint64_t total = TotalRows();
    if (total == 0) return 0.0;
    uint64_t max_rows = 0;
    for (uint64_t r : partition_rows) max_rows = std::max(max_rows, r);
    const double mean = static_cast<double>(total) /
                        static_cast<double>(partition_rows.size());
    return static_cast<double>(max_rows) / mean;
  }
};

/// One entry of the adaptive-decision log: the policy layer (re)resolved
/// an edge's effective UoT. Recorded only when ExecConfig::profile is set.
struct UotDecisionRecord {
  int64_t t_ns = 0;  // absolute monotonic, same clock as query_start_ns
  int edge = -1;
  uint64_t from_blocks = 0;  // 0 = first resolution (no prior value)
  uint64_t to_blocks = 0;    // UotPolicy::kWholeTable = materialize
  UotAdaptCause cause = UotAdaptCause::kNone;
};

/// One memory-budget deferral or release, with the tracked bytes that
/// motivated it. Recorded only when ExecConfig::profile is set.
struct BudgetEventRecord {
  int64_t t_ns = 0;
  int op = -1;
  bool release = false;  // false = work order deferred, true = released
  int64_t tracked_bytes = 0;
};

/// Everything the benches need from one query execution: per-work-order
/// timings, per-operator aggregates, per-edge transfer counts and memory
/// peaks (paper Figs. 3/5/6/7, Table II).
struct ExecutionStats {
  /// Engine-assigned id of the session that produced these stats (0 for
  /// runs outside an engine). Tags trace events of concurrent queries.
  uint64_t query_id = 0;
  /// Time spent blocked in engine admission control before the session
  /// started (0 when admitted immediately).
  int64_t admission_wait_ns = 0;
  int64_t query_start_ns = 0;
  int64_t query_end_ns = 0;
  std::vector<WorkOrderRecord> records;
  std::vector<OperatorStats> operators;
  /// Number of block transfers performed per streaming edge (a transfer
  /// delivers up to UoT blocks).
  std::vector<uint64_t> edge_transfers;
  /// Measured per-edge detail (transfers, payload bytes, buffered
  /// high-water marks), one entry per streaming edge.
  std::vector<EdgeStats> edges;
  /// Per-partition row/block counts of every exchange operator in the
  /// plan, in operator order; empty when the plan has no exchanges.
  std::vector<ExchangeStats> exchanges;
  /// Every fused pipeline the session executed (empty under
  /// PipelineMode::kVectorized or when no chain was fusable).
  std::vector<FusedChainStats> fused_chains;
  /// True when the session ran with ExecConfig::profile: the decision and
  /// budget-event logs below were collected.
  bool profiled = false;
  /// Every effective-UoT resolution in time order (the per-edge UoT
  /// timeline); empty unless profiled.
  std::vector<UotDecisionRecord> uot_decisions;
  /// Every budget deferral/release in time order; empty unless profiled.
  std::vector<BudgetEventRecord> budget_events;
  /// Peak memory during execution, per category.
  int64_t peak_bytes[kNumMemoryCategories] = {};
  /// Producer work orders deferred because tracked memory exceeded the
  /// budget at dispatch time (mirrors the scheduler.budget.deferrals
  /// metric).
  uint64_t budget_deferrals = 0;
  /// Denied release attempts while over budget with deferred work waiting:
  /// the duration-like measure of budget pressure (each completion event
  /// that could not re-admit work counts once).
  uint64_t budget_stalls = 0;
  /// Mid-query effective-UoT changes across all streaming edges (0 for
  /// fixed policies).
  uint64_t uot_adaptations = 0;
  /// ExecConfig::ToString() of the session that ran the query, so failure
  /// output and logs show which policy actually executed.
  std::string config_summary;

  double QueryMillis() const {
    return static_cast<double>(query_end_ns - query_start_ns) / 1e6;
  }

  int64_t PeakHashTableBytes() const {
    return peak_bytes[static_cast<int>(MemoryCategory::kHashTable)];
  }
  int64_t PeakTemporaryBytes() const {
    return peak_bytes[static_cast<int>(MemoryCategory::kTemporaryTable)];
  }

  /// Average degree of parallelism of operator `op` over the interval in
  /// which any of its work orders ran (integral of #running / span).
  double AverageDop(int op) const;

  /// Renders a per-operator summary table.
  std::string ToString() const;
};

}  // namespace uot

#endif  // UOT_SCHEDULER_EXECUTION_STATS_H_
