#ifndef UOT_UTIL_SCRATCH_ARENA_H_
#define UOT_UTIL_SCRATCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/macros.h"

namespace uot {

/// A thread-local bump allocator for transient per-batch scratch (the
/// operand buffers of vectorized expression evaluation). Expression Eval
/// runs once per block batch on hot paths — select, residual filters,
/// aggregates — and previously allocated `std::vector` scratch per call.
/// With the arena, the first batches grow a per-thread chunk list to its
/// high-water mark and every later batch reuses it allocation-free.
///
/// Usage is region-style: open a Scope, allocate freely, and let the Scope
/// rewind the arena on destruction. Scopes nest (expressions recurse —
/// a CaseWhen inside a Predicate inside another CaseWhen), and chunks never
/// move, so allocations made in an outer scope stay valid while inner
/// scopes come and go.
///
/// Not thread-safe by design: each thread gets its own arena via
/// ForThread(), and scratch never crosses threads.
class ScratchArena {
 public:
  ScratchArena() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(ScratchArena);

  /// The calling thread's arena.
  static ScratchArena& ForThread() {
    thread_local ScratchArena arena;
    return arena;
  }

  /// A RAII region: restores the arena's allocation point on destruction,
  /// releasing everything allocated inside the scope at once.
  class Scope {
   public:
    explicit Scope(ScratchArena* arena)
        : arena_(arena),
          saved_chunk_(arena->current_chunk_),
          saved_offset_(arena->offset_) {}
    ~Scope() {
      arena_->current_chunk_ = saved_chunk_;
      arena_->offset_ = saved_offset_;
    }
    UOT_DISALLOW_COPY_AND_ASSIGN(Scope);

   private:
    ScratchArena* const arena_;
    const size_t saved_chunk_;
    const size_t saved_offset_;
  };

  /// Returns `bytes` of 16-aligned scratch valid until the enclosing Scope
  /// closes. Never relocates earlier allocations (new space comes from a
  /// fresh chunk, the old chunk stays in place).
  std::byte* Alloc(size_t bytes) {
    const size_t need = (bytes + 15) & ~size_t{15};
    while (current_chunk_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_chunk_];
      if (offset_ + need <= chunk.size) {
        std::byte* p = chunk.data.get() + offset_;
        offset_ += need;
        return p;
      }
      // Advance to the next retained chunk; the tail of this one is
      // wasted until the scope rewinds (bounded by one allocation).
      ++current_chunk_;
      offset_ = 0;
    }
    const size_t chunk_size = need > kDefaultChunkBytes ? need
                                                        : kDefaultChunkBytes;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(chunk_size),
                            chunk_size});
    current_chunk_ = chunks_.size() - 1;
    offset_ = need;
    return chunks_.back().data.get();
  }

  /// Typed array allocation. T must be trivially destructible (scratch is
  /// released by rewinding, destructors never run).
  template <typename T>
  T* AllocArray(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena scratch is rewound, not destroyed");
    return reinterpret_cast<T*>(Alloc(n * sizeof(T)));
  }

  /// Bytes of chunk storage this arena retains (high-water mark).
  size_t retained_bytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size;
  };

  static constexpr size_t kDefaultChunkBytes = 256 * 1024;

  std::vector<Chunk> chunks_;
  size_t current_chunk_ = 0;
  size_t offset_ = 0;
};

/// A RAII lease of a thread-local `std::vector<uint32_t>` for APIs that
/// require a real vector (Predicate::Filter compacts a selection vector in
/// place). Vectors come from a per-thread pool, so nested users (a
/// CaseWhen evaluated inside a Predicate evaluated inside another
/// CaseWhen) each get their own vector, and steady state allocates nothing
/// once the pool vectors reach their high-water capacity.
class ScratchSelVector {
 public:
  ScratchSelVector() : vec_(Acquire()) { vec_->clear(); }
  ~ScratchSelVector() { Release(vec_); }
  UOT_DISALLOW_COPY_AND_ASSIGN(ScratchSelVector);

  std::vector<uint32_t>& operator*() { return *vec_; }
  std::vector<uint32_t>* operator->() { return vec_; }
  std::vector<uint32_t>* get() { return vec_; }

 private:
  struct Pool {
    std::vector<std::unique_ptr<std::vector<uint32_t>>> free;
  };

  static Pool& ThreadPool() {
    thread_local Pool pool;
    return pool;
  }

  static std::vector<uint32_t>* Acquire() {
    Pool& pool = ThreadPool();
    if (pool.free.empty()) {
      return new std::vector<uint32_t>();
    }
    std::vector<uint32_t>* v = pool.free.back().release();
    pool.free.pop_back();
    return v;
  }

  static void Release(std::vector<uint32_t>* v) {
    ThreadPool().free.emplace_back(v);
  }

  std::vector<uint32_t>* const vec_;
};

}  // namespace uot

#endif  // UOT_UTIL_SCRATCH_ARENA_H_
