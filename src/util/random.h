#ifndef UOT_UTIL_RANDOM_H_
#define UOT_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

#include "util/macros.h"

namespace uot {

/// A fast, seedable xorshift128+ pseudo-random generator.
///
/// Used by the TPC-H generator and tests; deterministic for a given seed so
/// experiments are reproducible across runs.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase alphabetic string of exactly `length` characters.
  std::string AlphaString(int length);

  /// Zipf-distributed value in [1, n] with skew `theta` (0 = uniform-ish).
  /// Uses the rejection-inversion-free approximate method adequate for
  /// workload generation.
  int64_t Zipf(int64_t n, double theta);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace uot

#endif  // UOT_UTIL_RANDOM_H_
