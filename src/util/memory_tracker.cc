#include "util/memory_tracker.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace_session.h"

namespace uot {

const char* MemoryCategoryName(MemoryCategory category) {
  switch (category) {
    case MemoryCategory::kBaseTable: return "base_table";
    case MemoryCategory::kTemporaryTable: return "temporary_table";
    case MemoryCategory::kHashTable: return "hash_table";
    case MemoryCategory::kOther: return "other";
  }
  return "unknown";
}

void MemoryTracker::AttachObservers(obs::TraceSession* trace,
                                    obs::MetricsRegistry* metrics) {
  observers_active_.store(false, std::memory_order_relaxed);
  trace_ = trace;
  for (int c = 0; c < kNumMemoryCategories; ++c) {
    gauges_[c] =
        metrics == nullptr
            ? nullptr
            : metrics->GetGauge(
                  std::string("memory.") +
                  MemoryCategoryName(static_cast<MemoryCategory>(c)) +
                  ".bytes");
  }
  observers_active_.store(trace != nullptr || metrics != nullptr,
                          std::memory_order_relaxed);
}

void MemoryTracker::Observe(MemoryCategory category, int64_t current_bytes) {
  const int c = static_cast<int>(category);
  if (trace_ != nullptr) {
    trace_->EmitCounter(obs::TraceEventType::kMemoryBytes, c, current_bytes);
  }
  if (gauges_[c] != nullptr) {
    gauges_[c]->Set(current_bytes);
  }
}

}  // namespace uot
