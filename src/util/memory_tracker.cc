#include "util/memory_tracker.h"

// Header-only implementation; this file anchors the translation unit.
