#ifndef UOT_UTIL_THREAD_SAFE_QUEUE_H_
#define UOT_UTIL_THREAD_SAFE_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/macros.h"

namespace uot {

/// A blocking multi-producer/multi-consumer FIFO queue.
///
/// Used for work-order dispatch (scheduler -> workers) and for execution
/// events (workers -> scheduler). `Close()` wakes all blocked consumers;
/// after close, `Pop()` drains remaining items and then returns nullopt.
template <typename T>
class ThreadSafeQueue {
 public:
  ThreadSafeQueue() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(ThreadSafeQueue);

  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      UOT_DCHECK(!closed_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Enqueues at the front: used for high-priority items (consumer work
  /// orders overtake queued leaf work so pipelines drain eagerly).
  void PushFront(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      UOT_DCHECK(!closed_);
      items_.push_front(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace uot

#endif  // UOT_UTIL_THREAD_SAFE_QUEUE_H_
