#ifndef UOT_UTIL_THREAD_SAFE_QUEUE_H_
#define UOT_UTIL_THREAD_SAFE_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/macros.h"

namespace uot {

/// A blocking multi-producer/multi-consumer FIFO queue.
///
/// Used for work-order dispatch (engine -> workers) and for execution
/// events (workers -> query session). `Close()` wakes all blocked
/// consumers; after close, `Pop()` drains remaining items and then returns
/// nullopt. Push/PushFront against a closed queue reject the item and
/// return false — in all build modes, so a racing producer (e.g. a work
/// order finishing while the engine shuts down) cannot enqueue into a
/// queue nobody will ever drain.
///
/// Destruction safety: producers notify while still holding the lock, so
/// after a producer releases the mutex it never touches queue memory
/// again. A consumer that pops the final item (e.g. a query session
/// receiving its last completion event) may therefore destroy the queue
/// as soon as its own call returns, even if the producing thread has not
/// yet been rescheduled.
template <typename T>
class ThreadSafeQueue {
 public:
  ThreadSafeQueue() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(ThreadSafeQueue);

  /// Enqueues at the back. Returns false (dropping `item`) iff the queue
  /// has been closed.
  bool Push(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Enqueues at the front: used for high-priority items (consumer work
  /// orders overtake queued leaf work so pipelines drain eagerly).
  /// Returns false (dropping `item`) iff the queue has been closed.
  bool PushFront(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    items_.push_front(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace uot

#endif  // UOT_UTIL_THREAD_SAFE_QUEUE_H_
