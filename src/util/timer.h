#ifndef UOT_UTIL_TIMER_H_
#define UOT_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace uot {

/// Returns a monotonic timestamp in nanoseconds.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A simple wall-clock stopwatch over the monotonic clock.
class Timer {
 public:
  Timer() : start_ns_(NowNanos()) {}

  void Restart() { start_ns_ = NowNanos(); }

  int64_t ElapsedNanos() const { return NowNanos() - start_ns_; }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  int64_t start_ns_;
};

}  // namespace uot

#endif  // UOT_UTIL_TIMER_H_
