#ifndef UOT_UTIL_MEMORY_TRACKER_H_
#define UOT_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/macros.h"

namespace uot {

namespace obs {
class Gauge;
class MetricsRegistry;
class TraceSession;
}  // namespace obs

/// Memory categories tracked during query execution.
///
/// The paper's memory-footprint comparison (Section VI, Table II) is between
/// join hash tables and materialized intermediate tables, so those are
/// tracked separately from base-table storage.
enum class MemoryCategory : int {
  kBaseTable = 0,
  kTemporaryTable = 1,
  kHashTable = 2,
  kOther = 3,
};

inline constexpr int kNumMemoryCategories = 4;

/// Stable lower_snake_case name of a category (metric/trace track names).
const char* MemoryCategoryName(MemoryCategory category);

/// Thread-safe allocation accounting with per-category peaks.
///
/// One tracker is attached to each query execution; operators report
/// allocations/releases and the benches read the peaks afterwards.
class MemoryTracker {
 public:
  MemoryTracker() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(MemoryTracker);

  void Allocate(MemoryCategory category, size_t bytes) {
    const int c = static_cast<int>(category);
    const int64_t now = current_[c].fetch_add(static_cast<int64_t>(bytes),
                                              std::memory_order_relaxed) +
                        static_cast<int64_t>(bytes);
    // Lock-free peak update; races only ever under-shoot transiently.
    int64_t peak = peak_[c].load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_[c].compare_exchange_weak(peak, now,
                                           std::memory_order_relaxed)) {
    }
    if (observers_active_.load(std::memory_order_relaxed)) {
      Observe(category, now);
    }
  }

  void Release(MemoryCategory category, size_t bytes) {
    const int64_t now =
        current_[static_cast<int>(category)].fetch_sub(
            static_cast<int64_t>(bytes), std::memory_order_relaxed) -
        static_cast<int64_t>(bytes);
    if (observers_active_.load(std::memory_order_relaxed)) {
      Observe(category, now);
    }
  }

  int64_t Current(MemoryCategory category) const {
    return current_[static_cast<int>(category)].load(
        std::memory_order_relaxed);
  }

  int64_t Peak(MemoryCategory category) const {
    return peak_[static_cast<int>(category)].load(std::memory_order_relaxed);
  }

  int64_t TotalCurrent() const {
    int64_t total = 0;
    for (const auto& c : current_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (auto& c : current_) c.store(0, std::memory_order_relaxed);
    for (auto& p : peak_) p.store(0, std::memory_order_relaxed);
  }

  /// Rebases every category's peak to its current value, so peaks reflect
  /// only what happens after this call (e.g. one query execution).
  void ResetPeaks() {
    for (int c = 0; c < kNumMemoryCategories; ++c) {
      peak_[c].store(current_[c].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
  }

  /// Installs observability sinks (both may be null to detach): every
  /// Allocate/Release then emits a per-category `memory_bytes` counter
  /// sample into `trace` and updates a `memory.<category>.bytes` gauge in
  /// `metrics` (whose Max() is the sampled high-water mark). Attach/detach
  /// only while no thread is allocating — the executor installs observers
  /// before workers start and detaches after they join.
  void AttachObservers(obs::TraceSession* trace,
                       obs::MetricsRegistry* metrics);

  /// The attached trace session (null when detached). Instrumented
  /// allocators (e.g. JoinHashTable) use it for richer typed events.
  obs::TraceSession* trace() const { return trace_; }

 private:
  /// Out-of-line observer notification keeps obs types out of this hot
  /// inline header; called only when observers are attached.
  void Observe(MemoryCategory category, int64_t current_bytes);

  std::atomic<int64_t> current_[kNumMemoryCategories] = {};
  std::atomic<int64_t> peak_[kNumMemoryCategories] = {};
  std::atomic<bool> observers_active_{false};
  obs::TraceSession* trace_ = nullptr;
  obs::Gauge* gauges_[kNumMemoryCategories] = {};
};

}  // namespace uot

#endif  // UOT_UTIL_MEMORY_TRACKER_H_
