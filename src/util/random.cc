#include "util/random.h"

#include <cmath>

namespace uot {
namespace {

// splitmix64: expands a single seed into well-distributed state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(&state);
  s1_ = SplitMix64(&state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be non-zero
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  UOT_DCHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::string Random::AlphaString(int length) {
  std::string s(static_cast<size_t>(length), 'a');
  for (int i = 0; i < length; ++i) {
    s[static_cast<size_t>(i)] = static_cast<char>('a' + (Next() % 26));
  }
  return s;
}

int64_t Random::Zipf(int64_t n, double theta) {
  UOT_DCHECK(n >= 1);
  if (theta <= 0.0) return Uniform(1, n);
  // Classic CDF-inversion approximation (Gray et al.): adequate for data
  // generation, not for statistical tests.
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = (std::pow(static_cast<double>(n), 1.0 - theta) - 1.0) /
                           (1.0 - theta) +
                       1.0;
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 1;
  const double x =
      std::pow(uz * (1.0 - theta) - (1.0 - theta) + 1.0, alpha);
  int64_t v = static_cast<int64_t>(x);
  if (v < 1) v = 1;
  if (v > n) v = n;
  return v;
}

}  // namespace uot
