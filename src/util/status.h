#ifndef UOT_UTIL_STATUS_H_
#define UOT_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace uot {

/// Error codes for recoverable failures surfaced by the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
};

/// A lightweight status object (the library does not use exceptions).
///
/// Functions that can fail for reasons a caller should handle return a
/// `Status`; programming errors are reported via `UOT_CHECK` instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad block size".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define UOT_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::uot::Status _status = (expr);            \
    if (!_status.ok()) return _status;         \
  } while (false)

}  // namespace uot

#endif  // UOT_UTIL_STATUS_H_
