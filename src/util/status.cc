#include "util/status.h"

namespace uot {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace uot
