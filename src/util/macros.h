#ifndef UOT_UTIL_MACROS_H_
#define UOT_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `condition` is false. Always enabled: the
/// library does not use exceptions (failures in release builds must not be
/// silently ignored in a query engine).
#define UOT_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::std::fprintf(stderr, "UOT_CHECK failed at %s:%d: %s\n", __FILE__, \
                     __LINE__, #condition);                               \
      ::std::abort();                                                     \
    }                                                                     \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define UOT_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define UOT_DCHECK(condition) UOT_CHECK(condition)
#endif

#define UOT_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

/// Software prefetch hints (no-ops on compilers without the builtin).
/// The locality argument 1 keeps the line in L2/LLC but not necessarily
/// L1 — batched kernels touch each prefetched slot exactly once.
#if defined(__GNUC__) || defined(__clang__)
#define UOT_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 1)
#define UOT_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 1)
#else
#define UOT_PREFETCH_READ(addr) ((void)(addr))
#define UOT_PREFETCH_WRITE(addr) ((void)(addr))
#endif

#endif  // UOT_UTIL_MACROS_H_
