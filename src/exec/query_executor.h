#ifndef UOT_EXEC_QUERY_EXECUTOR_H_
#define UOT_EXEC_QUERY_EXECUTOR_H_

#include <string>

#include "plan/query_plan.h"
#include "scheduler/scheduler.h"

namespace uot {

/// Facade for executing a query plan under a given configuration.
class QueryExecutor {
 public:
  /// Runs `plan` to completion and returns execution statistics. The result
  /// rows are in `plan->result_table()`.
  static ExecutionStats Execute(QueryPlan* plan, const ExecConfig& config) {
    Scheduler scheduler(plan, config);
    return scheduler.Run();
  }
};

/// Renders up to `max_rows` rows of `table` as an ASCII table (examples and
/// debugging).
std::string RenderTable(const Table& table, uint64_t max_rows = 20);

/// Renders the table's rows as sorted CSV lines — a canonical form for
/// comparing results across UoT values / layouts / thread counts in tests.
std::string CanonicalRows(const Table& table);

}  // namespace uot

#endif  // UOT_EXEC_QUERY_EXECUTOR_H_
