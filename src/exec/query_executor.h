#ifndef UOT_EXEC_QUERY_EXECUTOR_H_
#define UOT_EXEC_QUERY_EXECUTOR_H_

#include <string>

#include "plan/query_plan.h"
#include "scheduler/execution_stats.h"
#include "scheduler/scheduler.h"

namespace uot {

/// Facade for executing a query plan under a given configuration.
///
/// Each call builds a one-query Engine (exec/engine.h) with
/// `config.num_workers` pool workers, so a standalone run behaves exactly
/// like the historical per-query scheduler. To execute several queries
/// concurrently on one shared worker pool, construct an Engine directly
/// and call Engine::Execute from multiple threads.
class QueryExecutor {
 public:
  /// Runs `plan` to completion and returns execution statistics. The result
  /// rows are in `plan->result_table()`.
  ///
  /// When `config.trace` / `config.metrics` are set, the storage manager's
  /// memory tracker is additionally attached to them for the duration of
  /// the run, so traces carry per-category memory counter tracks and the
  /// registry gains `memory.<category>.bytes` gauges (their Max() is the
  /// sampled high-water mark). Concurrent executions against the same
  /// StorageManager must not mix traced and untraced runs.
  static ExecutionStats Execute(QueryPlan* plan, const ExecConfig& config);
};

/// Renders up to `max_rows` rows of `table` as an ASCII table (examples and
/// debugging).
std::string RenderTable(const Table& table, uint64_t max_rows = 20);

/// Renders the table's rows as sorted CSV lines — a canonical form for
/// comparing results across UoT values / layouts / thread counts in tests.
std::string CanonicalRows(const Table& table);

}  // namespace uot

#endif  // UOT_EXEC_QUERY_EXECUTOR_H_
