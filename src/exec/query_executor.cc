#include "exec/query_executor.h"

#include <algorithm>
#include <vector>

#include "exec/engine.h"
#include "obs/metrics.h"
#include "obs/trace_session.h"

namespace uot {

ExecutionStats QueryExecutor::Execute(QueryPlan* plan,
                                      const ExecConfig& config) {
  MemoryTracker& tracker = plan->storage()->tracker();
  const bool observed = config.trace != nullptr || config.metrics != nullptr;
  if (observed) tracker.AttachObservers(config.trace, config.metrics);
  // A one-session engine: the worker pool lives exactly as long as the
  // query, preserving the historical per-query threading behaviour. Use a
  // long-lived Engine directly to run queries concurrently.
  EngineConfig engine_config;
  engine_config.num_workers = config.num_workers;
  Engine engine(engine_config);
  ExecutionStats stats = engine.Execute(plan, config);
  if (observed) tracker.AttachObservers(nullptr, nullptr);
  return stats;
}

std::string RenderTable(const Table& table, uint64_t max_rows) {
  std::string out;
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += schema.column(c).name;
  }
  out += "\n";
  const uint64_t rows = std::min<uint64_t>(table.NumRows(), max_rows);
  for (uint64_t r = 0; r < rows; ++r) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out += " | ";
      out += table.GetValue(r, c).ToString();
    }
    out += "\n";
  }
  if (table.NumRows() > rows) {
    out += "... (" + std::to_string(table.NumRows()) + " rows total)\n";
  }
  return out;
}

std::string CanonicalRows(const Table& table) {
  std::vector<std::string> lines;
  const Schema& schema = table.schema();
  // Iterate blocks directly (GetValue per cell would be O(blocks) each).
  for (const Block* block : table.blocks()) {
    for (uint32_t r = 0; r < block->num_rows(); ++r) {
      std::string line;
      for (int c = 0; c < schema.num_columns(); ++c) {
        if (c > 0) line += ",";
        const TypedValue v = TypedValue::Load(schema.column(c).type,
                                              block->Column(c).at(r));
        if (v.type_id() == TypeId::kDouble) {
          // Round to 7 significant digits: aggregate merge order varies
          // with scheduling, so bit-exact doubles are not canonical.
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.7g", v.AsDouble());
          line += buf;
        } else {
          line += v.ToString();
        }
      }
      lines.push_back(std::move(line));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace uot
