#include "exec/adaptive_uot_policy.h"

#include <algorithm>

#include "model/uot_chooser.h"

namespace uot {

AdaptiveUotPolicy::AdaptiveUotPolicy(Options options)
    : AdaptiveUotPolicy(options, {}) {}

AdaptiveUotPolicy::AdaptiveUotPolicy(Options options,
                                     std::vector<uint64_t> edge_seeds)
    : options_(options), edge_seeds_(std::move(edge_seeds)) {
  UOT_CHECK(options_.min_blocks >= 1);
  UOT_CHECK(options_.min_blocks <= options_.max_blocks);
  UOT_CHECK(options_.initial_blocks >= options_.min_blocks &&
            options_.initial_blocks <= options_.max_blocks);
  UOT_CHECK(options_.widen_watermark <= options_.narrow_watermark);
  UOT_CHECK(options_.exchange_max_blocks >= options_.min_blocks);
  for (uint64_t seed : edge_seeds_) UOT_CHECK(seed != 0);
}

uint64_t AdaptiveUotPolicy::SeedFor(int edge_index) const {
  if (edge_index >= 0 &&
      static_cast<size_t>(edge_index) < edge_seeds_.size()) {
    return std::clamp(edge_seeds_[static_cast<size_t>(edge_index)],
                      options_.min_blocks, options_.max_blocks);
  }
  return options_.initial_blocks;
}

uint64_t AdaptiveUotPolicy::BlocksPerTransfer(const EdgeRuntimeState& edge) {
  return BlocksPerTransfer(edge, nullptr);
}

uint64_t AdaptiveUotPolicy::BlocksPerTransfer(const EdgeRuntimeState& edge,
                                              UotAdaptCause* cause) {
  if (cause != nullptr) *cause = UotAdaptCause::kNone;
  std::lock_guard<std::mutex> lock(mutex_);
  // Exchange edges cap below the general ceiling: their consumer buffers
  // everything anyway, so wide granules only serialize repartition work.
  const uint64_t max_blocks =
      edge.is_exchange
          ? std::min(options_.max_blocks, options_.exchange_max_blocks)
          : options_.max_blocks;
  auto [it, inserted] = edges_.try_emplace(
      std::make_pair(edge.query_id, edge.edge_index),
      EdgeControl{std::min(SeedFor(edge.edge_index), max_blocks)});
  EdgeControl& control = it->second;
  if (inserted && cause != nullptr) *cause = UotAdaptCause::kSeed;

  const bool budgeted = edge.memory_budget_bytes > 0;
  // Usage of the *headroom* above the session's structural floor: with
  // large resident base tables, tracked/budget saturates near 1 regardless
  // of what this query buffers, so the watermarks are applied to the share
  // of the discretionary budget the query's own intermediates occupy. A
  // budget at or under the floor leaves no headroom: permanent pressure.
  double usage = 0.0;
  if (budgeted) {
    const int64_t headroom =
        edge.memory_budget_bytes - edge.baseline_tracked_bytes;
    const int64_t used = edge.tracked_bytes - edge.baseline_tracked_bytes;
    usage = headroom > 0 ? static_cast<double>(std::max<int64_t>(0, used)) /
                               static_cast<double>(headroom)
                         : 2.0;  // over any watermark
  }
  const bool pressure = edge.deferred_work_orders > 0 ||
                        (budgeted && usage >= options_.narrow_watermark);

  if (pressure) {
    control.calm_streak = 0;
    if (control.blocks > options_.min_blocks) {
      control.blocks = std::max(options_.min_blocks, control.blocks / 2);
      adaptations_.fetch_add(1, std::memory_order_relaxed);
      if (cause != nullptr) {
        *cause = edge.deferred_work_orders > 0
                     ? UotAdaptCause::kDeferralDepth
                     : UotAdaptCause::kHeadroomWatermark;
      }
    }
  } else if (!budgeted || usage <= options_.widen_watermark) {
    ++control.calm_streak;
    // A producer sprinting ahead of its consumer makes small transfers
    // pure overhead; halve the patience before widening.
    const double consumer_done = static_cast<double>(
        std::max<uint64_t>(1, edge.consumer_work_orders_done));
    const bool producer_ahead =
        static_cast<double>(edge.producer_work_orders_done) >=
        options_.imbalance_ratio * consumer_done;
    const uint64_t needed_calm =
        producer_ahead ? std::max<uint64_t>(1, options_.widen_after_calm / 2)
                       : options_.widen_after_calm;
    if (control.calm_streak >= needed_calm && control.blocks < max_blocks) {
      control.blocks = std::min(max_blocks, control.blocks * 2);
      control.calm_streak = 0;
      adaptations_.fetch_add(1, std::memory_order_relaxed);
      if (cause != nullptr) {
        *cause = producer_ahead ? UotAdaptCause::kRateImbalance
                                : UotAdaptCause::kCalmStreak;
      }
    }
  }
  return control.blocks;
}

std::string AdaptiveUotPolicy::ToString() const {
  return "adaptive(seed=" + std::to_string(options_.initial_blocks) +
         ",min=" + std::to_string(options_.min_blocks) +
         ",max=" + std::to_string(options_.max_blocks) + ",watermarks=" +
         std::to_string(options_.widen_watermark) + "/" +
         std::to_string(options_.narrow_watermark) +
         (edge_seeds_.empty() ? ")" : ",model-seeded)");
}

std::vector<uint64_t> AdaptiveUotPolicy::SeedsFromChoices(
    const std::vector<UotChoice>& choices, uint64_t max_blocks) {
  std::vector<uint64_t> seeds;
  seeds.reserve(choices.size());
  for (const UotChoice& choice : choices) {
    seeds.push_back(choice.uot.IsWholeTable()
                        ? max_blocks
                        : choice.uot.blocks_per_transfer());
  }
  return seeds;
}

}  // namespace uot
